// BenchmarkAPIServe measures the feed distribution read path: repeated
// GET /records through the full HTTP handler stack (auth, metering,
// routing), store-walked vs snapshot-served vs conditional 304, plus
// snapshot reads under a concurrent writer. Headline metrics (req/s,
// p99 under writes) land in BENCH_serve.json via cmd/benchjson and are
// compared warn-only in CI.
package exiot_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"exiot/internal/api"
	"exiot/internal/feed"
	"exiot/internal/feedserve"
	"exiot/internal/store"
)

const (
	serveBenchRecords = 10_000
	serveBenchKey     = "bench-key"
)

var serveBenchT0 = time.Date(2020, 12, 9, 0, 0, 0, 0, time.UTC)

// serveBenchSource backs the API with a document-store collection using
// the pipeline's query semantics (filter in insertion order, most
// recent Limit entries win).
type serveBenchSource struct {
	coll *store.Collection[feed.Record]
}

func (s *serveBenchSource) Records(q api.Query) []feed.Record {
	out := s.coll.Find(func(r feed.Record) bool { return q.Matches(&r) })
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

func (s *serveBenchSource) RecordByIP(ip string) (feed.Record, bool) {
	matches := s.coll.Find(func(r feed.Record) bool { return r.IP == ip })
	if len(matches) == 0 {
		return feed.Record{}, false
	}
	return matches[len(matches)-1], true
}

func (s *serveBenchSource) Snapshot() api.Snapshot { return api.Snapshot{} }

func serveBenchRecord(i int) feed.Record {
	return feed.Record{
		IP:          fmt.Sprintf("100.%d.%d.%d", i/65536%256, i/256%256, i%256),
		Label:       feed.LabelIoT,
		Score:       0.93,
		CountryCode: "CN",
		ASN:         4134,
		Active:      i%2 == 0,
		FirstSeen:   serveBenchT0.Add(time.Duration(i) * time.Second),
		DetectedAt:  serveBenchT0.Add(time.Duration(i) * time.Second),
		LastSeen:    serveBenchT0.Add(time.Duration(i+600) * time.Second),
		Vendor:      "MikroTik",
		TargetPorts: map[uint16]int{23: 150 + i%100, 2323: 20},
		ScanRatePPS: 4.2,
	}
}

// serveBenchServer assembles a populated API server; withCache switches
// the snapshot read path on.
func serveBenchServer(b *testing.B, withCache bool) (http.Handler, *store.Collection[feed.Record], *feedserve.Cache) {
	b.Helper()
	coll := store.NewCollection[feed.Record]()
	for i := 0; i < serveBenchRecords; i++ {
		coll.Insert(serveBenchT0.Add(time.Duration(i)*time.Second), serveBenchRecord(i))
	}
	srv := api.NewServer(&serveBenchSource{coll: coll}, nil)
	srv.AddKey(serveBenchKey, "bench")
	var cache *feedserve.Cache
	if withCache {
		cache = feedserve.New(coll, feedserve.Config{})
		b.Cleanup(cache.Close)
		srv.SetFeedCache(cache)
	}
	return srv, coll, cache
}

func serveBenchDo(b *testing.B, h http.Handler, req *http.Request) int {
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK && w.Code != http.StatusNotModified {
		b.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	return w.Code
}

func serveBenchReq(path, etag string) *http.Request {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("X-API-Key", serveBenchKey)
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	return req
}

func BenchmarkAPIServe(b *testing.B) {
	const path = "/api/v1/records?limit=100"

	b.Run("records/store_walk", func(b *testing.B) {
		h, _, _ := serveBenchServer(b, false)
		req := serveBenchReq(path, "")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveBenchDo(b, h, req)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})

	b.Run("records/snapshot", func(b *testing.B) {
		h, _, _ := serveBenchServer(b, true)
		req := serveBenchReq(path, "")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveBenchDo(b, h, req)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})

	b.Run("records/snapshot_304", func(b *testing.B) {
		h, _, _ := serveBenchServer(b, true)
		// Capture the current validator, then revalidate forever — the
		// steady state of a polling consumer.
		w := httptest.NewRecorder()
		h.ServeHTTP(w, serveBenchReq(path, ""))
		etag := w.Header().Get("ETag")
		if etag == "" {
			b.Fatal("no ETag on snapshot response")
		}
		req := serveBenchReq(path, etag)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if code := serveBenchDo(b, h, req); code != http.StatusNotModified {
				b.Fatalf("status = %d, want 304", code)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})

	b.Run("records/snapshot_concurrent_writes", func(b *testing.B) {
		h, coll, cache := serveBenchServer(b, true)
		// A writer keeps mutating the feed and swapping snapshots under
		// the readers — the operational steady state of a live telescope.
		stop := make(chan struct{})
		var writerWG sync.WaitGroup
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			i := serveBenchRecords
			for {
				select {
				case <-stop:
					return
				default:
				}
				coll.Insert(serveBenchT0.Add(time.Duration(i)*time.Second), serveBenchRecord(i))
				cache.Rebuild()
				i++
			}
		}()

		var mu sync.Mutex
		var lats []time.Duration
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			req := serveBenchReq(path, "")
			local := make([]time.Duration, 0, 4096)
			for pb.Next() {
				t := time.Now()
				serveBenchDo(b, h, req)
				local = append(local, time.Since(t))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		})
		b.StopTimer()
		close(stop)
		writerWG.Wait()

		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		if len(lats) > 0 {
			p99 := lats[int(0.99*float64(len(lats)-1))]
			b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99_ms")
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
}
