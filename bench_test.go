// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus ablation
// benches for the design choices DESIGN.md calls out and micro-benchmarks
// of the hot paths. Each table/figure bench reports its headline numbers
// as custom benchmark metrics so the paper-vs-measured comparison appears
// directly in the benchmark output.
package exiot_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"exiot/internal/experiments"
	"exiot/internal/features"
	"exiot/internal/ml"
	"exiot/internal/packet"
	"exiot/internal/pipeline"
	"exiot/internal/simnet"
	"exiot/internal/trw"
)

// benchEnv is shared across table benches: building it runs the full
// pipeline over a simulated day and dominates setup cost.
var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
	benchEnvErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		scale := experiments.QuickScale(2021)
		scale.Infected = 500
		scale.NonIoT = 90
		scale.Days = 2
		benchEnvVal, benchEnvErr = experiments.NewEnv(scale)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnvVal
}

// BenchmarkTableIIIVolume regenerates Table III (feed volumes).
func BenchmarkTableIIIVolume(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.TableIIIResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableIII(env)
	}
	b.ReportMetric(r.Rows[0].AllPerDay, "exiot-all/day")
	b.ReportMetric(r.AllRatioGN, "all-ratio-vs-GN(paper=3.5)")
	b.ReportMetric(r.IoTRatioGN, "iot-ratio-vs-GN(paper=7.1)")
}

// BenchmarkTableIVContribution regenerates Table IV (differential and
// exclusive contribution).
func BenchmarkTableIVContribution(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.TableIVResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableIV(env)
	}
	for _, row := range r.Rows {
		switch row.FeedName {
		case "GreyNoise":
			b.ReportMetric(row.Differential, "diff-GN(paper=0.790)")
		case "DShield":
			b.ReportMetric(row.Differential, "diff-DS(paper=0.936)")
		}
	}
	b.ReportMetric(r.Uniq, "uniq(paper=0.766)")
}

// BenchmarkTableVSnapshot regenerates Table V (infection snapshot).
func BenchmarkTableVSnapshot(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.TableVResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableV(env)
	}
	if len(r.Countries) > 0 {
		b.ReportMetric(r.Countries[0].Pct, "top-country-pct(paper=43.5-CN)")
	}
	if len(r.Ports) > 0 {
		b.ReportMetric(r.Ports[0].Pct, "top-port-pct(paper=43.3-telnet)")
	}
	b.ReportMetric(float64(r.Instances), "instances")
}

// BenchmarkLatency regenerates the §V-B controlled-scan latency
// experiment. Each iteration runs a dedicated small deployment.
func BenchmarkLatency(b *testing.B) {
	scale := experiments.QuickScale(2022)
	scale.Infected = 120
	scale.NonIoT = 25
	var r experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Latency(scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if r.Found {
		b.ReportMetric(r.FeedLatency.Hours(), "feed-latency-h(paper=5.2)")
		b.ReportMetric(r.StartError.Seconds(), "start-err-s(paper=24)")
		b.ReportMetric(r.EndError.Minutes(), "end-err-m(paper=13)")
	}
}

// BenchmarkAccuracyCoverage regenerates the §V-B precision/coverage
// measurement.
func BenchmarkAccuracyCoverage(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Accuracy(env)
		if err != nil {
			b.Skip(err)
		}
	}
	b.ReportMetric(100*r.Precision, "precision-pct(paper=94.6)")
	b.ReportMetric(100*r.Coverage, "coverage-pct(paper=77.2)")
}

// BenchmarkValidation regenerates the §V-A cross-validation.
func BenchmarkValidation(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.ValidationResult
	for i := 0; i < b.N; i++ {
		r = experiments.Validation(env)
	}
	b.ReportMetric(100*r.OverallRate, "validated-pct(paper=70)")
	if r.CzechIndicators > 0 {
		b.ReportMetric(100*r.CzechRate, "cz-validated-pct(paper=83)")
	}
}

// BenchmarkModelSelection regenerates the RF/SVM/GNB comparison.
func BenchmarkModelSelection(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.ModelSelectionResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ModelSelection(env)
		if err != nil {
			b.Skip(err)
		}
	}
	for _, row := range r.Rows {
		switch row.Name {
		case "RandomForest":
			b.ReportMetric(row.AUC, "rf-auc")
		case "LinearSVM":
			b.ReportMetric(row.AUC, "svm-auc")
		case "GaussianNB":
			b.ReportMetric(row.AUC, "gnb-auc")
		}
	}
}

// BenchmarkFlowDetection regenerates the throughput figure: one hour of
// telescope traffic through the backscatter filter + TRW detector.
func BenchmarkFlowDetection(b *testing.B) {
	scale := experiments.QuickScale(2023)
	var r experiments.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = experiments.Throughput(scale)
	}
	b.ReportMetric(r.PacketsPerSec, "pkts/s")
	b.ReportMetric(r.SpeedupVsRealtime, "x-realtime")
}

// BenchmarkBannerAvailability regenerates the §VI limitation measurement.
func BenchmarkBannerAvailability(b *testing.B) {
	scale := experiments.QuickScale(2024)
	scale.Infected = 2000
	var r experiments.BannerAvailabilityResult
	for i := 0; i < b.N; i++ {
		r = experiments.BannerAvailability(scale)
	}
	b.ReportMetric(100*float64(r.ReturningBanner)/float64(r.Infected), "banner-pct(paper<10)")
	b.ReportMetric(100*float64(r.TextualBanner)/float64(r.Infected), "textual-pct(paper=3)")
}

// --- ablation benches (design choices from DESIGN.md) ---

// BenchmarkAblationTRWThreshold sweeps the TRW operating point.
func BenchmarkAblationTRWThreshold(b *testing.B) {
	scale := experiments.QuickScale(2025)
	var r experiments.TRWAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationTRW(scale)
	}
	for _, row := range r.Rows {
		if row.Threshold == 100 && row.MinDuration == time.Minute {
			b.ReportMetric(float64(row.ScannersFound), "scanners@paper-op")
			b.ReportMetric(float64(row.MisconfigCaught), "misconfig@paper-op")
		}
	}
}

// BenchmarkAblationSampleSize sweeps the 200-packet sample size.
func BenchmarkAblationSampleSize(b *testing.B) {
	scale := experiments.QuickScale(2026)
	var r experiments.SampleSizeAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationSampleSize(scale)
	}
	for _, row := range r.Rows {
		if row.SampleSize == 200 {
			b.ReportMetric(row.AUC, "auc@200")
		}
		if row.SampleSize == 25 {
			b.ReportMetric(row.AUC, "auc@25")
		}
	}
}

// BenchmarkAblationFeatureSet sweeps feature subsets.
func BenchmarkAblationFeatureSet(b *testing.B) {
	scale := experiments.QuickScale(2027)
	var r experiments.FeatureSetAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationFeatureSet(scale)
	}
	for _, row := range r.Rows {
		switch row.Name {
		case "full (120)":
			b.ReportMetric(row.AUC, "auc-full")
		case "ports-only":
			b.ReportMetric(row.AUC, "auc-ports-only")
		}
	}
}

// BenchmarkAblationForestSize sweeps the ensemble size.
func BenchmarkAblationForestSize(b *testing.B) {
	scale := experiments.QuickScale(2028)
	var r experiments.ForestSizeAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationForestSize(scale)
	}
	for _, row := range r.Rows {
		if row.Trees == 100 {
			b.ReportMetric(row.AUC, "auc@100trees")
		}
	}
}

// BenchmarkAblationTrainingWindow sweeps the retrain window.
func BenchmarkAblationTrainingWindow(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.WindowAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationTrainingWindow(env)
	}
	if len(r.Rows) > 0 {
		b.ReportMetric(r.Rows[len(r.Rows)-1].AUC, "auc-longest-window")
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkPacketMarshal measures the wire codec's encode path.
func BenchmarkPacketMarshal(b *testing.B) {
	p := packet.Packet{
		Proto: packet.TCP, SrcIP: 0x01020304, DstIP: 0x0a000001,
		SrcPort: 44123, DstPort: 23, Seq: 12345, Flags: packet.FlagSYN,
		Window: 5840, TTL: 48,
		Options: packet.TCPOptions{HasMSS: true, MSS: 1460, NOP: true},
	}
	p.Normalize()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Marshal(buf[:0])
	}
	_ = buf
}

// BenchmarkPacketUnmarshal measures the wire codec's decode path.
func BenchmarkPacketUnmarshal(b *testing.B) {
	p := packet.Packet{
		Proto: packet.TCP, SrcIP: 0x01020304, DstIP: 0x0a000001,
		SrcPort: 44123, DstPort: 23, Seq: 12345, Flags: packet.FlagSYN,
		Window: 5840, TTL: 48,
		Options: packet.TCPOptions{HasMSS: true, MSS: 1460, NOP: true},
	}
	p.Normalize()
	buf := p.Marshal(nil)
	var q packet.Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTRWProcess measures per-packet detector cost on a realistic
// packet mix.
func BenchmarkTRWProcess(b *testing.B) {
	cfg := simnet.DefaultConfig(2030)
	cfg.NumInfected = 100
	cfg.NumNonIoT = 20
	cfg.MaxPacketsPerHostHour = 2000
	w := simnet.NewWorld(cfg)
	pkts := w.GenerateHour(w.Start())
	if len(pkts) == 0 {
		b.Fatal("no packets")
	}
	det := trw.NewDetector(trw.Default(), func(trw.Event) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Process(&pkts[i%len(pkts)])
	}
}

// BenchmarkFeatureExtraction measures the 120-dim flow-vector build.
func BenchmarkFeatureExtraction(b *testing.B) {
	cfg := simnet.DefaultConfig(2031)
	cfg.NumInfected = 5
	cfg.NumNonIoT = 0
	cfg.NumMisconfig = 0
	cfg.NumBackscat = 0
	w := simnet.NewWorld(cfg)
	pkts := w.GenerateHour(w.Start())
	if len(pkts) < 200 {
		b.Fatal("not enough packets")
	}
	sample := pkts[:200]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.RawVector(sample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestPredict measures single-flow classification cost.
func BenchmarkForestPredict(b *testing.B) {
	var ds ml.Dataset
	for i := 0; i < 400; i++ {
		x := make([]float64, features.Dim)
		for j := range x {
			x[j] = float64((i*j)%97) / 97
			if i%2 == 1 {
				x[j] += 1.5
			}
		}
		ds.Append(x, i%2)
	}
	forest := ml.TrainForest(&ds, ml.ForestConfig{NumTrees: 100, Seed: 1})
	x := ds.X[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forest.PredictProba(x)
	}
}

// BenchmarkAblationForestLayout compares the pointer-tree forest against
// its flattened node-arena form (and the arena's batch entry point) on
// identical inputs — the layout ablation behind the classify hot path.
// Scores are bit-identical across all three; only locality and
// allocation behaviour differ.
func BenchmarkAblationForestLayout(b *testing.B) {
	// A noisy, overlapping dataset: trees grow deep (hundreds of nodes),
	// which is where node size and arena locality decide the walk cost —
	// a trivially separable set yields depth-1 trees and hides the
	// layout entirely.
	r := rand.New(rand.NewSource(9))
	var ds ml.Dataset
	for i := 0; i < 2000; i++ {
		x := make([]float64, features.Dim)
		for j := range x {
			x[j] = r.Float64()
		}
		y := 0
		if x[3]+x[40]*x[90]+0.3*x[117] > 0.95 {
			y = 1
		}
		if r.Float64() < 0.15 {
			y = 1 - y
		}
		ds.Append(x, y)
	}
	forest := ml.TrainForest(&ds, ml.ForestConfig{NumTrees: 100, Seed: 1})
	flat := forest.Flatten()

	b.Run("pointer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			forest.PredictProba(ds.X[i%len(ds.X)])
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			flat.PredictProba(ds.X[i%len(ds.X)])
		}
	})
	b.Run("flat-batch", func(b *testing.B) {
		rows := ds.X[:256]
		out := make([]float64, len(rows))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			flat.PredictProbaBatch(rows, out)
		}
		// Normalize to per-row cost so the three sub-benches compare
		// directly.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rows)), "ns/row")
	})
}

// BenchmarkIngestThroughput measures the full ingest hot path — hour
// generation plus TRW detection — at 1, 4, and GOMAXPROCS workers,
// reporting pkts/sec and ns/pkt so the parallel speedup is visible in the
// bench trajectory. Workers=1 is the exact legacy serial path; higher
// counts use the parallel generator and the sharded detector, whose
// output is proven identical (TestParallelIngestEquivalence).
func BenchmarkIngestThroughput(b *testing.B) {
	cfg := simnet.DefaultConfig(2040)
	cfg.NumInfected = 400
	cfg.NumNonIoT = 60
	cfg.NumMisconfig = 40
	cfg.NumBackscat = 10
	cfg.MaxPacketsPerHostHour = 2000
	w := simnet.NewWorld(cfg)
	hour := w.Start().Add(18 * time.Hour)
	hourEnd := hour.Add(time.Hour)

	counts := []int{1, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 4 {
		counts = append(counts, gmp)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var pkts, wall int64
			for i := 0; i < b.N; i++ {
				start := time.Now()
				hourPkts := w.GenerateHourWorkers(hour, workers)
				sampler := pipeline.NewSamplerWorkers(trw.Default(), 0, workers, func(pipeline.SamplerEvent) {})
				sampler.ProcessHour(hourPkts, hourEnd)
				sampler.Flush(hourEnd)
				wall += time.Since(start).Nanoseconds()
				pkts += int64(len(hourPkts))
			}
			if pkts == 0 {
				b.Fatal("no packets generated")
			}
			b.ReportMetric(float64(pkts)/(float64(wall)/1e9), "pkts/sec")
			b.ReportMetric(float64(wall)/float64(pkts), "ns/pkt")
		})
	}
}

// BenchmarkWorldGeneration measures traffic synthesis for one hour.
func BenchmarkWorldGeneration(b *testing.B) {
	cfg := simnet.DefaultConfig(2032)
	cfg.NumInfected = 100
	cfg.NumNonIoT = 20
	w := simnet.NewWorld(cfg)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(w.GenerateHour(w.Start()))
	}
	b.ReportMetric(float64(n), "pkts/hour")
}

// BenchmarkCampaignInference regenerates the campaign-analysis extension.
func BenchmarkCampaignInference(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.CampaignResult
	for i := 0; i < b.N; i++ {
		r = experiments.Campaigns(env)
	}
	b.ReportMetric(float64(len(r.Campaigns)), "campaigns")
	b.ReportMetric(r.FamilyPurity, "family-purity")
}

// BenchmarkAdaptivity regenerates the emerging-botnet experiment. Each
// iteration runs a dedicated multi-day deployment.
func BenchmarkAdaptivity(b *testing.B) {
	scale := experiments.QuickScale(2033)
	scale.Infected = 200
	scale.NonIoT = 40
	var r experiments.AdaptivityResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Adaptivity(scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FirstDayRate, "emergence-day-iot-rate")
	b.ReportMetric(r.LastDayRate, "final-day-iot-rate")
}

// --- back-half throughput benches ---

// benchBackHalf caches a captured sampler event stream: the serial
// sampler runs once over a fixed world, and every bench iteration
// replays the identical events into a fresh feed server.
var (
	benchBackHalfOnce   sync.Once
	benchBackHalfEvents []stampedBenchEvent
	benchBackHalfWorld  *simnet.World
)

type stampedBenchEvent struct {
	e  pipeline.SamplerEvent
	at time.Time
}

func backHalfEvents(b *testing.B) ([]stampedBenchEvent, *simnet.World) {
	b.Helper()
	benchBackHalfOnce.Do(func() {
		cfg := simnet.DefaultConfig(2050)
		cfg.NumInfected = 300
		cfg.NumNonIoT = 50
		cfg.NumMisconfig = 30
		cfg.NumBackscat = 8
		cfg.MaxPacketsPerHostHour = 1200
		w := simnet.NewWorld(cfg)
		delay := pipeline.DefaultLocalConfig().CollectionDelay +
			pipeline.DefaultLocalConfig().ProcessingDelay
		var at time.Time
		sampler := pipeline.NewSamplerWorkers(trw.Default(), 0, 1, func(e pipeline.SamplerEvent) {
			benchBackHalfEvents = append(benchBackHalfEvents, stampedBenchEvent{e: e, at: at})
		})
		start := w.Start()
		for h := 0; h < 6; h++ {
			hour := start.Add(time.Duration(h) * time.Hour)
			at = hour.Add(time.Hour).Add(delay)
			sampler.ProcessHour(w.GenerateHour(hour), hour.Add(time.Hour))
		}
		at = start.Add(6 * time.Hour).Add(delay)
		sampler.Flush(start.Add(6 * time.Hour))
		benchBackHalfWorld = w
	})
	if len(benchBackHalfEvents) == 0 {
		b.Fatal("no sampler events captured")
	}
	return benchBackHalfEvents, benchBackHalfWorld
}

// BenchmarkBackHalfThroughput measures the feed back half — probe,
// classify, enrich, store — on a fixed event stream at 1, 4, and
// GOMAXPROCS workers, reporting events/sec and ns/event. Workers=1 is
// the exact serial path; higher counts route through the classify
// stage's worker pool, whose output is proven identical
// (TestClassifyStageFeedEquivalence).
func BenchmarkBackHalfThroughput(b *testing.B) {
	events, w := backHalfEvents(b)
	counts := []int{1, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 4 {
		counts = append(counts, gmp)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var wall int64
			for i := 0; i < b.N; i++ {
				scfg := pipeline.DefaultServerConfig()
				scfg.Workers = workers
				srv := pipeline.NewServer(scfg, w, w.Registry(), nil)
				last := events[len(events)-1].at
				start := time.Now()
				if workers > 1 {
					stage := pipeline.NewClassifyStage(srv, workers)
					for _, se := range events {
						stage.Enqueue(se.e, se.at)
					}
					stage.Close()
				} else {
					for _, se := range events {
						srv.HandleEvent(se.e, se.at)
					}
				}
				srv.FlushScans(last)
				srv.Tick(last)
				wall += time.Since(start).Nanoseconds()
			}
			total := int64(b.N) * int64(len(events))
			b.ReportMetric(float64(total)/(float64(wall)/1e9), "events/sec")
			b.ReportMetric(float64(wall)/float64(total), "ns/event")
		})
	}
}

// BenchmarkIngestThroughputEndToEnd extends BenchmarkIngestThroughput
// across the whole pipeline: pre-generated hours flow through detection,
// the classify stage, active probing, and the feed server. Reported
// pkts/sec is end-to-end — what an operator sees per worker knob.
func BenchmarkIngestThroughputEndToEnd(b *testing.B) {
	cfg := simnet.DefaultConfig(2051)
	cfg.NumInfected = 300
	cfg.NumNonIoT = 50
	cfg.NumMisconfig = 30
	cfg.NumBackscat = 8
	cfg.MaxPacketsPerHostHour = 1200
	const hours = 4
	w := simnet.NewWorld(cfg)
	pregen := make([][]packet.Packet, hours)
	var total int64
	for h := range pregen {
		pregen[h] = w.GenerateHour(w.Start().Add(time.Duration(h) * time.Hour))
		total += int64(len(pregen[h]))
	}

	counts := []int{1, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 4 {
		counts = append(counts, gmp)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var wall int64
			for i := 0; i < b.N; i++ {
				lcfg := pipeline.DefaultLocalConfig()
				lcfg.Workers = workers
				local := pipeline.NewLocal(lcfg, w, w.Registry(), nil)
				start := time.Now()
				for h := 0; h < hours; h++ {
					local.ProcessHour(pregen[h], w.Start().Add(time.Duration(h)*time.Hour))
				}
				local.Finish(w.Start().Add(hours * time.Hour))
				wall += time.Since(start).Nanoseconds()
			}
			pkts := int64(b.N) * total
			b.ReportMetric(float64(pkts)/(float64(wall)/1e9), "pkts/sec")
			b.ReportMetric(float64(wall)/float64(pkts), "ns/pkt")
		})
	}
}
