// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus ablation
// benches for the design choices DESIGN.md calls out and micro-benchmarks
// of the hot paths. Each table/figure bench reports its headline numbers
// as custom benchmark metrics so the paper-vs-measured comparison appears
// directly in the benchmark output.
package exiot_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"exiot/internal/experiments"
	"exiot/internal/features"
	"exiot/internal/ml"
	"exiot/internal/packet"
	"exiot/internal/pipeline"
	"exiot/internal/simnet"
	"exiot/internal/trw"
)

// benchEnv is shared across table benches: building it runs the full
// pipeline over a simulated day and dominates setup cost.
var (
	benchEnvOnce sync.Once
	benchEnvVal  *experiments.Env
	benchEnvErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		scale := experiments.QuickScale(2021)
		scale.Infected = 500
		scale.NonIoT = 90
		scale.Days = 2
		benchEnvVal, benchEnvErr = experiments.NewEnv(scale)
	})
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnvVal
}

// BenchmarkTableIIIVolume regenerates Table III (feed volumes).
func BenchmarkTableIIIVolume(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.TableIIIResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableIII(env)
	}
	b.ReportMetric(r.Rows[0].AllPerDay, "exiot-all/day")
	b.ReportMetric(r.AllRatioGN, "all-ratio-vs-GN(paper=3.5)")
	b.ReportMetric(r.IoTRatioGN, "iot-ratio-vs-GN(paper=7.1)")
}

// BenchmarkTableIVContribution regenerates Table IV (differential and
// exclusive contribution).
func BenchmarkTableIVContribution(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.TableIVResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableIV(env)
	}
	for _, row := range r.Rows {
		switch row.FeedName {
		case "GreyNoise":
			b.ReportMetric(row.Differential, "diff-GN(paper=0.790)")
		case "DShield":
			b.ReportMetric(row.Differential, "diff-DS(paper=0.936)")
		}
	}
	b.ReportMetric(r.Uniq, "uniq(paper=0.766)")
}

// BenchmarkTableVSnapshot regenerates Table V (infection snapshot).
func BenchmarkTableVSnapshot(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.TableVResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableV(env)
	}
	if len(r.Countries) > 0 {
		b.ReportMetric(r.Countries[0].Pct, "top-country-pct(paper=43.5-CN)")
	}
	if len(r.Ports) > 0 {
		b.ReportMetric(r.Ports[0].Pct, "top-port-pct(paper=43.3-telnet)")
	}
	b.ReportMetric(float64(r.Instances), "instances")
}

// BenchmarkLatency regenerates the §V-B controlled-scan latency
// experiment. Each iteration runs a dedicated small deployment.
func BenchmarkLatency(b *testing.B) {
	scale := experiments.QuickScale(2022)
	scale.Infected = 120
	scale.NonIoT = 25
	var r experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Latency(scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if r.Found {
		b.ReportMetric(r.FeedLatency.Hours(), "feed-latency-h(paper=5.2)")
		b.ReportMetric(r.StartError.Seconds(), "start-err-s(paper=24)")
		b.ReportMetric(r.EndError.Minutes(), "end-err-m(paper=13)")
	}
}

// BenchmarkAccuracyCoverage regenerates the §V-B precision/coverage
// measurement.
func BenchmarkAccuracyCoverage(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.AccuracyResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Accuracy(env)
		if err != nil {
			b.Skip(err)
		}
	}
	b.ReportMetric(100*r.Precision, "precision-pct(paper=94.6)")
	b.ReportMetric(100*r.Coverage, "coverage-pct(paper=77.2)")
}

// BenchmarkValidation regenerates the §V-A cross-validation.
func BenchmarkValidation(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.ValidationResult
	for i := 0; i < b.N; i++ {
		r = experiments.Validation(env)
	}
	b.ReportMetric(100*r.OverallRate, "validated-pct(paper=70)")
	if r.CzechIndicators > 0 {
		b.ReportMetric(100*r.CzechRate, "cz-validated-pct(paper=83)")
	}
}

// BenchmarkModelSelection regenerates the RF/SVM/GNB comparison.
func BenchmarkModelSelection(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.ModelSelectionResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ModelSelection(env)
		if err != nil {
			b.Skip(err)
		}
	}
	for _, row := range r.Rows {
		switch row.Name {
		case "RandomForest":
			b.ReportMetric(row.AUC, "rf-auc")
		case "LinearSVM":
			b.ReportMetric(row.AUC, "svm-auc")
		case "GaussianNB":
			b.ReportMetric(row.AUC, "gnb-auc")
		}
	}
}

// BenchmarkFlowDetection regenerates the throughput figure: one hour of
// telescope traffic through the backscatter filter + TRW detector.
func BenchmarkFlowDetection(b *testing.B) {
	scale := experiments.QuickScale(2023)
	var r experiments.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = experiments.Throughput(scale)
	}
	b.ReportMetric(r.PacketsPerSec, "pkts/s")
	b.ReportMetric(r.SpeedupVsRealtime, "x-realtime")
}

// BenchmarkBannerAvailability regenerates the §VI limitation measurement.
func BenchmarkBannerAvailability(b *testing.B) {
	scale := experiments.QuickScale(2024)
	scale.Infected = 2000
	var r experiments.BannerAvailabilityResult
	for i := 0; i < b.N; i++ {
		r = experiments.BannerAvailability(scale)
	}
	b.ReportMetric(100*float64(r.ReturningBanner)/float64(r.Infected), "banner-pct(paper<10)")
	b.ReportMetric(100*float64(r.TextualBanner)/float64(r.Infected), "textual-pct(paper=3)")
}

// --- ablation benches (design choices from DESIGN.md) ---

// BenchmarkAblationTRWThreshold sweeps the TRW operating point.
func BenchmarkAblationTRWThreshold(b *testing.B) {
	scale := experiments.QuickScale(2025)
	var r experiments.TRWAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationTRW(scale)
	}
	for _, row := range r.Rows {
		if row.Threshold == 100 && row.MinDuration == time.Minute {
			b.ReportMetric(float64(row.ScannersFound), "scanners@paper-op")
			b.ReportMetric(float64(row.MisconfigCaught), "misconfig@paper-op")
		}
	}
}

// BenchmarkAblationSampleSize sweeps the 200-packet sample size.
func BenchmarkAblationSampleSize(b *testing.B) {
	scale := experiments.QuickScale(2026)
	var r experiments.SampleSizeAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationSampleSize(scale)
	}
	for _, row := range r.Rows {
		if row.SampleSize == 200 {
			b.ReportMetric(row.AUC, "auc@200")
		}
		if row.SampleSize == 25 {
			b.ReportMetric(row.AUC, "auc@25")
		}
	}
}

// BenchmarkAblationFeatureSet sweeps feature subsets.
func BenchmarkAblationFeatureSet(b *testing.B) {
	scale := experiments.QuickScale(2027)
	var r experiments.FeatureSetAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationFeatureSet(scale)
	}
	for _, row := range r.Rows {
		switch row.Name {
		case "full (120)":
			b.ReportMetric(row.AUC, "auc-full")
		case "ports-only":
			b.ReportMetric(row.AUC, "auc-ports-only")
		}
	}
}

// BenchmarkAblationForestSize sweeps the ensemble size.
func BenchmarkAblationForestSize(b *testing.B) {
	scale := experiments.QuickScale(2028)
	var r experiments.ForestSizeAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationForestSize(scale)
	}
	for _, row := range r.Rows {
		if row.Trees == 100 {
			b.ReportMetric(row.AUC, "auc@100trees")
		}
	}
}

// BenchmarkAblationTrainingWindow sweeps the retrain window.
func BenchmarkAblationTrainingWindow(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.WindowAblationResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationTrainingWindow(env)
	}
	if len(r.Rows) > 0 {
		b.ReportMetric(r.Rows[len(r.Rows)-1].AUC, "auc-longest-window")
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkPacketMarshal measures the wire codec's encode path.
func BenchmarkPacketMarshal(b *testing.B) {
	p := packet.Packet{
		Proto: packet.TCP, SrcIP: 0x01020304, DstIP: 0x0a000001,
		SrcPort: 44123, DstPort: 23, Seq: 12345, Flags: packet.FlagSYN,
		Window: 5840, TTL: 48,
		Options: packet.TCPOptions{HasMSS: true, MSS: 1460, NOP: true},
	}
	p.Normalize()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Marshal(buf[:0])
	}
	_ = buf
}

// BenchmarkPacketUnmarshal measures the wire codec's decode path.
func BenchmarkPacketUnmarshal(b *testing.B) {
	p := packet.Packet{
		Proto: packet.TCP, SrcIP: 0x01020304, DstIP: 0x0a000001,
		SrcPort: 44123, DstPort: 23, Seq: 12345, Flags: packet.FlagSYN,
		Window: 5840, TTL: 48,
		Options: packet.TCPOptions{HasMSS: true, MSS: 1460, NOP: true},
	}
	p.Normalize()
	buf := p.Marshal(nil)
	var q packet.Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTRWProcess measures per-packet detector cost on a realistic
// packet mix.
func BenchmarkTRWProcess(b *testing.B) {
	cfg := simnet.DefaultConfig(2030)
	cfg.NumInfected = 100
	cfg.NumNonIoT = 20
	cfg.MaxPacketsPerHostHour = 2000
	w := simnet.NewWorld(cfg)
	pkts := w.GenerateHour(w.Start())
	if len(pkts) == 0 {
		b.Fatal("no packets")
	}
	det := trw.NewDetector(trw.Default(), func(trw.Event) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Process(&pkts[i%len(pkts)])
	}
}

// BenchmarkFeatureExtraction measures the 120-dim flow-vector build.
func BenchmarkFeatureExtraction(b *testing.B) {
	cfg := simnet.DefaultConfig(2031)
	cfg.NumInfected = 5
	cfg.NumNonIoT = 0
	cfg.NumMisconfig = 0
	cfg.NumBackscat = 0
	w := simnet.NewWorld(cfg)
	pkts := w.GenerateHour(w.Start())
	if len(pkts) < 200 {
		b.Fatal("not enough packets")
	}
	sample := pkts[:200]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.RawVector(sample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestPredict measures single-flow classification cost.
func BenchmarkForestPredict(b *testing.B) {
	var ds ml.Dataset
	for i := 0; i < 400; i++ {
		x := make([]float64, features.Dim)
		for j := range x {
			x[j] = float64((i*j)%97) / 97
			if i%2 == 1 {
				x[j] += 1.5
			}
		}
		ds.Append(x, i%2)
	}
	forest := ml.TrainForest(&ds, ml.ForestConfig{NumTrees: 100, Seed: 1})
	x := ds.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forest.PredictProba(x)
	}
}

// BenchmarkIngestThroughput measures the full ingest hot path — hour
// generation plus TRW detection — at 1, 4, and GOMAXPROCS workers,
// reporting pkts/sec and ns/pkt so the parallel speedup is visible in the
// bench trajectory. Workers=1 is the exact legacy serial path; higher
// counts use the parallel generator and the sharded detector, whose
// output is proven identical (TestParallelIngestEquivalence).
func BenchmarkIngestThroughput(b *testing.B) {
	cfg := simnet.DefaultConfig(2040)
	cfg.NumInfected = 400
	cfg.NumNonIoT = 60
	cfg.NumMisconfig = 40
	cfg.NumBackscat = 10
	cfg.MaxPacketsPerHostHour = 2000
	w := simnet.NewWorld(cfg)
	hour := w.Start().Add(18 * time.Hour)
	hourEnd := hour.Add(time.Hour)

	counts := []int{1, 4}
	if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 4 {
		counts = append(counts, gmp)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var pkts, wall int64
			for i := 0; i < b.N; i++ {
				start := time.Now()
				hourPkts := w.GenerateHourWorkers(hour, workers)
				sampler := pipeline.NewSamplerWorkers(trw.Default(), 0, workers, func(pipeline.SamplerEvent) {})
				sampler.ProcessHour(hourPkts, hourEnd)
				sampler.Flush(hourEnd)
				wall += time.Since(start).Nanoseconds()
				pkts += int64(len(hourPkts))
			}
			if pkts == 0 {
				b.Fatal("no packets generated")
			}
			b.ReportMetric(float64(pkts)/(float64(wall)/1e9), "pkts/sec")
			b.ReportMetric(float64(wall)/float64(pkts), "ns/pkt")
		})
	}
}

// BenchmarkWorldGeneration measures traffic synthesis for one hour.
func BenchmarkWorldGeneration(b *testing.B) {
	cfg := simnet.DefaultConfig(2032)
	cfg.NumInfected = 100
	cfg.NumNonIoT = 20
	w := simnet.NewWorld(cfg)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(w.GenerateHour(w.Start()))
	}
	b.ReportMetric(float64(n), "pkts/hour")
}

// BenchmarkCampaignInference regenerates the campaign-analysis extension.
func BenchmarkCampaignInference(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	var r experiments.CampaignResult
	for i := 0; i < b.N; i++ {
		r = experiments.Campaigns(env)
	}
	b.ReportMetric(float64(len(r.Campaigns)), "campaigns")
	b.ReportMetric(r.FamilyPurity, "family-purity")
}

// BenchmarkAdaptivity regenerates the emerging-botnet experiment. Each
// iteration runs a dedicated multi-day deployment.
func BenchmarkAdaptivity(b *testing.B) {
	scale := experiments.QuickScale(2033)
	scale.Infected = 200
	scale.NonIoT = 40
	var r experiments.AdaptivityResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Adaptivity(scale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FirstDayRate, "emergence-day-iot-rate")
	b.ReportMetric(r.LastDayRate, "final-day-iot-rate")
}
