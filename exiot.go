// Package exiot is a from-scratch, stdlib-only Go reproduction of
// eX-IoT — the operational Cyber Threat Intelligence feed for
// Internet-scale compromised IoT devices described in "Sanitizing the IoT
// Cyber Security Posture: An Operational CTI Feed Backed up by Internet
// Measurements" (Safaei Pour, Watson, Bou-Harb — DSN 2021).
//
// The package is the public doorway: it assembles a full deployment —
// a simulated /8 network telescope world (the substitute for the CAIDA
// feed and the probeable Internet), the TRW flow detector and sampler,
// the ZMap/ZGrab scan module with a Recog-style fingerprint base, the
// random-forest annotate/update-classifier loop, the three stores, e-mail
// notification, and the authenticated REST API — and runs it over
// simulated time.
//
//	sys := exiot.NewSystem(exiot.DefaultConfig(42))
//	if err := sys.RunAll(); err != nil { ... }
//	snap := sys.Feed().Snapshot()
//
// Deeper control lives in the internal packages; the experiment harness
// (cmd/experiments) regenerates every table and figure of the paper's
// evaluation on top of this API.
package exiot

import (
	"exiot/internal/core"
	"exiot/internal/pipeline"
	"exiot/internal/simnet"
)

// Config parameterizes a deployment. See DefaultConfig.
type Config = core.Config

// System is one running eX-IoT deployment.
type System = core.System

// WorldConfig configures the simulated Internet.
type WorldConfig = simnet.Config

// PipelineConfig configures the detection pipeline.
type PipelineConfig = pipeline.LocalConfig

// DefaultConfig returns a laptop-scale deployment seeded with seed.
func DefaultConfig(seed int64) Config {
	return core.DefaultConfig(seed)
}

// NewSystem builds a deployment from cfg.
func NewSystem(cfg Config) *System {
	return core.NewSystem(cfg)
}
