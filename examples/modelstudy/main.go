// Modelstudy: the learning side of eX-IoT as a runnable study — the
// RF / SVM / GNB comparison that motivated the paper's model choice, the
// feed's precision/coverage against banner ground truth, and the
// feature-set and forest-size ablations.
package main

import (
	"fmt"
	"log"

	"exiot/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scale := experiments.QuickScale(7)
	scale.Infected = 700
	scale.NonIoT = 120
	scale.Days = 2

	fmt.Println("running the deployment to accumulate banner-labeled flows...")
	env, err := experiments.NewEnv(scale)
	if err != nil {
		return err
	}
	fmt.Printf("labeled window: %d flows\n\n", env.Sys.Feed().Trainer().WindowSize())

	if ms, err := experiments.ModelSelection(env); err == nil {
		fmt.Println(ms)
	} else {
		fmt.Printf("model selection starved: %v\n\n", err)
	}

	if acc, err := experiments.Accuracy(env); err == nil {
		fmt.Println(acc)
	} else {
		fmt.Printf("accuracy experiment starved: %v\n\n", err)
	}

	fmt.Println(experiments.AblationFeatureSet(scale))
	fmt.Println(experiments.AblationForestSize(scale))

	if m := env.Sys.Feed().LastModel(); m != nil {
		fmt.Printf("production model: trained %s, AUC %.4f, F1 %.4f (%d train / %d test)\n",
			m.TrainedAt.Format("2006-01-02 15:04"), m.AUC, m.F1, m.TrainSize, m.TestSize)
	}
	return nil
}
