// Orgmonitor: an organization (here, a Czech ISP) registers an e-mail
// alarm for its IP block through the REST API and receives notifications
// the moment eX-IoT sees compromised IoT devices scanning from inside it —
// the paper's first notification mechanism. The WHOIS-driven second
// mechanism is enabled too, so hosting networks' abuse contacts are
// notified automatically.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"exiot"
	"exiot/internal/packet"
	"exiot/internal/scanmod"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := exiot.DefaultConfig(11)
	cfg.World.NumInfected = 400
	cfg.Pipeline.Server.Notify.NotifyWhois = true
	cfg.Pipeline.Server.ScanMod = scanmod.Config{BatchSize: 50, BatchWait: 30 * time.Minute}
	sys := exiot.NewSystem(cfg)

	// Register alarms for the /16 blocks hosting the first few dozen
	// infected devices — a multi-site ISP watching its allocations. (A
	// real organization registers its own blocks; the demo peeks at
	// ground truth only to guarantee the watched space is interesting.)
	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()
	watched := map[packet.Prefix]bool{}
	var first packet.Prefix
	for _, h := range sys.World().Hosts() {
		if !h.IsIoT() || len(watched) >= 30 {
			continue
		}
		p := packet.MakePrefix(h.IP, 16)
		if watched[p] {
			continue
		}
		watched[p] = true
		if len(watched) == 1 {
			first = p
		}
		body, err := json.Marshal(map[string]string{
			"prefix": p.String(),
			"email":  "soc@example-isp.cz",
		})
		if err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/alerts", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("X-API-Key", "dev-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("alert registration failed: %s", resp.Status)
		}
	}
	fmt.Printf("organization watches %d /16 blocks (e.g. %s)\n", len(watched), first)

	fmt.Println("running one simulated day...")
	if err := sys.RunAll(); err != nil {
		return err
	}

	msgs := sys.Mailer().Messages()
	fmt.Printf("\n%d notification e-mails sent in total\n", len(msgs))
	subAlarms, whoisAlarms := 0, 0
	for _, m := range msgs {
		if m.To == "soc@example-isp.cz" {
			subAlarms++
		} else {
			whoisAlarms++
		}
	}
	fmt.Printf("  to the subscribed SOC:     %d\n", subAlarms)
	fmt.Printf("  to WHOIS abuse contacts:   %d\n", whoisAlarms)

	for _, m := range msgs {
		if m.To != "soc@example-isp.cz" {
			continue
		}
		fmt.Printf("\n--- first SOC alarm ---\nTo: %s\nSubject: %s\n%s", m.To, m.Subject, m.Body)
		break
	}

	// Show what the registry's WHOIS view says about one watched block.
	if info, ok := sys.World().Registry().Lookup(first.Base + 1); ok {
		fmt.Printf("\nwatched block per WHOIS: %s, %s (AS%d), abuse %s\n",
			info.ISP, info.Country, info.ASN, info.AbuseEmail)
	}
	return nil
}
