// Campaignhunt: infer coordinated scanning campaigns from the CTI feed —
// the analysis the paper's authors build on top of eX-IoT in their
// campaign-curation work. The example runs a deployment, pulls the IoT
// records, clusters them by scanning signature, and checks the clusters
// against the simulator's malware-family ground truth.
package main

import (
	"fmt"
	"log"
	"strings"

	"exiot"
	"exiot/internal/api"
	"exiot/internal/campaign"
	"exiot/internal/feed"
	"exiot/internal/packet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := exiot.DefaultConfig(99)
	cfg.World.NumInfected = 500
	cfg.World.Days = 2
	sys := exiot.NewSystem(cfg)
	fmt.Println("running two simulated days...")
	if err := sys.RunAll(); err != nil {
		return err
	}

	records := sys.Feed().Records(api.Query{Label: feed.LabelIoT, Limit: 0})
	fmt.Printf("feed holds %d IoT records\n\n", len(records))

	campaigns := campaign.Infer(records, campaign.Config{})
	fmt.Printf("%-34s %8s %8s %-12s %s\n", "signature (ports|tool)", "devices", "records", "countries", "majority family (truth)")
	for _, c := range campaigns {
		family := majorityFamily(sys, &c)
		fmt.Printf("%-34s %8d %8d %-12s %s\n",
			c.Signature.String(), c.Size(), c.Records,
			strings.Join(c.TopCountries(3), ","), family)
	}
	fmt.Println("\nThe same inference is served live at GET /api/v1/campaigns.")
	return nil
}

// majorityFamily resolves a campaign's dominant ground-truth malware
// family (evaluation only — the inference itself never sees it).
func majorityFamily(sys *exiot.System, c *campaign.Campaign) string {
	counts := map[string]int{}
	for _, ipStr := range c.IPs {
		ip, err := packet.ParseIP(ipStr)
		if err != nil {
			continue
		}
		if h, ok := sys.World().HostByIP(ip); ok && h.Family != nil {
			counts[h.Family.Name]++
		}
	}
	best, bestN, total := "unknown", 0, 0
	for name, n := range counts {
		total += n
		if n > bestN {
			best, bestN = name, n
		}
	}
	if total == 0 {
		return "unknown"
	}
	return fmt.Sprintf("%s (%d/%d)", best, bestN, total)
}
