// Quickstart: build a simulated eX-IoT deployment, run one day of
// telescope traffic through the full pipeline, and read the resulting CTI
// feed — the fastest way to see the system produce threat intelligence.
package main

import (
	"fmt"
	"log"

	"exiot"
	"exiot/internal/api"
	"exiot/internal/feed"
	"exiot/internal/packet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A laptop-scale world: ~300 infected IoT devices, research scanners,
	// misconfiguration noise, and DDoS backscatter, all watched by a
	// simulated /8 telescope.
	cfg := exiot.DefaultConfig(42)
	sys := exiot.NewSystem(cfg)

	fmt.Println("running one simulated day through the pipeline...")
	if err := sys.RunAll(); err != nil {
		return err
	}

	c := sys.Feed().Counters()
	fmt.Printf("\npipeline counters:\n")
	fmt.Printf("  records created:   %d\n", c.RecordsCreated)
	fmt.Printf("  flows ended:       %d\n", c.FlowsEnded)
	fmt.Printf("  banner labels:     %d\n", c.BannersLabeled)
	fmt.Printf("  model retrains:    %d\n", c.ModelRetrains)

	snap := sys.Feed().Snapshot()
	fmt.Printf("\nfeed snapshot:\n")
	fmt.Printf("  total records: %d (IoT: %d, benign scanners: %d)\n",
		snap.TotalRecords, snap.IoTRecords, snap.BenignRecords)
	fmt.Printf("  top countries: %v\n", snap.TopCountries)
	fmt.Printf("  top ports:     %v\n", snap.TopPorts)

	// Query the feed like an API consumer would.
	iot := sys.Feed().Records(api.Query{Label: feed.LabelIoT, Limit: 3})
	fmt.Printf("\nsample IoT records (%d shown):\n", len(iot))
	for _, rec := range iot {
		fmt.Printf("  %-15s %-10s score=%.2f %s AS%d %s ports=%v\n",
			rec.IP, rec.LabelSource, rec.Score, rec.CountryCode, rec.ASN,
			rec.Vendor+" "+rec.DeviceType, rec.TopPorts(3))
	}

	// Detection quality against the simulator's ground truth.
	correct, total := 0, 0
	for _, rec := range sys.Feed().Records(api.Query{Limit: 0}) {
		ip, err := parseIP(rec.IP)
		if err != nil {
			continue
		}
		h, ok := sys.World().HostByIP(ip)
		if !ok {
			continue
		}
		total++
		if rec.IsIoT() == h.IsIoT() {
			correct++
		}
	}
	if total > 0 {
		fmt.Printf("\nlabel agreement with ground truth: %.1f%% over %d records\n",
			100*float64(correct)/float64(total), total)
	}
	return nil
}

func parseIP(s string) (packet.IP, error) { return packet.ParseIP(s) }
