// Feedcompare: contrast eX-IoT's CTI feed with simulated GreyNoise and
// DShield vantages over the same world — the paper's §V-B feed-quality
// evaluation (volume, differential/exclusive contribution, latency) as a
// runnable program.
package main

import (
	"fmt"
	"log"
	"time"

	"exiot/internal/experiments"
	"exiot/internal/feed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scale := experiments.QuickScale(2026)
	scale.Infected = 800
	scale.Days = 2

	fmt.Println("running the deployment and materializing third-party vantages...")
	env, err := experiments.NewEnv(scale)
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Println(experiments.TableIII(env))
	fmt.Println(experiments.TableIV(env))

	// Latency: compare when each feed first saw the sources both carry.
	appearances := map[string]map[string]time.Time{
		"eX-IoT":    exiotAppearances(env),
		"GreyNoise": env.GreyNoise.Appearances(),
	}
	lat := feed.Latency(appearances)
	fmt.Println("Mean feed latency vs earliest sighting (shared indicators):")
	for name, d := range lat {
		fmt.Printf("  %-10s %v\n", name, d.Round(time.Minute))
	}
	fmt.Println("\n(The controlled single-scan latency experiment lives in " +
		"cmd/experiments -run latency.)")
	return nil
}

// exiotAppearances maps each indicator to its first appearance in the
// eX-IoT feed.
func exiotAppearances(env *experiments.Env) map[string]time.Time {
	out := map[string]time.Time{}
	for _, rec := range env.Records() {
		if cur, ok := out[rec.IP]; !ok || rec.AppearedAt.Before(cur) {
			out[rec.IP] = rec.AppearedAt
		}
	}
	return out
}
