// Wire-path throughput: the v1 JSON protocol (one frame per event, one
// ack per frame) against the v2 binary protocol (compact payload
// encoding, coalesced batched writes, one cumulative ack per batch) over
// a real loopback TCP connection. Captured to BENCH_wire.json; the CI
// cluster job re-runs it and flags regressions.
package exiot_test

import (
	"testing"
	"time"

	"exiot/internal/pipeline"
	"exiot/internal/wire"
)

// BenchmarkWireThroughput ships the cached back-half event stream (a
// realistic mix of sample batches, flow ends, and per-second reports)
// through both sender generations and reports events/sec. B/op is the
// per-event sender-side allocation cost — the number the pooled frame
// buffers and append-style binary encoder exist to shrink.
func BenchmarkWireThroughput(b *testing.B) {
	events, _ := backHalfEvents(b)

	b.Run("v1-json", func(b *testing.B) {
		recv, err := wire.NewReceiver("127.0.0.1:0", func(wire.Frame) {})
		if err != nil {
			b.Fatal(err)
		}
		defer recv.Close()
		sender := wire.NewSender(recv.Addr())
		defer sender.Close()
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			e := events[i%len(events)].e
			kind, data, err := pipeline.EncodeEvent(e)
			if err != nil {
				b.Fatal(err)
			}
			if err := sender.Send(kind, data); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "events/sec")
	})

	b.Run("v2-binary", func(b *testing.B) {
		recv, err := wire.NewReceiver("127.0.0.1:0", func(wire.Frame) {})
		if err != nil {
			b.Fatal(err)
		}
		defer recv.Close()
		sender := wire.NewSenderV2(recv.Addr(), 0, 1)
		defer sender.Close()
		epoch := events[0].at.Unix()
		var encBuf []byte
		b.ReportAllocs()
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			e := events[i%len(events)].e
			kind, data, err := pipeline.AppendEncodeEvent(encBuf[:0], e)
			if err != nil {
				b.Fatal(err)
			}
			encBuf = data[:0]
			if err := sender.Queue(kind, epoch, data); err != nil {
				b.Fatal(err)
			}
		}
		// The tail batch's ack round-trip is part of the measured cost,
		// exactly as a shard's hour barrier would be.
		if err := sender.Flush(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "events/sec")
	})
}
