// Cross-package crash-recovery proof for the durable feed state: a
// multi-day run that is hard-stopped partway through — with its WAL
// tail torn or bit-flipped, as a real crash would leave it — must,
// after recovery in a fresh process, finish with a feed byte-identical
// to an uninterrupted run: same latest and historical records, same
// lifetime counters, same NDJSON bulk export. The proof holds at any
// worker count (serial and classify-stage parallel back half).
package exiot_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"exiot/internal/api"
	"exiot/internal/durable"
	"exiot/internal/feed"
	"exiot/internal/notify"
	"exiot/internal/pipeline"
	"exiot/internal/simnet"
)

const durableProofHours = 48

func durableProofWorld(seed int64, workers int) *simnet.World {
	cfg := simnet.DefaultConfig(seed)
	cfg.NumInfected = 150
	cfg.NumNonIoT = 30
	cfg.NumResearch = 3
	cfg.NumMisconfig = 20
	cfg.NumBackscat = 6
	cfg.Days = 2
	cfg.MaxPacketsPerHostHour = 600
	cfg.Workers = workers
	return simnet.NewWorld(cfg)
}

// durableProofLocal assembles a pipeline over a fresh same-seed world;
// dir == "" runs without persistence (the uninterrupted baseline).
func durableProofLocal(t *testing.T, seed int64, workers int, dir string) (*pipeline.Local, *simnet.World) {
	t.Helper()
	w := durableProofWorld(seed, workers)
	cfg := pipeline.DefaultLocalConfig()
	cfg.Workers = workers
	if dir != "" {
		cfg.Durable = pipeline.DurableConfig{
			Dir:          dir,
			Sync:         durable.SyncOff, // fsync policy is orthogonal to the equivalence proof
			SegmentBytes: 256 << 10,       // force segment rotation
		}
	}
	l, err := pipeline.NewDurableLocal(cfg, w, w.Registry(), &notify.MemoryMailer{})
	if err != nil {
		t.Fatal(err)
	}
	return l, w
}

func driveProofHours(l *pipeline.Local, w *simnet.World, from, to int) {
	for h := from; h < to; h++ {
		hour := w.Start().Add(time.Duration(h) * time.Hour)
		l.ProcessHour(w.GenerateHour(hour), hour)
	}
}

// feedFingerprint is everything the ISSUE's equivalence bar compares:
// the live DB, the two-week archive, lifetime counters, and the bulk
// NDJSON export exactly as the REST API streams it.
type feedFingerprint struct {
	latest     []feed.Record
	historical []feed.Record
	counters   pipeline.Counters
	ndjson     string
}

func fingerprintFeed(t *testing.T, s *pipeline.Server) feedFingerprint {
	t.Helper()
	var fp feedFingerprint
	for _, d := range s.Latest().Export() {
		fp.latest = append(fp.latest, d.Value)
	}
	fp.historical = s.Records(api.Query{})
	fp.counters = s.Counters()

	apiSrv := api.NewServer(s, s.Notifier())
	apiSrv.AddKey("proof-key", "durable-test")
	ts := httptest.NewServer(apiSrv)
	defer ts.Close()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/export", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "proof-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp.StatusCode)
	}
	fp.ndjson = string(body)
	return fp
}

// damageWALTail mutilates the newest WAL segment the way a crash mid-
// write would: "torn" truncates inside the last record, "bitflip"
// corrupts a byte of its payload. Either way recovery must truncate
// back to the last intact record and resume from there.
func damageWALTail(t *testing.T, dir, mode string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments to damage: %v", err)
	}
	last := segs[len(segs)-1]
	offsets, validLen, err := durable.RecordOffsets(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) == 0 {
		t.Fatalf("last segment %s holds no records", last)
	}
	lastStart := offsets[len(offsets)-1]
	mid := lastStart + (validLen-lastStart)/2
	if mid <= lastStart {
		mid = lastStart + 1
	}
	switch mode {
	case "torn":
		if err := os.Truncate(last, mid); err != nil {
			t.Fatal(err)
		}
	case "bitflip":
		f, err := os.OpenFile(last, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, mid); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x40
		if _, err := f.WriteAt(b, mid); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown damage mode %q", mode)
	}
}

func TestKillRecoverEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day pipeline run")
	}
	const seed = 99

	base, bw := durableProofLocal(t, seed, 1, "")
	driveProofHours(base, bw, 0, durableProofHours)
	base.Finish(bw.Start().Add(durableProofHours * time.Hour))
	want := fingerprintFeed(t, base.Server())
	if len(want.historical) == 0 {
		t.Fatal("baseline run produced no feed records")
	}

	for _, tc := range []struct {
		name      string
		workers   int
		crashHour int
		damage    string
	}{
		{"serial-torn-tail", 1, 29, "torn"},
		{"parallel-bitflip", 4, 17, "bitflip"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()

			// Phase 1: run partway, then hard-stop — no Finish, no
			// Close, no final snapshot. Only what already hit the WAL
			// survives, and even its tail gets mangled.
			crashed, cw := durableProofLocal(t, seed, tc.workers, dir)
			driveProofHours(crashed, cw, 0, tc.crashHour)
			damageWALTail(t, dir, tc.damage)

			// The damaged directory still passes a coarse sanity scan:
			// Verify flags the damage, Inspect does not panic.
			if problems, err := durable.Verify(dir); err != nil {
				t.Fatal(err)
			} else if len(problems) == 0 {
				t.Error("Verify did not flag the damaged WAL tail")
			}

			// Phase 2: a fresh process recovers and re-drives the same
			// regenerated hours; recovered deliveries are skipped, the
			// torn-away tail is healed by regeneration.
			rec, rw := durableProofLocal(t, seed, tc.workers, dir)
			d := rec.Durable()
			if d == nil {
				t.Fatal("recovery run has no durable layer")
			}
			if got := d.Recovery().Events(); got == 0 {
				t.Fatal("recovery found no prior state")
			}
			driveProofHours(rec, rw, 0, durableProofHours)
			rec.Finish(rw.Start().Add(durableProofHours * time.Hour))
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			if err := d.Err(); err != nil {
				t.Fatalf("durable layer reported a sticky error: %v", err)
			}
			got := fingerprintFeed(t, rec.Server())

			if len(got.latest) != len(want.latest) {
				t.Fatalf("latest DB size differs: recovered %d, baseline %d",
					len(got.latest), len(want.latest))
			}
			for i := range want.latest {
				if !reflect.DeepEqual(got.latest[i], want.latest[i]) {
					t.Fatalf("latest record %d differs:\n recovered: %+v\n baseline:  %+v",
						i, got.latest[i], want.latest[i])
				}
			}
			if len(got.historical) != len(want.historical) {
				t.Fatalf("historical DB size differs: recovered %d, baseline %d",
					len(got.historical), len(want.historical))
			}
			for i := range want.historical {
				if !reflect.DeepEqual(got.historical[i], want.historical[i]) {
					t.Fatalf("historical record %d differs:\n recovered: %+v\n baseline:  %+v",
						i, got.historical[i], want.historical[i])
				}
			}
			if got.counters != want.counters {
				t.Errorf("server counters differ:\n recovered: %+v\n baseline:  %+v",
					got.counters, want.counters)
			}
			if got.ndjson != want.ndjson {
				gl := strings.Split(got.ndjson, "\n")
				wl := strings.Split(want.ndjson, "\n")
				for i := range wl {
					if i >= len(gl) || gl[i] != wl[i] {
						t.Fatalf("NDJSON export differs at line %d:\n recovered: %s\n baseline:  %s",
							i, line(gl, i), wl[i])
					}
				}
				t.Fatalf("NDJSON export differs: recovered %d lines, baseline %d", len(gl), len(wl))
			}

			// The clean, closed directory verifies end to end.
			if problems, err := durable.Verify(dir); err != nil {
				t.Fatal(err)
			} else if len(problems) > 0 {
				t.Errorf("closed state dir has problems: %v", problems)
			}
		})
	}
}

func line(ls []string, i int) string {
	if i < len(ls) {
		return ls[i]
	}
	return "<missing>"
}
