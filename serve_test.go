// Cross-package inertness proof for the feed distribution layer: after
// a full simulated day, the snapshot-backed read path must serve a bulk
// NDJSON export byte-identical to walking the document store — through
// the cache directly, through the REST API, and through the gzip
// variant — at any worker count. The cache is a pure view: installing
// it changes how bytes are served, never which bytes.
package exiot_test

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"exiot/internal/api"
	"exiot/internal/feedserve"
)

func TestSnapshotExportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour simulation")
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			l, w := durableProofLocal(t, 7117, workers, "")
			driveProofHours(l, w, 0, 24)
			l.Finish(w.Start().Add(24 * time.Hour))
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			srv := l.Server()

			// The reference: the API's store-walked export, captured before
			// any cache exists.
			legacy := fingerprintFeed(t, srv)
			if legacy.ndjson == "" {
				t.Fatal("simulation produced an empty feed; the proof would be vacuous")
			}

			cache := srv.NewFeedCache(feedserve.Config{})
			defer cache.Close()
			snap := cache.Current()
			if snap.Len() == 0 {
				t.Fatal("cache built an empty snapshot over a populated feed")
			}
			if string(snap.ExportNDJSON()) != legacy.ndjson {
				t.Fatal("snapshot export differs from the store-walked export")
			}

			// Through the API with the cache installed: identity encoding…
			apiSrv := api.NewServer(srv, srv.Notifier())
			apiSrv.AddKey("proof-key", "serve-test")
			apiSrv.SetFeedCache(cache)
			ts := httptest.NewServer(apiSrv)
			defer ts.Close()

			fetch := func(gz bool) (*http.Response, []byte) {
				t.Helper()
				req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/export", nil)
				if err != nil {
					t.Fatal(err)
				}
				req.Header.Set("X-API-Key", "proof-key")
				if gz {
					req.Header.Set("Accept-Encoding", "gzip")
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("export status = %d", resp.StatusCode)
				}
				return resp, body
			}

			resp, body := fetch(false)
			if string(body) != legacy.ndjson {
				t.Fatal("cached API export differs from the store-walked export")
			}
			etag := resp.Header.Get("ETag")
			if etag == "" {
				t.Fatal("cached export carries no ETag")
			}

			// …and the precomputed gzip variant decompresses to the same bytes.
			gresp, gzBody := fetch(true)
			if gresp.Header.Get("Content-Encoding") != "gzip" {
				t.Fatalf("Content-Encoding = %q", gresp.Header.Get("Content-Encoding"))
			}
			zr, err := gzip.NewReader(bytes.NewReader(gzBody))
			if err != nil {
				t.Fatal(err)
			}
			raw, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			if string(raw) != legacy.ndjson {
				t.Fatal("gzip export does not decompress to the store-walked bytes")
			}

			// The validator the export advertised revalidates to a body-less 304.
			req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/export", nil)
			req.Header.Set("X-API-Key", "proof-key")
			req.Header.Set("If-None-Match", etag)
			cresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer cresp.Body.Close()
			b, _ := io.ReadAll(cresp.Body)
			if cresp.StatusCode != http.StatusNotModified || len(b) != 0 {
				t.Fatalf("conditional export: status=%d body=%d bytes", cresp.StatusCode, len(b))
			}
		})
	}
}
