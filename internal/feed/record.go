// Package feed defines eX-IoT's CTI record — the unit of threat
// intelligence the pipeline produces and the API serves — plus the
// feed-quality metrics of the paper's evaluation (volume, differential
// and exclusive contribution, normalized intersection, latency, and
// precision/coverage).
package feed

import (
	"time"

	"exiot/internal/zmap"
)

// Label values for the binary classifier outcome.
const (
	LabelIoT    = "IoT"
	LabelNonIoT = "non-IoT"
)

// Label sources.
const (
	// SourceBanner marks labels derived from fingerprinted banners
	// (ground truth for training).
	SourceBanner = "banner"
	// SourceModel marks labels predicted by the classifier.
	SourceModel = "model"
)

// Record is one CTI feed entry about a scanning source.
type Record struct {
	IP string `json:"ip"`

	// Flow timeline.
	FirstSeen  time.Time  `json:"first_seen"`
	DetectedAt time.Time  `json:"detected_at"`
	LastSeen   time.Time  `json:"last_seen"`
	EndedAt    *time.Time `json:"ended_at,omitempty"`
	Active     bool       `json:"active"`
	// AppearedAt is when the record became visible in the feed — it lags
	// DetectedAt by collection, batching, and processing delays and is
	// what the latency evaluation measures.
	AppearedAt time.Time `json:"appeared_at"`

	// Classification.
	Label       string  `json:"label"`
	Score       float64 `json:"score"`
	LabelSource string  `json:"label_source"`
	Benign      bool    `json:"benign"`
	Tool        string  `json:"tool,omitempty"`

	// Device details (when banners allow).
	Vendor     string `json:"vendor,omitempty"`
	DeviceType string `json:"device_type,omitempty"`
	Model      string `json:"model,omitempty"`
	Firmware   string `json:"firmware,omitempty"`

	// Geo / WHOIS enrichment.
	Country     string  `json:"country,omitempty"`
	CountryCode string  `json:"country_code,omitempty"`
	Continent   string  `json:"continent,omitempty"`
	City        string  `json:"city,omitempty"`
	Lat         float64 `json:"lat,omitempty"`
	Lon         float64 `json:"lon,omitempty"`
	ASN         int     `json:"asn,omitempty"`
	ISP         string  `json:"isp,omitempty"`
	Org         string  `json:"org,omitempty"`
	Sector      string  `json:"sector,omitempty"`
	RDNS        string  `json:"rdns,omitempty"`
	Domain      string  `json:"domain,omitempty"`
	AbuseEmail  string  `json:"abuse_email,omitempty"`

	// Traffic characterization.
	TargetPorts    map[uint16]int `json:"target_ports,omitempty"`
	ScanRatePPS    float64        `json:"scan_rate_pps,omitempty"`
	AddrRepetition float64        `json:"addr_repetition,omitempty"`

	// Active measurement results.
	OpenPorts []uint16      `json:"open_ports,omitempty"`
	Banners   []zmap.Banner `json:"banners,omitempty"`

	// Provenance summarizes how the record came to be (detection →
	// probe → classification → enrichment). Always attached, always
	// deterministic: it contains no wall-clock timings, so the feed is
	// byte-identical with tracing on or off and at any worker count.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Provenance is a record's compact lineage summary: the evidence an
// analyst needs to answer "why is this IP in the feed?" and the trace
// ID joining the record to the /traces timing store and offline WAL
// forensics.
type Provenance struct {
	// TraceID is the deterministic per-event trace identifier (hex).
	TraceID string `json:"trace_id,omitempty"`
	// TriggerHour is the detection hour the trace ID derives from.
	TriggerHour time.Time `json:"trigger_hour"`
	// SampleSize is how many packets the sampler captured post-trigger.
	SampleSize int `json:"sample_size"`
	// PortsProbed / OpenPorts / BannersGrabbed summarize the active
	// measurement sweep.
	PortsProbed    int `json:"ports_probed"`
	OpenPorts      int `json:"open_ports"`
	BannersGrabbed int `json:"banners_grabbed"`
	// BannerRule names the fingerprint rule that labeled the record
	// (banner-labeled records only).
	BannerRule string `json:"banner_rule,omitempty"`
	// VoteMargin is |2·score − 1|: the forest's (or the banner ground
	// truth's) distance from a coin flip. 0 means an unclassified
	// bootstrap record.
	VoteMargin float64 `json:"vote_margin,omitempty"`
	// EnrichSources lists which enrichment lookups contributed fields.
	EnrichSources []string `json:"enrich_sources,omitempty"`
}

// IsIoT reports whether the record is labeled IoT.
func (r *Record) IsIoT() bool { return r.Label == LabelIoT }

// TopPorts returns the record's n most targeted ports, descending.
func (r *Record) TopPorts(n int) []uint16 {
	type pc struct {
		port  uint16
		count int
	}
	items := make([]pc, 0, len(r.TargetPorts))
	for p, c := range r.TargetPorts {
		items = append(items, pc{p, c})
	}
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && (items[j].count > items[j-1].count ||
			(items[j].count == items[j-1].count && items[j].port < items[j-1].port)); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	if n > len(items) {
		n = len(items)
	}
	out := make([]uint16, n)
	for i := 0; i < n; i++ {
		out[i] = items[i].port
	}
	return out
}
