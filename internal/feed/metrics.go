package feed

import (
	"sort"
	"time"
)

// IndicatorSet is a set of feed indicators (IP addresses as strings).
type IndicatorSet map[string]struct{}

// NewIndicatorSet builds a set from a list of indicators.
func NewIndicatorSet(items []string) IndicatorSet {
	s := make(IndicatorSet, len(items))
	for _, it := range items {
		s[it] = struct{}{}
	}
	return s
}

// Add inserts one indicator.
func (s IndicatorSet) Add(item string) { s[item] = struct{}{} }

// Contains reports membership.
func (s IndicatorSet) Contains(item string) bool {
	_, ok := s[item]
	return ok
}

// Len returns the set's cardinality.
func (s IndicatorSet) Len() int { return len(s) }

// Intersect returns |s ∩ other|.
func (s IndicatorSet) Intersect(other IndicatorSet) int {
	small, large := s, other
	if len(large) < len(small) {
		small, large = large, small
	}
	n := 0
	for it := range small {
		if large.Contains(it) {
			n++
		}
	}
	return n
}

// Differential computes Diff_{A,B} = |A\B| / |A|: the fraction of A's
// indicators absent from B. 1 means disjoint feeds, 0 means A ⊆ B.
func Differential(a, b IndicatorSet) float64 {
	if len(a) == 0 {
		return 0
	}
	return float64(len(a)-a.Intersect(b)) / float64(len(a))
}

// NormalizedIntersection is 1 − Diff_{A,B}.
func NormalizedIntersection(a, b IndicatorSet) float64 {
	return 1 - Differential(a, b)
}

// ExclusiveContribution computes Uniq_{A,B} = |A \ ∪(others)| / |A|: the
// fraction of A's indicators no other feed carries.
func ExclusiveContribution(a IndicatorSet, others ...IndicatorSet) float64 {
	if len(a) == 0 {
		return 0
	}
	unique := 0
	for it := range a {
		found := false
		for _, o := range others {
			if o.Contains(it) {
				found = true
				break
			}
		}
		if !found {
			unique++
		}
	}
	return float64(unique) / float64(len(a))
}

// UnionOverlap returns |A ∩ (∪ others)| — the complement count reported
// in Table IV.
func UnionOverlap(a IndicatorSet, others ...IndicatorSet) int {
	n := 0
	for it := range a {
		for _, o := range others {
			if o.Contains(it) {
				n++
				break
			}
		}
	}
	return n
}

// ContributionReport is one Table IV row set: eX-IoT contrasted against
// another feed.
type ContributionReport struct {
	FeedName               string  `json:"feed"`
	Indicators             int     `json:"indicators"`
	Differential           float64 `json:"differential"`
	NormalizedIntersection float64 `json:"normalized_intersection"`
}

// CompareFeeds produces Table IV: per-feed differential metrics plus the
// aggregate exclusive contribution of the reference feed.
func CompareFeeds(ref IndicatorSet, against map[string]IndicatorSet) (rows []ContributionReport, unionOverlap int, uniq float64) {
	names := make([]string, 0, len(against))
	for name := range against {
		names = append(names, name)
	}
	sort.Strings(names)
	others := make([]IndicatorSet, 0, len(against))
	for _, name := range names {
		other := against[name]
		rows = append(rows, ContributionReport{
			FeedName:               name,
			Indicators:             ref.Intersect(other),
			Differential:           Differential(ref, other),
			NormalizedIntersection: NormalizedIntersection(ref, other),
		})
		others = append(others, other)
	}
	return rows, UnionOverlap(ref, others...), ExclusiveContribution(ref, others...)
}

// Latency computes, per feed, the delay between an indicator's first
// appearance in any feed and its appearance in that feed — the paper's
// latency metric. appearances maps feed name → indicator → first-seen.
func Latency(appearances map[string]map[string]time.Time) map[string]time.Duration {
	// Earliest sighting across feeds per indicator.
	earliest := map[string]time.Time{}
	for _, feedApp := range appearances {
		for ind, ts := range feedApp {
			if cur, ok := earliest[ind]; !ok || ts.Before(cur) {
				earliest[ind] = ts
			}
		}
	}
	out := make(map[string]time.Duration, len(appearances))
	for name, feedApp := range appearances {
		var total time.Duration
		n := 0
		for ind, ts := range feedApp {
			total += ts.Sub(earliest[ind])
			n++
		}
		if n > 0 {
			out[name] = total / time.Duration(n)
		}
	}
	return out
}

// PrecisionCoverage computes the paper's accuracy (precision) and
// coverage (recall) of IoT labeling against banner-derived ground truth:
// predicted and truth map indicator → is-IoT. Only indicators present in
// truth participate.
func PrecisionCoverage(predicted, truth map[string]bool) (precision, coverage float64) {
	tp, fp, fn := 0, 0, 0
	for ind, isIoT := range truth {
		pred, ok := predicted[ind]
		predIoT := ok && pred
		switch {
		case predIoT && isIoT:
			tp++
		case predIoT && !isIoT:
			fp++
		case !predIoT && isIoT:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		coverage = float64(tp) / float64(tp+fn)
	}
	return precision, coverage
}

// VolumeRow is one Table III row: daily indicator volume.
type VolumeRow struct {
	FeedName    string  `json:"feed"`
	AllPerDay   float64 `json:"all_per_day"`
	IoTPerDay   float64 `json:"iot_per_day"`
	HasIoTViews bool    `json:"has_iot_views"`
}
