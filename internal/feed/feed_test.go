package feed

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func set(items ...string) IndicatorSet { return NewIndicatorSet(items) }

func TestDifferential(t *testing.T) {
	a := set("1", "2", "3", "4")
	b := set("3", "4", "5")
	if d := Differential(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("Diff = %v, want 0.5", d)
	}
	if d := Differential(a, a); d != 0 {
		t.Errorf("Diff(A,A) = %v, want 0", d)
	}
	if d := Differential(a, set()); d != 1 {
		t.Errorf("Diff(A,∅) = %v, want 1", d)
	}
	if d := Differential(set(), a); d != 0 {
		t.Errorf("Diff(∅,A) = %v, want 0", d)
	}
	if ni := NormalizedIntersection(a, b); math.Abs(ni-0.5) > 1e-12 {
		t.Errorf("NormInt = %v, want 0.5", ni)
	}
}

func TestExclusiveContribution(t *testing.T) {
	a := set("1", "2", "3", "4", "5")
	b := set("1")
	c := set("2", "9")
	if u := ExclusiveContribution(a, b, c); math.Abs(u-0.6) > 1e-12 {
		t.Errorf("Uniq = %v, want 0.6", u)
	}
	if u := ExclusiveContribution(a); u != 1 {
		t.Errorf("Uniq vs nothing = %v, want 1", u)
	}
	if u := ExclusiveContribution(set(), b); u != 0 {
		t.Errorf("Uniq(∅) = %v, want 0", u)
	}
	if n := UnionOverlap(a, b, c); n != 2 {
		t.Errorf("UnionOverlap = %d, want 2", n)
	}
}

func TestCompareFeeds(t *testing.T) {
	ref := set("1", "2", "3", "4", "5", "6", "7", "8", "9", "10")
	rows, overlap, uniq := CompareFeeds(ref, map[string]IndicatorSet{
		"greynoise": set("1", "2", "3", "99"),
		"dshield":   set("3", "4"),
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by name: dshield first.
	if rows[0].FeedName != "dshield" || rows[0].Indicators != 2 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if math.Abs(rows[0].Differential-0.8) > 1e-12 {
		t.Errorf("dshield diff = %v", rows[0].Differential)
	}
	if rows[1].FeedName != "greynoise" || rows[1].Indicators != 3 {
		t.Errorf("row 1 = %+v", rows[1])
	}
	if overlap != 4 { // {1,2,3,4}
		t.Errorf("overlap = %d, want 4", overlap)
	}
	if math.Abs(uniq-0.6) > 1e-12 {
		t.Errorf("uniq = %v, want 0.6", uniq)
	}
}

func TestLatency(t *testing.T) {
	t0 := time.Date(2020, 12, 9, 7, 30, 0, 0, time.UTC)
	apps := map[string]map[string]time.Time{
		"exiot": {
			"a": t0.Add(5 * time.Hour),
			"b": t0.Add(4 * time.Hour),
		},
		"greynoise": {
			"a": t0.Add(10 * time.Hour),
		},
		"scanner-truth": {
			"a": t0,
			"b": t0,
		},
	}
	lat := Latency(apps)
	if got := lat["exiot"]; got != 4*time.Hour+30*time.Minute {
		t.Errorf("exiot latency = %v, want 4h30m", got)
	}
	if got := lat["greynoise"]; got != 10*time.Hour {
		t.Errorf("greynoise latency = %v, want 10h", got)
	}
	if got := lat["scanner-truth"]; got != 0 {
		t.Errorf("truth latency = %v, want 0", got)
	}
}

func TestPrecisionCoverage(t *testing.T) {
	truth := map[string]bool{
		"a": true, "b": true, "c": true, "d": false, "e": false,
	}
	pred := map[string]bool{
		"a": true, "b": true, "d": true, // c missed (FN), d wrong (FP)
	}
	p, c := PrecisionCoverage(pred, truth)
	if math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("precision = %v, want 2/3", p)
	}
	if math.Abs(c-2.0/3) > 1e-12 {
		t.Errorf("coverage = %v, want 2/3", c)
	}
	// Indicators not in truth are ignored.
	pred["zz"] = true
	p2, c2 := PrecisionCoverage(pred, truth)
	if p2 != p || c2 != c {
		t.Error("out-of-truth indicators should not affect metrics")
	}
	p, c = PrecisionCoverage(nil, truth)
	if p != 0 || c != 0 {
		t.Errorf("empty prediction: p=%v c=%v", p, c)
	}
}

func TestIndicatorSetOps(t *testing.T) {
	s := set("x")
	s.Add("y")
	if !s.Contains("y") || s.Contains("z") || s.Len() != 2 {
		t.Errorf("set ops broken: %v", s)
	}
	big := set("1", "2", "3", "4", "5")
	small := set("4", "5", "6")
	if big.Intersect(small) != 2 || small.Intersect(big) != 2 {
		t.Error("Intersect not symmetric")
	}
}

func TestRecordTopPorts(t *testing.T) {
	r := Record{TargetPorts: map[uint16]int{23: 100, 80: 50, 8080: 75, 81: 10}}
	top := r.TopPorts(3)
	if len(top) != 3 || top[0] != 23 || top[1] != 8080 || top[2] != 80 {
		t.Errorf("TopPorts = %v", top)
	}
	if got := r.TopPorts(10); len(got) != 4 {
		t.Errorf("TopPorts over-asks = %v", got)
	}
	empty := Record{}
	if got := empty.TopPorts(3); len(got) != 0 {
		t.Errorf("empty TopPorts = %v", got)
	}
}

func TestRecordIsIoT(t *testing.T) {
	r := Record{Label: LabelIoT}
	if !r.IsIoT() {
		t.Error("IoT record not recognized")
	}
	r.Label = LabelNonIoT
	if r.IsIoT() {
		t.Error("non-IoT record recognized as IoT")
	}
}

func TestTopPortsTieBreak(t *testing.T) {
	r := Record{TargetPorts: map[uint16]int{23: 10, 80: 10, 8080: 10}}
	top := r.TopPorts(3)
	// Equal counts break ties by ascending port for determinism.
	if top[0] != 23 || top[1] != 80 || top[2] != 8080 {
		t.Errorf("tie-broken TopPorts = %v", top)
	}
}

// randomSets builds two random indicator sets from fuzz input.
func randomSets(a, b []uint8) (IndicatorSet, IndicatorSet) {
	sa, sb := make(IndicatorSet), make(IndicatorSet)
	for _, v := range a {
		sa.Add(fmt.Sprintf("10.0.0.%d", v%64))
	}
	for _, v := range b {
		sb.Add(fmt.Sprintf("10.0.0.%d", v%64))
	}
	return sa, sb
}

func TestMetricInvariantsProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := randomSets(a, b)
		d := Differential(sa, sb)
		ni := NormalizedIntersection(sa, sb)
		// Complementarity and range.
		if d < 0 || d > 1 || ni < 0 || ni > 1 {
			return false
		}
		if math.Abs(d+ni-1) > 1e-12 && sa.Len() > 0 {
			return false
		}
		// Self-comparison: Diff(A,A) = 0 for non-empty A.
		if sa.Len() > 0 && Differential(sa, sa) != 0 {
			return false
		}
		// Exclusive contribution vs one feed equals the differential.
		if math.Abs(ExclusiveContribution(sa, sb)-d) > 1e-12 {
			return false
		}
		// Union overlap is bounded by both set sizes.
		ov := UnionOverlap(sa, sb)
		return ov <= sa.Len() && ov <= sb.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntersectSymmetricProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := randomSets(a, b)
		return sa.Intersect(sb) == sb.Intersect(sa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
