// Package mbuf provides the bounded in-memory FIFO that decouples
// pipeline stages with mismatched processing rates — the role mbuffer's
// 15 GB FIFO plays between the receiver and the processing modules in the
// paper's deployment. Producers block when the buffer is full
// (back-pressure), consumers block when it is empty.
package mbuf

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("mbuf: buffer closed")

// Buffer is a bounded FIFO of T, safe for concurrent producers and
// consumers.
type Buffer[T any] struct {
	ch        chan T
	closeOnce sync.Once

	pushed    atomic.Int64
	popped    atomic.Int64
	highWater atomic.Int64
}

// New creates a buffer holding up to capacity items.
func New[T any](capacity int) *Buffer[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer[T]{ch: make(chan T, capacity)}
}

// Push enqueues item, blocking while the buffer is full. It returns
// ErrClosed if the buffer has been closed.
func (b *Buffer[T]) Push(item T) (err error) {
	defer func() {
		if recover() != nil {
			err = ErrClosed
		}
	}()
	b.ch <- item
	b.pushed.Add(1)
	if n := int64(len(b.ch)); n > b.highWater.Load() {
		b.highWater.Store(n)
	}
	return nil
}

// Pop dequeues the oldest item, blocking while the buffer is empty. ok is
// false once the buffer is closed and drained.
func (b *Buffer[T]) Pop() (item T, ok bool) {
	item, ok = <-b.ch
	if ok {
		b.popped.Add(1)
	}
	return item, ok
}

// TryPop dequeues without blocking; ok is false when nothing is ready.
func (b *Buffer[T]) TryPop() (item T, ok bool) {
	select {
	case item, ok = <-b.ch:
		if ok {
			b.popped.Add(1)
		}
		return item, ok
	default:
		var zero T
		return zero, false
	}
}

// Close marks the end of input. Pending items remain poppable.
func (b *Buffer[T]) Close() {
	b.closeOnce.Do(func() { close(b.ch) })
}

// Len returns the number of buffered items.
func (b *Buffer[T]) Len() int { return len(b.ch) }

// Stats reports lifetime counters: pushed, popped, and high-water mark.
func (b *Buffer[T]) Stats() (pushed, popped, highWater int64) {
	return b.pushed.Load(), b.popped.Load(), b.highWater.Load()
}
