package mbuf

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFIFOOrder(t *testing.T) {
	b := New[int](100)
	for i := 0; i < 50; i++ {
		if err := b.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		v, ok := b.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d = %d, %v", i, v, ok)
		}
	}
}

func TestBackPressure(t *testing.T) {
	b := New[int](2)
	if err := b.Push(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Push(2); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.Push(3) // must block until a Pop frees space
	}()
	select {
	case <-done:
		t.Fatal("Push did not block on a full buffer")
	case <-time.After(20 * time.Millisecond):
	}
	if v, ok := b.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = %d, %v", v, ok)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Push stayed blocked after space freed")
	}
}

func TestCloseSemantics(t *testing.T) {
	b := New[string](4)
	b.Push("a")
	b.Close()
	b.Close() // idempotent
	if err := b.Push("b"); !errors.Is(err, ErrClosed) {
		t.Errorf("Push after Close = %v, want ErrClosed", err)
	}
	if v, ok := b.Pop(); !ok || v != "a" {
		t.Errorf("pending item lost after Close: %q, %v", v, ok)
	}
	if _, ok := b.Pop(); ok {
		t.Error("Pop after drain should report !ok")
	}
}

func TestTryPop(t *testing.T) {
	b := New[int](4)
	if _, ok := b.TryPop(); ok {
		t.Error("TryPop on empty buffer succeeded")
	}
	b.Push(7)
	if v, ok := b.TryPop(); !ok || v != 7 {
		t.Errorf("TryPop = %d, %v", v, ok)
	}
}

func TestStats(t *testing.T) {
	b := New[int](10)
	for i := 0; i < 8; i++ {
		b.Push(i)
	}
	for i := 0; i < 3; i++ {
		b.Pop()
	}
	pushed, popped, hw := b.Stats()
	if pushed != 8 || popped != 3 {
		t.Errorf("stats = %d pushed, %d popped", pushed, popped)
	}
	if hw < 5 || hw > 8 {
		t.Errorf("high water = %d, want within [5,8]", hw)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	b := New[int](16)
	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := b.Push(p*perProducer + i); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		b.Close()
	}()

	seen := make(map[int]bool, producers*perProducer)
	var mu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := b.Pop()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate item %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Errorf("consumed %d items, want %d", len(seen), producers*perProducer)
	}
}

func TestMinimumCapacity(t *testing.T) {
	b := New[int](0)
	if err := b.Push(1); err != nil {
		t.Fatal("capacity floor broken")
	}
	if v, ok := b.Pop(); !ok || v != 1 {
		t.Fatal("roundtrip broken")
	}
}
