package experiments

import (
	"fmt"
	"strings"
	"time"

	"exiot/internal/pipeline"
	"exiot/internal/recog"
	"exiot/internal/simnet"
	"exiot/internal/trw"
	"exiot/internal/zmap"
)

// ThroughputResult is E10: the flow-detection module's processing rate
// (the paper: "this module spends close to 20 minutes to analyze one hour
// of data" at >1M pps).
type ThroughputResult struct {
	Packets           int64
	WallTime          time.Duration
	PacketsPerSec     float64
	Scanners          int64
	Backscatter       int64
	SecondReports     int64
	SpeedupVsRealtime float64
}

// Throughput pushes one simulated hour through the flow detector and
// measures wall-clock processing speed.
func Throughput(scale Scale) ThroughputResult {
	w := simnet.NewWorld(scale.worldConfig())
	// Use a late hour: hosts come online through the span, so early hours
	// under-represent steady-state load.
	hour := w.Start().Add(18 * time.Hour)
	pkts := w.GenerateHour(hour)

	var reports int64
	sampler := pipeline.NewSamplerWorkers(trw.Default(), 0, scale.Workers, func(e pipeline.SamplerEvent) {
		if e.Kind == pipeline.SamplerReport {
			reports++
		}
	})
	start := time.Now()
	sampler.ProcessHour(pkts, hour.Add(time.Hour))
	wall := time.Since(start)

	st := sampler.DetectorStats()
	sampler.Close()
	res := ThroughputResult{
		Packets:       int64(len(pkts)),
		WallTime:      wall,
		Scanners:      st.ScannersFound,
		Backscatter:   st.Backscatter,
		SecondReports: reports,
	}
	if wall > 0 {
		res.PacketsPerSec = float64(len(pkts)) / wall.Seconds()
		res.SpeedupVsRealtime = time.Hour.Seconds() / wall.Seconds()
	}
	return res
}

// String renders the throughput experiment.
func (r ThroughputResult) String() string {
	var sb strings.Builder
	sb.WriteString("Flow detection throughput — one simulated hour\n")
	fmt.Fprintf(&sb, "  packets:         %d (backscatter filtered: %d)\n", r.Packets, r.Backscatter)
	fmt.Fprintf(&sb, "  wall time:       %v (%.0f pkts/s, %.0f× realtime)\n",
		r.WallTime.Round(time.Millisecond), r.PacketsPerSec, r.SpeedupVsRealtime)
	fmt.Fprintf(&sb, "  scanners found:  %d, per-second reports: %d\n", r.Scanners, r.SecondReports)
	sb.WriteString("  (paper processes 1 h of ~1M pps telescope data in ≈20 min)\n")
	return sb.String()
}

// BannerAvailabilityResult is E11: the §VI limitation measurement.
type BannerAvailabilityResult struct {
	Infected        int
	ReturningBanner int
	TextualBanner   int
}

// BannerAvailability measures how many infected devices are reachable by
// active probes and how many yield device-identifying text — "textual"
// means the fingerprint base can extract vendor/model details, matching
// the paper's ~3 % figure.
func BannerAvailability(scale Scale) BannerAvailabilityResult {
	w := simnet.NewWorld(scale.worldConfig())
	scanner := zmap.NewScanner(w)
	db := recog.NewDB()
	var res BannerAvailabilityResult
	for _, h := range w.Hosts() {
		if !h.IsIoT() {
			continue
		}
		res.Infected++
		scan := scanner.ScanHost(h.IP)
		if !scan.HasBanner() {
			continue
		}
		res.ReturningBanner++
		if m, ok := db.MatchAny(scan.BannerTexts()); ok && m.Detailed() {
			res.TextualBanner++
		}
	}
	return res
}

// String renders the banner-availability measurement.
func (r BannerAvailabilityResult) String() string {
	pct := func(n int) float64 { return 100 * float64(n) / float64(max(r.Infected, 1)) }
	return fmt.Sprintf(
		"Banner availability — §VI limitation\n"+
			"  infected devices:          %d\n"+
			"  returning any banner:      %d (%.1f%%, paper: <10%%)\n"+
			"  with textual device info:  %d (%.1f%%, paper: ≈3%%)\n",
		r.Infected, r.ReturningBanner, pct(r.ReturningBanner),
		r.TextualBanner, pct(r.TextualBanner))
}
