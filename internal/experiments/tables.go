package experiments

import (
	"fmt"
	"sort"
	"strings"

	"exiot/internal/features"
	"exiot/internal/feed"
	"exiot/internal/zmap"
)

// TableIResult is E1: the scan module's port/protocol surface.
type TableIResult struct {
	Ports     []uint16
	Protocols []string
}

// TableI reports the supported ports and protocols.
func TableI() TableIResult {
	ports := make([]uint16, len(zmap.Ports))
	copy(ports, zmap.Ports)
	protos := make([]string, len(zmap.Protocols))
	copy(protos, zmap.Protocols)
	return TableIResult{Ports: ports, Protocols: protos}
}

// String renders Table I.
func (r TableIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table I — supported ports and protocols\n")
	fmt.Fprintf(&sb, "  Ports (%d): ", len(r.Ports))
	for i, p := range r.Ports {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", p)
	}
	fmt.Fprintf(&sb, "\n  Protocols (%d): %s\n", len(r.Protocols), strings.Join(r.Protocols, ", "))
	return sb.String()
}

// TableIIResult is E2: the feature layout.
type TableIIResult struct {
	Fields []string
	Stats  []string
	Dim    int
}

// TableII reports the extracted fields and feature dimensionality.
func TableII() TableIIResult {
	return TableIIResult{
		Fields: features.FieldNames[:],
		Stats:  features.StatNames[:],
		Dim:    features.Dim,
	}
}

// String renders Table II.
func (r TableIIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table II — extracted fields\n")
	fmt.Fprintf(&sb, "  Fields (%d): %s\n", len(r.Fields), strings.Join(r.Fields, ", "))
	fmt.Fprintf(&sb, "  Stats per field: %s\n", strings.Join(r.Stats, ", "))
	fmt.Fprintf(&sb, "  Feature dimensionality: %d × %d = %d\n", len(r.Fields), len(r.Stats), r.Dim)
	return sb.String()
}

// TableIIIResult is E3: the volumetric feed comparison.
type TableIIIResult struct {
	Rows []feed.VolumeRow
	// Ratios against eX-IoT, for shape checks.
	AllRatioGN  float64
	IoTRatioGN  float64
	GNBreakdown map[string]int
}

// TableIII computes daily feed volumes: eX-IoT vs GreyNoise vs DShield,
// all-records and IoT-specific.
func TableIII(e *Env) TableIIIResult {
	days := float64(e.Scale.Days)
	var exAll, exIoT int
	for _, rec := range e.Records() {
		exAll++
		if rec.IsIoT() && !rec.Benign {
			exIoT++
		}
	}
	gnAll := e.GreyNoise.DailyRecords(e.Scale.Days)
	gnIoT := e.GreyNoise.MiraiDailyRecords(e.Scale.Days)
	res := TableIIIResult{
		Rows: []feed.VolumeRow{
			{FeedName: "eX-IoT", AllPerDay: float64(exAll) / days, IoTPerDay: float64(exIoT) / days, HasIoTViews: true},
			{FeedName: "GreyNoise", AllPerDay: gnAll, IoTPerDay: gnIoT, HasIoTViews: true},
			{FeedName: "DShield", AllPerDay: e.DShield.DailyRecords(e.Scale.Days), HasIoTViews: false},
		},
		GNBreakdown: e.GreyNoise.Classifications(),
	}
	if gnAll > 0 {
		res.AllRatioGN = res.Rows[0].AllPerDay / gnAll
	}
	if gnIoT > 0 {
		res.IoTRatioGN = res.Rows[0].IoTPerDay / gnIoT
	}
	return res
}

// String renders Table III.
func (r TableIIIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table III — volumetric comparison (new records / day, scaled)\n")
	fmt.Fprintf(&sb, "  %-12s %12s %14s\n", "feed", "all", "IoT-specific")
	for _, row := range r.Rows {
		iot := "N/A"
		if row.HasIoTViews {
			iot = fmt.Sprintf("%.0f", row.IoTPerDay)
		}
		fmt.Fprintf(&sb, "  %-12s %12.0f %14s\n", row.FeedName, row.AllPerDay, iot)
	}
	fmt.Fprintf(&sb, "  eX-IoT/GreyNoise: all ×%.1f (paper ≈3.5), IoT ×%.1f (paper ≈7.1)\n",
		r.AllRatioGN, r.IoTRatioGN)
	fmt.Fprintf(&sb, "  GreyNoise verdicts: %v\n", r.GNBreakdown)
	return sb.String()
}

// TableIVResult is E4: differential/exclusive contribution.
type TableIVResult struct {
	ReferenceSize int
	Rows          []feed.ContributionReport
	UnionOverlap  int
	Uniq          float64
}

// TableIV contrasts eX-IoT's IoT indicators with GreyNoise, GreyNoise's
// Mirai subset, and DShield.
func TableIV(e *Env) TableIVResult {
	ref := e.IoTIndicators()
	rows, overlap, uniq := feed.CompareFeeds(ref, map[string]feed.IndicatorSet{
		"GreyNoise":        e.GreyNoise.IndicatorSet(),
		"GreyNoise(Mirai)": e.GreyNoise.MiraiSet(),
		"DShield":          e.DShield.IndicatorSet(),
	})
	return TableIVResult{
		ReferenceSize: ref.Len(),
		Rows:          rows,
		UnionOverlap:  overlap,
		Uniq:          uniq,
	}
}

// String renders Table IV.
func (r TableIVResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table IV — contribution metrics over %d eX-IoT IoT records\n", r.ReferenceSize)
	fmt.Fprintf(&sb, "  %-18s %12s %10s %12s\n", "feed", "#indicators", "Diff", "NormInt")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-18s %12d %10.5f %12.5f\n",
			row.FeedName, row.Indicators, row.Differential, row.NormalizedIntersection)
	}
	fmt.Fprintf(&sb, "  |A ∩ (∪B)| = %d, Uniq = %.5f (paper: Diff 0.79–0.94, Uniq 0.766)\n",
		r.UnionOverlap, r.Uniq)
	return sb.String()
}

// TopEntry is one row of a top-5 breakdown.
type TopEntry struct {
	Name  string
	Count int
	Pct   float64
}

// TableVResult is E5: the global IoT infection snapshot.
type TableVResult struct {
	WindowDays int
	Instances  int
	UniqueIPs  int

	Countries  []TopEntry
	Continents []TopEntry
	ASNs       []TopEntry
	ISPs       []TopEntry
	Sectors    []TopEntry
	Vendors    []TopEntry
	Ports      []TopEntry
}

// TableV aggregates the run's IoT records into the paper's top-5
// characteristics snapshot.
func TableV(e *Env) TableVResult {
	res := TableVResult{WindowDays: e.Scale.Days}
	unique := map[string]struct{}{}
	countries := map[string]int{}
	continents := map[string]int{}
	asns := map[string]int{}
	isps := map[string]int{}
	sectors := map[string]int{}
	vendors := map[string]int{}
	ports := map[string]int{}

	for _, rec := range e.Records() {
		if !rec.IsIoT() || rec.Benign {
			continue
		}
		res.Instances++
		unique[rec.IP] = struct{}{}
		countries[rec.Country]++
		continents[rec.Continent]++
		asns[fmt.Sprintf("%d", rec.ASN)]++
		isps[fmt.Sprintf("%s [%s]", rec.ISP, rec.CountryCode)]++
		if rec.Sector != "Residential" && rec.Sector != "" {
			sectors[rec.Sector]++
		}
		if rec.Vendor != "" {
			vendors[rec.Vendor]++
		}
		for port := range rec.TargetPorts {
			ports[fmt.Sprintf("%d", port)]++
		}
	}
	res.UniqueIPs = len(unique)
	n := res.Instances
	res.Countries = topN(countries, 5, n)
	res.Continents = topN(continents, 5, n)
	res.ASNs = topN(asns, 5, n)
	res.ISPs = topN(isps, 5, n)
	res.Sectors = topN(sectors, 5, 0)
	res.Vendors = topN(vendors, 5, 0)
	res.Ports = topN(ports, 5, n)
	return res
}

func topN(m map[string]int, n, total int) []TopEntry {
	out := make([]TopEntry, 0, len(m))
	for k, v := range m {
		e := TopEntry{Name: k, Count: v}
		if total > 0 {
			e.Pct = 100 * float64(v) / float64(total)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// String renders Table V.
func (r TableVResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table V — top-5 global IoT infection characteristics over %d day(s)\n", r.WindowDays)
	fmt.Fprintf(&sb, "  instances: %d, unique IPs: %d (%.0f%% redundant)\n",
		r.Instances, r.UniqueIPs, 100*(1-float64(r.UniqueIPs)/maxf(float64(r.Instances), 1)))
	writeTop := func(label string, entries []TopEntry, pct bool) {
		fmt.Fprintf(&sb, "  %-12s", label)
		for i, e := range entries {
			if i > 0 {
				sb.WriteString("; ")
			}
			if pct {
				fmt.Fprintf(&sb, "%s (%.2f%%)", e.Name, e.Pct)
			} else {
				fmt.Fprintf(&sb, "%s (%d)", e.Name, e.Count)
			}
		}
		sb.WriteString("\n")
	}
	writeTop("Country", r.Countries, true)
	writeTop("Continent", r.Continents, true)
	writeTop("ASN", r.ASNs, true)
	writeTop("ISP", r.ISPs, true)
	writeTop("Sector", r.Sectors, false)
	writeTop("Vendor", r.Vendors, false)
	writeTop("Ports", r.Ports, true)
	return sb.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
