package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"exiot/internal/features"
	"exiot/internal/ml"
	"exiot/internal/packet"
	"exiot/internal/simnet"
	"exiot/internal/trw"
)

// This file holds the ablation studies DESIGN.md calls out: the design
// choices the paper fixes (TRW threshold, 200-packet samples, the full
// 120-dim feature set, forest size, 14-day window) swept against their
// alternatives.

// TRWAblationRow is one operating point of the detector.
type TRWAblationRow struct {
	Threshold       int
	MinDuration     time.Duration
	ScannersFound   int64
	MisconfigCaught int
	BackscatCaught  int
}

// TRWAblationResult sweeps detector thresholds.
type TRWAblationResult struct {
	Rows []TRWAblationRow
}

// AblationTRW sweeps the TRW packet threshold and the duration floor,
// counting how many true scanners are found and how many
// misconfiguration/backscatter sources leak through — the trade the
// paper's 100-packet / 1-minute operating point settles.
func AblationTRW(scale Scale) TRWAblationResult {
	w := simnet.NewWorld(scale.worldConfig())
	hours := 6
	if scale.Days*24 < hours {
		hours = scale.Days * 24
	}
	var allPkts [][]packet.Packet
	for h := 0; h < hours; h++ {
		allPkts = append(allPkts, w.GenerateHour(w.Start().Add(time.Duration(h)*time.Hour)))
	}

	var res TRWAblationResult
	for _, row := range []struct {
		threshold int
		minDur    time.Duration
	}{
		{25, -1}, {100, -1}, {25, time.Minute}, {50, time.Minute},
		{100, time.Minute}, {200, time.Minute}, {400, time.Minute},
	} {
		cfg := trw.Default()
		cfg.DetectionThreshold = row.threshold
		cfg.MinDuration = row.minDur // -1 = floor disabled
		detected := map[packet.IP]bool{}
		det := trw.NewDetector(cfg, func(e trw.Event) {
			if e.Kind == trw.EventScannerDetected {
				detected[e.IP] = true
			}
		})
		for h, pkts := range allPkts {
			for i := range pkts {
				det.Process(&pkts[i])
			}
			det.EndHour(w.Start().Add(time.Duration(h+1) * time.Hour))
		}
		r := TRWAblationRow{Threshold: row.threshold, MinDuration: row.minDur}
		r.ScannersFound = det.Stats().ScannersFound
		for ip := range detected {
			h, ok := w.HostByIP(ip)
			if !ok {
				continue
			}
			switch h.Kind {
			case simnet.KindMisconfigured:
				r.MisconfigCaught++
			case simnet.KindBackscatter:
				r.BackscatCaught++
			}
		}
		res.Rows = append(res.Rows, r)
	}
	return res
}

// String renders the TRW ablation.
func (r TRWAblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — TRW threshold and duration floor\n")
	fmt.Fprintf(&sb, "  %9s %8s %10s %10s %10s\n", "threshold", "minDur", "scanners", "misconfig", "backscat")
	for _, row := range r.Rows {
		floor := row.MinDuration.String()
		if row.MinDuration < 0 {
			floor = "none"
		}
		fmt.Fprintf(&sb, "  %9d %8s %10d %10d %10d\n",
			row.Threshold, floor, row.ScannersFound, row.MisconfigCaught, row.BackscatCaught)
	}
	sb.WriteString("  (paper operating point: threshold 100, 1-minute floor)\n")
	return sb.String()
}

// flowDataset extracts per-source raw flow vectors with ground-truth
// labels from a few hours of generated traffic, truncating each source's
// sample to sampleSize packets.
func flowDataset(w *simnet.World, hours, sampleSize int) ml.Dataset {
	bySrc := map[packet.IP][]packet.Packet{}
	for h := 0; h < hours; h++ {
		for _, p := range w.GenerateHour(w.Start().Add(time.Duration(h) * time.Hour)) {
			if len(bySrc[p.SrcIP]) < sampleSize {
				bySrc[p.SrcIP] = append(bySrc[p.SrcIP], p)
			}
		}
	}
	// Deterministic iteration order for reproducible splits.
	srcs := make([]packet.IP, 0, len(bySrc))
	for src := range bySrc {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })

	var ds ml.Dataset
	for _, src := range srcs {
		sample := bySrc[src]
		if len(sample) < sampleSize/2 || len(sample) < 10 {
			continue
		}
		host, ok := w.HostByIP(src)
		if !ok {
			continue
		}
		var label int
		switch host.Kind {
		case simnet.KindInfectedIoT:
			label = 1
		case simnet.KindNonIoTScanner, simnet.KindResearchScanner:
			label = 0
		default:
			continue
		}
		raw, err := features.RawVector(sample)
		if err != nil {
			continue
		}
		ds.Append(raw, label)
	}
	return ds
}

// evalAUC trains a forest on a (normalized) split and returns test AUC.
func evalAUC(ds ml.Dataset, seed int64, forestCfg ml.ForestConfig) float64 {
	rawTrain, rawTest := ds.Split(0.5, seed)
	norm, err := features.FitNormalizer(rawTrain.X)
	if err != nil {
		return 0
	}
	train := ml.Dataset{X: norm.ApplyAll(rawTrain.X), Y: rawTrain.Y}
	test := ml.Dataset{X: norm.ApplyAll(rawTest.X), Y: rawTest.Y}
	forest := ml.TrainForest(&train, forestCfg)
	return ml.ROCAUC(ml.Scores(forest, &test), test.Y)
}

// SampleSizeAblationResult sweeps the post-detection sample size.
type SampleSizeAblationResult struct {
	Rows []struct {
		SampleSize int
		Flows      int
		AUC        float64
	}
}

// AblationSampleSize sweeps the 200-packet sample-size choice: larger
// samples give more stable quartile features but delay labeling.
func AblationSampleSize(scale Scale) SampleSizeAblationResult {
	w := simnet.NewWorld(scale.worldConfig())
	var res SampleSizeAblationResult
	for _, size := range []int{25, 50, 100, 200, 400} {
		ds := flowDataset(w, 4, size)
		auc := evalAUC(ds, scale.Seed, ml.ForestConfig{NumTrees: 40, Seed: scale.Seed})
		res.Rows = append(res.Rows, struct {
			SampleSize int
			Flows      int
			AUC        float64
		}{size, ds.Len(), auc})
	}
	return res
}

// String renders the sample-size ablation.
func (r SampleSizeAblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — classifier sample size (paper: 200 packets)\n")
	fmt.Fprintf(&sb, "  %10s %8s %10s\n", "sample", "flows", "ROC-AUC")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %10d %8d %10.4f\n", row.SampleSize, row.Flows, row.AUC)
	}
	return sb.String()
}

// FeatureSetAblationResult sweeps feature subsets.
type FeatureSetAblationResult struct {
	Rows []struct {
		Name string
		Dims int
		AUC  float64
	}
}

// featureMask returns the flow-vector dimensions whose field index
// satisfies keep.
func featureMask(keep func(field int) bool) []int {
	var dims []int
	for d := 0; d < features.Dim; d++ {
		if keep(d / features.NumStats) {
			dims = append(dims, d)
		}
	}
	return dims
}

func projectDataset(ds ml.Dataset, dims []int) ml.Dataset {
	var out ml.Dataset
	for i, x := range ds.X {
		proj := make([]float64, len(dims))
		for j, d := range dims {
			proj[j] = x[d]
		}
		out.Append(proj, ds.Y[i])
	}
	return out
}

// AblationFeatureSet compares the full 120-dim feature space with
// restricted views: no TCP options, no inter-arrival timing, ports-only,
// and stack-fingerprint-only.
func AblationFeatureSet(scale Scale) FeatureSetAblationResult {
	w := simnet.NewWorld(scale.worldConfig())
	full := flowDataset(w, 4, 200)

	optionFields := map[int]bool{
		features.FieldOptWScale: true, features.FieldOptMSS: true,
		features.FieldOptTimestamp: true, features.FieldOptNOP: true,
		features.FieldOptSACKOK: true, features.FieldOptSACK: true,
	}
	stackFields := map[int]bool{
		features.FieldTTL: true, features.FieldWindow: true,
		features.FieldTotalLength: true, features.FieldTCPOffset: true,
	}

	masks := []struct {
		name string
		keep func(int) bool
	}{
		{"full (120)", func(int) bool { return true }},
		{"no-options", func(f int) bool { return !optionFields[f] }},
		{"no-interarrival", func(f int) bool { return f != features.FieldInterArrival }},
		{"ports-only", func(f int) bool { return f == features.FieldDstPort }},
		{"stack-only", func(f int) bool { return stackFields[f] }},
	}
	var res FeatureSetAblationResult
	for _, m := range masks {
		dims := featureMask(m.keep)
		ds := projectDataset(full, dims)
		auc := evalAUC(ds, scale.Seed, ml.ForestConfig{NumTrees: 40, Seed: scale.Seed})
		res.Rows = append(res.Rows, struct {
			Name string
			Dims int
			AUC  float64
		}{m.name, len(dims), auc})
	}
	return res
}

// String renders the feature-set ablation.
func (r FeatureSetAblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — feature subsets (paper uses the full Table II set)\n")
	fmt.Fprintf(&sb, "  %-18s %6s %10s\n", "feature set", "dims", "ROC-AUC")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-18s %6d %10.4f\n", row.Name, row.Dims, row.AUC)
	}
	return sb.String()
}

// ForestSizeAblationResult sweeps ensemble size.
type ForestSizeAblationResult struct {
	Rows []struct {
		Trees     int
		AUC       float64
		TrainTime time.Duration
	}
}

// AblationForestSize sweeps the random forest's ensemble size.
func AblationForestSize(scale Scale) ForestSizeAblationResult {
	w := simnet.NewWorld(scale.worldConfig())
	ds := flowDataset(w, 4, 200)
	var res ForestSizeAblationResult
	for _, trees := range []int{1, 5, 10, 25, 50, 100} {
		start := time.Now()
		auc := evalAUC(ds, scale.Seed, ml.ForestConfig{NumTrees: trees, Seed: scale.Seed})
		res.Rows = append(res.Rows, struct {
			Trees     int
			AUC       float64
			TrainTime time.Duration
		}{trees, auc, time.Since(start)})
	}
	return res
}

// String renders the forest-size ablation.
func (r ForestSizeAblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — forest size\n")
	fmt.Fprintf(&sb, "  %6s %10s %12s\n", "trees", "ROC-AUC", "train time")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %6d %10.4f %12v\n", row.Trees, row.AUC, row.TrainTime.Round(time.Millisecond))
	}
	return sb.String()
}

// WindowAblationResult sweeps the training window.
type WindowAblationResult struct {
	Rows []struct {
		WindowHours int
		Train       int
		AUC         float64
	}
}

// AblationTrainingWindow sweeps how much labeled history the daily
// retrain consumes, evaluating on the run's final labeled flows.
func AblationTrainingWindow(e *Env) WindowAblationResult {
	examples := e.Sys.Feed().Trainer().Snapshot()
	sort.SliceStable(examples, func(i, j int) bool {
		return examples[i].Time.Before(examples[j].Time)
	})
	var res WindowAblationResult
	if len(examples) < 40 {
		return res
	}
	cut := len(examples) * 8 / 10
	testEx := examples[cut:]
	testStart := testEx[0].Time

	var rawTest ml.Dataset
	for _, ex := range testEx {
		rawTest.Append(ex.Raw, ex.Label)
	}
	for _, windowHours := range []int{6, 12, 24, 48, 72} {
		cutoff := testStart.Add(-time.Duration(windowHours) * time.Hour)
		var rawTrain ml.Dataset
		for _, ex := range examples[:cut] {
			if !ex.Time.Before(cutoff) {
				rawTrain.Append(ex.Raw, ex.Label)
			}
		}
		neg, pos := rawTrain.ClassCounts()
		if rawTrain.Len() < 10 || neg == 0 || pos == 0 {
			continue
		}
		norm, err := features.FitNormalizer(rawTrain.X)
		if err != nil {
			continue
		}
		train := ml.Dataset{X: norm.ApplyAll(rawTrain.X), Y: rawTrain.Y}
		test := ml.Dataset{X: norm.ApplyAll(rawTest.X), Y: rawTest.Y}
		forest := ml.TrainForest(&train, ml.ForestConfig{NumTrees: 40, Seed: e.Scale.Seed})
		res.Rows = append(res.Rows, struct {
			WindowHours int
			Train       int
			AUC         float64
		}{windowHours, train.Len(), ml.ROCAUC(ml.Scores(forest, &test), test.Y)})
	}
	return res
}

// String renders the training-window ablation.
func (r WindowAblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation — training window (paper: 14 days)\n")
	if len(r.Rows) == 0 {
		sb.WriteString("  insufficient labeled data for the sweep\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  %8s %8s %10s\n", "window", "train", "ROC-AUC")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %7dh %8d %10.4f\n", row.WindowHours, row.Train, row.AUC)
	}
	return sb.String()
}
