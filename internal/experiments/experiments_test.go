package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// sharedEnv builds one QuickScale env for the whole test package (env
// construction runs a full pipeline day and dominates test time).
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		scale := QuickScale(555)
		scale.Infected = 600
		scale.NonIoT = 100
		scale.Days = 2
		envVal, envErr = NewEnv(scale)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestTableIStatic(t *testing.T) {
	r := TableI()
	if len(r.Ports) != 50 || len(r.Protocols) != 16 {
		t.Errorf("Table I = %d ports, %d protocols", len(r.Ports), len(r.Protocols))
	}
	if !strings.Contains(r.String(), "Protocols (16)") {
		t.Error("render missing protocol count")
	}
}

func TestTableIIStatic(t *testing.T) {
	r := TableII()
	if len(r.Fields) != 24 || r.Dim != 120 {
		t.Errorf("Table II = %d fields, dim %d", len(r.Fields), r.Dim)
	}
	if !strings.Contains(r.String(), "24 × 5 = 120") {
		t.Error("render missing dimensionality")
	}
}

func TestTableIIIShape(t *testing.T) {
	e := sharedEnv(t)
	r := TableIII(e)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	ex, gn, ds := r.Rows[0], r.Rows[1], r.Rows[2]
	if ex.FeedName != "eX-IoT" || gn.FeedName != "GreyNoise" || ds.FeedName != "DShield" {
		t.Fatalf("row order wrong: %+v", r.Rows)
	}
	// Core shape: eX-IoT sees several times more than either feed.
	if ex.AllPerDay <= gn.AllPerDay || ex.AllPerDay <= ds.AllPerDay {
		t.Errorf("eX-IoT volume (%.0f) should exceed GN (%.0f) and DShield (%.0f)",
			ex.AllPerDay, gn.AllPerDay, ds.AllPerDay)
	}
	if r.AllRatioGN < 1.5 {
		t.Errorf("all-ratio vs GreyNoise = %.2f, want ≳2 (paper 3.5)", r.AllRatioGN)
	}
	if r.IoTRatioGN < 3 {
		t.Errorf("IoT-ratio vs GreyNoise-Mirai = %.2f, want ≳3 (paper 7.1)", r.IoTRatioGN)
	}
	if ds.HasIoTViews {
		t.Error("DShield must have no IoT view")
	}
	if !strings.Contains(r.String(), "eX-IoT") {
		t.Error("render broken")
	}
}

func TestTableIVShape(t *testing.T) {
	e := sharedEnv(t)
	r := TableIV(e)
	if r.ReferenceSize == 0 {
		t.Fatal("no IoT indicators")
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper: differential contribution near 1 against every feed.
		if row.Differential < 0.5 || row.Differential > 1 {
			t.Errorf("%s: Diff = %.3f, want high", row.FeedName, row.Differential)
		}
		if ni := row.NormalizedIntersection + row.Differential; ni < 0.999 || ni > 1.001 {
			t.Errorf("%s: Diff + NormInt = %.3f, want 1", row.FeedName, ni)
		}
	}
	// Paper: ≈76 % of eX-IoT's IoT indicators are unique.
	if r.Uniq < 0.4 || r.Uniq > 0.98 {
		t.Errorf("Uniq = %.3f, want ≈0.76", r.Uniq)
	}
	if r.UnionOverlap > r.ReferenceSize {
		t.Error("overlap exceeds reference")
	}
}

func TestTableVShape(t *testing.T) {
	e := sharedEnv(t)
	r := TableV(e)
	if r.Instances == 0 || r.UniqueIPs == 0 {
		t.Fatal("empty snapshot")
	}
	if r.UniqueIPs > r.Instances {
		t.Error("unique IPs exceed instances")
	}
	if len(r.Countries) == 0 || r.Countries[0].Name != "China" {
		t.Errorf("top country = %+v, want China", r.Countries)
	}
	if len(r.Continents) == 0 || r.Continents[0].Name != "Asia" {
		t.Errorf("top continent = %+v, want Asia", r.Continents)
	}
	if len(r.Ports) == 0 || r.Ports[0].Name != "23" {
		t.Errorf("top port = %+v, want 23 (Telnet)", r.Ports)
	}
	if len(r.Vendors) > 0 && r.Vendors[0].Name != "MikroTik" {
		t.Errorf("top vendor = %+v, want MikroTik", r.Vendors)
	}
	// AS4134 and AS4837 are the two dominant Chinese eyeball networks;
	// sampling noise at quick scale can swap their order.
	if len(r.ASNs) == 0 || (r.ASNs[0].Name != "4134" && r.ASNs[0].Name != "4837") {
		t.Errorf("top ASN = %+v, want 4134/4837", r.ASNs)
	}
	if !strings.Contains(r.String(), "China") {
		t.Error("render broken")
	}
}

func TestValidationShape(t *testing.T) {
	e := sharedEnv(t)
	r := Validation(e)
	if r.IoTIndicators == 0 {
		t.Fatal("no IoT indicators to validate")
	}
	if r.OverallRate < 0.4 || r.OverallRate > 0.95 {
		t.Errorf("overall validation = %.3f, want ≈0.7", r.OverallRate)
	}
	if r.CzechIndicators > 0 && r.CzechRate < r.OverallRate-0.35 {
		t.Errorf("Czech validation (%.3f) should not collapse below overall (%.3f)",
			r.CzechRate, r.OverallRate)
	}
}

func TestAccuracyShape(t *testing.T) {
	e := sharedEnv(t)
	r, err := Accuracy(e)
	if err != nil {
		t.Skipf("accuracy experiment starved: %v", err)
	}
	if r.Precision < 0.6 {
		t.Errorf("precision = %.3f, want high (paper 0.946)", r.Precision)
	}
	if r.Coverage <= 0 || r.Coverage > 1 {
		t.Errorf("coverage = %.3f out of range", r.Coverage)
	}
	if r.AUC < 0.6 {
		t.Errorf("AUC = %.3f", r.AUC)
	}
}

func TestModelSelectionShape(t *testing.T) {
	e := sharedEnv(t)
	r, err := ModelSelection(e)
	if err != nil {
		t.Skipf("model selection starved: %v", err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Winner != "RandomForest" {
		t.Errorf("winner = %s, want RandomForest (paper)", r.Winner)
	}
}

func TestLatencyShape(t *testing.T) {
	scale := QuickScale(556)
	scale.Infected = 150
	scale.NonIoT = 30
	r, err := Latency(scale)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Found {
		t.Fatal("injected scan never surfaced")
	}
	// Feed latency ≈ collection + processing + remainder of the hour:
	// between ~3.8 h and ~6 h, bracketing the paper's 5 h 12 m.
	if r.FeedLatency < 3*time.Hour || r.FeedLatency > 7*time.Hour {
		t.Errorf("feed latency = %v, want ≈5 h", r.FeedLatency)
	}
	if r.StartError > 2*time.Minute {
		t.Errorf("start error = %v, want seconds (paper 24 s)", r.StartError)
	}
	if r.EndError > time.Hour {
		t.Errorf("end error = %v, want minutes (paper 13 m)", r.EndError)
	}
	if r.ReportedTool != "ZMap" {
		t.Errorf("tool = %q, want ZMap", r.ReportedTool)
	}
	if !strings.Contains(r.ReportedType, "non-IoT") {
		t.Errorf("type = %q, want Desktop (non-IoT)", r.ReportedType)
	}
	if r.GreyNoiseIndexed && r.GreyNoiseLatency <= r.FeedLatency {
		t.Errorf("GreyNoise (%v) should lag eX-IoT (%v)", r.GreyNoiseLatency, r.FeedLatency)
	}
}

func TestThroughputShape(t *testing.T) {
	r := Throughput(QuickScale(557))
	if r.Packets == 0 {
		t.Fatal("no packets")
	}
	if r.PacketsPerSec < 100000 {
		t.Errorf("throughput = %.0f pkts/s; the detector should sustain >100k", r.PacketsPerSec)
	}
	if r.SecondReports == 0 {
		t.Error("no per-second reports")
	}
}

func TestBannerAvailabilityShape(t *testing.T) {
	scale := QuickScale(558)
	scale.Infected = 2500
	r := BannerAvailability(scale)
	frac := float64(r.ReturningBanner) / float64(r.Infected)
	if frac < 0.05 || frac > 0.16 {
		t.Errorf("banner fraction = %.3f, want ≈0.10", frac)
	}
	textual := float64(r.TextualBanner) / float64(r.Infected)
	if textual < 0.01 || textual > 0.07 {
		t.Errorf("textual fraction = %.3f, want ≈0.03", textual)
	}
}

func TestAblationTRWShape(t *testing.T) {
	r := AblationTRW(QuickScale(559))
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	var noFloor, withFloor *TRWAblationRow
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.Threshold == 25 && row.MinDuration < 0 {
			noFloor = row
		}
		if row.Threshold == 25 && row.MinDuration == time.Minute {
			withFloor = row
		}
	}
	if noFloor == nil || withFloor == nil {
		t.Fatal("sweep missing operating points")
	}
	// The duration floor exists to exclude misconfiguration bursts.
	if noFloor.MisconfigCaught == 0 {
		t.Skip("no misconfig bursts crossed the low threshold this seed")
	}
	if withFloor.MisconfigCaught >= noFloor.MisconfigCaught {
		t.Errorf("duration floor did not reduce misconfig admits: %d vs %d",
			withFloor.MisconfigCaught, noFloor.MisconfigCaught)
	}
}

func TestAblationSampleSizeShape(t *testing.T) {
	r := AblationSampleSize(QuickScale(560))
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Bigger samples should not be dramatically worse than tiny ones.
	small, big := r.Rows[0], r.Rows[len(r.Rows)-1]
	if big.AUC < small.AUC-0.1 {
		t.Errorf("AUC degraded with sample size: %0.3f @%d vs %0.3f @%d",
			small.AUC, small.SampleSize, big.AUC, big.SampleSize)
	}
}

func TestAblationFeatureSetShape(t *testing.T) {
	r := AblationFeatureSet(QuickScale(561))
	byName := map[string]float64{}
	for _, row := range r.Rows {
		byName[row.Name] = row.AUC
	}
	if byName["full (120)"] < 0.8 {
		t.Errorf("full feature AUC = %.3f, want high", byName["full (120)"])
	}
	if byName["ports-only"] > byName["full (120)"]+0.02 {
		t.Errorf("ports-only (%.3f) should not beat full (%.3f)",
			byName["ports-only"], byName["full (120)"])
	}
}

func TestAblationForestSizeShape(t *testing.T) {
	r := AblationForestSize(QuickScale(562))
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	single, big := r.Rows[0], r.Rows[len(r.Rows)-1]
	if big.AUC < single.AUC-0.05 {
		t.Errorf("forest growth hurt AUC: 1 tree %.3f vs %d trees %.3f",
			single.AUC, big.Trees, big.AUC)
	}
}

func TestAblationTrainingWindowShape(t *testing.T) {
	e := sharedEnv(t)
	r := AblationTrainingWindow(e)
	if len(r.Rows) == 0 {
		t.Skip("insufficient labeled data")
	}
	for _, row := range r.Rows {
		if row.AUC < 0.5 {
			t.Errorf("window %dh: AUC = %.3f below chance", row.WindowHours, row.AUC)
		}
	}
}

func TestCampaignsShape(t *testing.T) {
	e := sharedEnv(t)
	r := Campaigns(e)
	if len(r.Campaigns) == 0 {
		t.Fatal("no campaigns inferred")
	}
	// Campaigns cluster malware families: members must dominantly share
	// a ground-truth family.
	if r.FamilyPurity < 0.5 {
		t.Errorf("family purity = %.2f, want cohesive campaigns", r.FamilyPurity)
	}
	if r.Campaigns[0].Size < r.Campaigns[len(r.Campaigns)-1].Size {
		t.Error("campaigns not sorted by size")
	}
}

func TestAdaptivityShape(t *testing.T) {
	scale := QuickScale(563)
	scale.Infected = 250
	scale.NonIoT = 50
	r, err := Adaptivity(scale)
	if err != nil {
		t.Fatal(err)
	}
	if r.EmergingHosts < 40 {
		t.Fatalf("emerging hosts = %d", r.EmergingHosts)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no emerging-family records surfaced")
	}
	// The new family must produce model-labeled flows on at least two
	// days so adaptation is observable.
	daysWithModel := 0
	for _, row := range r.Rows {
		if row.ModelLabeled > 0 {
			daysWithModel++
		}
	}
	if daysWithModel < 2 {
		t.Skipf("only %d days with model labels; cannot observe adaptation", daysWithModel)
	}
	// Adaptation: the final-day rate should not collapse below the
	// emergence-day rate.
	if r.LastDayRate < r.FirstDayRate-0.15 {
		t.Errorf("IoT rate degraded: first %.2f → last %.2f", r.FirstDayRate, r.LastDayRate)
	}
}

func TestFeatureImportanceShape(t *testing.T) {
	r := FeatureImportance(QuickScale(564))
	if len(r.FieldRows) == 0 {
		t.Fatal("no importances")
	}
	var sum float64
	for _, row := range r.FieldRows {
		if row.Importance < 0 {
			t.Fatalf("negative importance: %+v", row)
		}
		sum += row.Importance
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("field importances sum to %.3f, want 1", sum)
	}
	// The behavioural fields the paper highlights must matter: at least
	// one of inter-arrival / dst-port / window / options in the top 5.
	key := map[string]bool{
		"inter_arrival": true, "dst_port": true, "window_size": true,
		"opt_wscale": true, "opt_mss": true, "opt_timestamp": true,
		"opt_sack_permitted": true, "ttl": true,
	}
	top := r.FieldRows
	if len(top) > 5 {
		top = top[:5]
	}
	found := false
	for _, row := range top {
		if key[row.Feature] {
			found = true
		}
	}
	if !found {
		t.Errorf("no behavioural field in top 5: %+v", top)
	}
}
