package experiments

import (
	"fmt"
	"strings"

	"exiot/internal/feed"
	"exiot/internal/packet"
	"exiot/internal/thirdparty"
)

// ValidationResult is E8: the §V-A cross-validation against Bad Packets
// honeypots and the Czech CSIRT's NERD database.
type ValidationResult struct {
	IoTIndicators int
	OverallRate   float64

	CzechIndicators int
	CzechRate       float64
}

// Validation cross-validates the run's IoT detections against the two
// collaborating sources.
func Validation(e *Env) ValidationResult {
	iot := e.IoTIndicators()
	res := ValidationResult{
		IoTIndicators: iot.Len(),
		OverallRate:   thirdparty.ValidationRate(iot, e.BadPackets, e.NERD),
	}

	// Czech-specific validation against the CSIRT database alone.
	reg := e.Sys.World().Registry()
	cz := make(feed.IndicatorSet)
	for ip := range iot {
		parsed, err := packet.ParseIP(ip)
		if err != nil {
			continue
		}
		if info, ok := reg.Lookup(parsed); ok && info.CountryCode == "CZ" {
			cz.Add(ip)
		}
	}
	res.CzechIndicators = cz.Len()
	if cz.Len() > 0 {
		res.CzechRate = thirdparty.ValidationRate(cz, e.NERD)
	}
	return res
}

// String renders the validation experiment.
func (r ValidationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Initial CTI validation — Bad Packets honeypots + Czech CSIRT (NERD)\n")
	fmt.Fprintf(&sb, "  IoT detections validated overall: %.1f%% of %d (paper: ≈70%%)\n",
		100*r.OverallRate, r.IoTIndicators)
	if r.CzechIndicators > 0 {
		fmt.Fprintf(&sb, "  Czech detections validated by CSIRT: %.1f%% of %d (paper: ≈83%%)\n",
			100*r.CzechRate, r.CzechIndicators)
	} else {
		sb.WriteString("  no Czech IoT detections in this run\n")
	}
	return sb.String()
}
