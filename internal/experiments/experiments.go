// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) plus the ablation studies DESIGN.md calls out. Each
// experiment is a pure function over a shared Env — one simulated
// deployment run — so cmd/experiments and the benchmark harness reuse the
// same code and print the same rows the paper reports.
//
// Absolute numbers are scaled (the substrate is a simulator, not CAIDA's
// /8 testbed); the shapes — who wins, by what factor, where crossovers
// fall — are the reproduction targets.
package experiments

import (
	"time"

	"exiot/internal/core"
	"exiot/internal/feed"
	"exiot/internal/pipeline"
	"exiot/internal/scanmod"
	"exiot/internal/simnet"
	"exiot/internal/thirdparty"
	"exiot/internal/trainer"
)

// Scale sets the size of the simulated deployment. The paper's deployment
// corresponds to roughly 100× the default scale.
type Scale struct {
	Seed      int64
	Infected  int
	NonIoT    int
	Research  int
	Misconfig int
	Backscat  int
	Days      int
	// MaxPacketsPerHostHour bounds memory; see simnet.Config.
	MaxPacketsPerHostHour int
	// SearchIterations bounds the trainer's hyper-parameter search.
	SearchIterations int
	// Workers is the ingest worker count for generation and detection
	// (0 = GOMAXPROCS, 1 = serial). Results are identical at any setting.
	Workers int
}

// DefaultScale returns a laptop-scale run (~1/100 of the paper's volume).
func DefaultScale(seed int64) Scale {
	return Scale{
		Seed:                  seed,
		Infected:              1200,
		NonIoT:                200,
		Research:              8,
		Misconfig:             120,
		Backscat:              30,
		Days:                  3,
		MaxPacketsPerHostHour: 1500,
		SearchIterations:      4,
	}
}

// QuickScale returns a fast sanity-check run for tests and benchmarks.
func QuickScale(seed int64) Scale {
	return Scale{
		Seed:                  seed,
		Infected:              250,
		NonIoT:                50,
		Research:              4,
		Misconfig:             30,
		Backscat:              8,
		Days:                  1,
		MaxPacketsPerHostHour: 1000,
		SearchIterations:      2,
	}
}

func (s Scale) worldConfig() simnet.Config {
	cfg := simnet.DefaultConfig(s.Seed)
	cfg.NumInfected = s.Infected
	cfg.NumNonIoT = s.NonIoT
	cfg.NumResearch = s.Research
	cfg.NumMisconfig = s.Misconfig
	cfg.NumBackscat = s.Backscat
	cfg.Days = s.Days
	cfg.MaxPacketsPerHostHour = s.MaxPacketsPerHostHour
	cfg.Workers = s.Workers
	return cfg
}

func (s Scale) systemConfig() core.Config {
	cfg := core.DefaultConfig(s.Seed)
	cfg.World = s.worldConfig()
	cfg.Pipeline = pipeline.DefaultLocalConfig()
	cfg.Pipeline.Server.ScanMod = scanmod.Config{BatchSize: 200, BatchWait: 45 * time.Minute}
	cfg.Pipeline.Server.Trainer = trainer.Config{
		WindowDays:       14,
		TrainFrac:        0.2,
		SearchIterations: s.SearchIterations,
		Seed:             s.Seed,
	}
	cfg.Workers = s.Workers
	return cfg
}

// Env is one simulated deployment run shared by the experiments.
type Env struct {
	Scale Scale
	Sys   *core.System
	From  time.Time
	To    time.Time

	GreyNoise  *thirdparty.Feed
	DShield    *thirdparty.Feed
	BadPackets *thirdparty.Feed
	NERD       *thirdparty.Feed
}

// NewEnv builds the world, runs the full pipeline over the configured
// span, and materializes the third-party observers over the same period.
func NewEnv(scale Scale) (*Env, error) {
	sys := core.NewSystem(scale.systemConfig())
	if err := sys.RunAll(); err != nil {
		return nil, err
	}
	w := sys.World()
	from := w.Start()
	to := from.Add(time.Duration(scale.Days) * 24 * time.Hour)
	return &Env{
		Scale:      scale,
		Sys:        sys,
		From:       from,
		To:         to,
		GreyNoise:  thirdparty.BuildGreyNoise(w, from, to, scale.Seed),
		DShield:    thirdparty.BuildDShield(w, from, to, scale.Seed),
		BadPackets: thirdparty.BuildBadPackets(w, from, to, scale.Seed),
		NERD:       thirdparty.BuildNERD(w, from, to, scale.Seed),
	}, nil
}

// Records returns every feed record of the run.
func (e *Env) Records() []feed.Record {
	return e.Sys.Feed().Historical().Find(nil)
}

// IoTIndicators returns the set of non-benign IoT-labeled source
// addresses.
func (e *Env) IoTIndicators() feed.IndicatorSet {
	s := make(feed.IndicatorSet)
	for _, rec := range e.Records() {
		if rec.IsIoT() && !rec.Benign {
			s.Add(rec.IP)
		}
	}
	return s
}

// AllIndicators returns every source address in the feed.
func (e *Env) AllIndicators() feed.IndicatorSet {
	s := make(feed.IndicatorSet)
	for _, rec := range e.Records() {
		s.Add(rec.IP)
	}
	return s
}
