package experiments

import (
	"fmt"
	"strings"
	"time"

	"exiot/internal/core"
	"exiot/internal/feed"
	"exiot/internal/thirdparty"
)

// LatencyResult is E6: the controlled-scan latency experiment of §V-B.
type LatencyResult struct {
	ScanStart time.Time
	ScanEnd   time.Time
	Found     bool

	Record        feed.Record
	FeedLatency   time.Duration // scan start → appearance in the feed
	StartError    time.Duration // |recorded start − true start|
	EndError      time.Duration // |recorded end − true end|
	ReportedType  string
	ReportedTool  string
	CollectionLag time.Duration // configured CAIDA-side delay

	GreyNoiseIndexed bool
	GreyNoiseLatency time.Duration
	DShieldIndexed   bool
}

// Latency runs the paper's controlled experiment: a ZMap sweep of port 80
// at 1000 pps for 3 hours is injected at a known instant; the experiment
// measures how long the scan takes to surface in each feed and how
// accurate the recorded start/end times are.
func Latency(scale Scale) (LatencyResult, error) {
	cfg := scale.systemConfig()
	// Keep the injected scanner uncapped so its flow-end estimate is
	// driven by the detector, not the memory cap.
	cfg.World.MaxPacketsPerHostHour = 16000
	sys := core.NewSystem(cfg)
	w := sys.World()

	scanStart := w.Start().Add(7*time.Hour + 30*time.Minute)
	scanDur := 3 * time.Hour
	ip := w.InjectZMapScan(scanStart, scanDur, 80, 1000)

	if err := sys.RunAll(); err != nil {
		return LatencyResult{}, err
	}

	res := LatencyResult{
		ScanStart:     scanStart,
		ScanEnd:       scanStart.Add(scanDur),
		CollectionLag: cfg.Pipeline.CollectionDelay + cfg.Pipeline.ProcessingDelay,
	}
	rec, ok := sys.Feed().RecordByIP(ip.String())
	if !ok {
		return res, nil
	}
	res.Found = true
	res.Record = rec
	res.FeedLatency = rec.AppearedAt.Sub(scanStart)
	res.StartError = absDur(rec.FirstSeen.Sub(scanStart))
	end := rec.LastSeen
	if rec.EndedAt != nil {
		end = *rec.EndedAt
	}
	res.EndError = absDur(end.Sub(res.ScanEnd))
	res.ReportedType = rec.DeviceType
	res.ReportedTool = rec.Tool

	from, to := w.Start(), w.Start().Add(time.Duration(scale.Days)*24*time.Hour)
	gn := thirdparty.BuildGreyNoise(w, from, to, scale.Seed)
	if first, ok := gn.Appearances()[ip.String()]; ok {
		res.GreyNoiseIndexed = true
		res.GreyNoiseLatency = first.Sub(scanStart)
	}
	ds := thirdparty.BuildDShield(w, from, to, scale.Seed)
	res.DShieldIndexed = ds.Contains(ip.String())
	return res, nil
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// String renders the latency experiment.
func (r LatencyResult) String() string {
	var sb strings.Builder
	sb.WriteString("Latency — controlled ZMap scan (port 80, 1000 pps, 3 h)\n")
	if !r.Found {
		sb.WriteString("  the injected scan never surfaced in the feed (unexpected)\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "  eX-IoT feed latency:   %v (paper: 5 h 12 m; collection+processing lag %v)\n",
		r.FeedLatency.Round(time.Second), r.CollectionLag)
	fmt.Fprintf(&sb, "  start-time error:      %v (paper: 24 s)\n", r.StartError.Round(time.Second))
	fmt.Fprintf(&sb, "  end-time error:        %v (paper: 13 m)\n", r.EndError.Round(time.Second))
	fmt.Fprintf(&sb, "  reported as:           %q, tool %q (paper: Desktop (non-IoT), ZMap)\n",
		r.ReportedType, r.ReportedTool)
	if r.GreyNoiseIndexed {
		fmt.Fprintf(&sb, "  GreyNoise latency:     %v (paper: ≈10 h, tool mislabeled Nmap)\n",
			r.GreyNoiseLatency.Round(time.Minute))
	} else {
		sb.WriteString("  GreyNoise latency:     not indexed\n")
	}
	fmt.Fprintf(&sb, "  DShield indexed:       %v (paper: no)\n", r.DShieldIndexed)
	return sb.String()
}
