package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"exiot/internal/campaign"
	"exiot/internal/core"
	"exiot/internal/device"
	"exiot/internal/feed"
	"exiot/internal/packet"
	"exiot/internal/simnet"
)

// AdaptivityDayRow is one day of the emerging-botnet experiment.
type AdaptivityDayRow struct {
	Day           int
	ModelLabeled  int
	LabeledIoT    int
	IoTRate       float64
	BannerLabeled int
}

// AdaptivityResult is the emerging-botnet experiment: how the daily
// retrain adapts to a previously unseen family.
type AdaptivityResult struct {
	FamilyName    string
	EmergenceDay  int
	EmergingHosts int
	Rows          []AdaptivityDayRow
	// FirstDayRate and LastDayRate summarize the adaptation: the model's
	// IoT-labeling rate on emerging-family flows on emergence day vs. the
	// final day.
	FirstDayRate float64
	LastDayRate  float64
}

// Adaptivity runs the emerging-botnet experiment: a new, deliberately
// tool-like family activates on day 1 of a multi-day run; the feed's
// model-assigned labels on its flows are tracked per day. The paper
// claims the 24 h retrain over the 14-day window lets the classifier
// "adaptively learn ... evolving IoT botnets" — this measures that.
func Adaptivity(scale Scale) (AdaptivityResult, error) {
	if scale.Days < 3 {
		scale.Days = 3
	}
	cfg := scale.systemConfig()
	count := scale.Infected / 5
	if count < 40 {
		count = 40
	}
	cfg.World.Emerging = &simnet.EmergingConfig{StartDay: 1, Count: count}
	sys := core.NewSystem(cfg)
	if err := sys.RunAll(); err != nil {
		return AdaptivityResult{}, err
	}

	w := sys.World()
	emerging := map[string]bool{}
	for _, h := range w.Hosts() {
		if h.Family != nil && h.Family.Name == device.EmergingFamily.Name {
			emerging[h.IP.String()] = true
		}
	}

	res := AdaptivityResult{
		FamilyName:    device.EmergingFamily.Name,
		EmergenceDay:  1,
		EmergingHosts: len(emerging),
	}
	byDay := map[int]*AdaptivityDayRow{}
	for _, rec := range sys.Feed().Historical().Find(nil) {
		if !emerging[rec.IP] {
			continue
		}
		day := int(rec.AppearedAt.Sub(w.Start()) / (24 * time.Hour))
		row, ok := byDay[day]
		if !ok {
			row = &AdaptivityDayRow{Day: day}
			byDay[day] = row
		}
		switch rec.LabelSource {
		case feed.SourceModel:
			row.ModelLabeled++
			if rec.IsIoT() {
				row.LabeledIoT++
			}
		case feed.SourceBanner:
			row.BannerLabeled++
		}
	}
	for _, row := range byDay {
		if row.ModelLabeled > 0 {
			row.IoTRate = float64(row.LabeledIoT) / float64(row.ModelLabeled)
		}
		res.Rows = append(res.Rows, *row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Day < res.Rows[j].Day })
	for _, row := range res.Rows {
		if row.ModelLabeled == 0 {
			continue
		}
		if res.FirstDayRate == 0 && row.Day <= res.EmergenceDay+1 {
			res.FirstDayRate = row.IoTRate
		}
		res.LastDayRate = row.IoTRate
	}
	return res, nil
}

// String renders the adaptivity experiment.
func (r AdaptivityResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Adaptivity — emerging botnet %q (%d devices, activates day %d)\n",
		r.FamilyName, r.EmergingHosts, r.EmergenceDay)
	fmt.Fprintf(&sb, "  %4s %14s %12s %10s %14s\n", "day", "model-labeled", "labeled IoT", "IoT rate", "banner-labeled")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %4d %14d %12d %9.1f%% %14d\n",
			row.Day, row.ModelLabeled, row.LabeledIoT, 100*row.IoTRate, row.BannerLabeled)
	}
	fmt.Fprintf(&sb, "  emergence-day IoT rate %.1f%% → final-day %.1f%% (daily retrain adapts)\n",
		100*r.FirstDayRate, 100*r.LastDayRate)
	return sb.String()
}

// CampaignEntry is one inferred campaign summary.
type CampaignEntry struct {
	Signature string
	Size      int
	Records   int
	Countries []string
}

// CampaignResult is the campaign-inference extension over a run's feed.
type CampaignResult struct {
	Campaigns []CampaignEntry
	// FamilyPurity measures, over campaign members with ground truth,
	// the fraction belonging to each campaign's majority malware family.
	FamilyPurity float64
}

// Campaigns infers coordinated scanning campaigns from the run's IoT
// records and scores them against the simulator's malware-family ground
// truth.
func Campaigns(e *Env) CampaignResult {
	inferred := campaign.Infer(e.Records(), campaign.Config{})
	res := CampaignResult{}
	w := e.Sys.World()

	totalMembers, majoritySum := 0, 0
	for _, c := range inferred {
		entry := CampaignEntry{
			Signature: c.Signature.String(),
			Size:      c.Size(),
			Records:   c.Records,
			Countries: c.TopCountries(3),
		}
		res.Campaigns = append(res.Campaigns, entry)

		families := map[string]int{}
		members := 0
		for _, ipStr := range c.IPs {
			ip, err := packet.ParseIP(ipStr)
			if err != nil {
				continue
			}
			h, ok := w.HostByIP(ip)
			if !ok || h.Family == nil {
				continue
			}
			families[h.Family.Name]++
			members++
		}
		best := 0
		for _, n := range families {
			if n > best {
				best = n
			}
		}
		totalMembers += members
		majoritySum += best
	}
	if totalMembers > 0 {
		res.FamilyPurity = float64(majoritySum) / float64(totalMembers)
	}
	return res
}

// String renders the campaign inference.
func (r CampaignResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Campaign inference — %d campaigns, family purity %.1f%%\n",
		len(r.Campaigns), 100*r.FamilyPurity)
	fmt.Fprintf(&sb, "  %-28s %8s %8s %s\n", "signature (ports|tool)", "devices", "records", "top countries")
	show := r.Campaigns
	if len(show) > 8 {
		show = show[:8]
	}
	for _, c := range show {
		fmt.Fprintf(&sb, "  %-30s %8d %8d %s\n", c.Signature, c.Size, c.Records,
			strings.Join(c.Countries, ","))
	}
	if len(r.Campaigns) > len(show) {
		fmt.Fprintf(&sb, "  ... %d more\n", len(r.Campaigns)-len(show))
	}
	return sb.String()
}
