package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"exiot/internal/scenario"
)

// ScenarioReport is the adversarial scenario suite scored end to end:
// every scenario in scenario.Suite() run at its canonical span through
// the full TRW→probe→classify pipeline, with per-scenario detection
// accuracy against ground truth.
type ScenarioReport struct {
	Seed    int64
	Workers int
	Results []scenario.Result
	specs   []scenario.Scenario
}

// Scenarios runs the adversarial scenario suite. Accuracy metrics are
// deterministic in (seed, scenario); only the timing fields vary run to
// run.
func Scenarios(seed int64, workers int) ScenarioReport {
	rep := ScenarioReport{Seed: seed, Workers: workers, specs: scenario.Suite()}
	for _, sc := range rep.specs {
		rep.Results = append(rep.Results, scenario.Run(sc, seed, 0, workers))
	}
	return rep
}

// String renders the per-scenario accuracy table plus each scenario's
// designed blind spot.
func (r ScenarioReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Adversarial scenario suite (seed %d)\n", r.Seed)
	fmt.Fprintf(&sb, "%-22s %5s %9s %7s %6s %6s %6s %6s %6s %6s\n",
		"scenario", "hours", "packets", "records",
		"scanP", "scanR", "injR", "injFP", "iotP", "iotR")
	for _, res := range r.Results {
		fmt.Fprintf(&sb, "%-22s %5d %9d %7d %6.3f %6.3f %6.3f %6d %6.3f %6.3f\n",
			res.Name, res.Hours, res.Packets, res.Records,
			res.ScanPrecision, res.ScanRecall,
			res.InjectedRecall, res.InjectedFalseFed,
			res.IoTPrecision, res.IoTRecall)
	}
	sb.WriteString("\nblind spots under test:\n")
	for _, sc := range r.specs {
		fmt.Fprintf(&sb, "  %-22s %s\n", sc.Name, sc.BlindSpot)
	}
	return sb.String()
}

// BaselineJSON renders the report in benchjson's Baseline schema so CI
// compares accuracy the same way it compares throughput: ns_per_op is
// per-packet pipeline cost, and every accuracy metric rides along in
// metrics (exact-valued — compare them with `benchjson compare
// -metrics`).
func (r ScenarioReport) BaselineJSON() ([]byte, error) {
	type stat struct {
		NsPerOp float64            `json:"ns_per_op"`
		Metrics map[string]float64 `json:"metrics,omitempty"`
	}
	benchmarks := make(map[string]stat, len(r.Results))
	for _, res := range r.Results {
		nsPerPkt := 0.0
		if res.Packets > 0 {
			nsPerPkt = float64(res.ElapsedNs) / float64(res.Packets)
		}
		benchmarks["Scenario/"+res.Name] = stat{
			NsPerOp: nsPerPkt,
			Metrics: map[string]float64{
				"packets":            float64(res.Packets),
				"records":            float64(res.Records),
				"scan_precision":     res.ScanPrecision,
				"scan_recall":        res.ScanRecall,
				"injected_recall":    res.InjectedRecall,
				"injected_false_fed": float64(res.InjectedFalseFed),
				"iot_precision":      res.IoTPrecision,
				"iot_recall":         res.IoTRecall,
			},
		}
	}
	out := struct {
		Bench      string          `json:"bench"`
		Package    string          `json:"package"`
		Count      int             `json:"count"`
		Benchmarks map[string]stat `json:"benchmarks"`
	}{
		Bench:      fmt.Sprintf("scenario-suite seed=%d", r.Seed),
		Package:    "internal/scenario",
		Count:      1,
		Benchmarks: benchmarks,
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
