package experiments

import (
	"fmt"
	"sort"
	"strings"

	"exiot/internal/features"
	"exiot/internal/ml"
	"exiot/internal/simnet"
)

// ImportanceRow is one feature's share of the forest's impurity decrease.
type ImportanceRow struct {
	Feature    string
	Importance float64
}

// ImportanceResult ranks the Table II features by what the production
// forest actually uses — the explanatory companion to the paper's claim
// that inter-arrival times and targeted ports dominate the signal.
type ImportanceResult struct {
	Rows []ImportanceRow
	// FieldRows aggregates the 5 per-field statistics back onto the 24
	// Table II fields.
	FieldRows []ImportanceRow
}

// FeatureImportance trains a forest on ground-truth-labeled flows and
// reports impurity-based importances at both granularities.
func FeatureImportance(scale Scale) ImportanceResult {
	w := simnet.NewWorld(scale.worldConfig())
	ds := flowDataset(w, 4, 200)

	rawTrain, _ := ds.Split(0.7, scale.Seed)
	norm, err := features.FitNormalizer(rawTrain.X)
	if err != nil {
		return ImportanceResult{}
	}
	train := ml.Dataset{X: norm.ApplyAll(rawTrain.X), Y: rawTrain.Y}
	forest := ml.TrainForest(&train, ml.ForestConfig{NumTrees: 60, Seed: scale.Seed})
	imp := forest.FeatureImportances(features.Dim)

	res := ImportanceResult{}
	for d, v := range imp {
		if v > 0 {
			res.Rows = append(res.Rows, ImportanceRow{Feature: features.FeatureName(d), Importance: v})
		}
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Importance > res.Rows[j].Importance })

	fieldImp := make([]float64, features.NumFields)
	for d, v := range imp {
		fieldImp[d/features.NumStats] += v
	}
	for f, v := range fieldImp {
		if v > 0 {
			res.FieldRows = append(res.FieldRows, ImportanceRow{Feature: features.FieldNames[f], Importance: v})
		}
	}
	sort.Slice(res.FieldRows, func(i, j int) bool { return res.FieldRows[i].Importance > res.FieldRows[j].Importance })
	return res
}

// String renders the importance ranking.
func (r ImportanceResult) String() string {
	var sb strings.Builder
	sb.WriteString("Feature importance — what the forest keys on (Table II fields)\n")
	fmt.Fprintf(&sb, "  %-22s %10s\n", "field", "importance")
	rows := r.FieldRows
	if len(rows) > 10 {
		rows = rows[:10]
	}
	for _, row := range rows {
		fmt.Fprintf(&sb, "  %-22s %9.1f%%\n", row.Feature, 100*row.Importance)
	}
	if len(r.Rows) > 0 {
		fmt.Fprintf(&sb, "  top single dimension: %s (%.1f%%)\n",
			r.Rows[0].Feature, 100*r.Rows[0].Importance)
	}
	return sb.String()
}
