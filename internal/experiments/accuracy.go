package experiments

import (
	"fmt"
	"sort"
	"strings"

	"exiot/internal/features"
	"exiot/internal/ml"
	"exiot/internal/trainer"
)

// AccuracyResult is E7: the feed's IoT-labeling accuracy (precision) and
// coverage (recall) against banner-derived ground truth.
type AccuracyResult struct {
	Evaluated int
	Precision float64
	Coverage  float64
	AUC       float64
}

// Accuracy reproduces §V-B's precision/coverage measurement: flows whose
// banners yielded ground-truth labels are split chronologically; a model
// trained on the earlier portion labels the later portion, and the
// predictions are scored against the banner truth.
func Accuracy(e *Env) (AccuracyResult, error) {
	examples := e.Sys.Feed().Trainer().Snapshot()
	if len(examples) < 40 {
		return AccuracyResult{}, fmt.Errorf("accuracy: only %d banner-labeled flows", len(examples))
	}
	sort.SliceStable(examples, func(i, j int) bool {
		return examples[i].Time.Before(examples[j].Time)
	})
	cut := len(examples) * 7 / 10
	trainEx, testEx := examples[:cut], examples[cut:]

	var rawTrain, rawTest ml.Dataset
	for _, ex := range trainEx {
		rawTrain.Append(ex.Raw, ex.Label)
	}
	for _, ex := range testEx {
		rawTest.Append(ex.Raw, ex.Label)
	}
	negTr, posTr := rawTrain.ClassCounts()
	negTe, posTe := rawTest.ClassCounts()
	if posTr == 0 || negTr == 0 || posTe == 0 || negTe == 0 {
		return AccuracyResult{}, fmt.Errorf("accuracy: single-class split (%d/%d train, %d/%d test)",
			posTr, negTr, posTe, negTe)
	}

	norm, err := features.FitNormalizer(rawTrain.X)
	if err != nil {
		return AccuracyResult{}, err
	}
	train := ml.Dataset{X: norm.ApplyAll(rawTrain.X), Y: rawTrain.Y}
	test := ml.Dataset{X: norm.ApplyAll(rawTest.X), Y: rawTest.Y}
	forest := ml.TrainForest(&train, ml.ForestConfig{NumTrees: 60, Seed: e.Scale.Seed})

	conf := ml.ConfusionMatrix(ml.Predictions(forest, &test), test.Y)
	return AccuracyResult{
		Evaluated: test.Len(),
		Precision: conf.Precision(),
		Coverage:  conf.Recall(),
		AUC:       ml.ROCAUC(ml.Scores(forest, &test), test.Y),
	}, nil
}

// String renders the accuracy experiment.
func (r AccuracyResult) String() string {
	return fmt.Sprintf(
		"Accuracy/coverage — IoT labels vs banner ground truth (%d held-out flows)\n"+
			"  accuracy (precision): %.2f%% (paper: 94.63%%)\n"+
			"  coverage (recall):    %.2f%% (paper: 77.21%%)\n"+
			"  ROC-AUC:              %.4f\n",
		r.Evaluated, 100*r.Precision, 100*r.Coverage, r.AUC)
}

// ModelSelectionResult is E9: the RF / SVM / GNB preliminary comparison.
type ModelSelectionResult struct {
	Rows   []trainer.ModelComparison
	Winner string
}

// ModelSelection reruns the paper's preliminary model comparison on the
// run's banner-labeled window.
func ModelSelection(e *Env) (ModelSelectionResult, error) {
	rows, err := e.Sys.Feed().Trainer().CompareModels(e.To)
	if err != nil {
		return ModelSelectionResult{}, err
	}
	res := ModelSelectionResult{Rows: rows}
	best := rows[0]
	for _, r := range rows {
		if r.AUC > best.AUC {
			best = r
		}
	}
	res.Winner = best.Name
	return res, nil
}

// String renders the model comparison.
func (r ModelSelectionResult) String() string {
	var sb strings.Builder
	sb.WriteString("Model selection — ROC-AUC and F1 over the banner-labeled window\n")
	fmt.Fprintf(&sb, "  %-14s %10s %10s\n", "model", "ROC-AUC", "F1")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-14s %10.4f %10.4f\n", row.Name, row.AUC, row.F1)
	}
	fmt.Fprintf(&sb, "  winner: %s (paper selects Random Forest)\n", r.Winner)
	return sb.String()
}
