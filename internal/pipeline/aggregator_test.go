package pipeline

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"exiot/internal/packet"
	"exiot/internal/telemetry"
	"exiot/internal/trw"
	"exiot/internal/wire"
)

// shardStream builds the v2 frame sequence one ingest shard would send.
type shardStream struct {
	t             *testing.T
	shard, shards int
	seq           uint64
	frames        []wire.Frame
}

func newShardStream(t *testing.T, shard, shards int) *shardStream {
	return &shardStream{t: t, shard: shard, shards: shards}
}

func (ss *shardStream) event(epoch int64, e SamplerEvent) {
	ss.t.Helper()
	kind, payload, err := AppendEncodeEvent(nil, e)
	if err != nil {
		ss.t.Fatal(err)
	}
	ss.push(kind, epoch, 0, payload)
}

func (ss *shardStream) barrier(epoch int64, final bool) {
	var flags uint8
	if final {
		flags = wire.FlagFinal
	}
	ss.push(wire.KindHourEnd, epoch, flags, nil)
}

func (ss *shardStream) push(kind wire.Kind, epoch int64, flags uint8, payload []byte) {
	ss.seq++
	ss.frames = append(ss.frames, wire.Frame{
		Seq:        ss.seq,
		Kind:       kind,
		Payload:    payload,
		Version:    wire.Version2,
		Flags:      flags,
		ShardID:    uint16(ss.shard),
		ShardCount: uint16(ss.shards),
		HourEpoch:  epoch,
	})
}

func aggFlowEnd(ip uint32, at time.Time) SamplerEvent {
	return SamplerEvent{
		Kind:       SamplerFlowEnd,
		IP:         packet.IP(ip),
		FirstSeen:  at.Add(-10 * time.Minute),
		DetectedAt: at.Add(-9 * time.Minute),
		LastSeen:   at,
		TraceID:    1,
	}
}

func aggReport(sec time.Time, total int, ports map[uint16]int) SamplerEvent {
	return SamplerEvent{Kind: SamplerReport, Report: &trw.SecondReport{
		Second: sec, Total: total, TCP: total, PortPackets: ports,
	}}
}

// mergeCapture records everything an aggregator releases downstream.
type mergeCapture struct {
	events []SamplerEvent
	ats    []time.Time
	hours  []time.Time
	finals []bool
}

func captureAggregator(shards int, health *telemetry.Health) (*Aggregator, *mergeCapture) {
	cap := &mergeCapture{}
	agg := NewAggregator(AggregatorConfig{
		Shards:          shards,
		CollectionDelay: 3 * time.Hour,
		ProcessingDelay: 30 * time.Minute,
		Emit: func(e SamplerEvent, at time.Time) {
			cap.events = append(cap.events, e)
			cap.ats = append(cap.ats, at)
		},
		OnHourMerged: func(hourEnd, _ time.Time, final bool) {
			cap.hours = append(cap.hours, hourEnd)
			cap.finals = append(cap.finals, final)
		},
		Health: health,
	})
	return agg, cap
}

// clusterFrames synthesizes a 3-shard, 2-hour cluster conversation with
// deliberate report gaps and overlaps, plus the final-flush pseudo-hour.
func clusterFrames(t *testing.T) ([]*shardStream, time.Time) {
	t.Helper()
	const shards = 3
	hour := time.Date(2021, 4, 8, 13, 0, 0, 0, time.UTC)
	h1, h2 := hour.Add(time.Hour), hour.Add(2*time.Hour)
	e1, e2 := h1.Unix(), h2.Unix()
	eFlush := h2.Add(time.Hour).Unix()

	ss := make([]*shardStream, shards)
	for i := range ss {
		ss[i] = newShardStream(t, i, shards)
	}
	// Hour 1: shard 0 reports seconds 0 and 4 (a gap the merge must
	// zero-fill), shard 1 second 2, shard 2 also second 2 (the merge must
	// sum both). Shards 0 and 2 each end a flow.
	ss[0].event(e1, aggReport(hour, 10, map[uint16]int{23: 10}))
	ss[0].event(e1, aggReport(hour.Add(4*time.Second), 5, map[uint16]int{80: 5}))
	ss[0].event(e1, aggFlowEnd(0x0A000001, hour.Add(30*time.Minute)))
	ss[1].event(e1, aggReport(hour.Add(2*time.Second), 7, map[uint16]int{23: 3}))
	ss[2].event(e1, aggReport(hour.Add(2*time.Second), 2, map[uint16]int{2323: 2}))
	ss[2].event(e1, aggFlowEnd(0x0A000002, hour.Add(45*time.Minute)))
	for i := range ss {
		ss[i].barrier(e1, false)
	}
	// Hour 2: shard 1 is event-free (barrier-only hours still close).
	ss[0].event(e2, aggReport(h1.Add(time.Second), 4, nil))
	ss[2].event(e2, aggFlowEnd(0x0A000003, h1.Add(5*time.Minute)))
	for i := range ss {
		ss[i].barrier(e2, false)
	}
	// Final flush pseudo-hour: flow ends only, flagged final everywhere.
	ss[0].event(eFlush, aggFlowEnd(0x0A000004, h2))
	for i := range ss {
		ss[i].barrier(eFlush, true)
	}
	return ss, hour
}

func ingestAll(t *testing.T, agg *Aggregator, frames []wire.Frame) {
	t.Helper()
	for _, f := range frames {
		if err := agg.Ingest(f); err != nil {
			t.Fatal(err)
		}
	}
}

func flatten(ss []*shardStream) []wire.Frame {
	var all []wire.Frame
	for _, s := range ss {
		all = append(all, s.frames...)
	}
	return all
}

// TestAggregatorMergeContent checks the merged stream itself: summed
// per-second reports, zero-filled gaps with the nil-map convention, and
// per-hour availability stamps.
func TestAggregatorMergeContent(t *testing.T) {
	ss, hour := clusterFrames(t)
	agg, cap := captureAggregator(3, telemetry.NewHealth())
	ingestAll(t, agg, flatten(ss))

	if len(cap.hours) != 3 {
		t.Fatalf("merged %d hours, want 3", len(cap.hours))
	}
	if got, want := cap.hours[0], hour.Add(time.Hour); !got.Equal(want) {
		t.Errorf("first merged hour end %v, want %v", got, want)
	}
	if cap.finals[0] || cap.finals[1] || !cap.finals[2] {
		t.Errorf("final flags %v, want [false false true]", cap.finals)
	}

	// Hour 1 reports: seconds 0..4, gaps zero-filled, second 2 summed.
	var reps []*trw.SecondReport
	for _, e := range cap.events {
		if e.Kind == SamplerReport && !e.Report.Second.Before(hour) && e.Report.Second.Before(hour.Add(time.Hour)) {
			reps = append(reps, e.Report)
		}
	}
	if len(reps) != 5 {
		t.Fatalf("hour 1 merged into %d reports, want 5 (seconds 0-4)", len(reps))
	}
	wantTotals := []int{10, 0, 9, 0, 5}
	for i, rep := range reps {
		if !rep.Second.Equal(hour.Add(time.Duration(i) * time.Second)) {
			t.Errorf("report %d second %v, want offset %ds", i, rep.Second, i)
		}
		if rep.Total != wantTotals[i] {
			t.Errorf("second %d total %d, want %d", i, rep.Total, wantTotals[i])
		}
	}
	if reps[1].PortPackets != nil || reps[3].PortPackets != nil {
		t.Error("gap-filled seconds must keep the nil port-map convention")
	}
	if want := map[uint16]int{23: 3, 2323: 2}; !reflect.DeepEqual(reps[2].PortPackets, want) {
		t.Errorf("summed second 2 ports %v, want %v", reps[2].PortPackets, want)
	}

	// Every event of one hour carries that hour's availability stamp.
	wantAt := hour.Add(time.Hour).Add(3 * time.Hour).Add(30 * time.Minute)
	for i, at := range cap.ats {
		if at.Before(wantAt) {
			t.Fatalf("event %d available at %v, before first hour's %v", i, at, wantAt)
		}
	}
	if !cap.ats[0].Equal(wantAt) {
		t.Errorf("first event available at %v, want %v", cap.ats[0], wantAt)
	}
	if agg.PendingHours() != 0 {
		t.Errorf("PendingHours() = %d after full drain, want 0", agg.PendingHours())
	}
}

// TestAggregatorShuffleAndDuplicates proves determinism under transport
// chaos: any interleaving of the shards' frames, with every frame
// delivered twice, merges to the byte-identical stream.
func TestAggregatorShuffleAndDuplicates(t *testing.T) {
	ss, _ := clusterFrames(t)
	ref, refCap := captureAggregator(3, telemetry.NewHealth())
	ingestAll(t, ref, flatten(ss))

	for trial := 0; trial < 8; trial++ {
		frames := flatten(ss)
		frames = append(frames, frames...) // every frame twice
		rng := rand.New(rand.NewSource(int64(trial)))
		rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })

		agg, cap := captureAggregator(3, telemetry.NewHealth())
		ingestAll(t, agg, frames)
		if !reflect.DeepEqual(refCap.events, cap.events) {
			t.Fatalf("trial %d: shuffled+duplicated delivery diverged from in-order merge", trial)
		}
		if !reflect.DeepEqual(refCap.ats, cap.ats) || !reflect.DeepEqual(refCap.finals, cap.finals) {
			t.Fatalf("trial %d: availability stamps or final flags diverged", trial)
		}
	}
}

// TestAggregatorReconnectReplay re-delivers a prefix of one shard's
// stream mid-hour — exactly what the v2 sender's whole-batch replay does
// after a dropped connection — and expects no double-emission.
func TestAggregatorReconnectReplay(t *testing.T) {
	ss, _ := clusterFrames(t)
	ref, refCap := captureAggregator(3, telemetry.NewHealth())
	ingestAll(t, ref, flatten(ss))

	agg, cap := captureAggregator(3, telemetry.NewHealth())
	dupsBefore := clusterDupValue()
	for shard, s := range ss {
		if shard == 0 {
			// First batch lands, connection drops, sender replays the
			// batch and continues.
			cut := len(s.frames) / 2
			ingestAll(t, agg, s.frames[:cut])
			ingestAll(t, agg, s.frames[:cut])
			ingestAll(t, agg, s.frames[cut:])
			continue
		}
		ingestAll(t, agg, s.frames)
	}
	if !reflect.DeepEqual(refCap.events, cap.events) {
		t.Fatal("replayed prefix changed the merged stream")
	}
	replayed := int64(len(ss[0].frames) / 2)
	if got := clusterDupValue() - dupsBefore; got < replayed {
		t.Errorf("duplicate-frame counter rose by %d, want >= %d", got, replayed)
	}
}

func clusterDupValue() int64 { return metClusterDupFrames.Value() }

// TestAggregatorSilentShardStalls holds back one shard's barrier: the
// merge must not deadlock or emit a partial hour, and the stall must
// surface through the cluster-merge health check once the silence
// outlives the merge max age.
func TestAggregatorSilentShardStalls(t *testing.T) {
	ss, hour := clusterFrames(t)
	health := telemetry.NewHealth()
	agg, cap := captureAggregator(3, health)

	// Hour 1 completes everywhere; beyond that shard 2 goes silent.
	e1 := hour.Add(time.Hour).Unix()
	for _, s := range ss {
		for _, f := range s.frames {
			if f.ShardID == 2 && f.HourEpoch != e1 {
				continue
			}
			if err := agg.Ingest(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(cap.hours) != 1 {
		t.Fatalf("merged %d hours with a silent shard, want exactly 1", len(cap.hours))
	}
	for _, e := range cap.events {
		if e.Kind == SamplerReport && !e.Report.Second.Before(hour.Add(time.Hour)) {
			t.Fatalf("event from the unmerged hour leaked: %+v", e)
		}
	}
	if agg.PendingHours() == 0 {
		t.Error("PendingHours() = 0, want held hours behind the silent shard")
	}

	// Right after the last merge the check is healthy; once the silent
	// shard has held the barrier past the max age, /healthz flips.
	if rep := health.Evaluate(time.Now()); !rep.Healthy {
		t.Errorf("healthy cluster reported unhealthy: %+v", rep)
	}
	rep := health.Evaluate(time.Now().Add(clusterMergeMaxAge + time.Minute))
	if rep.Healthy {
		t.Error("stalled merge not reflected in health report")
	}
	found := false
	for _, c := range rep.Components {
		if c.Name == "cluster-merge" && c.Status == "stalled" {
			found = true
		}
	}
	if !found {
		t.Errorf("no stalled cluster-merge component in %+v", rep.Components)
	}

	// The missing barrier arriving late releases everything held.
	for _, f := range ss[2].frames {
		if f.HourEpoch == e1 {
			continue
		}
		if err := agg.Ingest(f); err != nil {
			t.Fatal(err)
		}
	}
	if len(cap.hours) != 3 {
		t.Errorf("merged %d hours after the shard recovered, want 3", len(cap.hours))
	}
	if agg.PendingHours() != 0 {
		t.Errorf("PendingHours() = %d after recovery, want 0", agg.PendingHours())
	}
}

// TestAggregatorRejectsBadFrames covers the guard rails: legacy v1
// frames and mismatched shard topologies are errors, not corruption.
func TestAggregatorRejectsBadFrames(t *testing.T) {
	agg, _ := captureAggregator(3, telemetry.NewHealth())
	if err := agg.Ingest(wire.Frame{Seq: 1, Kind: wire.KindReport}); err == nil {
		t.Error("v1 frame accepted on the cluster path")
	}
	if err := agg.Ingest(wire.Frame{Seq: 1, Kind: wire.KindHourEnd, Version: wire.Version2, ShardID: 0, ShardCount: 2}); err == nil {
		t.Error("frame with wrong shard count accepted")
	}
	if err := agg.Ingest(wire.Frame{Seq: 1, Kind: wire.KindHourEnd, Version: wire.Version2, ShardID: 3, ShardCount: 3}); err == nil {
		t.Error("frame with out-of-range shard id accepted")
	}
}
