package pipeline

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"exiot/internal/telemetry"
	"exiot/internal/trw"
	"exiot/internal/wire"
)

// Telemetry handles for the cluster merge stage (see docs/OPERATIONS.md).
var (
	metClusterShardSeq = telemetry.Default().GaugeVec("exiot_cluster_shard_seq",
		"Highest in-order wire sequence applied from one ingest shard.", "shard")
	metClusterShardPending = telemetry.Default().GaugeVec("exiot_cluster_shard_pending_frames",
		"Frames from one shard buffered out-of-order, waiting for a sequence gap to fill.", "shard")
	metClusterShardLag = telemetry.Default().GaugeVec("exiot_cluster_shard_lag_hours",
		"Hours one shard has completed that the merge barrier is still holding (another shard is behind).", "shard")
	metClusterMergeDepth = telemetry.Default().Gauge("exiot_cluster_merge_depth_events",
		"Events merged in the most recently completed cluster hour.")
	metClusterHoursMerged = telemetry.Default().Counter("exiot_cluster_hours_merged_total",
		"Hours fully merged across all ingest shards and released downstream.")
	metClusterDupFrames = telemetry.Default().Counter("exiot_cluster_frames_duplicate_total",
		"Replayed frames discarded by per-shard sequence tracking (reconnect replays).")
	metClusterReordered = telemetry.Default().Counter("exiot_cluster_frames_reordered_total",
		"Frames that arrived ahead of a sequence gap and were buffered for reordering.")
)

// clusterMergeMaxAge is how long the cluster health check tolerates no
// completed merge before /healthz reports the merge stalled — the
// operational signature of a silent (crashed, partitioned) ingest shard
// holding the hour barrier.
const clusterMergeMaxAge = 15 * time.Minute

// AggregatorConfig configures the cluster-side deterministic merge.
type AggregatorConfig struct {
	// Shards is the expected shard count N; every incoming frame must
	// carry ShardCount == N and ShardID < N.
	Shards int

	// CollectionDelay and ProcessingDelay stamp each merged hour's
	// feed-availability time, mirroring LocalConfig.
	CollectionDelay time.Duration
	ProcessingDelay time.Duration

	// Emit receives every merged event in canonical order together with
	// the hour's availability time. Runs on the ingesting goroutine,
	// serialized by the aggregator's lock.
	Emit func(SamplerEvent, time.Time)

	// OnHourMerged, if set, fires after an hour's events have all been
	// emitted: hourEnd is the hour's end, final reports whether every
	// shard marked the hour as its last (end of input).
	OnHourMerged func(hourEnd, availableAt time.Time, final bool)

	// Health receives the merge-liveness check; nil uses the process
	// default registry.
	Health *telemetry.Health
}

// aggShard is the per-upstream reorder and hour-assembly state.
type aggShard struct {
	nextSeq uint64              // next sequence to apply (first is 1)
	pending map[uint64]aggFrame // decoded frames ahead of a gap
	hours   map[int64]*aggHour  // open hours, keyed by hour epoch
	done    map[int64]*aggHour  // barrier-closed hours awaiting merge
	doneQ   []int64             // sorted epochs of done hours

	seqGauge     *telemetry.Gauge
	pendingGauge *telemetry.Gauge
	lagGauge     *telemetry.Gauge
}

// aggFrame is one decoded frame waiting in sequence order.
type aggFrame struct {
	barrier bool
	final   bool
	epoch   int64
	ev      SamplerEvent
}

// aggHour is one shard's event buffer for one hour.
type aggHour struct {
	events []SamplerEvent
	final  bool
}

// Aggregator k-way merges the event streams of N ingest shards into the
// single canonical stream a one-node telescope would produce. Each
// shard's frames are reordered by their per-shard sequence (reconnect
// replays are dropped, gaps are awaited), buffered per hour epoch, and
// released only when *every* shard has delivered its KindHourEnd barrier
// for that hour — then the union of the shards' events is summed
// (per-second reports), gap-filled, and sorted into canonical order, so
// the merge output is a pure function of the hour's global packet set.
// Safe for concurrent Ingest calls (one per upstream connection).
type Aggregator struct {
	mu     sync.Mutex
	cfg    AggregatorConfig
	shards []*aggShard

	liveness *telemetry.Check

	// merge scratch
	repAgg map[int64]*trw.SecondReport
}

// NewAggregator builds the merge state for cfg.Shards upstreams.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	h := cfg.Health
	if h == nil {
		h = telemetry.DefaultHealth()
	}
	a := &Aggregator{
		cfg:      cfg,
		shards:   make([]*aggShard, cfg.Shards),
		liveness: h.Register("cluster-merge", clusterMergeMaxAge),
		repAgg:   make(map[int64]*trw.SecondReport),
	}
	for i := range a.shards {
		label := fmt.Sprintf("%d", i)
		a.shards[i] = &aggShard{
			nextSeq:      1,
			pending:      make(map[uint64]aggFrame),
			hours:        make(map[int64]*aggHour),
			done:         make(map[int64]*aggHour),
			seqGauge:     metClusterShardSeq.With(label),
			pendingGauge: metClusterShardPending.With(label),
			lagGauge:     metClusterShardLag.With(label),
		}
	}
	return a
}

// Ingest consumes one v2 wire frame. Duplicates (replays of an already
// applied sequence) are discarded; frames beyond a sequence gap are
// buffered until the gap fills; everything else lands in its hour's
// buffer, and a completed hour barrier may release one or more merged
// hours downstream. The frame's payload is fully decoded before Ingest
// returns, so pooled payload buffers may be reused immediately.
func (a *Aggregator) Ingest(f wire.Frame) error {
	if f.Version != wire.Version2 {
		return fmt.Errorf("aggregator: v%d frame on the cluster path (want v2)", f.Version)
	}
	if int(f.ShardCount) != len(a.shards) {
		return fmt.Errorf("aggregator: frame from shard %d/%d, want %d shards",
			f.ShardID, f.ShardCount, len(a.shards))
	}
	if int(f.ShardID) >= len(a.shards) {
		return fmt.Errorf("aggregator: shard id %d out of range", f.ShardID)
	}

	// Decode outside the lock: decoding is pure, and the payloads of
	// buffered frames must be copied out before the receiver recycles
	// them anyway.
	df := aggFrame{epoch: f.HourEpoch}
	switch f.Kind {
	case wire.KindHourEnd:
		df.barrier = true
		df.final = f.Flags&wire.FlagFinal != 0
	default:
		ev, err := DecodeEvent(f)
		if err != nil {
			return err
		}
		df.ev = ev
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.shards[f.ShardID]
	if f.Seq < s.nextSeq {
		metClusterDupFrames.Inc()
		return nil
	}
	if f.Seq > s.nextSeq {
		if _, dup := s.pending[f.Seq]; dup {
			metClusterDupFrames.Inc()
			return nil
		}
		s.pending[f.Seq] = df
		metClusterReordered.Inc()
		s.pendingGauge.Set(float64(len(s.pending)))
		return nil
	}

	// In order: apply, then drain whatever the gap was holding back.
	a.apply(s, df)
	for {
		next, ok := s.pending[s.nextSeq]
		if !ok {
			break
		}
		delete(s.pending, s.nextSeq)
		a.apply(s, next)
	}
	s.seqGauge.Set(float64(s.nextSeq - 1))
	s.pendingGauge.Set(float64(len(s.pending)))
	a.tryMerge()
	return nil
}

// apply folds one in-sequence frame into its hour buffer (or closes the
// hour on a barrier). Caller holds the lock.
func (a *Aggregator) apply(s *aggShard, df aggFrame) {
	s.nextSeq++
	if df.barrier {
		h := s.hours[df.epoch]
		if h == nil {
			h = &aggHour{} // an hour with no events still closes
		}
		delete(s.hours, df.epoch)
		h.final = df.final
		s.done[df.epoch] = h
		s.doneQ = append(s.doneQ, df.epoch)
		slices.Sort(s.doneQ)
		s.lagGauge.Set(float64(len(s.doneQ)))
		return
	}
	h := s.hours[df.epoch]
	if h == nil {
		h = &aggHour{}
		s.hours[df.epoch] = h
	}
	h.events = append(h.events, df.ev)
}

// tryMerge releases every hour all shards have completed, oldest first.
// Caller holds the lock.
func (a *Aggregator) tryMerge() {
	for {
		// Candidate: the oldest completed hour anywhere. It merges only
		// once every shard has completed it; a shard still mid-hour (or
		// silent) holds the barrier, which surfaces as rising lag gauges
		// and, eventually, a stalled cluster-merge health check.
		epoch := int64(math.MaxInt64)
		for _, s := range a.shards {
			if len(s.doneQ) > 0 && s.doneQ[0] < epoch {
				epoch = s.doneQ[0]
			}
		}
		if epoch == math.MaxInt64 {
			return
		}
		for _, s := range a.shards {
			if s.done[epoch] == nil {
				return
			}
		}
		a.mergeHour(epoch)
	}
}

// mergeHour fuses all shards' buffers for epoch into the canonical
// single-node stream and emits it. Caller holds the lock.
func (a *Aggregator) mergeHour(epoch int64) {
	final := true
	var merged []SamplerEvent

	// Per-second reports sum across shards (each shard's detector only
	// saw its partition of the source space); everything else is a
	// disjoint union. Gap seconds — covered by one shard's contiguous
	// report run but not another's — stay zero-filled exactly like a
	// serial detector crossing a quiet second.
	agg := a.repAgg
	var minSec, maxSec int64 = math.MaxInt64, math.MinInt64
	for _, s := range a.shards {
		h := s.done[epoch]
		delete(s.done, epoch)
		s.doneQ = s.doneQ[1:] // epoch is each shard's oldest completed
		s.lagGauge.Set(float64(len(s.doneQ)))
		if !h.final {
			final = false
		}
		for _, ev := range h.events {
			if ev.Kind != SamplerReport {
				merged = append(merged, ev)
				continue
			}
			sec := ev.Report.Second.UnixNano()
			if sec < minSec {
				minSec = sec
			}
			if sec > maxSec {
				maxSec = sec
			}
			dst := agg[sec]
			if dst == nil {
				dst = &trw.SecondReport{Second: ev.Report.Second}
				agg[sec] = dst
			}
			addSecondReport(dst, ev.Report)
		}
	}
	if minSec <= maxSec {
		for sec := minSec; sec <= maxSec; sec += int64(time.Second) {
			rep := agg[sec]
			if rep == nil {
				rep = &trw.SecondReport{Second: time.Unix(0, sec).UTC()}
			}
			merged = append(merged, SamplerEvent{Kind: SamplerReport, Report: rep})
		}
	}
	clear(agg)

	slices.SortFunc(merged, canonCompare)

	hourEnd := time.Unix(epoch, 0).UTC()
	availableAt := hourEnd.Add(a.cfg.CollectionDelay).Add(a.cfg.ProcessingDelay)
	for _, ev := range merged {
		a.cfg.Emit(ev, availableAt)
	}
	metClusterMergeDepth.Set(float64(len(merged)))
	metClusterHoursMerged.Inc()
	a.liveness.Beat()
	if a.cfg.OnHourMerged != nil {
		a.cfg.OnHourMerged(hourEnd, availableAt, final)
	}
}

// addSecondReport folds src into dst (same second), allocating dst's
// port map only when src actually has port activity — preserving the
// nil-map convention of a quiet second.
func addSecondReport(dst, src *trw.SecondReport) {
	dst.Total += src.Total
	dst.TCP += src.TCP
	dst.UDP += src.UDP
	dst.ICMP += src.ICMP
	dst.Backscatter += src.Backscatter
	dst.NewScanFlows += src.NewScanFlows
	if len(src.PortPackets) > 0 {
		if dst.PortPackets == nil {
			dst.PortPackets = make(map[uint16]int, len(src.PortPackets))
		}
		for port, n := range src.PortPackets {
			dst.PortPackets[port] += n
		}
	}
}

// PendingHours reports how many completed-but-unmerged hours the slowest
// and fastest shards are apart — zero when the cluster is in lockstep.
func (a *Aggregator) PendingHours() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	maxLag := 0
	for _, s := range a.shards {
		if len(s.doneQ) > maxLag {
			maxLag = len(s.doneQ)
		}
	}
	return maxLag
}
