package pipeline

import (
	"testing"
	"time"

	"exiot/internal/organizer"
	"exiot/internal/packet"
	"exiot/internal/simnet"
	"exiot/internal/trw"
	"exiot/internal/wire"
)

func TestBridgeBatchRoundTrip(t *testing.T) {
	t0 := time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC)
	ip := packet.MustParseIP("203.0.113.44")
	sample := make([]packet.Packet, 0, 60)
	for i := 0; i < 60; i++ {
		p := packet.Packet{
			Timestamp: t0.Add(time.Duration(i) * time.Second),
			Proto:     packet.TCP,
			SrcIP:     ip,
			DstIP:     packet.MustParseIP("10.0.0.1"),
			DstPort:   23,
			Flags:     packet.FlagSYN,
			Seq:       uint32(i),
			TTL:       48,
		}
		p.Normalize()
		sample = append(sample, p)
	}
	e := SamplerEvent{
		Kind: SamplerBatch,
		Batch: &organizer.Batch{
			IP: ip, IPString: ip.String(),
			FirstSeen: t0.Add(-time.Minute), DetectedAt: t0,
			Sample: sample, SampleSize: len(sample),
		},
	}
	kind, data, err := EncodeEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	if kind != wire.KindSample {
		t.Errorf("kind = %d", kind)
	}
	back, err := DecodeEvent(wire.Frame{Kind: kind, Payload: data})
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != SamplerBatch || back.Batch.IP != ip || len(back.Batch.Sample) != 60 {
		t.Errorf("roundtrip = %+v", back)
	}
	if back.Batch.Sample[59].Seq != 59 {
		t.Error("packet fields lost")
	}
}

func TestBridgeFlowEndRoundTrip(t *testing.T) {
	t0 := time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC)
	e := SamplerEvent{
		Kind:       SamplerFlowEnd,
		IP:         packet.MustParseIP("198.51.100.9"),
		FirstSeen:  t0,
		DetectedAt: t0.Add(time.Minute),
		LastSeen:   t0.Add(time.Hour),
	}
	kind, data, err := EncodeEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEvent(wire.Frame{Kind: kind, Payload: data})
	if err != nil {
		t.Fatal(err)
	}
	if back.IP != e.IP || !back.LastSeen.Equal(e.LastSeen) || !back.FirstSeen.Equal(e.FirstSeen) {
		t.Errorf("roundtrip = %+v", back)
	}
}

func TestBridgeReportRoundTrip(t *testing.T) {
	e := SamplerEvent{
		Kind: SamplerReport,
		Report: &trw.SecondReport{
			Second: time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC),
			Total:  100, TCP: 90, UDP: 7, ICMP: 3,
			NewScanFlows: 2,
			PortPackets:  map[uint16]int{23: 60, 80: 30},
		},
	}
	kind, data, err := EncodeEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeEvent(wire.Frame{Kind: kind, Payload: data})
	if err != nil {
		t.Fatal(err)
	}
	if back.Report.Total != 100 || back.Report.PortPackets[23] != 60 {
		t.Errorf("roundtrip = %+v", back.Report)
	}
}

func TestBridgeErrors(t *testing.T) {
	if _, _, err := EncodeEvent(SamplerEvent{Kind: 99}); err == nil {
		t.Error("unknown kind encoded")
	}
	if _, err := DecodeEvent(wire.Frame{Kind: 99}); err == nil {
		t.Error("unknown frame decoded")
	}
	if _, err := DecodeEvent(wire.Frame{Kind: wire.KindFlowEnd, Payload: []byte("junk")}); err == nil {
		t.Error("junk flow end decoded")
	}
	if _, err := DecodeEvent(wire.Frame{Kind: wire.KindReport, Payload: []byte("junk")}); err == nil {
		t.Error("junk report decoded")
	}
	if _, err := DecodeEvent(wire.Frame{Kind: wire.KindSample, Payload: []byte("junk")}); err == nil {
		t.Error("junk sample decoded")
	}
}

// TestSplitPipelineOverWire runs the sampler half and the server half in
// the same process but connected only through the wire transport — the
// deployment shape of cmd/flowsampler + cmd/exiotd.
func TestSplitPipelineOverWire(t *testing.T) {
	cfg := simnetSmall(300)
	w := newWorld(cfg)

	// Server side.
	srvCfg := DefaultServerConfig()
	srvCfg.ScanMod.BatchSize = 20
	server := NewServer(srvCfg, w, w.Registry(), nil)
	availableAt := w.Start().Add(5 * time.Hour)
	recv, err := wire.NewReceiver("127.0.0.1:0", func(f wire.Frame) {
		e, err := DecodeEvent(f)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		server.HandleEvent(e, availableAt)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	// Sampler side, shipping over the wire.
	sender := wire.NewSender(recv.Addr())
	defer sender.Close()
	sampler := NewSampler(trw.Default(), 0, func(e SamplerEvent) {
		kind, data, err := EncodeEvent(e)
		if err != nil {
			t.Errorf("encode: %v", err)
			return
		}
		if err := sender.Send(kind, data); err != nil {
			t.Errorf("send: %v", err)
		}
	})

	for h := 0; h < 3; h++ {
		hour := w.Start().Add(time.Duration(h) * time.Hour)
		sampler.ProcessHour(w.GenerateHour(hour), hour.Add(time.Hour))
	}
	sampler.Flush(w.Start().Add(3 * time.Hour))
	server.FlushScans(availableAt)

	if server.Counters().RecordsCreated == 0 {
		t.Error("no records crossed the wire")
	}
	if server.Counters().Reports == 0 {
		t.Error("no reports crossed the wire")
	}
}

func simnetSmall(seed int64) simnet.Config {
	cfg := simnet.DefaultConfig(seed)
	cfg.NumInfected = 60
	cfg.NumNonIoT = 12
	cfg.NumResearch = 2
	cfg.NumMisconfig = 5
	cfg.NumBackscat = 2
	cfg.MaxPacketsPerHostHour = 800
	return cfg
}

func newWorld(cfg simnet.Config) *simnet.World { return simnet.NewWorld(cfg) }
