package pipeline

import (
	"reflect"
	"testing"
	"time"

	"exiot/internal/organizer"
	"exiot/internal/packet"
	"exiot/internal/trw"
	"exiot/internal/wire"
)

func sampleBatchEvent(t *testing.T) SamplerEvent {
	t.Helper()
	base := time.Date(2021, 4, 8, 13, 0, 0, 0, time.UTC)
	var pkts []packet.Packet
	for i := 0; i < 5; i++ {
		p := packet.Packet{
			Timestamp:   base.Add(time.Duration(i) * 250 * time.Millisecond),
			TotalLength: 40,
			TTL:         64,
			Proto:       packet.TCP,
			SrcIP:       packet.IP(0x0A000001),
			DstIP:       packet.IP(0x2C000000 + uint32(i)),
			SrcPort:     40000,
			DstPort:     23,
			Seq:         1000 + uint32(i),
			DataOffset:  5,
			Flags:       packet.FlagSYN,
			Window:      1024,
		}
		p.Normalize()
		pkts = append(pkts, p)
	}
	ip := packet.IP(0x0A000001)
	return SamplerEvent{
		Kind: SamplerBatch,
		Batch: &organizer.Batch{
			IP:         ip,
			IPString:   ip.String(),
			FirstSeen:  base,
			DetectedAt: base.Add(time.Second),
			Sample:     pkts,
			SampleSize: len(pkts),
			TraceID:    0xDEADBEEF,
		},
		TraceID: 0xDEADBEEF,
	}
}

// roundTripV2 encodes e binary, wraps it in a v2 frame, and decodes.
func roundTripV2(t *testing.T, e SamplerEvent) SamplerEvent {
	t.Helper()
	kind, payload, err := AppendEncodeEvent(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeEvent(wire.Frame{Kind: kind, Payload: payload, Version: wire.Version2})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	in := sampleBatchEvent(t)
	out := roundTripV2(t, in)
	if out.Kind != SamplerBatch || out.TraceID != in.TraceID {
		t.Fatalf("decoded %+v", out)
	}
	if !reflect.DeepEqual(in.Batch, out.Batch) {
		t.Errorf("batch mismatch:\n in: %+v\nout: %+v", in.Batch, out.Batch)
	}
}

func TestBinaryFlowEndRoundTrip(t *testing.T) {
	base := time.Date(2021, 4, 8, 13, 0, 0, 123456789, time.UTC)
	in := SamplerEvent{
		Kind:       SamplerFlowEnd,
		IP:         packet.IP(0x0A000002),
		FirstSeen:  base,
		DetectedAt: base.Add(3 * time.Second),
		LastSeen:   base.Add(40 * time.Minute),
		TraceID:    42,
	}
	out := roundTripV2(t, in)
	out.Trace = nil
	if !reflect.DeepEqual(in, out) {
		t.Errorf("flow end mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestBinaryReportRoundTrip(t *testing.T) {
	in := SamplerEvent{
		Kind: SamplerReport,
		Report: &trw.SecondReport{
			Second:       time.Date(2021, 4, 8, 13, 0, 7, 0, time.UTC),
			Total:        1200,
			TCP:          900,
			UDP:          250,
			ICMP:         50,
			Backscatter:  17,
			NewScanFlows: 3,
			PortPackets:  map[uint16]int{23: 400, 2323: 120, 80: 77},
		},
	}
	out := roundTripV2(t, in)
	if !reflect.DeepEqual(in.Report, out.Report) {
		t.Errorf("report mismatch:\n in: %+v\nout: %+v", in.Report, out.Report)
	}

	// A report with no port activity must round-trip with a nil map —
	// downstream equivalence checks distinguish nil from empty.
	in.Report.PortPackets = nil
	out = roundTripV2(t, in)
	if out.Report.PortPackets != nil {
		t.Errorf("empty PortPackets decoded non-nil: %+v", out.Report.PortPackets)
	}
}

func TestBinaryDecodeTruncated(t *testing.T) {
	in := sampleBatchEvent(t)
	kind, payload, err := AppendEncodeEvent(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 10, len(payload) / 2, len(payload) - 1} {
		if _, err := DecodeEvent(wire.Frame{Kind: kind, Payload: payload[:cut], Version: wire.Version2}); err == nil {
			t.Errorf("truncated payload (%d of %d bytes) decoded without error", cut, len(payload))
		}
	}
}

// TestMixedVersionDecode proves one receiver-side decode path handles
// both sender generations: the same event encoded as v1 JSON and as v2
// binary decodes to the same SamplerEvent.
func TestMixedVersionDecode(t *testing.T) {
	events := []SamplerEvent{
		sampleBatchEvent(t),
		{
			Kind:       SamplerFlowEnd,
			IP:         packet.IP(0x0A000003),
			FirstSeen:  time.Date(2021, 4, 8, 13, 0, 1, 0, time.UTC),
			DetectedAt: time.Date(2021, 4, 8, 13, 0, 2, 0, time.UTC),
			LastSeen:   time.Date(2021, 4, 8, 13, 59, 0, 0, time.UTC),
			TraceID:    7,
		},
		{
			Kind: SamplerReport,
			Report: &trw.SecondReport{
				Second: time.Date(2021, 4, 8, 13, 0, 3, 0, time.UTC),
				Total:  10, TCP: 10,
				PortPackets: map[uint16]int{8080: 10},
			},
		},
	}
	for i, e := range events {
		k1, p1, err := EncodeEvent(e)
		if err != nil {
			t.Fatal(err)
		}
		k2, p2, err := AppendEncodeEvent(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("event %d: kind %d (v1) vs %d (v2)", i, k1, k2)
		}
		fromV1, err := DecodeEvent(wire.Frame{Kind: k1, Payload: p1})
		if err != nil {
			t.Fatalf("event %d v1 decode: %v", i, err)
		}
		fromV2, err := DecodeEvent(wire.Frame{Kind: k2, Payload: p2, Version: wire.Version2})
		if err != nil {
			t.Fatalf("event %d v2 decode: %v", i, err)
		}
		if !reflect.DeepEqual(fromV1, fromV2) {
			t.Errorf("event %d decodes diverge:\n v1: %+v\n v2: %+v", i, fromV1, fromV2)
		}
	}
}
