package pipeline

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"time"

	"exiot/internal/organizer"
	"exiot/internal/packet"
	"exiot/internal/trace"
	"exiot/internal/trw"
	"exiot/internal/wire"
)

// Compact binary payload encodings for wire protocol v2. The v1 JSON
// payloads (bridge.go) spend most of their bytes on field names and
// base64; these layouts are field-order binary, big-endian, with packet
// headers in their native wire format (packet.Marshal). DecodeEvent
// dispatches on the frame's protocol version, so one receiver serves
// both generations of sender.
//
// Layouts (all integers big-endian):
//
//	sample   u32 srcIP · i64 firstSeenNs · i64 detectedAtNs ·
//	         u64 traceID · u32 sampleSize · u32 nPackets ·
//	         nPackets × (u16 hdrLen · hdr · i64 timestampNs)
//	flowEnd  u32 srcIP · i64 firstSeenNs · i64 detectedAtNs ·
//	         i64 lastSeenNs · u64 traceID
//	report   i64 secondNs · 6 × i64 counters · u16 nPorts ·
//	         nPorts × (u16 port · u32 count), ports ascending
//
// Times are UnixNano with math.MinInt64 reserved for the zero time, so a
// round-trip preserves time.Time zero-ness exactly.

const zeroTimeNanos = math.MinInt64

func appendTime(dst []byte, t time.Time) []byte {
	n := int64(zeroTimeNanos)
	if !t.IsZero() {
		n = t.UnixNano()
	}
	return binary.BigEndian.AppendUint64(dst, uint64(n))
}

// AppendEncodeEvent serializes a sampler event into the v2 binary
// layout, appending the payload to dst (which may be nil or a reused
// scratch buffer) and returning the frame kind to ship it under.
func AppendEncodeEvent(dst []byte, e SamplerEvent) (wire.Kind, []byte, error) {
	switch e.Kind {
	case SamplerBatch:
		b := e.Batch
		dst = binary.BigEndian.AppendUint32(dst, uint32(b.IP))
		dst = appendTime(dst, b.FirstSeen)
		dst = appendTime(dst, b.DetectedAt)
		dst = binary.BigEndian.AppendUint64(dst, uint64(b.TraceID))
		dst = binary.BigEndian.AppendUint32(dst, uint32(b.SampleSize))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(b.Sample)))
		for i := range b.Sample {
			p := &b.Sample[i]
			lenOff := len(dst)
			dst = append(dst, 0, 0) // hdrLen backpatched below
			hdrStart := len(dst)
			dst = p.Marshal(dst)
			binary.BigEndian.PutUint16(dst[lenOff:], uint16(len(dst)-hdrStart))
			dst = appendTime(dst, p.Timestamp)
		}
		return wire.KindSample, dst, nil
	case SamplerFlowEnd:
		dst = binary.BigEndian.AppendUint32(dst, uint32(e.IP))
		dst = appendTime(dst, e.FirstSeen)
		dst = appendTime(dst, e.DetectedAt)
		dst = appendTime(dst, e.LastSeen)
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.TraceID))
		return wire.KindFlowEnd, dst, nil
	case SamplerReport:
		r := e.Report
		dst = appendTime(dst, r.Second)
		for _, v := range [...]int{r.Total, r.TCP, r.UDP, r.ICMP, r.Backscatter, r.NewScanFlows} {
			dst = binary.BigEndian.AppendUint64(dst, uint64(int64(v)))
		}
		ports := make([]uint16, 0, len(r.PortPackets))
		for port := range r.PortPackets {
			ports = append(ports, port)
		}
		slices.Sort(ports)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(ports)))
		for _, port := range ports {
			dst = binary.BigEndian.AppendUint16(dst, port)
			dst = binary.BigEndian.AppendUint32(dst, uint32(r.PortPackets[port]))
		}
		return wire.KindReport, dst, nil
	default:
		return 0, nil, fmt.Errorf("encode event: unknown kind %d", e.Kind)
	}
}

// binReader is a bounds-checked cursor over a binary payload. After any
// read, err reports whether the payload was long enough; reads after an
// error return zeros.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("truncated payload at offset %d (need %d of %d bytes)", r.off, n, len(r.b))
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *binReader) u16() uint16 {
	if s := r.take(2); s != nil {
		return binary.BigEndian.Uint16(s)
	}
	return 0
}

func (r *binReader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.BigEndian.Uint32(s)
	}
	return 0
}

func (r *binReader) u64() uint64 {
	if s := r.take(8); s != nil {
		return binary.BigEndian.Uint64(s)
	}
	return 0
}

func (r *binReader) time() time.Time {
	n := int64(r.u64())
	if n == zeroTimeNanos || r.err != nil {
		return time.Time{}
	}
	return time.Unix(0, n).UTC()
}

func decodeEventV2(f wire.Frame) (SamplerEvent, error) {
	r := binReader{b: f.Payload}
	switch f.Kind {
	case wire.KindSample:
		b := organizer.Batch{
			IP:         packet.IP(r.u32()),
			FirstSeen:  r.time(),
			DetectedAt: r.time(),
			TraceID:    trace.ID(r.u64()),
			SampleSize: int(r.u32()),
		}
		b.IPString = b.IP.String()
		n := int(r.u32())
		if r.err == nil && n > 0 {
			b.Sample = make([]packet.Packet, n)
			for i := 0; i < n && r.err == nil; i++ {
				hdr := r.take(int(r.u16()))
				if r.err != nil {
					break
				}
				if _, err := b.Sample[i].Unmarshal(hdr); err != nil {
					return SamplerEvent{}, fmt.Errorf("decode sample packet %d: %w", i, err)
				}
				b.Sample[i].Timestamp = r.time()
			}
		}
		if r.err != nil {
			return SamplerEvent{}, fmt.Errorf("decode sample: %w", r.err)
		}
		return SamplerEvent{Kind: SamplerBatch, Batch: &b, TraceID: b.TraceID}, nil
	case wire.KindFlowEnd:
		e := SamplerEvent{
			Kind:       SamplerFlowEnd,
			IP:         packet.IP(r.u32()),
			FirstSeen:  r.time(),
			DetectedAt: r.time(),
			LastSeen:   r.time(),
		}
		e.TraceID = trace.ID(r.u64())
		if r.err != nil {
			return SamplerEvent{}, fmt.Errorf("decode flow end: %w", r.err)
		}
		return e, nil
	case wire.KindReport:
		rep := trw.SecondReport{
			Second:       r.time(),
			Total:        int(int64(r.u64())),
			TCP:          int(int64(r.u64())),
			UDP:          int(int64(r.u64())),
			ICMP:         int(int64(r.u64())),
			Backscatter:  int(int64(r.u64())),
			NewScanFlows: int(int64(r.u64())),
		}
		if n := int(r.u16()); r.err == nil && n > 0 {
			rep.PortPackets = make(map[uint16]int, n)
			for i := 0; i < n && r.err == nil; i++ {
				port := r.u16()
				rep.PortPackets[port] = int(r.u32())
			}
		}
		if r.err != nil {
			return SamplerEvent{}, fmt.Errorf("decode report: %w", r.err)
		}
		return SamplerEvent{Kind: SamplerReport, Report: &rep}, nil
	default:
		return SamplerEvent{}, fmt.Errorf("decode event: unknown frame kind %d", f.Kind)
	}
}
