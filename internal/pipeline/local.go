package pipeline

import (
	"time"

	"exiot/internal/notify"
	"exiot/internal/packet"
	"exiot/internal/registry"
	"exiot/internal/telemetry"
	"exiot/internal/trw"
	"exiot/internal/zmap"
)

// LocalConfig parameterizes a single-process pipeline.
type LocalConfig struct {
	TRW        trw.Config
	MinSamples int
	Server     ServerConfig

	// Workers sets the detection worker count: 0 = GOMAXPROCS,
	// 1 = the exact legacy serial path, >1 = that many detector shards.
	// Unless Server.Workers is set explicitly, the same count drives the
	// back half: the classify stage's worker pool, the ZMap probe pool,
	// and the annotate fan-out. The event stream (and therefore the feed)
	// is identical at any setting; only throughput changes.
	Workers int

	// CollectionDelay models CAIDA's collect/compress/store lag before an
	// hourly capture is published (paper: ≈3.5 h — the dominant
	// contributor to feed latency).
	CollectionDelay time.Duration
	// ProcessingDelay models the flow-detection pass over one published
	// hour (paper: ≈20 minutes per hour of data).
	ProcessingDelay time.Duration

	// Durable persists feed state to a WAL + snapshot directory and
	// recovers it on start (empty Dir disables). On resume, re-drive the
	// same generated hours through ProcessHour: deliveries already
	// covered by the recovered state are skipped and the run continues
	// exactly where the previous process stopped.
	Durable DurableConfig
}

// DefaultLocalConfig returns the paper's operating point.
func DefaultLocalConfig() LocalConfig {
	return LocalConfig{
		TRW:             trw.Default(),
		Server:          DefaultServerConfig(),
		CollectionDelay: 3*time.Hour + 30*time.Minute,
		ProcessingDelay: 20 * time.Minute,
	}
}

// Local runs the sampler and the feed server in one process, modeling the
// availability delays of the distributed deployment so feed latency is
// still measurable.
type Local struct {
	cfg     LocalConfig
	sampler *Sampler
	server  *Server
	// stage is the classify worker pool (nil on the serial path, where
	// sampler events go straight to the server).
	stage *ClassifyStage
	// durable persists state when configured; skip counts regenerated
	// events already covered by the recovered state, which are neither
	// re-logged nor re-delivered.
	durable *Durable
	skip    uint64

	availableAt time.Time
}

// NewLocal assembles a single-process pipeline. When cfg.Durable.Dir is
// set and the state directory cannot be opened, NewLocal panics; use
// NewDurableLocal to handle the error.
func NewLocal(cfg LocalConfig, prober zmap.Prober, reg *registry.Registry, mailer notify.Mailer) *Local {
	l, err := NewDurableLocal(cfg, prober, reg, mailer)
	if err != nil {
		panic(err)
	}
	return l
}

// NewDurableLocal assembles a single-process pipeline, recovering feed
// state from cfg.Durable.Dir when configured. The error is always nil
// with durability disabled.
func NewDurableLocal(cfg LocalConfig, prober zmap.Prober, reg *registry.Registry, mailer notify.Mailer) (*Local, error) {
	if cfg.CollectionDelay == 0 {
		cfg.CollectionDelay = DefaultLocalConfig().CollectionDelay
	}
	if cfg.ProcessingDelay == 0 {
		cfg.ProcessingDelay = DefaultLocalConfig().ProcessingDelay
	}
	if cfg.Server.Workers == 0 {
		cfg.Server.Workers = cfg.Workers
	}
	l := &Local{cfg: cfg}
	l.server = NewServer(cfg.Server, prober, reg, mailer)
	if cfg.Durable.Dir != "" {
		// Recovery runs here: snapshot restore plus WAL replay through
		// the normal event path, before the first regenerated hour.
		dur, err := OpenDurable(cfg.Durable, l.server)
		if err != nil {
			return nil, err
		}
		l.durable = dur
		l.skip = dur.Recovery().Events()
	}
	emit := func(e SamplerEvent) {
		l.server.HandleEvent(e, l.availableAt)
	}
	// One knob for the whole back half: with more than one effective
	// worker, sampler events route through the classify stage, which
	// pre-processes them concurrently and re-serializes by sequence
	// number — the server sees the identical event order either way.
	if l.server.workers > 1 {
		l.stage = NewClassifyStage(l.server, l.server.workers)
		emit = func(e SamplerEvent) {
			l.stage.Enqueue(e, l.availableAt)
		}
	}
	if l.durable != nil {
		// The WAL sits ahead of delivery, in the sampler's (serial) emit
		// order — the same order the classify stage re-serializes to, so
		// log order always equals server apply order. The first skip
		// events of a resumed run are already part of the recovered
		// state: regeneration heals any torn-away WAL tail.
		deliver := emit
		emit = func(e SamplerEvent) {
			if l.skip > 0 {
				l.skip--
				return
			}
			l.durable.Append(e, l.availableAt)
			deliver(e)
		}
	}
	l.sampler = NewSamplerWorkers(cfg.TRW, cfg.MinSamples, cfg.Workers, emit)
	return l, nil
}

// ProcessHour pushes one simulated hour through both halves. The hour's
// events surface in the feed at hour-end + collection + processing delay.
func (l *Local) ProcessHour(pkts []packet.Packet, hour time.Time) {
	span := telemetry.Default().StartSpan("hour")
	defer span.End()
	hourEnd := hour.Add(time.Hour)
	l.availableAt = hourEnd.Add(l.cfg.CollectionDelay).Add(l.cfg.ProcessingDelay)
	l.sampler.ProcessHour(pkts, hourEnd)
	if l.stage != nil {
		l.stage.Drain()
	}
	l.server.Tick(l.availableAt)
	if l.durable != nil && l.skip == 0 {
		// Hour boundaries are the natural quiescent points; a pending
		// scan batch defers the snapshot to a later hour.
		l.durable.MaybeSnapshot(l.availableAt, false)
	}
}

// Finish ends all live flows and flushes pending scans at the end of a
// run.
func (l *Local) Finish(now time.Time) {
	l.availableAt = now.Add(l.cfg.CollectionDelay).Add(l.cfg.ProcessingDelay)
	l.sampler.Flush(now)
	if l.stage != nil {
		l.stage.Close()
	}
	l.server.FlushScans(l.availableAt)
	l.server.Tick(l.availableAt)
}

// Durable exposes the persistence layer (nil when disabled).
func (l *Local) Durable() *Durable { return l.durable }

// Close finalizes persistence: a last snapshot is taken (the server is
// quiescent after Finish, and the classify stage is drained, so every
// logged event is in the exported state) and the state directory is
// released. Safe to call with durability disabled.
func (l *Local) Close() error {
	if l.durable == nil {
		return nil
	}
	l.durable.MaybeSnapshot(l.availableAt, true)
	return l.durable.Close()
}

// Server exposes the feed-server half (API source, stores, counters).
func (l *Local) Server() *Server { return l.server }

// Sampler exposes the CAIDA-side half (detector statistics).
func (l *Local) Sampler() *Sampler { return l.sampler }
