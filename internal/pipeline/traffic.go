package pipeline

import (
	"sort"
	"sync"
	"time"

	"exiot/internal/api"
	"exiot/internal/trw"
)

// TrafficHour aggregates the flow-detection module's per-second reports
// into one hour of telescope traffic statistics — what the paper's
// receiver writes to MongoDB and the front-end charts. The type lives in
// the api package (the serving boundary); this alias keeps pipeline call
// sites readable.
type TrafficHour = api.TrafficHour

// trafficStats accumulates report messages into hourly buckets.
type trafficStats struct {
	mu    sync.Mutex
	hours map[time.Time]*TrafficHour
}

func newTrafficStats() *trafficStats {
	return &trafficStats{hours: make(map[time.Time]*TrafficHour)}
}

// add folds one per-second report into its hour bucket.
func (t *trafficStats) add(rep *trw.SecondReport) {
	hour := rep.Second.Truncate(time.Hour)
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.hours[hour]
	if !ok {
		b = &TrafficHour{Hour: hour, TopPorts: make(map[uint16]int)}
		t.hours[hour] = b
	}
	b.Total += int64(rep.Total)
	b.TCP += int64(rep.TCP)
	b.UDP += int64(rep.UDP)
	b.ICMP += int64(rep.ICMP)
	b.Backscatter += int64(rep.Backscatter)
	b.NewScanFlows += int64(rep.NewScanFlows)
	if rep.Total > b.PeakPPS {
		b.PeakPPS = rep.Total
	}
	b.Seconds++
	for port, n := range rep.PortPackets {
		b.TopPorts[port] += n
	}
}

// snapshot returns the hourly buckets sorted by hour, trimming each
// hour's port map to its top n entries.
func (t *trafficStats) snapshot(topPorts int) []TrafficHour {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TrafficHour, 0, len(t.hours))
	for _, b := range t.hours {
		cp := *b
		cp.TopPorts = trimPortMap(b.TopPorts, topPorts)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hour.Before(out[j].Hour) })
	return out
}

// export returns every hour bucket untrimmed (full port maps), sorted
// by hour — the lossless form snapshots persist.
func (t *trafficStats) export() []TrafficHour {
	return t.snapshot(0)
}

// restore replaces the hour buckets with an exported state.
func (t *trafficStats) restore(hours []TrafficHour) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hours = make(map[time.Time]*TrafficHour, len(hours))
	for _, h := range hours {
		cp := h
		cp.TopPorts = make(map[uint16]int, len(h.TopPorts))
		for k, v := range h.TopPorts {
			cp.TopPorts[k] = v
		}
		t.hours[h.Hour] = &cp
	}
}

func trimPortMap(m map[uint16]int, n int) map[uint16]int {
	if n <= 0 || len(m) <= n {
		cp := make(map[uint16]int, len(m))
		for k, v := range m {
			cp[k] = v
		}
		return cp
	}
	type kv struct {
		port uint16
		n    int
	}
	items := make([]kv, 0, len(m))
	for port, cnt := range m {
		items = append(items, kv{port, cnt})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].port < items[j].port
	})
	cp := make(map[uint16]int, n)
	for _, it := range items[:n] {
		cp[it.port] = it.n
	}
	return cp
}
