package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"exiot/internal/durable"
	"exiot/internal/feed"
	"exiot/internal/ml"
	"exiot/internal/notify"
	"exiot/internal/packet"
	"exiot/internal/store"
	"exiot/internal/telemetry"
	"exiot/internal/trainer"
	"exiot/internal/wire"
)

// This file wires the durable subsystem into the feed server. Design
// (see DESIGN.md, "Durability and recovery determinism"): the WAL logs
// the server's *inputs* — wire-encoded sampler events plus the
// simulated instant each became available — and recovery replays them
// through the unmodified HandleEvent path on top of the latest
// snapshot. Because the pipeline is deterministic given its inputs,
// replay reproduces every downstream effect: record inserts, END_FLOW
// updates, trainer-window growth, recomputed retrains, notifications.

// serverState is the snapshot payload: the feed server's full mutable
// state at a quiescent point (no organized flow awaiting probe
// results).
type serverState struct {
	// ObjectIDCounter raises the process-global ID counter on restore so
	// fresh IDs cannot collide with restored ones.
	ObjectIDCounter uint64 `json:"object_id_counter"`

	Clock       time.Time `json:"clock"`
	LastRetrain time.Time `json:"last_retrain"`
	LastAttempt time.Time `json:"last_attempt"`
	Counters    Counters  `json:"counters"`

	Latest     []store.Doc[feed.Record]          `json:"latest"`
	Historical []store.Doc[feed.Record]          `json:"historical"`
	LatestID   map[store.ObjectID]store.ObjectID `json:"latest_id"`
	Active     []store.KVItem                    `json:"active"`

	// PendingEnds are flow ends parked for records still waiting on a
	// scan batch; unlike pending batches they may never drain, so they
	// are part of the snapshot (wire-encoded, sorted by IP).
	PendingEnds []encodedEvent `json:"pending_ends,omitempty"`

	Traffic []TrafficHour `json:"traffic,omitempty"`
	Trainer trainer.State `json:"trainer"`

	Notifier *notify.State `json:"notifier,omitempty"`

	ScanScanned int64 `json:"scan_scanned"`
	ScanTagged  int64 `json:"scan_tagged"`

	// Model is the active model in ml.SavedModel form (absent before the
	// first successful retrain).
	Model json.RawMessage `json:"model,omitempty"`
}

// encodedEvent is one wire-encoded sampler event inside a snapshot.
type encodedEvent struct {
	Kind    uint8  `json:"kind"`
	Payload []byte `json:"payload"`
}

// Quiescent reports whether the server is at a snapshot-safe point: no
// organized flow is parked awaiting active-measurement results and the
// scan module's batch buffer is empty. (Parked flow *ends* are fine —
// they are serialized with the snapshot.)
func (s *Server) Quiescent() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pendingBatches) == 0 && !s.scanModHasPending()
}

// ExportState serializes the server's full mutable state. The server
// must be quiescent (see Quiescent); in-flight scan batches have no
// serial form because probe results live in the simulated world, not in
// the server.
func (s *Server) ExportState() ([]byte, error) {
	if !s.Quiescent() {
		return nil, errors.New("pipeline: export requires a quiescent server (scan batch in flight)")
	}
	scanned, tagged := s.scanMod.Stats()
	st := serverState{
		ObjectIDCounter: store.ObjectIDCounterValue(),
		Latest:          s.latest.Export(),
		Historical:      s.historical.Export(),
		Active:          s.active.Export(),
		Traffic:         s.traffic.export(),
		Trainer:         s.trainer.ExportState(),
		ScanScanned:     scanned,
		ScanTagged:      tagged,
	}

	s.mu.Lock()
	st.Clock = s.clock
	st.LastRetrain = s.lastRetrain
	st.LastAttempt = s.lastAttempt
	st.Counters = s.counters
	st.LatestID = make(map[store.ObjectID]store.ObjectID, len(s.latestID))
	for k, v := range s.latestID {
		st.LatestID[k] = v
	}
	ends := make([]SamplerEvent, 0, len(s.pendingEnds))
	for _, e := range s.pendingEnds {
		ends = append(ends, e)
	}
	model := s.lastModel
	s.mu.Unlock()

	sort.Slice(ends, func(i, j int) bool { return ends[i].IP < ends[j].IP })
	for _, e := range ends {
		kind, payload, err := EncodeEvent(e)
		if err != nil {
			return nil, fmt.Errorf("pipeline: encode pending end: %w", err)
		}
		st.PendingEnds = append(st.PendingEnds, encodedEvent{Kind: uint8(kind), Payload: payload})
	}

	if s.notifier != nil {
		ns := s.notifier.ExportState()
		st.Notifier = &ns
	}
	if model != nil {
		saved, err := model.Saved(s.cfg.Trainer.WindowDays)
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(saved)
		if err != nil {
			return nil, fmt.Errorf("pipeline: encode model: %w", err)
		}
		st.Model = raw
	}
	return json.Marshal(st)
}

// RestoreState reinstates a state exported by ExportState. Meant for a
// freshly constructed server, before any event is handled.
func (s *Server) RestoreState(payload []byte) error {
	var st serverState
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("pipeline: decode snapshot: %w", err)
	}
	store.BumpObjectIDCounter(st.ObjectIDCounter)
	s.latest.Restore(st.Latest)
	s.historical.Restore(st.Historical)
	s.active.Restore(st.Active)
	s.traffic.restore(st.Traffic)
	s.trainer.RestoreState(st.Trainer)
	s.scanMod.RestoreStats(st.ScanScanned, st.ScanTagged)

	ends := make(map[packet.IP]SamplerEvent, len(st.PendingEnds))
	for _, enc := range st.PendingEnds {
		e, err := DecodeEvent(wire.Frame{Kind: wire.Kind(enc.Kind), Payload: enc.Payload})
		if err != nil {
			return fmt.Errorf("pipeline: decode pending end: %w", err)
		}
		ends[e.IP] = e
	}

	if s.notifier != nil && st.Notifier != nil {
		if err := s.notifier.RestoreState(*st.Notifier); err != nil {
			return err
		}
	}

	var model *trainer.TrainedModel
	if len(st.Model) > 0 {
		var saved ml.SavedModel
		if err := json.Unmarshal(st.Model, &saved); err != nil {
			return fmt.Errorf("pipeline: decode model: %w", err)
		}
		m, err := trainer.FromSaved(&saved)
		if err != nil {
			return err
		}
		model = m
	}

	s.mu.Lock()
	s.clock = st.Clock
	s.lastRetrain = st.LastRetrain
	s.lastAttempt = st.LastAttempt
	s.counters = st.Counters
	s.latestID = make(map[store.ObjectID]store.ObjectID, len(st.LatestID))
	for k, v := range st.LatestID {
		s.latestID[k] = v
	}
	s.pendingEnds = ends
	s.lastModel = model
	s.mu.Unlock()
	if model != nil {
		s.installModel(model)
	}
	metFeedActive.Set(float64(s.active.Len()))
	return nil
}

// Latest exposes the active threat-information database (state
// verification in tests and dashboards).
func (s *Server) Latest() *store.Collection[feed.Record] { return s.latest }

// setRetrainHook installs fn to observe every successful retrain (the
// durability layer appends a marker record). Runs outside the server
// lock.
func (s *Server) setRetrainHook(fn func(m *trainer.TrainedModel, now time.Time)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onRetrain = fn
}

// DurableConfig parameterizes feed-state persistence. A zero Dir
// disables the subsystem entirely.
type DurableConfig struct {
	// Dir is the state directory holding WAL segments and snapshots.
	Dir string
	// Sync is the WAL fsync policy (durable.SyncAlways / SyncInterval /
	// SyncOff; default interval).
	Sync durable.SyncPolicy
	// SyncInterval is the flush period under the interval policy.
	SyncInterval time.Duration
	// SegmentBytes rotates WAL segments past this size.
	SegmentBytes int64
	// SnapshotEvery takes a full-state snapshot when the simulated clock
	// has advanced this far since the last one (default 6 h). Snapshots
	// wait for a quiescent server.
	SnapshotEvery time.Duration
	// Retain is the snapshot/WAL retention window (default 14 days, the
	// feed's historical lapse).
	Retain time.Duration
}

func (c DurableConfig) withDefaults() DurableConfig {
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 6 * time.Hour
	}
	return c
}

// RecoveryInfo summarizes what OpenDurable reconstructed.
type RecoveryInfo struct {
	// SnapshotSeq is the WAL position of the restored snapshot (0 when
	// recovery started from an empty directory).
	SnapshotSeq uint64
	// SnapshotEvents is the lifetime event count captured by the
	// snapshot.
	SnapshotEvents uint64
	// ReplayedEvents counts WAL event records re-applied on top.
	ReplayedEvents int
	// ReplayedRetrains counts retrain markers seen in the replayed tail
	// (informational; retrains are recomputed, not installed).
	ReplayedRetrains int
	// Truncated reports that a torn or corrupt WAL tail was discarded.
	Truncated bool
}

// Events returns the total sampler events already applied to the
// recovered state — the number a regenerated event stream must skip
// before deliveries resume (restart-resume in simulate mode).
func (r RecoveryInfo) Events() uint64 {
	return r.SnapshotEvents + uint64(r.ReplayedEvents)
}

// Durable binds a feed server to a state directory: every consumed
// event is appended to the WAL before delivery, snapshots are taken at
// quiescent points, and OpenDurable performs crash recovery.
type Durable struct {
	cfg      DurableConfig
	mgr      *durable.Manager
	server   *Server
	rec      RecoveryInfo
	muts     atomic.Int64 // store mutations since the last snapshot
	events   uint64       // lifetime events applied (snapshot + replay + live)
	mu       sync.Mutex
	lastSnap time.Time // simulated TakenAt of the last snapshot
	err      error     // sticky: first append/snapshot failure
}

// OpenDurable attaches server to the state directory in cfg and
// performs recovery: restore the latest snapshot, replay the WAL tail
// through the normal event path (recomputing retrains), then position
// the log for appending. The server must be freshly constructed.
func OpenDurable(cfg DurableConfig, server *Server) (*Durable, error) {
	cfg = cfg.withDefaults()
	mgr, err := durable.Open(durable.Options{
		Dir:          cfg.Dir,
		Sync:         cfg.Sync,
		SyncEvery:    cfg.SyncInterval,
		SegmentBytes: cfg.SegmentBytes,
		Retain:       cfg.Retain,
	})
	if err != nil {
		return nil, err
	}
	d := &Durable{cfg: cfg, mgr: mgr, server: server}

	span := telemetry.Default().StartSpan("recovery")
	meta, payload, err := mgr.LatestSnapshot()
	if err != nil {
		span.End()
		mgr.Close()
		return nil, err
	}
	if payload != nil {
		if err := server.RestoreState(payload); err != nil {
			span.End()
			mgr.Close()
			return nil, fmt.Errorf("pipeline: restore snapshot: %w", err)
		}
		d.rec.SnapshotSeq = meta.LastSeq
		d.rec.SnapshotEvents = meta.EventCount
		d.lastSnap = meta.TakenAt
	}
	stats, err := mgr.Replay(meta.LastSeq, func(rec durable.Record) error {
		if rec.Type != durable.RecordEvent {
			return nil
		}
		e, err := DecodeEvent(wire.Frame{Kind: wire.Kind(rec.Kind), Payload: rec.Payload})
		if err != nil {
			return fmt.Errorf("pipeline: replay seq %d: %w", rec.Seq, err)
		}
		server.HandleEvent(e, rec.AvailableAt)
		return nil
	})
	span.End()
	if err != nil {
		mgr.Close()
		return nil, err
	}
	d.rec.ReplayedEvents = stats.Events
	d.rec.ReplayedRetrains = stats.Retrains
	d.rec.Truncated = stats.Truncated
	d.events = meta.EventCount + uint64(stats.Events)

	if err := mgr.StartAppend(meta.LastSeq + 1); err != nil {
		mgr.Close()
		return nil, err
	}

	// Hooks go in only after replay: replayed events must not re-log
	// themselves, and recomputed retrains must not append new markers.
	countMut := func(store.Mutation) { d.muts.Add(1) }
	server.latest.SetHook(countMut)
	server.historical.SetHook(countMut)
	server.active.SetHook(countMut)
	server.setRetrainHook(func(m *trainer.TrainedModel, now time.Time) {
		marker, err := json.Marshal(map[string]any{
			"trained_at": m.TrainedAt,
			"auc":        m.AUC,
			"f1":         m.F1,
			"train":      m.TrainSize,
			"test":       m.TestSize,
		})
		if err == nil {
			_, err = d.mgr.AppendRetrain(marker)
		}
		if err != nil {
			d.setErr(err)
		}
	})
	return d, nil
}

// Recovery reports what recovery reconstructed.
func (d *Durable) Recovery() RecoveryInfo { return d.rec }

// Err returns the first append or snapshot failure (durability is
// degraded past this point; the feed itself keeps running).
func (d *Durable) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

func (d *Durable) setErr(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
}

// Append logs one sampler event ahead of its delivery to the server.
// Call in delivery order.
func (d *Durable) Append(e SamplerEvent, availableAt time.Time) {
	kind, payload, err := EncodeEvent(e)
	if err == nil {
		_, err = d.mgr.AppendEvent(uint8(kind), availableAt, payload)
	}
	if err != nil {
		d.setErr(err)
		return
	}
	d.mu.Lock()
	d.events++
	d.mu.Unlock()
}

// Handle appends one event and delivers it to the server (the receiver
// path: WAL first, then apply).
func (d *Durable) Handle(e SamplerEvent, availableAt time.Time) {
	d.Append(e, availableAt)
	d.server.HandleEvent(e, availableAt)
	d.MaybeSnapshot(availableAt, false)
}

// MaybeSnapshot writes a full-state snapshot when due: the simulated
// clock advanced past the cadence (or force), state actually changed,
// and the server is quiescent. A non-quiescent server defers (counted
// in exiot_snapshots_total{result="deferred"}); the next call retries.
func (d *Durable) MaybeSnapshot(now time.Time, force bool) {
	d.mu.Lock()
	due := force || d.lastSnap.IsZero() || now.Sub(d.lastSnap) >= d.cfg.SnapshotEvery
	events := d.events
	d.mu.Unlock()
	if !due {
		return
	}
	if !force && d.muts.Load() == 0 {
		return // nothing changed since the last snapshot
	}
	if !d.server.Quiescent() {
		durable.SnapshotDeferred()
		return
	}
	span := telemetry.Default().StartSpan("snapshot")
	defer span.End()
	payload, err := d.server.ExportState()
	if err != nil {
		d.setErr(err)
		return
	}
	meta := durable.SnapshotMeta{
		LastSeq:    d.mgr.NextSeq() - 1,
		EventCount: events,
		TakenAt:    now,
	}
	if err := d.mgr.WriteSnapshot(meta, payload); err != nil {
		d.setErr(err)
		return
	}
	d.muts.Store(0)
	d.mu.Lock()
	d.lastSnap = now
	d.mu.Unlock()
}

// Close syncs and releases the state directory. It takes no final
// snapshot itself: only a caller that can guarantee every appended
// record has reached the server (Local.Close, after Finish drains the
// classify stage) may safely force one — a snapshot claiming sequences
// the state does not yet contain would lose those events on recovery.
// The synced WAL covers the tail either way.
func (d *Durable) Close() error {
	err := d.mgr.Close()
	if first := d.Err(); first != nil {
		return first
	}
	return err
}

// Manager exposes the underlying log manager (tests).
func (d *Durable) Manager() *durable.Manager { return d.mgr }
