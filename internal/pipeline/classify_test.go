package pipeline

import (
	"reflect"
	"testing"
	"time"

	"exiot/internal/notify"
	"exiot/internal/scanmod"
	"exiot/internal/simnet"
	"exiot/internal/trainer"
	"exiot/internal/trw"
)

// stampedEvent is one captured sampler event plus its availability time.
type stampedEvent struct {
	e  SamplerEvent
	at time.Time
}

// captureBackHalf runs the serial sampler over a small world and records
// the exact event stream the feed server would consume, with the same
// availability stamps Local would apply. Capturing once and replaying
// into differently configured servers isolates the back half: any feed
// difference is the classify stage's fault, not the detector's.
func captureBackHalf(tb testing.TB, seed int64, hours int) ([]stampedEvent, *simnet.World) {
	tb.Helper()
	cfg := simnet.DefaultConfig(seed)
	cfg.NumInfected = 120
	cfg.NumNonIoT = 25
	cfg.NumResearch = 3
	cfg.NumMisconfig = 15
	cfg.NumBackscat = 5
	cfg.Days = (hours + 23) / 24
	cfg.MaxPacketsPerHostHour = 1200
	w := simnet.NewWorld(cfg)

	delay := DefaultLocalConfig().CollectionDelay + DefaultLocalConfig().ProcessingDelay
	var events []stampedEvent
	var at time.Time
	sampler := NewSamplerWorkers(trw.Default(), 0, 1, func(e SamplerEvent) {
		events = append(events, stampedEvent{e: e, at: at})
	})
	start := w.Start()
	for h := 0; h < hours; h++ {
		hour := start.Add(time.Duration(h) * time.Hour)
		at = hour.Add(time.Hour).Add(delay)
		sampler.ProcessHour(w.GenerateHour(hour), hour.Add(time.Hour))
	}
	end := start.Add(time.Duration(hours) * time.Hour)
	at = end.Add(delay)
	sampler.Flush(end)
	if len(events) == 0 {
		tb.Fatal("sampler produced no events")
	}
	return events, w
}

// replayBackHalf drives a captured event stream into a fresh server —
// directly when workers == 1, through a ClassifyStage otherwise.
func replayBackHalf(tb testing.TB, seed int64, hours, workers int) *Server {
	tb.Helper()
	events, w := captureBackHalf(tb, seed, hours)
	scfg := DefaultServerConfig()
	scfg.ScanMod = scanmod.Config{BatchSize: 25, BatchWait: 30 * time.Minute}
	scfg.Trainer = trainer.Config{SearchIterations: 2, Seed: seed}
	scfg.Workers = workers
	srv := NewServer(scfg, w, w.Registry(), &notify.MemoryMailer{})
	if workers > 1 {
		stage := NewClassifyStage(srv, workers)
		for _, se := range events {
			stage.Enqueue(se.e, se.at)
		}
		stage.Close()
	} else {
		for _, se := range events {
			srv.HandleEvent(se.e, se.at)
		}
	}
	last := events[len(events)-1].at
	srv.FlushScans(last)
	srv.Tick(last)
	return srv
}

// TestClassifyStageFeedEquivalence is the back half's determinism proof:
// the same event stream through the parallel classify stage must yield a
// feed byte-identical to the serial path — records, order, and lifetime
// counters alike.
func TestClassifyStageFeedEquivalence(t *testing.T) {
	const seed, hours = 210, 10
	serial := replayBackHalf(t, seed, hours, 1)
	parallel := replayBackHalf(t, seed, hours, 4)

	sRecs := serial.Historical().Find(nil)
	pRecs := parallel.Historical().Find(nil)
	if len(sRecs) == 0 {
		t.Fatal("serial replay produced no records")
	}
	if len(pRecs) != len(sRecs) {
		t.Fatalf("historical size differs: workers=4 got %d, workers=1 got %d", len(pRecs), len(sRecs))
	}
	for i := range sRecs {
		if !reflect.DeepEqual(pRecs[i], sRecs[i]) {
			t.Fatalf("historical record %d differs:\n workers=4: %+v\n workers=1: %+v", i, pRecs[i], sRecs[i])
		}
	}
	if s, p := serial.latest.Find(nil), parallel.latest.Find(nil); !reflect.DeepEqual(s, p) {
		t.Errorf("latest DB differs: workers=4 has %d records, workers=1 has %d", len(p), len(s))
	}
	if s, p := serial.Counters(), parallel.Counters(); s != p {
		t.Errorf("counters differ:\n workers=4: %+v\n workers=1: %+v", p, s)
	}
}

// TestClassifyStageDrainBarrier proves Drain is a complete barrier: every
// enqueued event has reached the server before Drain returns, and the
// stage gauges settle back to zero.
func TestClassifyStageDrainBarrier(t *testing.T) {
	events, w := captureBackHalf(t, 211, 4)
	scfg := DefaultServerConfig()
	scfg.ScanMod = scanmod.Config{BatchSize: 25, BatchWait: 30 * time.Minute}
	scfg.Workers = 4
	srv := NewServer(scfg, w, w.Registry(), nil)
	stage := NewClassifyStage(srv, 4)
	defer stage.Close()

	reports := 0
	for _, se := range events {
		if se.e.Kind == SamplerReport {
			reports++
		}
		stage.Enqueue(se.e, se.at)
	}
	stage.Drain()
	if got := srv.Counters().Reports; got != int64(reports) {
		t.Errorf("after Drain server saw %d reports, enqueued %d", got, reports)
	}
	if v := metClassifyQueueDepth.Value(); v != 0 {
		t.Errorf("queue depth gauge = %v after Drain, want 0", v)
	}
	if v := metClassifyInflight.Value(); v != 0 {
		t.Errorf("in-flight gauge = %v after Drain, want 0", v)
	}
	if v := metClassifyReorderWaiting.Value(); v != 0 {
		t.Errorf("reorder-waiting gauge = %v after Drain, want 0", v)
	}
}

// TestClassifyStageCloseFallback proves Close is idempotent and that a
// late Enqueue still reaches the server via the serial fallback.
func TestClassifyStageCloseFallback(t *testing.T) {
	events, w := captureBackHalf(t, 212, 2)
	scfg := DefaultServerConfig()
	scfg.Workers = 2
	srv := NewServer(scfg, w, w.Registry(), nil)
	stage := NewClassifyStage(srv, 2)
	stage.Close()
	stage.Close() // idempotent

	var report stampedEvent
	for _, se := range events {
		if se.e.Kind == SamplerReport {
			report = se
			break
		}
	}
	if report.e.Kind == 0 {
		t.Skip("no report event in capture")
	}
	before := srv.Counters().Reports
	stage.Enqueue(report.e, report.at)
	if got := srv.Counters().Reports; got != before+1 {
		t.Errorf("post-Close Enqueue: server saw %d reports, want %d", got, before+1)
	}
}
