package pipeline

import (
	"testing"
	"time"

	"exiot/internal/feed"
	"exiot/internal/notify"
	"exiot/internal/packet"
	"exiot/internal/scanmod"
	"exiot/internal/simnet"
	"exiot/internal/trainer"
)

// testLocal builds a small world and runs the local pipeline over it for
// the given number of hours.
func testLocal(t *testing.T, seed int64, hours int) (*Local, *simnet.World) {
	t.Helper()
	cfg := simnet.DefaultConfig(seed)
	cfg.NumInfected = 120
	cfg.NumNonIoT = 25
	cfg.NumResearch = 3
	cfg.NumMisconfig = 15
	cfg.NumBackscat = 5
	cfg.Days = (hours + 23) / 24
	cfg.MaxPacketsPerHostHour = 1200
	w := simnet.NewWorld(cfg)

	lcfg := DefaultLocalConfig()
	lcfg.Server.ScanMod = scanmod.Config{BatchSize: 25, BatchWait: 30 * time.Minute}
	lcfg.Server.Trainer = trainer.Config{SearchIterations: 2, Seed: seed}
	lcfg.Server.Notify = notify.Config{NotifyWhois: true}
	l := NewLocal(lcfg, w, w.Registry(), &notify.MemoryMailer{})

	start := w.Start()
	for h := 0; h < hours; h++ {
		hour := start.Add(time.Duration(h) * time.Hour)
		l.ProcessHour(w.GenerateHour(hour), hour)
	}
	l.Finish(start.Add(time.Duration(hours) * time.Hour))
	return l, w
}

func TestEndToEndProducesRecords(t *testing.T) {
	l, w := testLocal(t, 100, 8)
	srv := l.Server()
	c := srv.Counters()
	if c.RecordsCreated == 0 {
		t.Fatal("pipeline produced no records")
	}
	if c.Reports == 0 {
		t.Error("no per-second reports flowed through")
	}
	if st := l.Sampler().DetectorStats(); st.ScannersFound == 0 {
		t.Error("detector found no scanners")
	}

	// Every record's source must be a real scanning host — misconfig
	// bursts and backscatter must never materialize.
	for _, rec := range srv.Historical().Find(nil) {
		h, ok := w.HostByIP(mustIP(t, rec.IP))
		if !ok {
			t.Fatalf("record for unknown host %s", rec.IP)
		}
		switch h.Kind {
		case simnet.KindMisconfigured:
			t.Errorf("misconfigured node %s entered the feed", rec.IP)
		case simnet.KindBackscatter:
			t.Errorf("backscatter source %s entered the feed", rec.IP)
		}
	}
}

func TestBannerLabelsFlowIntoTrainer(t *testing.T) {
	l, _ := testLocal(t, 101, 8)
	c := l.Server().Counters()
	if c.BannersLabeled == 0 {
		t.Fatal("no banner-labeled flows reached the trainer")
	}
	if l.Server().Trainer().WindowSize() == 0 {
		t.Error("trainer window empty")
	}
}

func TestModelRetrainsAndPredicts(t *testing.T) {
	l, w := testLocal(t, 102, 30) // > 24 h forces a retrain
	srv := l.Server()
	if srv.Counters().ModelRetrains == 0 {
		t.Skip("not enough labeled data for a retrain in this seed")
	}
	m := srv.LastModel()
	if m == nil {
		t.Fatal("retrain counted but no model kept")
	}
	if m.AUC < 0.7 {
		t.Errorf("model AUC = %.3f; the simulated classes should be separable", m.AUC)
	}
	// Model-labeled records must exist after the first retrain.
	modelLabeled := 0
	correct := 0
	for _, rec := range srv.Historical().Find(nil) {
		if rec.LabelSource != feed.SourceModel {
			continue
		}
		modelLabeled++
		h, ok := w.HostByIP(mustIP(t, rec.IP))
		if !ok {
			continue
		}
		if rec.IsIoT() == h.IsIoT() {
			correct++
		}
	}
	if modelLabeled == 0 {
		t.Fatal("no model-labeled records after retrain")
	}
	if acc := float64(correct) / float64(modelLabeled); acc < 0.7 {
		t.Errorf("model-label accuracy vs ground truth = %.3f over %d records", acc, modelLabeled)
	}
}

func TestFlowEndsUpdateRecords(t *testing.T) {
	l, _ := testLocal(t, 103, 10)
	srv := l.Server()
	ended := 0
	for _, rec := range srv.Historical().Find(nil) {
		if !rec.Active {
			ended++
			if rec.EndedAt == nil {
				t.Errorf("inactive record %s lacks EndedAt", rec.IP)
			}
		}
	}
	if ended == 0 {
		t.Error("no flows ended over the run (Finish should close all)")
	}
	if srv.ActiveCount() != 0 {
		t.Errorf("%d flows still active after Finish", srv.ActiveCount())
	}
}

func TestBenignResearchScanners(t *testing.T) {
	l, w := testLocal(t, 104, 8)
	benign := 0
	for _, rec := range l.Server().Historical().Find(nil) {
		h, ok := w.HostByIP(mustIP(t, rec.IP))
		if !ok {
			continue
		}
		if h.Kind == simnet.KindResearchScanner {
			if !rec.Benign {
				t.Errorf("research scanner %s not marked benign", rec.IP)
			}
			benign++
		} else if rec.Benign {
			t.Errorf("non-research host %s marked benign (rdns %s)", rec.IP, rec.RDNS)
		}
	}
	if benign == 0 {
		t.Skip("no research scanner records this seed")
	}
}

func TestAppearedAtLagsDetection(t *testing.T) {
	l, _ := testLocal(t, 105, 6)
	for _, rec := range l.Server().Historical().Find(nil) {
		lag := rec.AppearedAt.Sub(rec.DetectedAt)
		if lag < 3*time.Hour {
			t.Errorf("record %s appeared %v after detection; collection delay missing", rec.IP, lag)
		}
		if lag > 12*time.Hour {
			t.Errorf("record %s appeared %v after detection; implausibly late", rec.IP, lag)
		}
	}
}

func TestSnapshotAggregation(t *testing.T) {
	l, _ := testLocal(t, 106, 8)
	snap := l.Server().Snapshot()
	if snap.TotalRecords == 0 {
		t.Fatal("empty snapshot")
	}
	if snap.IoTRecords > snap.TotalRecords {
		t.Error("IoT records exceed total")
	}
	if len(snap.TopCountries) == 0 && snap.IoTRecords > 0 {
		t.Error("no country aggregation despite IoT records")
	}
	if len(snap.TopCountries) > 10 || len(snap.TopPorts) > 10 {
		t.Error("top-N trim not applied")
	}
}

func TestWhoisNotifications(t *testing.T) {
	cfg := simnet.DefaultConfig(107)
	cfg.NumInfected = 120
	cfg.NumNonIoT = 10
	cfg.Days = 1
	w := simnet.NewWorld(cfg)

	mailer := &notify.MemoryMailer{}
	lcfg := DefaultLocalConfig()
	lcfg.Server.ScanMod = scanmod.Config{BatchSize: 10, BatchWait: 20 * time.Minute}
	lcfg.Server.Trainer = trainer.Config{SearchIterations: 2, Seed: 107}
	lcfg.Server.Notify = notify.Config{NotifyWhois: true}
	l := NewLocal(lcfg, w, w.Registry(), mailer)
	start := w.Start()
	for h := 0; h < 8; h++ {
		hour := start.Add(time.Duration(h) * time.Hour)
		l.ProcessHour(w.GenerateHour(hour), hour)
	}
	l.Finish(start.Add(8 * time.Hour))

	msgs := mailer.Messages()
	if l.Server().Counters().EmailsSent == 0 {
		t.Skip("no IoT-labeled records with abuse contacts this seed")
	}
	if len(msgs) == 0 {
		t.Fatal("emails counted but none captured")
	}
	for _, m := range msgs {
		if m.To == "" || m.Subject == "" {
			t.Errorf("malformed notification: %+v", m)
		}
	}
}

func mustIP(t *testing.T, s string) packet.IP {
	t.Helper()
	parsed, err := packet.ParseIP(s)
	if err != nil {
		t.Fatalf("bad ip %q: %v", s, err)
	}
	return parsed
}

func TestRestoreModelAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := simnet.DefaultConfig(108)
	cfg.NumInfected = 120
	cfg.NumNonIoT = 25
	cfg.Days = 2
	w := simnet.NewWorld(cfg)

	lcfg := DefaultLocalConfig()
	lcfg.Server.ScanMod = scanmod.Config{BatchSize: 25, BatchWait: 30 * time.Minute}
	lcfg.Server.Trainer = trainer.Config{SearchIterations: 2, Seed: 108, ModelDir: dir, MinExamples: 40}
	l := NewLocal(lcfg, w, w.Registry(), nil)
	start := w.Start()
	for h := 0; h < 30; h++ {
		hour := start.Add(time.Duration(h) * time.Hour)
		l.ProcessHour(w.GenerateHour(hour), hour)
	}
	l.Finish(start.Add(30 * time.Hour))
	if l.Server().Counters().ModelRetrains == 0 {
		t.Skip("no retrain this seed; nothing archived")
	}

	// A fresh server (simulating a restart) restores the archived model
	// and can classify without re-bootstrapping.
	fresh := NewServer(lcfg.Server, w, w.Registry(), nil)
	if err := fresh.RestoreModel(dir); err != nil {
		t.Fatal(err)
	}
	if fresh.LastModel() == nil {
		t.Fatal("restored server has no model")
	}
	// Restoring from an empty archive is a no-op, not an error.
	empty := NewServer(lcfg.Server, w, w.Registry(), nil)
	if err := empty.RestoreModel(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if empty.LastModel() != nil {
		t.Error("empty archive restored a model")
	}
}

func TestTrafficAggregation(t *testing.T) {
	l, _ := testLocal(t, 109, 6)
	hours := l.Server().Traffic()
	if len(hours) == 0 {
		t.Fatal("no traffic hours aggregated")
	}
	var total int64
	for i, h := range hours {
		total += h.Total
		if h.Total < h.TCP {
			t.Errorf("hour %d: TCP exceeds total", i)
		}
		if h.Seconds == 0 || h.PeakPPS == 0 {
			t.Errorf("hour %d: per-second accounting missing: %+v", i, h)
		}
		if len(h.TopPorts) > 10 {
			t.Errorf("hour %d: port map not trimmed (%d entries)", i, len(h.TopPorts))
		}
		if i > 0 && !hours[i-1].Hour.Before(h.Hour) {
			t.Error("hours not sorted")
		}
	}
	// The aggregate must match what the detector processed (reports cover
	// every packet).
	processed := l.Sampler().PacketsProcessed()
	if total < processed*9/10 || total > processed {
		t.Errorf("aggregated %d packets, detector processed %d", total, processed)
	}
}
