package pipeline

import (
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"exiot/internal/annotate"
	"exiot/internal/api"
	"exiot/internal/enrich"
	"exiot/internal/feed"
	"exiot/internal/feedserve"
	"exiot/internal/notify"
	"exiot/internal/organizer"
	"exiot/internal/packet"
	"exiot/internal/recog"
	"exiot/internal/registry"
	"exiot/internal/scanmod"
	"exiot/internal/store"
	"exiot/internal/telemetry"
	"exiot/internal/trace"
	"exiot/internal/trainer"
	"exiot/internal/zmap"
)

// Telemetry handles for the feed stage (see docs/OPERATIONS.md). The
// "feed" health check goes stale when no sampler event reaches the
// server for feedMaxAge — the signal an operator sees when the wire or
// the sampler ahead of it dies.
var (
	metFeedRecords = telemetry.Default().Counter("exiot_feed_records_total",
		"CTI records inserted into the latest + historical databases.")
	metFeedFlowEnds = telemetry.Default().Counter("exiot_feed_flow_ends_total",
		"END_FLOW updates applied to existing feed records.")
	metFeedActive = telemetry.Default().Gauge("exiot_feed_active_records",
		"Live scan flows currently holding an active feed record.")
	metFeedLastRecord = telemetry.Default().Gauge("exiot_feed_last_record_unix",
		"Simulated-clock unix time of the most recent record insert.")
)

// feedMaxAge bounds how long the feed may go without consuming a
// sampler event before /healthz reports it stalled.
const feedMaxAge = 15 * time.Minute

// ServerConfig parameterizes the feed-server half.
type ServerConfig struct {
	ScanMod scanmod.Config
	Trainer trainer.Config
	Notify  notify.Config
	// RetrainEvery is the model refresh period (paper: 24 h).
	RetrainEvery time.Duration
	// HistoricalWindow is the historical database's lapse (paper: two
	// weeks).
	HistoricalWindow time.Duration
	// Workers bounds the back half's concurrency: the ZMap probe pool
	// and the annotate fan-out at scan-batch flush (0 = GOMAXPROCS,
	// 1 = fully serial). The feed is identical at any setting.
	Workers int
}

// DefaultServerConfig returns the paper's operating point.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		ScanMod:          scanmod.Default(),
		Trainer:          trainer.Default(),
		Notify:           notify.Config{NotifyWhois: false},
		RetrainEvery:     24 * time.Hour,
		HistoricalWindow: 14 * 24 * time.Hour,
	}
}

// Counters aggregates server-side lifetime statistics.
type Counters struct {
	RecordsCreated int64
	FlowsEnded     int64
	BannersLabeled int64
	ModelRetrains  int64
	EmailsSent     int64
	Reports        int64
}

// Server is the feed-server half of the pipeline: it consumes sampler
// events and maintains the CTI feed.
type Server struct {
	cfg       ServerConfig
	workers   int
	scanMod   *scanmod.Module
	annotator *annotate.Annotator
	trainer   *trainer.Trainer
	notifier  *notify.Notifier

	// The paper's three databases.
	latest     *store.Collection[feed.Record] // active threat information
	historical *store.Collection[feed.Record] // two-week archive
	active     *store.KV                      // IP → historical ObjectID of the live record

	// traffic holds the hourly aggregation of per-second reports (the
	// report messages the paper's receiver stores in MongoDB).
	traffic *trafficStats

	mu sync.Mutex
	// latestID pairs historical ObjectIDs with their latest-DB twin.
	latestID map[store.ObjectID]store.ObjectID
	// pendingBatches holds organized flows awaiting active-measurement
	// results; pendingEnds holds flow ends that arrived before their
	// record materialized (the scan batch had not flushed yet).
	pendingBatches map[packet.IP]*pendingFlow
	pendingEnds    map[packet.IP]SamplerEvent
	clock          time.Time
	lastRetrain    time.Time
	lastAttempt    time.Time
	counters       Counters
	lastModel      *trainer.TrainedModel
	// onRetrain observes successful retrains (the durability layer logs
	// a marker record). See setRetrainHook in durable.go.
	onRetrain func(m *trainer.TrainedModel, now time.Time)

	liveness *telemetry.Check
}

type pendingFlow struct {
	batch       *organizer.Batch
	availableAt time.Time
	// raw/rawErr carry the classify stage's precomputed feature vector
	// (nil when the event arrived on the serial path).
	raw    []float64
	rawErr error
	// trace is the flow's live trace (nil when untraced); scanEnq stamps
	// when the flow entered the scan-module buffer so the scanmod span
	// can report the batching wait.
	trace   *trace.Flow
	scanEnq time.Time
}

// NewServer assembles the feed-server half. prober answers active
// probes (the simulated Internet); reg backs enrichment; mailer delivers
// notifications (nil disables them).
func NewServer(cfg ServerConfig, prober zmap.Prober, reg *registry.Registry, mailer notify.Mailer) *Server {
	if cfg.RetrainEvery <= 0 {
		cfg.RetrainEvery = 24 * time.Hour
	}
	if cfg.HistoricalWindow <= 0 {
		cfg.HistoricalWindow = 14 * 24 * time.Hour
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scanner := zmap.NewScanner(prober)
	scanner.Workers = workers
	s := &Server{
		cfg:            cfg,
		workers:        workers,
		scanMod:        scanmod.New(cfg.ScanMod, scanner, recog.NewDB()),
		annotator:      annotate.New(enrich.New(reg)),
		trainer:        trainer.New(cfg.Trainer),
		latest:         store.NewCollection[feed.Record](),
		historical:     store.NewCollection[feed.Record](),
		active:         store.NewKV(),
		latestID:       make(map[store.ObjectID]store.ObjectID),
		pendingBatches: make(map[packet.IP]*pendingFlow),
		pendingEnds:    make(map[packet.IP]SamplerEvent),
		traffic:        newTrafficStats(),
		liveness:       telemetry.DefaultHealth().Register("feed", feedMaxAge),
	}
	if mailer != nil {
		s.notifier = notify.New(cfg.Notify, mailer)
	}
	return s
}

// Notifier exposes the e-mail notifier (nil when disabled).
func (s *Server) Notifier() *notify.Notifier { return s.notifier }

// Workers returns the effective back-half worker count (after the
// GOMAXPROCS default is resolved).
func (s *Server) Workers() int { return s.workers }

// HandleEvent consumes one sampler event. availableAt is the simulated
// wall-clock instant the event reached the feed server (hour publish +
// collection + processing delays).
func (s *Server) HandleEvent(e SamplerEvent, availableAt time.Time) {
	s.handlePrepared(e, nil, nil, availableAt)
}

// handlePrepared is HandleEvent with the classify stage's precomputed
// feature vector attached (nil raw and rawErr on the serial path, where
// the vector is computed at flush time instead).
func (s *Server) handlePrepared(e SamplerEvent, raw []float64, rawErr error, availableAt time.Time) {
	s.liveness.Beat()
	s.mu.Lock()
	if availableAt.After(s.clock) {
		s.clock = availableAt
	}
	s.mu.Unlock()

	switch e.Kind {
	case SamplerBatch:
		s.handleBatch(e.Batch, raw, rawErr, availableAt, e.Trace)
	case SamplerFlowEnd:
		s.handleFlowEnd(e, availableAt)
	case SamplerReport:
		s.traffic.add(e.Report)
		s.mu.Lock()
		s.counters.Reports++
		s.mu.Unlock()
	}
	s.Tick(availableAt)
}

func (s *Server) handleBatch(b *organizer.Batch, raw []float64, rawErr error, availableAt time.Time, flow *trace.Flow) {
	pf := &pendingFlow{batch: b, availableAt: availableAt, raw: raw, rawErr: rawErr, trace: flow}
	if flow != nil {
		pf.scanEnq = time.Now()
	}
	s.mu.Lock()
	s.pendingBatches[b.IP] = pf
	s.mu.Unlock()
	// The paper probes scanners immediately upon detection; the scan
	// module batches up to BatchSize/BatchWait before the sweep runs.
	if tagged := s.scanMod.Enqueue(b.IP, availableAt); tagged != nil {
		s.resolveTagged(tagged, availableAt)
	}
}

// resolveTagged joins active-measurement results with their organized
// flows and emits CTI records. Annotation (feature extraction, forest
// inference, enrichment) fans out across the configured workers — every
// per-record computation is pure and the model is fixed for the whole
// flush — while the stateful tail (trainer window, store inserts,
// counters, notifications) runs serially in batch order, so the emitted
// feed is identical to the fully serial path.
func (s *Server) resolveTagged(tagged []scanmod.Tagged, now time.Time) {
	span := telemetry.Default().StartSpan("classify")
	defer span.End()

	// Join scan results with their organized flows, preserving order.
	s.mu.Lock()
	flows := make([]*pendingFlow, len(tagged))
	for i := range tagged {
		flows[i] = s.pendingBatches[tagged[i].IP]
		delete(s.pendingBatches, tagged[i].IP)
	}
	s.mu.Unlock()

	// Traced flows get their scan-module spans here: the batching wait
	// (enqueue → flush start) and the probe sweep window itself.
	fw := s.scanMod.LastFlush()
	portsPerHost := s.scanMod.PortsPerHost()

	jobs := make([]annotate.Job, 0, len(tagged))
	for i := range tagged {
		pf := flows[i]
		if pf == nil {
			continue // flow was dropped by the organizer
		}
		if pf.trace != nil {
			pf.trace.SpanAt("scanmod", pf.scanEnq, fw.Start, fw.Start,
				trace.Int("batch_hosts", fw.Hosts))
			pf.trace.SpanAt("probe", fw.Start, fw.Start, fw.End,
				trace.Int("ports_probed", portsPerHost),
				trace.Int("open_ports", len(tagged[i].Result.OpenPorts)),
				trace.Int("banners", len(tagged[i].Result.Banners)))
		}
		jobs = append(jobs, annotate.Job{
			Batch:       pf.batch,
			Scan:        &tagged[i].Result,
			Match:       tagged[i].Match,
			Raw:         pf.raw,
			RawErr:      pf.rawErr,
			PortsProbed: portsPerHost,
			Trace:       pf.trace,
		})
	}
	recs, errs := s.annotator.AnnotateBatch(jobs, s.workers)
	for k := range jobs {
		if errs[k] != nil {
			// Malformed flow; nothing to record. Close out its trace so
			// the failure is still visible in the store.
			if f := jobs[k].Trace; f != nil {
				f.Span("emit", time.Now(), time.Now(), trace.Str("outcome", "rejected"))
				trace.Default().Finish(f)
			}
			continue
		}
		s.finishRecord(jobs[k].Batch, recs[k], jobs[k].Raw, jobs[k].Match, now, jobs[k].Trace)
	}
}

// finishRecord applies one annotated record's stateful tail. Must be
// called in batch order from a single goroutine.
func (s *Server) finishRecord(b *organizer.Batch, rec feed.Record, raw []float64, match *recog.Match, appearedAt time.Time, flow *trace.Flow) {
	var emitStart time.Time
	if flow != nil {
		emitStart = time.Now()
	}
	rec.AppearedAt = appearedAt

	// Banner-labeled flows feed the update-classifier window.
	if match != nil {
		label := 0
		if match.IoT {
			label = 1
		}
		s.trainer.Add(trainer.Example{
			Time:  appearedAt,
			IP:    rec.IP,
			Raw:   raw,
			Label: label,
		})
		s.mu.Lock()
		s.counters.BannersLabeled++
		s.mu.Unlock()
	}

	histID := s.historical.Insert(appearedAt, rec)
	latestID := s.latest.Insert(appearedAt, rec)
	s.mu.Lock()
	s.latestID[histID] = latestID
	s.counters.RecordsCreated++
	s.mu.Unlock()
	s.active.Set(activeKey(rec.IP), string(histID))
	metFeedRecords.Inc()
	metFeedLastRecord.Set(float64(appearedAt.Unix()))
	metFeedActive.Set(float64(s.active.Len()))

	if s.notifier != nil {
		if sent := s.notifier.Process(&rec, appearedAt); sent > 0 {
			s.mu.Lock()
			s.counters.EmailsSent += int64(sent)
			s.mu.Unlock()
		}
	}

	if flow != nil {
		flow.Span("emit", emitStart, emitStart,
			trace.Str("label", rec.Label),
			trace.Str("label_source", rec.LabelSource))
		trace.Default().Finish(flow)
	}

	// A flow end may have raced ahead of the scan batch; apply it now.
	s.mu.Lock()
	end, hasEnd := s.pendingEnds[b.IP]
	delete(s.pendingEnds, b.IP)
	s.mu.Unlock()
	if hasEnd {
		s.handleFlowEnd(end, appearedAt)
	}
}

func (s *Server) handleFlowEnd(e SamplerEvent, availableAt time.Time) {
	ipStr := e.IP.String()
	idStr, ok := s.active.Get(activeKey(ipStr))
	if !ok {
		// The record may still be waiting on the scan batch; park the
		// end until emitRecord replays it. Ends for flows the organizer
		// dropped are parked too, but they are swept with the map. A
		// parked event keeps its live trace and finishes on replay.
		s.mu.Lock()
		parked := false
		if _, waiting := s.pendingBatches[e.IP]; waiting || s.scanModHasPending() {
			s.pendingEnds[e.IP] = e
			parked = true
		}
		s.mu.Unlock()
		if !parked {
			s.finishEndTrace(e, "no_record")
		}
		return
	}
	histID := store.ObjectID(idStr)
	ended := e.LastSeen
	update := func(rec *feed.Record) {
		rec.Active = false
		rec.EndedAt = &ended
		if e.LastSeen.After(rec.LastSeen) {
			rec.LastSeen = e.LastSeen
		}
	}
	// The ObjectID lookup is the whole point of the Redis cache: O(1)
	// status updates instead of scanning for the latest record of an IP.
	s.historical.Update(histID, update)
	s.mu.Lock()
	latestID, hasTwin := s.latestID[histID]
	delete(s.latestID, histID)
	s.counters.FlowsEnded++
	s.mu.Unlock()
	if hasTwin {
		s.latest.Update(latestID, update)
		s.latest.Delete(latestID)
	}
	s.active.Del(activeKey(ipStr))
	metFeedFlowEnds.Inc()
	metFeedActive.Set(float64(s.active.Len()))
	s.finishEndTrace(e, "applied")
	_ = availableAt
}

// finishEndTrace closes out a flow-end event's trace (no-op when
// untraced) with the update's outcome.
func (s *Server) finishEndTrace(e SamplerEvent, outcome string) {
	if e.Trace == nil {
		return
	}
	now := time.Now()
	e.Trace.Span("emit", now, now, trace.Str("outcome", outcome))
	trace.Default().Finish(e.Trace)
}

// Tick runs time-driven housekeeping: scan-batch age flush, the daily
// retrain, and historical expiry. Call with the advancing simulated
// clock.
func (s *Server) Tick(now time.Time) {
	// Age-based scan flush happens inside Enqueue; here we force a flush
	// when the batch has been waiting past the trigger with no arrivals.
	s.maybeRetrain(now)
	s.historical.Expire(now.Add(-s.cfg.HistoricalWindow))
}

// FlushScans forces the scan module's pending batch through (end of a
// simulation run or graceful shutdown).
func (s *Server) FlushScans(now time.Time) {
	if tagged := s.scanMod.Flush(); tagged != nil {
		s.resolveTagged(tagged, now)
	}
}

// installModel publishes a trained model to the annotate module. The
// pointer forest is flattened into a contiguous inference arena first:
// scores are bit-identical, but the hot path walks one cache-friendly
// node slice and gains the batch-prediction entry point.
func (s *Server) installModel(m *trainer.TrainedModel) {
	s.annotator.SetModel(&annotate.Model{Classifier: m.Forest.Flatten(), Normalizer: m.Normalizer})
}

func (s *Server) maybeRetrain(now time.Time) {
	s.mu.Lock()
	due := s.lastRetrain.IsZero() || now.Sub(s.lastRetrain) >= s.cfg.RetrainEvery
	// During bootstrap a retrain may fail for lack of labeled data; the
	// 24 h slot is only consumed by a successful train, with a short
	// cooldown between attempts so ticks stay cheap.
	attempt := due && (s.lastAttempt.IsZero() || now.Sub(s.lastAttempt) >= 30*time.Minute)
	if attempt {
		s.lastAttempt = now
	}
	s.mu.Unlock()
	if !attempt {
		return
	}
	m, err := s.trainer.Retrain(now)
	if err != nil {
		return // not enough labeled data yet (bootstrap)
	}
	s.installModel(m)
	s.mu.Lock()
	s.lastModel = m
	s.lastRetrain = now
	s.counters.ModelRetrains++
	hook := s.onRetrain
	s.mu.Unlock()
	if hook != nil {
		hook(m, now)
	}
}

// RestoreModel loads the most recently archived model from dir and
// installs it, letting a restarted feed server classify immediately
// instead of re-bootstrapping. A missing archive is not an error.
func (s *Server) RestoreModel(dir string) error {
	m, err := trainer.LoadLatest(dir)
	if err != nil {
		return err
	}
	if m == nil {
		return nil
	}
	s.installModel(m)
	s.mu.Lock()
	s.lastModel = m
	s.lastRetrain = m.TrainedAt
	s.mu.Unlock()
	return nil
}

// ForceRetrain runs a training cycle immediately (experiments).
func (s *Server) ForceRetrain(now time.Time) error {
	m, err := s.trainer.Retrain(now)
	if err != nil {
		return err
	}
	s.installModel(m)
	s.mu.Lock()
	s.lastModel = m
	s.counters.ModelRetrains++
	s.lastRetrain = now
	hook := s.onRetrain
	s.mu.Unlock()
	if hook != nil {
		hook(m, now)
	}
	return nil
}

// LastModel returns the most recent trained model (nil before first
// retrain).
func (s *Server) LastModel() *trainer.TrainedModel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastModel
}

// Trainer exposes the update-classifier module (experiments).
func (s *Server) Trainer() *trainer.Trainer { return s.trainer }

// Counters returns lifetime statistics.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// UnknownBanners exposes the scan module's unknown-banner dump.
func (s *Server) UnknownBanners() []string { return s.scanMod.UnknownBanners() }

// scanModHasPending reports whether the scan module still buffers
// un-probed scanners. Caller holds s.mu (the scan module itself is only
// driven from the event path).
func (s *Server) scanModHasPending() bool { return s.scanMod.Pending() > 0 }

func activeKey(ip string) string { return "active:" + ip }

// --- api.Source implementation ---

var _ api.Source = (*Server)(nil)

// Records queries the historical database.
func (s *Server) Records(q api.Query) []feed.Record {
	out := s.historical.Find(func(r feed.Record) bool { return q.Matches(&r) })
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:] // most recent entries win
	}
	return out
}

// RecordByIP returns the most recent record for ip, preferring the live
// one.
func (s *Server) RecordByIP(ip string) (feed.Record, bool) {
	if idStr, ok := s.active.Get(activeKey(ip)); ok {
		if rec, ok := s.historical.Get(store.ObjectID(idStr)); ok {
			return rec, true
		}
	}
	matches := s.historical.Find(func(r feed.Record) bool { return r.IP == ip })
	if len(matches) == 0 {
		return feed.Record{}, false
	}
	return matches[len(matches)-1], true
}

var _ api.WhySource = (*Server)(nil)

// Why joins a record with its retained trace detail (api.WhySource):
// the record's provenance carries the deterministic trace ID, and the
// trace store may still hold the per-stage timing lineage behind it.
func (s *Server) Why(ip string) (api.WhyReport, bool) {
	rec, ok := s.RecordByIP(ip)
	if !ok {
		return api.WhyReport{}, false
	}
	rep := api.WhyReport{Record: rec}
	if rec.Provenance != nil && rec.Provenance.TraceID != "" {
		if id, err := trace.ParseID(rec.Provenance.TraceID); err == nil {
			if d, ok := trace.Default().Store().Get(id); ok {
				rep.Trace = d
			}
		}
	}
	return rep, true
}

// Snapshot aggregates the front-end's high-level view.
func (s *Server) Snapshot() api.Snapshot {
	s.mu.Lock()
	now := s.clock
	s.mu.Unlock()
	snap := api.Snapshot{
		GeneratedAt:  now,
		TopCountries: map[string]int{},
		TopPorts:     map[string]int{},
		TopVendors:   map[string]int{},
	}
	var earliest, latest time.Time
	for _, rec := range s.historical.Find(nil) {
		snap.TotalRecords++
		if rec.Active {
			snap.ActiveRecords++
		}
		if rec.Benign {
			snap.BenignRecords++
		}
		if rec.IsIoT() {
			snap.IoTRecords++
			snap.TopCountries[rec.CountryCode]++
			if rec.Vendor != "" {
				snap.TopVendors[rec.Vendor]++
			}
			for _, port := range rec.TopPorts(3) {
				snap.TopPorts[strconv.Itoa(int(port))]++
			}
		}
		if earliest.IsZero() || rec.AppearedAt.Before(earliest) {
			earliest = rec.AppearedAt
		}
		if rec.AppearedAt.After(latest) {
			latest = rec.AppearedAt
		}
	}
	trimTop(snap.TopCountries, 10)
	trimTop(snap.TopPorts, 10)
	trimTop(snap.TopVendors, 10)
	if span := latest.Sub(earliest).Hours(); span > 0 {
		snap.RecordsPerHour = float64(snap.TotalRecords) / span
	}
	return snap
}

// trimTop keeps the n largest entries of a counter map.
func trimTop(m map[string]int, n int) {
	if len(m) <= n {
		return
	}
	type kv struct {
		k string
		v int
	}
	items := make([]kv, 0, len(m))
	for k, v := range m {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].k < items[j].k
	})
	for _, it := range items[n:] {
		delete(m, it.k)
	}
}

// Traffic returns the hourly telescope traffic statistics, each hour's
// port tally trimmed to its top 10 entries.
func (s *Server) Traffic() []TrafficHour {
	return s.traffic.snapshot(10)
}

// Historical exposes the two-week archive (experiments and dashboards).
func (s *Server) Historical() *store.Collection[feed.Record] { return s.historical }

// NewFeedCache builds the snapshot-backed feed distribution cache over
// the server's historical database. The cache hooks the collection's
// mutation stream, so every record the pipeline writes marks it dirty;
// call Start on the result to enable background rebuilds and hand it to
// api.Server.SetFeedCache to switch the read path over.
func (s *Server) NewFeedCache(cfg feedserve.Config) *feedserve.Cache {
	return feedserve.New(s.historical, cfg)
}

// ActiveCount returns the number of live scan flows with records.
func (s *Server) ActiveCount() int { return s.active.Len() }
