package pipeline

import (
	"encoding/json"
	"fmt"
	"time"

	"exiot/internal/organizer"
	"exiot/internal/packet"
	"exiot/internal/trace"
	"exiot/internal/trw"
	"exiot/internal/wire"
)

// This file is the bridge between the sampler and the wire transport: it
// encodes sampler events into frames the flowsampler binary ships to the
// exiotd feed server, and decodes them on the other side.

// flowEndMsg is the wire payload of a flow-end event. TraceID is
// omitted when zero, so frames from senders predating tracing still
// decode.
type flowEndMsg struct {
	IP         string    `json:"ip"`
	FirstSeen  time.Time `json:"first_seen"`
	DetectedAt time.Time `json:"detected_at"`
	LastSeen   time.Time `json:"last_seen"`
	TraceID    trace.ID  `json:"trace_id,omitempty"`
}

// EncodeEvent serializes a sampler event for the wire.
func EncodeEvent(e SamplerEvent) (wire.Kind, []byte, error) {
	switch e.Kind {
	case SamplerBatch:
		data, err := organizer.Encode(e.Batch)
		if err != nil {
			return 0, nil, err
		}
		return wire.KindSample, data, nil
	case SamplerFlowEnd:
		data, err := json.Marshal(flowEndMsg{
			IP:         e.IP.String(),
			FirstSeen:  e.FirstSeen,
			DetectedAt: e.DetectedAt,
			LastSeen:   e.LastSeen,
			TraceID:    e.TraceID,
		})
		if err != nil {
			return 0, nil, fmt.Errorf("encode flow end: %w", err)
		}
		return wire.KindFlowEnd, data, nil
	case SamplerReport:
		data, err := json.Marshal(e.Report)
		if err != nil {
			return 0, nil, fmt.Errorf("encode report: %w", err)
		}
		return wire.KindReport, data, nil
	default:
		return 0, nil, fmt.Errorf("encode event: unknown kind %d", e.Kind)
	}
}

// DecodeEvent deserializes a wire frame back into a sampler event,
// dispatching on the frame's protocol version: v2 frames carry the
// compact binary payloads (binenc.go), everything else the legacy JSON.
// The payload is fully copied out, so the frame's (pooled) buffer may be
// reused as soon as DecodeEvent returns.
func DecodeEvent(f wire.Frame) (SamplerEvent, error) {
	if f.Version == wire.Version2 {
		return decodeEventV2(f)
	}
	switch f.Kind {
	case wire.KindSample:
		b, err := organizer.Decode(f.Payload)
		if err != nil {
			return SamplerEvent{}, err
		}
		return SamplerEvent{Kind: SamplerBatch, Batch: &b, TraceID: b.TraceID}, nil
	case wire.KindFlowEnd:
		var msg flowEndMsg
		if err := json.Unmarshal(f.Payload, &msg); err != nil {
			return SamplerEvent{}, fmt.Errorf("decode flow end: %w", err)
		}
		ip, err := packet.ParseIP(msg.IP)
		if err != nil {
			return SamplerEvent{}, fmt.Errorf("decode flow end: %w", err)
		}
		return SamplerEvent{
			Kind:       SamplerFlowEnd,
			IP:         ip,
			FirstSeen:  msg.FirstSeen,
			DetectedAt: msg.DetectedAt,
			LastSeen:   msg.LastSeen,
			TraceID:    msg.TraceID,
		}, nil
	case wire.KindReport:
		var rep trw.SecondReport
		if err := json.Unmarshal(f.Payload, &rep); err != nil {
			return SamplerEvent{}, fmt.Errorf("decode report: %w", err)
		}
		return SamplerEvent{Kind: SamplerReport, Report: &rep}, nil
	default:
		return SamplerEvent{}, fmt.Errorf("decode event: unknown frame kind %d", f.Kind)
	}
}

// TraceIncoming starts a trace for a decoded wire event on the
// receiving side, recording the transport hop as a "wire" span
// (receivedAt = the instant the frame arrived, before decoding). The
// sampling decision is a pure function of the wire-carried trace ID, so
// sender and receiver select the same events. No-op when tracing is off
// or the event carries no ID.
func TraceIncoming(e *SamplerEvent, receivedAt time.Time) {
	if e.TraceID == 0 || !trace.Default().Enabled() {
		return
	}
	f := trace.Default().Sample(e.TraceID, e.traceIP(), e.traceKind())
	if f == nil {
		return
	}
	f.Span("wire", receivedAt, receivedAt)
	e.Trace = f
}

// traceIP renders the event's source address for trace metadata.
func (e *SamplerEvent) traceIP() string {
	if e.Kind == SamplerBatch && e.Batch != nil {
		return e.Batch.IPString
	}
	return e.IP.String()
}

// traceKind renders the event kind for trace metadata.
func (e *SamplerEvent) traceKind() string {
	if e.Kind == SamplerBatch {
		return "batch"
	}
	return "flow_end"
}
