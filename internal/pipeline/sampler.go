// Package pipeline wires eX-IoT's modules into the two halves of Fig. 2:
// the Sampler (the CAIDA-side flow detection & sampling binary) and the
// Server (the eX-IoT feed server: scan module, annotate module, update
// classifier, the three databases, notifications, and the API source).
// A Local pipeline runs both halves in one process with simulated
// collection delays, which is how the experiments and examples drive it.
package pipeline

import (
	"math"
	"runtime"
	"slices"
	"time"

	"exiot/internal/organizer"
	"exiot/internal/packet"
	"exiot/internal/telemetry"
	"exiot/internal/trace"
	"exiot/internal/trw"
)

// Telemetry handles for the sampler half (see docs/OPERATIONS.md).
var (
	metSamplerPackets = telemetry.Default().Counter("exiot_sampler_packets_total",
		"Telescope packets fed through flow detection.")
	metSamplerHours = telemetry.Default().Counter("exiot_sampler_hours_total",
		"Capture hours processed by the sampler.")
	metSamplerEvents = telemetry.Default().CounterVec("exiot_sampler_events_total",
		"Sampler events emitted downstream, by kind.", "kind")
	metOrganizerFlows = telemetry.Default().CounterVec("exiot_organizer_flows_total",
		"Sampled flows at the packet organizer, by outcome.", "result")
)

// ingestMaxAge is how long the ingest health check tolerates silence
// before /healthz reports the sampler stalled. Real deployments see an
// hour of captures every hour; 15 wall-clock minutes of no progress on a
// follower means the poll loop or the detector is stuck.
const ingestMaxAge = 15 * time.Minute

// SamplerEventKind discriminates sampler outputs.
type SamplerEventKind int

// Sampler event kinds.
const (
	// SamplerBatch carries an organized sampled flow.
	SamplerBatch SamplerEventKind = iota + 1
	// SamplerFlowEnd signals the end of a scan flow.
	SamplerFlowEnd
	// SamplerReport carries a per-second packet-level report.
	SamplerReport
)

// SamplerEvent is one output of the CAIDA-side half.
type SamplerEvent struct {
	Kind SamplerEventKind

	// Batch is set for SamplerBatch events.
	Batch *organizer.Batch

	// Flow-end fields.
	IP         packet.IP
	FirstSeen  time.Time
	DetectedAt time.Time
	LastSeen   time.Time

	// Report is set for SamplerReport events.
	Report *trw.SecondReport

	// TraceID is the deterministic per-event trace identifier (zero for
	// reports). Batch events additionally carry it in the batch header so
	// it survives the wire and the WAL.
	TraceID trace.ID

	// Trace is the live trace for sampled events; nil when tracing is
	// off or the event was not selected. Never serialized.
	Trace *trace.Flow
}

// Sampler is the CAIDA-side half: TRW detection plus the packet
// organizer, consuming hourly packet batches. With one worker it runs the
// serial detector on the caller's goroutine; with more it runs the
// sharded detector, whose merged event stream is identical to the serial
// one.
//
// Events buffer per hour and emit at the ProcessHour/Flush barrier in
// *canonical* order — a total order derived purely from event content
// (see canonCompare), never from processing position. That makes the
// emitted stream a pure function of the hour's packet set: serial,
// sharded-in-process, and an N-node cluster merge (internal/pipeline
// Aggregator) all deliver byte-identical hours. Emission stays on the
// caller's goroutine, so the organizer and everything downstream remain
// single-threaded.
type Sampler struct {
	detector *trw.Detector        // workers == 1
	sharded  *trw.ShardedDetector // workers > 1
	workers  int
	org      *organizer.Organizer
	emit     func(SamplerEvent)

	hoursProcessed int
	packetsTotal   int64

	// pending buffers the current hour's events until the barrier, where
	// they sort into canonical order and emit.
	pending []SamplerEvent

	// liveness is the ingest health check beaten on every processed hour.
	liveness *telemetry.Check

	// Cached event-kind counter series (hot path).
	evBatch, evFlowEnd, evReport *telemetry.Counter
	accepted, dropped            *telemetry.Counter
}

// NewSampler builds the CAIDA-side half on the serial (single-worker)
// path. Events are delivered to emit in processing order.
func NewSampler(trwCfg trw.Config, minSamples int, emit func(SamplerEvent)) *Sampler {
	return NewSamplerWorkers(trwCfg, minSamples, 1, emit)
}

// NewSamplerWorkers builds the CAIDA-side half with an explicit detection
// worker count: 0 selects GOMAXPROCS, 1 the exact legacy serial path, >1
// a sharded detector with that many shards.
func NewSamplerWorkers(trwCfg trw.Config, minSamples, workers int, emit func(SamplerEvent)) *Sampler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Sampler{
		workers:   workers,
		org:       organizer.New(),
		emit:      emit,
		liveness:  telemetry.DefaultHealth().Register("ingest", ingestMaxAge),
		evBatch:   metSamplerEvents.With("batch"),
		evFlowEnd: metSamplerEvents.With("flow_end"),
		evReport:  metSamplerEvents.With("report"),
		accepted:  metOrganizerFlows.With("accepted"),
		dropped:   metOrganizerFlows.With("dropped"),
	}
	if minSamples > 0 {
		s.org.MinSamples = minSamples
	}
	if workers == 1 {
		s.detector = trw.NewDetector(trwCfg, s.onDetectorEvent)
	} else {
		s.sharded = trw.NewShardedDetector(trwCfg, workers, s.onDetectorEvent)
	}
	return s
}

// Workers returns the detection worker count (1 = serial).
func (s *Sampler) Workers() int { return s.workers }

func (s *Sampler) onDetectorEvent(e trw.Event) {
	switch e.Kind {
	case trw.EventSample:
		var t0 time.Time
		traceOn := trace.Default().Enabled()
		if traceOn {
			t0 = time.Now()
		}
		if b, ok := s.org.Organize(e); ok {
			s.accepted.Inc()
			s.evBatch.Inc()
			b.TraceID = trace.EventID(b.IP, uint8(SamplerBatch), b.FirstSeen, b.DetectedAt)
			ev := SamplerEvent{Kind: SamplerBatch, Batch: &b, TraceID: b.TraceID}
			if traceOn {
				if f := trace.Default().Sample(b.TraceID, b.IPString, "batch"); f != nil {
					f.Span("sampler", t0, t0,
						trace.Int("sample_size", len(b.Sample)),
						trace.Str("trigger_hour", b.DetectedAt.Truncate(time.Hour).Format(time.RFC3339)),
						trace.Float("detect_lag_s", b.DetectedAt.Sub(b.FirstSeen).Seconds()))
					ev.Trace = f
				}
			}
			s.pending = append(s.pending, ev)
		} else {
			s.dropped.Inc()
		}
		// The organizer copied (or rejected) the packets; hand the
		// detector's sample buffer back for the next detection.
		trw.RecycleSample(e.Sample)
	case trw.EventFlowEnd:
		s.evFlowEnd.Inc()
		ev := SamplerEvent{
			Kind:       SamplerFlowEnd,
			IP:         e.IP,
			FirstSeen:  e.FirstSeen,
			DetectedAt: e.DetectedAt,
			LastSeen:   e.LastSeen,
			TraceID:    trace.EventID(e.IP, uint8(SamplerFlowEnd), e.DetectedAt, e.LastSeen),
		}
		if trace.Default().Enabled() {
			if f := trace.Default().Sample(ev.TraceID, e.IP.String(), "flow_end"); f != nil {
				now := time.Now()
				f.SpanAt("sampler", now, now, now)
				ev.Trace = f
			}
		}
		s.pending = append(s.pending, ev)
	case trw.EventSecondReport:
		s.evReport.Inc()
		s.pending = append(s.pending, SamplerEvent{Kind: SamplerReport, Report: e.Report})
	}
}

// canonKey projects a sampler event onto its canonical emission instant:
// the nanosecond at which the serial detector's clock makes the event
// due. A second's report is due when the clock passes the second's end; a
// sampled batch is due at its last (latest-stamped) sample packet; a
// flow-end is due at the hourly sweep, after everything else. Only event
// content feeds the key.
func canonKey(e *SamplerEvent) int64 {
	switch e.Kind {
	case SamplerReport:
		return e.Report.Second.Add(time.Second).UnixNano()
	case SamplerBatch:
		if n := len(e.Batch.Sample); n > 0 {
			return e.Batch.Sample[n-1].Timestamp.UnixNano()
		}
		return e.Batch.DetectedAt.UnixNano()
	default: // SamplerFlowEnd
		return math.MaxInt64
	}
}

// canonCompare is the canonical total order on one hour's events:
// (due instant, kind, source IP, first-seen, detected-at). The kind rank
// puts a second's report ahead of a batch due at the same instant —
// the report for second S-1 flushes before the packet at S processes —
// and flow-ends after everything. Two events equal under this order are
// identical, so the sort is a total order over any hour the telescope
// can produce, regardless of how the source space was partitioned.
func canonCompare(a, b SamplerEvent) int {
	if c := cmpInt64(canonKey(&a), canonKey(&b)); c != 0 {
		return c
	}
	if c := int(a.Kind) - int(b.Kind); c != 0 {
		return c
	}
	aip, bip := a.IP, b.IP
	if a.Kind == SamplerBatch {
		aip, bip = a.Batch.IP, b.Batch.IP
	}
	if c := cmpInt64(int64(uint32(aip)), int64(uint32(bip))); c != 0 {
		return c
	}
	af, bf := a.FirstSeen, b.FirstSeen
	ad, bd := a.DetectedAt, b.DetectedAt
	if a.Kind == SamplerBatch {
		af, ad = a.Batch.FirstSeen, a.Batch.DetectedAt
		bf, bd = b.Batch.FirstSeen, b.Batch.DetectedAt
	}
	if c := cmpInt64(af.UnixNano(), bf.UnixNano()); c != 0 {
		return c
	}
	return cmpInt64(ad.UnixNano(), bd.UnixNano())
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// flushPending sorts the hour's buffered events into canonical order and
// emits them downstream.
func (s *Sampler) flushPending() {
	slices.SortFunc(s.pending, canonCompare)
	for i := range s.pending {
		s.emit(s.pending[i])
		s.pending[i] = SamplerEvent{} // release batch/sample references
	}
	s.pending = s.pending[:0]
}

// ProcessHour consumes one hour of telescope packets (sorted by time) and
// then runs the detector's hourly sweep, exactly like the paper's loop
// over newly published pcap hours.
func (s *Sampler) ProcessHour(pkts []packet.Packet, hourEnd time.Time) {
	span := telemetry.Default().StartSpan("detect")
	defer span.End()
	defer s.liveness.Beat()
	if s.sharded != nil {
		s.sharded.ProcessBatch(pkts)
		s.sharded.EndHour(hourEnd)
	} else {
		for i := range pkts {
			s.detector.Process(&pkts[i])
		}
		s.detector.EndHour(hourEnd)
	}
	s.flushPending()
	s.hoursProcessed++
	s.packetsTotal += int64(len(pkts))
	metSamplerPackets.Add(int64(len(pkts)))
	metSamplerHours.Inc()
}

// Flush ends all live flows (end of a simulation run). On the sharded
// path it also stops the shard goroutines: the sampler accepts no further
// hours after Flush, but stats remain readable.
func (s *Sampler) Flush(now time.Time) {
	if s.sharded != nil {
		s.sharded.Flush(now)
		s.flushPending()
		s.sharded.Close()
		return
	}
	s.detector.Flush(now)
	s.flushPending()
}

// Close stops the shard goroutines without flushing (abandoning a run
// early). Idempotent; a no-op on the serial path or after Flush.
func (s *Sampler) Close() {
	if s.sharded != nil {
		s.sharded.Close()
	}
}

// DetectorStats exposes the underlying detector counters.
func (s *Sampler) DetectorStats() trw.Stats {
	if s.sharded != nil {
		return s.sharded.Stats()
	}
	return s.detector.Stats()
}

// OrganizerStats exposes (accepted, dropped) counters.
func (s *Sampler) OrganizerStats() (accepted, dropped int64) { return s.org.Stats() }

// PacketsProcessed returns the lifetime packet count.
func (s *Sampler) PacketsProcessed() int64 { return s.packetsTotal }
