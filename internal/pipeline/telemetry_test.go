package pipeline

import (
	"testing"

	"exiot/internal/telemetry"
)

// counter returns the live handle for an already-registered counter
// family (registration is idempotent; help is not compared).
func counter(name string) *telemetry.Counter {
	return telemetry.Default().Counter(name, "")
}

// TestTelemetryMatchesDetectorStats cross-checks the metrics registry
// against the pipeline's own lifetime counters: the packets the sampler
// counted into exiot_sampler_packets_total must be exactly the packets
// the detector reports processing, and the feed-insert counter must
// match the server's RecordsCreated. Catches instrumentation placed on
// the wrong side of a branch (counting dropped work, or missing a path).
func TestTelemetryMatchesDetectorStats(t *testing.T) {
	packetsBefore := counter("exiot_sampler_packets_total").Value()
	hoursBefore := counter("exiot_sampler_hours_total").Value()
	recordsBefore := counter("exiot_feed_records_total").Value()
	endsBefore := counter("exiot_feed_flow_ends_total").Value()

	l, _ := testLocal(t, 104, 6)

	st := l.Sampler().DetectorStats()
	if got := counter("exiot_sampler_packets_total").Value() - packetsBefore; got != st.Processed {
		t.Errorf("exiot_sampler_packets_total advanced by %d, detector processed %d", got, st.Processed)
	}
	if got := counter("exiot_sampler_hours_total").Value() - hoursBefore; got != 6 {
		t.Errorf("exiot_sampler_hours_total advanced by %d, want 6", got)
	}
	c := l.Server().Counters()
	if got := counter("exiot_feed_records_total").Value() - recordsBefore; got != c.RecordsCreated {
		t.Errorf("exiot_feed_records_total advanced by %d, server created %d", got, c.RecordsCreated)
	}
	if got := counter("exiot_feed_flow_ends_total").Value() - endsBefore; got != c.FlowsEnded {
		t.Errorf("exiot_feed_flow_ends_total advanced by %d, server ended %d", got, c.FlowsEnded)
	}
	if c.RecordsCreated == 0 {
		t.Fatal("run produced no records; the telemetry deltas above are vacuous")
	}
}
