package pipeline

import (
	"runtime"
	"sync"
	"time"

	"exiot/internal/features"
	"exiot/internal/telemetry"
	"exiot/internal/trace"
)

// Telemetry handles for the classify stage's worker pool (see
// docs/OPERATIONS.md). Queue depth counts events accepted but not yet
// picked up by a worker; in-flight counts events a worker is currently
// pre-processing; reorder-waiting counts completed events parked in the
// reorder buffer because an earlier sequence number is still in flight —
// a persistently high value means one slow event is stalling emission.
var (
	metClassifyQueueDepth = telemetry.Default().Gauge("exiot_classify_queue_depth",
		"Sampler events queued for the classify worker pool.")
	metClassifyInflight = telemetry.Default().Gauge("exiot_classify_inflight",
		"Sampler events currently being pre-processed by classify workers.")
	metClassifyReorderWaiting = telemetry.Default().Gauge("exiot_classify_reorder_waiting",
		"Completed events held in the reorder buffer awaiting an earlier sequence number.")
)

// classifyJob is one sampler event moving through the stage.
type classifyJob struct {
	seq         uint64
	e           SamplerEvent
	availableAt time.Time
	// Worker-computed feature vector for SamplerBatch events.
	raw    []float64
	rawErr error
	// enqueuedAt stamps traced events at Enqueue so the classify span
	// can split queue wait from work time (zero when untraced).
	enqueuedAt time.Time
}

// ClassifyStage is the parallel back half's front door: a bounded worker
// pool that pre-processes sampler events concurrently, and a reorder
// buffer that re-serializes the results so the feed server consumes them
// in exact arrival order.
//
// Every event is stamped with a monotone sequence number at Enqueue.
// Workers perform only the order-invariant pure work — extracting the
// 120-dim Table II feature vector from a sampled flow (the dominant
// per-event cost, and independent of any pipeline state). All stateful
// work (scan-module batching, model application, trainer window, store
// inserts, counters) happens downstream in handlePrepared, which the
// drain goroutine calls strictly in sequence order. The server therefore
// observes exactly the event stream the serial path would have produced,
// and the feed is byte-identical at any worker count.
type ClassifyStage struct {
	server  *Server
	workers int

	in chan *classifyJob
	wg sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	pending  map[uint64]*classifyJob // completed, awaiting their turn
	nextSeq  uint64                  // next sequence number to emit
	enqueued uint64                  // next sequence number to assign
	emitted  uint64                  // events handed to the server
	closed   bool

	drainDone chan struct{}
}

// NewClassifyStage starts a stage with the given worker count
// (0 = GOMAXPROCS) feeding the server. Callers must Close it when done.
func NewClassifyStage(server *Server, workers int) *ClassifyStage {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := &ClassifyStage{
		server: server,
		// A few jobs of slack per worker: enough to keep the pool busy
		// across uneven events, small enough that detection feels
		// backpressure instead of buffering a whole hour.
		in:        make(chan *classifyJob, workers*4),
		workers:   workers,
		pending:   make(map[uint64]*classifyJob),
		drainDone: make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	for i := 0; i < workers; i++ {
		st.wg.Add(1)
		go st.worker()
	}
	go st.drain()
	return st
}

// Enqueue submits one sampler event. Events are emitted to the server in
// Enqueue order regardless of which worker finishes first. Blocks when
// the queue is full (backpressure on detection). Safe for concurrent
// producers: the sequence order is the lock-acquisition order. After
// Close, events bypass the pool and go straight to the server.
func (st *ClassifyStage) Enqueue(e SamplerEvent, availableAt time.Time) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		st.server.HandleEvent(e, availableAt)
		return
	}
	job := &classifyJob{seq: st.enqueued, e: e, availableAt: availableAt}
	if e.Trace != nil {
		job.enqueuedAt = time.Now()
	}
	st.enqueued++
	metClassifyQueueDepth.Add(1)
	st.mu.Unlock()
	st.in <- job
}

// worker pulls jobs and runs the pure pre-computation.
func (st *ClassifyStage) worker() {
	defer st.wg.Done()
	var scratch features.Scratch
	for job := range st.in {
		metClassifyQueueDepth.Add(-1)
		metClassifyInflight.Add(1)
		var workStart time.Time
		if job.e.Trace != nil {
			workStart = time.Now()
		}
		if job.e.Kind == SamplerBatch {
			// One allocation per event for the vector itself — it is
			// retained downstream (the trainer keeps banner-labeled
			// vectors) — but the extraction scratch is reused.
			job.raw, job.rawErr = scratch.RawVectorInto(nil, job.e.Batch.Sample)
		}
		if job.e.Trace != nil {
			job.e.Trace.Span("classify", job.enqueuedAt, workStart,
				trace.Int("workers", st.workers))
		}
		metClassifyInflight.Add(-1)
		st.mu.Lock()
		st.pending[job.seq] = job
		metClassifyReorderWaiting.Set(float64(len(st.pending)))
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

// drain emits completed jobs in sequence order on a single goroutine.
func (st *ClassifyStage) drain() {
	defer close(st.drainDone)
	for {
		st.mu.Lock()
		for st.pending[st.nextSeq] == nil && !(st.closed && st.emitted == st.enqueued) {
			st.cond.Wait()
		}
		job := st.pending[st.nextSeq]
		if job == nil { // closed and fully drained
			st.mu.Unlock()
			return
		}
		delete(st.pending, st.nextSeq)
		st.nextSeq++
		metClassifyReorderWaiting.Set(float64(len(st.pending)))
		st.mu.Unlock()

		st.server.handlePrepared(job.e, job.raw, job.rawErr, job.availableAt)

		st.mu.Lock()
		st.emitted++
		st.cond.Broadcast()
		st.mu.Unlock()
	}
}

// Drain blocks until every event enqueued so far has been emitted to the
// server. This is the barrier between an hour's detection pass and the
// server's end-of-hour Tick.
func (st *ClassifyStage) Drain() {
	st.mu.Lock()
	for st.emitted != st.enqueued {
		st.cond.Wait()
	}
	st.mu.Unlock()
}

// Close drains the stage and stops its goroutines. Idempotent; later
// Enqueue calls fall through to the serial path.
func (st *ClassifyStage) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		<-st.drainDone
		return
	}
	st.closed = true
	st.mu.Unlock()
	close(st.in)
	st.wg.Wait()
	st.mu.Lock()
	st.cond.Broadcast() // wake drain in case everything already emitted
	st.mu.Unlock()
	<-st.drainDone
}
