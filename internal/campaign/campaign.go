// Package campaign infers coordinated scanning campaigns from eX-IoT's
// CTI records — the analysis direction of the authors' prior work
// ("inferring and investigating IoT-generated scanning campaigns") built
// on top of the feed. Records whose flows share a scanning signature —
// the targeted port set and the fingerprinted scan engine — are grouped
// into campaigns; signature groups with strongly overlapping port sets
// are merged, so minor per-bot differences (a port seen in one flow but
// not another) do not fragment a botnet into many campaigns.
package campaign

import (
	"fmt"
	"sort"
	"strings"

	"exiot/internal/feed"
)

// Signature is the behaviour key of a campaign.
type Signature struct {
	// Ports are the flow's significant target ports, ascending.
	Ports []uint16
	// Tool is the fingerprinted scan engine ("" when unknown).
	Tool string
}

// String renders the signature for display and map keys.
func (s Signature) String() string {
	parts := make([]string, len(s.Ports))
	for i, p := range s.Ports {
		parts[i] = fmt.Sprintf("%d", p)
	}
	key := strings.Join(parts, ",")
	if s.Tool != "" {
		key += "|" + s.Tool
	}
	return key
}

// Campaign is one inferred group of coordinated scanners.
type Campaign struct {
	Signature Signature
	// IPs are the member source addresses (unique).
	IPs []string
	// Countries tallies member geolocations.
	Countries map[string]int
	// Records counts member flow instances.
	Records int
}

// Size returns the number of unique member sources.
func (c *Campaign) Size() int { return len(c.IPs) }

// Config controls inference.
type Config struct {
	// MinPortShare keeps a port in the signature only if it carries at
	// least this fraction of the flow's packets (default 0.10).
	MinPortShare float64
	// MergeJaccard merges signature groups whose port sets overlap at
	// least this much (default 0.5).
	MergeJaccard float64
	// MinSize drops campaigns with fewer unique sources (default 3).
	MinSize int
}

func (c Config) withDefaults() Config {
	if c.MinPortShare <= 0 {
		c.MinPortShare = 0.10
	}
	if c.MergeJaccard <= 0 {
		c.MergeJaccard = 0.5
	}
	if c.MinSize <= 0 {
		c.MinSize = 3
	}
	return c
}

// signatureOf derives a record's scanning signature.
func signatureOf(rec *feed.Record, minShare float64) (Signature, bool) {
	total := 0
	for _, n := range rec.TargetPorts {
		total += n
	}
	if total == 0 {
		return Signature{}, false
	}
	var ports []uint16
	for p, n := range rec.TargetPorts {
		if float64(n)/float64(total) >= minShare {
			ports = append(ports, p)
		}
	}
	if len(ports) == 0 {
		return Signature{}, false
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	return Signature{Ports: ports, Tool: rec.Tool}, true
}

// jaccard computes set overlap of two sorted port slices.
func jaccard(a, b []uint16) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[uint16]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	inter := 0
	for _, p := range b {
		if set[p] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Infer groups IoT-labeled records into campaigns.
func Infer(records []feed.Record, cfg Config) []Campaign {
	cfg = cfg.withDefaults()

	// Pass 1: exact-signature grouping.
	groups := map[string]*Campaign{}
	seen := map[string]map[string]bool{} // signature key → member IPs
	for i := range records {
		rec := &records[i]
		if !rec.IsIoT() || rec.Benign {
			continue
		}
		sig, ok := signatureOf(rec, cfg.MinPortShare)
		if !ok {
			continue
		}
		key := sig.String()
		g, exists := groups[key]
		if !exists {
			g = &Campaign{Signature: sig, Countries: map[string]int{}}
			groups[key] = g
			seen[key] = map[string]bool{}
		}
		g.Records++
		if !seen[key][rec.IP] {
			seen[key][rec.IP] = true
			g.IPs = append(g.IPs, rec.IP)
		}
		if rec.CountryCode != "" {
			g.Countries[rec.CountryCode]++
		}
	}

	// Pass 2: merge overlapping signatures (largest first absorbs).
	list := make([]*Campaign, 0, len(groups))
	for _, g := range groups {
		list = append(list, g)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Size() != list[j].Size() {
			return list[i].Size() > list[j].Size()
		}
		return list[i].Signature.String() < list[j].Signature.String()
	})
	var merged []*Campaign
	for _, g := range list {
		host := -1
		for i, m := range merged {
			if m.Signature.Tool != g.Signature.Tool {
				continue
			}
			if jaccard(m.Signature.Ports, g.Signature.Ports) >= cfg.MergeJaccard {
				host = i
				break
			}
		}
		if host < 0 {
			merged = append(merged, g)
			continue
		}
		m := merged[host]
		members := make(map[string]bool, len(m.IPs))
		for _, ip := range m.IPs {
			members[ip] = true
		}
		for _, ip := range g.IPs {
			if !members[ip] {
				m.IPs = append(m.IPs, ip)
			}
		}
		for cc, n := range g.Countries {
			m.Countries[cc] += n
		}
		m.Records += g.Records
	}

	// Pass 3: size filter and stable output order.
	var out []Campaign
	for _, g := range merged {
		if g.Size() >= cfg.MinSize {
			sort.Strings(g.IPs)
			out = append(out, *g)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() > out[j].Size()
		}
		return out[i].Signature.String() < out[j].Signature.String()
	})
	return out
}

// TopCountries returns the campaign's n most common member countries.
func (c *Campaign) TopCountries(n int) []string {
	type kv struct {
		cc string
		n  int
	}
	items := make([]kv, 0, len(c.Countries))
	for cc, cnt := range c.Countries {
		items = append(items, kv{cc, cnt})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].cc < items[j].cc
	})
	if n > len(items) {
		n = len(items)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = items[i].cc
	}
	return out
}
