package campaign

// Cross-hour campaign tracking: where Infer is a one-shot clustering of
// whatever records it is handed, Tracker keeps campaign *identity*
// across repeated inferences — the feed snapshot is re-clustered after
// every rebuild, and campaigns that persist keep their IDs, so an
// operator watching the console sees "C-000003 grew from 12 to 31 bots
// overnight" instead of a fresh anonymous table every refresh. This is
// the longitudinal view the telescope literature argues for: campaigns
// are born, grow, decay, and die over days, and the interesting signal
// is the trajectory, not the instant.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"exiot/internal/feed"
)

// Tracked is one campaign with a stable identity across updates.
type Tracked struct {
	// ID is stable for the campaign's lifetime ("C-000001", assigned in
	// birth order).
	ID string
	// Campaign is the current cluster state from the latest update.
	Campaign
	// FirstSeen / LastSeen bound the campaign's observed lifetime:
	// FirstSeen is the update instant that created it, LastSeen the most
	// recent update in which inference still produced it.
	FirstSeen time.Time
	LastSeen  time.Time
	// Updates counts how many updates matched this campaign.
	Updates int
	// History samples the campaign's trajectory, oldest first, bounded
	// by the tracker's MaxHistory.
	History []HistoryPoint
}

// Active reports whether the campaign appeared in the latest update
// (asOf = the tracker's last update time).
func (tc *Tracked) Active(asOf time.Time) bool { return !tc.LastSeen.Before(asOf) }

// HistoryPoint is one sampled state of a tracked campaign.
type HistoryPoint struct {
	At time.Time `json:"at"`
	// Size and Records mirror the campaign's membership at the sample.
	Size    int `json:"size"`
	Records int `json:"records"`
	// Signature captures drift in the port set / tool over time.
	Signature string `json:"signature"`
	// TopCountries are the 3 most common member countries.
	TopCountries []string `json:"top_countries,omitempty"`
}

// TrackerConfig parameterizes cross-hour tracking on top of the
// one-shot inference Config.
type TrackerConfig struct {
	Config
	// MatchOverlap links an inferred campaign to a tracked one when
	// their member-IP containment (|intersection| / smaller set) is at
	// least this (default 0.5). Containment rather than jaccard so a
	// campaign tripling overnight still matches its younger self.
	MatchOverlap float64
	// Retire drops a campaign not seen for this long (default 14 days,
	// the feed's own record-lapse window).
	Retire time.Duration
	// MaxHistory bounds each campaign's trajectory samples (default 336
	// — two weeks of half-hourly points).
	MaxHistory int
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	c.Config = c.Config.withDefaults()
	if c.MatchOverlap <= 0 {
		c.MatchOverlap = 0.5
	}
	if c.Retire <= 0 {
		c.Retire = 14 * 24 * time.Hour
	}
	if c.MaxHistory <= 0 {
		c.MaxHistory = 336
	}
	return c
}

// Tracker is the incremental clusterer. All methods are safe for
// concurrent use; Update is typically driven from feed-snapshot
// rebuilds, Campaigns from the console/API read path.
type Tracker struct {
	mu       sync.Mutex
	cfg      TrackerConfig
	nextID   int
	tracked  []*Tracked // birth order (ascending ID)
	lastSeen time.Time  // instant of the most recent update
}

// NewTracker builds an empty tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	return &Tracker{cfg: cfg.withDefaults()}
}

// Update re-infers campaigns over the given records and reconciles them
// with the tracked set as of now: matched campaigns keep their IDs and
// grow their history, unmatched inferences are born with fresh IDs, and
// tracked campaigns beyond the retire window are dropped. Update is
// deterministic: the same record set against the same tracker state
// yields the same IDs in the same order, so repeated snapshot rebuilds
// over an unchanged feed are idempotent.
func (t *Tracker) Update(records []feed.Record, now time.Time) {
	inferred := Infer(records, t.cfg.Config)

	t.mu.Lock()
	defer t.mu.Unlock()
	t.lastSeen = now

	// Greedy assignment in inference order (size desc, signature asc —
	// deterministic): each inferred campaign claims its best unclaimed
	// tracked ancestor by member overlap, ties to the oldest ID.
	claimed := make(map[*Tracked]bool, len(t.tracked))
	for i := range inferred {
		inf := &inferred[i]
		best := t.bestMatch(inf, claimed)
		if best == nil {
			t.nextID++
			best = &Tracked{
				ID:        fmt.Sprintf("C-%06d", t.nextID),
				FirstSeen: now,
			}
			t.tracked = append(t.tracked, best)
		}
		claimed[best] = true
		best.Campaign = *inf
		best.LastSeen = now
		best.Updates++
		best.History = appendHistory(best.History, HistoryPoint{
			At:           now,
			Size:         inf.Size(),
			Records:      inf.Records,
			Signature:    inf.Signature.String(),
			TopCountries: inf.TopCountries(3),
		}, t.cfg.MaxHistory)
	}

	// Decay: unmatched campaigns linger (still listed, marked inactive
	// by their stale LastSeen) until the retire window closes on them.
	kept := t.tracked[:0]
	for _, tc := range t.tracked {
		if !claimed[tc] && now.Sub(tc.LastSeen) > t.cfg.Retire {
			continue
		}
		kept = append(kept, tc)
	}
	t.tracked = kept
}

// bestMatch finds the unclaimed tracked campaign with the highest
// member overlap against inf (same tool required, overlap ≥
// MatchOverlap). Ties break to the older campaign — identity outlives
// splits.
func (t *Tracker) bestMatch(inf *Campaign, claimed map[*Tracked]bool) *Tracked {
	members := make(map[string]bool, len(inf.IPs))
	for _, ip := range inf.IPs {
		members[ip] = true
	}
	var best *Tracked
	bestOverlap := 0.0
	for _, tc := range t.tracked { // ascending ID: first win is oldest
		if claimed[tc] || tc.Signature.Tool != inf.Signature.Tool {
			continue
		}
		inter := 0
		for _, ip := range tc.IPs {
			if members[ip] {
				inter++
			}
		}
		smaller := len(tc.IPs)
		if len(inf.IPs) < smaller {
			smaller = len(inf.IPs)
		}
		if smaller == 0 {
			continue
		}
		overlap := float64(inter) / float64(smaller)
		if overlap >= t.cfg.MatchOverlap && overlap > bestOverlap {
			best, bestOverlap = tc, overlap
		}
	}
	return best
}

// appendHistory appends p, coalescing consecutive identical states so
// an idle feed does not grow the trajectory, and trims to max points.
func appendHistory(h []HistoryPoint, p HistoryPoint, max int) []HistoryPoint {
	if n := len(h); n > 0 {
		last := h[n-1]
		if last.Size == p.Size && last.Records == p.Records && last.Signature == p.Signature {
			return h
		}
	}
	h = append(h, p)
	if len(h) > max {
		h = h[len(h)-max:]
	}
	return h
}

// Campaigns returns the tracked set sorted for display: campaigns seen
// in the latest update first (size desc, then ID), then decaying ones
// (most recently seen first, then ID). The returned slice and its
// history slices are copies safe to hold across updates.
func (t *Tracker) Campaigns() []Tracked {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Tracked, 0, len(t.tracked))
	for _, tc := range t.tracked {
		cp := *tc
		cp.History = append([]HistoryPoint(nil), tc.History...)
		cp.IPs = append([]string(nil), tc.IPs...)
		countries := make(map[string]int, len(tc.Countries))
		for k, v := range tc.Countries {
			countries[k] = v
		}
		cp.Countries = countries
		out = append(out, cp)
	}
	asOf := t.lastSeen
	sortTracked(out, asOf)
	return out
}

// LastUpdate reports the instant of the most recent Update (zero before
// the first).
func (t *Tracker) LastUpdate() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastSeen
}

// sortTracked orders campaigns for the operator table.
func sortTracked(out []Tracked, asOf time.Time) {
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		aAct, bAct := a.Active(asOf), b.Active(asOf)
		if aAct != bAct {
			return aAct
		}
		if aAct {
			if a.Size() != b.Size() {
				return a.Size() > b.Size()
			}
			return a.ID < b.ID
		}
		if !a.LastSeen.Equal(b.LastSeen) {
			return a.LastSeen.After(b.LastSeen)
		}
		return a.ID < b.ID
	})
}
