package campaign

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"exiot/internal/feed"
)

// familyRecord synthesizes one feed record scanning per a family's port
// profile.
func familyRecord(rng *rand.Rand, ip string, ports map[uint16]int, tool, cc string) feed.Record {
	return feed.Record{
		IP:          ip,
		Label:       feed.LabelIoT,
		TargetPorts: ports,
		Tool:        tool,
		CountryCode: cc,
	}
}

func miraiPorts(rng *rand.Rand) map[uint16]int {
	// 90/10 telnet split with sampling noise.
	p23 := 170 + rng.Intn(30)
	return map[uint16]int{23: p23, 2323: 200 - p23}
}

func httpPorts(rng *rand.Rand) map[uint16]int {
	a := 80 + rng.Intn(30)
	b := 60 + rng.Intn(20)
	return map[uint16]int{8080: a, 80: b, 81: 200 - a - b}
}

func TestInferSeparatesFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var records []feed.Record
	countries := []string{"CN", "IN", "BR", "IR"}
	for i := 0; i < 40; i++ {
		records = append(records, familyRecord(rng, fmt.Sprintf("1.1.%d.%d", i/250, i%250),
			miraiPorts(rng), "Mirai-like scanner", countries[i%4]))
	}
	for i := 0; i < 25; i++ {
		records = append(records, familyRecord(rng, fmt.Sprintf("2.2.%d.%d", i/250, i%250),
			httpPorts(rng), "", countries[i%3]))
	}
	campaigns := Infer(records, Config{})
	if len(campaigns) != 2 {
		t.Fatalf("campaigns = %d, want 2: %+v", len(campaigns), sigs(campaigns))
	}
	if campaigns[0].Size() != 40 || campaigns[1].Size() != 25 {
		t.Errorf("sizes = %d/%d, want 40/25", campaigns[0].Size(), campaigns[1].Size())
	}
	if campaigns[0].Signature.Tool != "Mirai-like scanner" {
		t.Errorf("largest campaign tool = %q", campaigns[0].Signature.Tool)
	}
	top := campaigns[0].TopCountries(2)
	if len(top) != 2 {
		t.Errorf("TopCountries = %v", top)
	}
}

func sigs(cs []Campaign) []string {
	out := make([]string, len(cs))
	for i := range cs {
		out[i] = cs[i].Signature.String()
	}
	return out
}

func TestMergeAbsorbsNoisyVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var records []feed.Record
	// 30 bots: telnet-only signature; 10 bots: telnet + a side port that
	// overlaps enough to merge ({23} vs {23,2323} → jaccard 0.5).
	for i := 0; i < 30; i++ {
		records = append(records, familyRecord(rng, fmt.Sprintf("3.3.0.%d", i+1),
			map[uint16]int{23: 200}, "", "CN"))
	}
	for i := 0; i < 10; i++ {
		records = append(records, familyRecord(rng, fmt.Sprintf("3.3.1.%d", i+1),
			map[uint16]int{23: 150, 2323: 50}, "", "CN"))
	}
	campaigns := Infer(records, Config{})
	if len(campaigns) != 1 {
		t.Fatalf("campaigns = %d, want 1 after merge: %v", len(campaigns), sigs(campaigns))
	}
	if campaigns[0].Size() != 40 {
		t.Errorf("merged size = %d, want 40", campaigns[0].Size())
	}
}

func TestToolSplitsCampaigns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var records []feed.Record
	for i := 0; i < 10; i++ {
		records = append(records, familyRecord(rng, fmt.Sprintf("4.4.0.%d", i+1),
			map[uint16]int{23: 200}, "Mirai-like scanner", "CN"))
		records = append(records, familyRecord(rng, fmt.Sprintf("4.4.1.%d", i+1),
			map[uint16]int{23: 200}, "", "CN"))
	}
	campaigns := Infer(records, Config{})
	if len(campaigns) != 2 {
		t.Fatalf("same ports but different engines must split: %d campaigns", len(campaigns))
	}
}

func TestFiltersNonIoTAndSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var records []feed.Record
	// Non-IoT and benign records never join campaigns.
	rec := familyRecord(rng, "5.5.0.1", map[uint16]int{80: 100}, "ZMap", "US")
	rec.Label = feed.LabelNonIoT
	records = append(records, rec)
	benign := familyRecord(rng, "5.5.0.2", map[uint16]int{80: 100}, "ZMap", "US")
	benign.Benign = true
	records = append(records, benign)
	// Two-member group falls under MinSize 3.
	for i := 0; i < 2; i++ {
		records = append(records, familyRecord(rng, fmt.Sprintf("5.5.1.%d", i+1),
			map[uint16]int{9999: 100}, "", "DE"))
	}
	if got := Infer(records, Config{}); len(got) != 0 {
		t.Errorf("campaigns = %v, want none", sigs(got))
	}
	// Records without port stats are skipped, not crashed on.
	records = append(records, feed.Record{IP: "5.5.2.1", Label: feed.LabelIoT})
	if got := Infer(records, Config{}); len(got) != 0 {
		t.Errorf("portless record created campaign: %v", sigs(got))
	}
}

func TestRepeatInstancesCountOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var records []feed.Record
	// The same 5 devices re-detected 4 times each: size 5, records 20.
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			records = append(records, familyRecord(rng, fmt.Sprintf("6.6.0.%d", i+1),
				map[uint16]int{23: 200}, "", "CN"))
		}
	}
	campaigns := Infer(records, Config{})
	if len(campaigns) != 1 {
		t.Fatalf("campaigns = %d", len(campaigns))
	}
	if campaigns[0].Size() != 5 || campaigns[0].Records != 20 {
		t.Errorf("size/records = %d/%d, want 5/20", campaigns[0].Size(), campaigns[0].Records)
	}
}

func TestSignatureSharesThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// A port carrying 5% of packets is noise and must not enter the
	// signature at the default 10% threshold.
	rec := familyRecord(rng, "7.7.0.1", map[uint16]int{23: 190, 8081: 10}, "", "CN")
	sig, ok := signatureOf(&rec, 0.10)
	if !ok {
		t.Fatal("no signature")
	}
	if len(sig.Ports) != 1 || sig.Ports[0] != 23 {
		t.Errorf("signature = %v, want [23]", sig.Ports)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []uint16
		want float64
	}{
		{[]uint16{23}, []uint16{23}, 1},
		{[]uint16{23}, []uint16{80}, 0},
		{[]uint16{23, 2323}, []uint16{23}, 0.5},
		{nil, nil, 1},
	}
	for _, c := range cases {
		if got := jaccard(c.a, c.b); got != c.want {
			t.Errorf("jaccard(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestInferEmptyRecordSet(t *testing.T) {
	if got := Infer(nil, Config{}); got != nil {
		t.Errorf("Infer(nil) = %v, want nil", sigs(got))
	}
	if got := Infer([]feed.Record{}, Config{}); got != nil {
		t.Errorf("Infer(empty) = %v, want nil", sigs(got))
	}
}

func TestInferSingleRecordBelowMinSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// One lone scanner never makes a campaign at the default MinSize 3 —
	// but does at MinSize 1, proving the filter (not the grouping) drops it.
	records := []feed.Record{familyRecord(rng, "8.8.0.1", map[uint16]int{23: 200}, "", "CN")}
	if got := Infer(records, Config{}); len(got) != 0 {
		t.Errorf("singleton campaign survived MinSize 3: %v", sigs(got))
	}
	got := Infer(records, Config{MinSize: 1})
	if len(got) != 1 || got[0].Size() != 1 {
		t.Fatalf("MinSize 1 should keep the singleton: %+v", got)
	}
}

func TestMergeJaccardBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	build := func(portsA, portsB map[uint16]int) []feed.Record {
		var records []feed.Record
		for i := 0; i < 5; i++ {
			records = append(records, familyRecord(rng, fmt.Sprintf("9.9.0.%d", i+1), portsA, "", "CN"))
			records = append(records, familyRecord(rng, fmt.Sprintf("9.9.1.%d", i+1), portsB, "", "CN"))
		}
		return records
	}
	// {23,2323} vs {23}: jaccard exactly 0.5 — the >= threshold merges it.
	at := build(map[uint16]int{23: 150, 2323: 50}, map[uint16]int{23: 200})
	if got := Infer(at, Config{MergeJaccard: 0.5}); len(got) != 1 {
		t.Errorf("jaccard == threshold must merge: %v", sigs(got))
	}
	// {23,2323,5555} vs {23}: jaccard 1/3 — below 0.5, stays split.
	below := build(map[uint16]int{23: 100, 2323: 50, 5555: 50}, map[uint16]int{23: 200})
	if got := Infer(below, Config{MergeJaccard: 0.5}); len(got) != 2 {
		t.Errorf("jaccard below threshold must not merge: %v", sigs(got))
	}
}

func TestSignaturePortShareTies(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Two ports tied exactly at the 10% threshold share: both stay, and
	// the signature lists them ascending regardless of map iteration.
	rec := familyRecord(rng, "10.0.0.1", map[uint16]int{2323: 20, 23: 160, 5555: 20}, "", "CN")
	for i := 0; i < 20; i++ { // map order varies per run; pin across iterations
		sig, ok := signatureOf(&rec, 0.10)
		if !ok {
			t.Fatal("no signature")
		}
		want := "23,2323,5555"
		if sig.String() != want {
			t.Fatalf("tied-share signature = %q, want %q", sig.String(), want)
		}
	}
	// Just under the threshold on one of the tied ports: it drops out.
	rec2 := familyRecord(rng, "10.0.0.2", map[uint16]int{2323: 19, 23: 161, 5555: 20}, "", "CN")
	sig, _ := signatureOf(&rec2, 0.10)
	if sig.String() != "23,5555" {
		t.Errorf("sub-threshold port kept: %q", sig.String())
	}
}

func TestInferDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var records []feed.Record
	for i := 0; i < 30; i++ {
		records = append(records, familyRecord(rng, fmt.Sprintf("11.0.%d.%d", i/250, i%250+1),
			miraiPorts(rng), "Mirai-like scanner", "CN"))
	}
	for i := 0; i < 12; i++ {
		records = append(records, familyRecord(rng, fmt.Sprintf("11.1.%d.%d", i/250, i%250+1),
			httpPorts(rng), "", "BR"))
	}
	for i := 0; i < 12; i++ {
		records = append(records, familyRecord(rng, fmt.Sprintf("11.2.%d.%d", i/250, i%250+1),
			map[uint16]int{5555: 200}, "", "IN"))
	}
	first := Infer(records, Config{})
	for run := 0; run < 10; run++ {
		if got := Infer(records, Config{}); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: same records produced different campaigns:\n%+v\nvs\n%+v", run, got, first)
		}
	}
}
