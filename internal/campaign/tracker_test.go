package campaign

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"exiot/internal/feed"
)

// botRecords synthesizes n IoT records in prefix sharing one signature.
func botRecords(prefix string, n int, ports map[uint16]int, tool, cc string) []feed.Record {
	out := make([]feed.Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, feed.Record{
			IP:          fmt.Sprintf("%s.%d.%d", prefix, i/200, i%200+1),
			Label:       feed.LabelIoT,
			TargetPorts: ports,
			Tool:        tool,
			CountryCode: cc,
		})
	}
	return out
}

func hour(h int) time.Time {
	return time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour)
}

func TestTrackerStableIDsAcrossRebuilds(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	records := append(
		botRecords("10.0", 20, map[uint16]int{23: 180, 2323: 20}, "Mirai-like scanner", "CN"),
		botRecords("10.1", 8, map[uint16]int{8080: 150, 80: 50}, "", "BR")...)

	// Three consecutive snapshot rebuilds over the same feed — the
	// console's acceptance bar: IDs, order, and history must not churn.
	var want []Tracked
	for rebuild := 0; rebuild < 3; rebuild++ {
		tr.Update(records, hour(rebuild))
		got := tr.Campaigns()
		if len(got) != 2 {
			t.Fatalf("rebuild %d: campaigns = %d, want 2", rebuild, len(got))
		}
		if got[0].ID != "C-000001" || got[1].ID != "C-000002" {
			t.Fatalf("rebuild %d: IDs churned: %s / %s", rebuild, got[0].ID, got[1].ID)
		}
		if rebuild > 0 {
			// Identical feed → identical table apart from LastSeen/Updates.
			for i := range got {
				if got[i].Signature.String() != want[i].Signature.String() || got[i].Size() != want[i].Size() {
					t.Fatalf("rebuild %d: campaign %s drifted", rebuild, got[i].ID)
				}
				// Unchanged state coalesces: history stays one point.
				if len(got[i].History) != 1 {
					t.Fatalf("rebuild %d: history grew to %d points on an idle feed", rebuild, len(got[i].History))
				}
			}
		}
		want = got
	}
	if want[0].FirstSeen != hour(0) || want[0].LastSeen != hour(2) || want[0].Updates != 3 {
		t.Errorf("lifetime bookkeeping wrong: %+v", want[0])
	}
}

func TestTrackerGrowthKeepsIdentity(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	// A Mirai wave recruiting 5 → 15 → 40 bots: same campaign throughout,
	// even though the later membership dwarfs the earlier one.
	for i, n := range []int{5, 15, 40} {
		tr.Update(botRecords("20.0", n, map[uint16]int{23: 200}, "Mirai-like scanner", "CN"), hour(i))
	}
	got := tr.Campaigns()
	if len(got) != 1 {
		t.Fatalf("campaigns = %d, want 1 (identity across growth)", len(got))
	}
	c := got[0]
	if c.ID != "C-000001" || c.Size() != 40 {
		t.Fatalf("campaign = %s size %d, want C-000001 size 40", c.ID, c.Size())
	}
	sizes := make([]int, len(c.History))
	for i, p := range c.History {
		sizes[i] = p.Size
	}
	if !reflect.DeepEqual(sizes, []int{5, 15, 40}) {
		t.Errorf("growth history = %v, want [5 15 40]", sizes)
	}
}

func TestTrackerBirthDecayRetire(t *testing.T) {
	tr := NewTracker(TrackerConfig{Retire: 48 * time.Hour})
	mirai := botRecords("30.0", 10, map[uint16]int{23: 200}, "Mirai-like scanner", "CN")
	web := botRecords("30.1", 6, map[uint16]int{8080: 200}, "", "BR")

	tr.Update(mirai, hour(0))
	tr.Update(append(append([]feed.Record{}, mirai...), web...), hour(1))
	got := tr.Campaigns()
	if len(got) != 2 {
		t.Fatalf("campaigns after birth = %d, want 2", len(got))
	}
	if got[0].ID != "C-000001" || got[1].ID != "C-000002" {
		t.Fatalf("birth order IDs = %s/%s", got[0].ID, got[1].ID)
	}
	if got[1].FirstSeen != hour(1) {
		t.Errorf("new campaign FirstSeen = %v, want hour 1", got[1].FirstSeen)
	}

	// The web campaign goes quiet: it decays (listed, inactive) until
	// the retire window closes.
	tr.Update(mirai, hour(2))
	got = tr.Campaigns()
	if len(got) != 2 {
		t.Fatalf("campaigns after decay = %d, want 2 (decaying one still listed)", len(got))
	}
	asOf := tr.LastUpdate()
	if !got[0].Active(asOf) || got[0].ID != "C-000001" {
		t.Errorf("active campaign should sort first: %+v", got[0])
	}
	if got[1].Active(asOf) || got[1].ID != "C-000002" {
		t.Errorf("decaying campaign misreported: ID=%s active=%v", got[1].ID, got[1].Active(asOf))
	}

	tr.Update(mirai, hour(2+49))
	got = tr.Campaigns()
	if len(got) != 1 || got[0].ID != "C-000001" {
		t.Fatalf("retire failed: %d campaigns, first %s", len(got), got[0].ID)
	}

	// A campaign reborn after retirement is a new identity.
	tr.Update(append(append([]feed.Record{}, mirai...), web...), hour(2+50))
	got = tr.Campaigns()
	if len(got) != 2 || got[1].ID != "C-000003" {
		t.Fatalf("reborn campaign should draw a fresh ID: %+v", got)
	}
}

func TestTrackerDeterminism(t *testing.T) {
	records := append(
		botRecords("40.0", 12, map[uint16]int{23: 160, 2323: 40}, "Mirai-like scanner", "CN"),
		append(
			botRecords("40.1", 7, map[uint16]int{8080: 120, 80: 80}, "", "IN"),
			botRecords("40.2", 5, map[uint16]int{5555: 200}, "", "BR")...)...)

	run := func() []Tracked {
		tr := NewTracker(TrackerConfig{})
		for i := 0; i < 4; i++ {
			tr.Update(records, hour(i))
		}
		return tr.Campaigns()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same updates produced different tracker states:\n%+v\nvs\n%+v", a, b)
	}
}

func TestTrackerSplitKeepsOldestIdentity(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	all := botRecords("50.0", 20, map[uint16]int{23: 200}, "", "CN")
	tr.Update(all, hour(0))

	// Half the botnet retools to a distinguishable signature: the larger
	// continuation keeps C-000001, the splinter is born as C-000002.
	var next []feed.Record
	for i, rec := range all {
		if i >= 12 {
			rec.TargetPorts = map[uint16]int{5555: 150, 5556: 50}
		}
		next = append(next, rec)
	}
	tr.Update(next, hour(1))
	got := tr.Campaigns()
	if len(got) != 2 {
		t.Fatalf("campaigns after split = %d, want 2", len(got))
	}
	if got[0].ID != "C-000001" || got[0].Size() != 12 {
		t.Errorf("continuation = %s size %d, want C-000001 size 12", got[0].ID, got[0].Size())
	}
	if got[1].ID != "C-000002" || got[1].Size() != 8 {
		t.Errorf("splinter = %s size %d, want C-000002 size 8", got[1].ID, got[1].Size())
	}
}

func TestTrackerHistoryBounded(t *testing.T) {
	tr := NewTracker(TrackerConfig{MaxHistory: 4})
	for i := 0; i < 10; i++ {
		// Size changes every update so no coalescing happens.
		tr.Update(botRecords("60.0", 3+i, map[uint16]int{23: 200}, "", "CN"), hour(i))
	}
	got := tr.Campaigns()
	if len(got) != 1 {
		t.Fatalf("campaigns = %d", len(got))
	}
	h := got[0].History
	if len(h) != 4 {
		t.Fatalf("history = %d points, want bounded to 4", len(h))
	}
	if h[len(h)-1].Size != 12 || h[0].Size != 9 {
		t.Errorf("history window wrong: first %d last %d, want 9..12", h[0].Size, h[len(h)-1].Size)
	}
}
