package replay

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"exiot/internal/packet"
	"exiot/internal/pcapio"
)

func testPacket(r *rand.Rand, ts time.Time) packet.Packet {
	p := packet.Packet{
		Timestamp: ts,
		TTL:       uint8(1 + r.Intn(255)),
		ID:        uint16(r.Intn(65536)),
		Proto:     packet.TCP,
		SrcIP:     packet.IP(r.Uint32()),
		DstIP:     packet.IP(r.Uint32()),
		SrcPort:   uint16(r.Intn(65536)),
		DstPort:   23,
		Seq:       r.Uint32(),
		Flags:     packet.FlagSYN,
		Window:    uint16(r.Intn(65536)),
	}
	p.Normalize()
	return p
}

// writeHour writes n packets spread across the given hour into dir.
func writeHour(t *testing.T, dir string, hour time.Time, n int, seed int64) []packet.Packet {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	hw, err := pcapio.CreateHour(dir, hour)
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]packet.Packet, n)
	step := time.Hour / time.Duration(n+1) // keep every packet inside the hour
	for i := range pkts {
		pkts[i] = testPacket(r, hour.Add(time.Duration(i)*step))
		if err := hw.WritePacket(&pkts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}
	return pkts
}

// emitRecorder captures every Emit call, copying the pooled slice.
type emitRecorder struct {
	hours []time.Time
	pkts  [][]packet.Packet
}

func (e *emitRecorder) emit(pkts []packet.Packet, hour time.Time) error {
	e.hours = append(e.hours, hour)
	e.pkts = append(e.pkts, append([]packet.Packet(nil), pkts...))
	return nil
}

// TestReplayDirGapFill proves directory replay visits every published
// hour in order and fills unpublished gaps with empty emits, so the
// pipeline's hourly sweeps keep their cadence.
func TestReplayDirGapFill(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	// Hours 0, 1, 3 published; hour 2 missing.
	want0 := writeHour(t, dir, base, 40, 1)
	want1 := writeHour(t, dir, base.Add(time.Hour), 25, 2)
	want3 := writeHour(t, dir, base.Add(3*time.Hour), 30, 3)

	var rec emitRecorder
	r := New(Config{Emit: rec.emit})
	if err := r.ReplayDir(dir); err != nil {
		t.Fatal(err)
	}
	if len(rec.hours) != 4 {
		t.Fatalf("emitted %d hours, want 4 (gap filled)", len(rec.hours))
	}
	for i, h := range rec.hours {
		if want := base.Add(time.Duration(i) * time.Hour); !h.Equal(want) {
			t.Errorf("emit %d: hour %v, want %v", i, h, want)
		}
	}
	for i, want := range map[int][]packet.Packet{0: want0, 1: want1, 3: want3} {
		if len(rec.pkts[i]) != len(want) {
			t.Errorf("hour %d: %d packets, want %d", i, len(rec.pkts[i]), len(want))
			continue
		}
		for j := range want {
			if rec.pkts[i][j] != want[j] {
				t.Fatalf("hour %d packet %d mismatch", i, j)
			}
		}
	}
	if len(rec.pkts[2]) != 0 {
		t.Errorf("gap hour carried %d packets, want 0", len(rec.pkts[2]))
	}
	if got, want := r.Packets(), int64(95); got != want {
		t.Errorf("Packets() = %d, want %d", got, want)
	}
	if r.Hours() != 4 {
		t.Errorf("Hours() = %d, want 4", r.Hours())
	}
	if want := base.Add(4 * time.Hour); !r.End().Equal(want) {
		t.Errorf("End() = %v, want %v", r.End(), want)
	}
}

// TestReplayFileHourBoundaries proves single-file replay derives hour
// boundaries from packet timestamps, including empty fills for silent
// hours in the middle of the capture.
func TestReplayFileHourBoundaries(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2021, 4, 2, 9, 0, 0, 0, time.UTC)
	path := filepath.Join(dir, "span.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcapio.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	// Packets in hours 0 and 2 of the span; hour 1 is silent.
	counts := map[int]int{0: 12, 2: 18}
	for _, h := range []int{0, 2} {
		for i := 0; i < counts[h]; i++ {
			p := testPacket(r, base.Add(time.Duration(h)*time.Hour+time.Duration(i)*time.Minute))
			if err := w.WritePacket(&p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var rec emitRecorder
	rep := New(Config{Emit: rec.emit})
	if err := rep.Replay(path); err != nil {
		t.Fatal(err)
	}
	if len(rec.hours) != 3 {
		t.Fatalf("emitted %d hours, want 3", len(rec.hours))
	}
	for i, wantN := range []int{12, 0, 18} {
		if !rec.hours[i].Equal(base.Add(time.Duration(i) * time.Hour)) {
			t.Errorf("emit %d at %v", i, rec.hours[i])
		}
		if len(rec.pkts[i]) != wantN {
			t.Errorf("hour %d: %d packets, want %d", i, len(rec.pkts[i]), wantN)
		}
	}
	if want := base.Add(3 * time.Hour); !rep.End().Equal(want) {
		t.Errorf("End() = %v, want %v", rep.End(), want)
	}
}

// TestWarpZeroNeverTouchesClock pins the determinism contract: at
// Warp == 0 the replayer must never consult the injected clock or sleep.
func TestWarpZeroNeverTouchesClock(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2021, 4, 3, 0, 0, 0, 0, time.UTC)
	writeHour(t, dir, base, 2000, 5)
	r := New(Config{
		Warp: 0,
		Emit: func([]packet.Packet, time.Time) error { return nil },
		Now: func() time.Time {
			t.Error("Now() consulted at warp 0")
			return time.Time{}
		},
		Sleep: func(time.Duration) {
			t.Error("Sleep() called at warp 0")
		},
	})
	if err := r.ReplayDir(dir); err != nil {
		t.Fatal(err)
	}
}

// TestWarpPacingSchedule proves paced mode sleeps the recorded span
// compressed by the warp factor, against a fake clock.
func TestWarpPacingSchedule(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2021, 4, 4, 0, 0, 0, 0, time.UTC)
	writeHour(t, dir, base, 1500, 6)
	writeHour(t, dir, base.Add(time.Hour), 1500, 7)

	var (
		clock = time.Unix(1_600_000_000, 0) // fake wall clock (non-zero: zero Time is the unanchored sentinel)
		slept time.Duration
	)
	r := New(Config{
		Warp: 60, // two recorded hours should take two wall minutes
		Emit: func([]packet.Packet, time.Time) error { return nil },
		Now:  func() time.Time { return clock },
		Sleep: func(d time.Duration) {
			slept += d
			clock = clock.Add(d)
		},
	})
	if err := r.ReplayDir(dir); err != nil {
		t.Fatal(err)
	}
	// The virtual clock anchors at the first pacing check (~512 packets
	// in), so the total sleep is the recorded span from that anchor to
	// the final hour end, divided by 60 — just under 2 minutes.
	if slept < 90*time.Second || slept > 2*time.Minute {
		t.Errorf("slept %v across a 2-recorded-hour warp-60 replay, want ≈2m", slept)
	}
}

// TestReplayTornCapture proves a capture cut mid-record still emits the
// packets before the tear and surfaces the io.ErrUnexpectedEOF-wrapped
// error — a damaged file yields a partial hour, never a garbage packet.
func TestReplayTornCapture(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2021, 4, 5, 0, 0, 0, 0, time.UTC)
	path := filepath.Join(dir, "torn.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := pcapio.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 10; i++ {
		p := testPacket(r, base.Add(time.Duration(i)*time.Second))
		if err := w.WritePacket(&p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(fi.Size() - 5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var rec emitRecorder
	rep := New(Config{Emit: rec.emit})
	err = rep.Replay(path)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want io.ErrUnexpectedEOF-wrapped error, got %v", err)
	}
	if len(rec.hours) != 1 || len(rec.pkts[0]) != 9 {
		t.Fatalf("partial hour not emitted: %d hours, %v packets", len(rec.hours), len(rec.pkts))
	}
}

// TestHourBufferReuse pins the pooled-buffer contract: consecutive
// non-growing hours share one backing array.
func TestHourBufferReuse(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2021, 4, 6, 0, 0, 0, 0, time.UTC)
	writeHour(t, dir, base, 100, 9)
	writeHour(t, dir, base.Add(time.Hour), 100, 10)
	var first *packet.Packet
	r := New(Config{Emit: func(pkts []packet.Packet, _ time.Time) error {
		if len(pkts) == 0 {
			return nil
		}
		if first == nil {
			first = &pkts[0]
		} else if first != &pkts[0] {
			t.Error("hour buffer was reallocated between equal-sized hours")
		}
		return nil
	}})
	if err := r.ReplayDir(dir); err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("no packets emitted")
	}
}
