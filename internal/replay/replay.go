// Package replay re-emits recorded pcap captures into the live pipeline
// at a configurable time-warp factor, turning the TRW→probe→classify
// path loose on traffic we did not generate. It is the front end the
// ROADMAP's "real-pcap and adversarial ingestion" item calls for: read a
// capture (hourly directory or single file, plain or gzip), group the
// packets into the same hour batches simnet produces, and hand each hour
// to an Emit callback — exiotd's Local.ProcessHour or flowsampler's
// sampler+barrier path — so a replayed capture drives the exact EndHour
// sweep cadence live ingestion does, including empty hours.
//
// Scheduling is a deterministic virtual clock: at Warp == 0 ("as fast as
// possible") the loop never reads a wall clock and never sleeps, so a
// replay is a pure function of the capture bytes — the property
// TestReplayFeedEquivalence leans on. At Warp > 0 the recorded timeline
// is compressed by that factor against an injectable clock (1 = real
// time, 60 = an hour per minute), with pacing checked once per packet
// batch so the hot loop stays allocation-free.
package replay

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"exiot/internal/packet"
	"exiot/internal/pcapio"
	"exiot/internal/telemetry"
)

// Telemetry handles for the replay stage (see docs/OPERATIONS.md).
var (
	metPackets = telemetry.Default().Counter("exiot_replay_packets_total",
		"Packets re-emitted into the pipeline from replayed captures.")
	metHours = telemetry.Default().Counter("exiot_replay_hours_total",
		"Capture hours replayed into the pipeline, including empty gap hours.")
	metWarpLag = telemetry.Default().Gauge("exiot_replay_warp_lag_seconds",
		"How far a paced replay is running behind its warped schedule (0 when on time or unpaced).")
	metRate = telemetry.Default().Gauge("exiot_replay_packets_per_second",
		"Replay ingest rate over the run so far, in packets per wall-clock second.")
)

// paceEvery is how many packets the paced loop admits between clock
// checks: large enough that the clock read disappears from the profile,
// small enough that a 1× replay never runs more than a few hundred
// packets hot.
const paceEvery = 512

// Config parameterizes a Replayer.
type Config struct {
	// Warp is the time-warp factor: 0 replays as fast as possible with
	// no clock reads or sleeps (fully deterministic), 1 replays at
	// recorded speed, N compresses the recorded timeline N-fold.
	Warp float64

	// Emit receives each completed hour's packets in capture order,
	// with the hour start — the same contract as Local.ProcessHour.
	// The slice is pooled and reused for the next hour; Emit must not
	// retain it. Empty hours (gap fills) arrive with an empty slice.
	Emit func(pkts []packet.Packet, hour time.Time) error

	// Now and Sleep are the paced mode's clock, injectable for tests.
	// Nil defaults to time.Now and time.Sleep. Never consulted at
	// Warp == 0.
	Now   func() time.Time
	Sleep func(time.Duration)
}

// Replayer drives captures through Config.Emit hour by hour.
type Replayer struct {
	cfg   Config
	now   func() time.Time
	sleep func(time.Duration)

	// buf accumulates the current hour's packets and is reused across
	// hours — the hot loop allocates only when an hour outgrows every
	// previous one.
	buf     []packet.Packet
	started bool
	curHour time.Time // start of the hour buf is accumulating

	// Virtual-clock anchors for paced mode: recorded instant baseRec
	// corresponds to wall instant baseWall; every later recorded
	// instant maps to baseWall + (rec-baseRec)/Warp.
	baseWall time.Time
	baseRec  time.Time
	unpaced  int // packets admitted since the last clock check

	wallStart time.Time // first emit, for the rate gauge
	packets   int64
	hours     int64
}

// New returns a Replayer. Config.Emit is required.
func New(cfg Config) *Replayer {
	if cfg.Emit == nil {
		panic("replay: Config.Emit is required")
	}
	r := &Replayer{
		cfg:   cfg,
		now:   cfg.Now,
		sleep: cfg.Sleep,
		buf:   make([]packet.Packet, 0, 4096),
	}
	if r.now == nil {
		r.now = time.Now
	}
	if r.sleep == nil {
		r.sleep = time.Sleep
	}
	return r
}

// Packets returns the number of packets emitted so far.
func (r *Replayer) Packets() int64 { return r.packets }

// Hours returns the number of hours emitted so far, gap fills included.
func (r *Replayer) Hours() int64 { return r.hours }

// End returns the start of the pseudo-hour after the last emitted hour —
// the instant to pass to Local.Finish (or use as the final barrier
// epoch) once replay completes. Zero if nothing was emitted.
func (r *Replayer) End() time.Time {
	if !r.started {
		return time.Time{}
	}
	return r.curHour
}

// Replay replays path — a single capture file (plain .pcap or .pcap.gz)
// or a directory of hourly captures — emitting every hour including the
// trailing partial one. A torn capture still emits everything read up to
// the tear before returning the (io.ErrUnexpectedEOF-wrapped) error, so
// the pipeline keeps whatever the damaged file could prove.
func (r *Replayer) Replay(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if fi.IsDir() {
		return r.ReplayDir(path)
	}
	return r.ReplayFile(path)
}

// ReplayDir replays every hourly capture in dir in chronological order,
// filling gaps between published hours with empty emits so the
// pipeline's hourly flow-end sweeps keep their cadence.
func (r *Replayer) ReplayDir(dir string) error {
	hours, err := pcapio.ListHours(dir)
	if err != nil {
		return err
	}
	if len(hours) == 0 {
		return fmt.Errorf("replay: no capture hours found in %s", dir)
	}
	for _, hour := range hours {
		if err := r.beginHour(hour); err != nil {
			return err
		}
		hr, err := pcapio.OpenHour(dir, hour)
		if err != nil {
			return err
		}
		readErr := r.readAll(hr)
		closeErr := hr.Close()
		if readErr != nil {
			// Keep the partial hour: everything before the tear is good.
			if ferr := r.flushTail(); ferr != nil {
				return ferr
			}
			return fmt.Errorf("replay %s: %w", pcapio.HourFileName(hour), readErr)
		}
		if closeErr != nil {
			return fmt.Errorf("replay %s: %w", pcapio.HourFileName(hour), closeErr)
		}
	}
	return r.flushTail()
}

// ReplayFile replays a single capture file, deriving hour boundaries
// from the packet timestamps themselves (a capture spanning several
// hours emits several batches, with empty fills for silent hours).
func (r *Replayer) ReplayFile(path string) error {
	hr, err := pcapio.OpenCapture(path)
	if err != nil {
		return err
	}
	readErr := r.readAll(hr)
	closeErr := hr.Close()
	if readErr != nil {
		if ferr := r.flushTail(); ferr != nil {
			return ferr
		}
		return fmt.Errorf("replay %s: %w", path, readErr)
	}
	if closeErr != nil {
		return fmt.Errorf("replay %s: %w", path, closeErr)
	}
	return r.flushTail()
}

// readAll streams packets from src into the hour buffer, flushing
// completed hours as timestamp boundaries pass.
func (r *Replayer) readAll(src *pcapio.HourReader) error {
	var p packet.Packet
	for {
		err := src.Next(&p)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		hour := p.Timestamp.Truncate(time.Hour)
		if !r.started || hour.After(r.curHour) {
			if err := r.beginHour(hour); err != nil {
				return err
			}
		}
		r.buf = append(r.buf, p)
		if r.unpaced++; r.unpaced >= paceEvery {
			r.unpaced = 0
			r.paceTo(p.Timestamp)
		}
	}
}

// beginHour positions the replayer at hour: the first call anchors the
// timeline; later calls flush the accumulated hour and emit empty fills
// for any skipped hours in between.
func (r *Replayer) beginHour(hour time.Time) error {
	if !r.started {
		r.started = true
		r.curHour = hour
		return nil
	}
	if hour.Before(r.curHour) {
		return fmt.Errorf("replay: capture hours out of order: %s after %s",
			hour.Format("2006-01-02T15"), r.curHour.Format("2006-01-02T15"))
	}
	for r.curHour.Before(hour) {
		if err := r.emitHour(); err != nil {
			return err
		}
	}
	return nil
}

// flushTail emits the trailing partially-accumulated hour.
func (r *Replayer) flushTail() error {
	if !r.started {
		return nil
	}
	return r.emitHour()
}

// emitHour hands the accumulated hour to Emit and advances one hour.
// In paced mode the hour is released no earlier than its recorded end
// maps to on the warped wall clock, so empty hours still take
// 1h/Warp of wall time — the cadence a live hourly poller would see.
func (r *Replayer) emitHour() error {
	r.paceTo(r.curHour.Add(time.Hour))
	err := r.cfg.Emit(r.buf, r.curHour)
	n := int64(len(r.buf))
	r.packets += n
	metPackets.Add(n)
	r.hours++
	metHours.Inc()
	r.buf = r.buf[:0]
	r.curHour = r.curHour.Add(time.Hour)
	if r.wallStart.IsZero() {
		r.wallStart = time.Now()
	} else if elapsed := time.Since(r.wallStart).Seconds(); elapsed > 0 {
		metRate.Set(float64(r.packets) / elapsed)
	}
	return err
}

// paceTo blocks until the recorded instant rec is due on the warped
// wall clock. A no-op at Warp == 0. The first call anchors the mapping.
func (r *Replayer) paceTo(rec time.Time) {
	if r.cfg.Warp <= 0 {
		return
	}
	if r.baseWall.IsZero() {
		r.baseWall = r.now()
		r.baseRec = rec
		return
	}
	target := r.baseWall.Add(time.Duration(float64(rec.Sub(r.baseRec)) / r.cfg.Warp))
	if d := target.Sub(r.now()); d > 0 {
		metWarpLag.Set(0)
		r.sleep(d)
	} else {
		metWarpLag.Set((-d).Seconds())
	}
}
