// Package device catalogs the IoT device population (vendors, types,
// models, firmware, service banners, TCP/IP stack profiles), the IoT
// malware families that infect them, and the scanning tools run by non-IoT
// hosts. The catalog is the ground truth the world simulator instantiates;
// the detection pipeline never reads it directly — it only sees packets
// and probe responses.
package device

import (
	"math/rand"
	"strings"
)

// Type is the coarse device category reported by the CTI feed.
type Type string

// Device categories observed on consumer and SOHO networks.
const (
	TypeRouter  Type = "Router"
	TypeCamera  Type = "IP Camera"
	TypeDVR     Type = "DVR"
	TypeNAS     Type = "NAS"
	TypePrinter Type = "Printer"
	TypeTVBox   Type = "TV Box"
	TypeModem   Type = "Modem/CPE"
	TypeDesktop Type = "Desktop (non-IoT)"
	TypeServer  Type = "Server (non-IoT)"
)

// StackProfile captures the TCP/IP stack fingerprint of a device family.
// These differences (TTL, window, MSS, option usage, ToS) are precisely the
// signal the paper's random forest exploits in passive traffic.
type StackProfile struct {
	TTL       uint8
	Windows   []uint16
	MSS       uint16
	TOS       uint8
	WScale    uint8
	UseWScale bool
	UseSACKOK bool
	UseTS     bool
	UseNOP    bool
}

// ServiceTemplate describes one network service a device model exposes.
// The banner template may reference {model} and {fw}; Textual marks
// banners that carry device-identifying text (the ~3 % the paper can mine
// for vendor/model/firmware).
type ServiceTemplate struct {
	Port     uint16
	Protocol string
	Template string
	Textual  bool
}

// Model is one device model in the catalog.
type Model struct {
	Vendor    string
	Type      Type
	Name      string
	Firmwares []string
	// Weight is the model's relative share of the infected population,
	// tuned to reproduce Table V vendor ordering (MikroTik > Aposonic >
	// Foscam > ZTE > Hikvision > tail).
	Weight   float64
	Services []ServiceTemplate
	Stack    StackProfile
}

var embeddedLinux = StackProfile{
	TTL: 64, Windows: []uint16{5840, 5720, 14600}, MSS: 1460, UseNOP: true,
}

var busyBoxTiny = StackProfile{
	TTL: 64, Windows: []uint16{4380, 5808}, MSS: 1400,
}

var rtosStack = StackProfile{
	TTL: 255, Windows: []uint16{4096, 8192}, MSS: 1380,
}

// Catalog is the IoT device model table.
var Catalog = []Model{
	{
		Vendor: "MikroTik", Type: TypeRouter, Name: "RB941-2nD hAP lite",
		Firmwares: []string{"6.42.1", "6.45.9", "6.40.5"},
		Weight:    34.0,
		Services: []ServiceTemplate{
			{Port: 21, Protocol: "ftp", Template: "220 {model} FTP server (MikroTik {fw}) ready", Textual: true},
			{Port: 22, Protocol: "ssh", Template: "SSH-2.0-ROSSSH", Textual: false},
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: mikrotik RouterOS {fw}\r\n\r\n<title>RouterOS router configuration page</title>", Textual: true},
			{Port: 8291, Protocol: "winbox", Template: "\x00\x00winbox", Textual: false},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "Aposonic", Type: TypeDVR, Name: "A-S0801R8 DVR",
		Firmwares: []string{"2.4.6", "3.1.0"},
		Weight:    6.2,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: thttpd/2.25b\r\n\r\n<title>Aposonic {model} WEB SERVICE</title>", Textual: true},
			{Port: 554, Protocol: "rtsp", Template: "RTSP/1.0 200 OK\r\nServer: Aposonic Rtsp Server {fw}", Textual: true},
			{Port: 23, Protocol: "telnet", Template: "\r\n{model} login: ", Textual: true},
		},
		Stack: busyBoxTiny,
	},
	{
		Vendor: "Foscam", Type: TypeCamera, Name: "FI9821P",
		Firmwares: []string{"1.11.1.8", "2.11.1.5"},
		Weight:    4.1,
		Services: []ServiceTemplate{
			{Port: 88, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: FoscamCamera/{fw}\r\n\r\n<title>IPCam Client</title>", Textual: true},
			{Port: 443, Protocol: "https", Template: "HTTP/1.1 200 OK\r\nServer: FoscamCamera/{fw}", Textual: true},
		},
		Stack: busyBoxTiny,
	},
	{
		Vendor: "ZTE", Type: TypeModem, Name: "ZXHN F660",
		Firmwares: []string{"V5.2.0", "V6.0.1"},
		Weight:    2.4,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: Mini web server 1.0 ZTE corp 2005.\r\n\r\n<title>{model}</title>", Textual: true},
			{Port: 7547, Protocol: "cwmp", Template: "HTTP/1.1 404 Not Found\r\nServer: ZTE CPE {fw}", Textual: true},
			{Port: 23, Protocol: "telnet", Template: "\r\nF660 login: ", Textual: true},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "Hikvision", Type: TypeCamera, Name: "DS-2CD2032-I",
		Firmwares: []string{"V5.4.5", "V5.3.0"},
		Weight:    2.1,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 401 Unauthorized\r\nServer: App-webs/\r\nWWW-Authenticate: Digest realm=\"DS-2CD2032-I\"\r\n\r\n", Textual: true},
			{Port: 554, Protocol: "rtsp", Template: "RTSP/1.0 401 Unauthorized\r\nServer: HikvisionRtspServer {fw}", Textual: true},
			{Port: 8000, Protocol: "sdk", Template: "", Textual: false},
		},
		Stack: busyBoxTiny,
	},
	{
		Vendor: "Dahua", Type: TypeCamera, Name: "IPC-HDW4431C",
		Firmwares: []string{"2.622", "2.800"},
		Weight:    1.7,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: DahuaHttp\r\n\r\n<title>WEB SERVICE</title>", Textual: true},
			{Port: 554, Protocol: "rtsp", Template: "RTSP/1.0 401 Unauthorized\r\nServer: Dahua Rtsp Server", Textual: true},
		},
		Stack: busyBoxTiny,
	},
	{
		Vendor: "D-Link", Type: TypeRouter, Name: "DIR-615",
		Firmwares: []string{"20.07", "20.12"},
		Weight:    1.5,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: Linux, HTTP/1.1, DIR-615 Ver {fw}\r\n\r\n<title>D-LINK SYSTEMS, INC. | WIRELESS ROUTER</title>", Textual: true},
			{Port: 23, Protocol: "telnet", Template: "\r\nDIR-615 login: ", Textual: true},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "TP-Link", Type: TypeRouter, Name: "TL-WR841N",
		Firmwares: []string{"3.16.9", "3.17.1"},
		Weight:    1.4,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 401 Unauthorized\r\nServer: Router Webserver\r\nWWW-Authenticate: Basic realm=\"TP-LINK Wireless N Router WR841N\"\r\n\r\n", Textual: true},
			{Port: 22, Protocol: "ssh", Template: "SSH-2.0-dropbear_2012.55", Textual: false},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "Huawei", Type: TypeModem, Name: "HG532e",
		Firmwares: []string{"V100R001", "V100R002"},
		Weight:    1.3,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: HuaweiHomeGateway\r\n\r\n<title>HG532e Home Gateway</title>", Textual: true},
			{Port: 37215, Protocol: "upnp", Template: "", Textual: false},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "Netgear", Type: TypeRouter, Name: "R7000 Nighthawk",
		Firmwares: []string{"1.0.9.88", "1.0.11.100"},
		Weight:    1.1,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 401 Unauthorized\r\nWWW-Authenticate: Basic realm=\"NETGEAR R7000\"\r\n\r\n", Textual: true},
			{Port: 5000, Protocol: "upnp", Template: "HTTP/1.1 200 OK\r\nServer: R7000 UPnP/1.0", Textual: true},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "Xiongmai", Type: TypeDVR, Name: "XM JPEG DVR",
		Firmwares: []string{"4.02.R11", "4.03.R11"},
		Weight:    1.6,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: uc-httpd 1.0.0\r\n\r\n<title>NETSurveillance WEB</title>", Textual: true},
			{Port: 23, Protocol: "telnet", Template: "\r\nLocalHost login: ", Textual: false},
		},
		Stack: busyBoxTiny,
	},
	{
		Vendor: "AVTECH", Type: TypeDVR, Name: "AVC787",
		Firmwares: []string{"1017", "1022"},
		Weight:    0.9,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: Linux/2.x UPnP/1.0 Avtech/1.0\r\n\r\n<title>--- VIDEO WEB SERVER ---</title>", Textual: true},
		},
		Stack: busyBoxTiny,
	},
	{
		Vendor: "Axis", Type: TypeCamera, Name: "Q6115-E PTZ Dome",
		Firmwares: []string{"6.20.1.2", "6.30.1"},
		Weight:    0.7,
		Services: []ServiceTemplate{
			{Port: 21, Protocol: "ftp", Template: "220 AXIS {model} Network Camera {fw} (2016) ready.", Textual: true},
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: Apache\r\n\r\n<title>AXIS</title>", Textual: true},
			{Port: 554, Protocol: "rtsp", Template: "RTSP/1.0 200 OK\r\nServer: GStreamer RTSP server", Textual: false},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "Synology", Type: TypeNAS, Name: "DS218j",
		Firmwares: []string{"DSM 6.2.2", "DSM 6.1.7"},
		Weight:    0.5,
		Services: []ServiceTemplate{
			{Port: 5000, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: nginx\r\n\r\n<title>Synology DiskStation</title>", Textual: true},
			{Port: 22, Protocol: "ssh", Template: "SSH-2.0-OpenSSH_7.4", Textual: false},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "HP", Type: TypePrinter, Name: "LaserJet P2055dn",
		Firmwares: []string{"20130415", "20151023"},
		Weight:    0.4,
		Services: []ServiceTemplate{
			{Port: 631, Protocol: "ipp", Template: "HTTP/1.1 200 OK\r\nServer: HP HTTP Server; HP LaserJet P2055dn", Textual: true},
			{Port: 9100, Protocol: "jetdirect", Template: "", Textual: false},
		},
		Stack: rtosStack,
	},
	{
		Vendor: "Generic Android", Type: TypeTVBox, Name: "H96 Max TV Box",
		Firmwares: []string{"7.1.2", "9.0"},
		Weight:    3.5,
		Services: []ServiceTemplate{
			{Port: 5555, Protocol: "adb", Template: "CNXN\x00\x00\x00\x01device::H96 Max", Textual: true},
		},
		Stack: StackProfile{TTL: 64, Windows: []uint16{65535}, MSS: 1460, UseWScale: true, WScale: 8, UseSACKOK: true, UseTS: true, UseNOP: true},
	},
	{
		Vendor: "GPON Generic", Type: TypeModem, Name: "GPON Home Router",
		Firmwares: []string{"1.0", "2.0"},
		Weight:    1.8,
		Services: []ServiceTemplate{
			{Port: 8080, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: Boa/0.94.14rc21\r\n\r\n<title>GPON Home Gateway</title>", Textual: true},
			{Port: 7547, Protocol: "cwmp", Template: "", Textual: false},
		},
		Stack: busyBoxTiny,
	},
	{
		Vendor: "Vivotek", Type: TypeCamera, Name: "FD8169A",
		Firmwares: []string{"0100d", "0102b"},
		Weight:    0.6,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 401 Unauthorized\r\nServer: Boa/0.94.14rc21\r\nWWW-Authenticate: Basic realm=\"streaming_server\"\r\n\r\n<title>VIVOTEK {model}</title>", Textual: true},
			{Port: 554, Protocol: "rtsp", Template: "RTSP/1.0 200 OK\r\nServer: Vivotek Rtsp Server {fw}", Textual: true},
		},
		Stack: busyBoxTiny,
	},
	{
		Vendor: "Ubiquiti", Type: TypeRouter, Name: "NanoStation M5",
		Firmwares: []string{"XM.6.1.7", "XW.6.2.0"},
		Weight:    0.8,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: lighttpd/1.4.31\r\n\r\n<title>airOS</title>", Textual: true},
			{Port: 22, Protocol: "ssh", Template: "SSH-2.0-dropbear_2015.67", Textual: false},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "Samsung", Type: TypeDVR, Name: "SRD-1676D",
		Firmwares: []string{"1.04", "1.12"},
		Weight:    0.5,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: Cross Web Server\r\n\r\n<title>iPolis DVR {model}</title>", Textual: true},
			{Port: 554, Protocol: "rtsp", Template: "RTSP/1.0 200 OK\r\nServer: iPolis Rtsp Server", Textual: true},
		},
		Stack: busyBoxTiny,
	},
	{
		Vendor: "Zyxel", Type: TypeModem, Name: "P-660HN-T1A",
		Firmwares: []string{"V3.40", "V3.70"},
		Weight:    0.7,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 401 Unauthorized\r\nWWW-Authenticate: Basic realm=\"P-660HN-T1A\"\r\nServer: RomPager/4.07 UPnP/1.0\r\n\r\n", Textual: true},
			{Port: 23, Protocol: "telnet", Template: "\r\nPassword: ", Textual: false},
		},
		Stack: rtosStack,
	},
	{
		Vendor: "QNAP", Type: TypeNAS, Name: "TS-231P",
		Firmwares: []string{"4.3.3", "4.3.6"},
		Weight:    0.4,
		Services: []ServiceTemplate{
			{Port: 8080, Protocol: "http", Template: "HTTP/1.1 200 OK\r\nServer: http server 1.0\r\n\r\n<title>QNAP Turbo NAS</title>", Textual: true},
			{Port: 22, Protocol: "ssh", Template: "SSH-2.0-OpenSSH_5.8", Textual: false},
		},
		Stack: embeddedLinux,
	},
	{
		Vendor: "Panasonic", Type: TypeCamera, Name: "BL-C111A",
		Firmwares: []string{"3.14", "4.60"},
		Weight:    0.4,
		Services: []ServiceTemplate{
			{Port: 80, Protocol: "http", Template: "HTTP/1.1 401 Unauthorized\r\nWWW-Authenticate: Basic realm=\"Panasonic network device\"\r\n\r\n", Textual: true},
		},
		Stack: busyBoxTiny,
	},
}

// Render substitutes {model} and {fw} into a banner template.
func (s *ServiceTemplate) Render(m *Model, fw string) string {
	out := strings.ReplaceAll(s.Template, "{model}", m.Name)
	return strings.ReplaceAll(out, "{fw}", fw)
}

// PickModel samples a device model from the catalog by weight.
func PickModel(rng *rand.Rand) *Model {
	total := catalogWeight()
	u := rng.Float64() * total
	cum := 0.0
	for i := range Catalog {
		cum += Catalog[i].Weight
		if u < cum {
			return &Catalog[i]
		}
	}
	return &Catalog[len(Catalog)-1]
}

func catalogWeight() float64 {
	var t float64
	for i := range Catalog {
		t += Catalog[i].Weight
	}
	return t
}
