package device

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCatalogSane(t *testing.T) {
	seen := map[string]bool{}
	for i := range Catalog {
		m := &Catalog[i]
		key := m.Vendor + "/" + m.Name
		if seen[key] {
			t.Errorf("duplicate model %s", key)
		}
		seen[key] = true
		if m.Weight <= 0 {
			t.Errorf("%s: non-positive weight", key)
		}
		if len(m.Firmwares) == 0 {
			t.Errorf("%s: no firmware versions", key)
		}
		if len(m.Services) == 0 {
			t.Errorf("%s: no services", key)
		}
		if m.Stack.TTL == 0 || len(m.Stack.Windows) == 0 {
			t.Errorf("%s: incomplete stack profile", key)
		}
		hasTextual := false
		for _, s := range m.Services {
			if s.Textual {
				hasTextual = true
			}
		}
		if !hasTextual {
			t.Errorf("%s: no textual banner (unfingerprintable vendor)", key)
		}
	}
}

func TestRenderSubstitution(t *testing.T) {
	m := &Catalog[0] // MikroTik
	var ftp *ServiceTemplate
	for i := range m.Services {
		if m.Services[i].Port == 21 {
			ftp = &m.Services[i]
		}
	}
	if ftp == nil {
		t.Fatal("MikroTik FTP service missing")
	}
	got := ftp.Render(m, "6.45.9")
	if !strings.Contains(got, m.Name) || !strings.Contains(got, "6.45.9") {
		t.Errorf("Render() = %q: placeholders not substituted", got)
	}
	if strings.Contains(got, "{model}") || strings.Contains(got, "{fw}") {
		t.Errorf("Render() = %q: leftover placeholders", got)
	}
}

func TestPickModelWeightOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[PickModel(rng).Vendor]++
	}
	// Table V vendor ordering: MikroTik > Aposonic > Foscam > ZTE > Hikvision.
	order := []string{"MikroTik", "Aposonic", "Foscam", "ZTE", "Hikvision"}
	for i := 0; i+1 < len(order); i++ {
		if counts[order[i]] <= counts[order[i+1]] {
			t.Errorf("vendor ordering broken: %s(%d) <= %s(%d)",
				order[i], counts[order[i]], order[i+1], counts[order[i+1]])
		}
	}
	if frac := float64(counts["MikroTik"]) / n; frac < 0.4 || frac > 0.75 {
		t.Errorf("MikroTik share = %.3f, want dominant", frac)
	}
}

func TestFamiliesSane(t *testing.T) {
	var total float64
	for i := range Families {
		f := &Families[i]
		total += f.Weight
		if len(f.Ports) == 0 {
			t.Errorf("%s: no ports", f.Name)
		}
		if f.RateMin <= 0 || f.RateMax < f.RateMin {
			t.Errorf("%s: bad rate range [%f,%f]", f.Name, f.RateMin, f.RateMax)
		}
		// IoT malware scans slowly compared to research tooling.
		if f.RateMax > 1000 {
			t.Errorf("%s: rate too high for an IoT device", f.Name)
		}
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("family weights sum to %.3f, want 1.0", total)
	}
}

func TestAggregatePortShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	counts := map[uint16]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		f := PickFamily(rng)
		counts[f.PickPort(rng)]++
	}
	// Telnet (23) must be the top targeted port, as in Table V.
	top, topCount := uint16(0), 0
	for port, c := range counts {
		if c > topCount {
			top, topCount = port, c
		}
	}
	if top != 23 {
		t.Errorf("top port = %d (count %d), want 23", top, topCount)
	}
	for _, port := range []uint16{8080, 80, 81, 5555} {
		if counts[port] == 0 {
			t.Errorf("port %d never targeted", port)
		}
	}
	if counts[8080] < counts[81] || counts[8080] < counts[5555] {
		t.Errorf("port shape broken: %v", counts)
	}
}

func TestMiraiFingerprint(t *testing.T) {
	var mirai *MalwareFamily
	for i := range Families {
		if Families[i].Name == "Mirai" {
			mirai = &Families[i]
		}
	}
	if mirai == nil {
		t.Fatal("Mirai missing from family table")
	}
	if !mirai.SeqEqualsDst {
		t.Error("Mirai must carry the seq==dstIP fingerprint")
	}
	if !mirai.MiraiLineage {
		t.Error("Mirai must be in the Mirai lineage")
	}
	lineage := 0.0
	for i := range Families {
		if Families[i].MiraiLineage {
			lineage += Families[i].Weight
		}
	}
	if lineage < 0.5 {
		t.Errorf("Mirai lineage share = %.2f, want majority (GreyNoise tags most IoT infections Mirai*)", lineage)
	}
}

func TestNonIoTProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := range NonIoTProfiles {
		p := &NonIoTProfiles[i]
		if p.RateMin < 50 {
			t.Errorf("%s: non-IoT scanners should stay faster than most IoT malware", p.Tool)
		}
		if len(p.Ports) == 0 {
			t.Errorf("%s: no ports", p.Tool)
		}
		port := p.PickPort(rng)
		found := false
		for _, pw := range p.Ports {
			if pw.Port == port {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: PickPort returned unlisted port %d", p.Tool, port)
		}
	}
	tools := map[ScanTool]bool{}
	for i := 0; i < 1000; i++ {
		tools[PickNonIoTProfile(rng).Tool] = true
	}
	if len(tools) < 4 {
		t.Errorf("only %d tools sampled, want variety", len(tools))
	}
}

func TestStackProfilesDiffer(t *testing.T) {
	// The classifier needs IoT and non-IoT stacks to be distinguishable:
	// every non-IoT profile uses richer TCP options than the tiny
	// embedded stacks.
	for i := range NonIoTProfiles {
		s := NonIoTProfiles[i].Stack
		if !s.UseWScale && !s.UseTS && !s.UseSACKOK {
			t.Errorf("%s: non-IoT stack should negotiate modern TCP options", NonIoTProfiles[i].Tool)
		}
	}
	if busyBoxTiny.UseWScale || busyBoxTiny.UseTS {
		t.Error("tiny embedded stack should not negotiate modern options")
	}
}
