package registry

// Country describes one country in the synthetic Internet registry,
// including the relative density of infected IoT devices hosted there. The
// infection weights are tuned so a world snapshot reproduces the shape of
// Table V of the paper (China 43.5 %, India 10.3 %, Brazil 8.5 %, Iran
// 5.5 %, Mexico 3.5 %, long tail after).
type Country struct {
	Name      string
	Code      string
	Continent string
	// InfectionWeight is the relative share of infected IoT devices.
	InfectionWeight float64
	// NonIoTWeight is the relative share of non-IoT scanning hosts
	// (bulletproof hosting, compromised servers); deliberately flatter.
	NonIoTWeight float64
	Lat, Lon     float64
	Cities       []string
}

// Countries is the synthetic registry's country table.
var Countries = []Country{
	{"China", "CN", "Asia", 43.46, 18.0, 35.0, 105.0, []string{"Beijing", "Shanghai", "Shenzhen", "Chengdu", "Shenyang"}},
	{"India", "IN", "Asia", 10.32, 6.0, 21.0, 78.0, []string{"Mumbai", "Delhi", "Bangalore", "Chennai"}},
	{"Brazil", "BR", "South America", 8.48, 5.0, -10.0, -55.0, []string{"Sao Paulo", "Rio de Janeiro", "Brasilia"}},
	{"Iran", "IR", "Asia", 5.51, 2.0, 32.0, 53.0, []string{"Tehran", "Mashhad", "Isfahan"}},
	{"Mexico", "MX", "North America", 3.52, 2.0, 23.0, -102.0, []string{"Mexico City", "Monterrey", "Guadalajara"}},
	{"Vietnam", "VN", "Asia", 3.20, 1.5, 16.0, 106.0, []string{"Hanoi", "Ho Chi Minh City"}},
	{"Indonesia", "ID", "Asia", 2.90, 1.5, -5.0, 120.0, []string{"Jakarta", "Surabaya"}},
	{"South Korea", "KR", "Asia", 2.60, 2.0, 36.0, 128.0, []string{"Seoul", "Busan"}},
	{"Taiwan", "TW", "Asia", 2.30, 1.5, 23.7, 121.0, []string{"Taipei", "Kaohsiung"}},
	{"Thailand", "TH", "Asia", 2.10, 1.0, 15.0, 101.0, []string{"Bangkok", "Chiang Mai"}},
	{"Russia", "RU", "Europe", 2.40, 6.0, 60.0, 100.0, []string{"Moscow", "Saint Petersburg", "Novosibirsk"}},
	{"Turkey", "TR", "Europe", 1.60, 1.5, 39.0, 35.0, []string{"Istanbul", "Ankara"}},
	{"Ukraine", "UA", "Europe", 1.30, 2.5, 49.0, 32.0, []string{"Kyiv", "Kharkiv"}},
	{"Italy", "IT", "Europe", 1.10, 1.0, 42.8, 12.8, []string{"Rome", "Milan"}},
	{"Poland", "PL", "Europe", 0.90, 1.0, 52.0, 20.0, []string{"Warsaw", "Krakow"}},
	{"Romania", "RO", "Europe", 0.80, 1.2, 46.0, 25.0, []string{"Bucharest", "Cluj"}},
	{"Czech Republic", "CZ", "Europe", 0.55, 0.5, 49.8, 15.5, []string{"Prague", "Brno"}},
	{"United States", "US", "North America", 1.80, 14.0, 38.0, -97.0, []string{"New York", "Dallas", "Los Angeles", "Chicago", "San Antonio"}},
	{"Canada", "CA", "North America", 0.25, 1.5, 56.0, -106.0, []string{"Toronto", "Montreal"}},
	{"Argentina", "AR", "South America", 1.40, 0.8, -34.0, -64.0, []string{"Buenos Aires", "Cordoba"}},
	{"Colombia", "CO", "South America", 0.95, 0.5, 4.0, -72.0, []string{"Bogota", "Medellin"}},
	{"Egypt", "EG", "Africa", 1.70, 0.7, 27.0, 30.0, []string{"Cairo", "Alexandria"}},
	{"South Africa", "ZA", "Africa", 1.30, 0.8, -29.0, 24.0, []string{"Johannesburg", "Cape Town"}},
	{"Nigeria", "NG", "Africa", 1.10, 0.5, 10.0, 8.0, []string{"Lagos", "Abuja"}},
	{"Netherlands", "NL", "Europe", 0.17, 8.0, 52.5, 5.75, []string{"Amsterdam", "Rotterdam"}},
	{"Germany", "DE", "Europe", 0.80, 5.0, 51.0, 9.0, []string{"Berlin", "Frankfurt"}},
	{"France", "FR", "Europe", 0.70, 3.0, 46.0, 2.0, []string{"Paris", "Lyon"}},
	{"United Kingdom", "GB", "Europe", 0.60, 2.5, 54.0, -2.0, []string{"London", "Manchester"}},
	{"Japan", "JP", "Asia", 0.90, 2.0, 36.0, 138.0, []string{"Tokyo", "Osaka"}},
	{"Australia", "AU", "Oceania", 0.45, 1.0, -27.0, 133.0, []string{"Sydney", "Melbourne"}},
	{"Philippines", "PH", "Asia", 0.75, 0.5, 13.0, 122.0, []string{"Manila", "Cebu"}},
	{"Pakistan", "PK", "Asia", 0.70, 0.5, 30.0, 70.0, []string{"Karachi", "Lahore"}},
	{"Bangladesh", "BD", "Asia", 0.60, 0.3, 24.0, 90.0, []string{"Dhaka", "Chittagong"}},
	{"Malaysia", "MY", "Asia", 0.50, 0.5, 2.5, 112.5, []string{"Kuala Lumpur"}},
	{"Venezuela", "VE", "South America", 0.45, 0.3, 8.0, -66.0, []string{"Caracas"}},
	{"Spain", "ES", "Europe", 0.40, 1.0, 40.0, -4.0, []string{"Madrid", "Barcelona"}},
	{"Greece", "GR", "Europe", 0.30, 0.3, 39.0, 22.0, []string{"Athens"}},
	{"Bulgaria", "BG", "Europe", 0.30, 0.8, 43.0, 25.0, []string{"Sofia"}},
	{"Hungary", "HU", "Europe", 0.25, 0.4, 47.0, 20.0, []string{"Budapest"}},
	{"Kenya", "KE", "Africa", 0.35, 0.2, 1.0, 38.0, []string{"Nairobi"}},
	{"Morocco", "MA", "Africa", 0.30, 0.2, 32.0, -5.0, []string{"Casablanca"}},
	{"Tunisia", "TN", "Africa", 0.25, 0.2, 34.0, 9.0, []string{"Tunis"}},
	{"Chile", "CL", "South America", 0.30, 0.3, -30.0, -71.0, []string{"Santiago"}},
	{"Peru", "PE", "South America", 0.28, 0.2, -10.0, -76.0, []string{"Lima"}},
	{"Ecuador", "EC", "South America", 0.22, 0.2, -2.0, -77.5, []string{"Quito"}},
}

// ISP describes one autonomous system inside a country.
type ISP struct {
	ASN int
	// Name of the hosting ISP / organization.
	Name string
	// Weight is the relative share of that country's infected devices.
	Weight float64
	// RDNSSuffix is the reverse-DNS zone for the ISP's customer pools.
	RDNSSuffix string
}

// ISPTable maps country code → ISPs. The big five from Table V carry the
// paper's approximate within-country shares (e.g. AS4134 ≈ 21 % of all
// infections given China ≈ 43 %).
var ISPTable = map[string][]ISP{
	"CN": {
		{4134, "China Telecom", 0.49, "dyn.chinatelecom.com.cn"},
		{4837, "Unicom Liaoning", 0.38, "ln.chinaunicom.cn"},
		{9808, "China Mobile", 0.08, "gd.chinamobile.com"},
		{4538, "CERNET", 0.05, "edu.cn"},
	},
	"IN": {
		{9829, "BSNL", 0.52, "bsnl.in"},
		{45609, "Bharti Airtel", 0.28, "airtelbroadband.in"},
		{17488, "Hathway", 0.20, "hathway.com"},
	},
	"BR": {
		{27699, "Vivo", 0.59, "dsl.telesp.net.br"},
		{28573, "Claro BR", 0.26, "virtua.com.br"},
		{18881, "Oi Velox", 0.15, "veloxzone.com.br"},
	},
	"IR": {
		{58224, "TCI Iran", 0.55, "dsl.tci.ir"},
		{31549, "Aria Shatel", 0.45, "shatel.ir"},
	},
	"MX": {
		{58244, "Axtel", 0.86, "axtel.net"},
		{8151, "Uninet Telmex", 0.14, "prod-infinitum.com.mx"},
	},
	"US": {
		{7922, "Comcast", 0.40, "comcast.net"},
		{701, "Verizon", 0.30, "verizon.net"},
		{20115, "Charter", 0.30, "charter.com"},
	},
	"CZ": {
		{5610, "O2 Czech Republic", 0.60, "broadband.o2.cz"},
		{16019, "Vodafone Czech", 0.40, "vodafone.cz"},
	},
	"NL": {
		{1136, "KPN", 0.50, "ip.kpn.nl"},
		{49981, "WorldStream", 0.50, "worldstream.nl"},
	},
	"RU": {
		{12389, "Rostelecom", 0.60, "rt.ru"},
		{8402, "Corbina", 0.40, "corbina.ru"},
	},
}

// genericISPs supplies ASNs for countries without a dedicated table entry.
// The ASN is synthesized per country from this base so it stays stable.
var genericISPs = []ISP{
	{0, "National Telecom", 0.55, "dyn.nattel.example"},
	{0, "Metro Broadband", 0.30, "cust.metrobb.example"},
	{0, "Regional Cable", 0.15, "cable.region.example"},
}

// Sector labels for hosting organizations. Critical sectors are rare but
// alarming (Table V reports Education 649, Manufacturing 240, Government
// 184, Banking 80, Medical 79 out of ~406 k infections).
const (
	SectorResidential   = "Residential"
	SectorEducation     = "Education"
	SectorManufacturing = "Manufacturing"
	SectorGovernment    = "Government"
	SectorBanking       = "Banking"
	SectorMedical       = "Medical"
)

// sectorWeights is the probability that an allocation belongs to each
// critical sector (the remainder is residential/telecom).
var sectorWeights = []struct {
	Sector string
	Weight float64
}{
	{SectorEducation, 0.00165},
	{SectorManufacturing, 0.00061},
	{SectorGovernment, 0.00047},
	{SectorBanking, 0.00020},
	{SectorMedical, 0.00020},
}

// ResearchOrg is a known-benign Internet measurement organization. The
// annotate module labels their scanners Benign from rDNS, mirroring the
// paper ("University of Michigan, Shodan, Censys, Rapid7, etc.").
type ResearchOrg struct {
	Name       string
	RDNSSuffix string
	Prefix     string // CIDR of the org's scanner pool
}

// ResearchOrgs is the registry of legitimate scanning organizations.
var ResearchOrgs = []ResearchOrg{
	{"Censys (University of Michigan)", "census.umich.edu", "141.212.120.0/24"},
	{"Shodan", "census.shodan.io", "71.6.135.0/24"},
	{"Rapid7 Project Sonar", "sonar.labs.rapid7.com", "71.6.233.0/24"},
	{"ShadowServer Foundation", "scan.shadowserver.org", "184.105.139.0/24"},
	{"BinaryEdge", "binaryedge.ninja", "185.142.236.0/24"},
	{"Stretchoid", "stretchoid.com", "162.142.125.0/24"},
}
