// Package registry implements a synthetic Internet registry: prefix
// allocations with country, ASN, ISP, hosting sector, WHOIS contact, and
// reverse-DNS zones. It substitutes for the MaxMind GeoIP dataset, IP
// WHOIS, and reverse DNS used by eX-IoT's annotate module. Both the world
// simulator (placing hosts) and the enrichment module (looking hosts up)
// consult the same registry — mirroring reality, where the registry
// describes the Internet regardless of which hosts are compromised.
package registry

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"exiot/internal/packet"
)

// Config controls registry construction.
type Config struct {
	// Seed drives the deterministic allocation layout.
	Seed int64
	// Blocks is the number of /16 allocations to create (default 1024).
	Blocks int
}

// sectorSlice tags one /24 inside an allocation as belonging to a critical
// sector organization.
type sectorSlice struct {
	Sector string
	Org    string
}

// Allocation is one /16 registry entry.
type Allocation struct {
	Prefix     packet.Prefix
	Country    *Country
	ISP        ISP
	AbuseEmail string

	// sectorSlices maps the third octet to a critical-sector org carved
	// out of the ISP block (university, hospital, ministry, ...).
	sectorSlices map[byte]sectorSlice
}

// Info is the fully resolved registry view of a single IP address — what
// MaxMind + WHOIS + rDNS would jointly return.
type Info struct {
	IP          packet.IP
	Country     string
	CountryCode string
	Continent   string
	City        string
	Lat, Lon    float64
	ASN         int
	ISP         string
	Org         string
	Sector      string
	Domain      string
	AbuseEmail  string
	RDNS        string
	// Research marks scanners of known measurement organizations
	// (Censys, Shodan, ...) that the annotate module labels Benign.
	Research    bool
	ResearchOrg string
}

// Registry is the immutable synthetic Internet registry.
type Registry struct {
	allocs    []Allocation // sorted by prefix base
	byCountry map[string][]int
	research  []researchAlloc

	infectedCum []float64 // cumulative InfectionWeight per country index
	nonIoTCum   []float64
}

type researchAlloc struct {
	Prefix packet.Prefix
	Org    ResearchOrg
}

// Build deterministically constructs a registry from cfg.
func Build(cfg Config) *Registry {
	if cfg.Blocks <= 0 {
		cfg.Blocks = 1024
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	r := &Registry{byCountry: make(map[string][]int, len(Countries))}
	for _, ro := range ResearchOrgs {
		r.research = append(r.research, researchAlloc{
			Prefix: packet.MustParsePrefix(ro.Prefix),
			Org:    ro,
		})
	}

	// Candidate /16 bases: everything routable except the telescope /8
	// (10.0.0.0/8), loopback, and multicast+.
	var bases []packet.IP
	for a := 1; a <= 223; a++ {
		if a == 10 || a == 127 {
			continue
		}
		for b := 0; b < 256; b++ {
			bases = append(bases, packet.MakeIP(byte(a), byte(b), 0, 0))
		}
	}
	rng.Shuffle(len(bases), func(i, j int) { bases[i], bases[j] = bases[j], bases[i] })

	// Combined weight decides how many blocks each country receives.
	var totalW float64
	for i := range Countries {
		totalW += Countries[i].InfectionWeight + Countries[i].NonIoTWeight
	}

	bi := 0
	nextBase := func() (packet.Prefix, bool) {
		for bi < len(bases) {
			p := packet.MakePrefix(bases[bi], 16)
			bi++
			overlap := false
			for _, ra := range r.research {
				if p.Contains(ra.Prefix.Base) {
					overlap = true
					break
				}
			}
			if !overlap {
				return p, true
			}
		}
		return packet.Prefix{}, false
	}

	for ci := range Countries {
		c := &Countries[ci]
		share := (c.InfectionWeight + c.NonIoTWeight) / totalW
		n := int(share*float64(cfg.Blocks) + 0.5)
		if n < 1 {
			n = 1
		}
		isps := ispsFor(c)
		for k := 0; k < n; k++ {
			pfx, ok := nextBase()
			if !ok {
				break
			}
			isp := pickISP(isps, rng)
			alloc := Allocation{
				Prefix:     pfx,
				Country:    c,
				ISP:        isp,
				AbuseEmail: "abuse@" + domainOf(isp.RDNSSuffix),
			}
			// Carve critical-sector /24s out of the block.
			for s := 0; s < 256; s++ {
				u := rng.Float64()
				cum := 0.0
				for _, sw := range sectorWeights {
					cum += sw.Weight
					if u < cum {
						if alloc.sectorSlices == nil {
							alloc.sectorSlices = make(map[byte]sectorSlice)
						}
						alloc.sectorSlices[byte(s)] = sectorSlice{
							Sector: sw.Sector,
							Org:    sectorOrgName(sw.Sector, c, rng),
						}
						break
					}
				}
			}
			r.allocs = append(r.allocs, alloc)
		}
	}

	sort.Slice(r.allocs, func(i, j int) bool { return r.allocs[i].Prefix.Base < r.allocs[j].Prefix.Base })
	for i := range r.allocs {
		code := r.allocs[i].Country.Code
		r.byCountry[code] = append(r.byCountry[code], i)
	}

	// Precompute sampling tables.
	r.infectedCum = make([]float64, len(Countries))
	r.nonIoTCum = make([]float64, len(Countries))
	var ic, nc float64
	for i := range Countries {
		if len(r.byCountry[Countries[i].Code]) > 0 {
			ic += Countries[i].InfectionWeight
			nc += Countries[i].NonIoTWeight
		}
		r.infectedCum[i] = ic
		r.nonIoTCum[i] = nc
	}
	return r
}

func ispsFor(c *Country) []ISP {
	if isps, ok := ISPTable[c.Code]; ok {
		return isps
	}
	// Synthesize stable per-country ASNs for the long tail.
	base := 60000
	for _, ch := range c.Code {
		base += int(ch) * 131
	}
	out := make([]ISP, len(genericISPs))
	for i, g := range genericISPs {
		out[i] = ISP{
			ASN:        base + i,
			Name:       g.Name + " " + c.Code,
			Weight:     g.Weight,
			RDNSSuffix: strings.ToLower(c.Code) + "." + g.RDNSSuffix,
		}
	}
	return out
}

func pickISP(isps []ISP, rng *rand.Rand) ISP {
	u := rng.Float64()
	cum := 0.0
	for _, isp := range isps {
		cum += isp.Weight
		if u < cum {
			return isp
		}
	}
	return isps[len(isps)-1]
}

func sectorOrgName(sector string, c *Country, rng *rand.Rand) string {
	n := rng.Intn(90) + 10
	switch sector {
	case SectorEducation:
		return fmt.Sprintf("National University %d of %s", n, c.Name)
	case SectorManufacturing:
		return fmt.Sprintf("%s Industrial Works %d", c.Name, n)
	case SectorGovernment:
		return fmt.Sprintf("%s Ministry Office %d", c.Name, n)
	case SectorBanking:
		return fmt.Sprintf("%s Commercial Bank %d", c.Name, n)
	case SectorMedical:
		return fmt.Sprintf("%s Regional Hospital %d", c.Name, n)
	default:
		return c.Name + " Org"
	}
}

func domainOf(rdnsSuffix string) string {
	parts := strings.Split(rdnsSuffix, ".")
	if len(parts) >= 2 {
		return strings.Join(parts[len(parts)-2:], ".")
	}
	return rdnsSuffix
}

// Lookup resolves everything the registry knows about ip. The second
// return value is false for unallocated space.
func (r *Registry) Lookup(ip packet.IP) (Info, bool) {
	for _, ra := range r.research {
		if ra.Prefix.Contains(ip) {
			a, b, c, d := ip.Octets()
			return Info{
				IP:          ip,
				Country:     "United States",
				CountryCode: "US",
				Continent:   "North America",
				City:        "Ann Arbor",
				Lat:         42.28, Lon: -83.74,
				ASN:         36375,
				ISP:         ra.Org.Name,
				Org:         ra.Org.Name,
				Sector:      SectorEducation,
				Domain:      domainOf(ra.Org.RDNSSuffix),
				AbuseEmail:  "abuse@" + domainOf(ra.Org.RDNSSuffix),
				RDNS:        fmt.Sprintf("researchscan-%d-%d-%d-%d.%s", a, b, c, d, ra.Org.RDNSSuffix),
				Research:    true,
				ResearchOrg: ra.Org.Name,
			}, true
		}
	}

	i := sort.Search(len(r.allocs), func(i int) bool { return r.allocs[i].Prefix.Base > ip }) - 1
	if i < 0 || !r.allocs[i].Prefix.Contains(ip) {
		return Info{IP: ip}, false
	}
	alloc := &r.allocs[i]
	c := alloc.Country

	a, b, o3, d := ip.Octets()
	info := Info{
		IP:          ip,
		Country:     c.Name,
		CountryCode: c.Code,
		Continent:   c.Continent,
		ASN:         alloc.ISP.ASN,
		ISP:         alloc.ISP.Name,
		Org:         alloc.ISP.Name,
		Sector:      SectorResidential,
		Domain:      domainOf(alloc.ISP.RDNSSuffix),
		AbuseEmail:  alloc.AbuseEmail,
		RDNS:        fmt.Sprintf("%d-%d-%d-%d.%s", a, b, o3, d, alloc.ISP.RDNSSuffix),
	}
	if ss, ok := alloc.sectorSlices[o3]; ok {
		info.Sector = ss.Sector
		info.Org = ss.Org
	}
	// Deterministic city + jittered coordinates from the address.
	h := uint32(ip)*2654435761 + 0x9e3779b9
	info.City = c.Cities[int(h)%len(c.Cities)]
	info.Lat = c.Lat + float64(int(h>>8)%200-100)/50.0
	info.Lon = c.Lon + float64(int(h>>16)%200-100)/50.0
	return info, true
}

// RDNS returns the reverse-DNS name for ip, or "" for unallocated space.
func (r *Registry) RDNS(ip packet.IP) string {
	info, ok := r.Lookup(ip)
	if !ok {
		return ""
	}
	return info.RDNS
}

// PickInfectedHost samples an address for a new infected IoT device,
// following the per-country infection-density weights.
func (r *Registry) PickInfectedHost(rng *rand.Rand) packet.IP {
	return r.pickByCum(rng, r.infectedCum)
}

// PickNonIoTHost samples an address for a non-IoT scanning host.
func (r *Registry) PickNonIoTHost(rng *rand.Rand) packet.IP {
	return r.pickByCum(rng, r.nonIoTCum)
}

// PickHostIn samples an address inside a specific country.
func (r *Registry) PickHostIn(code string, rng *rand.Rand) (packet.IP, bool) {
	idxs := r.byCountry[code]
	if len(idxs) == 0 {
		return 0, false
	}
	alloc := &r.allocs[idxs[rng.Intn(len(idxs))]]
	return hostIn(alloc.Prefix, rng), true
}

// PickResearchScanner samples an address from a research organization's
// scanner pool.
func (r *Registry) PickResearchScanner(rng *rand.Rand) (packet.IP, ResearchOrg) {
	ra := r.research[rng.Intn(len(r.research))]
	return hostIn(ra.Prefix, rng), ra.Org
}

func (r *Registry) pickByCum(rng *rand.Rand, cum []float64) packet.IP {
	total := cum[len(cum)-1]
	u := rng.Float64() * total
	ci := sort.SearchFloat64s(cum, u)
	if ci >= len(Countries) {
		ci = len(Countries) - 1
	}
	ip, ok := r.PickHostIn(Countries[ci].Code, rng)
	if !ok {
		// Country received no blocks; fall back to any allocation.
		alloc := &r.allocs[rng.Intn(len(r.allocs))]
		return hostIn(alloc.Prefix, rng)
	}
	return ip
}

func hostIn(p packet.Prefix, rng *rand.Rand) packet.IP {
	// Avoid .0 and .255 in the last octet to stay plausible.
	for {
		ip := p.Nth(uint64(rng.Int63n(int64(p.Size()))))
		if last := byte(ip); last != 0 && last != 255 {
			return ip
		}
	}
}

// Allocations returns the registry's allocation count (for tests/metrics).
func (r *Registry) Allocations() int { return len(r.allocs) }
