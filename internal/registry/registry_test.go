package registry

import (
	"math/rand"
	"strings"
	"testing"

	"exiot/internal/packet"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	return Build(Config{Seed: 1, Blocks: 512})
}

func TestBuildDeterministic(t *testing.T) {
	r1 := Build(Config{Seed: 42, Blocks: 256})
	r2 := Build(Config{Seed: 42, Blocks: 256})
	if r1.Allocations() != r2.Allocations() {
		t.Fatalf("allocation counts differ: %d vs %d", r1.Allocations(), r2.Allocations())
	}
	rng1 := rand.New(rand.NewSource(5))
	rng2 := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		ip1 := r1.PickInfectedHost(rng1)
		ip2 := r2.PickInfectedHost(rng2)
		if ip1 != ip2 {
			t.Fatalf("sample %d differs: %v vs %v", i, ip1, ip2)
		}
	}
}

func TestLookupCoversSampledHosts(t *testing.T) {
	r := testRegistry(t)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		ip := r.PickInfectedHost(rng)
		info, ok := r.Lookup(ip)
		if !ok {
			t.Fatalf("sampled host %v not in registry", ip)
		}
		if info.Country == "" || info.CountryCode == "" || info.Continent == "" {
			t.Fatalf("incomplete geo for %v: %+v", ip, info)
		}
		if info.ASN == 0 || info.ISP == "" {
			t.Fatalf("incomplete ASN/ISP for %v: %+v", ip, info)
		}
		if info.RDNS == "" || info.AbuseEmail == "" {
			t.Fatalf("incomplete rdns/whois for %v: %+v", ip, info)
		}
		if info.Research {
			t.Fatalf("infected host %v mapped to research org", ip)
		}
	}
}

func TestLookupUnallocated(t *testing.T) {
	r := testRegistry(t)
	// The telescope /8 is never allocated.
	if _, ok := r.Lookup(packet.MustParseIP("10.1.2.3")); ok {
		t.Error("telescope space should be unallocated")
	}
	if r.RDNS(packet.MustParseIP("10.1.2.3")) != "" {
		t.Error("unallocated space should have no rDNS")
	}
}

func TestResearchScanners(t *testing.T) {
	r := testRegistry(t)
	rng := rand.New(rand.NewSource(3))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		ip, org := r.PickResearchScanner(rng)
		info, ok := r.Lookup(ip)
		if !ok {
			t.Fatalf("research scanner %v not resolvable", ip)
		}
		if !info.Research {
			t.Fatalf("research scanner %v not marked Research: %+v", ip, info)
		}
		if info.ResearchOrg != org.Name {
			t.Fatalf("org mismatch: %q vs %q", info.ResearchOrg, org.Name)
		}
		if !strings.HasSuffix(info.RDNS, org.RDNSSuffix) {
			t.Fatalf("rdns %q lacks suffix %q", info.RDNS, org.RDNSSuffix)
		}
		seen[org.Name] = true
	}
	if len(seen) < 4 {
		t.Errorf("only %d research orgs sampled, want variety", len(seen))
	}
}

func TestInfectionWeightShape(t *testing.T) {
	r := Build(Config{Seed: 7, Blocks: 1024})
	rng := rand.New(rand.NewSource(11))
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		ip := r.PickInfectedHost(rng)
		info, ok := r.Lookup(ip)
		if !ok {
			t.Fatal("unresolvable host")
		}
		counts[info.CountryCode]++
	}
	cn := float64(counts["CN"]) / n
	in := float64(counts["IN"]) / n
	br := float64(counts["BR"]) / n
	if cn < 0.35 || cn > 0.52 {
		t.Errorf("China share = %.3f, want ≈0.43", cn)
	}
	if in < 0.06 || in > 0.15 {
		t.Errorf("India share = %.3f, want ≈0.10", in)
	}
	if br < 0.05 || br > 0.13 {
		t.Errorf("Brazil share = %.3f, want ≈0.085", br)
	}
	if !(counts["CN"] > counts["IN"] && counts["IN"] > counts["BR"]) {
		t.Errorf("country ordering broken: CN=%d IN=%d BR=%d", counts["CN"], counts["IN"], counts["BR"])
	}
}

func TestContinentShape(t *testing.T) {
	r := Build(Config{Seed: 7, Blocks: 1024})
	rng := rand.New(rand.NewSource(13))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		info, _ := r.Lookup(r.PickInfectedHost(rng))
		counts[info.Continent]++
	}
	asia := float64(counts["Asia"]) / n
	if asia < 0.60 || asia > 0.85 {
		t.Errorf("Asia share = %.3f, want ≈0.73", asia)
	}
	if counts["Asia"] <= counts["South America"] || counts["South America"] <= counts["Oceania"] {
		t.Errorf("continent ordering broken: %v", counts)
	}
}

func TestSectorPresence(t *testing.T) {
	r := Build(Config{Seed: 7, Blocks: 1024})
	rng := rand.New(rand.NewSource(17))
	counts := map[string]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		info, _ := r.Lookup(r.PickInfectedHost(rng))
		counts[info.Sector]++
	}
	if counts[SectorResidential] < n*9/10 {
		t.Errorf("residential share too low: %v", counts)
	}
	for _, s := range []string{SectorEducation, SectorManufacturing, SectorGovernment} {
		if counts[s] == 0 {
			t.Errorf("sector %s never sampled", s)
		}
	}
	if counts[SectorEducation] < counts[SectorBanking] {
		t.Errorf("education should outnumber banking: %v", counts)
	}
}

func TestASNShape(t *testing.T) {
	r := Build(Config{Seed: 7, Blocks: 1024})
	rng := rand.New(rand.NewSource(19))
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		info, _ := r.Lookup(r.PickInfectedHost(rng))
		counts[info.ASN]++
	}
	// AS4134 (China Telecom) must be the single largest ASN.
	top, topCount := 0, 0
	for asn, c := range counts {
		if c > topCount {
			top, topCount = asn, c
		}
	}
	if top != 4134 {
		t.Errorf("top ASN = %d (count %d), want 4134", top, topCount)
	}
	if counts[4837] == 0 {
		t.Error("AS4837 (Unicom Liaoning) never sampled")
	}
}

func TestPickHostIn(t *testing.T) {
	r := testRegistry(t)
	rng := rand.New(rand.NewSource(23))
	ip, ok := r.PickHostIn("CZ", rng)
	if !ok {
		t.Fatal("no Czech blocks allocated")
	}
	info, _ := r.Lookup(ip)
	if info.CountryCode != "CZ" {
		t.Errorf("host in CZ resolved to %s", info.CountryCode)
	}
	if _, ok := r.PickHostIn("XX", rng); ok {
		t.Error("unknown country should not resolve")
	}
}

func TestLookupConsistency(t *testing.T) {
	r := testRegistry(t)
	ip := packet.MustParseIP("141.212.120.55")
	i1, ok1 := r.Lookup(ip)
	i2, ok2 := r.Lookup(ip)
	if !ok1 || !ok2 || i1 != i2 {
		t.Error("Lookup should be deterministic per IP")
	}
}

func TestCountryTableSane(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Countries {
		if seen[c.Code] {
			t.Errorf("duplicate country code %s", c.Code)
		}
		seen[c.Code] = true
		if c.InfectionWeight <= 0 || len(c.Cities) == 0 {
			t.Errorf("country %s incomplete", c.Name)
		}
	}
	for code, isps := range ISPTable {
		if !seen[code] {
			t.Errorf("ISP table references unknown country %s", code)
		}
		var w float64
		for _, isp := range isps {
			w += isp.Weight
		}
		if w < 0.99 || w > 1.01 {
			t.Errorf("ISP weights for %s sum to %.3f, want 1.0", code, w)
		}
	}
}
