// Package organizer implements eX-IoT's Packet Organizer module: it
// receives sampled flows, groups the packets by source address and
// arrival time, and drops sources that did not yield enough samples to be
// usable by the classifier — "typically sources that have been
// erroneously identified as scanners and may be the result of node
// malfunction on the Internet". Its output is the JSON-encoded batch the
// buffer carries to the scan and annotate modules.
package organizer

import (
	"encoding/json"
	"fmt"
	"slices"
	"time"

	"exiot/internal/packet"
	"exiot/internal/trace"
	"exiot/internal/trw"
)

// DefaultMinSamples is the minimum usable sample size. Flows shorter than
// this cannot produce stable quartile features.
const DefaultMinSamples = 50

// Batch is one organized flow, ready for the scan and annotate modules.
type Batch struct {
	IP         packet.IP       `json:"-"`
	IPString   string          `json:"ip"`
	FirstSeen  time.Time       `json:"first_seen"`
	DetectedAt time.Time       `json:"detected_at"`
	Sample     []packet.Packet `json:"-"`
	// SampleSize is serialized in place of raw packets (the wire carries
	// packets in binary, not JSON).
	SampleSize int `json:"sample_size"`
	// TraceID is the sampler-assigned deterministic trace identifier; it
	// rides the wire in the batch header so both sides of a split
	// deployment (and WAL replays) agree on it.
	TraceID trace.ID `json:"trace_id,omitempty"`
}

// Organizer filters and normalizes sampled flows.
type Organizer struct {
	// MinSamples drops flows sampled below this size.
	MinSamples int

	accepted int64
	dropped  int64
}

// New creates an organizer with the default minimum sample size.
func New() *Organizer {
	return &Organizer{MinSamples: DefaultMinSamples}
}

// Organize converts a detector sample event into a batch. ok is false
// when the flow is dropped for insufficient samples.
func (o *Organizer) Organize(e trw.Event) (Batch, bool) {
	min := o.MinSamples
	if min <= 0 {
		min = DefaultMinSamples
	}
	if e.Kind != trw.EventSample || len(e.Sample) < min {
		o.dropped++
		return Batch{}, false
	}
	sample := make([]packet.Packet, len(e.Sample))
	copy(sample, e.Sample)
	// Organize by arrival time: the detector emits in order, but merged
	// streams from multiple capture workers may interleave. (Stable
	// generic sort — same order as the reflect-based SliceStable it
	// replaced, without per-swap typedmemmove cost.)
	slices.SortStableFunc(sample, func(a, b packet.Packet) int {
		return a.Timestamp.Compare(b.Timestamp)
	})
	o.accepted++
	return Batch{
		IP:         e.IP,
		IPString:   e.IP.String(),
		FirstSeen:  e.FirstSeen,
		DetectedAt: e.DetectedAt,
		Sample:     sample,
		SampleSize: len(sample),
	}, true
}

// Stats returns (accepted, dropped) counters.
func (o *Organizer) Stats() (accepted, dropped int64) {
	return o.accepted, o.dropped
}

// wireBatch is the transport encoding of a Batch: JSON header plus
// binary-marshaled packets.
type wireBatch struct {
	Header  Batch    `json:"header"`
	Packets [][]byte `json:"packets"`
	// Stamps carries packet capture times (binary packet encoding keeps
	// timestamps out of band, like pcap).
	Stamps []time.Time `json:"stamps"`
}

// Encode serializes a batch for the wire.
func Encode(b *Batch) ([]byte, error) {
	wb := wireBatch{Header: *b, Packets: make([][]byte, len(b.Sample)), Stamps: make([]time.Time, len(b.Sample))}
	wb.Header.Sample = nil
	for i := range b.Sample {
		wb.Packets[i] = b.Sample[i].Marshal(nil)
		wb.Stamps[i] = b.Sample[i].Timestamp
	}
	data, err := json.Marshal(&wb)
	if err != nil {
		return nil, fmt.Errorf("organizer: encode batch: %w", err)
	}
	return data, nil
}

// Decode deserializes a batch from the wire.
func Decode(data []byte) (Batch, error) {
	var wb wireBatch
	if err := json.Unmarshal(data, &wb); err != nil {
		return Batch{}, fmt.Errorf("organizer: decode batch: %w", err)
	}
	if len(wb.Packets) != len(wb.Stamps) {
		return Batch{}, fmt.Errorf("organizer: %d packets but %d stamps", len(wb.Packets), len(wb.Stamps))
	}
	b := wb.Header
	ip, err := packet.ParseIP(b.IPString)
	if err != nil {
		return Batch{}, fmt.Errorf("organizer: decode batch: %w", err)
	}
	b.IP = ip
	b.Sample = make([]packet.Packet, len(wb.Packets))
	for i, raw := range wb.Packets {
		if _, err := b.Sample[i].Unmarshal(raw); err != nil {
			return Batch{}, fmt.Errorf("organizer: decode packet %d: %w", i, err)
		}
		b.Sample[i].Timestamp = wb.Stamps[i]
	}
	return b, nil
}
