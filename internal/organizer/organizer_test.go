package organizer

import (
	"testing"
	"time"

	"exiot/internal/packet"
	"exiot/internal/trw"
)

var t0 = time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC)

func sampleEvent(ip string, n int) trw.Event {
	src := packet.MustParseIP(ip)
	sample := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		p := packet.Packet{
			Timestamp: t0.Add(time.Duration(i) * time.Second),
			Proto:     packet.TCP,
			SrcIP:     src,
			DstIP:     packet.MustParseIP("10.0.0.1"),
			DstPort:   23,
			Flags:     packet.FlagSYN,
			Seq:       uint32(i),
			Window:    5840,
			TTL:       48,
			Options:   packet.TCPOptions{HasMSS: true, MSS: 1460, NOP: true},
		}
		p.Normalize()
		sample = append(sample, p)
	}
	return trw.Event{
		Kind:       trw.EventSample,
		IP:         src,
		FirstSeen:  t0.Add(-100 * time.Second),
		DetectedAt: t0,
		Sample:     sample,
	}
}

func TestOrganizeAccepts(t *testing.T) {
	o := New()
	b, ok := o.Organize(sampleEvent("203.0.113.1", 200))
	if !ok {
		t.Fatal("full sample rejected")
	}
	if b.IPString != "203.0.113.1" || b.SampleSize != 200 || len(b.Sample) != 200 {
		t.Errorf("batch = %+v", b)
	}
	accepted, dropped := o.Stats()
	if accepted != 1 || dropped != 0 {
		t.Errorf("stats = %d/%d", accepted, dropped)
	}
}

func TestOrganizeDropsShortFlows(t *testing.T) {
	o := New()
	if _, ok := o.Organize(sampleEvent("203.0.113.2", 10)); ok {
		t.Error("10-packet sample should be dropped (node malfunction)")
	}
	if _, ok := o.Organize(sampleEvent("203.0.113.2", DefaultMinSamples-1)); ok {
		t.Error("below-threshold sample should be dropped")
	}
	if _, ok := o.Organize(sampleEvent("203.0.113.2", DefaultMinSamples)); !ok {
		t.Error("at-threshold sample should pass")
	}
	accepted, dropped := o.Stats()
	if accepted != 1 || dropped != 2 {
		t.Errorf("stats = %d/%d", accepted, dropped)
	}
}

func TestOrganizeIgnoresNonSampleEvents(t *testing.T) {
	o := New()
	if _, ok := o.Organize(trw.Event{Kind: trw.EventFlowEnd}); ok {
		t.Error("non-sample event organized")
	}
}

func TestOrganizeSortsByArrival(t *testing.T) {
	e := sampleEvent("203.0.113.3", 100)
	// Shuffle a few packets out of order (merged capture workers).
	e.Sample[10], e.Sample[50] = e.Sample[50], e.Sample[10]
	e.Sample[20], e.Sample[80] = e.Sample[80], e.Sample[20]
	o := New()
	b, ok := o.Organize(e)
	if !ok {
		t.Fatal("rejected")
	}
	for i := 1; i < len(b.Sample); i++ {
		if b.Sample[i].Timestamp.Before(b.Sample[i-1].Timestamp) {
			t.Fatal("batch not sorted by arrival time")
		}
	}
	// The original event must not be mutated (defensive copy).
	if !e.Sample[10].Timestamp.After(e.Sample[9].Timestamp) {
		// it was swapped; still swapped means no mutation
	} else {
		t.Log("original sample order restored — copy semantics violated?")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	o := New()
	b, ok := o.Organize(sampleEvent("203.0.113.4", 120))
	if !ok {
		t.Fatal("rejected")
	}
	data, err := Encode(&b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.IP != b.IP || back.SampleSize != b.SampleSize {
		t.Errorf("header lost: %+v", back)
	}
	if !back.FirstSeen.Equal(b.FirstSeen) || !back.DetectedAt.Equal(b.DetectedAt) {
		t.Error("timestamps lost")
	}
	if len(back.Sample) != len(b.Sample) {
		t.Fatalf("sample length = %d, want %d", len(back.Sample), len(b.Sample))
	}
	for i := range back.Sample {
		if !back.Sample[i].Timestamp.Equal(b.Sample[i].Timestamp) {
			t.Fatalf("packet %d timestamp lost", i)
		}
		if back.Sample[i].Seq != b.Sample[i].Seq || back.Sample[i].Options != b.Sample[i].Options {
			t.Fatalf("packet %d fields lost", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("garbage should not decode")
	}
	if _, err := Decode([]byte(`{"header":{"ip":"bad-ip"},"packets":[],"stamps":[]}`)); err == nil {
		t.Error("bad IP should not decode")
	}
	if _, err := Decode([]byte(`{"header":{"ip":"1.2.3.4"},"packets":[[1,2]],"stamps":[]}`)); err == nil {
		t.Error("mismatched packets/stamps should not decode")
	}
}
