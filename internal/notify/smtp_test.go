package notify

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeSMTPServer implements just enough of RFC 5321 to receive one
// message from net/smtp.
type fakeSMTPServer struct {
	ln net.Listener

	mu       sync.Mutex
	from     string
	rcpt     []string
	data     string
	sessions int
}

func newFakeSMTPServer(t *testing.T) *fakeSMTPServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &fakeSMTPServer{ln: ln}
	go s.serve()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *fakeSMTPServer) addr() string { return s.ln.Addr().String() }

func (s *fakeSMTPServer) serve() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.session(conn)
	}
}

func (s *fakeSMTPServer) session(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	s.sessions++
	s.mu.Unlock()

	r := bufio.NewReader(conn)
	write := func(line string) { conn.Write([]byte(line + "\r\n")) }
	write("220 fake.example ESMTP")
	inData := false
	var data strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		if inData {
			if line == "." {
				s.mu.Lock()
				s.data = data.String()
				s.mu.Unlock()
				inData = false
				write("250 ok: queued")
				continue
			}
			data.WriteString(line + "\n")
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "EHLO"):
			write("250-fake.example")
			write("250 8BITMIME")
		case strings.HasPrefix(strings.ToUpper(line), "HELO"):
			write("250 fake.example")
		case strings.HasPrefix(strings.ToUpper(line), "MAIL FROM:"):
			s.mu.Lock()
			s.from = line[len("MAIL FROM:"):]
			s.mu.Unlock()
			write("250 ok")
		case strings.HasPrefix(strings.ToUpper(line), "RCPT TO:"):
			s.mu.Lock()
			s.rcpt = append(s.rcpt, line[len("RCPT TO:"):])
			s.mu.Unlock()
			write("250 ok")
		case strings.EqualFold(line, "DATA"):
			inData = true
			write("354 end with .")
		case strings.EqualFold(line, "QUIT"):
			write("221 bye")
			return
		default:
			write("250 ok")
		}
	}
}

func (s *fakeSMTPServer) received() (from string, rcpt []string, data string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.from, append([]string(nil), s.rcpt...), s.data
}

func TestSMTPMailerDelivers(t *testing.T) {
	srv := newFakeSMTPServer(t)
	m := &SMTPMailer{
		Addr: srv.addr(),
		From: "exiot@feed.example",
		Now:  func() time.Time { return time.Date(2020, 12, 9, 12, 0, 0, 0, time.UTC) },
	}
	err := m.Send("soc@example.org", "[eX-IoT] Compromised IoT device detected at 1.2.3.4",
		"eX-IoT detected scanning.\nPlease investigate.")
	if err != nil {
		t.Fatal(err)
	}
	from, rcpt, data := srv.received()
	if !strings.Contains(from, "exiot@feed.example") {
		t.Errorf("MAIL FROM = %q", from)
	}
	if len(rcpt) != 1 || !strings.Contains(rcpt[0], "soc@example.org") {
		t.Errorf("RCPT TO = %v", rcpt)
	}
	for _, want := range []string{
		"Subject: [eX-IoT] Compromised IoT device detected at 1.2.3.4",
		"From: exiot@feed.example",
		"To: soc@example.org",
		"Date: Wed, 09 Dec 2020",
		"Please investigate.",
	} {
		if !strings.Contains(data, want) {
			t.Errorf("message missing %q in:\n%s", want, data)
		}
	}
}

func TestSMTPMailerHeaderInjectionNeutralized(t *testing.T) {
	srv := newFakeSMTPServer(t)
	m := &SMTPMailer{Addr: srv.addr(), From: "exiot@feed.example"}
	if err := m.Send("soc@example.org", "evil\r\nBcc: victim@example.org", "body"); err != nil {
		t.Fatal(err)
	}
	_, _, data := srv.received()
	// The Bcc text may survive inline in the subject, but it must never
	// start a header line of its own.
	for _, line := range strings.Split(data, "\n") {
		if strings.HasPrefix(line, "Bcc:") {
			t.Errorf("header injection not neutralized: %q", line)
		}
	}
	if !strings.Contains(data, "Subject: evil  Bcc: victim@example.org") {
		t.Errorf("sanitized subject missing:\n%s", data)
	}
}

func TestSMTPMailerValidation(t *testing.T) {
	m := &SMTPMailer{}
	if err := m.Send("a@b.c", "s", "b"); err == nil {
		t.Error("unconfigured mailer accepted send")
	}
	m = &SMTPMailer{Addr: "127.0.0.1:1", From: "x@y.z"}
	if err := m.Send("a@b.c", "s", "b"); err == nil {
		t.Error("dead relay accepted send")
	}
}

func TestBuildMessageCRLF(t *testing.T) {
	msg := string(buildMessage("f@x", "t@y", "subj", "line1\nline2", time.Unix(0, 0)))
	if !strings.Contains(msg, "line1\r\nline2") {
		t.Errorf("body not CRLF-normalized:\n%q", msg)
	}
	if !strings.HasSuffix(msg, "\r\n") {
		t.Error("message must end with CRLF")
	}
}
