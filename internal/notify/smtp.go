package notify

import (
	"fmt"
	"net/smtp"
	"strings"
	"time"
)

// SMTPMailer delivers notifications through a real SMTP relay using
// net/smtp — the production counterpart of MemoryMailer. The paper's
// deployment notifies organizations and WHOIS abuse contacts by e-mail;
// this is that transport.
type SMTPMailer struct {
	// Addr is the relay's host:port.
	Addr string
	// From is the envelope sender and From: header.
	From string
	// Auth optionally authenticates against the relay.
	Auth smtp.Auth
	// Now stamps the Date header (defaults to time.Now).
	Now func() time.Time
}

var _ Mailer = (*SMTPMailer)(nil)

// Send delivers one message.
func (m *SMTPMailer) Send(to, subject, body string) error {
	if m.Addr == "" || m.From == "" {
		return fmt.Errorf("smtp mailer: addr and from are required")
	}
	now := time.Now
	if m.Now != nil {
		now = m.Now
	}
	msg := buildMessage(m.From, to, subject, body, now())
	if err := smtp.SendMail(m.Addr, m.Auth, m.From, []string{to}, msg); err != nil {
		return fmt.Errorf("smtp send to %s: %w", to, err)
	}
	return nil
}

// buildMessage assembles a minimal RFC 5322 message. Header injection is
// neutralized by stripping CR/LF from caller-supplied header values.
func buildMessage(from, to, subject, body string, date time.Time) []byte {
	clean := func(s string) string {
		s = strings.ReplaceAll(s, "\r", " ")
		return strings.ReplaceAll(s, "\n", " ")
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "From: %s\r\n", clean(from))
	fmt.Fprintf(&sb, "To: %s\r\n", clean(to))
	fmt.Fprintf(&sb, "Subject: %s\r\n", clean(subject))
	fmt.Fprintf(&sb, "Date: %s\r\n", date.Format(time.RFC1123Z))
	sb.WriteString("MIME-Version: 1.0\r\n")
	sb.WriteString("Content-Type: text/plain; charset=utf-8\r\n")
	sb.WriteString("\r\n")
	// Normalize the body to CRLF line endings.
	sb.WriteString(strings.ReplaceAll(strings.ReplaceAll(body, "\r\n", "\n"), "\n", "\r\n"))
	sb.WriteString("\r\n")
	return []byte(sb.String())
}
