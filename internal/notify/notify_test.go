package notify

import (
	"strings"
	"testing"
	"time"

	"exiot/internal/feed"
	"exiot/internal/packet"
)

var t0 = time.Date(2020, 12, 9, 12, 0, 0, 0, time.UTC)

func iotRecord(ip string) feed.Record {
	return feed.Record{
		IP:          ip,
		Label:       feed.LabelIoT,
		Score:       0.93,
		Vendor:      "MikroTik",
		DeviceType:  "Router",
		Country:     "Czech Republic",
		ISP:         "O2 Czech Republic",
		ASN:         5610,
		AbuseEmail:  "abuse@o2.cz",
		FirstSeen:   t0.Add(-time.Hour),
		DetectedAt:  t0,
		TargetPorts: map[uint16]int{23: 180, 2323: 20},
	}
}

func TestSubscriptionAlarm(t *testing.T) {
	mailer := &MemoryMailer{}
	n := New(Config{}, mailer)
	n.Subscribe(packet.MustParsePrefix("198.51.100.0/24"), "soc@example.org")

	rec := iotRecord("198.51.100.77")
	if sent := n.Process(&rec, t0); sent != 1 {
		t.Fatalf("sent = %d, want 1", sent)
	}
	msgs := mailer.Messages()
	if len(msgs) != 1 || msgs[0].To != "soc@example.org" {
		t.Fatalf("messages = %+v", msgs)
	}
	if !strings.Contains(msgs[0].Subject, "198.51.100.77") {
		t.Errorf("subject = %q", msgs[0].Subject)
	}
	if !strings.Contains(msgs[0].Body, "MikroTik") || !strings.Contains(msgs[0].Body, "O2 Czech Republic") {
		t.Errorf("body missing details:\n%s", msgs[0].Body)
	}

	// A record outside the block must not alarm.
	outside := iotRecord("203.0.113.1")
	if sent := n.Process(&outside, t0); sent != 0 {
		t.Errorf("outside-block record sent %d mails", sent)
	}
}

func TestWhoisNotification(t *testing.T) {
	mailer := &MemoryMailer{}
	n := New(Config{NotifyWhois: true}, mailer)
	rec := iotRecord("203.0.113.5")
	if sent := n.Process(&rec, t0); sent != 1 {
		t.Fatalf("sent = %d, want 1", sent)
	}
	if got := mailer.Messages()[0].To; got != "abuse@o2.cz" {
		t.Errorf("whois notification to %q", got)
	}
	// Disabled by default.
	n2 := New(Config{}, &MemoryMailer{})
	if sent := n2.Process(&rec, t0); sent != 0 {
		t.Errorf("whois disabled but sent %d", sent)
	}
}

func TestDeduplicationWindow(t *testing.T) {
	mailer := &MemoryMailer{}
	n := New(Config{NotifyWhois: true, RenotifyAfter: 24 * time.Hour}, mailer)
	rec := iotRecord("203.0.113.9")
	if sent := n.Process(&rec, t0); sent != 1 {
		t.Fatal("first notification suppressed")
	}
	// Same device 2 hours later: suppressed.
	if sent := n.Process(&rec, t0.Add(2*time.Hour)); sent != 0 {
		t.Error("repeat within window not suppressed")
	}
	// After the window: renotified.
	if sent := n.Process(&rec, t0.Add(25*time.Hour)); sent != 1 {
		t.Error("renotification after window suppressed")
	}
}

func TestNonIoTAndBenignSkipped(t *testing.T) {
	mailer := &MemoryMailer{}
	n := New(Config{NotifyWhois: true}, mailer)
	nonIoT := iotRecord("203.0.113.11")
	nonIoT.Label = feed.LabelNonIoT
	if sent := n.Process(&nonIoT, t0); sent != 0 {
		t.Error("non-IoT record notified")
	}
	benign := iotRecord("203.0.113.12")
	benign.Benign = true
	if sent := n.Process(&benign, t0); sent != 0 {
		t.Error("benign scanner notified")
	}
	badIP := iotRecord("not-an-ip")
	if sent := n.Process(&badIP, t0); sent != 0 {
		t.Error("malformed IP notified")
	}
}

func TestMultipleSubscribers(t *testing.T) {
	mailer := &MemoryMailer{}
	n := New(Config{NotifyWhois: true}, mailer)
	n.Subscribe(packet.MustParsePrefix("203.0.113.0/24"), "a@example.org")
	n.Subscribe(packet.MustParsePrefix("203.0.0.0/16"), "b@example.org")
	rec := iotRecord("203.0.113.20")
	// Two subscriptions + whois = 3 mails.
	if sent := n.Process(&rec, t0); sent != 3 {
		t.Errorf("sent = %d, want 3", sent)
	}
	if len(n.Subscriptions()) != 2 {
		t.Errorf("subscriptions = %d", len(n.Subscriptions()))
	}
}
