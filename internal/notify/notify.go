// Package notify implements eX-IoT's e-mail notification mechanisms:
// (1) subscription alarms — organizations register an IP block and an
// address, and are alerted the moment a compromised device surfaces
// inside it; (2) WHOIS-driven notifications — the abuse contact from the
// hosting organization's WHOIS record is notified about infected IoT
// devices in its space. Delivery is pluggable: production wires an SMTP
// mailer, tests and simulations use the in-memory mailer.
package notify

import (
	"fmt"
	"sync"
	"time"

	"exiot/internal/feed"
	"exiot/internal/packet"
	"exiot/internal/telemetry"
)

// Telemetry handles for the notification stage (see docs/OPERATIONS.md).
var metEmails = telemetry.Default().CounterVec("exiot_notify_emails_total",
	"Notification e-mails delivered, by trigger (subscription|whois).", "trigger")

// Mailer delivers one e-mail.
type Mailer interface {
	Send(to, subject, body string) error
}

// Message is one captured e-mail (in-memory mailer).
type Message struct {
	To      string
	Subject string
	Body    string
	At      time.Time
}

// MemoryMailer records messages instead of delivering them.
type MemoryMailer struct {
	mu   sync.Mutex
	msgs []Message
}

var _ Mailer = (*MemoryMailer)(nil)

// Send records the message.
func (m *MemoryMailer) Send(to, subject, body string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.msgs = append(m.msgs, Message{To: to, Subject: subject, Body: body, At: time.Now()})
	return nil
}

// Messages returns a copy of everything sent.
func (m *MemoryMailer) Messages() []Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Message, len(m.msgs))
	copy(out, m.msgs)
	return out
}

// Subscription is one registered IP-block alarm.
type Subscription struct {
	Prefix packet.Prefix
	Email  string
}

// Config controls notification behaviour.
type Config struct {
	// NotifyWhois enables WHOIS-driven abuse-contact notifications.
	NotifyWhois bool
	// RenotifyAfter suppresses repeat notifications for the same device
	// within this window (default 24 h).
	RenotifyAfter time.Duration
}

// Notifier routes CTI records to subscribers and abuse contacts.
type Notifier struct {
	cfg    Config
	mailer Mailer

	mu       sync.Mutex
	subs     []Subscription
	lastSent map[string]time.Time // dedup key → last notification
}

// New creates a notifier delivering through mailer.
func New(cfg Config, mailer Mailer) *Notifier {
	if cfg.RenotifyAfter <= 0 {
		cfg.RenotifyAfter = 24 * time.Hour
	}
	return &Notifier{cfg: cfg, mailer: mailer, lastSent: make(map[string]time.Time)}
}

// Subscribe registers an IP-block alarm.
func (n *Notifier) Subscribe(prefix packet.Prefix, email string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.subs = append(n.subs, Subscription{Prefix: prefix, Email: email})
}

// Subscriptions returns the registered alarms.
func (n *Notifier) Subscriptions() []Subscription {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Subscription, len(n.subs))
	copy(out, n.subs)
	return out
}

// Process inspects one record and sends due notifications, returning how
// many e-mails went out. now is the (simulated) clock.
func (n *Notifier) Process(rec *feed.Record, now time.Time) int {
	if !rec.IsIoT() || rec.Benign {
		return 0
	}
	ip, err := packet.ParseIP(rec.IP)
	if err != nil {
		return 0
	}

	sent := 0
	n.mu.Lock()
	subs := make([]Subscription, len(n.subs))
	copy(subs, n.subs)
	n.mu.Unlock()

	for _, sub := range subs {
		if !sub.Prefix.Contains(ip) {
			continue
		}
		if n.dueAndMark("sub:"+sub.Email+":"+rec.IP, now) {
			if err := n.mailer.Send(sub.Email, subjectFor(rec), bodyFor(rec)); err == nil {
				metEmails.With("subscription").Inc()
				sent++
			}
		}
	}

	if n.cfg.NotifyWhois && rec.AbuseEmail != "" {
		if n.dueAndMark("whois:"+rec.AbuseEmail+":"+rec.IP, now) {
			if err := n.mailer.Send(rec.AbuseEmail, subjectFor(rec), bodyFor(rec)); err == nil {
				metEmails.With("whois").Inc()
				sent++
			}
		}
	}
	return sent
}

// dueAndMark checks the dedup window and marks the key as notified.
func (n *Notifier) dueAndMark(key string, now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if last, ok := n.lastSent[key]; ok && now.Sub(last) < n.cfg.RenotifyAfter {
		return false
	}
	n.lastSent[key] = now
	return true
}

func subjectFor(rec *feed.Record) string {
	return fmt.Sprintf("[eX-IoT] Compromised IoT device detected at %s", rec.IP)
}

func bodyFor(rec *feed.Record) string {
	device := rec.DeviceType
	if device == "" {
		device = "IoT device"
	}
	if rec.Vendor != "" {
		device = rec.Vendor + " " + device
	}
	return fmt.Sprintf(
		"eX-IoT detected Internet-wide scanning from a compromised %s.\n\n"+
			"  IP:            %s\n"+
			"  First seen:    %s\n"+
			"  Detected:      %s\n"+
			"  Country / ISP: %s / %s (AS%d)\n"+
			"  Top ports:     %v\n"+
			"  Score:         %.2f\n\n"+
			"This notification was generated automatically from network-telescope\n"+
			"measurements. Please investigate and remediate the device.\n",
		device, rec.IP,
		rec.FirstSeen.Format(time.RFC3339), rec.DetectedAt.Format(time.RFC3339),
		rec.Country, rec.ISP, rec.ASN, rec.TopPorts(3), rec.Score,
	)
}
