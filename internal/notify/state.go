package notify

import (
	"fmt"
	"sort"
	"time"

	"exiot/internal/packet"
)

// This file is the notifier's durability surface. The dedup map must
// survive restarts: losing it would re-send every active device's
// notification after recovery, so the recovered run's e-mail counters
// (and inboxes) would diverge from the uninterrupted run.

// SubscriptionState is one exported IP-block alarm.
type SubscriptionState struct {
	Prefix string `json:"prefix"` // CIDR text, re-parsed on restore
	Email  string `json:"email"`
}

// State is the notifier's exportable state.
type State struct {
	Subscriptions []SubscriptionState  `json:"subscriptions"`
	LastSent      map[string]time.Time `json:"last_sent"`
}

// ExportState captures the registered alarms and the dedup map.
func (n *Notifier) ExportState() State {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := State{LastSent: make(map[string]time.Time, len(n.lastSent))}
	for _, sub := range n.subs {
		st.Subscriptions = append(st.Subscriptions, SubscriptionState{
			Prefix: sub.Prefix.String(),
			Email:  sub.Email,
		})
	}
	for k, v := range n.lastSent {
		st.LastSent[k] = v
	}
	sort.Slice(st.Subscriptions, func(i, j int) bool {
		a, b := st.Subscriptions[i], st.Subscriptions[j]
		if a.Prefix != b.Prefix {
			return a.Prefix < b.Prefix
		}
		return a.Email < b.Email
	})
	return st
}

// RestoreState replaces the notifier's alarms and dedup map with an
// exported state.
func (n *Notifier) RestoreState(st State) error {
	subs := make([]Subscription, 0, len(st.Subscriptions))
	for _, s := range st.Subscriptions {
		prefix, err := packet.ParsePrefix(s.Prefix)
		if err != nil {
			return fmt.Errorf("notify: restore subscription %q: %w", s.Prefix, err)
		}
		subs = append(subs, Subscription{Prefix: prefix, Email: s.Email})
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.subs = subs
	n.lastSent = make(map[string]time.Time, len(st.LastSent))
	for k, v := range st.LastSent {
		n.lastSent[k] = v
	}
	return nil
}
