// Package api exposes eX-IoT's CTI feed the way the paper does: an
// authenticated RESTful API returning JSON, backing a front-end with an
// Internet snapshot, dashboard aggregations, a record query builder, and
// e-mail alarm registration.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"exiot/internal/campaign"
	"exiot/internal/feed"
	"exiot/internal/feedserve"
	"exiot/internal/notify"
	"exiot/internal/packet"
	"exiot/internal/telemetry"
	"exiot/internal/trace"
)

// apiLatencyBuckets resolve request service times from the snapshot
// fast path (tens of microseconds) up to store-walked bulk exports.
var apiLatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Telemetry handles for the API layer (see docs/OPERATIONS.md).
var (
	metAPIRequests = telemetry.Default().CounterVec("exiot_api_requests_total",
		"API requests served, by endpoint name and HTTP status code.", "endpoint", "code")
	metAPILatency = telemetry.Default().HistogramVec("exiot_api_latency_seconds",
		"Request service time by endpoint (SSE connections report on disconnect).",
		apiLatencyBuckets, "endpoint")
	metConditional = telemetry.Default().CounterVec("exiot_api_conditional_total",
		"Snapshot-served requests by conditional outcome: hit = If-None-Match matched (304, no body), miss = full body sent.",
		"endpoint", "result")
)

// Query filters feed records.
type Query struct {
	Label   string // "IoT" / "non-IoT" / ""
	Country string // country code
	ASN     int
	Active  *bool
	Since   time.Time
	Prefix  *packet.Prefix
	Limit   int

	// Cursor and SinceSeq switch /records and /export into
	// sequence-ordered delta mode over the feed snapshot: return records
	// whose change sequence is greater than the given value. Cursor is
	// the pagination continuation (`?cursor=`); SinceSeq is the same
	// filter spelled `?since=<integer>`. Both require the feed cache.
	Cursor   *uint64
	SinceSeq *uint64
}

// seqMode reports whether the query asks for sequence-ordered deltas,
// and the cursor to resume after.
func (q *Query) seqMode() (uint64, bool) {
	if q.Cursor == nil && q.SinceSeq == nil {
		return 0, false
	}
	after := uint64(0)
	if q.Cursor != nil {
		after = *q.Cursor
	}
	if q.SinceSeq != nil && *q.SinceSeq > after {
		after = *q.SinceSeq
	}
	return after, true
}

// filters reports whether any record-content filter is set (the
// snapshot fast path serves unfiltered windows straight from
// pre-marshaled lines).
func (q *Query) filters() bool {
	return q.Label != "" || q.Country != "" || q.ASN != 0 || q.Active != nil ||
		!q.Since.IsZero() || q.Prefix != nil
}

// Snapshot is the front-end's high-level real-time view.
type Snapshot struct {
	GeneratedAt    time.Time      `json:"generated_at"`
	TotalRecords   int            `json:"total_records"`
	ActiveRecords  int            `json:"active_records"`
	IoTRecords     int            `json:"iot_records"`
	BenignRecords  int            `json:"benign_records"`
	TopCountries   map[string]int `json:"top_countries"`
	TopPorts       map[string]int `json:"top_ports"`
	TopVendors     map[string]int `json:"top_vendors"`
	RecordsPerHour float64        `json:"records_per_hour"`
}

// Source is the feed backend the API queries (implemented by the
// pipeline).
type Source interface {
	Records(q Query) []feed.Record
	RecordByIP(ip string) (feed.Record, bool)
	Snapshot() Snapshot
}

// TrafficHour is one hour of aggregated telescope traffic statistics —
// what the paper's receiver stores in MongoDB from the flow detector's
// per-second reports.
type TrafficHour struct {
	Hour         time.Time      `json:"hour"`
	Total        int64          `json:"total"`
	TCP          int64          `json:"tcp"`
	UDP          int64          `json:"udp"`
	ICMP         int64          `json:"icmp"`
	Backscatter  int64          `json:"backscatter"`
	NewScanFlows int64          `json:"new_scan_flows"`
	TopPorts     map[uint16]int `json:"top_ports"`
	PeakPPS      int            `json:"peak_pps"`
	Seconds      int            `json:"seconds"`
}

// TrafficSource is optionally implemented by backends that aggregate the
// flow detector's per-second reports into hourly traffic statistics.
type TrafficSource interface {
	Traffic() []TrafficHour
}

// WhyReport answers "why is this IP in the feed?": the record with its
// provenance summary plus, when the event was traced and the trace is
// still retained, the full span-by-span timing lineage.
type WhyReport struct {
	Record feed.Record `json:"record"`
	// Trace is the retained timing detail for the record's trace ID (nil
	// when the event was untraced or the trace rotated out of the store).
	Trace *trace.Detail `json:"trace,omitempty"`
}

// WhySource is optionally implemented by backends that can join a feed
// record with its trace lineage.
type WhySource interface {
	Why(ip string) (WhyReport, bool)
}

// CampaignTracker is the cross-hour campaign view (implemented by
// campaign.Tracker): stable IDs, lifetimes, and trajectories, versus the
// anonymous one-shot inference the API falls back to without one.
type CampaignTracker interface {
	Campaigns() []campaign.Tracked
	LastUpdate() time.Time
}

// Server is the authenticated REST API server.
type Server struct {
	source   Source
	notifier *notify.Notifier

	mu   sync.RWMutex
	keys map[string]string // token → client name
	// cache is the optional snapshot-backed feed read path (nil = every
	// read walks the document store, the pre-distribution behavior).
	cache *feedserve.Cache
	// tracker is the optional cross-hour campaign view (nil = one-shot
	// inference per request, the legacy behavior).
	tracker CampaignTracker

	metrics *telemetry.Registry
	health  *telemetry.Health

	mux *http.ServeMux
}

// Endpoint describes one registered API route — the same table NewServer
// wires into its mux, exposed so docs/API.md can be diffed against the
// live surface.
type Endpoint struct {
	Method string `json:"method"`
	Path   string `json:"path"`
	// Name labels the endpoint in exiot_api_requests_total.
	Name string `json:"name"`
	// Auth reports whether the route requires an API key.
	Auth bool `json:"auth"`
}

// route pairs an Endpoint with its handler.
type route struct {
	Endpoint
	handler http.HandlerFunc
}

// routes is the single source of truth for the API surface: the mux, the
// per-endpoint request counter, and Endpoints() all derive from it.
func (s *Server) routes() []route {
	ep := func(method, path, name string, auth bool, h http.HandlerFunc) route {
		return route{Endpoint{Method: method, Path: path, Name: name, Auth: auth}, h}
	}
	return []route{
		ep("GET", "/api/v1/health", "health", false, s.handleHealth),
		ep("GET", "/metrics", "metrics", false, s.handleMetrics),
		ep("GET", "/healthz", "healthz", false, s.handleHealthz),
		ep("GET", "/api/v1/snapshot", "snapshot", true, s.handleSnapshot),
		ep("GET", "/api/v1/records", "records", true, s.handleRecords),
		ep("GET", "/api/v1/records/{ip}", "record_by_ip", true, s.handleRecordByIP),
		ep("GET", "/api/v1/records/{ip}/why", "record_why", true, s.handleWhy),
		ep("GET", "/api/v1/stats/countries", "stats_countries", true, s.statsHandler("countries")),
		ep("GET", "/api/v1/stats/ports", "stats_ports", true, s.statsHandler("ports")),
		ep("GET", "/api/v1/stats/vendors", "stats_vendors", true, s.statsHandler("vendors")),
		ep("GET", "/api/v1/stats/traffic", "stats_traffic", true, s.handleTraffic),
		ep("POST", "/api/v1/alerts", "alerts", true, s.handleAlerts),
		ep("GET", "/api/v1/campaigns", "campaigns", true, s.handleCampaigns),
		ep("GET", "/api/v1/export", "export", true, s.handleExport),
		ep("GET", "/api/v1/events", "events", true, s.handleEvents),
		ep("GET", "/{$}", "dashboard", true, s.handleDashboard),
	}
}

// NewServer builds the API over a feed source; notifier may be nil to
// disable alarm registration. Every route is wrapped with the request
// counter; /metrics and /healthz serve the process-wide telemetry.
func NewServer(source Source, notifier *notify.Notifier) *Server {
	s := &Server{
		source:   source,
		notifier: notifier,
		keys:     make(map[string]string),
		metrics:  telemetry.Default(),
		health:   telemetry.DefaultHealth(),
	}
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		h := rt.handler
		if rt.Auth {
			h = s.auth(h)
		}
		mux.HandleFunc(rt.Method+" "+rt.Path, s.metered(rt.Name, h))
	}
	s.mux = mux
	return s
}

// Endpoints returns the API surface in registration order (docs tests).
func (s *Server) Endpoints() []Endpoint {
	rts := s.routes()
	out := make([]Endpoint, len(rts))
	for i, rt := range rts {
		out[i] = rt.Endpoint
	}
	return out
}

// SetFeedCache installs the snapshot-backed feed read path. With a
// cache, /records serves from the atomically-swapped snapshot (cursor
// pagination, ETags, 304s), /export serves the precomputed bulk export,
// and /events streams record deltas. Without one (nil), every read
// walks the document store and the cursor/SSE surface answers 501.
func (s *Server) SetFeedCache(c *feedserve.Cache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
}

// feedCache returns the installed cache, or nil.
func (s *Server) feedCache() *feedserve.Cache {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cache
}

// SetCampaignTracker installs the cross-hour campaign view behind
// /api/v1/campaigns. With a tracker, the endpoint serves tracked
// campaigns — stable IDs, first/last seen, status, history — instead of
// re-running one-shot inference per request.
func (s *Server) SetCampaignTracker(t CampaignTracker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracker = t
}

// campaignTracker returns the installed tracker, or nil.
func (s *Server) campaignTracker() CampaignTracker {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tracker
}

// SetTelemetry overrides the registry and health tracker behind /metrics
// and /healthz (tests inject isolated instances; nil keeps the current
// one).
func (s *Server) SetTelemetry(reg *telemetry.Registry, h *telemetry.Health) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg != nil {
		s.metrics = reg
	}
	if h != nil {
		s.health = h
	}
}

// statusRecorder captures the status code a handler writes so the
// request counter can label it. Go 1.22's mux has no request-pattern
// accessor, hence the explicit per-route name in metered.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so SSE frames leave the
// process as they are written, not when the connection closes.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// metered wraps a handler with the exiot_api_requests_total counter and
// the per-endpoint latency histogram.
func (s *Server) metered(name string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		next(sr, r)
		metAPILatency.With(name).Observe(time.Since(start).Seconds())
		metAPIRequests.With(name, strconv.Itoa(sr.code)).Inc()
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	reg := s.metrics
	s.mu.RUnlock()
	telemetry.MetricsHandler(reg).ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.health
	s.mu.RUnlock()
	telemetry.HealthzHandler(h).ServeHTTP(w, r)
}

var _ http.Handler = (*Server)(nil)

// ServeHTTP dispatches API requests.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// AddKey registers an API key for a named client.
func (s *Server) AddKey(token, client string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[token] = client
}

// auth wraps a handler with bearer/X-API-Key authentication.
func (s *Server) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := r.Header.Get("X-API-Key")
		if token == "" {
			if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
				token = strings.TrimPrefix(h, "Bearer ")
			}
		}
		s.mu.RLock()
		_, ok := s.keys[token]
		s.mu.RUnlock()
		if !ok {
			writeError(w, http.StatusUnauthorized, "missing or invalid API key")
			return
		}
		next(w, r)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.source.Snapshot())
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if c := s.feedCache(); c != nil && s.serveRecordsFromSnapshot(w, r, c, q) {
		return
	}
	if _, ok := q.seqMode(); ok {
		writeError(w, http.StatusNotImplemented, "cursor pagination requires the feed cache (-feed-cache)")
		return
	}
	records := s.source.Records(q)
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(records),
		"records": records,
	})
}

func (s *Server) handleRecordByIP(w http.ResponseWriter, r *http.Request) {
	ip := r.PathValue("ip")
	if _, err := packet.ParseIP(ip); err != nil {
		writeError(w, http.StatusBadRequest, "invalid ip")
		return
	}
	rec, ok := s.source.RecordByIP(ip)
	if !ok {
		writeError(w, http.StatusNotFound, "no record for "+ip)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleWhy serves a record's full provenance: the feed entry plus its
// retained trace detail, when the backend can join the two.
func (s *Server) handleWhy(w http.ResponseWriter, r *http.Request) {
	ws, ok := s.source.(WhySource)
	if !ok {
		writeError(w, http.StatusNotImplemented, "backend does not track record provenance")
		return
	}
	ip := r.PathValue("ip")
	if _, err := packet.ParseIP(ip); err != nil {
		writeError(w, http.StatusBadRequest, "invalid ip")
		return
	}
	rep, ok := ws.Why(ip)
	if !ok {
		writeError(w, http.StatusNotFound, "no record for "+ip)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) statsHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		snap := s.source.Snapshot()
		var data map[string]int
		switch kind {
		case "countries":
			data = snap.TopCountries
		case "ports":
			data = snap.TopPorts
		case "vendors":
			data = snap.TopVendors
		}
		writeJSON(w, http.StatusOK, data)
	}
}

// alertRequest is the alarm-registration payload.
type alertRequest struct {
	Prefix string `json:"prefix"`
	Email  string `json:"email"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.notifier == nil {
		writeError(w, http.StatusServiceUnavailable, "notifications disabled")
		return
	}
	var req alertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body")
		return
	}
	prefix, err := packet.ParsePrefix(req.Prefix)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid prefix: "+err.Error())
		return
	}
	if !strings.Contains(req.Email, "@") {
		writeError(w, http.StatusBadRequest, "invalid email")
		return
	}
	s.notifier.Subscribe(prefix, req.Email)
	writeJSON(w, http.StatusCreated, map[string]string{
		"status": "subscribed",
		"prefix": prefix.String(),
		"email":  req.Email,
	})
}

// handleCampaigns runs campaign inference over the feed and returns the
// inferred groups — the campaign-analysis extension exposed as an API.
func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	minSize := 0
	if v := r.URL.Query().Get("min_size"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "invalid min_size")
			return
		}
		minSize = n
	}
	if tr := s.campaignTracker(); tr != nil {
		s.serveTrackedCampaigns(w, tr, minSize)
		return
	}
	records := s.source.Records(Query{Label: feed.LabelIoT, Limit: 0})
	campaigns := campaign.Infer(records, campaign.Config{MinSize: minSize})
	type entry struct {
		Signature string         `json:"signature"`
		Tool      string         `json:"tool,omitempty"`
		Ports     []uint16       `json:"ports"`
		Devices   int            `json:"devices"`
		Records   int            `json:"records"`
		Countries map[string]int `json:"countries"`
	}
	out := make([]entry, 0, len(campaigns))
	for i := range campaigns {
		c := &campaigns[i]
		out = append(out, entry{
			Signature: c.Signature.String(),
			Tool:      c.Signature.Tool,
			Ports:     c.Signature.Ports,
			Devices:   c.Size(),
			Records:   c.Records,
			Countries: c.Countries,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "campaigns": out})
}

// TrackedCampaignJSON is one tracked campaign on the wire: the legacy
// entry fields plus the identity and lifetime the tracker maintains.
type TrackedCampaignJSON struct {
	ID        string                  `json:"id"`
	Signature string                  `json:"signature"`
	Tool      string                  `json:"tool,omitempty"`
	Ports     []uint16                `json:"ports"`
	Devices   int                     `json:"devices"`
	Records   int                     `json:"records"`
	Countries map[string]int          `json:"countries"`
	FirstSeen time.Time               `json:"first_seen"`
	LastSeen  time.Time               `json:"last_seen"`
	Status    string                  `json:"status"` // "active" | "decaying"
	Updates   int                     `json:"updates"`
	History   []campaign.HistoryPoint `json:"history,omitempty"`
}

// serveTrackedCampaigns renders the cross-hour campaign table.
func (s *Server) serveTrackedCampaigns(w http.ResponseWriter, tr CampaignTracker, minSize int) {
	asOf := tr.LastUpdate()
	tracked := tr.Campaigns()
	out := make([]TrackedCampaignJSON, 0, len(tracked))
	for i := range tracked {
		c := &tracked[i]
		if c.Size() < minSize {
			continue
		}
		status := "active"
		if !c.Active(asOf) {
			status = "decaying"
		}
		out = append(out, TrackedCampaignJSON{
			ID:        c.ID,
			Signature: c.Signature.String(),
			Tool:      c.Signature.Tool,
			Ports:     c.Signature.Ports,
			Devices:   c.Size(),
			Records:   c.Records,
			Countries: c.Countries,
			FirstSeen: c.FirstSeen,
			LastSeen:  c.LastSeen,
			Status:    status,
			Updates:   c.Updates,
			History:   c.History,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":     len(out),
		"tracked":   true,
		"as_of":     asOf,
		"campaigns": out,
	})
}

// handleTraffic serves the hourly telescope traffic statistics when the
// backend provides them.
func (s *Server) handleTraffic(w http.ResponseWriter, _ *http.Request) {
	ts, ok := s.source.(TrafficSource)
	if !ok {
		writeError(w, http.StatusNotImplemented, "backend does not aggregate traffic reports")
		return
	}
	hours := ts.Traffic()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(hours), "hours": hours})
}

func parseQuery(r *http.Request) (Query, error) {
	var q Query
	v := r.URL.Query()
	q.Label = v.Get("label")
	if q.Label != "" && q.Label != feed.LabelIoT && q.Label != feed.LabelNonIoT {
		return q, fmt.Errorf("label must be %q or %q", feed.LabelIoT, feed.LabelNonIoT)
	}
	q.Country = v.Get("country")
	if asn := v.Get("asn"); asn != "" {
		n, err := strconv.Atoi(asn)
		if err != nil {
			return q, fmt.Errorf("invalid asn %q", asn)
		}
		q.ASN = n
	}
	if act := v.Get("active"); act != "" {
		b, err := strconv.ParseBool(act)
		if err != nil {
			return q, fmt.Errorf("invalid active %q", act)
		}
		q.Active = &b
	}
	if since := v.Get("since"); since != "" {
		// Dual form: an RFC3339 timestamp filters by detection time, a
		// bare integer is a change-sequence cursor for snapshot deltas.
		if n, err := strconv.ParseUint(since, 10, 64); err == nil {
			q.SinceSeq = &n
		} else {
			ts, err := time.Parse(time.RFC3339, since)
			if err != nil {
				return q, fmt.Errorf("invalid since %q (want RFC3339 or a change sequence)", since)
			}
			q.Since = ts
		}
	}
	if cur := v.Get("cursor"); cur != "" {
		n, err := strconv.ParseUint(cur, 10, 64)
		if err != nil {
			return q, fmt.Errorf("invalid cursor %q", cur)
		}
		q.Cursor = &n
	}
	if pfx := v.Get("prefix"); pfx != "" {
		p, err := packet.ParsePrefix(pfx)
		if err != nil {
			return q, err
		}
		q.Prefix = &p
	}
	q.Limit = 100
	if lim := v.Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n < 0 {
			return q, fmt.Errorf("invalid limit %q", lim)
		}
		q.Limit = n
	}
	return q, nil
}

// Matches reports whether rec satisfies the query (shared by feed
// backends).
func (q *Query) Matches(rec *feed.Record) bool {
	if q.Label != "" && rec.Label != q.Label {
		return false
	}
	if q.Country != "" && rec.CountryCode != q.Country {
		return false
	}
	if q.ASN != 0 && rec.ASN != q.ASN {
		return false
	}
	if q.Active != nil && rec.Active != *q.Active {
		return false
	}
	if !q.Since.IsZero() && rec.DetectedAt.Before(q.Since) {
		return false
	}
	if q.Prefix != nil {
		ip, err := packet.ParseIP(rec.IP)
		if err != nil || !q.Prefix.Contains(ip) {
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // header already sent; encode errors are unrecoverable
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
