package api

// This file is the snapshot-backed feed distribution read path: when a
// feedserve.Cache is installed, /records and /export serve pre-marshaled
// bytes from an immutable snapshot (one atomic pointer load, zero locks),
// with strong ETags, If-None-Match 304s, sequence-cursor pagination, and
// /events pushing record deltas over SSE. Without a cache the handlers
// in api.go/dashboard.go keep the original store-walking behavior.

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"exiot/internal/feedserve"
)

// sseHeartbeat is the idle-connection keepalive cadence on /events:
// a comment frame that lets both sides detect a dead peer.
const sseHeartbeat = 15 * time.Second

// snapshotETag derives a strong ETag from the snapshot's content
// fingerprint plus the request's query string, so every distinct view
// (page, filter, delta window) validates independently. The fingerprint
// hashes the export bytes, so additions, updates, and deletions all
// change it.
func snapshotETag(snap *feedserve.Snapshot, rawQuery string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, rawQuery)
	return fmt.Sprintf("\"%016x-%x\"", snap.Fingerprint(), h.Sum64())
}

// etagMatch implements If-None-Match: a comma-separated list of entity
// tags, or "*". Weak-validator prefixes are ignored — the snapshot path
// only ever issues strong tags.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// checkConditional writes a body-less 304 when the client's validator
// still matches, counting the outcome either way. Returns true when the
// request was satisfied by the 304.
func checkConditional(w http.ResponseWriter, r *http.Request, endpoint, etag string) bool {
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		metConditional.With(endpoint, "hit").Inc()
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	metConditional.With(endpoint, "miss").Inc()
	return false
}

func acceptsGzip(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
}

// filterItems narrows items to those matching the query's content
// filters; with none set it returns items unchanged.
func filterItems(items []*feedserve.Item, q *Query) []*feedserve.Item {
	if !q.filters() {
		return items
	}
	out := make([]*feedserve.Item, 0, len(items))
	for _, it := range items {
		if q.Matches(&it.Rec) {
			out = append(out, it)
		}
	}
	return out
}

// snapshotWindow selects the legacy /records view from a snapshot:
// insertion order, content filters applied, most recent Limit entries —
// the exact record set source.Records(q) would return.
func snapshotWindow(snap *feedserve.Snapshot, q *Query) []*feedserve.Item {
	items := snap.Items()
	if !q.filters() {
		start := 0
		if q.Limit > 0 && len(items) > q.Limit {
			start = len(items) - q.Limit
		}
		sel := make([]*feedserve.Item, 0, len(items)-start)
		for i := start; i < len(items); i++ {
			sel = append(sel, &items[i])
		}
		return sel
	}
	sel := make([]*feedserve.Item, 0, len(items))
	for i := range items {
		if q.Matches(&items[i].Rec) {
			sel = append(sel, &items[i])
		}
	}
	if q.Limit > 0 && len(sel) > q.Limit {
		sel = sel[len(sel)-q.Limit:]
	}
	return sel
}

// recordsBody assembles the /records JSON response from pre-marshaled
// NDJSON lines. In legacy mode (cursor == nil) the bytes are identical
// to writeJSON on {"count": n, "records": <records>} — including
// "records":null when empty — so cached and store-walked responses
// cannot drift.
type cursorInfo struct {
	next    uint64
	hasMore bool
}

func recordsBody(items []*feedserve.Item, cursor *cursorInfo) []byte {
	var b bytes.Buffer
	b.WriteString(`{"count":`)
	b.WriteString(strconv.Itoa(len(items)))
	if cursor != nil {
		fmt.Fprintf(&b, `,"has_more":%t,"next_cursor":%d`, cursor.hasMore, cursor.next)
	}
	b.WriteString(`,"records":`)
	if len(items) == 0 {
		b.WriteString("null")
	} else {
		b.WriteByte('[')
		for i, it := range items {
			if i > 0 {
				b.WriteByte(',')
			}
			b.Write(it.Line[:len(it.Line)-1]) // strip the NDJSON '\n'
		}
		b.WriteByte(']')
	}
	b.WriteString("}\n")
	return b.Bytes()
}

// serveRecordsFromSnapshot handles GET /records off the feed snapshot.
// Returns false if no snapshot is available yet (caller falls back to
// the store walk).
func (s *Server) serveRecordsFromSnapshot(w http.ResponseWriter, r *http.Request, c *feedserve.Cache, q Query) bool {
	snap := c.Current()
	if snap == nil {
		return false
	}
	etag := snapshotETag(snap, r.URL.RawQuery)
	if checkConditional(w, r, "records", etag) {
		return true
	}

	var body []byte
	if after, ok := q.seqMode(); ok {
		// Delta mode: everything past the cursor in change-sequence order.
		all := filterItems(snap.ItemsSince(after), &q)
		info := cursorInfo{next: after}
		sel := all
		if q.Limit > 0 && len(all) > q.Limit {
			sel = all[:q.Limit]
			info.hasMore = true
			info.next = sel[len(sel)-1].Seq
		} else if snap.LastSeq() > after {
			// Caught up with this snapshot: advance past everything in it.
			info.next = snap.LastSeq()
		}
		body = recordsBody(sel, &info)
	} else {
		body = recordsBody(snapshotWindow(snap, &q), nil)
	}

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	return true
}

// serveExportFromSnapshot handles GET /export off the feed snapshot.
// The unfiltered bulk path writes the precomputed export buffer (gzip'd
// when the client accepts it); filtered, limited, and delta requests
// concatenate the matching pre-marshaled lines. Either way the NDJSON
// bytes are identical to the store-walked encoder output. Returns false
// if no snapshot is available yet.
func (s *Server) serveExportFromSnapshot(w http.ResponseWriter, r *http.Request, c *feedserve.Cache, q Query) bool {
	snap := c.Current()
	if snap == nil {
		return false
	}
	etag := snapshotETag(snap, r.URL.RawQuery)
	if checkConditional(w, r, "export", etag) {
		return true
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Disposition", `attachment; filename="exiot-export.ndjson"`)

	after, seq := q.seqMode()
	if !seq && !q.filters() && q.Limit == 0 {
		body := snap.ExportNDJSON()
		if acceptsGzip(r) {
			w.Header().Set("Content-Encoding", "gzip")
			body = snap.ExportGzip()
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return true
	}

	var sel []*feedserve.Item
	if seq {
		sel = filterItems(snap.ItemsSince(after), &q)
		if q.Limit > 0 && len(sel) > q.Limit {
			sel = sel[:q.Limit]
		}
	} else {
		sel = snapshotWindow(snap, &q)
	}
	w.WriteHeader(http.StatusOK)
	for _, it := range sel {
		if _, err := w.Write(it.Line); err != nil {
			return true // client went away mid-stream
		}
	}
	return true
}

// handleEvents streams record deltas as Server-Sent Events. Each frame
// carries the record's change sequence in the id: field; a reconnecting
// consumer sends it back as Last-Event-ID (or ?since=<seq>) and replays
// what it missed from the then-current snapshot before going live.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.feedCache()
	if c == nil {
		writeError(w, http.StatusNotImplemented, "event streaming requires the feed cache (-feed-cache)")
		return
	}
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid since (want a change sequence)")
			return
		}
		since = n
	}
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid Last-Event-ID")
			return
		}
		since = n
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// Replay capture and live registration happen under one cache lock,
	// so a delta is either in the replay or on the queue — never lost.
	replay, sub := c.Subscribe(since)
	defer c.Unsubscribe(sub)

	if _, err := io.WriteString(w, "retry: 2000\n\n"); err != nil {
		return
	}
	for _, ev := range replay {
		if _, err := w.Write(ev.Frame); err != nil {
			return
		}
	}
	fl.Flush()

	beat := time.NewTicker(sseHeartbeat)
	defer beat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				// Dropped for lagging, or the cache shut down; the client's
				// EventSource reconnects with Last-Event-ID and replays.
				return
			}
			if _, err := w.Write(ev.Frame); err != nil {
				return
			}
			fl.Flush()
		case <-beat.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
