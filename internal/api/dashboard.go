package api

import (
	"encoding/json"

	"html/template"
	"net/http"
)

// This file implements the front-end surfaces of §IV beyond the JSON API:
// the web dashboard (Internet snapshot + top-N visualizations + a query
// builder form) and the bulk raw-data export security operators ingest.

// dashboardTemplate renders the hub page. It is deliberately dependency-
// free: one HTML page, no scripts beyond a fetch-and-fill loop.
var dashboardTemplate = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>eX-IoT — exploited IoT CTI feed</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #222; }
  h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.6rem; }
  .tiles { display: flex; gap: 1rem; flex-wrap: wrap; }
  .tile { border: 1px solid #ddd; border-radius: .5rem; padding: .8rem 1.2rem; min-width: 9rem; }
  .tile .num { font-size: 1.6rem; font-weight: 600; }
  table { border-collapse: collapse; margin-top: .5rem; }
  td, th { border: 1px solid #ddd; padding: .25rem .6rem; text-align: left; }
  code { background: #f4f4f4; padding: 0 .3rem; }
</style>
</head>
<body>
<h1>eX-IoT — Internet snapshot</h1>
<p>Generated {{.GeneratedAt}} · records/hour {{printf "%.1f" .RecordsPerHour}}</p>
<div class="tiles">
  <div class="tile"><div class="num">{{.TotalRecords}}</div>total records</div>
  <div class="tile"><div class="num">{{.IoTRecords}}</div>compromised IoT</div>
  <div class="tile"><div class="num">{{.ActiveRecords}}</div>actively scanning</div>
  <div class="tile"><div class="num">{{.BenignRecords}}</div>benign scanners</div>
</div>

<h2>Top countries (IoT)</h2>
<table><tr><th>country</th><th>records</th></tr>
{{range $k, $v := .TopCountries}}<tr><td>{{$k}}</td><td>{{$v}}</td></tr>{{end}}
</table>

<h2>Top targeted ports (IoT)</h2>
<table><tr><th>port</th><th>records</th></tr>
{{range $k, $v := .TopPorts}}<tr><td>{{$k}}</td><td>{{$v}}</td></tr>{{end}}
</table>

<h2>Top vendors (IoT)</h2>
<table><tr><th>vendor</th><th>records</th></tr>
{{range $k, $v := .TopVendors}}<tr><td>{{$k}}</td><td>{{$v}}</td></tr>{{end}}
</table>

<h2>Query builder</h2>
<p>The REST API accepts <code>label</code>, <code>country</code>,
<code>asn</code>, <code>active</code>, <code>since</code>,
<code>prefix</code>, and <code>limit</code>:</p>
<p><code>GET /api/v1/records?label=IoT&amp;country=CN&amp;limit=50</code>
(authenticate with <code>X-API-Key</code>)</p>
<p>Bulk export: <code>GET /api/v1/export</code> (NDJSON, one record per line)</p>
</body>
</html>
`))

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	snap := s.source.Snapshot()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashboardTemplate.Execute(w, snap); err != nil {
		// Header already sent; nothing recoverable.
		return
	}
}

// handleExport streams the feed as NDJSON — the paper's bulk raw-data
// channel for researchers and operators. Filters mirror /records. With
// the feed cache installed, the unfiltered bulk path serves the
// precomputed (optionally gzip'd) export buffer with a strong ETag.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if r.URL.Query().Get("limit") == "" {
		q.Limit = 0 // bulk export defaults to everything
	}
	if c := s.feedCache(); c != nil && s.serveExportFromSnapshot(w, r, c, q) {
		return
	}
	if _, ok := q.seqMode(); ok {
		writeError(w, http.StatusNotImplemented, "cursor pagination requires the feed cache (-feed-cache)")
		return
	}
	records := s.source.Records(q)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Content-Disposition", `attachment; filename="exiot-export.ndjson"`)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return // client went away mid-stream
		}
	}
}
