package api

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"exiot/internal/feed"
	"exiot/internal/feedserve"
	"exiot/internal/store"
)

// collSource backs the API with a real document-store collection using
// the pipeline's query semantics (filter in insertion order, most
// recent Limit entries win) — the reference the snapshot path must
// reproduce byte for byte.
type collSource struct {
	coll *store.Collection[feed.Record]
}

func (c *collSource) Records(q Query) []feed.Record {
	out := c.coll.Find(func(r feed.Record) bool { return q.Matches(&r) })
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

func (c *collSource) RecordByIP(ip string) (feed.Record, bool) {
	matches := c.coll.Find(func(r feed.Record) bool { return r.IP == ip })
	if len(matches) == 0 {
		return feed.Record{}, false
	}
	return matches[len(matches)-1], true
}

func (c *collSource) Snapshot() Snapshot { return Snapshot{GeneratedAt: t0} }

func serveRec(i int, label string) feed.Record {
	return feed.Record{
		IP:          fmt.Sprintf("10.0.%d.%d", i/256, i%256),
		Label:       label,
		CountryCode: "CN",
		Active:      true,
		DetectedAt:  t0.Add(time.Duration(i) * time.Minute),
		TargetPorts: map[uint16]int{23: 100 + i},
	}
}

// cachedServer builds two API servers over one collection: legacy
// (store-walking) and cached (snapshot-backed), so responses can be
// compared directly. Background rebuilds are off; tests drive
// cache.Rebuild explicitly.
func cachedServer(t *testing.T, n int) (legacy, cached *httptest.Server, coll *store.Collection[feed.Record], cache *feedserve.Cache) {
	t.Helper()
	coll = store.NewCollection[feed.Record]()
	for i := 0; i < n; i++ {
		label := feed.LabelIoT
		if i%4 == 3 {
			label = feed.LabelNonIoT
		}
		coll.Insert(t0.Add(time.Duration(i)*time.Minute), serveRec(i, label))
	}
	src := &collSource{coll: coll}

	mk := func(withCache bool) *httptest.Server {
		s := NewServer(src, nil)
		s.AddKey("k", "test")
		if withCache {
			cache = feedserve.New(coll, feedserve.Config{Clock: func() time.Time { return t0 }})
			t.Cleanup(cache.Close)
			s.SetFeedCache(cache)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		return ts
	}
	legacy = mk(false)
	cached = mk(true)
	return legacy, cached, coll, cache
}

func TestSnapshotRecordsMatchLegacy(t *testing.T) {
	legacy, cached, _, _ := cachedServer(t, 10)
	paths := []string{
		"/api/v1/records",
		"/api/v1/records?limit=3",
		"/api/v1/records?label=IoT",
		"/api/v1/records?label=non-IoT&limit=2",
		"/api/v1/records?country=SE", // no matches → "records":null
		"/api/v1/records?since=" + t0.Add(5*time.Minute).Format(time.RFC3339),
	}
	for _, path := range paths {
		_, want := get(t, legacy, path, "k")
		resp, got := get(t, cached, path, "k")
		if !bytes.Equal(got, want) {
			t.Errorf("%s: snapshot body differs from store walk:\n%s\nvs\n%s", path, got, want)
		}
		if resp.Header.Get("ETag") == "" {
			t.Errorf("%s: snapshot response has no ETag", path)
		}
	}
}

func TestConditionalRecords304(t *testing.T) {
	_, cached, coll, cache := cachedServer(t, 5)
	resp, body := get(t, cached, "/api/v1/records", "k")
	etag := resp.Header.Get("ETag")
	if etag == "" || len(body) == 0 {
		t.Fatalf("initial response: etag=%q body=%d bytes", etag, len(body))
	}

	match := func(header string, want int) []byte {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, cached.URL+"/api/v1/records", nil)
		req.Header.Set("X-API-Key", "k")
		req.Header.Set("If-None-Match", header)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("If-None-Match %q: status = %d, want %d", header, resp.StatusCode, want)
		}
		return b
	}

	// Matching validator → 304 with no body; comma lists and * match too.
	for _, h := range []string{etag, `"bogus", ` + etag, "*", "W/" + etag} {
		if b := match(h, http.StatusNotModified); len(b) != 0 {
			t.Errorf("304 for %q carried a body: %q", h, b)
		}
	}
	// Stale validator → full response.
	if b := match(`"deadbeef-0"`, http.StatusOK); len(b) == 0 {
		t.Error("stale validator got an empty 200")
	}

	// A write changes the feed → old validator no longer matches.
	coll.Insert(t0.Add(time.Hour), serveRec(99, feed.LabelIoT))
	cache.Rebuild()
	if b := match(etag, http.StatusOK); len(b) == 0 {
		t.Error("post-write conditional should return the new body")
	}
	resp2, _ := get(t, cached, "/api/v1/records", "k")
	if resp2.Header.Get("ETag") == etag {
		t.Error("ETag unchanged after a write")
	}

	// Different query strings validate independently.
	respA, _ := get(t, cached, "/api/v1/records?limit=2", "k")
	if respA.Header.Get("ETag") == resp2.Header.Get("ETag") {
		t.Error("distinct queries share an ETag")
	}
}

// cursorPage is the /records delta-mode response shape.
type cursorPage struct {
	Count      int           `json:"count"`
	HasMore    bool          `json:"has_more"`
	NextCursor uint64        `json:"next_cursor"`
	Records    []feed.Record `json:"records"`
}

func getPage(t *testing.T, ts *httptest.Server, path string) cursorPage {
	t.Helper()
	resp, body := get(t, ts, path, "k")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status = %d: %s", path, resp.StatusCode, body)
	}
	var page cursorPage
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return page
}

func TestCursorPagination(t *testing.T) {
	_, cached, _, _ := cachedServer(t, 10)
	var seen []string
	cursor := uint64(0)
	pages := 0
	for {
		page := getPage(t, cached, fmt.Sprintf("/api/v1/records?cursor=%d&limit=3", cursor))
		for _, r := range page.Records {
			seen = append(seen, r.IP)
		}
		pages++
		if !page.HasMore {
			if page.NextCursor < cursor {
				t.Fatalf("final next_cursor went backwards: %d < %d", page.NextCursor, cursor)
			}
			cursor = page.NextCursor
			break
		}
		if page.NextCursor <= cursor {
			t.Fatalf("next_cursor did not advance: %d -> %d", cursor, page.NextCursor)
		}
		cursor = page.NextCursor
	}
	if pages != 4 || len(seen) != 10 {
		t.Fatalf("pagination: %d pages, %d records, want 4/10", pages, len(seen))
	}
	uniq := map[string]bool{}
	for _, ip := range seen {
		if uniq[ip] {
			t.Fatalf("record %s delivered twice", ip)
		}
		uniq[ip] = true
	}
	// Caught-up consumer polls with the final cursor and gets nothing.
	page := getPage(t, cached, fmt.Sprintf("/api/v1/records?cursor=%d&limit=3", cursor))
	if page.Count != 0 || page.HasMore {
		t.Fatalf("caught-up page = %+v", page)
	}
	// ?since=<seq> is the same filter spelled differently.
	page = getPage(t, cached, "/api/v1/records?since=7&limit=0")
	if page.Count != 3 {
		t.Fatalf("since=7 returned %d records, want 3", page.Count)
	}
}

func TestCursorStableAcrossSnapshotSwaps(t *testing.T) {
	_, cached, coll, cache := cachedServer(t, 9)
	// Page 1.
	page := getPage(t, cached, "/api/v1/records?cursor=0&limit=4")
	seen := map[string]int{}
	for _, r := range page.Records {
		seen[r.IP]++
	}
	cursor := page.NextCursor

	// Mid-pagination writes: new inserts land past the tail seqs, so the
	// in-flight cursor neither skips nor re-delivers existing records.
	for i := 0; i < 3; i++ {
		coll.Insert(t0.Add(time.Duration(100+i)*time.Minute), serveRec(100+i, feed.LabelIoT))
		cache.Rebuild()
	}

	for page.HasMore || cursor < cache.Current().LastSeq() {
		page = getPage(t, cached, fmt.Sprintf("/api/v1/records?cursor=%d&limit=4", cursor))
		for _, r := range page.Records {
			seen[r.IP]++
		}
		if page.NextCursor <= cursor && page.Count > 0 {
			t.Fatalf("cursor stuck at %d", cursor)
		}
		cursor = page.NextCursor
		if page.Count == 0 {
			break
		}
	}
	if len(seen) != 12 {
		t.Fatalf("saw %d distinct records, want 12 (9 original + 3 mid-pagination)", len(seen))
	}
	for ip, n := range seen {
		if n != 1 {
			t.Fatalf("record %s delivered %d times", ip, n)
		}
	}
}

func TestCursorWithoutCacheIs501(t *testing.T) {
	legacy, _, _, _ := cachedServer(t, 3)
	for _, path := range []string{"/api/v1/records?cursor=5", "/api/v1/export?since=5"} {
		resp, _ := get(t, legacy, path, "k")
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s without cache: status = %d, want 501", path, resp.StatusCode)
		}
	}
	// SSE needs the cache too.
	resp, _ := get(t, legacy, "/api/v1/events", "k")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("/events without cache: status = %d, want 501", resp.StatusCode)
	}
}

func TestSnapshotExportPaths(t *testing.T) {
	legacy, cached, _, cache := cachedServer(t, 8)

	// Bulk export: snapshot bytes identical to the store walk.
	_, want := get(t, legacy, "/api/v1/export", "k")
	resp, got := get(t, cached, "/api/v1/export", "k")
	if !bytes.Equal(got, want) {
		t.Fatalf("bulk export differs:\n%s\nvs\n%s", got, want)
	}
	if resp.Header.Get("ETag") == "" {
		t.Error("bulk export has no ETag")
	}

	// Filtered and limited exports match the legacy path too.
	for _, path := range []string{"/api/v1/export?label=IoT", "/api/v1/export?limit=3"} {
		_, want := get(t, legacy, path, "k")
		_, got := get(t, cached, path, "k")
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs from store walk", path)
		}
	}

	// gzip negotiation serves the precomputed compressed buffer.
	req, _ := http.NewRequest(http.MethodGet, cached.URL+"/api/v1/export", nil)
	req.Header.Set("X-API-Key", "k")
	req.Header.Set("Accept-Encoding", "gzip")
	gresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if ce := gresp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding = %q", ce)
	}
	zr, err := gzip.NewReader(gresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatal("gzip export does not decompress to the store-walked bytes")
	}

	// Delta export: only lines past the cursor.
	last := cache.Current().LastSeq()
	_, body := get(t, cached, fmt.Sprintf("/api/v1/export?since=%d", last-2), "k")
	if lines := strings.Count(string(body), "\n"); lines != 2 {
		t.Fatalf("delta export = %d lines, want 2", lines)
	}

	// Conditional bulk export: 304 with no body.
	req, _ = http.NewRequest(http.MethodGet, cached.URL+"/api/v1/export", nil)
	req.Header.Set("X-API-Key", "k")
	req.Header.Set("If-None-Match", resp.Header.Get("ETag"))
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	b, _ := io.ReadAll(cresp.Body)
	if cresp.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("conditional export: status=%d body=%d bytes", cresp.StatusCode, len(b))
	}
}

// sseLines streams response lines into a channel so tests can apply
// timeouts to reads from a connection that never closes on its own.
func sseLines(t *testing.T, body io.Reader) <-chan string {
	t.Helper()
	ch := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(body)
		for sc.Scan() {
			ch <- sc.Text()
		}
		close(ch)
	}()
	return ch
}

func nextEventID(t *testing.T, lines <-chan string) (string, bool) {
	t.Helper()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				return "", false
			}
			if strings.HasPrefix(line, "id: ") {
				return strings.TrimPrefix(line, "id: "), true
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for an SSE event")
		}
	}
}

func TestSSEDeliversLiveWrites(t *testing.T) {
	_, cached, coll, cache := cachedServer(t, 2)

	req, _ := http.NewRequest(http.MethodGet, cached.URL+"/api/v1/events", nil)
	req.Header.Set("X-API-Key", "k")
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	lines := sseLines(t, resp.Body)

	// Replay: Last-Event-ID 1 means the consumer already has seq 1, so
	// the stream opens with seq 2.
	if id, ok := nextEventID(t, lines); !ok || id != "2" {
		t.Fatalf("replay id = %q, want 2", id)
	}

	// A record written after subscribing is pushed live.
	coll.Insert(t0.Add(time.Hour), serveRec(50, feed.LabelIoT))
	cache.Rebuild()
	if id, ok := nextEventID(t, lines); !ok || id != "3" {
		t.Fatalf("live event id = %q, want 3", id)
	}

	// The frame's data line is the record's JSON.
	var dataLine string
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed before data line")
			}
			if strings.HasPrefix(line, "data: ") {
				dataLine = strings.TrimPrefix(line, "data: ")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for data line")
		}
		if dataLine != "" {
			break
		}
	}
	var rec feed.Record
	if err := json.Unmarshal([]byte(dataLine), &rec); err != nil {
		t.Fatalf("data line %q: %v", dataLine, err)
	}

	// Closing the cache ends the stream (client would then reconnect).
	cache.Close()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-lines:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream did not end after cache close")
		}
	}
}

func TestSSEBadResumeCursors(t *testing.T) {
	_, cached, _, _ := cachedServer(t, 1)
	for _, hdr := range []bool{true, false} {
		req, _ := http.NewRequest(http.MethodGet, cached.URL+"/api/v1/events?since=banana", nil)
		if hdr {
			req, _ = http.NewRequest(http.MethodGet, cached.URL+"/api/v1/events", nil)
			req.Header.Set("Last-Event-ID", "banana")
		}
		req.Header.Set("X-API-Key", "k")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad cursor (header=%v): status = %d, want 400", hdr, resp.StatusCode)
		}
	}
}
