package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"exiot/internal/campaign"
	"exiot/internal/feed"
	"exiot/internal/notify"
)

var t0 = time.Date(2020, 12, 9, 0, 0, 0, 0, time.UTC)

// fakeSource is an in-test feed backend.
type fakeSource struct {
	records []feed.Record
}

func (f *fakeSource) Records(q Query) []feed.Record {
	var out []feed.Record
	for _, r := range f.records {
		if q.Matches(&r) {
			out = append(out, r)
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

func (f *fakeSource) RecordByIP(ip string) (feed.Record, bool) {
	for _, r := range f.records {
		if r.IP == ip {
			return r, true
		}
	}
	return feed.Record{}, false
}

func (f *fakeSource) Snapshot() Snapshot {
	return Snapshot{GeneratedAt: t0, TotalRecords: len(f.records),
		TopCountries: map[string]int{"CN": 3}, TopPorts: map[string]int{"23": 5},
		TopVendors: map[string]int{"MikroTik": 2}}
}

func testServer(t *testing.T) (*httptest.Server, *fakeSource, *notify.Notifier) {
	t.Helper()
	src := &fakeSource{records: []feed.Record{
		{IP: "1.2.3.4", Label: feed.LabelIoT, CountryCode: "CN", ASN: 4134, Active: true, DetectedAt: t0},
		{IP: "5.6.7.8", Label: feed.LabelNonIoT, CountryCode: "US", ASN: 7922, Active: false, DetectedAt: t0.Add(time.Hour)},
		{IP: "9.10.11.12", Label: feed.LabelIoT, CountryCode: "CN", ASN: 4837, Active: true, DetectedAt: t0.Add(2 * time.Hour)},
	}}
	notifier := notify.New(notify.Config{}, &notify.MemoryMailer{})
	s := NewServer(src, notifier)
	s.AddKey("secret-token", "test-client")
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, src, notifier
}

func get(t *testing.T, ts *httptest.Server, path, token string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("X-API-Key", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHealthIsPublic(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, body := get(t, ts, "/api/v1/health", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "ok") {
		t.Errorf("body = %s", body)
	}
}

func TestAuthRequired(t *testing.T) {
	ts, _, _ := testServer(t)
	for _, path := range []string{"/api/v1/snapshot", "/api/v1/records", "/api/v1/records/1.2.3.4", "/api/v1/stats/ports"} {
		resp, _ := get(t, ts, path, "")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s without key: status = %d, want 401", path, resp.StatusCode)
		}
		resp, _ = get(t, ts, path, "wrong-token")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s with bad key: status = %d, want 401", path, resp.StatusCode)
		}
	}
}

func TestBearerTokenAccepted(t *testing.T) {
	ts, _, _ := testServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/snapshot", nil)
	req.Header.Set("Authorization", "Bearer secret-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("bearer auth status = %d", resp.StatusCode)
	}
}

func TestRecordsQuery(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, body := get(t, ts, "/api/v1/records?label=IoT&country=CN", "secret-token")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Count   int           `json:"count"`
		Records []feed.Record `json:"records"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 {
		t.Errorf("count = %d, want 2", out.Count)
	}
	for _, r := range out.Records {
		if r.Label != feed.LabelIoT || r.CountryCode != "CN" {
			t.Errorf("filter leaked record %+v", r)
		}
	}
}

func TestRecordsQueryValidation(t *testing.T) {
	ts, _, _ := testServer(t)
	bad := []string{
		"/api/v1/records?label=Gadget",
		"/api/v1/records?asn=xyz",
		"/api/v1/records?active=maybe",
		"/api/v1/records?since=yesterday",
		"/api/v1/records?prefix=banana",
		"/api/v1/records?limit=-5",
	}
	for _, path := range bad {
		resp, _ := get(t, ts, path, "secret-token")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestRecordByIP(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, body := get(t, ts, "/api/v1/records/1.2.3.4", "secret-token")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rec feed.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.IP != "1.2.3.4" {
		t.Errorf("record = %+v", rec)
	}
	resp, _ = get(t, ts, "/api/v1/records/8.8.8.8", "secret-token")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing record status = %d", resp.StatusCode)
	}
	resp, _ = get(t, ts, "/api/v1/records/not-an-ip", "secret-token")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ip status = %d", resp.StatusCode)
	}
}

func TestStatsEndpoints(t *testing.T) {
	ts, _, _ := testServer(t)
	for path, wantKey := range map[string]string{
		"/api/v1/stats/countries": "CN",
		"/api/v1/stats/ports":     "23",
		"/api/v1/stats/vendors":   "MikroTik",
	} {
		resp, body := get(t, ts, path, "secret-token")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d", path, resp.StatusCode)
		}
		var data map[string]int
		if err := json.Unmarshal(body, &data); err != nil {
			t.Fatal(err)
		}
		if _, ok := data[wantKey]; !ok {
			t.Errorf("%s: key %q missing in %v", path, wantKey, data)
		}
	}
}

func TestAlertRegistration(t *testing.T) {
	ts, _, notifier := testServer(t)
	body := strings.NewReader(`{"prefix":"198.51.100.0/24","email":"soc@example.org"}`)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/alerts", body)
	req.Header.Set("X-API-Key", "secret-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	subs := notifier.Subscriptions()
	if len(subs) != 1 || subs[0].Email != "soc@example.org" {
		t.Errorf("subscriptions = %+v", subs)
	}

	// Validation failures.
	for _, payload := range []string{
		`not json`,
		`{"prefix":"banana","email":"a@b.c"}`,
		`{"prefix":"1.2.3.0/24","email":"nomail"}`,
	} {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/alerts", strings.NewReader(payload))
		req.Header.Set("X-API-Key", "secret-token")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q: status = %d, want 400", payload, resp.StatusCode)
		}
	}
}

func TestQueryMatches(t *testing.T) {
	rec := feed.Record{IP: "1.2.3.4", Label: feed.LabelIoT, CountryCode: "CN", ASN: 4134, Active: true, DetectedAt: t0}
	tr := true
	fa := false
	cases := []struct {
		name string
		q    Query
		want bool
	}{
		{"empty", Query{}, true},
		{"label hit", Query{Label: feed.LabelIoT}, true},
		{"label miss", Query{Label: feed.LabelNonIoT}, false},
		{"country hit", Query{Country: "CN"}, true},
		{"country miss", Query{Country: "US"}, false},
		{"asn hit", Query{ASN: 4134}, true},
		{"asn miss", Query{ASN: 1}, false},
		{"active hit", Query{Active: &tr}, true},
		{"active miss", Query{Active: &fa}, false},
		{"since before", Query{Since: t0.Add(-time.Hour)}, true},
		{"since after", Query{Since: t0.Add(time.Hour)}, false},
	}
	for _, c := range cases {
		if got := c.q.Matches(&rec); got != c.want {
			t.Errorf("%s: Matches = %v", c.name, got)
		}
	}
}

func TestDashboardPage(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, body := get(t, ts, "/", "secret-token")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	page := string(body)
	for _, want := range []string{"eX-IoT", "Internet snapshot", "Top countries", "Query builder"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Unauthenticated dashboard access is rejected.
	resp, _ = get(t, ts, "/", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated dashboard status = %d", resp.StatusCode)
	}
}

func TestExportNDJSON(t *testing.T) {
	ts, src, _ := testServer(t)
	resp, body := get(t, ts, "/api/v1/export", "secret-token")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != len(src.records) {
		t.Fatalf("export lines = %d, want %d", len(lines), len(src.records))
	}
	for i, line := range lines {
		var rec feed.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.IP == "" {
			t.Fatalf("line %d: empty record", i)
		}
	}
	// Filters apply to exports too.
	_, body = get(t, ts, "/api/v1/export?label=IoT", "secret-token")
	lines = strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Errorf("filtered export = %d lines, want 2", len(lines))
	}
	// Bad filters are rejected.
	resp, _ = get(t, ts, "/api/v1/export?label=banana", "secret-token")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad filter status = %d", resp.StatusCode)
	}
}

func TestCampaignsEndpoint(t *testing.T) {
	ts, src, _ := testServer(t)
	// Seed enough same-signature IoT records to form a campaign.
	for i := 0; i < 5; i++ {
		src.records = append(src.records, feed.Record{
			IP:          fmt.Sprintf("9.9.9.%d", i+1),
			Label:       feed.LabelIoT,
			CountryCode: "CN",
			TargetPorts: map[uint16]int{23: 180, 2323: 20},
			Tool:        "Mirai-like scanner",
		})
	}
	resp, body := get(t, ts, "/api/v1/campaigns", "secret-token")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Count     int `json:"count"`
		Campaigns []struct {
			Signature string `json:"signature"`
			Devices   int    `json:"devices"`
		} `json:"campaigns"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count == 0 {
		t.Fatal("no campaigns returned")
	}
	if out.Campaigns[0].Devices < 5 {
		t.Errorf("campaign devices = %d, want ≥5", out.Campaigns[0].Devices)
	}
	// min_size filter validation.
	resp, _ = get(t, ts, "/api/v1/campaigns?min_size=banana", "secret-token")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_size status = %d", resp.StatusCode)
	}
	resp, body = get(t, ts, "/api/v1/campaigns?min_size=100", "secret-token")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"count":0`) {
		t.Errorf("high min_size should filter all: %d %s", resp.StatusCode, body)
	}
}

// trafficSource wraps fakeSource with traffic stats.
type trafficSource struct {
	fakeSource
	hours []TrafficHour
}

func (t *trafficSource) Traffic() []TrafficHour { return t.hours }

func TestTrafficEndpoint(t *testing.T) {
	// A backend without traffic aggregation yields 501.
	ts, _, _ := testServer(t)
	resp, _ := get(t, ts, "/api/v1/stats/traffic", "secret-token")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("plain source status = %d, want 501", resp.StatusCode)
	}

	// A traffic-capable backend serves the hourly buckets.
	src := &trafficSource{hours: []TrafficHour{{
		Hour: t0, Total: 1000, TCP: 900, UDP: 80, ICMP: 20,
		NewScanFlows: 5, TopPorts: map[uint16]int{23: 600}, PeakPPS: 3, Seconds: 3600,
	}}}
	srv := NewServer(src, nil)
	srv.AddKey("k", "c")
	hts := httptest.NewServer(srv)
	defer hts.Close()
	req, _ := http.NewRequest(http.MethodGet, hts.URL+"/api/v1/stats/traffic", nil)
	req.Header.Set("X-API-Key", "k")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	var out struct {
		Count int           `json:"count"`
		Hours []TrafficHour `json:"hours"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 1 || out.Hours[0].Total != 1000 || out.Hours[0].TopPorts[23] != 600 {
		t.Errorf("traffic payload = %+v", out)
	}
}

func TestCampaignsTrackedMode(t *testing.T) {
	ts, src, _ := testServer(t)
	for i := 0; i < 5; i++ {
		src.records = append(src.records, feed.Record{
			IP:          fmt.Sprintf("9.9.9.%d", i+1),
			Label:       feed.LabelIoT,
			CountryCode: "CN",
			TargetPorts: map[uint16]int{23: 180, 2323: 20},
			Tool:        "Mirai-like scanner",
		})
	}
	// Find the server the httptest wrapper serves so we can install the
	// tracker: testServer returns only the httptest handle, so build a
	// tracker-backed server directly instead.
	s := NewServer(src, nil)
	s.AddKey("secret-token", "test-client")
	tracker := campaign.NewTracker(campaign.TrackerConfig{})
	for i := 0; i < 3; i++ {
		tracker.Update(src.Records(Query{Label: feed.LabelIoT}), t0.Add(time.Duration(i)*time.Hour))
	}
	s.SetCampaignTracker(tracker)
	ts2 := httptest.NewServer(s)
	t.Cleanup(ts2.Close)

	resp, body := get(t, ts2, "/api/v1/campaigns", "secret-token")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Count     int                   `json:"count"`
		Tracked   bool                  `json:"tracked"`
		Campaigns []TrackedCampaignJSON `json:"campaigns"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Tracked || out.Count == 0 {
		t.Fatalf("tracked mode not served: %s", body)
	}
	c := out.Campaigns[0]
	if c.ID != "C-000001" || c.Status != "active" || c.Updates != 3 {
		t.Errorf("tracked campaign = %+v", c)
	}
	if c.FirstSeen != t0 || c.LastSeen != t0.Add(2*time.Hour) {
		t.Errorf("lifetime = %v..%v", c.FirstSeen, c.LastSeen)
	}

	// min_size still filters in tracked mode.
	resp, body = get(t, ts2, "/api/v1/campaigns?min_size=100", "secret-token")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"count":0`) {
		t.Errorf("tracked min_size filter: %d %s", resp.StatusCode, body)
	}
	// The untracked server still answers with the legacy shape.
	resp, body = get(t, ts, "/api/v1/campaigns", "secret-token")
	if resp.StatusCode != http.StatusOK || strings.Contains(string(body), `"tracked":true`) {
		t.Errorf("legacy endpoint changed shape: %s", body)
	}
}
