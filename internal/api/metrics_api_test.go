package api_test

// External test package: it imports the pipeline-side packages (which
// package api cannot, without a cycle) so their metric families register
// on the default registry, then asserts the /metrics endpoint actually
// exposes the full pipeline surface.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"exiot/internal/api"
	"exiot/internal/feed"
	"exiot/internal/telemetry"

	// Imported for their metric-registration side effects: every stage
	// family must exist before /metrics is scraped, exactly as in exiotd.
	_ "exiot/internal/console"
	_ "exiot/internal/pcapio"
	_ "exiot/internal/pipeline"
	_ "exiot/internal/replay"
	_ "exiot/internal/simnet"
	_ "exiot/internal/wire"
)

// nullSource is the minimal feed backend the telemetry endpoints need.
type nullSource struct{}

func (nullSource) Records(api.Query) []feed.Record       { return nil }
func (nullSource) RecordByIP(string) (feed.Record, bool) { return feed.Record{}, false }
func (nullSource) Snapshot() api.Snapshot                { return api.Snapshot{} }

// stagePrefixes maps each instrumented pipeline stage to its metric
// name prefix. ISSUE: /metrics must cover at least 8 stages.
var stagePrefixes = map[string]string{
	"generation":     "exiot_simnet_",
	"pcap io":        "exiot_pcap_",
	"trw detection":  "exiot_trw_",
	"sampler":        "exiot_sampler_",
	"organizer":      "exiot_organizer_",
	"active probing": "exiot_zmap_",
	"scan module":    "exiot_scanmod_",
	"classification": "exiot_classify_",
	"retraining":     "exiot_retrain_",
	"enrichment":     "exiot_enrich_",
	"feed":           "exiot_feed_",
	"store":          "exiot_store_",
	"notify":         "exiot_notify_",
	"wire":           "exiot_wire_",
	"api":            "exiot_api_",
}

func TestMetricsEndpointCoversPipelineStages(t *testing.T) {
	srv := httptest.NewServer(api.NewServer(nullSource{}, nil))
	defer srv.Close()

	// No API key: /metrics is an operator endpoint, not a client one.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	covered := 0
	for stage, prefix := range stagePrefixes {
		if strings.Contains(body, "\n# TYPE "+prefix) || strings.Contains(body, "# TYPE "+prefix) {
			covered++
		} else {
			t.Logf("stage %q (%s*) not present", stage, prefix)
		}
	}
	if covered < 8 {
		t.Fatalf("/metrics covers %d pipeline stages, want >= 8", covered)
	}
}

func TestHealthzEndpointDegrades(t *testing.T) {
	s := api.NewServer(nullSource{}, nil)
	// Isolated health tracker so other tests' checks can't interfere.
	h := telemetry.NewHealth()
	s.SetTelemetry(nil, h)
	srv := httptest.NewServer(s)
	defer srv.Close()

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	// A check that has never beaten is pending and healthy.
	check := h.Register("ingest", time.Minute)
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "pending") {
		t.Fatalf("pending check: status %d body %s", code, body)
	}

	// The feed stalls: its only beat is already older than the window.
	// (Beats only move forward in time, so the stale beat comes first.)
	check.BeatAt(time.Now().Add(-time.Hour))
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "stalled") {
		t.Fatalf("stalled check: status %d body %s", code, body)
	}

	// Fresh beat: healthy again.
	check.Beat()
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("fresh check: status %d body %s", code, body)
	}

	// Graceful end of a batch run: idle, healthy again.
	h.Freeze()
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, "idle") {
		t.Fatalf("frozen check: status %d body %s", code, body)
	}
}

func TestAPIRequestCounter(t *testing.T) {
	srv := httptest.NewServer(api.NewServer(nullSource{}, nil))
	defer srv.Close()

	before := counterValue(t, srv.URL, `exiot_api_requests_total{endpoint="snapshot",code="401"}`)
	resp, err := http.Get(srv.URL + "/api/v1/snapshot") // no key → 401
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated snapshot: status %d", resp.StatusCode)
	}
	after := counterValue(t, srv.URL, `exiot_api_requests_total{endpoint="snapshot",code="401"}`)
	if after != before+1 {
		t.Fatalf("request counter: before %g after %g, want +1", before, after)
	}
}

// counterValue scrapes /metrics and returns the value of one series line
// (0 when absent).
func counterValue(t *testing.T, base, series string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}
