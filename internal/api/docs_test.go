package api_test

// Docs-drift tests: docs/OPERATIONS.md must list every metric the
// pipeline registers (and nothing that no longer exists), and
// docs/API.md must cover every route the server actually wires. The
// blank imports in metrics_api_test.go pull in every instrumented
// package, so the default registry holds the full catalogue here.

import (
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"exiot/internal/api"
	"exiot/internal/feed"
	"exiot/internal/telemetry"
)

func readDoc(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(raw)
}

func TestOperationsDocMatchesMetricCatalogue(t *testing.T) {
	doc := readDoc(t, "../../docs/OPERATIONS.md")

	// The stage histogram registers lazily on the first span; force it
	// so the catalogue is complete regardless of test order.
	telemetry.Default().StageTimer("generate")

	registered := map[string]bool{}
	for _, m := range telemetry.Default().Metrics() {
		if !strings.HasPrefix(m.Name, "exiot_") {
			continue // test-local families from other suites
		}
		registered[m.Name] = true
		if !strings.Contains(doc, "`"+m.Name+"`") {
			t.Errorf("metric %s (%s) is registered but not documented in docs/OPERATIONS.md", m.Name, m.Type)
		}
	}
	if len(registered) < 20 {
		t.Fatalf("only %d exiot_ families registered; import side effects missing", len(registered))
	}

	// Reverse direction: every exiot_-token the doc mentions must still
	// exist, so removed metrics cannot linger in the docs.
	for _, tok := range regexp.MustCompile(`exiot_[a-z0-9_]+`).FindAllString(doc, -1) {
		if !registered[tok] {
			t.Errorf("docs/OPERATIONS.md mentions %s, which is not a registered metric", tok)
		}
	}
}

func TestAPIDocMatchesRouteTable(t *testing.T) {
	doc := readDoc(t, "../../docs/API.md")

	eps := api.NewServer(nullSource{}, nil).Endpoints()
	if len(eps) < 10 {
		t.Fatalf("route table has only %d endpoints", len(eps))
	}
	for _, ep := range eps {
		if ep.Path == "/{$}" {
			// The dashboard route; documented as GET /.
			if !strings.Contains(doc, "dashboard") {
				t.Error("docs/API.md does not document the dashboard route")
			}
		} else if !strings.Contains(doc, "`"+ep.Path+"`") && !strings.Contains(doc, ep.Path+"`") && !strings.Contains(doc, ep.Path+" ") && !strings.Contains(doc, ep.Path+"\n") {
			t.Errorf("route %s %s is wired but not documented in docs/API.md", ep.Method, ep.Path)
		}
		// The metering section must name every endpoint label.
		if !strings.Contains(doc, "`"+ep.Name+"`") {
			t.Errorf("endpoint name %q missing from docs/API.md metering section", ep.Name)
		}
	}
}

// jsonTags returns the wire names of every exported, non-inlined field
// of a struct type, following the encoding/json tag rules the server
// actually marshals with.
func jsonTags(typ reflect.Type) []string {
	var tags []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag == "-" {
			continue
		}
		if tag == "" {
			tag = f.Name
		}
		tags = append(tags, tag)
	}
	return tags
}

func TestFeedConsumersDocMatchesSurface(t *testing.T) {
	doc := readDoc(t, "../../docs/FEED_CONSUMERS.md")

	// Every consumer-facing feed route must be in the guide. Operator
	// plumbing (/metrics, /healthz, the dashboard) is deliberately out
	// of scope, so this is one-directional.
	for _, path := range []string{
		"/api/v1/records",
		"/api/v1/export",
		"/api/v1/events",
	} {
		found := false
		for _, ep := range api.NewServer(nullSource{}, nil).Endpoints() {
			if ep.Path == path {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("consumer route %s is documented in the guide but no longer wired", path)
		}
		if !strings.Contains(doc, "`"+path+"`") && !strings.Contains(doc, path+"?") && !strings.Contains(doc, path+" ") && !strings.Contains(doc, path+"\n") {
			t.Errorf("consumer route %s is wired but missing from docs/FEED_CONSUMERS.md", path)
		}
	}

	// The NDJSON schema section must cover every field a consumer can
	// receive — the guide reflects the live structs, not a hand list.
	for _, tag := range jsonTags(reflect.TypeOf(feed.Record{})) {
		if !strings.Contains(doc, "`"+tag+"`") {
			t.Errorf("feed.Record field %q is marshaled to consumers but undocumented in docs/FEED_CONSUMERS.md", tag)
		}
	}
	for _, tag := range jsonTags(reflect.TypeOf(feed.Provenance{})) {
		if !strings.Contains(doc, "`"+tag+"`") {
			t.Errorf("feed.Provenance field %q is marshaled to consumers but undocumented in docs/FEED_CONSUMERS.md", tag)
		}
	}
}

func TestOperationsDocCoversFeedFlags(t *testing.T) {
	doc := readDoc(t, "../../docs/OPERATIONS.md")
	for _, flag := range []string{"-feed-cache", "-feed-rebuild-every"} {
		if !strings.Contains(doc, "`"+flag+"`") {
			t.Errorf("exiotd flag %s is missing from docs/OPERATIONS.md", flag)
		}
	}
}
