package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Manager owns one state directory: it recovers the latest snapshot,
// replays the WAL tail, and then appends new records with the
// configured fsync policy. The expected call sequence is
//
//	m, _ := Open(opts)
//	meta, payload, _ := m.LatestSnapshot()   // restore state from payload
//	stats, _ := m.Replay(meta.LastSeq, apply)
//	m.StartAppend(meta.LastSeq + 1)          // truncates any torn tail
//	... m.AppendEvent / m.AppendRetrain / m.WriteSnapshot ...
//	m.Close()
//
// All methods are safe for concurrent use once StartAppend returns.
type Manager struct {
	opts Options

	mu       sync.Mutex
	scans    []segScan // cached directory scan (invalidated by appends)
	scanFrom uint64    // fromSeq the cached scan judged gaps against
	seg      *os.File  // active append segment
	segPath  string
	segLen   int64
	nextSeq  uint64
	lastSync time.Time
	dirty    bool
	started  bool
	closed   bool
}

// ReplayStats summarizes one recovery replay.
type ReplayStats struct {
	Records  int    // records applied (seq > fromSeq)
	Events   int    // RecordEvent records applied
	Retrains int    // RecordRetrain records applied
	LastSeq  uint64 // last valid record seen in the log (any seq)
	// Truncated reports that a torn or corrupt tail was found; the
	// bytes after the last valid record are discarded by StartAppend.
	Truncated bool
	TornBytes int64
}

// Open prepares a state directory (created if missing). No file is
// opened for writing until StartAppend.
func Open(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("durable: empty state directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create state dir: %w", err)
	}
	return &Manager{opts: opts}, nil
}

// Dir returns the state directory path.
func (m *Manager) Dir() string { return m.opts.Dir }

// LatestSnapshot loads the most recent valid snapshot, returning its
// meta and opaque payload, or a zero meta and nil payload when the
// directory has none. A corrupt newest snapshot falls back to the next
// older valid one — the torn file is skipped, not fatal.
func (m *Manager) LatestSnapshot() (SnapshotMeta, []byte, error) {
	names, err := listSnapshots(m.opts.Dir)
	if err != nil {
		return SnapshotMeta{}, nil, fmt.Errorf("durable: list snapshots: %w", err)
	}
	for i := len(names) - 1; i >= 0; i-- {
		meta, payload, err := readSnapshot(filepath.Join(m.opts.Dir, names[i]))
		if err != nil {
			continue // corrupt or unreadable; try the previous one
		}
		return meta, payload, nil
	}
	return SnapshotMeta{}, nil, nil
}

// Replay walks the WAL in sequence order and invokes apply for every
// valid record with Seq > fromSeq. Validation covers every record (CRC,
// framing, sequence continuity); the walk stops at the first invalid
// record — the torn tail — and everything after it is reported as
// truncated, never applied, and never a panic. Must be called before
// StartAppend.
func (m *Manager) Replay(fromSeq uint64, apply func(Record) error) (ReplayStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return ReplayStats{}, errors.New("durable: Replay after StartAppend")
	}
	var stats ReplayStats
	scans, err := m.scanAllLocked(fromSeq, func(rec Record) error {
		if rec.Seq <= fromSeq || apply == nil {
			return nil
		}
		if err := apply(rec); err != nil {
			return err
		}
		stats.Records++
		metReplayRecords.Inc()
		switch rec.Type {
		case RecordEvent:
			stats.Events++
		case RecordRetrain:
			stats.Retrains++
		}
		return nil
	})
	if err != nil {
		return stats, err
	}
	healthy := true
	for _, sc := range scans {
		switch {
		case !healthy || sc.headerErr != nil || sc.gap:
			// Whole segment discarded: beyond the torn point, header
			// unreadable, or unreachable across a sequence gap.
			healthy = false
			stats.Truncated = true
			stats.TornBytes += sc.size
		case sc.torn:
			if sc.records > 0 {
				stats.LastSeq = sc.lastSeq
			}
			healthy = false
			stats.Truncated = true
			stats.TornBytes += sc.size - sc.validLen
		default:
			if sc.records > 0 {
				stats.LastSeq = sc.lastSeq
			}
		}
	}
	return stats, nil
}

// scanAllLocked scans every segment in order, stopping the record
// callback at the first torn segment (later segments are scanned for
// stats but their records are beyond the torn point and not applied).
// A sequence gap between segments is tolerated only when the missing
// range is entirely at or below fromSeq — that is, wholly covered by
// the snapshot recovery starts from (the shape compaction leaves
// behind). Any other gap ends the replayable prefix like a torn record
// does. Caller holds m.mu.
func (m *Manager) scanAllLocked(fromSeq uint64, fn func(Record) error) ([]segScan, error) {
	names, err := listSegments(m.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list segments: %w", err)
	}
	scans := make([]segScan, 0, len(names))
	torn := false
	var prevLast uint64
	for _, name := range names {
		path := filepath.Join(m.opts.Dir, name)
		// Peek at record continuity before applying: scan without the
		// callback first would double the I/O, so check the gap from
		// the header start seq (== first record seq in a valid file).
		startSeq, _ := parseSegmentName(name)
		gap := !torn && prevLast != 0 && startSeq != prevLast+1 && startSeq-1 > fromSeq
		cb := fn
		if torn || gap {
			cb = nil // past the torn point: validate only
		}
		sc, err := scanSegment(path, cb)
		if err != nil {
			return scans, fmt.Errorf("durable: scan %s: %w", name, err)
		}
		if gap {
			sc.gap = true
		}
		if sc.records > 0 && !torn && !gap {
			prevLast = sc.lastSeq
		}
		scans = append(scans, sc)
		if sc.torn || sc.gap || sc.headerErr != nil {
			torn = true
		}
	}
	m.scans = scans
	m.scanFrom = fromSeq
	return scans, nil
}

// StartAppend positions the manager for writing: the torn tail (if any)
// is physically truncated away, segments past a torn point are deleted,
// and the next record is assigned max(lastValidSeq+1, minNextSeq).
// minNextSeq covers the snapshot-beyond-WAL case: after compaction the
// log may restart above the highest surviving segment.
func (m *Manager) StartAppend(minNextSeq uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return errors.New("durable: StartAppend called twice")
	}
	if minNextSeq == 0 {
		minNextSeq = 1
	}
	scans := m.scans
	if scans == nil || m.scanFrom != minNextSeq-1 {
		var err error
		if scans, err = m.scanAllLocked(minNextSeq-1, nil); err != nil {
			return err
		}
	}

	// Walk the healthy prefix; everything at or past a torn point is
	// removed so the surviving log is exactly the replayable prefix.
	var tail *segScan // last healthy segment (append candidate)
	var lastSeq uint64
	torn := false
	for i := range scans {
		sc := &scans[i]
		if torn || sc.gap || sc.headerErr != nil {
			torn = true
			if err := os.Remove(sc.path); err != nil {
				return fmt.Errorf("durable: drop segment %s: %w", sc.name, err)
			}
			continue
		}
		if sc.torn {
			// Keep the valid prefix of the first torn segment; its
			// trailing bytes are truncated below.
			torn = true
		}
		tail = sc
		if sc.records > 0 {
			lastSeq = sc.lastSeq
		}
	}

	m.nextSeq = lastSeq + 1
	if minNextSeq > m.nextSeq {
		m.nextSeq = minNextSeq
	}

	// Reuse the tail segment when the next sequence extends it
	// contiguously (its header start seq must match for an empty one);
	// otherwise truncate its torn bytes in place and rotate to a fresh
	// segment named by the next sequence.
	reuse := tail != nil && ((tail.records > 0 && tail.lastSeq+1 == m.nextSeq) ||
		(tail.records == 0 && tail.startSeq == m.nextSeq))
	if reuse {
		f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("durable: reopen segment: %w", err)
		}
		if tail.validLen < tail.size {
			if err := f.Truncate(tail.validLen); err != nil {
				f.Close()
				return fmt.Errorf("durable: truncate torn tail: %w", err)
			}
		}
		if _, err := f.Seek(tail.validLen, 0); err != nil {
			f.Close()
			return fmt.Errorf("durable: seek segment: %w", err)
		}
		m.seg, m.segPath, m.segLen = f, tail.path, tail.validLen
	} else {
		if tail != nil {
			if tail.records == 0 {
				// Crash during rotation left an empty segment that can
				// no longer host the next sequence; drop it.
				if err := os.Remove(tail.path); err != nil {
					return fmt.Errorf("durable: drop segment %s: %w", tail.name, err)
				}
			} else if tail.validLen < tail.size {
				if err := os.Truncate(tail.path, tail.validLen); err != nil {
					return fmt.Errorf("durable: truncate torn tail: %w", err)
				}
			}
		}
		if err := m.openSegmentLocked(m.nextSeq); err != nil {
			return err
		}
	}
	m.scans = nil // stale once appends begin
	m.started = true
	m.lastSync = time.Now()
	m.updateSegmentGauge()
	return nil
}

// openSegmentLocked creates a fresh segment starting at startSeq and
// makes it the append target. Caller holds m.mu.
func (m *Manager) openSegmentLocked(startSeq uint64) error {
	path := filepath.Join(m.opts.Dir, segmentName(startSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create segment: %w", err)
	}
	if _, err := f.Write(encodeSegmentHeader(startSeq)); err != nil {
		f.Close()
		return fmt.Errorf("durable: write segment header: %w", err)
	}
	if m.opts.Sync != SyncOff {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("durable: sync segment header: %w", err)
		}
		metWALFsyncs.Inc()
		if err := syncDir(m.opts.Dir); err != nil {
			f.Close()
			return fmt.Errorf("durable: sync state dir: %w", err)
		}
	}
	m.seg, m.segPath, m.segLen = f, path, segHeaderSize
	return nil
}

// AppendEvent appends one wire-encoded sampler event and returns its
// assigned sequence number.
func (m *Manager) AppendEvent(kind uint8, availableAt time.Time, payload []byte) (uint64, error) {
	seq, err := m.append(RecordEvent, encodeEventBody(availableAt, kind, payload))
	if err == nil {
		metWALAppendEvent.Inc()
	}
	return seq, err
}

// AppendRetrain appends one retrain marker (metadata JSON).
func (m *Manager) AppendRetrain(meta []byte) (uint64, error) {
	seq, err := m.append(RecordRetrain, meta)
	if err == nil {
		metWALAppendRetrain.Inc()
	}
	return seq, err
}

func (m *Manager) append(typ RecordType, body []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.started || m.closed {
		return 0, errors.New("durable: append before StartAppend or after Close")
	}
	frame := encodeRecord(typ, m.nextSeq, body)
	if m.segLen > segHeaderSize && m.segLen+int64(len(frame)) > m.opts.SegmentBytes {
		if err := m.rotateLocked(); err != nil {
			metWALErrors.Inc()
			return 0, err
		}
	}
	if _, err := m.seg.Write(frame); err != nil {
		metWALErrors.Inc()
		return 0, fmt.Errorf("durable: append: %w", err)
	}
	seq := m.nextSeq
	m.nextSeq++
	m.segLen += int64(len(frame))
	m.dirty = true
	metWALBytes.Add(int64(len(frame)))
	if err := m.policySyncLocked(); err != nil {
		metWALErrors.Inc()
		return seq, err
	}
	return seq, nil
}

// rotateLocked finishes the active segment and opens the next one.
// Caller holds m.mu.
func (m *Manager) rotateLocked() error {
	if err := m.syncLocked(); err != nil {
		return err
	}
	if err := m.seg.Close(); err != nil {
		return fmt.Errorf("durable: close segment: %w", err)
	}
	if err := m.openSegmentLocked(m.nextSeq); err != nil {
		return err
	}
	m.updateSegmentGauge()
	return nil
}

// policySyncLocked applies the configured fsync policy after one
// append. Caller holds m.mu.
func (m *Manager) policySyncLocked() error {
	switch m.opts.Sync {
	case SyncAlways:
		return m.syncLocked()
	case SyncInterval:
		if time.Since(m.lastSync) >= m.opts.SyncEvery {
			return m.syncLocked()
		}
	}
	return nil
}

// syncLocked flushes the active segment. Caller holds m.mu.
func (m *Manager) syncLocked() error {
	if m.seg == nil || !m.dirty {
		m.lastSync = time.Now()
		return nil
	}
	if err := m.seg.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	metWALFsyncs.Inc()
	m.dirty = false
	m.lastSync = time.Now()
	return nil
}

// Sync forces the active segment to stable storage regardless of
// policy.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncLocked()
}

// NextSeq returns the sequence number the next append will use.
func (m *Manager) NextSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextSeq
}

// WriteSnapshot durably persists one full-state snapshot and then
// compacts: snapshots whose simulated age (relative to meta.TakenAt)
// exceeds the retention window are removed — except the newest — and
// WAL segments wholly covered by the oldest retained snapshot are
// deleted. The WAL is synced first so the snapshot never references
// records that could still be lost.
func (m *Manager) WriteSnapshot(meta SnapshotMeta, payload []byte) error {
	if err := m.Sync(); err != nil {
		metWALErrors.Inc()
		return err
	}
	if _, err := writeSnapshotFile(m.opts.Dir, meta, payload); err != nil {
		metWALErrors.Inc()
		metSnapshots.With("deferred").Inc()
		return err
	}
	metSnapshots.With("written").Inc()
	metSnapshotBytes.Set(float64(len(payload)))
	if err := m.compact(meta); err != nil {
		return err
	}
	m.updateSegmentGaugeLocked()
	return nil
}

// compact removes snapshots past the retention window and WAL segments
// wholly covered by every retained snapshot.
func (m *Manager) compact(latest SnapshotMeta) error {
	names, err := listSnapshots(m.opts.Dir)
	if err != nil {
		return fmt.Errorf("durable: list snapshots: %w", err)
	}
	cutoff := latest.TakenAt.Add(-m.opts.Retain)
	oldestRetained := latest.LastSeq
	for _, name := range names {
		path := filepath.Join(m.opts.Dir, name)
		seq, _ := parseSnapshotName(name)
		if seq == latest.LastSeq {
			continue // always keep the snapshot just written
		}
		meta, err := readSnapshotMeta(path)
		if err != nil || !meta.TakenAt.After(cutoff) {
			// Unreadable or lapsed: remove. A newer snapshot supersedes
			// it for recovery either way.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("durable: drop snapshot %s: %w", name, err)
			}
			continue
		}
		if meta.LastSeq < oldestRetained {
			oldestRetained = meta.LastSeq
		}
	}

	// A segment is removable when the *next* segment starts at or below
	// oldestRetained+1 — then every record it holds is ≤ oldestRetained
	// and already captured by every retained snapshot.
	segs, err := listSegments(m.opts.Dir)
	if err != nil {
		return fmt.Errorf("durable: list segments: %w", err)
	}
	for i := 0; i+1 < len(segs); i++ {
		nextStart, _ := parseSegmentName(segs[i+1])
		if nextStart <= oldestRetained+1 {
			m.mu.Lock()
			active := filepath.Join(m.opts.Dir, segs[i]) == m.segPath
			m.mu.Unlock()
			if active {
				continue
			}
			if err := os.Remove(filepath.Join(m.opts.Dir, segs[i])); err != nil {
				return fmt.Errorf("durable: drop segment %s: %w", segs[i], err)
			}
		}
	}
	return nil
}

func (m *Manager) updateSegmentGauge() {
	m.updateSegmentGaugeLocked()
}

func (m *Manager) updateSegmentGaugeLocked() {
	if segs, err := listSegments(m.opts.Dir); err == nil {
		metWALSegments.Set(float64(len(segs)))
	}
}

// Close flushes and closes the append segment. The manager cannot be
// reused afterwards.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.seg == nil {
		return nil
	}
	err := m.syncLocked()
	if cerr := m.seg.Close(); err == nil {
		err = cerr
	}
	m.seg = nil
	return err
}
