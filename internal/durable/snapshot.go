package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot file layout:
//
//	"EXSNAP01" | u32 version | u32 metaLen | u32 payloadLen |
//	u32 crc32c(meta || payload) | meta JSON | payload
//
// The payload is opaque to this package (the pipeline serializes its
// own state into it); the meta block carries what recovery and
// compaction need. Snapshots are written to a temp file, fsynced, and
// renamed into place, so a crash mid-write can never leave a torn
// snapshot under the canonical name.

const (
	snapMagic      = "EXSNAP01"
	snapVersion    = 1
	snapHeaderSize = 8 + 4 + 4 + 4 + 4
)

// SnapshotMeta describes one snapshot.
type SnapshotMeta struct {
	// LastSeq is the last WAL record applied to the captured state;
	// replay resumes at LastSeq+1.
	LastSeq uint64 `json:"last_seq"`
	// EventCount is the lifetime count of sampler events applied to the
	// captured state — the resume-skip offset for regenerated streams.
	EventCount uint64 `json:"event_count"`
	// TakenAt is the feed server's simulated clock at capture; snapshot
	// retention (the historical lapse) is measured against it.
	TakenAt time.Time `json:"taken_at"`
}

// snapshotName renders the canonical file name for a snapshot.
func snapshotName(lastSeq uint64) string {
	return fmt.Sprintf("snap-%016x.snap", lastSeq)
}

// parseSnapshotName extracts the last sequence from a snapshot name.
func parseSnapshotName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// writeSnapshotFile persists one snapshot durably into dir.
func writeSnapshotFile(dir string, meta SnapshotMeta, payload []byte) (string, error) {
	metaRaw, err := json.Marshal(meta)
	if err != nil {
		return "", fmt.Errorf("durable: encode snapshot meta: %w", err)
	}
	hdr := make([]byte, snapHeaderSize)
	copy(hdr, snapMagic)
	binary.LittleEndian.PutUint32(hdr[8:], snapVersion)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(metaRaw)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(payload)))
	crc := crc32.Checksum(metaRaw, castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[20:], crc)

	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", fmt.Errorf("durable: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	for _, chunk := range [][]byte{hdr, metaRaw, payload} {
		if _, err := tmp.Write(chunk); err != nil {
			cleanup()
			return "", fmt.Errorf("durable: write snapshot: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return "", fmt.Errorf("durable: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("durable: close snapshot: %w", err)
	}
	final := filepath.Join(dir, snapshotName(meta.LastSeq))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("durable: publish snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", fmt.Errorf("durable: sync state dir: %w", err)
	}
	return final, nil
}

// readSnapshotMeta parses and validates only a snapshot's header and
// meta block (cheap: no payload read, no CRC).
func readSnapshotMeta(path string) (SnapshotMeta, error) {
	var meta SnapshotMeta
	f, err := os.Open(path)
	if err != nil {
		return meta, err
	}
	defer f.Close()
	hdr := make([]byte, snapHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return meta, fmt.Errorf("durable: %s: short header: %w", filepath.Base(path), err)
	}
	if string(hdr[:8]) != snapMagic {
		return meta, fmt.Errorf("durable: %s: bad magic", filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != snapVersion {
		return meta, fmt.Errorf("durable: %s: unsupported version %d", filepath.Base(path), v)
	}
	metaLen := binary.LittleEndian.Uint32(hdr[12:])
	if metaLen > maxRecordSize {
		return meta, fmt.Errorf("durable: %s: absurd meta length %d", filepath.Base(path), metaLen)
	}
	metaRaw := make([]byte, metaLen)
	if _, err := io.ReadFull(f, metaRaw); err != nil {
		return meta, fmt.Errorf("durable: %s: short meta: %w", filepath.Base(path), err)
	}
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return meta, fmt.Errorf("durable: %s: decode meta: %w", filepath.Base(path), err)
	}
	return meta, nil
}

// readSnapshot loads and CRC-validates one full snapshot.
func readSnapshot(path string) (SnapshotMeta, []byte, error) {
	var meta SnapshotMeta
	raw, err := os.ReadFile(path)
	if err != nil {
		return meta, nil, err
	}
	name := filepath.Base(path)
	if len(raw) < snapHeaderSize {
		return meta, nil, fmt.Errorf("durable: %s: truncated header", name)
	}
	if string(raw[:8]) != snapMagic {
		return meta, nil, fmt.Errorf("durable: %s: bad magic", name)
	}
	if v := binary.LittleEndian.Uint32(raw[8:]); v != snapVersion {
		return meta, nil, fmt.Errorf("durable: %s: unsupported version %d", name, v)
	}
	metaLen := int64(binary.LittleEndian.Uint32(raw[12:]))
	payloadLen := int64(binary.LittleEndian.Uint32(raw[16:]))
	wantCRC := binary.LittleEndian.Uint32(raw[20:])
	if int64(len(raw)) != snapHeaderSize+metaLen+payloadLen {
		return meta, nil, fmt.Errorf("durable: %s: size mismatch (%d bytes, want %d)",
			name, len(raw), snapHeaderSize+metaLen+payloadLen)
	}
	metaRaw := raw[snapHeaderSize : snapHeaderSize+metaLen]
	payload := raw[snapHeaderSize+metaLen:]
	crc := crc32.Checksum(metaRaw, castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != wantCRC {
		return meta, nil, fmt.Errorf("durable: %s: checksum mismatch", name)
	}
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return meta, nil, fmt.Errorf("durable: %s: decode meta: %w", name, err)
	}
	return meta, payload, nil
}

// listSnapshots returns the directory's snapshot file names sorted by
// last sequence, ascending.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSnapshotName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
