package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WAL segment layout:
//
//	header (24 bytes): "EXWALSEG" | u32 version | u32 reserved | u64 startSeq
//	record:            u32 payloadLen | u32 crc32c(payload) | payload
//	payload:           u8 type | u64 seq | body
//
// RecordEvent body: i64 availableAt (UnixNano, UTC) | u8 wireKind | event bytes.
// RecordRetrain body: metadata JSON.
//
// All integers are little-endian. Sequence numbers are strictly
// consecutive within a segment and across the live log, so a CRC match
// with a wrong seq is still rejected. A record that fails any check
// marks the torn tail: everything before it is the recovered prefix.

const (
	segMagic      = "EXWALSEG"
	segVersion    = 1
	segHeaderSize = 8 + 4 + 4 + 8
	recHeaderSize = 4 + 4
	// maxRecordSize bounds a record's payload so a corrupted length
	// field cannot trigger a giant allocation during replay.
	maxRecordSize = 64 << 20
)

// segmentName renders the canonical file name for a starting sequence.
func segmentName(startSeq uint64) string {
	return fmt.Sprintf("wal-%016x.seg", startSeq)
}

// parseSegmentName extracts the start sequence from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// encodeSegmentHeader renders a segment header.
func encodeSegmentHeader(startSeq uint64) []byte {
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], segVersion)
	binary.LittleEndian.PutUint64(hdr[16:], startSeq)
	return hdr
}

// encodeRecord frames one record: header + payload, CRC included.
func encodeRecord(typ RecordType, seq uint64, body []byte) []byte {
	payload := make([]byte, 1+8+len(body))
	payload[0] = byte(typ)
	binary.LittleEndian.PutUint64(payload[1:], seq)
	copy(payload[9:], body)
	frame := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[recHeaderSize:], payload)
	return frame
}

// encodeEventBody renders a RecordEvent body.
func encodeEventBody(availableAt time.Time, kind uint8, payload []byte) []byte {
	body := make([]byte, 8+1+len(payload))
	binary.LittleEndian.PutUint64(body, uint64(availableAt.UnixNano()))
	body[8] = kind
	copy(body[9:], payload)
	return body
}

// decodeRecord parses a validated payload into a Record.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < 9 {
		return Record{}, fmt.Errorf("durable: record payload too short (%d bytes)", len(payload))
	}
	rec := Record{
		Type: RecordType(payload[0]),
		Seq:  binary.LittleEndian.Uint64(payload[1:]),
	}
	body := payload[9:]
	switch rec.Type {
	case RecordEvent:
		if len(body) < 9 {
			return Record{}, fmt.Errorf("durable: event record body too short (%d bytes)", len(body))
		}
		rec.AvailableAt = time.Unix(0, int64(binary.LittleEndian.Uint64(body))).UTC()
		rec.Kind = body[8]
		rec.Payload = body[9:]
	case RecordRetrain:
		rec.Payload = body
	default:
		return Record{}, fmt.Errorf("durable: unknown record type %d", payload[0])
	}
	return rec, nil
}

// segScan summarizes one scanned segment.
type segScan struct {
	path      string
	name      string
	size      int64
	startSeq  uint64 // from the header
	firstSeq  uint64 // first record (0 when empty)
	lastSeq   uint64 // last valid record (0 when empty)
	records   int
	events    int
	retrains  int
	validLen  int64 // bytes up to and including the last valid record
	torn      bool  // trailing bytes failed validation
	gap       bool  // sequence gap before this segment: nothing applied
	headerErr error // header invalid: whole file is opaque
}

// scanSegment validates one segment front to back, invoking fn for every
// valid record (fn may be nil). Validation stops at the first framing or
// CRC failure — the torn tail — and never errors for it; only I/O or
// header problems surface as errors via headerErr/err.
func scanSegment(path string, fn func(Record) error) (segScan, error) {
	sc := segScan{path: path, name: filepath.Base(path)}
	f, err := os.Open(path)
	if err != nil {
		return sc, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		sc.size = fi.Size()
	}

	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		sc.headerErr = fmt.Errorf("durable: %s: short header: %w", sc.name, err)
		return sc, nil
	}
	if string(hdr[:8]) != segMagic {
		sc.headerErr = fmt.Errorf("durable: %s: bad magic", sc.name)
		return sc, nil
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != segVersion {
		sc.headerErr = fmt.Errorf("durable: %s: unsupported version %d", sc.name, v)
		return sc, nil
	}
	if r := binary.LittleEndian.Uint32(hdr[12:]); r != 0 {
		sc.headerErr = fmt.Errorf("durable: %s: corrupt header (reserved = %#x)", sc.name, r)
		return sc, nil
	}
	sc.startSeq = binary.LittleEndian.Uint64(hdr[16:])
	sc.validLen = segHeaderSize

	recHdr := make([]byte, recHeaderSize)
	wantSeq := sc.startSeq
	for {
		if _, err := io.ReadFull(f, recHdr); err != nil {
			sc.torn = err != io.EOF
			break
		}
		payloadLen := binary.LittleEndian.Uint32(recHdr[0:])
		wantCRC := binary.LittleEndian.Uint32(recHdr[4:])
		if payloadLen < 9 || payloadLen > maxRecordSize ||
			sc.validLen+recHeaderSize+int64(payloadLen) > sc.size {
			sc.torn = true
			break
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(f, payload); err != nil {
			sc.torn = true
			break
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			sc.torn = true
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil || rec.Seq != wantSeq {
			sc.torn = true
			break
		}
		if sc.records == 0 {
			sc.firstSeq = rec.Seq
		}
		sc.lastSeq = rec.Seq
		sc.records++
		switch rec.Type {
		case RecordEvent:
			sc.events++
		case RecordRetrain:
			sc.retrains++
		}
		sc.validLen += recHeaderSize + int64(payloadLen)
		wantSeq++
		if fn != nil {
			if err := fn(rec); err != nil {
				return sc, err
			}
		}
	}
	return sc, nil
}

// listSegments returns the directory's segments sorted by start
// sequence. Files with unparseable names are ignored.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegmentName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded hex start seqs sort numerically
	return names, nil
}

// syncDir fsyncs a directory so renames and creates inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
