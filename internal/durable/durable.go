// Package durable is eX-IoT's crash-consistency subsystem: a
// write-ahead log plus periodic full-state snapshots that let the feed
// server survive a hard stop and resume mid-day with a byte-identical
// feed. The paper's deployment leans on MongoDB and Redis for exactly
// this property — days of continuous telescope ingest must not be lost
// to a process restart — and this package is the stdlib-only substitute.
//
// Layout of a state directory:
//
//	wal-<startSeq>.seg   append log segments (CRC32C-framed records)
//	snap-<lastSeq>.snap  full-state snapshots (CRC-framed JSON payload)
//
// The WAL records *inputs* (wire-encoded sampler events), not store
// mutations: replaying the log through the unmodified processing path
// reproduces every downstream effect — record inserts, END_FLOW
// updates, trainer-window growth, retrains, notifications — because the
// pipeline is deterministic given its inputs (see DESIGN.md,
// "Durability and recovery determinism"). Snapshots bound replay time
// and drive log compaction keyed to the feed's historical lapse window.
package durable

import (
	"hash/crc32"
	"time"

	"exiot/internal/telemetry"
)

// Telemetry handles for the durability stage (see docs/OPERATIONS.md).
var (
	metWALAppends = telemetry.Default().CounterVec("exiot_wal_appends_total",
		"WAL records appended, by type (event|retrain).", "type")
	metWALAppendEvent   = metWALAppends.With("event")
	metWALAppendRetrain = metWALAppends.With("retrain")
	metWALBytes         = telemetry.Default().Counter("exiot_wal_bytes_total",
		"Bytes appended to WAL segments (framing included).")
	metWALFsyncs = telemetry.Default().Counter("exiot_wal_fsyncs_total",
		"fsync calls issued by the WAL appender.")
	metWALErrors = telemetry.Default().Counter("exiot_wal_errors_total",
		"WAL append or snapshot failures (durability degraded).")
	metWALSegments = telemetry.Default().Gauge("exiot_wal_segments",
		"Live WAL segment files in the state directory.")
	metSnapshots = telemetry.Default().CounterVec("exiot_snapshots_total",
		"Snapshot attempts, by result (written|deferred).", "result")
	metSnapshotBytes = telemetry.Default().Gauge("exiot_snapshot_last_bytes",
		"Payload size of the most recently written snapshot.")
	metReplayRecords = telemetry.Default().Counter("exiot_replay_records_total",
		"WAL records re-applied during crash recovery.")
)

// SnapshotDeferred counts one snapshot attempt that found the owner in
// a non-quiescent state and was postponed.
func SnapshotDeferred() { metSnapshots.With("deferred").Inc() }

// castagnoli is the CRC32C polynomial table used for all framing
// checksums (the same polynomial storage systems use; hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended WAL records reach stable storage.
type SyncPolicy string

// Fsync policies, in decreasing durability / increasing throughput
// order. See docs/OPERATIONS.md for the operational trade-offs.
const (
	// SyncAlways fsyncs after every append: no acknowledged record can
	// be lost, at the cost of one fsync per sampler event.
	SyncAlways SyncPolicy = "always"
	// SyncInterval fsyncs at most once per configured interval (plus on
	// rotation, snapshot, and close): a crash loses at most the last
	// interval of records, which the simulate path regenerates anyway.
	SyncInterval SyncPolicy = "interval"
	// SyncOff never fsyncs explicitly; the OS page cache decides. Only
	// process crashes (not host crashes) are fully survivable.
	SyncOff SyncPolicy = "off"
)

// RecordType discriminates WAL records.
type RecordType uint8

// WAL record types.
const (
	// RecordEvent carries one wire-encoded sampler event plus the
	// simulated instant it became available to the feed server.
	RecordEvent RecordType = 1
	// RecordRetrain marks a successful daily retrain with its metadata
	// (JSON). Replay recomputes retrains deterministically from the
	// restored trainer window, so these records are observability
	// markers for `exiotctl state inspect`, not replay inputs.
	RecordRetrain RecordType = 2
)

// String names a record type for inspection output.
func (t RecordType) String() string {
	switch t {
	case RecordEvent:
		return "event"
	case RecordRetrain:
		return "retrain"
	default:
		return "unknown"
	}
}

// Record is one decoded WAL record.
type Record struct {
	Seq  uint64
	Type RecordType
	// AvailableAt is the simulated feed-arrival instant (RecordEvent).
	AvailableAt time.Time
	// Kind is the wire frame kind of the embedded event (RecordEvent).
	Kind uint8
	// Payload is the wire-encoded event (RecordEvent) or the retrain
	// metadata JSON (RecordRetrain).
	Payload []byte
}

// Options configures a state directory.
type Options struct {
	// Dir is the state directory (created if missing).
	Dir string
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the flush period under SyncInterval (default 1s).
	SyncEvery time.Duration
	// SegmentBytes rotates the append segment past this size (default
	// 8 MiB).
	SegmentBytes int64
	// Retain is how long old snapshots stay replayable before
	// compaction removes them and their covered WAL segments (default
	// 14 days — the feed's historical lapse window). Measured against
	// the simulated clock stamped into each snapshot.
	Retain time.Duration
}

func (o Options) withDefaults() Options {
	if o.Sync == "" {
		o.Sync = SyncInterval
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = time.Second
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.Retain <= 0 {
		o.Retain = 14 * 24 * time.Hour
	}
	return o
}
