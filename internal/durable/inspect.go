package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// This file is the offline inspection surface behind `exiotctl state`:
// it reads a state directory without a Manager (and without touching
// it) and reports per-file metadata plus CRC validation results.

// SegmentInfo describes one WAL segment file.
type SegmentInfo struct {
	Name      string `json:"name"`
	Size      int64  `json:"size"`
	StartSeq  uint64 `json:"start_seq"`
	FirstSeq  uint64 `json:"first_seq,omitempty"`
	LastSeq   uint64 `json:"last_seq,omitempty"`
	Records   int    `json:"records"`
	Events    int    `json:"events"`
	Retrains  int    `json:"retrains"`
	ValidLen  int64  `json:"valid_bytes"`
	TornBytes int64  `json:"torn_bytes,omitempty"`
	Error     string `json:"error,omitempty"`
}

// SnapshotInfo describes one snapshot file.
type SnapshotInfo struct {
	Name  string       `json:"name"`
	Size  int64        `json:"size"`
	Meta  SnapshotMeta `json:"meta"`
	Valid bool         `json:"valid"`
	Error string       `json:"error,omitempty"`
}

// DirInfo is the full inspection report for a state directory.
type DirInfo struct {
	Dir       string         `json:"dir"`
	Snapshots []SnapshotInfo `json:"snapshots"`
	Segments  []SegmentInfo  `json:"segments"`
}

// Problems lists every validation failure in the report: corrupt
// snapshots, unreadable segment headers, and torn segment tails.
func (d *DirInfo) Problems() []string {
	var out []string
	for _, s := range d.Snapshots {
		if !s.Valid {
			out = append(out, fmt.Sprintf("snapshot %s: %s", s.Name, s.Error))
		}
	}
	for _, s := range d.Segments {
		switch {
		case s.Error != "":
			out = append(out, fmt.Sprintf("segment %s: %s", s.Name, s.Error))
		case s.TornBytes > 0:
			out = append(out, fmt.Sprintf("segment %s: %d torn trailing bytes after seq %d (replay truncates here)",
				s.Name, s.TornBytes, s.LastSeq))
		}
	}
	return out
}

// Inspect reads a state directory offline and reports every snapshot
// and WAL segment with full CRC validation. The directory is opened
// read-only; nothing is repaired or truncated.
func Inspect(dir string) (*DirInfo, error) {
	if fi, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("durable: state dir: %w", err)
	} else if !fi.IsDir() {
		return nil, fmt.Errorf("durable: %s is not a directory", dir)
	}
	info := &DirInfo{Dir: dir}

	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list snapshots: %w", err)
	}
	for _, name := range snaps {
		path := filepath.Join(dir, name)
		si := SnapshotInfo{Name: name}
		if fi, err := os.Stat(path); err == nil {
			si.Size = fi.Size()
		}
		meta, _, err := readSnapshot(path)
		if err != nil {
			si.Error = err.Error()
		} else {
			si.Meta = meta
			si.Valid = true
		}
		info.Snapshots = append(info.Snapshots, si)
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list segments: %w", err)
	}
	for _, name := range segs {
		sc, err := scanSegment(filepath.Join(dir, name), nil)
		if err != nil {
			return nil, fmt.Errorf("durable: scan %s: %w", name, err)
		}
		si := SegmentInfo{
			Name:     sc.name,
			Size:     sc.size,
			StartSeq: sc.startSeq,
			FirstSeq: sc.firstSeq,
			LastSeq:  sc.lastSeq,
			Records:  sc.records,
			Events:   sc.events,
			Retrains: sc.retrains,
			ValidLen: sc.validLen,
		}
		if sc.headerErr != nil {
			si.Error = sc.headerErr.Error()
			si.ValidLen = 0
			si.TornBytes = sc.size
		} else if sc.torn {
			si.TornBytes = sc.size - sc.validLen
		}
		info.Segments = append(info.Segments, si)
	}
	return info, nil
}

// Verify runs the same validation as Inspect and returns the list of
// problems found (empty means every CRC checks out).
func Verify(dir string) ([]string, error) {
	info, err := Inspect(dir)
	if err != nil {
		return nil, err
	}
	return info.Problems(), nil
}

// ScanRecords streams every valid WAL record in dir to fn, in segment
// then sequence order, without a Manager. Offline forensics tooling
// (`exiotctl state inspect`) uses it to decode the logged events — e.g.
// to list the trace IDs recorded in sampler batches for joining against
// a live server's /traces store. Torn segment tails are skipped, not
// errors; fn returning an error stops the scan.
func ScanRecords(dir string, fn func(Record) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return fmt.Errorf("durable: list segments: %w", err)
	}
	for _, name := range segs {
		sc, err := scanSegment(filepath.Join(dir, name), fn)
		if err != nil {
			return fmt.Errorf("durable: scan %s: %w", name, err)
		}
		if sc.headerErr != nil {
			continue // unreadable segment; Inspect/Verify report it
		}
	}
	return nil
}

// RecordOffsets returns the byte offset of every valid record in one
// segment file, plus the offset just past the last valid record. Tests
// (and the kill-and-recover harness) use it to truncate a log at an
// exact record boundary.
func RecordOffsets(path string) ([]int64, int64, error) {
	sc, err := scanSegment(path, nil)
	if err != nil {
		return nil, 0, err
	}
	if sc.headerErr != nil {
		return nil, 0, sc.headerErr
	}
	// scanSegment validated the prefix; walk the frame lengths to place
	// each record's start offset.
	var offsets []int64
	off := int64(segHeaderSize)
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	buf := make([]byte, recHeaderSize)
	for off < sc.validLen {
		offsets = append(offsets, off)
		if _, err := f.ReadAt(buf, off); err != nil {
			return nil, 0, err
		}
		payloadLen := int64(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
		off += recHeaderSize + payloadLen
	}
	return offsets, sc.validLen, nil
}
