package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var testEpoch = time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

func testOptions(dir string) Options {
	return Options{Dir: dir, Sync: SyncOff}
}

// appendEvents writes n deterministic event records starting at the
// manager's current sequence and returns their payloads.
func appendEvents(t testing.TB, m *Manager, n int) [][]byte {
	t.Helper()
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("event-payload-%04d", i))
		if _, err := m.AppendEvent(uint8(i%3+1), testEpoch.Add(time.Duration(i)*time.Minute), p); err != nil {
			t.Fatalf("AppendEvent %d: %v", i, err)
		}
		payloads[i] = p
	}
	return payloads
}

// replayAll collects every replayed record from a fresh manager.
func replayAll(t testing.TB, dir string, fromSeq uint64) ([]Record, ReplayStats, *Manager) {
	t.Helper()
	m, err := Open(testOptions(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var recs []Record
	stats, err := m.Replay(fromSeq, func(rec Record) error {
		cp := rec
		cp.Payload = append([]byte(nil), rec.Payload...)
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, stats, m
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(testOptions(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.StartAppend(1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	payloads := appendEvents(t, m, 10)
	if _, err := m.AppendRetrain([]byte(`{"auc":0.91}`)); err != nil {
		t.Fatalf("AppendRetrain: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, stats, _ := replayAll(t, dir, 0)
	if len(recs) != 11 {
		t.Fatalf("replayed %d records, want 11", len(recs))
	}
	if stats.Events != 10 || stats.Retrains != 1 || stats.Truncated {
		t.Fatalf("stats = %+v, want 10 events, 1 retrain, not truncated", stats)
	}
	for i, rec := range recs[:10] {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want %d", i, rec.Seq, i+1)
		}
		if rec.Type != RecordEvent {
			t.Fatalf("record %d type = %v, want event", i, rec.Type)
		}
		if !bytes.Equal(rec.Payload, payloads[i]) {
			t.Fatalf("record %d payload = %q, want %q", i, rec.Payload, payloads[i])
		}
		if want := testEpoch.Add(time.Duration(i) * time.Minute); !rec.AvailableAt.Equal(want) {
			t.Fatalf("record %d availableAt = %v, want %v", i, rec.AvailableAt, want)
		}
		if rec.Kind != uint8(i%3+1) {
			t.Fatalf("record %d kind = %d, want %d", i, rec.Kind, i%3+1)
		}
	}
	if recs[10].Type != RecordRetrain || recs[10].Seq != 11 {
		t.Fatalf("last record = %+v, want retrain seq 11", recs[10])
	}
}

func TestAppendResumesAfterReopen(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(testOptions(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.StartAppend(1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	appendEvents(t, m, 5)
	m.Close()

	_, stats, m2 := replayAll(t, dir, 0)
	if stats.LastSeq != 5 {
		t.Fatalf("LastSeq = %d, want 5", stats.LastSeq)
	}
	if err := m2.StartAppend(stats.LastSeq + 1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	if got := m2.NextSeq(); got != 6 {
		t.Fatalf("NextSeq = %d, want 6", got)
	}
	appendEvents(t, m2, 3)
	m2.Close()

	recs, _, _ := replayAll(t, dir, 0)
	if len(recs) != 8 {
		t.Fatalf("replayed %d records after resume, want 8", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want %d", i, rec.Seq, i+1)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 256 // force frequent rotation
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.StartAppend(1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	appendEvents(t, m, 50)
	m.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce at least 3", len(segs))
	}
	recs, stats, _ := replayAll(t, dir, 0)
	if len(recs) != 50 || stats.Truncated {
		t.Fatalf("replayed %d records (truncated=%v), want 50 clean", len(recs), stats.Truncated)
	}
}

func TestSnapshotRoundTripAndTailReplay(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(testOptions(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.StartAppend(1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	appendEvents(t, m, 6)
	state := []byte(`{"feed":"state-after-6"}`)
	meta := SnapshotMeta{LastSeq: 6, EventCount: 6, TakenAt: testEpoch.Add(6 * time.Hour)}
	if err := m.WriteSnapshot(meta, state); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendEvents(t, m, 4)
	m.Close()

	m2, err := Open(testOptions(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	gotMeta, payload, err := m2.LatestSnapshot()
	if err != nil {
		t.Fatalf("LatestSnapshot: %v", err)
	}
	if gotMeta.LastSeq != 6 || gotMeta.EventCount != 6 || !gotMeta.TakenAt.Equal(meta.TakenAt) {
		t.Fatalf("snapshot meta = %+v, want %+v", gotMeta, meta)
	}
	if !bytes.Equal(payload, state) {
		t.Fatalf("snapshot payload = %q, want %q", payload, state)
	}
	var tail []Record
	stats, err := m2.Replay(gotMeta.LastSeq, func(rec Record) error {
		tail = append(tail, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(tail) != 4 || stats.Records != 4 {
		t.Fatalf("replayed %d tail records, want 4", len(tail))
	}
	if tail[0].Seq != 7 {
		t.Fatalf("first tail seq = %d, want 7", tail[0].Seq)
	}
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(testOptions(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.StartAppend(1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	appendEvents(t, m, 4)
	if err := m.WriteSnapshot(SnapshotMeta{LastSeq: 2, EventCount: 2, TakenAt: testEpoch}, []byte("old-state")); err != nil {
		t.Fatalf("WriteSnapshot old: %v", err)
	}
	if err := m.WriteSnapshot(SnapshotMeta{LastSeq: 4, EventCount: 4, TakenAt: testEpoch.Add(time.Hour)}, []byte("new-state")); err != nil {
		t.Fatalf("WriteSnapshot new: %v", err)
	}
	m.Close()

	// Flip a payload byte in the newest snapshot: CRC must reject it and
	// recovery must fall back to the older one.
	newest := filepath.Join(dir, snapshotName(4))
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}

	m2, err := Open(testOptions(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	meta, payload, err := m2.LatestSnapshot()
	if err != nil {
		t.Fatalf("LatestSnapshot: %v", err)
	}
	if meta.LastSeq != 2 || string(payload) != "old-state" {
		t.Fatalf("fell back to meta=%+v payload=%q, want the LastSeq=2 snapshot", meta, payload)
	}

	if problems, err := Verify(dir); err != nil || len(problems) == 0 {
		t.Fatalf("Verify = (%v, %v), want the corrupt snapshot reported", problems, err)
	}
}

func TestCompactionDropsLapsedState(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 256
	opts.Retain = 24 * time.Hour
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.StartAppend(1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	appendEvents(t, m, 30)
	if err := m.WriteSnapshot(SnapshotMeta{LastSeq: 30, EventCount: 30, TakenAt: testEpoch}, []byte("day-0")); err != nil {
		t.Fatalf("WriteSnapshot day 0: %v", err)
	}
	appendEvents(t, m, 30)
	// Two simulated days later: the day-0 snapshot is past the 24h
	// retention window and every segment it covered becomes garbage.
	if err := m.WriteSnapshot(SnapshotMeta{LastSeq: 60, EventCount: 60, TakenAt: testEpoch.Add(48 * time.Hour)}, []byte("day-2")); err != nil {
		t.Fatalf("WriteSnapshot day 2: %v", err)
	}
	m.Close()

	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatalf("listSnapshots: %v", err)
	}
	if len(snaps) != 1 || snaps[0] != snapshotName(60) {
		t.Fatalf("snapshots after compaction = %v, want only %s", snaps, snapshotName(60))
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	for _, name := range segs {
		start, _ := parseSegmentName(name)
		sc, err := scanSegment(filepath.Join(dir, name), nil)
		if err != nil {
			t.Fatalf("scan %s: %v", name, err)
		}
		if sc.records > 0 && sc.lastSeq <= 60 && start > 1 {
			// Fully-covered interior segments must be gone; only the
			// segment containing seq 60's successor position may stay.
		}
	}
	// Recovery must still work from the surviving snapshot + tail.
	m2, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	meta, payload, err := m2.LatestSnapshot()
	if err != nil || meta.LastSeq != 60 || string(payload) != "day-2" {
		t.Fatalf("LatestSnapshot = (%+v, %q, %v), want the day-2 snapshot", meta, payload, err)
	}
	stats, err := m2.Replay(meta.LastSeq, nil)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if stats.Records != 0 || stats.Truncated {
		t.Fatalf("post-compaction replay stats = %+v, want empty clean tail", stats)
	}
	if err := m2.StartAppend(meta.LastSeq + 1); err != nil {
		t.Fatalf("StartAppend after compaction: %v", err)
	}
	if got := m2.NextSeq(); got != 61 {
		t.Fatalf("NextSeq after compaction = %d, want 61", got)
	}
	m2.Close()
}

func TestUncoveredGapEndsReplayablePrefix(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 256
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.StartAppend(1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	appendEvents(t, m, 40)
	m.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("need at least 3 segments, got %v (%v)", segs, err)
	}
	// Delete a middle segment: records after the hole are unreachable
	// without a snapshot covering it.
	mid := segs[1]
	if err := os.Remove(filepath.Join(dir, mid)); err != nil {
		t.Fatalf("remove middle segment: %v", err)
	}
	firstScan, err := scanSegment(filepath.Join(dir, segs[0]), nil)
	if err != nil {
		t.Fatalf("scan first segment: %v", err)
	}

	recs, stats, m2 := replayAll(t, dir, 0)
	if !stats.Truncated {
		t.Fatalf("stats = %+v, want Truncated after a sequence gap", stats)
	}
	if len(recs) != firstScan.records || stats.LastSeq != firstScan.lastSeq {
		t.Fatalf("replayed %d records up to seq %d, want only the first segment's %d (through %d)",
			len(recs), stats.LastSeq, firstScan.records, firstScan.lastSeq)
	}
	// StartAppend must discard the unreachable segments and resume right
	// after the surviving prefix.
	if err := m2.StartAppend(stats.LastSeq + 1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	if got := m2.NextSeq(); got != firstScan.lastSeq+1 {
		t.Fatalf("NextSeq = %d, want %d", got, firstScan.lastSeq+1)
	}
	m2.Close()
	if recs2, stats2, _ := replayAll(t, dir, 0); stats2.Truncated || len(recs2) != firstScan.records {
		t.Fatalf("after StartAppend cleanup: %d records truncated=%v, want clean %d",
			len(recs2), stats2.Truncated, firstScan.records)
	}
}

// TestTornTailFuzz is the corruption fuzz required by the issue:
// truncate the log at every byte offset inside the last record and
// separately flip every byte of it, asserting replay always recovers
// exactly the valid prefix and never panics.
func TestTornTailFuzz(t *testing.T) {
	const records = 8
	build := func(t *testing.T) (string, []int64, int64) {
		dir := t.TempDir()
		m, err := Open(testOptions(dir))
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if err := m.StartAppend(1); err != nil {
			t.Fatalf("StartAppend: %v", err)
		}
		appendEvents(t, m, records)
		m.Close()
		segs, err := listSegments(dir)
		if err != nil || len(segs) != 1 {
			t.Fatalf("want a single segment, got %v (%v)", segs, err)
		}
		offsets, validLen, err := RecordOffsets(filepath.Join(dir, segs[0]))
		if err != nil {
			t.Fatalf("RecordOffsets: %v", err)
		}
		if len(offsets) != records {
			t.Fatalf("got %d record offsets, want %d", len(offsets), records)
		}
		return filepath.Join(dir, segs[0]), offsets, validLen
	}

	check := func(t *testing.T, dir string, wantRecords int, wantTruncated bool) {
		recs, stats, m := replayAll(t, dir, 0)
		if len(recs) != wantRecords {
			t.Fatalf("replayed %d records, want %d (stats %+v)", len(recs), wantRecords, stats)
		}
		if stats.Truncated != wantTruncated {
			t.Fatalf("Truncated = %v, want %v", stats.Truncated, wantTruncated)
		}
		for i, rec := range recs {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("record %d seq = %d, want %d", i, rec.Seq, i+1)
			}
		}
		// The appender must also survive the damage: truncate the torn
		// tail and continue the sequence.
		if err := m.StartAppend(stats.LastSeq + 1); err != nil {
			t.Fatalf("StartAppend on damaged log: %v", err)
		}
		if got := m.NextSeq(); got != uint64(wantRecords)+1 {
			t.Fatalf("NextSeq = %d, want %d", got, wantRecords+1)
		}
		if _, err := m.AppendEvent(1, testEpoch, []byte("post-damage")); err != nil {
			t.Fatalf("AppendEvent after damage: %v", err)
		}
		m.Close()
		if recs2, stats2, _ := replayAll(t, dir, 0); stats2.Truncated || len(recs2) != wantRecords+1 {
			t.Fatalf("post-repair replay: %d records truncated=%v, want clean %d",
				len(recs2), stats2.Truncated, wantRecords+1)
		}
	}

	t.Run("truncate", func(t *testing.T) {
		path, offsets, validLen := build(t)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		lastStart := offsets[records-1]
		for cut := lastStart; cut < validLen; cut++ {
			dir := t.TempDir()
			dst := filepath.Join(dir, filepath.Base(path))
			if err := os.WriteFile(dst, raw[:cut], 0o644); err != nil {
				t.Fatalf("write truncated copy: %v", err)
			}
			// Cutting exactly at the record boundary leaves a clean
			// (shorter) log; any byte into the record is a torn tail.
			check(t, dir, records-1, cut > lastStart)
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		path, offsets, validLen := build(t)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		lastStart := offsets[records-1]
		for pos := lastStart; pos < validLen; pos++ {
			dir := t.TempDir()
			dst := filepath.Join(dir, filepath.Base(path))
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 1 << (pos % 8)
			if err := os.WriteFile(dst, mut, 0o644); err != nil {
				t.Fatalf("write corrupted copy: %v", err)
			}
			// A flipped length field may make the last frame claim fewer
			// bytes than written; whatever the failure mode, replay must
			// recover at most the prefix and never the corrupted record.
			check(t, dir, records-1, true)
		}
	})

	t.Run("header", func(t *testing.T) {
		path, _, _ := build(t)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read segment: %v", err)
		}
		for pos := int64(0); pos < segHeaderSize; pos++ {
			dir := t.TempDir()
			dst := filepath.Join(dir, filepath.Base(path))
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 0xFF
			if err := os.WriteFile(dst, mut, 0o644); err != nil {
				t.Fatalf("write corrupted copy: %v", err)
			}
			recs, stats, m := replayAll(t, dir, 0)
			if len(recs) != 0 || !stats.Truncated {
				t.Fatalf("header flip at %d: replayed %d records truncated=%v, want 0/true",
					pos, len(recs), stats.Truncated)
			}
			if err := m.StartAppend(1); err != nil {
				t.Fatalf("StartAppend after header damage: %v", err)
			}
			m.Close()
		}
	})
}

func TestInspectReportsDirectory(t *testing.T) {
	dir := t.TempDir()
	// A single large segment: the snapshot below must not compact any of
	// the records Inspect is expected to count.
	opts := testOptions(dir)
	m, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.StartAppend(1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	appendEvents(t, m, 20)
	if _, err := m.AppendRetrain([]byte(`{"auc":0.9}`)); err != nil {
		t.Fatalf("AppendRetrain: %v", err)
	}
	if err := m.WriteSnapshot(SnapshotMeta{LastSeq: 21, EventCount: 20, TakenAt: testEpoch}, []byte("state")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	m.Close()

	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if len(info.Snapshots) != 1 || !info.Snapshots[0].Valid || info.Snapshots[0].Meta.LastSeq != 21 {
		t.Fatalf("snapshots = %+v, want one valid snapshot at seq 21", info.Snapshots)
	}
	var events, retrains, records int
	for _, seg := range info.Segments {
		events += seg.Events
		retrains += seg.Retrains
		records += seg.Records
		if seg.Error != "" || seg.TornBytes != 0 {
			t.Fatalf("segment %+v reported damage on a healthy log", seg)
		}
	}
	if events != 20 || retrains != 1 || records != 21 {
		t.Fatalf("inspect totals events=%d retrains=%d records=%d, want 20/1/21", events, retrains, records)
	}
	if problems, err := Verify(dir); err != nil || len(problems) != 0 {
		t.Fatalf("Verify = (%v, %v), want clean", problems, err)
	}
}

func TestEmptyDirectoryRecovery(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(testOptions(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	meta, payload, err := m.LatestSnapshot()
	if err != nil || payload != nil || meta.LastSeq != 0 {
		t.Fatalf("LatestSnapshot on empty dir = (%+v, %v, %v), want zero values", meta, payload, err)
	}
	stats, err := m.Replay(0, func(Record) error {
		t.Fatal("apply invoked on empty dir")
		return nil
	})
	if err != nil || stats.Records != 0 || stats.Truncated {
		t.Fatalf("Replay on empty dir = (%+v, %v), want empty clean", stats, err)
	}
	if err := m.StartAppend(1); err != nil {
		t.Fatalf("StartAppend: %v", err)
	}
	if _, err := m.AppendEvent(1, testEpoch, []byte("first")); err != nil {
		t.Fatalf("AppendEvent: %v", err)
	}
	m.Close()
}

func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncOff, SyncInterval} {
		b.Run(string(policy), func(b *testing.B) {
			dir := b.TempDir()
			opts := Options{Dir: dir, Sync: policy, SegmentBytes: 64 << 20}
			m, err := Open(opts)
			if err != nil {
				b.Fatalf("Open: %v", err)
			}
			if err := m.StartAppend(1); err != nil {
				b.Fatalf("StartAppend: %v", err)
			}
			payload := bytes.Repeat([]byte("x"), 300) // typical wire event size
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.AppendEvent(1, testEpoch, payload); err != nil {
					b.Fatalf("AppendEvent: %v", err)
				}
			}
			b.StopTimer()
			m.Close()
		})
	}
}

func BenchmarkRecoveryReplay(b *testing.B) {
	dir := b.TempDir()
	m, err := Open(Options{Dir: dir, Sync: SyncOff, SegmentBytes: 64 << 20})
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	if err := m.StartAppend(1); err != nil {
		b.Fatalf("StartAppend: %v", err)
	}
	payload := bytes.Repeat([]byte("x"), 300)
	const records = 10000
	for i := 0; i < records; i++ {
		if _, err := m.AppendEvent(1, testEpoch, payload); err != nil {
			b.Fatalf("AppendEvent: %v", err)
		}
	}
	m.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Open(Options{Dir: dir, Sync: SyncOff})
		if err != nil {
			b.Fatalf("Open: %v", err)
		}
		n := 0
		stats, err := m.Replay(0, func(Record) error { n++; return nil })
		if err != nil || n != records || stats.Truncated {
			b.Fatalf("Replay = (%+v, %v) with %d records, want %d clean", stats, err, n, records)
		}
	}
	b.StopTimer()
	b.SetBytes(int64(records * (recHeaderSize + 9 + 9 + len(payload))))
}
