// Package scanmod implements eX-IoT's Scan Module: it buffers newly
// detected scanners into batches (the paper: 100k records or 60
// minutes), drives the ZMap/ZGrab active measurements against them,
// applies the Recog/Ztag fingerprint database to the returned banners,
// and dumps unmatched device-like banners for rule authoring.
package scanmod

import (
	"time"

	"exiot/internal/packet"
	"exiot/internal/recog"
	"exiot/internal/telemetry"
	"exiot/internal/zmap"
)

// Telemetry handles for the scan-module stage (see docs/OPERATIONS.md).
var (
	metBatches = telemetry.Default().Counter("exiot_scanmod_batches_total",
		"Scan batches flushed to active measurement (size or age trigger).")
	metScanners = telemetry.Default().CounterVec("exiot_scanmod_scanners_total",
		"Scanners actively measured, by fingerprint outcome (tagged|untagged).", "result")
	metPending = telemetry.Default().Gauge("exiot_scanmod_pending",
		"Scanners buffered awaiting the next batch flush.")
)

// Config controls batch accumulation.
type Config struct {
	// BatchSize flushes the buffer when this many scanners accumulate
	// (paper: 100k).
	BatchSize int
	// BatchWait flushes the buffer when the oldest entry has waited this
	// long (paper: 60 minutes).
	BatchWait time.Duration
}

// Default returns the paper's operating point scaled for simulation
// (batching thousands, not 100k, keeps laptop latency sane while
// exercising the same flush-by-size-or-age logic).
func Default() Config {
	return Config{BatchSize: 1000, BatchWait: 60 * time.Minute}
}

// Tagged is one scanner's active-measurement outcome: open ports,
// banners, and the banner fingerprint when one matched.
type Tagged struct {
	IP     packet.IP
	Result zmap.HostResult
	Match  *recog.Match
}

// FlushWindow is the timing of the most recent batch flush: when the
// probe sweep started and ended, and how many hosts it covered. Traced
// flows use it for their scanmod/probe spans.
type FlushWindow struct {
	Start time.Time
	End   time.Time
	Hosts int
}

// Module buffers scanners and probes them in batches.
type Module struct {
	cfg     Config
	scanner *zmap.Scanner
	db      *recog.DB

	pending     []packet.IP
	oldestAdded time.Time
	lastFlush   FlushWindow

	scanned int64
	tagged  int64
}

// New creates a scan module over the given scanner and rule base.
func New(cfg Config, scanner *zmap.Scanner, db *recog.DB) *Module {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = Default().BatchSize
	}
	if cfg.BatchWait <= 0 {
		cfg.BatchWait = Default().BatchWait
	}
	return &Module{cfg: cfg, scanner: scanner, db: db}
}

// Enqueue adds a newly detected scanner. now is the (simulated) wall
// clock. It returns a flushed batch when the size or age trigger fires,
// nil otherwise.
func (m *Module) Enqueue(ip packet.IP, now time.Time) []Tagged {
	if len(m.pending) == 0 {
		m.oldestAdded = now
	}
	m.pending = append(m.pending, ip)
	metPending.Set(float64(len(m.pending)))
	if len(m.pending) >= m.cfg.BatchSize || now.Sub(m.oldestAdded) >= m.cfg.BatchWait {
		return m.Flush()
	}
	return nil
}

// Pending returns the number of buffered scanners.
func (m *Module) Pending() int { return len(m.pending) }

// Flush probes every buffered scanner and returns the tagged results.
func (m *Module) Flush() []Tagged {
	if len(m.pending) == 0 {
		return nil
	}
	span := telemetry.Default().StartSpan("probe")
	defer span.End()
	ips := m.pending
	m.pending = nil
	metPending.Set(0)
	metBatches.Inc()
	m.lastFlush = FlushWindow{Start: time.Now(), Hosts: len(ips)}
	results := m.scanner.ScanBatch(ips)
	m.lastFlush.End = time.Now()
	out := make([]Tagged, len(ips))
	for i := range ips {
		out[i] = Tagged{IP: ips[i], Result: results[i]}
		if results[i].HasBanner() {
			if match, ok := m.db.MatchAny(results[i].BannerTexts()); ok {
				matchCopy := match
				out[i].Match = &matchCopy
				m.tagged++
			}
		}
		m.scanned++
		if out[i].Match != nil {
			metScanners.With("tagged").Inc()
		} else {
			metScanners.With("untagged").Inc()
		}
	}
	return out
}

// LastFlush returns the timing of the most recent batch flush.
func (m *Module) LastFlush() FlushWindow { return m.lastFlush }

// PortsPerHost returns the scanner's per-host probe count.
func (m *Module) PortsPerHost() int { return m.scanner.NumPorts() }

// Stats returns (scanned, tagged) lifetime counters.
func (m *Module) Stats() (scanned, tagged int64) {
	return m.scanned, m.tagged
}

// RestoreStats reinstates the lifetime counters from a snapshot so a
// recovered server's dashboard totals match the uninterrupted run.
func (m *Module) RestoreStats(scanned, tagged int64) {
	m.scanned, m.tagged = scanned, tagged
}

// UnknownBanners exposes the rule base's unknown-banner dump.
func (m *Module) UnknownBanners() []string {
	return m.db.UnknownBanners()
}
