package scanmod

import (
	"testing"
	"time"

	"exiot/internal/packet"
	"exiot/internal/recog"
	"exiot/internal/simnet"
	"exiot/internal/zmap"
)

var t0 = time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC)

func testWorld(t *testing.T) *simnet.World {
	t.Helper()
	cfg := simnet.DefaultConfig(40)
	cfg.NumInfected = 300
	cfg.NumNonIoT = 40
	cfg.NumResearch = 3
	cfg.NumMisconfig = 0
	cfg.NumBackscat = 0
	return simnet.NewWorld(cfg)
}

func TestBatchBySize(t *testing.T) {
	w := testWorld(t)
	m := New(Config{BatchSize: 5, BatchWait: time.Hour}, zmap.NewScanner(w), recog.NewDB())
	hosts := w.Hosts()
	var flushed []Tagged
	for i := 0; i < 5; i++ {
		flushed = m.Enqueue(hosts[i].IP, t0.Add(time.Duration(i)*time.Second))
	}
	if flushed == nil {
		t.Fatal("batch did not flush at size threshold")
	}
	if len(flushed) != 5 {
		t.Errorf("flushed %d, want 5", len(flushed))
	}
	if m.Pending() != 0 {
		t.Errorf("pending = %d after flush", m.Pending())
	}
}

func TestBatchByAge(t *testing.T) {
	w := testWorld(t)
	m := New(Config{BatchSize: 1000, BatchWait: 30 * time.Minute}, zmap.NewScanner(w), recog.NewDB())
	hosts := w.Hosts()
	if out := m.Enqueue(hosts[0].IP, t0); out != nil {
		t.Fatal("flushed too early")
	}
	if out := m.Enqueue(hosts[1].IP, t0.Add(10*time.Minute)); out != nil {
		t.Fatal("flushed too early")
	}
	out := m.Enqueue(hosts[2].IP, t0.Add(31*time.Minute))
	if out == nil {
		t.Fatal("age trigger did not flush")
	}
	if len(out) != 3 {
		t.Errorf("flushed %d, want 3", len(out))
	}
}

func TestFlushEmpty(t *testing.T) {
	w := testWorld(t)
	m := New(Default(), zmap.NewScanner(w), recog.NewDB())
	if out := m.Flush(); out != nil {
		t.Errorf("empty flush returned %d results", len(out))
	}
}

func TestTaggingAgainstWorld(t *testing.T) {
	w := testWorld(t)
	m := New(Default(), zmap.NewScanner(w), recog.NewDB())
	for _, h := range w.Hosts() {
		m.Enqueue(h.IP, t0)
	}
	out := m.Flush()
	if len(out) != len(w.Hosts()) {
		t.Fatalf("flushed %d of %d", len(out), len(w.Hosts()))
	}
	taggedIoT, taggedNonIoT, wrongVendor := 0, 0, 0
	iotMislabels, nonIoTMislabels := 0, 0
	for _, tg := range out {
		if tg.Match == nil {
			continue
		}
		h, _ := w.HostByIP(tg.IP)
		if tg.Match.IoT {
			taggedIoT++
			if h.Kind != simnet.KindInfectedIoT {
				nonIoTMislabels++ // VPS with embedded-flavored software
			} else if tg.Match.Vendor != "" && tg.Match.Vendor != h.Model.Vendor {
				wrongVendor++
			}
		} else {
			taggedNonIoT++
			if h.Kind == simnet.KindInfectedIoT {
				iotMislabels++ // IoT device on a stock server image
			}
		}
	}
	if taggedIoT == 0 {
		t.Error("no IoT labels produced — training would starve")
	}
	if taggedNonIoT == 0 {
		t.Error("no non-IoT labels produced — training would be single-class")
	}
	// Banner truth carries realistic noise (the simulator's stock-image
	// devices and embedded-software VPSes), but it must stay bounded or
	// the training signal collapses.
	if frac := float64(nonIoTMislabels) / float64(taggedIoT); frac > 0.35 {
		t.Errorf("IoT-tag noise = %.2f of %d tags, want bounded", frac, taggedIoT)
	}
	if frac := float64(iotMislabels) / float64(taggedNonIoT); frac > 0.45 {
		t.Errorf("non-IoT-tag noise = %.2f of %d tags, want bounded", frac, taggedNonIoT)
	}
	if wrongVendor > 0 {
		t.Errorf("%d vendor misattributions on true IoT devices", wrongVendor)
	}
	scanned, tagged := m.Stats()
	if scanned != int64(len(out)) {
		t.Errorf("scanned = %d", scanned)
	}
	if tagged != int64(taggedIoT+taggedNonIoT) {
		t.Errorf("tagged = %d, want %d", tagged, taggedIoT+taggedNonIoT)
	}
}

func TestUnknownBannerDump(t *testing.T) {
	// A world-less module with a prober returning an unknown device-like
	// banner must dump it.
	m := New(Default(), zmap.NewScannerWithPorts(oddProber{}, []uint16{80}), recog.NewDB())
	m.Enqueue(packet.MustParseIP("198.18.0.1"), t0)
	out := m.Flush()
	if len(out) != 1 || out[0].Match != nil {
		t.Fatalf("unexpected tag: %+v", out)
	}
	if got := m.UnknownBanners(); len(got) != 1 {
		t.Errorf("unknown dump = %d entries, want 1", len(got))
	}
}

// oddProber always returns a device-like banner no rule matches.
type oddProber struct{}

func (oddProber) ProbePort(packet.IP, uint16) bool { return true }
func (oddProber) GrabBanner(packet.IP, uint16) (string, string, bool) {
	return "FUTURECAM fc-9000x ready", "http", true
}
