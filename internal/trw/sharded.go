package trw

import (
	"math"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"time"

	"exiot/internal/mbuf"
	"exiot/internal/packet"
	"exiot/internal/telemetry"
)

// Telemetry handles for the sharded-detection stage (see
// docs/OPERATIONS.md). Per-shard series are cached on the shard structs;
// only family registration happens here.
var (
	metShardQueueDepth = telemetry.Default().GaugeVec("exiot_trw_shard_queue_depth",
		"Buffered batches on one detector shard's input queue (backlog).", "shard")
	metShardFlowTable = telemetry.Default().GaugeVec("exiot_trw_shard_flow_table_size",
		"Tracked source-flow entries in one detector shard's state table.", "shard")
	metMergedEvents = telemetry.Default().Counter("exiot_trw_merged_events_total",
		"Detector events delivered through the deterministic shard merge.")
)

const (
	// shardBatchSize is how many packets the coordinator groups before
	// handing them to a shard. Batching amortizes queue synchronization
	// over hundreds of packets, keeping the per-packet routing cost to a
	// hash and an append.
	shardBatchSize = 512
	// shardQueueDepth bounds the per-shard batch queue. A full queue
	// blocks the coordinator (back-pressure), so a slow shard cannot be
	// buried under an unbounded backlog.
	shardQueueDepth = 8
	// maxShards is a sanity cap on the shard count.
	maxShards = 256
)

// ShardedDetector runs TRW detection across multiple Detector shards,
// partitioning sources by a hash of their address so that every packet of
// a given source is processed by exactly one shard, in arrival order. The
// TRW walk is purely per-source state, which makes the partition exact:
// each shard is byte-for-byte the serial detector restricted to its slice
// of the source space.
//
// Events are buffered shard-locally and merged into a single
// deterministic stream at the EndHour/Flush barriers: flow events replay
// in the order the packets that triggered them appeared in the global
// stream (timestamp order, with the ingest position breaking ties),
// hourly-sweep events are ordered by source IP, and per-second reports
// are summed across shards per second. The merged stream is identical to
// what one serial Detector fed the same packets would emit, so everything
// downstream of the emit callback stays single-threaded and unchanged.
//
// The coordinator methods (ProcessBatch, EndHour, Flush, Stats, Close)
// must be called from a single goroutine, like the serial Detector's.
type ShardedDetector struct {
	emit   func(Event)
	shards []*shard
	wg     sync.WaitGroup

	// Global-stream bookkeeping, mirroring the serial detector's
	// per-second clock so merged reports surface for exactly the seconds
	// a serial run would have emitted.
	nextIdx   int64
	lastTs    time.Time
	curSecond time.Time
	marks     []reportMark

	// Reused coordinator scratch: per-shard routing batches (the slices
	// themselves come from shardBatchPool and are returned by the shard
	// goroutines), the merge buffer, the per-second report aggregation
	// map, and the barrier channel.
	routeBufs   [][]shardPkt
	mergeBuf    []taggedEvent
	aggScratch  map[int64]*SecondReport
	barrierDone chan struct{}

	closed bool
}

// reportMark records that the serial detector would have emitted the
// report for second `second` just before processing packet `trigger`.
type reportMark struct {
	second  time.Time
	trigger int64
}

// taggedEvent is a shard-local event paired with the global index of the
// packet that triggered it (math.MaxInt64 for hourly-sweep events).
type taggedEvent struct {
	trigger int64
	ev      Event
}

// shardPkt routes one packet to a shard together with its global ingest
// position.
type shardPkt struct {
	p   *packet.Packet
	idx int64
}

type opKind int

const (
	opProcess opKind = iota + 1
	opAdvance
	opEndHour
	opFlush
	opBarrier
)

// shardOp is one unit of work on a shard's queue.
type shardOp struct {
	kind opKind
	pkts []shardPkt    // opProcess
	ts   time.Time     // opAdvance / opEndHour / opFlush
	done chan struct{} // opBarrier
}

// shard owns one Detector plus the event buffers it fills between
// barriers. The buffers are written only by the shard goroutine and read
// by the coordinator only after a barrier, so the queue's happens-before
// edges are the only synchronization needed.
type shard struct {
	det     *Detector
	in      *mbuf.Buffer[shardOp]
	events  []taggedEvent
	reports []SecondReport
	curIdx  int64
	sweep   bool

	// Cached telemetry series for this shard (vec lookups are too
	// expensive for the routing hot path).
	queueDepth *telemetry.Gauge
	flowTable  *telemetry.Gauge
}

func (s *shard) collect(e Event) {
	if e.Kind == EventSecondReport {
		s.reports = append(s.reports, *e.Report)
		return
	}
	trig := s.curIdx
	if s.sweep {
		trig = math.MaxInt64
	}
	s.events = append(s.events, taggedEvent{trigger: trig, ev: e})
}

func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		op, ok := s.in.Pop()
		if !ok {
			return
		}
		switch op.kind {
		case opProcess:
			for _, sp := range op.pkts {
				s.curIdx = sp.idx
				s.det.Process(sp.p)
			}
			putShardBatch(op.pkts)
		case opAdvance:
			s.det.AdvanceClock(op.ts)
		case opEndHour:
			s.sweep = true
			s.det.EndHour(op.ts)
			s.sweep = false
		case opFlush:
			s.sweep = true
			s.det.Flush(op.ts)
			s.sweep = false
		case opBarrier:
			op.done <- struct{}{}
		}
	}
}

// NewShardedDetector creates a detector with the given number of shards
// delivering merged events to emit. workers <= 0 selects GOMAXPROCS.
func NewShardedDetector(cfg Config, workers int, emit func(Event)) *ShardedDetector {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxShards {
		workers = maxShards
	}
	d := &ShardedDetector{
		emit:        emit,
		shards:      make([]*shard, workers),
		routeBufs:   make([][]shardPkt, workers),
		aggScratch:  make(map[int64]*SecondReport),
		barrierDone: make(chan struct{}, workers),
	}
	for i := range d.shards {
		label := strconv.Itoa(i)
		s := &shard{
			in:         mbuf.New[shardOp](shardQueueDepth),
			queueDepth: metShardQueueDepth.With(label),
			flowTable:  metShardFlowTable.With(label),
		}
		s.det = newDetector(cfg, label, s.collect)
		// collect copies the report struct before the detector reuses it,
		// and deliver folds the flat port tallies out of the detector's
		// arena at the barrier, so shard detectors can recycle both.
		s.det.recycleReports = true
		d.shards[i] = s
		d.wg.Add(1)
		go s.run(&d.wg)
	}
	return d
}

// NumShards returns the shard count.
func (d *ShardedDetector) NumShards() int { return len(d.shards) }

// ShardIndex spreads the 32-bit source address over n shards with a
// Fibonacci multiplicative hash, so adjacent addresses (a scanning /24,
// say) do not pile onto one shard. It is exported because it defines
// shard *ownership* for the whole system: a multi-node telescope
// deployment partitions source space with the same function
// (`flowsampler -shard i/N` keeps exactly the packets where
// ShardIndex(src, N) == i), which is what makes the cluster merge
// byte-identical to a single-node run.
func ShardIndex(ip packet.IP, n int) int {
	h := uint64(uint32(ip)) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(n))
}

// ProcessBatch routes a slice of telescope packets (non-decreasing
// timestamps, continuing the stream of previous calls) to the shards.
// Triggered events are buffered and surface at the next EndHour or Flush
// barrier.
func (d *ShardedDetector) ProcessBatch(pkts []packet.Packet) {
	if len(pkts) == 0 || d.closed {
		return
	}
	n := len(d.shards)
	batches := d.routeBufs
	for i := range pkts {
		p := &pkts[i]
		// Replicate the serial tickSecond schedule: the report for second
		// S is due just before the first packet whose second exceeds S.
		sec := p.Timestamp.Truncate(time.Second)
		if d.curSecond.IsZero() {
			d.curSecond = sec
		} else {
			for d.curSecond.Before(sec) {
				d.marks = append(d.marks, reportMark{second: d.curSecond, trigger: d.nextIdx})
				d.curSecond = d.curSecond.Add(time.Second)
			}
		}
		si := ShardIndex(p.SrcIP, n)
		if batches[si] == nil {
			batches[si] = newShardBatch()
		}
		batches[si] = append(batches[si], shardPkt{p: p, idx: d.nextIdx})
		d.nextIdx++
		if len(batches[si]) == shardBatchSize {
			s := d.shards[si]
			s.in.Push(shardOp{kind: opProcess, pkts: batches[si]})
			s.queueDepth.Set(float64(s.in.Len()))
			batches[si] = nil
		}
	}
	d.lastTs = pkts[len(pkts)-1].Timestamp
	for si, b := range batches {
		if len(b) > 0 {
			s := d.shards[si]
			s.in.Push(shardOp{kind: opProcess, pkts: b})
			s.queueDepth.Set(float64(s.in.Len()))
		}
		batches[si] = nil
	}
}

// EndHour drains the shards, runs the hourly sweep on each, and delivers
// the merged event stream for everything since the previous barrier. Like
// the serial detector, the in-flight second flushes at the barrier, so
// each hour's merged stream is self-contained.
func (d *ShardedDetector) EndHour(now time.Time) {
	if d.closed {
		return
	}
	for _, s := range d.shards {
		if !d.lastTs.IsZero() {
			s.in.Push(shardOp{kind: opAdvance, ts: d.lastTs})
		}
		s.in.Push(shardOp{kind: opEndHour, ts: now})
	}
	d.endBarrier()
}

// Flush delivers the pending per-second report, ends every live scan
// flow, and emits the merged stream. Call once at end of input.
func (d *ShardedDetector) Flush(now time.Time) {
	if d.closed {
		return
	}
	for _, s := range d.shards {
		if !d.lastTs.IsZero() {
			s.in.Push(shardOp{kind: opAdvance, ts: d.lastTs})
		}
		s.in.Push(shardOp{kind: opFlush, ts: now})
	}
	d.endBarrier()
}

// endBarrier finishes an EndHour/Flush: the serial detector emits the
// in-flight second's report just before the sweep, so mark it due at
// MaxInt64 (after all packet-triggered events, before sweep events land
// via the strict-< interleave). The per-hour clock then resets — the next
// hour re-anchors on its first packet, exactly like the serial detector
// after its own EndHour.
func (d *ShardedDetector) endBarrier() {
	if !d.curSecond.IsZero() {
		d.marks = append(d.marks, reportMark{second: d.curSecond, trigger: math.MaxInt64})
	}
	d.barrier()
	d.deliver()
	d.curSecond = time.Time{}
	d.lastTs = time.Time{}
}

// barrier waits until every shard has executed all queued work, then
// refreshes the per-shard telemetry gauges (queues drained, state tables
// readable without racing the shard goroutines).
func (d *ShardedDetector) barrier() {
	done := d.barrierDone
	for _, s := range d.shards {
		s.in.Push(shardOp{kind: opBarrier, done: done})
	}
	for range d.shards {
		<-done
	}
	for _, s := range d.shards {
		s.queueDepth.Set(float64(s.in.Len()))
		s.flowTable.Set(float64(s.det.ActiveSources()))
	}
}

// deliver merges the shard-local buffers into one deterministic stream
// and hands it to emit on the caller's goroutine. Must run right after a
// barrier (shards idle).
func (d *ShardedDetector) deliver() {
	// Per-second reports: sum the shard-local reports for each second.
	// The aggregation map is coordinator scratch (cleared per barrier);
	// the merged *SecondReport values escape downstream and stay freshly
	// allocated. The shard-local port tallies are flat pairs in each
	// detector's arena (recycleReports); folding them here and truncating
	// the arenas makes a whole hour of per-shard reports allocation-free.
	agg := d.aggScratch
	for _, s := range d.shards {
		pairs := s.det.portPairs
		for i := range s.reports {
			r := &s.reports[i]
			key := r.Second.UnixNano()
			dst, ok := agg[key]
			if !ok {
				dst = &SecondReport{Second: r.Second}
				agg[key] = dst
			}
			addReport(dst, r)
			if r.pairLen > 0 {
				if dst.PortPackets == nil {
					dst.PortPackets = make(map[uint16]int, r.pairLen)
				}
				for _, pc := range pairs[r.pairOff : r.pairOff+r.pairLen] {
					dst.PortPackets[pc.port] += int(pc.n)
				}
			}
		}
		s.reports = s.reports[:0]
		s.det.portPairs = s.det.portPairs[:0]
	}

	// Flow events: replay in global trigger order; sweep events (equal
	// MaxInt64 triggers) order by source IP, matching the serial sweep.
	evs := d.mergeBuf[:0]
	for _, s := range d.shards {
		evs = append(evs, s.events...)
		s.events = s.events[:0]
	}
	slices.SortStableFunc(evs, func(a, b taggedEvent) int {
		switch {
		case a.trigger < b.trigger:
			return -1
		case a.trigger > b.trigger:
			return 1
		case a.ev.IP < b.ev.IP:
			return -1
		case a.ev.IP > b.ev.IP:
			return 1
		}
		return 0
	})

	// Interleave: the report for a second is due before the packet that
	// crossed it, so at an equal trigger reports go first.
	marks := d.marks
	ei := 0
	emit := func(e Event) {
		metMergedEvents.Inc()
		d.emit(e)
	}
	for _, m := range marks {
		for ei < len(evs) && evs[ei].trigger < m.trigger {
			emit(evs[ei].ev)
			ei++
		}
		rep := agg[m.second.UnixNano()]
		if rep == nil {
			rep = &SecondReport{Second: m.second}
		}
		emit(Event{Kind: EventSecondReport, Report: rep})
	}
	for ; ei < len(evs); ei++ {
		emit(evs[ei].ev)
	}

	// Scrub and park the merge buffer for the next barrier (events were
	// handed downstream; keeping them referenced would pin sample slabs).
	clear(evs)
	d.mergeBuf = evs[:0]
	d.marks = d.marks[:0]
	clear(agg)
}

// addReport folds src into dst (same second).
func addReport(dst, src *SecondReport) {
	dst.Total += src.Total
	dst.TCP += src.TCP
	dst.UDP += src.UDP
	dst.ICMP += src.ICMP
	dst.Backscatter += src.Backscatter
	dst.NewScanFlows += src.NewScanFlows
	if len(src.PortPackets) > 0 {
		if dst.PortPackets == nil {
			dst.PortPackets = make(map[uint16]int, len(src.PortPackets))
		}
		for port, n := range src.PortPackets {
			dst.PortPackets[port] += n
		}
	}
}

// Stats returns lifetime counters aggregated across shards.
func (d *ShardedDetector) Stats() Stats {
	if !d.closed {
		d.barrier()
	}
	var out Stats
	for _, s := range d.shards {
		st := s.det.Stats()
		out.Processed += st.Processed
		out.Backscatter += st.Backscatter
		out.ScannersFound += st.ScannersFound
		out.SamplesEmitted += st.SamplesEmitted
		out.FlowsEnded += st.FlowsEnded
		out.ActiveSources += st.ActiveSources
	}
	return out
}

// Close stops the shard goroutines. The detector accepts no work after
// Close; Stats remains readable. Close is idempotent.
func (d *ShardedDetector) Close() {
	if d.closed {
		return
	}
	d.closed = true
	for _, s := range d.shards {
		s.in.Close()
	}
	d.wg.Wait()
}
