package trw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSPRTParamsValidate(t *testing.T) {
	if err := DefaultSPRTParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []SPRTParams{
		{Theta0: 0, Theta1: 0.8, Alpha: 0.01, Beta: 0.01},
		{Theta0: 0.2, Theta1: 1, Alpha: 0.01, Beta: 0.01},
		{Theta0: 0.8, Theta1: 0.2, Alpha: 0.01, Beta: 0.01}, // θ1 ≤ θ0
		{Theta0: 0.2, Theta1: 0.8, Alpha: 0, Beta: 0.01},
		{Theta0: 0.2, Theta1: 0.8, Alpha: 0.01, Beta: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
	if _, err := NewSPRT(SPRTParams{}); err == nil {
		t.Error("zero params accepted")
	}
}

func TestDarknetFailuresReachScannerVerdict(t *testing.T) {
	params := DefaultSPRTParams()
	s, err := NewSPRT(params)
	if err != nil {
		t.Fatal(err)
	}
	want := params.DarknetThreshold()
	for i := 0; i < want-1; i++ {
		if v := s.ObserveFailure(); v != VerdictPending {
			t.Fatalf("verdict %v after %d failures, want pending until %d", v, i+1, want)
		}
	}
	if v := s.ObserveFailure(); v != VerdictScanner {
		t.Fatalf("verdict %v after %d failures, want scanner", v, want)
	}
	if s.Observed() != want {
		t.Errorf("observed = %d, want %d", s.Observed(), want)
	}
	// Decisions are terminal.
	if v := s.ObserveSuccess(); v != VerdictScanner {
		t.Error("terminal verdict changed")
	}
}

func TestBenignSuccessesReachBenignVerdict(t *testing.T) {
	s, err := NewSPRT(DefaultSPRTParams())
	if err != nil {
		t.Fatal(err)
	}
	v := VerdictPending
	for i := 0; i < 100 && v == VerdictPending; i++ {
		v = s.ObserveSuccess()
	}
	if v != VerdictBenign {
		t.Fatalf("verdict = %v after successes, want benign", v)
	}
}

func TestAlternatingStaysBalanced(t *testing.T) {
	// With the symmetric default (θ1 = 1 − θ0), a fail and a success
	// cancel exactly; the walk stays pending forever.
	s, err := NewSPRT(DefaultSPRTParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s.ObserveFailure()
		if v := s.ObserveSuccess(); v != VerdictPending {
			t.Fatalf("alternating walk decided %v at step %d", v, i)
		}
	}
}

func TestDarknetThresholdFormula(t *testing.T) {
	p := DefaultSPRTParams()
	n := p.DarknetThreshold()
	// Directly: N = ⌈ln((1−β)/α) / ln(θ1/θ0)⌉ = ⌈ln(0.99/1e-5)/ln 4⌉ = 9.
	want := int(math.Ceil(math.Log(0.99/1e-5) / math.Log(4)))
	if n != want {
		t.Errorf("DarknetThreshold = %d, want %d", n, want)
	}
}

// TestParamsForPaperThreshold documents the correspondence between the
// paper's 100-packet operating point and SPRT parameters.
func TestParamsForPaperThreshold(t *testing.T) {
	p, err := ParamsForDarknetThreshold(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.DarknetThreshold(); got != 100 {
		t.Fatalf("round-trip threshold = %d, want 100", got)
	}
	// 100 packets at ln(4) per step implies an astronomically small α:
	// the paper's operating point is extremely conservative about false
	// positives, which is the right trade for an operational feed.
	if p.Alpha > 1e-50 {
		t.Errorf("implied α = %g, expected astronomically small", p.Alpha)
	}
	if _, err := ParamsForDarknetThreshold(0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := ParamsForDarknetThreshold(10000); err == nil {
		t.Error("unrepresentable threshold accepted")
	}
}

func TestParamsRoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		threshold := int(raw%400) + 1
		p, err := ParamsForDarknetThreshold(threshold)
		if err != nil {
			return false
		}
		return p.DarknetThreshold() == threshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSPRTAgreesWithDetectorCounter shows the equivalence the Detector
// relies on: on darknet traffic (failures only), the SPRT fires at
// exactly its DarknetThreshold — a pure packet counter.
func TestSPRTAgreesWithDetectorCounter(t *testing.T) {
	for _, threshold := range []int{10, 50, 100, 200} {
		p, err := ParamsForDarknetThreshold(threshold)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSPRT(p)
		if err != nil {
			t.Fatal(err)
		}
		fired := 0
		for i := 1; i <= threshold+10; i++ {
			if s.ObserveFailure() == VerdictScanner && fired == 0 {
				fired = i
			}
		}
		if fired != threshold {
			t.Errorf("threshold %d: SPRT fired at %d", threshold, fired)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictPending.String() != "pending" || VerdictScanner.String() != "scanner" || VerdictBenign.String() != "benign" {
		t.Error("verdict names wrong")
	}
}
