package trw

import (
	"math/rand"
	"testing"

	"exiot/internal/packet"
)

func TestFloorDiv(t *testing.T) {
	cases := []struct{ n, d, want int64 }{
		{0, 10, 0}, {9, 10, 0}, {10, 10, 1}, {19, 10, 1},
		{-1, 10, -1}, {-10, 10, -1}, {-11, 10, -2},
		{int64(1e18), int64(1e9), int64(1e9)},
	}
	for _, c := range cases {
		if got := floorDiv(c.n, c.d); got != c.want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
}

func TestFlowTableInsertGet(t *testing.T) {
	tbl := newFlowTable(int64(1e9))
	a := packet.MustParseIP("10.0.0.1")
	b := packet.MustParseIP("10.0.0.2")

	idxA, isNew := tbl.getOrInsert(a, 100)
	if !isNew {
		t.Fatal("first insert of a should be new")
	}
	if e := &tbl.entries[idxA]; e.ip != a || e.first != 100 || e.last != 100 || e.count != 1 {
		t.Fatalf("fresh entry not initialized: %+v", e)
	}
	idxB, isNew := tbl.getOrInsert(b, 200)
	if !isNew || idxB == idxA {
		t.Fatalf("insert of b: new=%v idx=%d (a=%d)", isNew, idxB, idxA)
	}
	if idx, isNew := tbl.getOrInsert(a, 300); isNew || idx != idxA {
		t.Fatalf("re-get of a: new=%v idx=%d, want existing %d", isNew, idx, idxA)
	}
	if tbl.len() != 2 {
		t.Fatalf("len = %d, want 2", tbl.len())
	}
}

// TestFlowTableGrowStableIndices fills the table well past its initial
// slot count and checks that every previously returned arena index still
// resolves to its IP — growth rehomes slots but never moves entries.
func TestFlowTableGrowStableIndices(t *testing.T) {
	tbl := newFlowTable(int64(1e9))
	rng := rand.New(rand.NewSource(7))
	idxOf := make(map[packet.IP]int32, 20000)
	for len(idxOf) < 20000 {
		ip := packet.IP(rng.Uint32())
		if _, ok := idxOf[ip]; ok {
			continue
		}
		idx, isNew := tbl.getOrInsert(ip, int64(len(idxOf)))
		if !isNew {
			t.Fatalf("ip %v reported existing on first insert", ip)
		}
		idxOf[ip] = idx
	}
	if len(tbl.slots) <= flowTableInitialSlots {
		t.Fatalf("table never grew: %d slots", len(tbl.slots))
	}
	for ip, want := range idxOf {
		idx, isNew := tbl.getOrInsert(ip, 0)
		if isNew || idx != want {
			t.Fatalf("ip %v: idx=%d new=%v, want stable idx %d", ip, idx, isNew, want)
		}
		if tbl.entries[idx].ip != ip {
			t.Fatalf("arena entry %d holds %v, want %v", idx, tbl.entries[idx].ip, ip)
		}
	}
}

// TestFlowTableDeleteRandom interleaves random inserts with sweeps at
// random cutoffs against a reference map, exercising backward-shift
// compaction on colliding probe chains across many epochs. Every sweep
// must end exactly the reference entries idle at the cutoff, and every
// survivor must still resolve to its original arena index.
func TestFlowTableDeleteRandom(t *testing.T) {
	tbl := newFlowTable(100) // short epochs: sweeps span many buckets
	rng := rand.New(rand.NewSource(11))
	ref := make(map[packet.IP]int32)
	lastTouch := make(map[packet.IP]int64)

	for step := 0; step < 30000; step++ {
		if rng.Intn(40) != 0 {
			ip := packet.IP(rng.Uint32() % 8192) // small space forces collisions
			idx, isNew := tbl.getOrInsert(ip, int64(step))
			if want, ok := ref[ip]; ok {
				if isNew || idx != want {
					t.Fatalf("step %d: ip %v idx=%d new=%v, want existing %d", step, ip, idx, isNew, want)
				}
				// Touch like the detector does, leaving gen stale.
				tbl.entries[idx].last = int64(step)
				lastTouch[ip] = int64(step)
			} else {
				if !isNew {
					t.Fatalf("step %d: ip %v reported existing but not in reference", step, ip)
				}
				ref[ip] = idx
				lastTouch[ip] = int64(step)
			}
			continue
		}
		// End every flow idle since a random past step, exactly as the
		// detector's hourly sweep does.
		cutoff := int64(step - rng.Intn(step+1))
		ended := tbl.sweep(cutoff, nil)
		for _, idx := range ended {
			ip := tbl.entries[idx].ip
			if want, ok := ref[ip]; !ok || want != idx {
				t.Fatalf("step %d: sweep ended unknown/stale entry %d (ip %v)", step, idx, ip)
			}
			if lt := lastTouch[ip]; lt > cutoff {
				t.Fatalf("step %d: sweep ended %v touched at %d > cutoff %d", step, ip, lt, cutoff)
			}
			delete(ref, ip)
			delete(lastTouch, ip)
			tbl.release(idx)
		}
		for ip, lt := range lastTouch {
			if lt <= cutoff {
				t.Fatalf("step %d: %v idle since %d survived sweep(%d)", step, ip, lt, cutoff)
			}
		}
	}
	if tbl.len() != len(ref) {
		t.Fatalf("len = %d, want %d", tbl.len(), len(ref))
	}
	for ip, want := range ref {
		if idx, isNew := tbl.getOrInsert(ip, 0); isNew || idx != want {
			t.Fatalf("survivor %v: idx=%d new=%v, want %d", ip, idx, isNew, want)
		}
	}
}

// TestFlowTableFreeListReuse releases entries and checks subsequent
// inserts recycle their arena slots instead of growing the slab.
func TestFlowTableFreeListReuse(t *testing.T) {
	tbl := newFlowTable(int64(1e9))
	for i := 0; i < 100; i++ {
		tbl.getOrInsert(packet.IP(i+1), int64(i))
	}
	capBefore := tbl.arenaCap()
	ended := tbl.sweep(1000, nil) // everything idle: all 100 end
	if len(ended) != 100 {
		t.Fatalf("sweep ended %d, want 100", len(ended))
	}
	for _, idx := range ended {
		tbl.release(idx)
	}
	if tbl.freeCount() != 100 || tbl.len() != 0 {
		t.Fatalf("after release: free=%d live=%d", tbl.freeCount(), tbl.len())
	}
	for i := 0; i < 100; i++ {
		tbl.getOrInsert(packet.IP(i+1000), int64(i))
	}
	if tbl.arenaCap() != capBefore {
		t.Fatalf("arena grew %d -> %d despite %d free entries", capBefore, tbl.arenaCap(), 100)
	}
	if tbl.freeCount() != 0 {
		t.Fatalf("free list not drained: %d", tbl.freeCount())
	}
}

// TestFlowTableSweepBoundary pins the expiry comparison: last <= cutoff
// ends the flow (the detector's `now - last >= FlowEndGap` inclusive
// semantics), one nano later survives — even when both entries share the
// cutoff's epoch bucket.
func TestFlowTableSweepBoundary(t *testing.T) {
	epoch := int64(1000)
	tbl := newFlowTable(epoch)
	atCut := packet.MustParseIP("192.0.2.1")
	after := packet.MustParseIP("192.0.2.2")
	cutoff := int64(5500) // mid-epoch: bucket 5 is due, survivors refile
	tbl.getOrInsert(atCut, cutoff)
	tbl.getOrInsert(after, cutoff+1)

	ended := tbl.sweep(cutoff, nil)
	if len(ended) != 1 || tbl.entries[ended[0]].ip != atCut {
		t.Fatalf("sweep(cutoff) ended %v, want exactly [%v]", ended, atCut)
	}
	tbl.release(ended[0])
	if tbl.len() != 1 {
		t.Fatalf("len = %d, want 1 survivor", tbl.len())
	}
	// The survivor was re-filed; a later sweep past its last must end it.
	ended = tbl.sweep(cutoff+1, nil)
	if len(ended) != 1 || tbl.entries[ended[0]].ip != after {
		t.Fatalf("second sweep ended %v, want [%v]", ended, after)
	}
}

// TestFlowTableSweepRefilesTouched files an entry, touches it much later
// (the lazy path: gen goes stale, no re-file on touch), then sweeps past
// the original epoch. The entry must survive, re-filed under its current
// epoch, and expire only when a sweep passes its true last-touch time.
func TestFlowTableSweepRefilesTouched(t *testing.T) {
	epoch := int64(1000)
	tbl := newFlowTable(epoch)
	ip := packet.MustParseIP("198.51.100.9")
	idx, _ := tbl.getOrInsert(ip, 500) // filed under epoch 0
	tbl.entries[idx].last = 10_500     // touched in epoch 10; gen still 0

	if ended := tbl.sweep(9_999, nil); len(ended) != 0 {
		t.Fatalf("sweep ended a touched entry: %v", ended)
	}
	if g := tbl.entries[idx].gen; g != 10 {
		t.Fatalf("survivor re-filed under epoch %d, want 10", g)
	}
	ended := tbl.sweep(10_500, nil)
	if len(ended) != 1 || ended[0] != idx {
		t.Fatalf("sweep past last-touch ended %v, want [%d]", ended, idx)
	}
}
