// Package trw implements eX-IoT's flow-detection and packet-sampling
// module: the backscatter filter, the Threshold-Random-Walk (TRW) scan
// detector specialized for darknet traffic, per-source sampling, flow
// expiry, and the per-second packet-level reports.
//
// On a network telescope every connection attempt is, by construction, a
// failed connection — the darkness never answers. The sequential
// hypothesis test of Jung et al. therefore degenerates into a likelihood
// ratio that climbs by a constant per observed packet, i.e. a packet-count
// threshold (the theoretic derivation is the authors' prior work, refs
// [54, 55] of the paper). The paper's operating point: a source is a
// scanner once it sends ≥100 packets with no inter-arrival gap above
// 300 s and a flow duration of at least 1 minute (the duration floor
// excludes misconfiguration bursts). After detection the next 200 packets
// are sampled in full for the classifier, then the flow is tracked only
// for liveness; it ends when an hour boundary finds it idle for >1 h.
package trw

import (
	"sort"
	"time"

	"exiot/internal/packet"
)

// Config holds the detector's operating thresholds. The zero value is
// replaced by the paper's operating point (see Default).
type Config struct {
	// DetectionThreshold is the TRW packet-count threshold (paper: 100).
	DetectionThreshold int
	// SampleSize is the number of packets sampled after detection
	// (paper: 200).
	SampleSize int
	// ExpiryGap is the maximum inter-arrival gap within a counting flow
	// (paper: 300 s).
	ExpiryGap time.Duration
	// MinDuration is the minimum flow duration before detection
	// (paper: 1 minute).
	MinDuration time.Duration
	// FlowEndGap is the idle period after which an hourly sweep declares
	// a scan flow ended (paper: 1 hour).
	FlowEndGap time.Duration
}

// Default returns the paper's operating point.
func Default() Config {
	return Config{
		DetectionThreshold: 100,
		SampleSize:         200,
		ExpiryGap:          300 * time.Second,
		MinDuration:        time.Minute,
		FlowEndGap:         time.Hour,
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.DetectionThreshold <= 0 {
		c.DetectionThreshold = d.DetectionThreshold
	}
	if c.SampleSize <= 0 {
		c.SampleSize = d.SampleSize
	}
	if c.ExpiryGap <= 0 {
		c.ExpiryGap = d.ExpiryGap
	}
	// A negative MinDuration disables the duration floor explicitly
	// (ablation studies); zero means "use the paper's default".
	if c.MinDuration == 0 {
		c.MinDuration = d.MinDuration
	} else if c.MinDuration < 0 {
		c.MinDuration = 0
	}
	if c.FlowEndGap <= 0 {
		c.FlowEndGap = d.FlowEndGap
	}
	return c
}

// EventKind discriminates detector events.
type EventKind int

// Detector event kinds.
const (
	// EventScannerDetected fires once when a source crosses the TRW
	// threshold.
	EventScannerDetected EventKind = iota + 1
	// EventSample fires when the post-detection sample is complete and
	// carries the sampled packets.
	EventSample
	// EventFlowEnd fires when the hourly sweep finds a scan flow idle
	// longer than FlowEndGap.
	EventFlowEnd
	// EventSecondReport carries the per-second packet-level report.
	EventSecondReport
)

// SecondReport is the per-second packet-level report the flow-detection
// module emits ("total processed packets, number of TCP, ICMP, UDP,
// number of newly detected scan flows, and number of packets targeting
// specific ports").
type SecondReport struct {
	Second       time.Time
	Total        int
	TCP          int
	UDP          int
	ICMP         int
	Backscatter  int
	NewScanFlows int
	PortPackets  map[uint16]int
}

// Event is one detector output.
type Event struct {
	Kind EventKind
	// IP identifies the source for scanner/sample/flow-end events.
	IP packet.IP
	// FirstSeen is the start of the flow that led to detection.
	FirstSeen time.Time
	// DetectedAt is when the source crossed the threshold.
	DetectedAt time.Time
	// LastSeen is the final packet time (flow-end events).
	LastSeen time.Time
	// Sample carries the sampled packets (sample events).
	Sample []packet.Packet
	// Report carries the per-second report (report events).
	Report *SecondReport
}

// srcState is the per-source entry of the detector's hash table, mirroring
// the paper's GLib state {start ts, latest ts, packet count, IsScanner}.
type srcState struct {
	first     time.Time
	last      time.Time
	count     int
	isScanner bool

	detectedAt time.Time
	sampling   bool
	sample     []packet.Packet
}

// Stats aggregates detector lifetime counters.
type Stats struct {
	Processed      int64
	Backscatter    int64
	ScannersFound  int64
	SamplesEmitted int64
	FlowsEnded     int64
	ActiveSources  int
}

// Detector is the streaming flow detector. It is not safe for concurrent
// use; the pipeline feeds it from a single goroutine, like the paper's
// single Libtrace loop.
type Detector struct {
	cfg   Config
	emit  func(Event)
	state map[packet.IP]*srcState
	stats Stats

	curSecond time.Time
	report    SecondReport
}

// NewDetector creates a detector that delivers events to emit.
func NewDetector(cfg Config, emit func(Event)) *Detector {
	return &Detector{
		cfg:   cfg.withDefaults(),
		emit:  emit,
		state: make(map[packet.IP]*srcState, 4096),
	}
}

// Process consumes one telescope packet. Packets must arrive in
// non-decreasing timestamp order.
func (d *Detector) Process(p *packet.Packet) {
	d.tickSecond(p.Timestamp)
	d.stats.Processed++
	d.report.Total++
	switch p.Proto {
	case packet.TCP:
		d.report.TCP++
	case packet.UDP:
		d.report.UDP++
	case packet.ICMP:
		d.report.ICMP++
	}

	if p.IsBackscatter() {
		d.stats.Backscatter++
		d.report.Backscatter++
		return
	}
	if d.report.PortPackets == nil {
		d.report.PortPackets = make(map[uint16]int, 64)
	}
	d.report.PortPackets[p.DstPort]++

	st, ok := d.state[p.SrcIP]
	if !ok {
		st = &srcState{first: p.Timestamp, last: p.Timestamp, count: 1}
		d.state[p.SrcIP] = st
		return
	}

	gap := p.Timestamp.Sub(st.last)
	st.last = p.Timestamp

	if st.isScanner {
		if st.sampling {
			st.sample = append(st.sample, *p)
			if len(st.sample) >= d.cfg.SampleSize {
				st.sampling = false
				d.stats.SamplesEmitted++
				d.emit(Event{
					Kind:       EventSample,
					IP:         p.SrcIP,
					FirstSeen:  st.first,
					DetectedAt: st.detectedAt,
					Sample:     st.sample,
				})
				st.sample = nil
			}
		}
		// Post-sample packets only refresh liveness.
		return
	}

	if gap > d.cfg.ExpiryGap {
		// Counting flow expired: restart the walk.
		st.first = p.Timestamp
		st.count = 1
		return
	}
	st.count++
	if st.count >= d.cfg.DetectionThreshold &&
		p.Timestamp.Sub(st.first) >= d.cfg.MinDuration {
		st.isScanner = true
		st.detectedAt = p.Timestamp
		st.count = 0 // paper: reset to zero to start packet sampling
		st.sampling = true
		st.sample = make([]packet.Packet, 0, d.cfg.SampleSize)
		d.stats.ScannersFound++
		d.report.NewScanFlows++
		d.emit(Event{
			Kind:       EventScannerDetected,
			IP:         p.SrcIP,
			FirstSeen:  st.first,
			DetectedAt: st.detectedAt,
		})
	}
}

// tickSecond flushes per-second reports up to (not including) ts's second.
func (d *Detector) tickSecond(ts time.Time) {
	sec := ts.Truncate(time.Second)
	if d.curSecond.IsZero() {
		d.curSecond = sec
		d.report = SecondReport{Second: sec}
		return
	}
	for d.curSecond.Before(sec) {
		rep := d.report
		d.emit(Event{Kind: EventSecondReport, Report: &rep})
		d.curSecond = d.curSecond.Add(time.Second)
		d.report = SecondReport{Second: d.curSecond}
	}
}

// EndHour runs the hourly sweep the paper performs before processing a new
// hour: scan flows idle longer than FlowEndGap are declared ended (with an
// EventFlowEnd), and stale non-scanner state is dropped. Ended flows are
// swept in ascending source-IP order so the emitted event sequence is
// deterministic (and so a sharded detector can merge its per-shard sweeps
// into the same stream).
func (d *Detector) EndHour(now time.Time) {
	var ended []packet.IP
	for ip, st := range d.state {
		if now.Sub(st.last) >= d.cfg.FlowEndGap {
			ended = append(ended, ip)
		}
	}
	sort.Slice(ended, func(i, j int) bool { return ended[i] < ended[j] })
	for _, ip := range ended {
		st := d.state[ip]
		if st.isScanner {
			// A flow still mid-sample when it dies is emitted short: the
			// organizer decides whether enough packets were collected.
			if st.sampling && len(st.sample) > 0 {
				d.stats.SamplesEmitted++
				d.emit(Event{
					Kind:       EventSample,
					IP:         ip,
					FirstSeen:  st.first,
					DetectedAt: st.detectedAt,
					Sample:     st.sample,
				})
			}
			d.stats.FlowsEnded++
			d.emit(Event{
				Kind:       EventFlowEnd,
				IP:         ip,
				FirstSeen:  st.first,
				DetectedAt: st.detectedAt,
				LastSeen:   st.last,
			})
		}
		delete(d.state, ip)
	}
}

// AdvanceClock advances the per-second report clock to ts without
// consuming a packet, emitting reports for every second completed before
// ts. The sharded detector uses it to keep shard-local report clocks
// aligned with the global packet stream: a shard that saw no packets near
// the end of an hour still flushes the seconds the whole telescope has
// moved past.
func (d *Detector) AdvanceClock(ts time.Time) {
	d.tickSecond(ts)
}

// Flush emits the pending per-second report and any in-flight short
// samples, then ends every live scan flow. Call once at end of input.
func (d *Detector) Flush(now time.Time) {
	if !d.curSecond.IsZero() {
		rep := d.report
		d.emit(Event{Kind: EventSecondReport, Report: &rep})
	}
	d.EndHour(now.Add(24 * time.Hour))
}

// Stats returns lifetime counters.
func (d *Detector) Stats() Stats {
	s := d.stats
	s.ActiveSources = len(d.state)
	return s
}
