// Package trw implements eX-IoT's flow-detection and packet-sampling
// module: the backscatter filter, the Threshold-Random-Walk (TRW) scan
// detector specialized for darknet traffic, per-source sampling, flow
// expiry, and the per-second packet-level reports.
//
// On a network telescope every connection attempt is, by construction, a
// failed connection — the darkness never answers. The sequential
// hypothesis test of Jung et al. therefore degenerates into a likelihood
// ratio that climbs by a constant per observed packet, i.e. a packet-count
// threshold (the theoretic derivation is the authors' prior work, refs
// [54, 55] of the paper). The paper's operating point: a source is a
// scanner once it sends ≥100 packets with no inter-arrival gap above
// 300 s and a flow duration of at least 1 minute (the duration floor
// excludes misconfiguration bursts). After detection the next 200 packets
// are sampled in full for the classifier, then the flow is tracked only
// for liveness; it ends when an hour boundary finds it idle for >1 h.
package trw

import (
	"slices"
	"time"

	"exiot/internal/packet"
	"exiot/internal/telemetry"
)

// Telemetry handles for the arena flow table (see docs/OPERATIONS.md).
// The shard label is the shard index on the sharded path, "serial" on the
// single-detector path.
var (
	metFlowTableEntries = telemetry.Default().GaugeVec("exiot_flowtable_entries",
		"Live source-flow entries in a detector's arena flow table.", "shard")
	metFlowTableArena = telemetry.Default().GaugeVec("exiot_flowtable_arena_capacity",
		"Allocated entry slots in a detector's flow-table arena (slab length).", "shard")
	metFlowTableFree = telemetry.Default().GaugeVec("exiot_flowtable_free_entries",
		"Flow-table arena slots on the free list awaiting reuse.", "shard")
)

// Config holds the detector's operating thresholds. The zero value is
// replaced by the paper's operating point (see Default).
type Config struct {
	// DetectionThreshold is the TRW packet-count threshold (paper: 100).
	DetectionThreshold int
	// SampleSize is the number of packets sampled after detection
	// (paper: 200).
	SampleSize int
	// ExpiryGap is the maximum inter-arrival gap within a counting flow
	// (paper: 300 s).
	ExpiryGap time.Duration
	// MinDuration is the minimum flow duration before detection
	// (paper: 1 minute).
	MinDuration time.Duration
	// FlowEndGap is the idle period after which an hourly sweep declares
	// a scan flow ended (paper: 1 hour).
	FlowEndGap time.Duration
}

// Default returns the paper's operating point.
func Default() Config {
	return Config{
		DetectionThreshold: 100,
		SampleSize:         200,
		ExpiryGap:          300 * time.Second,
		MinDuration:        time.Minute,
		FlowEndGap:         time.Hour,
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.DetectionThreshold <= 0 {
		c.DetectionThreshold = d.DetectionThreshold
	}
	if c.SampleSize <= 0 {
		c.SampleSize = d.SampleSize
	}
	if c.ExpiryGap <= 0 {
		c.ExpiryGap = d.ExpiryGap
	}
	// A negative MinDuration disables the duration floor explicitly
	// (ablation studies); zero means "use the paper's default".
	if c.MinDuration == 0 {
		c.MinDuration = d.MinDuration
	} else if c.MinDuration < 0 {
		c.MinDuration = 0
	}
	if c.FlowEndGap <= 0 {
		c.FlowEndGap = d.FlowEndGap
	}
	return c
}

// EventKind discriminates detector events.
type EventKind int

// Detector event kinds.
const (
	// EventScannerDetected fires once when a source crosses the TRW
	// threshold.
	EventScannerDetected EventKind = iota + 1
	// EventSample fires when the post-detection sample is complete and
	// carries the sampled packets.
	EventSample
	// EventFlowEnd fires when the hourly sweep finds a scan flow idle
	// longer than FlowEndGap.
	EventFlowEnd
	// EventSecondReport carries the per-second packet-level report.
	EventSecondReport
)

// SecondReport is the per-second packet-level report the flow-detection
// module emits ("total processed packets, number of TCP, ICMP, UDP,
// number of newly detected scan flows, and number of packets targeting
// specific ports").
type SecondReport struct {
	Second       time.Time
	Total        int
	TCP          int
	UDP          int
	ICMP         int
	Backscatter  int
	NewScanFlows int
	PortPackets  map[uint16]int

	// Recycled-report form (sharded detectors only): the port tallies sit
	// at [pairOff, pairOff+pairLen) of the owning detector's portPairs
	// arena instead of in PortPackets. The coordinator folds them into
	// the merged map at the barrier; reports that escape downstream never
	// carry these.
	pairOff, pairLen int32
}

// portPair is one flat (port, packet count) tally in a recycling
// detector's per-hour arena.
type portPair struct {
	port uint16
	n    uint32
}

// Event is one detector output.
type Event struct {
	Kind EventKind
	// IP identifies the source for scanner/sample/flow-end events.
	IP packet.IP
	// FirstSeen is the start of the flow that led to detection.
	FirstSeen time.Time
	// DetectedAt is when the source crossed the threshold.
	DetectedAt time.Time
	// LastSeen is the final packet time (flow-end events).
	LastSeen time.Time
	// Sample carries the sampled packets (sample events).
	Sample []packet.Packet
	// Report carries the per-second report (report events).
	Report *SecondReport
}

// Stats aggregates detector lifetime counters.
type Stats struct {
	Processed      int64
	Backscatter    int64
	ScannersFound  int64
	SamplesEmitted int64
	FlowsEnded     int64
	ActiveSources  int
}

// nanosPerSecond is the per-second report clock granularity.
const nanosPerSecond = int64(time.Second)

// unixTime reconstructs a time.Time from detector-internal unix nanos.
// Telescope capture stamps are UTC throughout the pipeline (simnet builds
// UTC times, pcapio normalizes to UTC), so the round trip is exact.
func unixTime(n int64) time.Time { return time.Unix(0, n).UTC() }

// Detector is the streaming flow detector. It is not safe for concurrent
// use; the pipeline feeds it from a single goroutine, like the paper's
// single Libtrace loop.
//
// Per-source state lives in an arena-backed flowTable (see flowtable.go)
// and all internal clocks are int64 unix-nanos; time.Time values are
// materialized only on emitted events. The steady-state Process path is
// allocation-free: port tallies go through a flat counter array, sample
// buffers come from a pool, and flow lookups hit the open-addressing
// table (one probe, or zero for a run of same-source packets).
type Detector struct {
	cfg   Config
	emit  func(Event)
	tbl   flowTable
	stats Stats

	// Config thresholds in hot-path form.
	thresholdN  int32
	sampleN     int
	expiryGapN  int64
	minDurN     int64
	flowEndGapN int64

	// Per-second report clock and counters. The PortPackets map of the
	// emitted report is built from portCount/portTouched at flush time;
	// the per-packet tally is a single array increment.
	secInit     bool
	curSec      int64
	repTotal    int
	repTCP      int
	repUDP      int
	repICMP     int
	repBackscat int
	repNewScans int
	portCount   []uint32
	portTouched []uint16

	// recycleReports switches flushSecond to a reusable report struct
	// whose port tallies live as flat (port, count) pairs in the portPairs
	// arena instead of a freshly allocated map. Only the sharded detector
	// enables it: its collect hook copies the struct immediately and the
	// coordinator folds the pairs into the merged per-second maps at the
	// barrier (then truncates the arena), so nothing downstream ever sees
	// a recycled report and a whole hour of reports costs zero per-second
	// allocations. The serial path keeps heap-allocated reports and maps
	// because consumers retain them.
	recycleReports bool
	repScratch     SecondReport
	portPairs      []portPair

	// Same-source run cache: one table probe serves consecutive packets
	// of one source (scanners burst). Invalidated by every sweep.
	lastIP  packet.IP
	lastIdx int32

	// ended is the sweep's reusable scratch of expired arena indices.
	ended []int32

	// Cached flow-table gauge series (label: shard index or "serial").
	gaugeEntries, gaugeArena, gaugeFree *telemetry.Gauge
}

// NewDetector creates a detector that delivers events to emit.
func NewDetector(cfg Config, emit func(Event)) *Detector {
	return newDetector(cfg, "serial", emit)
}

// newDetector is NewDetector with an explicit flow-table gauge label (the
// sharded detector labels each shard's table by index).
func newDetector(cfg Config, label string, emit func(Event)) *Detector {
	cfg = cfg.withDefaults()
	// Epoch buckets at 1/8 of the flow-end gap keep boundary-epoch
	// rescans short without inflating the bucket index.
	epochLen := int64(cfg.FlowEndGap) / 8
	return &Detector{
		cfg:          cfg,
		emit:         emit,
		tbl:          newFlowTable(epochLen),
		thresholdN:   int32(cfg.DetectionThreshold),
		sampleN:      cfg.SampleSize,
		expiryGapN:   int64(cfg.ExpiryGap),
		minDurN:      int64(cfg.MinDuration),
		flowEndGapN:  int64(cfg.FlowEndGap),
		portCount:    make([]uint32, 65536),
		portTouched:  make([]uint16, 0, 256),
		lastIdx:      -1,
		gaugeEntries: metFlowTableEntries.With(label),
		gaugeArena:   metFlowTableArena.With(label),
		gaugeFree:    metFlowTableFree.With(label),
	}
}

// Process consumes one telescope packet. Packets must arrive in
// non-decreasing timestamp order.
func (d *Detector) Process(p *packet.Packet) {
	ts := p.Timestamp.UnixNano()
	d.tickSecond(ts)
	d.stats.Processed++
	d.repTotal++
	switch p.Proto {
	case packet.TCP:
		d.repTCP++
	case packet.UDP:
		d.repUDP++
	case packet.ICMP:
		d.repICMP++
	}

	if p.IsBackscatter() {
		d.stats.Backscatter++
		d.repBackscat++
		return
	}
	if d.portCount[p.DstPort] == 0 {
		d.portTouched = append(d.portTouched, p.DstPort)
	}
	d.portCount[p.DstPort]++

	var idx int32
	if d.lastIdx >= 0 && p.SrcIP == d.lastIP {
		idx = d.lastIdx
	} else {
		var isNew bool
		idx, isNew = d.tbl.getOrInsert(p.SrcIP, ts)
		d.lastIP, d.lastIdx = p.SrcIP, idx
		if isNew {
			return
		}
	}

	e := &d.tbl.entries[idx]
	gap := ts - e.last
	e.last = ts

	if e.scanner {
		if e.sampling {
			e.sample = append(e.sample, *p)
			if len(e.sample) >= d.sampleN {
				e.sampling = false
				d.stats.SamplesEmitted++
				sample := e.sample
				e.sample = nil
				d.emit(Event{
					Kind:       EventSample,
					IP:         p.SrcIP,
					FirstSeen:  unixTime(e.first),
					DetectedAt: unixTime(e.detected),
					Sample:     sample,
				})
			}
		}
		// Post-sample packets only refresh liveness.
		return
	}

	if gap > d.expiryGapN {
		// Counting flow expired: restart the walk.
		e.first = ts
		e.count = 1
		return
	}
	e.count++
	if e.count >= d.thresholdN && ts-e.first >= d.minDurN {
		e.scanner = true
		e.detected = ts
		e.count = 0 // paper: reset to zero to start packet sampling
		e.sampling = true
		e.sample = newSampleBuf(d.sampleN)
		d.stats.ScannersFound++
		d.repNewScans++
		d.emit(Event{
			Kind:       EventScannerDetected,
			IP:         p.SrcIP,
			FirstSeen:  unixTime(e.first),
			DetectedAt: unixTime(e.detected),
		})
	}
}

// tickSecond flushes per-second reports up to (not including) ts's second.
func (d *Detector) tickSecond(ts int64) {
	sec := ts - ts%nanosPerSecond
	if ts < 0 && ts%nanosPerSecond != 0 {
		sec -= nanosPerSecond
	}
	if !d.secInit {
		d.secInit = true
		d.curSec = sec
		return
	}
	for d.curSec < sec {
		d.flushSecond()
	}
}

// flushSecond emits the report for the current second, moves the clock to
// the next second, and resets the counters.
func (d *Detector) flushSecond() {
	var rep *SecondReport
	if d.recycleReports {
		d.repScratch = SecondReport{
			Second:       unixTime(d.curSec),
			Total:        d.repTotal,
			TCP:          d.repTCP,
			UDP:          d.repUDP,
			ICMP:         d.repICMP,
			Backscatter:  d.repBackscat,
			NewScanFlows: d.repNewScans,
		}
		rep = &d.repScratch
		if len(d.portTouched) > 0 {
			rep.pairOff = int32(len(d.portPairs))
			rep.pairLen = int32(len(d.portTouched))
			for _, port := range d.portTouched {
				d.portPairs = append(d.portPairs, portPair{port: port, n: d.portCount[port]})
				d.portCount[port] = 0
			}
			d.portTouched = d.portTouched[:0]
		}
	} else {
		rep = &SecondReport{
			Second:       unixTime(d.curSec),
			Total:        d.repTotal,
			TCP:          d.repTCP,
			UDP:          d.repUDP,
			ICMP:         d.repICMP,
			Backscatter:  d.repBackscat,
			NewScanFlows: d.repNewScans,
		}
		if len(d.portTouched) > 0 {
			m := make(map[uint16]int, len(d.portTouched))
			for _, port := range d.portTouched {
				m[port] = int(d.portCount[port])
				d.portCount[port] = 0
			}
			rep.PortPackets = m
			d.portTouched = d.portTouched[:0]
		}
	}
	d.repTotal, d.repTCP, d.repUDP, d.repICMP = 0, 0, 0, 0
	d.repBackscat, d.repNewScans = 0, 0
	d.curSec += nanosPerSecond
	d.emit(Event{Kind: EventSecondReport, Report: rep})
}

// EndHour runs the hourly sweep the paper performs before processing a new
// hour: scan flows idle longer than FlowEndGap are declared ended (with an
// EventFlowEnd), and stale non-scanner state is dropped. Ended flows are
// swept in ascending source-IP order so the emitted event sequence is
// deterministic (and so a sharded detector can merge its per-shard sweeps
// into the same stream). The sweep is epoch-incremental: only buckets old
// enough to hold expirable flows are visited, never the whole table.
func (d *Detector) EndHour(now time.Time) {
	// Flush the in-flight second first so every hour's report stream is
	// self-contained: with hour-aligned input the pending second is always
	// complete at the barrier, and emitting it here (instead of carrying
	// it into the next hour) keeps the per-hour event set identical no
	// matter how the telescope is partitioned across nodes.
	if d.secInit {
		d.flushSecond()
		d.secInit = false
	}
	cutoff := now.UnixNano() - d.flowEndGapN
	d.ended = d.tbl.sweep(cutoff, d.ended[:0])
	d.lastIdx = -1
	entries := d.tbl.entries
	slices.SortFunc(d.ended, func(a, b int32) int {
		ipa, ipb := entries[a].ip, entries[b].ip
		switch {
		case ipa < ipb:
			return -1
		case ipa > ipb:
			return 1
		}
		return 0
	})
	for _, idx := range d.ended {
		e := &d.tbl.entries[idx]
		if e.scanner {
			// A flow still mid-sample when it dies is emitted short: the
			// organizer decides whether enough packets were collected.
			if e.sampling && len(e.sample) > 0 {
				d.stats.SamplesEmitted++
				sample := e.sample
				e.sample = nil
				d.emit(Event{
					Kind:       EventSample,
					IP:         e.ip,
					FirstSeen:  unixTime(e.first),
					DetectedAt: unixTime(e.detected),
					Sample:     sample,
				})
			}
			if e.sample != nil {
				// Sampling started but no packet ever landed: the buffer
				// was never emitted, so it can go straight back.
				RecycleSample(e.sample)
				e.sample = nil
			}
			d.stats.FlowsEnded++
			d.emit(Event{
				Kind:       EventFlowEnd,
				IP:         e.ip,
				FirstSeen:  unixTime(e.first),
				DetectedAt: unixTime(e.detected),
				LastSeen:   unixTime(e.last),
			})
		}
		d.tbl.release(idx)
	}
	d.updateGauges()
}

// updateGauges refreshes the flow-table occupancy/arena gauges. Called at
// sweep boundaries (hourly), never on the packet path.
func (d *Detector) updateGauges() {
	d.gaugeEntries.Set(float64(d.tbl.len()))
	d.gaugeArena.Set(float64(d.tbl.arenaCap()))
	d.gaugeFree.Set(float64(d.tbl.freeCount()))
}

// ActiveSources returns the number of tracked source flows.
func (d *Detector) ActiveSources() int { return d.tbl.len() }

// AdvanceClock advances the per-second report clock to ts without
// consuming a packet, emitting reports for every second completed before
// ts. The sharded detector uses it to keep shard-local report clocks
// aligned with the global packet stream: a shard that saw no packets near
// the end of an hour still flushes the seconds the whole telescope has
// moved past.
func (d *Detector) AdvanceClock(ts time.Time) {
	d.tickSecond(ts.UnixNano())
}

// Flush emits the pending per-second report and any in-flight short
// samples, then ends every live scan flow. Call once at end of input.
func (d *Detector) Flush(now time.Time) {
	d.EndHour(now.Add(24 * time.Hour))
}

// Stats returns lifetime counters.
func (d *Detector) Stats() Stats {
	s := d.stats
	s.ActiveSources = d.tbl.len()
	return s
}
