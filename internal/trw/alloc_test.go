package trw

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"exiot/internal/packet"
)

// TestProcessSteadyStateZeroAlloc pins the detector hot loop at zero
// allocations per packet: within a second, with warm sources (a counting
// flow held under the duration floor, a post-sample scanner on the
// liveness path, and backscatter), Process must not touch the heap. This
// is the property the arena flow table exists to provide — any regression
// that reintroduces per-packet map inserts, time.Time boxing, or report
// churn fails here.
func TestProcessSteadyStateZeroAlloc(t *testing.T) {
	cfg := Config{DetectionThreshold: 4, SampleSize: 2,
		MinDuration: time.Minute} // floor blocks re-detection of the counter
	d := NewDetector(cfg, func(Event) {})

	ts := time.Date(2021, 9, 1, 10, 0, 0, 0, time.UTC)
	scanner := packet.MustParseIP("203.0.113.5")
	counter := packet.MustParseIP("203.0.113.6")

	// Warm up: drive `scanner` through detection and its full sample
	// (MinDuration floor disabled by spreading the walk over 2 minutes),
	// then move both sources into one quiet second.
	warmCfgTs := ts.Add(-10 * time.Minute)
	for i := 0; i < 8; i++ {
		p := synPacket(scanner, warmCfgTs.Add(time.Duration(i)*20*time.Second), 23)
		d.Process(&p)
	}
	if s := d.Stats(); s.ScannersFound != 1 || s.SamplesEmitted != 1 {
		t.Fatalf("warmup should fully detect and sample the scanner: %+v", s)
	}
	// Touch the counting source and both ports once inside the target
	// second so portTouched is populated and no flow restarts remain.
	pc := synPacket(counter, ts, 23)
	d.Process(&pc)
	ps := synPacket(scanner, ts, 2323)
	d.Process(&ps)

	// Steady state: same second, warm ports, liveness + counting +
	// backscatter paths. The counter stays below detection because the
	// zero-duration walk never satisfies the one-minute floor.
	pkts := []packet.Packet{
		synPacket(scanner, ts, 23),
		synPacket(counter, ts, 23),
		synPacket(scanner, ts, 2323),
		synPacket(counter, ts, 2323),
	}
	back := synPacket(scanner, ts, 23)
	back.Flags = packet.FlagSYN | packet.FlagACK

	allocs := testing.AllocsPerRun(200, func() {
		for i := range pkts {
			d.Process(&pkts[i])
		}
		d.Process(&back)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Process allocated %.2f allocs/run, want 0", allocs)
	}
}

// TestSamplePoolRoundTrip hammers the sample-buffer pool from many
// goroutines (run under -race in CI): buffers come back empty with their
// capacity intact, and recycling foreign or zero-cap slices is harmless.
func TestSamplePoolRoundTrip(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := newSampleBuf(64)
				if len(b) != 0 || cap(b) < 64 {
					t.Errorf("goroutine %d: newSampleBuf(64) len=%d cap=%d", g, len(b), cap(b))
					return
				}
				b = append(b, packet.Packet{SrcIP: packet.IP(g), Seq: uint32(i)})
				RecycleSample(b)
			}
			RecycleSample(nil)                      // no-op
			RecycleSample([]packet.Packet{})        // zero cap: ignored
			RecycleSample(make([]packet.Packet, 3)) // foreign buffer: accepted
		}(g)
	}
	wg.Wait()
}

// TestShardBatchPoolRoundTrip does the same for the sharded router's
// batch slices, checking recycled batches come back length-zero and that
// putShardBatch drops packet pointers (so pooled batches cannot pin an
// hour's packet slab).
func TestShardBatchPoolRoundTrip(t *testing.T) {
	// Single-threaded first: putShardBatch must drop packet pointers.
	// (Reading a batch after putting it back is a use-after-free, so this
	// check cannot live inside the concurrent section.)
	pkt := packet.Packet{SrcIP: 1}
	b := append(newShardBatch(), shardPkt{p: &pkt})
	view := b[:1]
	putShardBatch(b)
	if view[0].p != nil {
		t.Fatal("putShardBatch left packet pointer live in pooled batch")
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pkt := packet.Packet{SrcIP: packet.IP(g)}
			for i := 0; i < 2000; i++ {
				b := newShardBatch()
				if len(b) != 0 {
					t.Errorf("goroutine %d: pooled batch len=%d, want 0", g, len(b))
					return
				}
				b = append(b, shardPkt{p: &pkt})
				putShardBatch(b)
			}
		}(g)
	}
	wg.Wait()
}

// allocParityPackets synthesizes one contiguous stretch of telescope
// traffic: hundreds of sources SYN-scanning distinct destinations across
// many seconds, enough for plenty of them to cross the detection
// threshold and for every second to carry port activity.
func allocParityPackets() []packet.Packet {
	base := time.Date(2021, 4, 8, 13, 0, 0, 0, time.UTC)
	r := rand.New(rand.NewSource(7))
	const seconds, sources = 120, 300
	pkts := make([]packet.Packet, 0, seconds*sources)
	for s := 0; s < seconds; s++ {
		ts := base.Add(time.Duration(s) * time.Second)
		for i := 0; i < sources; i++ {
			p := packet.Packet{
				Timestamp:   ts.Add(time.Duration(i) * time.Millisecond),
				TotalLength: 40,
				TTL:         64,
				Proto:       packet.TCP,
				SrcIP:       packet.IP(0x0A000000 + uint32(i)),
				DstIP:       packet.IP(0x2C000000 + r.Uint32()%(1<<16)),
				SrcPort:     uint16(40000 + i),
				DstPort:     [3]uint16{23, 2323, 80}[i%3],
				Seq:         uint32(s*sources + i),
				DataOffset:  5,
				Flags:       packet.FlagSYN,
				Window:      1024,
			}
			p.Normalize()
			pkts = append(pkts, p)
		}
	}
	return pkts
}

// TestShardedAllocParity pins the sharded-ingest allocation fix: an hour
// of detection through the 4-shard coordinator must stay within 2x the
// serial detector's allocations. The recycled report structs, the flat
// port-tally arenas, and the pooled routing batches are what keep the
// multiplier down — a regression in any of them trips this.
func TestShardedAllocParity(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow")
	}
	pkts := allocParityPackets()
	hourEnd := pkts[len(pkts)-1].Timestamp.Truncate(time.Hour).Add(time.Hour)

	serial := testing.AllocsPerRun(3, func() {
		det := NewDetector(Default(), func(Event) {})
		for i := range pkts {
			det.Process(&pkts[i])
		}
		det.EndHour(hourEnd)
		det.Flush(hourEnd)
	})
	sharded := testing.AllocsPerRun(3, func() {
		det := NewShardedDetector(Default(), 4, func(Event) {})
		det.ProcessBatch(pkts)
		det.EndHour(hourEnd)
		det.Flush(hourEnd)
		det.Close()
	})

	t.Logf("allocs/run: serial %.0f, sharded(4) %.0f (%.2fx)", serial, sharded, sharded/serial)
	if serial == 0 {
		t.Fatal("serial run measured zero allocations; harness broken")
	}
	if sharded > 2*serial {
		t.Errorf("sharded detection allocates %.0f/run, more than 2x the serial %.0f/run", sharded, serial)
	}
}
