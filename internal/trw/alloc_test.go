package trw

import (
	"sync"
	"testing"
	"time"

	"exiot/internal/packet"
)

// TestProcessSteadyStateZeroAlloc pins the detector hot loop at zero
// allocations per packet: within a second, with warm sources (a counting
// flow held under the duration floor, a post-sample scanner on the
// liveness path, and backscatter), Process must not touch the heap. This
// is the property the arena flow table exists to provide — any regression
// that reintroduces per-packet map inserts, time.Time boxing, or report
// churn fails here.
func TestProcessSteadyStateZeroAlloc(t *testing.T) {
	cfg := Config{DetectionThreshold: 4, SampleSize: 2,
		MinDuration: time.Minute} // floor blocks re-detection of the counter
	d := NewDetector(cfg, func(Event) {})

	ts := time.Date(2021, 9, 1, 10, 0, 0, 0, time.UTC)
	scanner := packet.MustParseIP("203.0.113.5")
	counter := packet.MustParseIP("203.0.113.6")

	// Warm up: drive `scanner` through detection and its full sample
	// (MinDuration floor disabled by spreading the walk over 2 minutes),
	// then move both sources into one quiet second.
	warmCfgTs := ts.Add(-10 * time.Minute)
	for i := 0; i < 8; i++ {
		p := synPacket(scanner, warmCfgTs.Add(time.Duration(i)*20*time.Second), 23)
		d.Process(&p)
	}
	if s := d.Stats(); s.ScannersFound != 1 || s.SamplesEmitted != 1 {
		t.Fatalf("warmup should fully detect and sample the scanner: %+v", s)
	}
	// Touch the counting source and both ports once inside the target
	// second so portTouched is populated and no flow restarts remain.
	pc := synPacket(counter, ts, 23)
	d.Process(&pc)
	ps := synPacket(scanner, ts, 2323)
	d.Process(&ps)

	// Steady state: same second, warm ports, liveness + counting +
	// backscatter paths. The counter stays below detection because the
	// zero-duration walk never satisfies the one-minute floor.
	pkts := []packet.Packet{
		synPacket(scanner, ts, 23),
		synPacket(counter, ts, 23),
		synPacket(scanner, ts, 2323),
		synPacket(counter, ts, 2323),
	}
	back := synPacket(scanner, ts, 23)
	back.Flags = packet.FlagSYN | packet.FlagACK

	allocs := testing.AllocsPerRun(200, func() {
		for i := range pkts {
			d.Process(&pkts[i])
		}
		d.Process(&back)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Process allocated %.2f allocs/run, want 0", allocs)
	}
}

// TestSamplePoolRoundTrip hammers the sample-buffer pool from many
// goroutines (run under -race in CI): buffers come back empty with their
// capacity intact, and recycling foreign or zero-cap slices is harmless.
func TestSamplePoolRoundTrip(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := newSampleBuf(64)
				if len(b) != 0 || cap(b) < 64 {
					t.Errorf("goroutine %d: newSampleBuf(64) len=%d cap=%d", g, len(b), cap(b))
					return
				}
				b = append(b, packet.Packet{SrcIP: packet.IP(g), Seq: uint32(i)})
				RecycleSample(b)
			}
			RecycleSample(nil)                      // no-op
			RecycleSample([]packet.Packet{})        // zero cap: ignored
			RecycleSample(make([]packet.Packet, 3)) // foreign buffer: accepted
		}(g)
	}
	wg.Wait()
}

// TestShardBatchPoolRoundTrip does the same for the sharded router's
// batch slices, checking recycled batches come back length-zero and that
// putShardBatch drops packet pointers (so pooled batches cannot pin an
// hour's packet slab).
func TestShardBatchPoolRoundTrip(t *testing.T) {
	// Single-threaded first: putShardBatch must drop packet pointers.
	// (Reading a batch after putting it back is a use-after-free, so this
	// check cannot live inside the concurrent section.)
	pkt := packet.Packet{SrcIP: 1}
	b := append(newShardBatch(), shardPkt{p: &pkt})
	view := b[:1]
	putShardBatch(b)
	if view[0].p != nil {
		t.Fatal("putShardBatch left packet pointer live in pooled batch")
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pkt := packet.Packet{SrcIP: packet.IP(g)}
			for i := 0; i < 2000; i++ {
				b := newShardBatch()
				if len(b) != 0 {
					t.Errorf("goroutine %d: pooled batch len=%d, want 0", g, len(b))
					return
				}
				b = append(b, shardPkt{p: &pkt})
				putShardBatch(b)
			}
		}(g)
	}
	wg.Wait()
}
