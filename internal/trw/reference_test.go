package trw

// The map-based detector this package shipped before the arena flow
// table, kept verbatim as a test-only reference implementation. The
// property test below replays random packet streams through both and
// demands identical event streams and stats — the proof that the arena
// table, int64 clocks, epoch sweeps, and pooled sample buffers changed
// the memory layout and nothing else.

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"exiot/internal/packet"
)

// refSrcState is the old per-source entry (heap pointer + time.Time).
type refSrcState struct {
	first     time.Time
	last      time.Time
	count     int
	isScanner bool

	detectedAt time.Time
	sampling   bool
	sample     []packet.Packet
}

// refDetector is the pre-arena Detector, logic copied unchanged.
type refDetector struct {
	cfg   Config
	emit  func(Event)
	state map[packet.IP]*refSrcState
	stats Stats

	curSecond time.Time
	report    SecondReport
}

func newRefDetector(cfg Config, emit func(Event)) *refDetector {
	return &refDetector{
		cfg:   cfg.withDefaults(),
		emit:  emit,
		state: make(map[packet.IP]*refSrcState, 4096),
	}
}

func (d *refDetector) Process(p *packet.Packet) {
	d.tickSecond(p.Timestamp)
	d.stats.Processed++
	d.report.Total++
	switch p.Proto {
	case packet.TCP:
		d.report.TCP++
	case packet.UDP:
		d.report.UDP++
	case packet.ICMP:
		d.report.ICMP++
	}

	if p.IsBackscatter() {
		d.stats.Backscatter++
		d.report.Backscatter++
		return
	}
	if d.report.PortPackets == nil {
		d.report.PortPackets = make(map[uint16]int, 64)
	}
	d.report.PortPackets[p.DstPort]++

	st, ok := d.state[p.SrcIP]
	if !ok {
		st = &refSrcState{first: p.Timestamp, last: p.Timestamp, count: 1}
		d.state[p.SrcIP] = st
		return
	}

	gap := p.Timestamp.Sub(st.last)
	st.last = p.Timestamp

	if st.isScanner {
		if st.sampling {
			st.sample = append(st.sample, *p)
			if len(st.sample) >= d.cfg.SampleSize {
				st.sampling = false
				d.stats.SamplesEmitted++
				d.emit(Event{
					Kind:       EventSample,
					IP:         p.SrcIP,
					FirstSeen:  st.first,
					DetectedAt: st.detectedAt,
					Sample:     st.sample,
				})
				st.sample = nil
			}
		}
		return
	}

	if gap > d.cfg.ExpiryGap {
		st.first = p.Timestamp
		st.count = 1
		return
	}
	st.count++
	if st.count >= d.cfg.DetectionThreshold &&
		p.Timestamp.Sub(st.first) >= d.cfg.MinDuration {
		st.isScanner = true
		st.detectedAt = p.Timestamp
		st.count = 0
		st.sampling = true
		st.sample = make([]packet.Packet, 0, d.cfg.SampleSize)
		d.stats.ScannersFound++
		d.report.NewScanFlows++
		d.emit(Event{
			Kind:       EventScannerDetected,
			IP:         p.SrcIP,
			FirstSeen:  st.first,
			DetectedAt: st.detectedAt,
		})
	}
}

func (d *refDetector) tickSecond(ts time.Time) {
	sec := ts.Truncate(time.Second)
	if d.curSecond.IsZero() {
		d.curSecond = sec
		d.report = SecondReport{Second: sec}
		return
	}
	for d.curSecond.Before(sec) {
		rep := d.report
		d.emit(Event{Kind: EventSecondReport, Report: &rep})
		d.curSecond = d.curSecond.Add(time.Second)
		d.report = SecondReport{Second: d.curSecond}
	}
}

func (d *refDetector) EndHour(now time.Time) {
	// Mirror the arena detector: the in-flight second flushes at the hour
	// barrier so each hour's report stream is self-contained.
	if !d.curSecond.IsZero() {
		rep := d.report
		d.emit(Event{Kind: EventSecondReport, Report: &rep})
		d.curSecond = time.Time{}
		d.report = SecondReport{}
	}
	var ended []packet.IP
	for ip, st := range d.state {
		if now.Sub(st.last) >= d.cfg.FlowEndGap {
			ended = append(ended, ip)
		}
	}
	sort.Slice(ended, func(i, j int) bool { return ended[i] < ended[j] })
	for _, ip := range ended {
		st := d.state[ip]
		if st.isScanner {
			if st.sampling && len(st.sample) > 0 {
				d.stats.SamplesEmitted++
				d.emit(Event{
					Kind:       EventSample,
					IP:         ip,
					FirstSeen:  st.first,
					DetectedAt: st.detectedAt,
					Sample:     st.sample,
				})
			}
			d.stats.FlowsEnded++
			d.emit(Event{
				Kind:       EventFlowEnd,
				IP:         ip,
				FirstSeen:  st.first,
				DetectedAt: st.detectedAt,
				LastSeen:   st.last,
			})
		}
		delete(d.state, ip)
	}
}

func (d *refDetector) AdvanceClock(ts time.Time) { d.tickSecond(ts) }

func (d *refDetector) Flush(now time.Time) {
	d.EndHour(now.Add(24 * time.Hour))
}

func (d *refDetector) Stats() Stats {
	s := d.stats
	s.ActiveSources = len(d.state)
	return s
}

// --- equivalence harness ---

// capturedEvent is an Event normalized for comparison: times flattened to
// unix nanos (the arena detector reconstructs UTC time.Time values whose
// instants, not struct internals, must match) and samples deep-copied at
// emit time (both detectors recycle or reuse buffers afterwards).
type capturedEvent struct {
	kind                  EventKind
	ip                    packet.IP
	first, detected, last int64
	sample                []packet.Packet
	report                SecondReport
}

func capture(dst *[]capturedEvent) func(Event) {
	return func(e Event) {
		ce := capturedEvent{kind: e.Kind, ip: e.IP}
		if e.Kind == EventSecondReport {
			ce.report = *e.Report
			if e.Report.PortPackets != nil {
				ce.report.PortPackets = make(map[uint16]int, len(e.Report.PortPackets))
				for k, v := range e.Report.PortPackets {
					ce.report.PortPackets[k] = v
				}
			}
		} else {
			ce.first = e.FirstSeen.UnixNano()
			ce.detected = e.DetectedAt.UnixNano()
			ce.last = e.LastSeen.UnixNano()
			if e.Sample != nil {
				ce.sample = append([]packet.Packet(nil), e.Sample...)
			}
		}
		*dst = append(*dst, ce)
	}
}

func diffCaptured(t *testing.T, seed int64, got, want []capturedEvent) {
	t.Helper()
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		g, w := got[i], want[i]
		if g.kind != w.kind || g.ip != w.ip || g.first != w.first ||
			g.detected != w.detected || g.last != w.last {
			t.Fatalf("seed %d: event %d differs:\n got %+v\nwant %+v", seed, i, g, w)
		}
		if len(g.sample) != len(w.sample) {
			t.Fatalf("seed %d: event %d sample len %d, want %d", seed, i, len(g.sample), len(w.sample))
		}
		for j := range g.sample {
			if g.sample[j] != w.sample[j] {
				t.Fatalf("seed %d: event %d sample packet %d differs", seed, i, j)
			}
		}
		if g.kind == EventSecondReport {
			if !g.report.Second.Equal(w.report.Second) || g.report.Total != w.report.Total ||
				g.report.TCP != w.report.TCP || g.report.UDP != w.report.UDP ||
				g.report.ICMP != w.report.ICMP || g.report.Backscatter != w.report.Backscatter ||
				g.report.NewScanFlows != w.report.NewScanFlows {
				t.Fatalf("seed %d: event %d report differs:\n got %+v\nwant %+v", seed, i, g.report, w.report)
			}
			if len(g.report.PortPackets) != len(w.report.PortPackets) {
				t.Fatalf("seed %d: event %d PortPackets size %d, want %d (nil-ness must match too: %v vs %v)",
					seed, i, len(g.report.PortPackets), len(w.report.PortPackets),
					g.report.PortPackets == nil, w.report.PortPackets == nil)
			}
			if (g.report.PortPackets == nil) != (w.report.PortPackets == nil) {
				t.Fatalf("seed %d: event %d PortPackets nil-ness differs", seed, i)
			}
			for port, cnt := range w.report.PortPackets {
				if g.report.PortPackets[port] != cnt {
					t.Fatalf("seed %d: event %d port %d = %d, want %d", seed, i,
						port, g.report.PortPackets[port], cnt)
				}
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("seed %d: %d events, want %d (first %d identical)", seed, len(got), len(want), n)
	}
}

// TestFlowTableMatchesReference replays random packet streams — random
// source pools, inter-arrival gaps straddling the expiry gap, second and
// hour boundaries, backscatter, mid-sample flow deaths, walk restarts —
// through the arena detector and the reference map detector, demanding
// identical event streams and stats.
func TestFlowTableMatchesReference(t *testing.T) {
	cfgs := []Config{
		{}, // paper operating point
		{DetectionThreshold: 5, SampleSize: 8, ExpiryGap: 40 * time.Second,
			MinDuration: 3 * time.Second, FlowEndGap: 10 * time.Minute},
		{DetectionThreshold: 3, SampleSize: 4, ExpiryGap: 10 * time.Second,
			MinDuration: -1, FlowEndGap: 2 * time.Minute},
	}
	for ci, cfg := range cfgs {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed + int64(ci)*1000))
			var gotEvents, wantEvents []capturedEvent
			got := NewDetector(cfg, capture(&gotEvents))
			want := newRefDetector(cfg, capture(&wantEvents))

			// A pool of sources; a few are hot (scanner-like rates).
			srcs := make([]packet.IP, 40)
			for i := range srcs {
				srcs[i] = packet.IP(rng.Uint32())
			}
			ts := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(rng.Intn(3600)) * time.Second)
			hourMark := ts.Truncate(time.Hour).Add(time.Hour)

			for i := 0; i < 4000; i++ {
				src := srcs[rng.Intn(len(srcs))]
				if rng.Intn(3) == 0 {
					src = srcs[rng.Intn(4)] // hot subset
				}
				p := packet.Packet{
					Timestamp: ts,
					Proto:     packet.TCP,
					SrcIP:     src,
					DstIP:     packet.MakeIP(10, 0, byte(rng.Intn(256)), byte(rng.Intn(256))),
					SrcPort:   uint16(1024 + rng.Intn(60000)),
					DstPort:   [...]uint16{23, 2323, 80, 8080, 5555}[rng.Intn(5)],
					Flags:     packet.FlagSYN,
					TTL:       64,
				}
				switch rng.Intn(12) {
				case 0: // backscatter
					p.Flags = packet.FlagSYN | packet.FlagACK
				case 1: // UDP
					p.Proto = packet.UDP
					p.Flags = 0
				case 2: // ICMP echo request (not backscatter)
					p.Proto = packet.ICMP
					p.ICMPType = packet.ICMPEchoRequest
					p.SrcPort, p.DstPort = 0, 0
				}
				p.Normalize()
				p.Timestamp = ts // Normalize leaves it, but be explicit
				got.Process(&p)
				want.Process(&p)

				// Advance time: mostly sub-second, sometimes multi-second
				// (past the small-config expiry gaps), rarely a long idle
				// stretch that crosses hour boundaries and flow-end sweeps.
				switch j := rng.Intn(200); {
				case j == 0:
					ts = ts.Add(20 * time.Minute)
				case j < 12:
					ts = ts.Add(time.Duration(rng.Int63n(int64(90 * time.Second))))
				default:
					ts = ts.Add(time.Duration(rng.Int63n(int64(800 * time.Millisecond))))
				}
				for !ts.Before(hourMark) {
					got.EndHour(hourMark)
					want.EndHour(hourMark)
					hourMark = hourMark.Add(time.Hour)
				}
			}
			got.Flush(ts)
			want.Flush(ts)

			diffCaptured(t, seed, gotEvents, wantEvents)
			if gs, ws := got.Stats(), want.Stats(); gs != ws {
				t.Fatalf("cfg %d seed %d: stats %+v, want %+v", ci, seed, gs, ws)
			}
		}
	}
}

// TestFlowTableReferenceRestartResume pins the walk-restart edge exactly:
// a source that pauses past ExpiryGap must restart its walk in both
// implementations, and a detector reused across a Flush must behave like
// a fresh reference.
func TestFlowTableReferenceRestartResume(t *testing.T) {
	cfg := Config{DetectionThreshold: 4, SampleSize: 3, ExpiryGap: 30 * time.Second,
		MinDuration: -1, FlowEndGap: 5 * time.Minute}
	var gotEvents, wantEvents []capturedEvent
	got := NewDetector(cfg, capture(&gotEvents))
	want := newRefDetector(cfg, capture(&wantEvents))

	src := packet.MustParseIP("198.18.0.7")
	ts := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	feed := func(n int, gap time.Duration) {
		for i := 0; i < n; i++ {
			p := synPacket(src, ts, 23)
			got.Process(&p)
			q := synPacket(src, ts, 23)
			want.Process(&q)
			ts = ts.Add(gap)
		}
	}
	feed(3, time.Second)           // below threshold
	ts = ts.Add(2 * time.Minute)   // > ExpiryGap: restart
	feed(4, time.Second)           // detect on restart, sample 3
	feed(2, time.Second)           // post-sample liveness
	got.EndHour(ts.Add(time.Hour)) // idle > FlowEndGap: end the flow
	want.EndHour(ts.Add(time.Hour))
	feed(5, time.Second) // the source returns: fresh walk, re-detect
	got.Flush(ts)
	want.Flush(ts)

	diffCaptured(t, -1, gotEvents, wantEvents)
	if gs, ws := got.Stats(), want.Stats(); gs != ws {
		t.Fatalf("stats %+v, want %+v", gs, ws)
	}
	if gs := got.Stats(); gs.ScannersFound != 2 || gs.FlowsEnded != 2 {
		t.Fatalf("scenario should re-detect after flow end: %+v", gs)
	}
}
