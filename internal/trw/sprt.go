package trw

import (
	"fmt"
	"math"
)

// This file implements the sequential probability ratio test (SPRT)
// underlying Threshold Random Walk scan detection (Jung, Paxson, Berger,
// Balakrishnan — Oakland 2004), and its specialization to darknet
// traffic, where every connection attempt fails by construction. On a
// telescope the likelihood ratio climbs by a constant per packet, so the
// SPRT degenerates into a packet-count threshold — the theoretic result
// of the authors' prior work (refs [54, 55] of the paper) that justifies
// the Detector's simple counter.

// SPRTParams are the test's operating parameters.
type SPRTParams struct {
	// Theta0 is P(connection fails | benign host).
	Theta0 float64
	// Theta1 is P(connection fails | scanner).
	Theta1 float64
	// Alpha is the acceptable false-positive rate.
	Alpha float64
	// Beta is the acceptable false-negative rate.
	Beta float64
}

// DefaultSPRTParams returns Jung et al.'s canonical operating point.
func DefaultSPRTParams() SPRTParams {
	return SPRTParams{Theta0: 0.2, Theta1: 0.8, Alpha: 1e-5, Beta: 0.01}
}

// Validate checks parameter sanity.
func (p SPRTParams) Validate() error {
	if p.Theta0 <= 0 || p.Theta0 >= 1 || p.Theta1 <= 0 || p.Theta1 >= 1 {
		return fmt.Errorf("trw: theta out of (0,1): θ0=%v θ1=%v", p.Theta0, p.Theta1)
	}
	if p.Theta1 <= p.Theta0 {
		return fmt.Errorf("trw: need θ1 > θ0, got θ0=%v θ1=%v", p.Theta0, p.Theta1)
	}
	if p.Alpha <= 0 || p.Alpha >= 1 || p.Beta <= 0 || p.Beta >= 1 {
		return fmt.Errorf("trw: error rates out of (0,1): α=%v β=%v", p.Alpha, p.Beta)
	}
	return nil
}

// upperLog returns ln η1 = ln((1−β)/α), the scanner decision boundary.
func (p SPRTParams) upperLog() float64 {
	return math.Log((1 - p.Beta) / p.Alpha)
}

// lowerLog returns ln η0 = ln(β/(1−α)), the benign decision boundary.
func (p SPRTParams) lowerLog() float64 {
	return math.Log(p.Beta / (1 - p.Alpha))
}

// failStep returns the log-likelihood increment of one failed connection.
func (p SPRTParams) failStep() float64 {
	return math.Log(p.Theta1 / p.Theta0)
}

// successStep returns the (negative) increment of one successful
// connection.
func (p SPRTParams) successStep() float64 {
	return math.Log((1 - p.Theta1) / (1 - p.Theta0))
}

// Verdict is the SPRT's state for one source.
type Verdict int

// SPRT outcomes.
const (
	// VerdictPending means neither boundary has been crossed.
	VerdictPending Verdict = iota
	// VerdictScanner means the walk crossed the upper boundary.
	VerdictScanner
	// VerdictBenign means the walk crossed the lower boundary.
	VerdictBenign
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictScanner:
		return "scanner"
	case VerdictBenign:
		return "benign"
	default:
		return "pending"
	}
}

// SPRT is one source's sequential test state.
type SPRT struct {
	params    SPRTParams
	logLambda float64
	verdict   Verdict
	observed  int
}

// NewSPRT starts a test with the given parameters.
func NewSPRT(params SPRTParams) (*SPRT, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &SPRT{params: params}, nil
}

// ObserveFailure records one failed connection attempt (on a darknet,
// every packet) and returns the updated verdict.
func (s *SPRT) ObserveFailure() Verdict {
	return s.observe(s.params.failStep())
}

// ObserveSuccess records one successful connection attempt and returns
// the updated verdict.
func (s *SPRT) ObserveSuccess() Verdict {
	return s.observe(s.params.successStep())
}

func (s *SPRT) observe(step float64) Verdict {
	if s.verdict != VerdictPending {
		return s.verdict // decisions are terminal
	}
	s.observed++
	s.logLambda += step
	// Tolerant boundary compares: the walk accumulates the step N times
	// while the boundary is computed in closed form, so the two can
	// differ by float rounding at the crossing observation.
	upper, lower := s.params.upperLog(), s.params.lowerLog()
	eps := 1e-9 * math.Max(1, math.Abs(upper))
	switch {
	case s.logLambda >= upper-eps:
		s.verdict = VerdictScanner
	case s.logLambda <= lower+eps:
		s.verdict = VerdictBenign
	}
	return s.verdict
}

// Verdict returns the current decision state.
func (s *SPRT) Verdict() Verdict { return s.verdict }

// Observed returns the number of observations consumed.
func (s *SPRT) Observed() int { return s.observed }

// DarknetThreshold returns the number of consecutive failures — i.e.
// darknet packets — after which the SPRT declares a scanner:
// N = ⌈ln η1 / ln(θ1/θ0)⌉. This is the reduction that turns TRW into the
// Detector's packet counter.
func (p SPRTParams) DarknetThreshold() int {
	// Parameters solved to hit an exact integer threshold land within
	// float rounding of it; snap near-integers before taking the ceiling.
	ratio := p.upperLog() / p.failStep()
	if nearest := math.Round(ratio); math.Abs(ratio-nearest) < 1e-6*math.Max(1, nearest) {
		return int(nearest)
	}
	return int(math.Ceil(ratio))
}

// ParamsForDarknetThreshold returns SPRT parameters whose darknet
// reduction equals the given packet threshold, holding the canonical
// θ0/θ1 and β fixed and solving for α: α = (1−β)/exp(N·ln(θ1/θ0)).
// It documents what false-positive rate the paper's "100 packets"
// operating point implies under the canonical failure model.
func ParamsForDarknetThreshold(threshold int) (SPRTParams, error) {
	if threshold <= 0 {
		return SPRTParams{}, fmt.Errorf("trw: threshold must be positive, got %d", threshold)
	}
	p := DefaultSPRTParams()
	p.Alpha = (1 - p.Beta) / math.Exp(float64(threshold)*p.failStep())
	if p.Alpha < 1e-300 {
		// The implied false-positive rate is below float64 resolution;
		// the correspondence cannot be represented.
		return SPRTParams{}, fmt.Errorf("trw: threshold %d implies an unrepresentable α", threshold)
	}
	if err := p.Validate(); err != nil {
		return SPRTParams{}, err
	}
	return p, nil
}
