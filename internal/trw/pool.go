package trw

import (
	"sync"

	"exiot/internal/packet"
)

// samplePool recycles post-detection sample buffers. The detector draws a
// buffer when a source crosses the TRW threshold and hands it downstream
// inside the EventSample; consumers that copy the packets out (the
// pipeline's organizer does) return the buffer with RecycleSample so the
// next detection allocates nothing. Consumers that retain Event.Sample
// simply never recycle — the pool is opt-in, not ownership-by-default.
var samplePool sync.Pool // holds *[]packet.Packet

// newSampleBuf returns an empty packet buffer with capacity ≥ n,
// preferring a recycled one.
func newSampleBuf(n int) []packet.Packet {
	if v := samplePool.Get(); v != nil {
		b := *(v.(*[]packet.Packet))
		if cap(b) >= n {
			return b[:0]
		}
	}
	return make([]packet.Packet, 0, n)
}

// RecycleSample returns a sample buffer received in an EventSample to the
// detector's buffer pool. Call it only after every packet has been copied
// out of the slice; the buffer may be handed to another detection (on any
// goroutine) immediately. A nil or zero-capacity slice is ignored.
func RecycleSample(b []packet.Packet) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	samplePool.Put(&b)
}

// shardBatchPool recycles the sharded detector's per-flush routing
// batches ([]shardPkt). The coordinator draws a batch per shard per
// flush; the shard goroutine returns it after processing.
var shardBatchPool sync.Pool // holds *[]shardPkt

func newShardBatch() []shardPkt {
	if v := shardBatchPool.Get(); v != nil {
		return (*v.(*[]shardPkt))[:0]
	}
	return make([]shardPkt, 0, shardBatchSize)
}

func putShardBatch(b []shardPkt) {
	if cap(b) == 0 {
		return
	}
	// Drop the packet pointers so a pooled batch cannot pin an hour's
	// packet slab in memory between flushes.
	for i := range b {
		b[i].p = nil
	}
	b = b[:0]
	shardBatchPool.Put(&b)
}
