package trw

import (
	"testing"
	"time"

	"exiot/internal/packet"
)

var t0 = time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC)

// synPacket builds a SYN probe from src at ts.
func synPacket(src packet.IP, ts time.Time, dstPort uint16) packet.Packet {
	p := packet.Packet{
		Timestamp: ts,
		Proto:     packet.TCP,
		SrcIP:     src,
		DstIP:     packet.MustParseIP("10.1.2.3"),
		SrcPort:   40000,
		DstPort:   dstPort,
		Flags:     packet.FlagSYN,
		TTL:       48,
	}
	p.Normalize()
	return p
}

// collect runs a detector over a packet sequence and gathers events.
func collect(cfg Config, pkts []packet.Packet) ([]Event, *Detector) {
	var events []Event
	d := NewDetector(cfg, func(e Event) { events = append(events, e) })
	for i := range pkts {
		d.Process(&pkts[i])
	}
	return events, d
}

// steadyStream emits n packets from src spaced by gap.
func steadyStream(src packet.IP, start time.Time, n int, gap time.Duration) []packet.Packet {
	out := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, synPacket(src, start.Add(time.Duration(i)*gap), 23))
	}
	return out
}

func eventsOf(events []Event, kind EventKind) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

func TestDetectionAtThreshold(t *testing.T) {
	src := packet.MustParseIP("203.0.113.5")
	// 100 packets over 99 seconds: crosses both count and duration rules.
	pkts := steadyStream(src, t0, 100, time.Second)
	events, d := collect(Default(), pkts)
	det := eventsOf(events, EventScannerDetected)
	if len(det) != 1 {
		t.Fatalf("detections = %d, want 1", len(det))
	}
	if det[0].IP != src {
		t.Errorf("detected %v, want %v", det[0].IP, src)
	}
	if !det[0].FirstSeen.Equal(t0) {
		t.Errorf("FirstSeen = %v, want %v", det[0].FirstSeen, t0)
	}
	if got := d.Stats().ScannersFound; got != 1 {
		t.Errorf("ScannersFound = %d", got)
	}
}

func TestNoDetectionBelowThreshold(t *testing.T) {
	src := packet.MustParseIP("203.0.113.6")
	pkts := steadyStream(src, t0, 99, time.Second)
	events, _ := collect(Default(), pkts)
	if n := len(eventsOf(events, EventScannerDetected)); n != 0 {
		t.Errorf("detections = %d, want 0 below threshold", n)
	}
}

func TestShortBurstExcludedByDuration(t *testing.T) {
	// Misconfiguration burst: 500 packets in 40 s. Count passes, duration
	// rule must exclude it.
	src := packet.MustParseIP("203.0.113.7")
	pkts := steadyStream(src, t0, 500, 80*time.Millisecond)
	events, _ := collect(Default(), pkts)
	if n := len(eventsOf(events, EventScannerDetected)); n != 0 {
		t.Errorf("detections = %d, want 0 for sub-minute burst", n)
	}
}

func TestBurstThenDurationEventuallyDetected(t *testing.T) {
	// A fast scanner that keeps going past one minute must be detected at
	// the moment both rules hold.
	src := packet.MustParseIP("203.0.113.8")
	pkts := steadyStream(src, t0, 1000, 100*time.Millisecond) // 100 s total
	events, _ := collect(Default(), pkts)
	det := eventsOf(events, EventScannerDetected)
	if len(det) != 1 {
		t.Fatalf("detections = %d, want 1", len(det))
	}
	if d := det[0].DetectedAt.Sub(t0); d < time.Minute || d > 61*time.Second {
		t.Errorf("detected after %v, want ≈1 minute (duration rule binds)", d)
	}
}

func TestExpiryGapResetsWalk(t *testing.T) {
	src := packet.MustParseIP("203.0.113.9")
	var pkts []packet.Packet
	// 60 packets, a 6-minute silence, then 60 more: the gap must reset
	// the walk so no detection occurs.
	pkts = append(pkts, steadyStream(src, t0, 60, time.Second)...)
	pkts = append(pkts, steadyStream(src, t0.Add(60*time.Second+6*time.Minute), 60, time.Second)...)
	events, _ := collect(Default(), pkts)
	if n := len(eventsOf(events, EventScannerDetected)); n != 0 {
		t.Errorf("detections = %d, want 0 after expiry reset", n)
	}
}

func TestSampleCollection(t *testing.T) {
	src := packet.MustParseIP("203.0.113.10")
	pkts := steadyStream(src, t0, 301, time.Second)
	events, d := collect(Default(), pkts)
	samples := eventsOf(events, EventSample)
	if len(samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(samples))
	}
	if got := len(samples[0].Sample); got != 200 {
		t.Errorf("sample size = %d, want 200", got)
	}
	// The sample must contain the packets after detection, in order.
	for i := 1; i < len(samples[0].Sample); i++ {
		if samples[0].Sample[i].Timestamp.Before(samples[0].Sample[i-1].Timestamp) {
			t.Fatal("sample out of order")
		}
	}
	if d.Stats().SamplesEmitted != 1 {
		t.Errorf("SamplesEmitted = %d", d.Stats().SamplesEmitted)
	}
}

func TestBackscatterFiltered(t *testing.T) {
	src := packet.MustParseIP("198.51.100.1")
	var pkts []packet.Packet
	for i := 0; i < 500; i++ {
		p := packet.Packet{
			Timestamp: t0.Add(time.Duration(i) * time.Second),
			Proto:     packet.TCP,
			SrcIP:     src,
			DstIP:     packet.MustParseIP("10.9.9.9"),
			SrcPort:   80,
			DstPort:   55555,
			Flags:     packet.FlagSYN | packet.FlagACK,
		}
		p.Normalize()
		pkts = append(pkts, p)
	}
	events, d := collect(Default(), pkts)
	if n := len(eventsOf(events, EventScannerDetected)); n != 0 {
		t.Errorf("backscatter source detected as scanner")
	}
	if d.Stats().Backscatter != 500 {
		t.Errorf("Backscatter = %d, want 500", d.Stats().Backscatter)
	}
}

func TestFlowEndAtHourlySweep(t *testing.T) {
	src := packet.MustParseIP("203.0.113.11")
	pkts := steadyStream(src, t0, 400, time.Second) // ends at t0+400s
	var events []Event
	d := NewDetector(Default(), func(e Event) { events = append(events, e) })
	for i := range pkts {
		d.Process(&pkts[i])
	}
	// Sweep one hour later: flow idle 53+ minutes — not yet ended.
	d.EndHour(t0.Add(time.Hour))
	if n := len(eventsOf(events, EventFlowEnd)); n != 0 {
		t.Fatalf("flow ended too early (idle < FlowEndGap): %d events", n)
	}
	// Sweep two hours later: idle > 1 h — flow must end.
	d.EndHour(t0.Add(2 * time.Hour))
	ends := eventsOf(events, EventFlowEnd)
	if len(ends) != 1 {
		t.Fatalf("flow ends = %d, want 1", len(ends))
	}
	if !ends[0].LastSeen.Equal(pkts[len(pkts)-1].Timestamp) {
		t.Errorf("LastSeen = %v, want %v", ends[0].LastSeen, pkts[len(pkts)-1].Timestamp)
	}
	if d.Stats().FlowsEnded != 1 {
		t.Errorf("FlowsEnded = %d", d.Stats().FlowsEnded)
	}
}

func TestShortSampleEmittedOnFlowEnd(t *testing.T) {
	src := packet.MustParseIP("203.0.113.12")
	// 150 packets: detection at 100, only 50 sampled before silence.
	pkts := steadyStream(src, t0, 150, time.Second)
	var events []Event
	d := NewDetector(Default(), func(e Event) { events = append(events, e) })
	for i := range pkts {
		d.Process(&pkts[i])
	}
	d.EndHour(t0.Add(3 * time.Hour))
	samples := eventsOf(events, EventSample)
	if len(samples) != 1 {
		t.Fatalf("samples = %d, want 1 (short sample on flow end)", len(samples))
	}
	if got := len(samples[0].Sample); got != 50 {
		t.Errorf("short sample size = %d, want 50", got)
	}
}

func TestSecondReports(t *testing.T) {
	src := packet.MustParseIP("203.0.113.13")
	pkts := steadyStream(src, t0, 10, 500*time.Millisecond) // spans 5 s
	var events []Event
	d := NewDetector(Default(), func(e Event) { events = append(events, e) })
	for i := range pkts {
		d.Process(&pkts[i])
	}
	d.Flush(pkts[len(pkts)-1].Timestamp)
	reports := eventsOf(events, EventSecondReport)
	if len(reports) < 5 {
		t.Fatalf("reports = %d, want ≥5", len(reports))
	}
	total := 0
	for _, e := range reports {
		total += e.Report.Total
		if e.Report.TCP != e.Report.Total {
			t.Errorf("second %v: TCP=%d Total=%d", e.Report.Second, e.Report.TCP, e.Report.Total)
		}
		if e.Report.PortPackets[23] != e.Report.Total {
			t.Errorf("port tally wrong: %v", e.Report.PortPackets)
		}
	}
	if total != len(pkts) {
		t.Errorf("reported total = %d, want %d", total, len(pkts))
	}
}

func TestMultipleSources(t *testing.T) {
	var pkts []packet.Packet
	srcs := []packet.IP{
		packet.MustParseIP("1.1.1.1"),
		packet.MustParseIP("2.2.2.2"),
		packet.MustParseIP("3.3.3.3"),
	}
	for _, src := range srcs {
		pkts = append(pkts, steadyStream(src, t0, 350, time.Second)...)
	}
	// Interleave by timestamp.
	sortByTime(pkts)
	events, d := collect(Default(), pkts)
	if n := len(eventsOf(events, EventScannerDetected)); n != 3 {
		t.Errorf("detections = %d, want 3", n)
	}
	if n := len(eventsOf(events, EventSample)); n != 3 {
		t.Errorf("samples = %d, want 3", n)
	}
	if d.Stats().ActiveSources != 3 {
		t.Errorf("ActiveSources = %d, want 3", d.Stats().ActiveSources)
	}
}

func sortByTime(pkts []packet.Packet) {
	for i := 1; i < len(pkts); i++ {
		for j := i; j > 0 && pkts[j].Timestamp.Before(pkts[j-1].Timestamp); j-- {
			pkts[j], pkts[j-1] = pkts[j-1], pkts[j]
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg != Default() {
		t.Errorf("withDefaults() = %+v, want paper operating point", cfg)
	}
	custom := Config{DetectionThreshold: 50}.withDefaults()
	if custom.DetectionThreshold != 50 || custom.SampleSize != 200 {
		t.Errorf("partial config not preserved: %+v", custom)
	}
}

func TestLowThresholdAblation(t *testing.T) {
	// With threshold 10 a slow scanner is caught far earlier.
	src := packet.MustParseIP("203.0.113.14")
	pkts := steadyStream(src, t0, 120, 10*time.Second)
	fast, _ := collect(Config{DetectionThreshold: 10}, pkts)
	slow, _ := collect(Default(), pkts)
	fd := eventsOf(fast, EventScannerDetected)
	sd := eventsOf(slow, EventScannerDetected)
	if len(fd) != 1 || len(sd) != 1 {
		t.Fatalf("detections: fast=%d slow=%d, want 1 each", len(fd), len(sd))
	}
	if !fd[0].DetectedAt.Before(sd[0].DetectedAt) {
		t.Error("lower threshold should detect earlier")
	}
}

func TestConfigWithDefaultsMinDuration(t *testing.T) {
	// Zero promotes to the paper's 1-minute floor.
	if got := (Config{}).withDefaults().MinDuration; got != time.Minute {
		t.Errorf("zero MinDuration promoted to %v, want 1m", got)
	}
	// Negative is the explicit ablation switch: the floor is disabled.
	if got := (Config{MinDuration: -1}).withDefaults().MinDuration; got != 0 {
		t.Errorf("negative MinDuration = %v, want 0 (floor disabled)", got)
	}
	// A positive value is kept as-is.
	if got := (Config{MinDuration: 5 * time.Second}).withDefaults().MinDuration; got != 5*time.Second {
		t.Errorf("explicit MinDuration = %v, want 5s", got)
	}
}

func TestConfigWithDefaultsZeroPromotion(t *testing.T) {
	d := Default()
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{"all-zero", Config{}, d},
		{"negative-threshold", Config{DetectionThreshold: -5}, d},
		{"negative-gaps", Config{ExpiryGap: -time.Second, FlowEndGap: -time.Hour}, d},
		{"partial", Config{SampleSize: 10, ExpiryGap: time.Minute},
			Config{DetectionThreshold: d.DetectionThreshold, SampleSize: 10,
				ExpiryGap: time.Minute, MinDuration: d.MinDuration, FlowEndGap: d.FlowEndGap}},
	}
	for _, c := range cases {
		if got := c.in.withDefaults(); got != c.want {
			t.Errorf("%s: withDefaults() = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestMinDurationAblationDetectsFastBursts(t *testing.T) {
	// A misconfiguration burst: 150 packets in under a second. The
	// duration floor suppresses detection; the ablation catches it.
	src := packet.MustParseIP("203.0.113.31")
	pkts := steadyStream(src, t0, 150, 5*time.Millisecond)
	withFloor, _ := collect(Default(), pkts)
	ablated, _ := collect(Config{MinDuration: -1}, pkts)
	if n := len(eventsOf(withFloor, EventScannerDetected)); n != 0 {
		t.Errorf("duration floor: %d detections on a sub-minute burst, want 0", n)
	}
	if n := len(eventsOf(ablated, EventScannerDetected)); n != 1 {
		t.Errorf("ablation: %d detections, want 1", n)
	}
}
