package trw

import (
	"exiot/internal/packet"
)

// flowTable is the detector's per-source state store: an open-addressing
// hash table whose entries live in one contiguous slab (the arena), the
// go-flows idiom for sustained-rate flow tracking. Compared to the
// map[packet.IP]*srcState it replaces:
//
//   - entries are indices into a flat []flowEntry, not heap pointers, so
//     inserting a new source allocates nothing in steady state (slab
//     growth is amortized, deleted slots are recycled through a free
//     list) and the walk state of neighbouring probes shares cache lines;
//   - timestamps are int64 unix-nanos (8 bytes) instead of 24-byte
//     time.Time values, and the comparison arithmetic is plain integer
//     subtraction;
//   - expiry is epoch-based: entries carry a generation stamp (the epoch
//     bucket they are filed under) and the hourly sweep walks only the
//     buckets old enough to contain expirable flows, instead of scanning
//     and sort.Slice-ing the entire table. An entry touched after filing
//     is lazily re-filed under its current epoch when its old bucket is
//     swept — touching a flow on the packet path stays a single store.
//
// The table is not safe for concurrent use, mirroring the Detector.
type flowTable struct {
	// entries is the arena. Index 0 is valid; slots hold index+1 so the
	// zero slot value means "empty".
	entries []flowEntry
	slots   []uint32
	live    int

	// freeHead chains released entries through flowEntry.enext (-1 none).
	freeHead int32
	freeLen  int

	// Epoch index for expiry sweeps: bucket head per epoch, chained
	// through flowEntry.enext. Filed once per insert and once per sweep
	// re-file — never on the per-packet touch path.
	epochLen int64
	buckets  map[int64]int32

	// sweepEpochs is reusable scratch for collecting due bucket keys.
	sweepEpochs []int64
}

// flowEntry is one per-source state record, the arena form of the paper's
// GLib entry {start ts, latest ts, packet count, IsScanner}. Field order
// keeps the struct at 72 bytes (vs ~112 for the pointer+time.Time form).
type flowEntry struct {
	ip       packet.IP
	enext    int32 // epoch-bucket chain while live, free-list chain while free
	count    int32
	scanner  bool
	sampling bool

	gen      int64 // generation stamp: epoch bucket this entry is filed under
	first    int64 // unix nanos
	last     int64
	detected int64

	sample []packet.Packet
}

const (
	flowTableInitialSlots = 4096
	flowTableInitialArena = 1024
)

// floorDiv is integer division rounding toward negative infinity, so
// epoch and second boundaries are exact floors even for pre-1970 stamps.
func floorDiv(n, d int64) int64 {
	q := n / d
	if n%d != 0 && (n < 0) != (d < 0) {
		q--
	}
	return q
}

func newFlowTable(epochLen int64) flowTable {
	if epochLen <= 0 {
		epochLen = int64(1e9)
	}
	return flowTable{
		entries:  make([]flowEntry, 0, flowTableInitialArena),
		slots:    make([]uint32, flowTableInitialSlots),
		freeHead: -1,
		epochLen: epochLen,
		buckets:  make(map[int64]int32, 64),
	}
}

// home returns the starting probe slot for ip (Fibonacci multiplicative
// hash, same spreading trick as the shard router).
func (t *flowTable) home(ip packet.IP) uint32 {
	h := uint64(uint32(ip)) * 0x9E3779B97F4A7C15
	return uint32(h>>32) & uint32(len(t.slots)-1)
}

// getOrInsert returns the arena index for ip, creating a fresh entry
// (first=last=ts filed under ts's epoch) when the source is new.
func (t *flowTable) getOrInsert(ip packet.IP, ts int64) (idx int32, isNew bool) {
	mask := uint32(len(t.slots) - 1)
	i := t.home(ip)
	for {
		s := t.slots[i]
		if s == 0 {
			break
		}
		if t.entries[s-1].ip == ip {
			return int32(s - 1), false
		}
		i = (i + 1) & mask
	}
	// Miss: insert. Grow first if the probe chains are getting long.
	if (t.live+1)*4 > len(t.slots)*3 {
		t.grow()
		i = t.probeEmpty(ip)
	}
	idx = t.alloc(ip)
	t.slots[i] = uint32(idx) + 1
	t.live++
	e := &t.entries[idx]
	e.first, e.last, e.count = ts, ts, 1
	t.file(idx, floorDiv(ts, t.epochLen))
	return idx, true
}

// alloc takes an entry off the free list or extends the slab.
func (t *flowTable) alloc(ip packet.IP) int32 {
	if t.freeHead >= 0 {
		idx := t.freeHead
		t.freeHead = t.entries[idx].enext
		t.freeLen--
		t.entries[idx] = flowEntry{ip: ip}
		return idx
	}
	t.entries = append(t.entries, flowEntry{ip: ip})
	return int32(len(t.entries) - 1)
}

// probeEmpty finds the empty slot where ip belongs (the key must not be
// present).
func (t *flowTable) probeEmpty(ip packet.IP) uint32 {
	mask := uint32(len(t.slots) - 1)
	i := t.home(ip)
	for t.slots[i] != 0 {
		i = (i + 1) & mask
	}
	return i
}

// grow doubles the slot array and rehomes every live entry. Arena indices
// are stable across growth, so callers' cached indices stay valid.
func (t *flowTable) grow() {
	old := t.slots
	t.slots = make([]uint32, len(old)*2)
	for _, s := range old {
		if s != 0 {
			i := t.probeEmpty(t.entries[s-1].ip)
			t.slots[i] = s
		}
	}
}

// file links idx into the epoch bucket for ep and stamps its generation.
func (t *flowTable) file(idx int32, ep int64) {
	e := &t.entries[idx]
	e.gen = ep
	if head, ok := t.buckets[ep]; ok {
		e.enext = head
	} else {
		e.enext = -1
	}
	t.buckets[ep] = idx
}

// sweep appends to ended the arena index of every entry whose last packet
// is at or before cutoff, unfiling them from the epoch index. Live
// entries found in due buckets (touched since filing, or sharing the
// cutoff's boundary epoch) are re-filed under their current generation.
// Swept entries stay resident — the caller reads them, emits events in
// its own order, then releases each index.
func (t *flowTable) sweep(cutoff int64, ended []int32) []int32 {
	cutEpoch := floorDiv(cutoff, t.epochLen)
	t.sweepEpochs = t.sweepEpochs[:0]
	for ep := range t.buckets {
		if ep <= cutEpoch {
			t.sweepEpochs = append(t.sweepEpochs, ep)
		}
	}
	for _, ep := range t.sweepEpochs {
		head, ok := t.buckets[ep]
		if !ok {
			continue
		}
		delete(t.buckets, ep)
		for idx := head; idx >= 0; {
			e := &t.entries[idx]
			next := e.enext
			if e.last <= cutoff {
				e.enext = -1
				ended = append(ended, idx)
			} else {
				// Generation moved on (or the cutoff falls inside this
				// epoch): re-file under the entry's current epoch.
				t.file(idx, floorDiv(e.last, t.epochLen))
			}
			idx = next
		}
	}
	return ended
}

// release removes a swept entry from the hash and returns its slot to
// the free list. The entry must already be unfiled from the epoch index
// (i.e. produced by sweep).
func (t *flowTable) release(idx int32) {
	e := &t.entries[idx]
	mask := uint32(len(t.slots) - 1)
	i := t.home(e.ip)
	for t.slots[i] != uint32(idx)+1 {
		i = (i + 1) & mask
	}
	t.removeSlot(i)
	e.sample = nil
	e.enext = t.freeHead
	t.freeHead = idx
	t.freeLen++
	t.live--
}

// removeSlot deletes slot i with backward-shift compaction (no
// tombstones): subsequent probe-chain entries whose home lies at or
// before the vacated slot are moved back into it, preserving the
// linear-probing invariant.
func (t *flowTable) removeSlot(i uint32) {
	mask := uint32(len(t.slots) - 1)
	j := i
	for {
		t.slots[i] = 0
		for {
			j = (j + 1) & mask
			if t.slots[j] == 0 {
				return
			}
			k := t.home(t.entries[t.slots[j]-1].ip)
			if (j-k)&mask >= (j-i)&mask {
				break
			}
		}
		t.slots[i] = t.slots[j]
		i = j
	}
}

// len returns the number of live entries.
func (t *flowTable) len() int { return t.live }

// arenaCap returns the slab length (live + free entries ever allocated).
func (t *flowTable) arenaCap() int { return len(t.entries) }

// freeCount returns how many arena slots sit on the free list.
func (t *flowTable) freeCount() int { return t.freeLen }
