package trw

import (
	"reflect"
	"testing"
	"time"

	"exiot/internal/packet"
	"exiot/internal/simnet"
)

// runSerial replays hours through a serial Detector the way the pipeline
// does: Process every packet, EndHour at each hour boundary, Flush at the
// end. Returns the full event stream and final stats.
func runSerial(cfg Config, hours [][]packet.Packet, bounds []time.Time, flushAt time.Time) ([]Event, Stats) {
	var events []Event
	d := NewDetector(cfg, func(e Event) { events = append(events, e) })
	for hi := range hours {
		for i := range hours[hi] {
			d.Process(&hours[hi][i])
		}
		d.EndHour(bounds[hi])
	}
	d.Flush(flushAt)
	return events, d.Stats()
}

// runSharded replays the same hours through a ShardedDetector.
func runSharded(cfg Config, workers int, hours [][]packet.Packet, bounds []time.Time, flushAt time.Time) ([]Event, Stats) {
	var events []Event
	d := NewShardedDetector(cfg, workers, func(e Event) { events = append(events, e) })
	defer d.Close()
	for hi := range hours {
		d.ProcessBatch(hours[hi])
		d.EndHour(bounds[hi])
	}
	d.Flush(flushAt)
	return events, d.Stats()
}

// simHours generates telescope traffic for n hours of a deterministic
// simulated world.
func simHours(seed int64, n int) ([][]packet.Packet, []time.Time) {
	cfg := simnet.DefaultConfig(seed)
	cfg.NumInfected = 80
	cfg.NumNonIoT = 20
	cfg.NumResearch = 3
	cfg.NumMisconfig = 15
	cfg.NumBackscat = 6
	cfg.MaxPacketsPerHostHour = 600
	w := simnet.NewWorld(cfg)
	hours := make([][]packet.Packet, n)
	bounds := make([]time.Time, n)
	for i := 0; i < n; i++ {
		hour := cfg.Start.Add(time.Duration(i) * time.Hour)
		hours[i] = w.GenerateHour(hour)
		bounds[i] = hour.Add(time.Hour)
	}
	return hours, bounds
}

// TestShardedMatchesSerialSimnet is the core equivalence property: for
// realistic telescope traffic, the sharded detector's merged event stream
// is identical — event by event, in order — to the serial detector's,
// regardless of shard count.
func TestShardedMatchesSerialSimnet(t *testing.T) {
	hours, bounds := simHours(7, 4)
	var total int
	for _, h := range hours {
		total += len(h)
	}
	if total == 0 {
		t.Fatal("simnet generated no packets")
	}
	flushAt := bounds[len(bounds)-1]

	wantEvents, wantStats := runSerial(Config{}, hours, bounds, flushAt)
	if len(wantEvents) == 0 {
		t.Fatal("serial detector emitted no events")
	}

	for _, workers := range []int{1, 3, 8} {
		gotEvents, gotStats := runSharded(Config{}, workers, hours, bounds, flushAt)
		if len(gotEvents) != len(wantEvents) {
			t.Fatalf("workers=%d: got %d events, want %d", workers, len(gotEvents), len(wantEvents))
		}
		for i := range wantEvents {
			if !reflect.DeepEqual(gotEvents[i], wantEvents[i]) {
				t.Fatalf("workers=%d: event %d differs:\n got  %+v\n want %+v",
					workers, i, gotEvents[i], wantEvents[i])
			}
		}
		if gotStats != wantStats {
			t.Errorf("workers=%d: stats = %+v, want %+v", workers, gotStats, wantStats)
		}
	}
}

// TestShardedMatchesSerialSynthetic checks the merge on a hand-built
// stream with cross-source timestamp ties, sources that expire mid-run,
// and a shard that goes quiet before the end of the hour (exercising the
// AdvanceClock alignment).
func TestShardedMatchesSerialSynthetic(t *testing.T) {
	cfg := Config{DetectionThreshold: 10, SampleSize: 5, MinDuration: -1}
	srcs := []packet.IP{
		packet.MustParseIP("203.0.113.9"),
		packet.MustParseIP("198.51.100.4"),
		packet.MustParseIP("192.0.2.77"),
		packet.MustParseIP("203.0.113.10"),
	}
	var pkts []packet.Packet
	for i := 0; i < 40; i++ {
		ts := t0.Add(time.Duration(i) * 700 * time.Millisecond)
		for si, src := range srcs {
			// The last source goes quiet halfway through: its shard's
			// report clock lags and must be advanced at the barrier.
			if si == 3 && i >= 20 {
				continue
			}
			// Identical timestamps across sources exercise tie-breaking.
			pkts = append(pkts, synPacket(src, ts, 23))
		}
	}
	hours := [][]packet.Packet{pkts}
	bounds := []time.Time{t0.Add(time.Hour)}
	flushAt := bounds[0].Add(time.Hour)

	wantEvents, wantStats := runSerial(cfg, hours, bounds, flushAt)
	for _, workers := range []int{2, 4, 16} {
		gotEvents, gotStats := runSharded(cfg, workers, hours, bounds, flushAt)
		if !reflect.DeepEqual(gotEvents, wantEvents) {
			t.Fatalf("workers=%d: event streams differ (got %d, want %d events)",
				workers, len(gotEvents), len(wantEvents))
		}
		if gotStats != wantStats {
			t.Errorf("workers=%d: stats = %+v, want %+v", workers, gotStats, wantStats)
		}
	}
}

// TestShardedEmpty checks lifecycle calls with no input.
func TestShardedEmpty(t *testing.T) {
	var events []Event
	d := NewShardedDetector(Config{}, 4, func(e Event) { events = append(events, e) })
	d.ProcessBatch(nil)
	d.EndHour(t0)
	d.Flush(t0.Add(time.Hour))
	if st := d.Stats(); st.Processed != 0 {
		t.Errorf("Processed = %d, want 0", st.Processed)
	}
	d.Close()
	d.Close() // idempotent
	if len(events) != 0 {
		t.Errorf("got %d events from empty input, want 0", len(events))
	}
}

// TestShardedDefaultsToGOMAXPROCS checks worker-count defaulting.
func TestShardedDefaultsToGOMAXPROCS(t *testing.T) {
	d := NewShardedDetector(Config{}, 0, func(Event) {})
	defer d.Close()
	if d.NumShards() < 1 {
		t.Fatalf("NumShards = %d, want >= 1", d.NumShards())
	}
	d2 := NewShardedDetector(Config{}, 100000, func(Event) {})
	defer d2.Close()
	if d2.NumShards() != 256 {
		t.Fatalf("NumShards = %d, want capped at 256", d2.NumShards())
	}
}
