// Package console embeds the operator dashboard: a single-page app
// (vanilla JS + SVG, no build step) served from the operator mux at
// /console/, backed by a JSON stats API over the process' own telemetry
// registry, trace store, campaign tracker, and feed snapshot cache.
//
// The console is strictly read-only and provably inert: it samples
// counters the packet path already maintains (atomic loads on a tick,
// never per-packet work), so enabling it changes neither the feed's
// exported bytes nor the packet path's allocation profile — the
// equivalence test at the repo root pins both.
package console

import (
	"embed"
	"io/fs"
	"net/http"
	"sync"
	"time"

	"exiot/internal/api"
	"exiot/internal/campaign"
	"exiot/internal/feed"
	"exiot/internal/feedserve"
	"exiot/internal/telemetry"
	"exiot/internal/trace"
)

//go:embed assets
var assets embed.FS

// Telemetry handles for the console itself (see docs/OPERATIONS.md).
var (
	metConsoleRequests = telemetry.Default().CounterVec("exiot_console_requests_total",
		"Console requests served, by endpoint name.", "endpoint")
	metConsoleTicks = telemetry.Default().Counter("exiot_console_ticks_total",
		"Stats sampler ticks taken (one ring point each).")
	metConsoleSSE = telemetry.Default().Gauge("exiot_console_sse_clients",
		"Console event-stream connections currently open.")
)

// Config wires the console to the process' observability surfaces.
// Every field except Registry is optional: panels backed by an absent
// surface render empty instead of failing.
type Config struct {
	// Source answers snapshot and record drill-down queries (the same
	// backend the public API serves).
	Source api.Source
	// Why joins a record with its retained trace (usually the same value
	// as Source; split out so tests can drop it).
	Why api.WhySource
	// Traces is the completed-flow store behind the slowest-traces panel.
	Traces *trace.Store
	// Registry is the metric registry sampled every tick. Defaults to
	// telemetry.Default().
	Registry *telemetry.Registry
	// Health feeds the component health panel.
	Health *telemetry.Health
	// Tracker is the cross-hour campaign view. When Feed is also set,
	// wire the tracker to Feed.OnRebuild externally (exiotd does); with
	// no feed cache the console updates it itself from Source every
	// TrackEvery.
	Tracker *campaign.Tracker
	// Feed relays live record frames into the console event stream.
	Feed *feedserve.Cache
	// TickEvery is the stats sampling cadence (default 2s).
	TickEvery time.Duration
	// TrackEvery is the fallback tracker-update cadence used only when
	// Tracker is set and Feed is not (default 60s).
	TrackEvery time.Duration
	// RingSize bounds the feed-volume ring (default 900 points — 30
	// minutes at the default tick).
	RingSize int
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// VolumePoint is one stats tick in the feed-volume ring: per-interval
// deltas of the pipeline's volume counters plus the active-records
// level.
type VolumePoint struct {
	At time.Time `json:"at"`
	// Deltas since the previous tick.
	Records  float64 `json:"records"`
	FlowEnds float64 `json:"flow_ends"`
	Events   float64 `json:"events"`
	Packets  float64 `json:"packets"`
	// Level gauges sampled at the tick.
	Active float64 `json:"active"`
}

// volumeFamilies are the counter families differenced into ring points.
var volumeFamilies = struct{ records, flowEnds, events, packets, active string }{
	records:  "exiot_feed_records_total",
	flowEnds: "exiot_feed_flow_ends_total",
	events:   "exiot_sampler_events_total",
	packets:  "exiot_sampler_packets_total",
	active:   "exiot_feed_active_records",
}

// Console is the embedded operator dashboard.
type Console struct {
	cfg Config

	mu        sync.Mutex
	ring      []VolumePoint // bounded, oldest first
	lastTotal struct {
		records, flowEnds, events, packets float64
		valid                              bool
	}
	lastTrack time.Time

	done chan struct{}
	once sync.Once
}

// New builds a console. Call Register to mount it and Start to begin
// background sampling (tests may drive Tick directly instead).
func New(cfg Config) *Console {
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 2 * time.Second
	}
	if cfg.TrackEvery <= 0 {
		cfg.TrackEvery = time.Minute
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 900
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Console{cfg: cfg, done: make(chan struct{})}
}

// Tick takes one stats sample at now: difference the volume counters
// against the previous tick, append a ring point, and (in fallback mode)
// refresh the campaign tracker.
func (c *Console) Tick(now time.Time) {
	reg := c.cfg.Registry
	records := reg.Sum(volumeFamilies.records)
	flowEnds := reg.Sum(volumeFamilies.flowEnds)
	events := reg.Sum(volumeFamilies.events)
	packets := reg.Sum(volumeFamilies.packets)
	active := reg.Sum(volumeFamilies.active)

	c.mu.Lock()
	p := VolumePoint{At: now, Active: active}
	if c.lastTotal.valid {
		// Counters are monotonic; clamp anyway so a registry reset (tests)
		// cannot chart a negative rate.
		p.Records = max0(records - c.lastTotal.records)
		p.FlowEnds = max0(flowEnds - c.lastTotal.flowEnds)
		p.Events = max0(events - c.lastTotal.events)
		p.Packets = max0(packets - c.lastTotal.packets)
	}
	c.lastTotal.records, c.lastTotal.flowEnds = records, flowEnds
	c.lastTotal.events, c.lastTotal.packets = events, packets
	c.lastTotal.valid = true
	c.ring = append(c.ring, p)
	if len(c.ring) > c.cfg.RingSize {
		c.ring = c.ring[len(c.ring)-c.cfg.RingSize:]
	}
	track := c.cfg.Tracker != nil && c.cfg.Feed == nil && c.cfg.Source != nil &&
		now.Sub(c.lastTrack) >= c.cfg.TrackEvery
	if track {
		c.lastTrack = now
	}
	c.mu.Unlock()

	if track {
		c.cfg.Tracker.Update(c.cfg.Source.Records(api.Query{Label: feed.LabelIoT}), now)
	}
	metConsoleTicks.Inc()
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// volume copies the current ring, oldest first.
func (c *Console) volume() []VolumePoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]VolumePoint(nil), c.ring...)
}

// Start launches the background sampling loop; Close stops it.
func (c *Console) Start() {
	go func() {
		t := time.NewTicker(c.cfg.TickEvery)
		defer t.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-t.C:
				c.Tick(c.cfg.Clock())
			}
		}
	}()
}

// Close stops background sampling. Idempotent.
func (c *Console) Close() {
	c.once.Do(func() { close(c.done) })
}

// routes is the console surface: the mux and Endpoints() both derive
// from it, so the docs drift test sees exactly what is mounted.
func (c *Console) routes() []struct {
	api.Endpoint
	handler http.HandlerFunc
} {
	ep := func(method, path, name string, h http.HandlerFunc) struct {
		api.Endpoint
		handler http.HandlerFunc
	} {
		return struct {
			api.Endpoint
			handler http.HandlerFunc
		}{api.Endpoint{Method: method, Path: path, Name: name}, h}
	}
	return []struct {
		api.Endpoint
		handler http.HandlerFunc
	}{
		ep("GET", "/console/api/overview", "console_overview", c.handleOverview),
		ep("GET", "/console/api/traces", "console_traces", c.handleTraces),
		ep("GET", "/console/api/campaigns", "console_campaigns", c.handleCampaigns),
		ep("GET", "/console/api/record/{ip}", "console_record", c.handleRecord),
		ep("GET", "/console/api/events", "console_events", c.handleEvents),
	}
}

// Register mounts the dashboard and its API on mux (the operator mux,
// alongside /metrics and /traces — never the authenticated public API).
func (c *Console) Register(mux *http.ServeMux) {
	for _, rt := range c.routes() {
		h := rt.handler
		name := rt.Name
		mux.HandleFunc(rt.Method+" "+rt.Path, func(w http.ResponseWriter, r *http.Request) {
			metConsoleRequests.With(name).Inc()
			h(w, r)
		})
	}
	sub, err := fs.Sub(assets, "assets")
	if err != nil {
		panic("console: embedded assets missing: " + err.Error()) // unreachable: embed is compile-time
	}
	mux.Handle("GET /console/", http.StripPrefix("/console/", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			metConsoleRequests.With("console_static").Inc()
			http.FileServerFS(sub).ServeHTTP(w, r)
		})))
}

// Endpoints returns the console API surface (docs tests).
func (c *Console) Endpoints() []api.Endpoint {
	rts := c.routes()
	out := make([]api.Endpoint, len(rts))
	for i, rt := range rts {
		out[i] = rt.Endpoint
	}
	return out
}
