package console

import (
	"io/fs"
	"regexp"
	"strings"
	"testing"
)

// TestEmbeddedAssetReferencesResolve statically checks the dashboard's
// asset graph: every src=/href= reference in index.html must name a file
// actually present in the embed.FS, and every embedded file must be
// reachable from index.html — a renamed or forgotten asset fails the
// build's test run instead of 404ing in production.
func TestEmbeddedAssetReferencesResolve(t *testing.T) {
	index, err := assets.ReadFile("assets/index.html")
	if err != nil {
		t.Fatalf("index.html missing from embed.FS: %v", err)
	}

	refRe := regexp.MustCompile(`(?:src|href)="([^"]+)"`)
	referenced := map[string]bool{"index.html": true}
	for _, m := range refRe.FindAllStringSubmatch(string(index), -1) {
		ref := m[1]
		if strings.Contains(ref, "://") || strings.HasPrefix(ref, "/") || strings.HasPrefix(ref, "#") {
			continue // absolute URLs and API paths are not embedded assets
		}
		referenced[ref] = true
		if _, err := assets.ReadFile("assets/" + ref); err != nil {
			t.Errorf("index.html references %q but the embed.FS has no such file", ref)
		}
	}

	// The reverse direction: no orphaned embedded files.
	err = fs.WalkDir(assets, "assets", func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := strings.TrimPrefix(path, "assets/")
		if !referenced[name] {
			t.Errorf("embedded asset %q is not referenced by index.html", name)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDashboardCallsMountedRoutes cross-checks app.js against the route
// table: every /console/api/* path the front-end fetches must be a
// registered endpoint.
func TestDashboardCallsMountedRoutes(t *testing.T) {
	js, err := assets.ReadFile("assets/app.js")
	if err != nil {
		t.Fatal(err)
	}
	mounted := map[string]bool{}
	for _, ep := range New(Config{}).Endpoints() {
		base := strings.TrimSuffix(ep.Path, "/{ip}")
		mounted[base] = true
	}
	callRe := regexp.MustCompile("\\$\\{API\\}/([a-z]+)")
	for _, m := range callRe.FindAllStringSubmatch(string(js), -1) {
		path := "/console/api/" + m[1]
		if !mounted[path] {
			t.Errorf("app.js calls %s, which is not a registered console route", path)
		}
	}
}
