package console

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"exiot/internal/api"
	"exiot/internal/campaign"
	"exiot/internal/feed"
	"exiot/internal/telemetry"
	"exiot/internal/trace"
)

var t0 = time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)

// fakeSource backs the console with a static feed.
type fakeSource struct {
	records []feed.Record
	why     map[string]api.WhyReport
}

func (f *fakeSource) Records(q api.Query) []feed.Record {
	var out []feed.Record
	for _, r := range f.records {
		if q.Matches(&r) {
			out = append(out, r)
		}
	}
	return out
}

func (f *fakeSource) RecordByIP(ip string) (feed.Record, bool) {
	for _, r := range f.records {
		if r.IP == ip {
			return r, true
		}
	}
	return feed.Record{}, false
}

func (f *fakeSource) Snapshot() api.Snapshot {
	return api.Snapshot{GeneratedAt: t0, TotalRecords: len(f.records), IoTRecords: len(f.records)}
}

func (f *fakeSource) Why(ip string) (api.WhyReport, bool) {
	rep, ok := f.why[ip]
	return rep, ok
}

func iotRecords(n int) []feed.Record {
	out := make([]feed.Record, n)
	for i := range out {
		out[i] = feed.Record{
			IP:          fmt.Sprintf("203.0.113.%d", i+1),
			Label:       feed.LabelIoT,
			CountryCode: "CN",
			TargetPorts: map[uint16]int{23: 200},
			Tool:        "Mirai-like scanner",
		}
	}
	return out
}

func newRegistry(t *testing.T) *telemetry.Registry {
	t.Helper()
	return telemetry.NewRegistry()
}

func TestTickBuildsVolumeRing(t *testing.T) {
	reg := newRegistry(t)
	records := reg.Counter(volumeFamilies.records, "c")
	events := reg.CounterVec(volumeFamilies.events, "c", "kind")
	active := reg.Gauge(volumeFamilies.active, "g")

	c := New(Config{Registry: reg, RingSize: 3})
	records.Add(10)
	events.With("batch").Add(5)
	active.Set(10)
	c.Tick(t0)

	// The first tick establishes the baseline: no deltas yet.
	ring := c.volume()
	if len(ring) != 1 || ring[0].Records != 0 || ring[0].Active != 10 {
		t.Fatalf("first tick = %+v", ring)
	}

	records.Add(7)
	events.With("batch").Add(2)
	events.With("flow_end").Add(1)
	active.Set(17)
	c.Tick(t0.Add(2 * time.Second))
	ring = c.volume()
	p := ring[1]
	if p.Records != 7 || p.Events != 3 || p.Active != 17 {
		t.Fatalf("second tick deltas = %+v, want records 7 events 3 active 17", p)
	}

	// Ring stays bounded.
	for i := 0; i < 10; i++ {
		c.Tick(t0.Add(time.Duration(3+i) * time.Second))
	}
	if got := len(c.volume()); got != 3 {
		t.Fatalf("ring length = %d, want bound 3", got)
	}
}

func consoleMux(c *Console) *http.ServeMux {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

func TestOverviewHandler(t *testing.T) {
	reg := newRegistry(t)
	reg.Counter(volumeFamilies.records, "c").Add(3)
	// Stage latency: 10 spans in (0, 0.001].
	st := reg.StageTimer("classify")
	for i := 0; i < 10; i++ {
		st.Observe(0.0005)
	}
	// Cluster gauges for two shards.
	reg.GaugeVec("exiot_cluster_shard_seq", "g", "shard").With("s0").Set(42)
	reg.GaugeVec("exiot_cluster_shard_lag_hours", "g", "shard").With("s0").Set(1.5)
	reg.GaugeVec("exiot_cluster_shard_seq", "g", "shard").With("s1").Set(40)

	health := telemetry.NewHealth()
	health.Register("feed", time.Minute).BeatAt(t0)

	src := &fakeSource{records: iotRecords(4)}
	c := New(Config{
		Source:   src,
		Registry: reg,
		Health:   health,
		Clock:    func() time.Time { return t0 },
	})
	c.Tick(t0)

	rec := httptest.NewRecorder()
	consoleMux(c).ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/overview", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var ov Overview
	if err := json.Unmarshal(rec.Body.Bytes(), &ov); err != nil {
		t.Fatal(err)
	}
	if ov.Snapshot == nil || ov.Snapshot.TotalRecords != 4 {
		t.Errorf("snapshot = %+v", ov.Snapshot)
	}
	if len(ov.Volume) != 1 {
		t.Errorf("volume points = %d, want 1", len(ov.Volume))
	}
	if len(ov.Stages) != 1 || ov.Stages[0].Stage != "classify" || ov.Stages[0].Count != 10 {
		t.Fatalf("stages = %+v", ov.Stages)
	}
	if p := ov.Stages[0].P99; p <= 0 || p > 0.005 {
		t.Errorf("classify p99 = %v, want within the first bucket", p)
	}
	if ov.Health == nil || !ov.Health.Healthy || len(ov.Health.Components) != 1 {
		t.Errorf("health = %+v", ov.Health)
	}
	if len(ov.Cluster) != 2 || ov.Cluster[0].Shard != "s0" || ov.Cluster[0].LagHours != 1.5 {
		t.Errorf("cluster = %+v", ov.Cluster)
	}
	if ov.Cluster[1].Shard != "s1" || ov.Cluster[1].Seq != 40 {
		t.Errorf("cluster shard order = %+v", ov.Cluster)
	}
}

func TestOverviewEmptySurfaces(t *testing.T) {
	// A console with nothing but a registry must still answer: empty
	// panels, not nil-pointer panics.
	c := New(Config{Registry: newRegistry(t), Clock: func() time.Time { return t0 }})
	rec := httptest.NewRecorder()
	consoleMux(c).ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/overview", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var ov Overview
	if err := json.Unmarshal(rec.Body.Bytes(), &ov); err != nil {
		t.Fatal(err)
	}
	if ov.Snapshot != nil || ov.Health != nil || len(ov.Stages) != 0 || len(ov.Cluster) != 0 {
		t.Errorf("empty console leaked panels: %+v", ov)
	}
}

func TestTracesHandler(t *testing.T) {
	store := trace.NewStore(64, 4)
	base := time.Now()
	for i := 1; i <= 6; i++ {
		f := &trace.Flow{ID: trace.ID(i), IP: "ip", Kind: "batch", Start: base}
		f.SpanAt("probe", base, base, base.Add(time.Duration(i)*time.Millisecond))
		store.Add(f, base.Add(time.Duration(i)*time.Millisecond))
	}
	c := New(Config{Registry: newRegistry(t), Traces: store})
	mux := consoleMux(c)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/traces?n=2", nil))
	var out struct {
		N      int                          `json:"n"`
		Stages map[string][]trace.SlowEntry `json:"stages"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 2 || len(out.Stages["probe"]) != 2 {
		t.Fatalf("traces = %+v", out)
	}
	if out.Stages["probe"][0].WorkNS != int64(6*time.Millisecond) {
		t.Errorf("slowest first: %+v", out.Stages["probe"][0])
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/traces?n=banana", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad n status = %d", rec.Code)
	}

	// No trace store: empty map, not an error.
	c2 := New(Config{Registry: newRegistry(t)})
	rec = httptest.NewRecorder()
	consoleMux(c2).ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/traces", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"stages":{}`) {
		t.Errorf("traceless console: %d %s", rec.Code, rec.Body)
	}
}

func TestCampaignsHandler(t *testing.T) {
	tracker := campaign.NewTracker(campaign.TrackerConfig{})
	tracker.Update(iotRecords(6), t0)
	c := New(Config{Registry: newRegistry(t), Tracker: tracker})

	rec := httptest.NewRecorder()
	consoleMux(c).ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/campaigns", nil))
	var out struct {
		Count     int                       `json:"count"`
		Tracked   bool                      `json:"tracked"`
		Campaigns []api.TrackedCampaignJSON `json:"campaigns"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Tracked || out.Count != 1 || out.Campaigns[0].ID != "C-000001" {
		t.Fatalf("campaigns = %+v", out)
	}
	if out.Campaigns[0].Status != "active" || out.Campaigns[0].Devices != 6 {
		t.Errorf("campaign = %+v", out.Campaigns[0])
	}

	// No tracker: an empty tracked=false table.
	c2 := New(Config{Registry: newRegistry(t)})
	rec = httptest.NewRecorder()
	consoleMux(c2).ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/campaigns", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"tracked":false`) {
		t.Errorf("trackerless console: %d %s", rec.Code, rec.Body)
	}
}

func TestRecordHandler(t *testing.T) {
	src := &fakeSource{
		records: iotRecords(2),
		why: map[string]api.WhyReport{
			"203.0.113.1": {
				Record: iotRecords(1)[0],
				Trace:  &trace.Detail{Spans: []trace.SpanJSON{{Stage: "sampler", WorkNS: 100}}},
			},
		},
	}
	c := New(Config{Registry: newRegistry(t), Source: src, Why: src})
	mux := consoleMux(c)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/record/203.0.113.1", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"stage":"sampler"`) {
		t.Errorf("drill-down missing trace join: %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/record/not-an-ip", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("invalid ip status = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/record/198.51.100.9", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing record status = %d", rec.Code)
	}

	// Without a Why join the record alone comes back.
	c2 := New(Config{Registry: newRegistry(t), Source: src})
	rec = httptest.NewRecorder()
	consoleMux(c2).ServeHTTP(rec, httptest.NewRequest("GET", "/console/api/record/203.0.113.2", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "203.0.113.2") {
		t.Errorf("source-only drill-down: %d %s", rec.Code, rec.Body)
	}
}

func TestDashboardServed(t *testing.T) {
	c := New(Config{Registry: newRegistry(t)})
	mux := consoleMux(c)
	for _, path := range []string{"/console/", "/console/app.js", "/console/style.css"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 || rec.Body.Len() == 0 {
			t.Errorf("%s: status %d, %d bytes", path, rec.Code, rec.Body.Len())
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/console/", nil))
	if !strings.Contains(rec.Body.String(), "operator console") {
		t.Error("index.html not served at /console/")
	}
}

func TestEventsStreamEmitsStats(t *testing.T) {
	reg := newRegistry(t)
	reg.Counter(volumeFamilies.records, "c").Add(5)
	health := telemetry.NewHealth()
	health.Register("feed", time.Hour).BeatAt(t0)
	c := New(Config{
		Registry:  reg,
		Health:    health,
		TickEvery: 20 * time.Millisecond,
		Clock:     func() time.Time { return t0 },
	})
	c.Tick(t0)

	srv := httptest.NewServer(consoleMux(c))
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/console/api/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Read until a stats event arrives (a few ticks at most).
	buf := make([]byte, 4096)
	var got strings.Builder
	for ctx.Err() == nil && !strings.Contains(got.String(), "event: stats") {
		n, err := resp.Body.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := got.String()
	if !strings.Contains(body, "event: stats") {
		t.Fatalf("no stats frame in stream: %q", body)
	}
	if !strings.Contains(body, `"healthy":true`) {
		t.Errorf("stats frame missing health: %q", body)
	}
}

func TestTrackerFallbackUpdates(t *testing.T) {
	// With a tracker but no feed cache, ticks drive tracker updates at
	// the TrackEvery cadence.
	src := &fakeSource{records: iotRecords(5)}
	tracker := campaign.NewTracker(campaign.TrackerConfig{})
	c := New(Config{
		Registry:   newRegistry(t),
		Source:     src,
		Tracker:    tracker,
		TrackEvery: 10 * time.Second,
	})
	c.Tick(t0)
	if got := len(tracker.Campaigns()); got != 1 {
		t.Fatalf("first tick should seed the tracker: %d campaigns", got)
	}
	// Within the cadence window: no re-update.
	c.Tick(t0.Add(2 * time.Second))
	if tracker.LastUpdate() != t0 {
		t.Error("tracker updated before TrackEvery elapsed")
	}
	c.Tick(t0.Add(11 * time.Second))
	if tracker.LastUpdate() != t0.Add(11*time.Second) {
		t.Error("tracker not refreshed after TrackEvery")
	}
}

func TestEndpointsMatchRoutes(t *testing.T) {
	c := New(Config{Registry: newRegistry(t)})
	eps := c.Endpoints()
	if len(eps) != 5 {
		t.Fatalf("endpoints = %d, want 5", len(eps))
	}
	mux := consoleMux(c)
	for _, ep := range eps {
		probe := strings.ReplaceAll(ep.Path, "{ip}", "203.0.113.1")
		if ep.Path == "/console/api/events" {
			continue // SSE blocks; covered by TestEventsStreamEmitsStats
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(ep.Method, probe, nil))
		if rec.Code == http.StatusNotFound && !strings.Contains(rec.Body.String(), "no record") {
			t.Errorf("%s %s not mounted: %d", ep.Method, ep.Path, rec.Code)
		}
	}
}
