package console

// The console stats API. Every handler reads point-in-time copies of
// process state (registry snapshots, trace store copies, tracked
// campaign copies) — nothing here can mutate pipeline state or block a
// hot path.

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"exiot/internal/api"
	"exiot/internal/feedserve"
	"exiot/internal/packet"
	"exiot/internal/telemetry"
	"exiot/internal/trace"
)

// StageLatency is one stage's service-time summary (seconds).
type StageLatency struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// ShardStatus is one ingest shard's merge-barrier state (empty on a
// single-node deployment).
type ShardStatus struct {
	Shard    string  `json:"shard"`
	Seq      float64 `json:"seq"`
	Pending  float64 `json:"pending_frames"`
	LagHours float64 `json:"lag_hours"`
}

// FeedStatus summarizes the snapshot cache behind the feed.
type FeedStatus struct {
	Records int       `json:"records"`
	LastSeq uint64    `json:"last_seq"`
	BuiltAt time.Time `json:"built_at"`
}

// Overview is the /console/api/overview payload — everything the
// dashboard's headline panels render in one request.
type Overview struct {
	GeneratedAt time.Time         `json:"generated_at"`
	TickSeconds float64           `json:"tick_seconds"`
	Snapshot    *api.Snapshot     `json:"snapshot,omitempty"`
	Feed        *FeedStatus       `json:"feed,omitempty"`
	Volume      []VolumePoint     `json:"volume"`
	Stages      []StageLatency    `json:"stages"`
	EventStages []StageLatency    `json:"event_stages"`
	Health      *telemetry.Report `json:"health,omitempty"`
	Cluster     []ShardStatus     `json:"cluster"`
	SSEClients  float64           `json:"sse_clients"`
}

func (c *Console) handleOverview(w http.ResponseWriter, _ *http.Request) {
	now := c.cfg.Clock()
	ov := Overview{
		GeneratedAt: now,
		TickSeconds: c.cfg.TickEvery.Seconds(),
		Volume:      c.volume(),
		Stages:      stageLatencies(c.cfg.Registry, telemetry.StageHistogramName),
		EventStages: stageLatencies(c.cfg.Registry, "exiot_event_latency_seconds"),
		Cluster:     shardStatuses(c.cfg.Registry),
		SSEClients:  c.cfg.Registry.Sum("exiot_console_sse_clients"),
	}
	if c.cfg.Source != nil {
		snap := c.cfg.Source.Snapshot()
		ov.Snapshot = &snap
	}
	if c.cfg.Feed != nil {
		if snap := c.cfg.Feed.Current(); snap != nil {
			ov.Feed = &FeedStatus{Records: snap.Len(), LastSeq: snap.LastSeq(), BuiltAt: snap.BuiltAt()}
		}
	}
	if c.cfg.Health != nil {
		rep := c.cfg.Health.Evaluate(now)
		ov.Health = &rep
	}
	writeJSON(w, http.StatusOK, ov)
}

// stageLatencies extracts per-stage p50/p90/p99 from a stage-labeled
// histogram family, busiest stage first. Families that were never
// registered (no tracing, say) yield an empty list.
func stageLatencies(reg *telemetry.Registry, family string) []StageLatency {
	snap, ok := reg.FamilySnapshot(family)
	if !ok {
		return []StageLatency{}
	}
	out := make([]StageLatency, 0, len(snap.Series))
	for _, s := range snap.Series {
		if s.Hist == nil || s.Hist.Count == 0 || len(s.Labels) == 0 {
			continue
		}
		out = append(out, StageLatency{
			Stage: s.Labels[0],
			Count: s.Hist.Count,
			P50:   s.Hist.P50,
			P90:   s.Hist.P90,
			P99:   s.Hist.P99,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// shardStatuses joins the per-shard cluster gauges by shard label.
func shardStatuses(reg *telemetry.Registry) []ShardStatus {
	byShard := map[string]*ShardStatus{}
	collect := func(family string, set func(st *ShardStatus, v float64)) {
		snap, ok := reg.FamilySnapshot(family)
		if !ok {
			return
		}
		for _, s := range snap.Series {
			if len(s.Labels) == 0 {
				continue
			}
			st := byShard[s.Labels[0]]
			if st == nil {
				st = &ShardStatus{Shard: s.Labels[0]}
				byShard[s.Labels[0]] = st
			}
			set(st, s.Value)
		}
	}
	collect("exiot_cluster_shard_seq", func(st *ShardStatus, v float64) { st.Seq = v })
	collect("exiot_cluster_shard_pending_frames", func(st *ShardStatus, v float64) { st.Pending = v })
	collect("exiot_cluster_shard_lag_hours", func(st *ShardStatus, v float64) { st.LagHours = v })
	out := make([]ShardStatus, 0, len(byShard))
	for _, st := range byShard {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

func (c *Console) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 5
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, "invalid n")
			return
		}
		n = parsed
	}
	stages := map[string][]trace.SlowEntry{}
	if c.cfg.Traces != nil {
		stages = c.cfg.Traces.SlowestByStage(n)
	}
	writeJSON(w, http.StatusOK, map[string]any{"n": n, "stages": stages})
}

func (c *Console) handleCampaigns(w http.ResponseWriter, _ *http.Request) {
	if c.cfg.Tracker == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"count": 0, "tracked": false, "campaigns": []api.TrackedCampaignJSON{},
		})
		return
	}
	asOf := c.cfg.Tracker.LastUpdate()
	tracked := c.cfg.Tracker.Campaigns()
	out := make([]api.TrackedCampaignJSON, 0, len(tracked))
	for i := range tracked {
		tc := &tracked[i]
		status := "active"
		if !tc.Active(asOf) {
			status = "decaying"
		}
		out = append(out, api.TrackedCampaignJSON{
			ID:        tc.ID,
			Signature: tc.Signature.String(),
			Tool:      tc.Signature.Tool,
			Ports:     tc.Signature.Ports,
			Devices:   tc.Size(),
			Records:   tc.Records,
			Countries: tc.Countries,
			FirstSeen: tc.FirstSeen,
			LastSeen:  tc.LastSeen,
			Status:    status,
			Updates:   tc.Updates,
			History:   tc.History,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(out), "tracked": true, "as_of": asOf, "campaigns": out,
	})
}

// handleRecord is the provenance drill-down: the feed record joined
// with its retained trace when the backend can provide it.
func (c *Console) handleRecord(w http.ResponseWriter, r *http.Request) {
	ip := r.PathValue("ip")
	if _, err := packet.ParseIP(ip); err != nil {
		writeError(w, http.StatusBadRequest, "invalid ip")
		return
	}
	if c.cfg.Why != nil {
		rep, ok := c.cfg.Why.Why(ip)
		if !ok {
			writeError(w, http.StatusNotFound, "no record for "+ip)
			return
		}
		writeJSON(w, http.StatusOK, rep)
		return
	}
	if c.cfg.Source == nil {
		writeError(w, http.StatusNotImplemented, "no feed source configured")
		return
	}
	rec, ok := c.cfg.Source.RecordByIP(ip)
	if !ok {
		writeError(w, http.StatusNotFound, "no record for "+ip)
		return
	}
	writeJSON(w, http.StatusOK, api.WhyReport{Record: rec})
}

// statsFrame is one "stats" SSE event: the latest ring point plus the
// headline numbers the dashboard updates between overview polls.
type statsFrame struct {
	At      time.Time    `json:"at"`
	Point   *VolumePoint `json:"point,omitempty"`
	Healthy *bool        `json:"healthy,omitempty"`
	Feed    *FeedStatus  `json:"feed,omitempty"`
}

const sseHeartbeat = 15 * time.Second

// handleEvents streams live console updates over SSE: a "stats" event
// every tick interval, plus relayed feed "record" frames when a feed
// cache is wired. Stats frames are console-local (no Last-Event-ID
// resume); record frames reuse the feedserve sequence numbering.
func (c *Console) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if _, err := io.WriteString(w, "retry: 2000\n\n"); err != nil {
		return
	}
	fl.Flush()

	metConsoleSSE.Add(1)
	defer metConsoleSSE.Add(-1)

	// Live-only relay: subscribe at the current snapshot head so the
	// stream starts with what happens next, not a full replay.
	var recordC <-chan feedserve.Event
	if c.cfg.Feed != nil {
		since := uint64(0)
		if snap := c.cfg.Feed.Current(); snap != nil {
			since = snap.LastSeq()
		}
		_, sub := c.cfg.Feed.Subscribe(since)
		defer c.cfg.Feed.Unsubscribe(sub)
		recordC = sub.C
	}

	tick := time.NewTicker(c.cfg.TickEvery)
	defer tick.Stop()
	beat := time.NewTicker(sseHeartbeat)
	defer beat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-recordC:
			if !ok {
				return // cache shut down or this client lagged
			}
			if _, err := w.Write(ev.Frame); err != nil {
				return
			}
			fl.Flush()
		case <-tick.C:
			if err := c.writeStatsFrame(w); err != nil {
				return
			}
			fl.Flush()
		case <-beat.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeStatsFrame emits one "stats" SSE event with the current headline
// state.
func (c *Console) writeStatsFrame(w io.Writer) error {
	now := c.cfg.Clock()
	frame := statsFrame{At: now}
	c.mu.Lock()
	if n := len(c.ring); n > 0 {
		p := c.ring[n-1]
		frame.Point = &p
	}
	c.mu.Unlock()
	if c.cfg.Health != nil {
		healthy := c.cfg.Health.Evaluate(now).Healthy
		frame.Healthy = &healthy
	}
	if c.cfg.Feed != nil {
		if snap := c.cfg.Feed.Current(); snap != nil {
			frame.Feed = &FeedStatus{Records: snap.Len(), LastSeq: snap.LastSeq(), BuiltAt: snap.BuiltAt()}
		}
	}
	data, err := json.Marshal(frame)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, "event: stats\ndata: "); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n\n")
	return err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
