package console

// Docs-drift tests for the console surface: docs/API.md must cover
// every wired /console/api/* route (path and metering name), and
// docs/OPERATIONS.md must document the console section, its flag, and
// the structured metrics endpoint it complements. The api-side docs
// test covers the exiot_console_* metric families (the blank import in
// internal/api/metrics_api_test.go registers them there).

import (
	"os"
	"strings"
	"testing"
)

func readDoc(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(raw)
}

func TestAPIDocCoversConsoleRoutes(t *testing.T) {
	doc := readDoc(t, "../../docs/API.md")
	eps := New(Config{}).Endpoints()
	if len(eps) < 5 {
		t.Fatalf("console route table has only %d endpoints", len(eps))
	}
	for _, ep := range eps {
		if !strings.Contains(doc, "`"+ep.Method+" "+ep.Path+"`") {
			t.Errorf("console route %s %s is wired but not documented in docs/API.md", ep.Method, ep.Path)
		}
		if !strings.Contains(doc, "`"+ep.Name+"`") {
			t.Errorf("console endpoint name %q missing from docs/API.md metering list", ep.Name)
		}
	}
	// The static mount is registered outside the route table but metered
	// like everything else.
	if !strings.Contains(doc, "`console_static`") {
		t.Error("docs/API.md does not document the console_static endpoint name")
	}
}

func TestOperationsDocCoversConsole(t *testing.T) {
	doc := readDoc(t, "../../docs/OPERATIONS.md")
	for _, want := range []string{
		"## Operator console", // the section itself
		"`-console`",          // the flag that enables it
		"`/console/`",         // where it serves
		"`/metrics.json`",     // the structured metrics endpoint
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("docs/OPERATIONS.md is missing %s", want)
		}
	}
}
