/* eX-IoT operator console — no build step, no dependencies.
 * Polls /console/api/* for panel data and rides /console/api/events
 * (SSE) for between-poll stats ticks and live feed records. */
"use strict";

const $ = (sel) => document.querySelector(sel);
const API = "/console/api";
const POLL_MS = 5000;

/* ---------- formatting ---------- */

function fmtInt(n) {
  if (n === undefined || n === null) return "–";
  return Number(n).toLocaleString("en-US");
}

function fmtSecs(s) {
  if (s === undefined || s === null) return "–";
  if (s >= 1) return s.toFixed(2) + "s";
  if (s >= 1e-3) return (s * 1e3).toFixed(1) + "ms";
  return (s * 1e6).toFixed(0) + "µs";
}

function fmtNS(ns) { return fmtSecs(ns / 1e9); }

function fmtTime(iso) {
  if (!iso) return "–";
  const d = new Date(iso);
  if (isNaN(d)) return "–";
  return d.toISOString().replace("T", " ").slice(0, 16);
}

function td(text, cls) {
  const cell = document.createElement("td");
  cell.textContent = text;
  if (cls) cell.className = cls;
  return cell;
}

/* ---------- feed volume chart ---------- */

function polyline(points, color, width) {
  const el = document.createElementNS("http://www.w3.org/2000/svg", "polyline");
  el.setAttribute("points", points.join(" "));
  el.setAttribute("fill", "none");
  el.setAttribute("stroke", color);
  el.setAttribute("stroke-width", width || 1.5);
  return el;
}

function drawVolume(volume) {
  const svg = $("#volume-chart");
  svg.replaceChildren();
  if (!volume || volume.length < 2) {
    $("#volume-sub").textContent = "(collecting samples…)";
    return;
  }
  const W = 800, H = 160, PAD = 4;
  const series = [
    { key: "records",   color: getComputedStyle(document.body).getPropertyValue("--records") },
    { key: "events",    color: getComputedStyle(document.body).getPropertyValue("--events") },
    { key: "flow_ends", color: getComputedStyle(document.body).getPropertyValue("--flowends") },
  ];
  let peak = 1;
  for (const p of volume) {
    for (const s of series) peak = Math.max(peak, p[s.key] || 0);
  }
  const x = (i) => PAD + (i / (volume.length - 1)) * (W - 2 * PAD);
  const y = (v) => H - PAD - (v / peak) * (H - 2 * PAD);
  for (const s of series) {
    const pts = volume.map((p, i) => `${x(i).toFixed(1)},${y(p[s.key] || 0).toFixed(1)}`);
    svg.appendChild(polyline(pts, s.color.trim()));
  }
  const span = (new Date(volume[volume.length - 1].at) - new Date(volume[0].at)) / 1000;
  $("#volume-sub").textContent =
    `(last ${Math.round(span)}s, peak ${fmtInt(peak)}/tick)`;
}

/* ---------- overview panels ---------- */

function renderOverview(ov) {
  const snap = ov.snapshot || {};
  $("#t-records").textContent = fmtInt(snap.total_records);
  $("#t-active").textContent = fmtInt(snap.active_records);
  $("#t-iot").textContent = fmtInt(snap.iot_records);
  $("#t-rph").textContent =
    snap.records_per_hour === undefined ? "–" : snap.records_per_hour.toFixed(1);
  $("#t-seq").textContent = ov.feed ? fmtInt(ov.feed.last_seq) : "–";
  $("#t-sse").textContent = fmtInt(ov.sse_clients);

  drawVolume(ov.volume);

  const stageBody = $("#stage-table tbody");
  stageBody.replaceChildren();
  const stages = (ov.stages || []).concat(ov.event_stages || []);
  for (const st of stages) {
    const tr = document.createElement("tr");
    tr.append(td(st.stage), td(fmtInt(st.count), "num"),
      td(fmtSecs(st.p50), "num"), td(fmtSecs(st.p90), "num"), td(fmtSecs(st.p99), "num"));
    stageBody.appendChild(tr);
  }

  renderHealth(ov.health);
  renderCluster(ov.cluster);
}

function renderHealth(health) {
  const pill = $("#health-pill");
  if (!health) {
    pill.textContent = "health: n/a";
    pill.className = "pill";
  } else {
    pill.textContent = health.healthy ? "healthy" : "UNHEALTHY";
    pill.className = "pill " + (health.healthy ? "ok" : "bad");
  }
  const body = $("#health-table tbody");
  body.replaceChildren();
  for (const c of (health && health.components) || []) {
    const tr = document.createElement("tr");
    tr.append(td(c.name), td(c.status, "status-" + c.status),
      td(fmtInt(c.beats), "num"),
      td(c.last_beat ? c.age_seconds.toFixed(1) + "s" : "–", "num"));
    body.appendChild(tr);
  }
}

function renderCluster(cluster) {
  const body = $("#cluster-table tbody");
  body.replaceChildren();
  const empty = $("#cluster-empty");
  if (!cluster || cluster.length === 0) {
    empty.style.display = "";
    return;
  }
  empty.style.display = "none";
  for (const sh of cluster) {
    const tr = document.createElement("tr");
    tr.append(td(sh.shard), td(fmtInt(sh.seq), "num"),
      td(fmtInt(sh.pending_frames), "num"), td(sh.lag_hours.toFixed(1), "num"));
    body.appendChild(tr);
  }
}

/* ---------- slowest traces ---------- */

function spanWaterfall(detail) {
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  const spans = detail.spans || [];
  const ROW = 18, W = 800, LABEL = 160;
  svg.setAttribute("viewBox", `0 0 ${W} ${spans.length * ROW}`);
  svg.style.height = spans.length * ROW + "px";
  const total = Math.max(detail.total_ns || 1, 1);
  const x = (ns) => LABEL + (ns / total) * (W - LABEL - 10);
  spans.forEach((sp, i) => {
    const label = document.createElementNS("http://www.w3.org/2000/svg", "text");
    label.setAttribute("x", 0);
    label.setAttribute("y", i * ROW + 13);
    label.setAttribute("class", "trace-label");
    label.textContent = `${sp.stage} ${fmtNS(sp.work_ns)}`;
    svg.appendChild(label);
    if (sp.queue_wait_ns > 0) {
      const wait = document.createElementNS("http://www.w3.org/2000/svg", "rect");
      wait.setAttribute("x", x(sp.start_offset_ns - sp.queue_wait_ns));
      wait.setAttribute("y", i * ROW + 3);
      wait.setAttribute("width", Math.max(x(sp.start_offset_ns) - x(sp.start_offset_ns - sp.queue_wait_ns), 1));
      wait.setAttribute("height", ROW - 6);
      wait.setAttribute("class", "trace-wait");
      svg.appendChild(wait);
    }
    const bar = document.createElementNS("http://www.w3.org/2000/svg", "rect");
    bar.setAttribute("x", x(sp.start_offset_ns));
    bar.setAttribute("y", i * ROW + 3);
    bar.setAttribute("width", Math.max(x(sp.start_offset_ns + sp.work_ns) - x(sp.start_offset_ns), 1));
    bar.setAttribute("height", ROW - 6);
    bar.setAttribute("class", "trace-bar");
    svg.appendChild(bar);
  });
  return svg;
}

function renderTraces(data) {
  const root = $("#traces");
  root.replaceChildren();
  const stages = Object.keys(data.stages || {}).sort();
  if (stages.length === 0) {
    root.textContent = "no traces retained (tracing off or no flows yet)";
    return;
  }
  for (const stage of stages) {
    const box = document.createElement("div");
    box.className = "trace-stage";
    const head = document.createElement("div");
    const worst = data.stages[stage][0];
    head.innerHTML = `<span class="stage-name">${stage}</span> — worst ${fmtNS(worst.work_ns)}`;
    box.appendChild(head);
    for (const entry of data.stages[stage].slice(0, 3)) {
      const line = document.createElement("div");
      line.className = "sub";
      line.textContent =
        `trace ${entry.trace.id}  ip ${entry.trace.ip}  total ${fmtNS(entry.trace.total_ns)}`;
      box.appendChild(line);
      box.appendChild(spanWaterfall(entry.trace));
    }
    root.appendChild(box);
  }
}

/* ---------- campaigns ---------- */

function sparkline(history) {
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("class", "spark");
  svg.setAttribute("viewBox", "0 0 120 18");
  if (!history || history.length < 2) return svg;
  const peak = Math.max(...history.map((h) => h.size), 1);
  const pts = history.map((h, i) =>
    `${(i / (history.length - 1)) * 118 + 1},${17 - (h.size / peak) * 15}`);
  svg.appendChild(polyline(pts, "currentColor", 1.5));
  return svg;
}

function topCountries(countries) {
  if (!countries) return "–";
  return Object.entries(countries)
    .sort((a, b) => b[1] - a[1] || a[0].localeCompare(b[0]))
    .slice(0, 3)
    .map(([cc, n]) => `${cc}:${n}`)
    .join(",") || "–";
}

function renderCampaigns(data) {
  $("#campaign-sub").textContent = data.tracked
    ? `tracked as of ${fmtTime(data.as_of)}`
    : "(no tracker wired)";
  const body = $("#campaign-table tbody");
  body.replaceChildren();
  for (const c of data.campaigns || []) {
    const tr = document.createElement("tr");
    tr.append(td(c.id || "–"), td(fmtInt(c.devices), "num"),
      td((c.ports || []).join(",")), td(c.tool || "–"),
      td(topCountries(c.countries)),
      td(fmtTime(c.first_seen)), td(fmtTime(c.last_seen)),
      td(c.status || "–", "status-" + (c.status || "")));
    const trend = document.createElement("td");
    trend.appendChild(sparkline(c.history));
    tr.appendChild(trend);
    body.appendChild(tr);
  }
}

/* ---------- record drill-down ---------- */

$("#record-form").addEventListener("submit", async (e) => {
  e.preventDefault();
  const ip = $("#record-ip").value.trim();
  if (!ip) return;
  const out = $("#record-out");
  const spansSVG = $("#record-spans");
  spansSVG.replaceChildren();
  spansSVG.style.height = "0";
  try {
    const resp = await fetch(`${API}/record/${encodeURIComponent(ip)}`);
    const body = await resp.json();
    out.textContent = JSON.stringify(body, null, 2);
    if (body.trace) {
      const wf = spanWaterfall(body.trace);
      spansSVG.replaceWith(wf);
      wf.id = "record-spans";
    }
  } catch (err) {
    out.textContent = "request failed: " + err;
  }
});

/* ---------- polling + SSE ---------- */

async function poll() {
  try {
    const [ov, traces, campaigns] = await Promise.all([
      fetch(`${API}/overview`).then((r) => r.json()),
      fetch(`${API}/traces`).then((r) => r.json()),
      fetch(`${API}/campaigns`).then((r) => r.json()),
    ]);
    renderOverview(ov);
    renderTraces(traces);
    renderCampaigns(campaigns);
  } catch (err) {
    $("#health-pill").textContent = "poll failed";
    $("#health-pill").className = "pill bad";
  }
}

function connectSSE() {
  const es = new EventSource(`${API}/events`);
  const pill = $("#live-pill");
  es.onopen = () => { pill.textContent = "live: on"; pill.className = "pill ok"; };
  es.onerror = () => { pill.textContent = "live: reconnecting"; pill.className = "pill bad"; };
  es.addEventListener("stats", (ev) => {
    try {
      const frame = JSON.parse(ev.data);
      if (frame.healthy !== undefined && frame.healthy !== null) {
        $("#health-pill").textContent = frame.healthy ? "healthy" : "UNHEALTHY";
        $("#health-pill").className = "pill " + (frame.healthy ? "ok" : "bad");
      }
      if (frame.feed) $("#t-seq").textContent = fmtInt(frame.feed.last_seq);
    } catch { /* malformed frame: next poll corrects the view */ }
  });
  es.addEventListener("record", () => {
    // A feed record changed; refresh the headline numbers soon.
    clearTimeout(connectSSE._t);
    connectSSE._t = setTimeout(poll, 500);
  });
}

poll();
setInterval(poll, POLL_MS);
connectSSE();
