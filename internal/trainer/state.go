package trainer

import (
	"encoding/json"
	"fmt"

	"exiot/internal/features"
	"exiot/internal/ml"
)

// This file is the trainer's durability surface: exporting and
// restoring the sliding example window (plus the retrain counter that
// seeds hyper-parameter search) so a recovered feed server retrains
// exactly as the uninterrupted run would have.

// State is the trainer's exportable state.
type State struct {
	// Examples is the sliding window, in arrival order.
	Examples []Example `json:"examples"`
	// Retrains is the lifetime retrain count; it offsets the search seed
	// (cfg.Seed + retrains), so restoring it keeps future models
	// bit-identical with the uninterrupted run.
	Retrains int `json:"retrains"`
}

// ExportState captures the current window and retrain counter.
func (t *Trainer) ExportState() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := State{Retrains: t.retrains}
	st.Examples = make([]Example, len(t.examples))
	copy(st.Examples, t.examples)
	return st
}

// RestoreState replaces the window and retrain counter with an exported
// state.
func (t *Trainer) RestoreState(st State) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.examples = make([]Example, len(st.Examples))
	copy(t.examples, st.Examples)
	t.retrains = st.Retrains
	metWindowSize.Set(float64(len(t.examples)))
}

// Saved converts a trained model into its archival form.
func (m *TrainedModel) Saved(windowDays int) (*ml.SavedModel, error) {
	normRaw, err := json.Marshal(m.Normalizer)
	if err != nil {
		return nil, fmt.Errorf("trainer: encode normalizer: %w", err)
	}
	return &ml.SavedModel{
		TrainedAt:    m.TrainedAt,
		WindowDays:   windowDays,
		TrainSamples: m.TrainSize,
		TestSamples:  m.TestSize,
		AUC:          m.AUC,
		F1:           m.F1,
		Forest:       m.Forest,
		Normalizer:   normRaw,
	}, nil
}

// FromSaved reconstructs a trained model from its archival form.
func FromSaved(saved *ml.SavedModel) (*TrainedModel, error) {
	if saved == nil {
		return nil, nil
	}
	m := &TrainedModel{
		Forest:    saved.Forest,
		TrainedAt: saved.TrainedAt,
		AUC:       saved.AUC,
		F1:        saved.F1,
		TrainSize: saved.TrainSamples,
		TestSize:  saved.TestSamples,
	}
	if len(saved.Normalizer) > 0 {
		var norm features.Normalizer
		if err := json.Unmarshal(saved.Normalizer, &norm); err != nil {
			return nil, fmt.Errorf("trainer: decode normalizer: %w", err)
		}
		m.Normalizer = &norm
	}
	if m.Normalizer == nil {
		return nil, fmt.Errorf("trainer: archived model %s lacks a normalizer", saved.TrainedAt)
	}
	return m, nil
}
