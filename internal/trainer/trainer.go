// Package trainer implements eX-IoT's Update Classifier module. Flows
// whose banners yielded ground-truth labels accumulate in a sliding
// 14-day window; every 24 hours the module splits the window into 20 %
// training / 80 % testing, fits the normalizer on the training portion,
// searches random-forest hyper-parameters for the model maximizing
// ROC-AUC, archives the timestamped model, and hands the winner to the
// annotate module. It also reproduces the paper's preliminary model
// comparison (random forest vs. linear SVM vs. Gaussian Naive Bayes).
package trainer

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"exiot/internal/features"
	"exiot/internal/ml"
	"exiot/internal/telemetry"
)

// Telemetry handles for the update-classifier stage (see
// docs/OPERATIONS.md).
var (
	metRetrains = telemetry.Default().CounterVec("exiot_retrain_total",
		"Daily retrain cycles attempted, by outcome (ok|starved).", "result")
	metWindowSize = telemetry.Default().Gauge("exiot_trainer_window_size",
		"Labeled examples currently in the sliding training window.")
	metModelAUC = telemetry.Default().Gauge("exiot_model_auc",
		"ROC-AUC of the most recently trained model on its test split.")
)

// Config parameterizes the update-classifier module.
type Config struct {
	// WindowDays is the training window (paper: 14 days).
	WindowDays int
	// TrainFrac is the training split (paper: 20 % train / 80 % test).
	TrainFrac float64
	// SearchIterations bounds the hyper-parameter search (paper: 1000
	// iterations; scale down for laptop runs).
	SearchIterations int
	// MinExamples gates training until the window holds at least this
	// many labeled flows (the paper bootstraps for two weeks before
	// trusting the model). Default 20.
	MinExamples int
	// Seed drives splits and search.
	Seed int64
	// ModelDir, when set, archives every trained model with its
	// timestamp.
	ModelDir string
}

// Default returns the paper's operating point with a laptop-scale search
// budget.
func Default() Config {
	return Config{
		WindowDays:       14,
		TrainFrac:        0.2,
		SearchIterations: 12,
		Seed:             1,
	}
}

// Example is one labeled flow: the raw (un-normalized) feature vector
// plus the banner-derived label.
type Example struct {
	Time  time.Time
	IP    string
	Raw   []float64
	Label int // 1 = IoT
}

// TrainedModel bundles everything the annotate module needs, plus
// evaluation metadata.
type TrainedModel struct {
	Forest     *ml.Forest
	Normalizer *features.Normalizer
	TrainedAt  time.Time
	AUC        float64
	F1         float64
	TrainSize  int
	TestSize   int
}

// Predict scores one raw feature vector.
func (m *TrainedModel) Predict(raw []float64) (label int, score float64) {
	score = m.Forest.PredictProba(m.Normalizer.Apply(raw))
	if score >= 0.5 {
		label = 1
	}
	return label, score
}

// ErrNotEnoughData is returned by Retrain when the window cannot support
// a two-class split.
var ErrNotEnoughData = errors.New("trainer: not enough labeled data in window")

// Trainer accumulates labeled examples and retrains on demand.
type Trainer struct {
	cfg Config

	mu       sync.Mutex
	examples []Example
	retrains int
}

// New creates a trainer.
func New(cfg Config) *Trainer {
	if cfg.WindowDays <= 0 {
		cfg.WindowDays = 14
	}
	if cfg.TrainFrac <= 0 || cfg.TrainFrac >= 1 {
		cfg.TrainFrac = 0.2
	}
	if cfg.SearchIterations <= 0 {
		cfg.SearchIterations = 12
	}
	if cfg.MinExamples <= 0 {
		cfg.MinExamples = 20
	}
	return &Trainer{cfg: cfg}
}

// Add appends one labeled example to the window.
func (t *Trainer) Add(ex Example) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.examples = append(t.examples, ex)
}

// Snapshot returns a copy of the retained examples (evaluation
// harnesses).
func (t *Trainer) Snapshot() []Example {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Example, len(t.examples))
	copy(out, t.examples)
	return out
}

// WindowSize returns the number of retained examples.
func (t *Trainer) WindowSize() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.examples)
}

// evict drops examples older than the window. Caller holds the lock.
func (t *Trainer) evict(now time.Time) {
	cutoff := now.Add(-time.Duration(t.cfg.WindowDays) * 24 * time.Hour)
	keep := t.examples[:0]
	for _, ex := range t.examples {
		if !ex.Time.Before(cutoff) {
			keep = append(keep, ex)
		}
	}
	t.examples = keep
}

// snapshotDataset evicts old examples and builds the dataset. Caller
// holds the lock.
func (t *Trainer) snapshotDataset(now time.Time) ml.Dataset {
	t.evict(now)
	var ds ml.Dataset
	for _, ex := range t.examples {
		ds.Append(ex.Raw, ex.Label)
	}
	return ds
}

// Retrain runs one daily training cycle as of now.
func (t *Trainer) Retrain(now time.Time) (*TrainedModel, error) {
	span := telemetry.Default().StartSpan("retrain")
	defer span.End()
	t.mu.Lock()
	ds := t.snapshotDataset(now)
	t.retrains++
	seed := t.cfg.Seed + int64(t.retrains)
	metWindowSize.Set(float64(len(t.examples)))
	t.mu.Unlock()

	neg, pos := ds.ClassCounts()
	if ds.Len() < t.cfg.MinExamples || neg == 0 || pos == 0 {
		metRetrains.With("starved").Inc()
		return nil, fmt.Errorf("%w: %d samples (%d IoT / %d non-IoT)", ErrNotEnoughData, ds.Len(), pos, neg)
	}

	// The paper's 20/80 split assumes deployment-scale volume (100k+
	// labeled flows per day). At simulation scale we floor the training
	// portion at 30 samples, converging to the paper's split as the
	// window grows.
	frac := t.cfg.TrainFrac
	if float64(ds.Len())*frac < 30 {
		frac = 30 / float64(ds.Len())
		if frac > 0.5 {
			frac = 0.5
		}
	}
	rawTrain, rawTest := ds.Split(frac, seed)
	norm, err := features.FitNormalizer(rawTrain.X)
	if err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}
	train := ml.Dataset{X: norm.ApplyAll(rawTrain.X), Y: rawTrain.Y}
	test := ml.Dataset{X: norm.ApplyAll(rawTest.X), Y: rawTest.Y}

	forest, results := ml.SearchForest(&train, &test, t.cfg.SearchIterations, seed)
	if forest == nil {
		return nil, errors.New("trainer: search produced no model")
	}
	best := results[0]
	for _, r := range results {
		if r.AUC > best.AUC {
			best = r
		}
	}
	m := &TrainedModel{
		Forest:     forest,
		Normalizer: norm,
		TrainedAt:  now,
		AUC:        best.AUC,
		F1:         best.F1,
		TrainSize:  train.Len(),
		TestSize:   test.Len(),
	}
	if t.cfg.ModelDir != "" {
		saved, err := m.Saved(t.cfg.WindowDays)
		if err != nil {
			return nil, err
		}
		if _, err := ml.SaveModel(t.cfg.ModelDir, saved); err != nil {
			return nil, fmt.Errorf("trainer: archive: %w", err)
		}
	}
	metRetrains.With("ok").Inc()
	metModelAUC.Set(m.AUC)
	return m, nil
}

// LoadLatest reconstructs the most recently archived model from dir so a
// restarted feed server resumes classification without retraining — the
// paper archives every daily model "to make the results easily
// reproducible".
func LoadLatest(dir string) (*TrainedModel, error) {
	saved, err := ml.LatestModel(dir)
	if err != nil {
		return nil, err
	}
	return FromSaved(saved)
}

// ModelComparison is one row of the paper's preliminary RF/SVM/GNB
// comparison.
type ModelComparison struct {
	Name string  `json:"name"`
	AUC  float64 `json:"auc"`
	F1   float64 `json:"f1"`
}

// CompareModels evaluates the three candidate model families on the
// current window and returns their ROC-AUC and F1 — the experiment that
// motivated choosing the random forest.
func (t *Trainer) CompareModels(now time.Time) ([]ModelComparison, error) {
	t.mu.Lock()
	ds := t.snapshotDataset(now)
	seed := t.cfg.Seed
	t.mu.Unlock()

	neg, pos := ds.ClassCounts()
	if ds.Len() < 20 || neg == 0 || pos == 0 {
		return nil, fmt.Errorf("%w: %d samples", ErrNotEnoughData, ds.Len())
	}
	rawTrain, rawTest := ds.Split(0.5, seed)
	norm, err := features.FitNormalizer(rawTrain.X)
	if err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}
	train := ml.Dataset{X: norm.ApplyAll(rawTrain.X), Y: rawTrain.Y}
	test := ml.Dataset{X: norm.ApplyAll(rawTest.X), Y: rawTest.Y}

	eval := func(name string, c ml.Classifier) ModelComparison {
		auc := ml.ROCAUC(ml.Scores(c, &test), test.Y)
		_, _, f1 := ml.PrecisionRecallF1(ml.Predictions(c, &test), test.Y)
		return ModelComparison{Name: name, AUC: auc, F1: f1}
	}
	rf := ml.TrainForest(&train, ml.ForestConfig{NumTrees: 50, Seed: seed})
	svm := ml.TrainSVM(&train, ml.SVMConfig{Seed: seed})
	gnb := ml.TrainGNB(&train)
	return []ModelComparison{
		eval("RandomForest", rf),
		eval("LinearSVM", svm),
		eval("GaussianNB", gnb),
	}, nil
}
