package trainer

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"exiot/internal/features"
	"exiot/internal/ml"
)

var t0 = time.Date(2020, 12, 9, 0, 0, 0, 0, time.UTC)

// synthExample builds a linearly-shifted raw vector per class so the
// models have signal to find.
func synthExample(rng *rand.Rand, label int, ts time.Time) Example {
	raw := make([]float64, features.Dim)
	shift := 0.0
	if label == 1 {
		shift = 2.0
	}
	for i := range raw {
		raw[i] = shift + rng.NormFloat64()
	}
	return Example{Time: ts, IP: "x", Raw: raw, Label: label}
}

func fillTrainer(t *Trainer, rng *rand.Rand, n int, ts time.Time) {
	for i := 0; i < n; i++ {
		t.Add(synthExample(rng, i%2, ts))
	}
}

func TestRetrainProducesUsableModel(t *testing.T) {
	tr := New(Config{SearchIterations: 3, Seed: 1})
	rng := rand.New(rand.NewSource(1))
	fillTrainer(tr, rng, 300, t0)
	m, err := tr.Retrain(t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if m.AUC < 0.95 {
		t.Errorf("AUC = %.3f on separable data, want ≈1", m.AUC)
	}
	if m.TrainSize == 0 || m.TestSize == 0 {
		t.Errorf("split sizes = %d/%d", m.TrainSize, m.TestSize)
	}
	// 20/80 split shape.
	frac := float64(m.TrainSize) / float64(m.TrainSize+m.TestSize)
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("train fraction = %.2f, want ≈0.20", frac)
	}
	// The model predicts the right way around.
	iot := synthExample(rng, 1, t0)
	non := synthExample(rng, 0, t0)
	if lbl, score := m.Predict(iot.Raw); lbl != 1 || score < 0.5 {
		t.Errorf("IoT example predicted %d (%.2f)", lbl, score)
	}
	if lbl, _ := m.Predict(non.Raw); lbl != 0 {
		t.Errorf("non-IoT example predicted %d", lbl)
	}
}

func TestRetrainRequiresBothClasses(t *testing.T) {
	tr := New(Config{})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		tr.Add(synthExample(rng, 1, t0))
	}
	if _, err := tr.Retrain(t0.Add(time.Hour)); !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("single-class retrain error = %v, want ErrNotEnoughData", err)
	}
	empty := New(Config{})
	if _, err := empty.Retrain(t0); !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("empty retrain error = %v", err)
	}
}

func TestWindowEviction(t *testing.T) {
	tr := New(Config{WindowDays: 14, SearchIterations: 2, Seed: 3})
	rng := rand.New(rand.NewSource(3))
	// 100 stale examples 20 days old, 100 fresh.
	fillTrainer(tr, rng, 100, t0.Add(-20*24*time.Hour))
	fillTrainer(tr, rng, 100, t0.Add(-time.Hour))
	if tr.WindowSize() != 200 {
		t.Fatalf("window = %d before eviction", tr.WindowSize())
	}
	if _, err := tr.Retrain(t0); err != nil {
		t.Fatal(err)
	}
	if tr.WindowSize() != 100 {
		t.Errorf("window = %d after eviction, want 100", tr.WindowSize())
	}
}

func TestModelArchiving(t *testing.T) {
	dir := t.TempDir()
	tr := New(Config{SearchIterations: 2, Seed: 4, ModelDir: dir})
	rng := rand.New(rand.NewSource(4))
	fillTrainer(tr, rng, 200, t0)
	m, err := tr.Retrain(t0.Add(24 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := loadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("no archived model")
	}
	if !loaded.TrainedAt.Equal(m.TrainedAt) || loaded.WindowDays != 14 {
		t.Errorf("archive metadata = %+v", loaded)
	}
}

func TestCompareModelsRFWins(t *testing.T) {
	// E9: on XOR-structured data the random forest must beat the linear
	// SVM, as in the paper's preliminary comparison.
	tr := New(Config{Seed: 5})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 600; i++ {
		// XOR in two dims plus a little noise: non-linear structure a
		// linear SVM cannot express (raw vectors need not be 120-dim;
		// the trainer works on any consistent width).
		raw := make([]float64, 6)
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		raw[0], raw[1] = a, b
		for j := 2; j < len(raw); j++ {
			raw[j] = rng.NormFloat64() * 0.1
		}
		label := 0
		if (a > 0) != (b > 0) {
			label = 1
		}
		tr.Add(Example{Time: t0, IP: "x", Raw: raw, Label: label})
	}
	rows, err := tr.CompareModels(t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ModelComparison{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	rf, svm := byName["RandomForest"], byName["LinearSVM"]
	if rf.AUC <= svm.AUC {
		t.Errorf("RF AUC (%.3f) should beat linear SVM (%.3f)", rf.AUC, svm.AUC)
	}
	if rf.AUC < 0.9 {
		t.Errorf("RF AUC = %.3f, want ≥0.9", rf.AUC)
	}
}

func TestCompareModelsNotEnoughData(t *testing.T) {
	tr := New(Config{})
	if _, err := tr.CompareModels(t0); !errors.Is(err, ErrNotEnoughData) {
		t.Errorf("error = %v, want ErrNotEnoughData", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	tr := New(Config{})
	if tr.cfg.WindowDays != 14 || tr.cfg.TrainFrac != 0.2 || tr.cfg.SearchIterations != 12 {
		t.Errorf("defaults = %+v", tr.cfg)
	}
	d := Default()
	if d.WindowDays != 14 || d.TrainFrac != 0.2 {
		t.Errorf("Default() = %+v", d)
	}
}

func loadLatest(dir string) (*ml.SavedModel, error) { return ml.LatestModel(dir) }

func TestLoadLatestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := New(Config{SearchIterations: 2, Seed: 9, ModelDir: dir})
	rng := rand.New(rand.NewSource(9))
	fillTrainer(tr, rng, 200, t0)
	orig, err := tr.Retrain(t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == nil {
		t.Fatal("no model loaded")
	}
	// The reconstructed model must score identically to the original.
	for i := 0; i < 20; i++ {
		ex := synthExample(rng, i%2, t0)
		l1, s1 := orig.Predict(ex.Raw)
		l2, s2 := loaded.Predict(ex.Raw)
		if l1 != l2 || s1 != s2 {
			t.Fatalf("loaded model diverges: (%d,%.4f) vs (%d,%.4f)", l1, s1, l2, s2)
		}
	}
	// Empty dir → nil model, no error.
	m, err := LoadLatest(t.TempDir())
	if err != nil || m != nil {
		t.Errorf("empty dir: %v, %v", m, err)
	}
}
