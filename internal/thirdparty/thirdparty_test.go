package thirdparty

import (
	"testing"
	"time"

	"exiot/internal/feed"
	"exiot/internal/packet"
	"exiot/internal/simnet"
)

func bigWorld(t *testing.T) (*simnet.World, time.Time, time.Time) {
	t.Helper()
	cfg := simnet.DefaultConfig(77)
	cfg.NumInfected = 2000
	cfg.NumNonIoT = 300
	cfg.NumResearch = 8
	cfg.NumMisconfig = 50
	cfg.NumBackscat = 20
	cfg.Days = 2
	w := simnet.NewWorld(cfg)
	return w, w.Start(), w.Start().Add(48 * time.Hour)
}

// truthSets splits active hosts into IoT / all-scanner ground-truth sets.
func truthSets(w *simnet.World, from, to time.Time) (iot, all feed.IndicatorSet) {
	iot = make(feed.IndicatorSet)
	all = make(feed.IndicatorSet)
	for _, h := range w.Hosts() {
		if _, active := h.FirstActiveIn(from, to); !active {
			continue
		}
		switch h.Kind {
		case simnet.KindInfectedIoT:
			iot.Add(h.IP.String())
			all.Add(h.IP.String())
		case simnet.KindNonIoTScanner, simnet.KindResearchScanner:
			all.Add(h.IP.String())
		}
	}
	return iot, all
}

func TestGreyNoisePartialIoTCoverage(t *testing.T) {
	w, from, to := bigWorld(t)
	gn := BuildGreyNoise(w, from, to, 1)
	iot, all := truthSets(w, from, to)

	covered := gn.IndicatorSet().Intersect(iot)
	frac := float64(covered) / float64(iot.Len())
	// Paper: GreyNoise held ~21 % of eX-IoT's IoT indicators.
	if frac < 0.08 || frac > 0.45 {
		t.Errorf("GreyNoise IoT coverage = %.3f, want ≈0.2", frac)
	}
	// Overall feed is much smaller than the telescope's view.
	if gn.Len() >= all.Len() {
		t.Errorf("GreyNoise (%d) should see less than the telescope truth (%d)", gn.Len(), all.Len())
	}
	// Mirai tags exist and are a subset.
	mirai := gn.MiraiSet()
	if mirai.Len() == 0 {
		t.Fatal("no Mirai tags")
	}
	if mirai.Len() > covered {
		t.Errorf("Mirai tags (%d) exceed observed IoT (%d)", mirai.Len(), covered)
	}
	for ip := range mirai {
		if !gn.Contains(ip) {
			t.Fatal("Mirai tag outside feed")
		}
	}
	cls := gn.Classifications()
	if cls["malicious"] == 0 || cls["unknown"] == 0 {
		t.Errorf("classification mix = %v", cls)
	}
}

func TestGreyNoiseDeterministic(t *testing.T) {
	w, from, to := bigWorld(t)
	a := BuildGreyNoise(w, from, to, 5)
	b := BuildGreyNoise(w, from, to, 5)
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic: %d vs %d", a.Len(), b.Len())
	}
	for ip := range a.obs {
		if !b.Contains(ip) {
			t.Fatal("non-deterministic membership")
		}
	}
}

func TestDShieldNoIoTFocus(t *testing.T) {
	w, from, to := bigWorld(t)
	ds := BuildDShield(w, from, to, 2)
	iot, _ := truthSets(w, from, to)
	if ds.Len() == 0 {
		t.Fatal("empty DShield feed")
	}
	frac := float64(ds.IndicatorSet().Intersect(iot)) / float64(iot.Len())
	// Paper: DShield held only ~6 % of eX-IoT's IoT indicators.
	if frac > 0.25 {
		t.Errorf("DShield IoT coverage = %.3f; too IoT-aware", frac)
	}
	if ds.MiraiSet().Len() != 0 {
		t.Error("DShield must not carry Mirai tags")
	}
}

func TestBadPacketsIoTOnly(t *testing.T) {
	w, from, to := bigWorld(t)
	bp := BuildBadPackets(w, from, to, 3)
	if bp.Len() == 0 {
		t.Fatal("empty Bad Packets feed")
	}
	for ip := range bp.obs {
		h, ok := w.HostByIP(mustParse(t, ip))
		if !ok || h.Kind != simnet.KindInfectedIoT {
			t.Fatalf("non-IoT host %s in honeypot feed", ip)
		}
	}
	iot, _ := truthSets(w, from, to)
	frac := float64(bp.IndicatorSet().Intersect(iot)) / float64(iot.Len())
	// Honeypots validate a majority of IoT scanners (paper ≈70 % overall).
	if frac < 0.45 || frac > 0.9 {
		t.Errorf("Bad Packets IoT coverage = %.3f, want ≈0.65", frac)
	}
}

func TestNERDCzechFocus(t *testing.T) {
	w, from, to := bigWorld(t)
	nerd := BuildNERD(w, from, to, 4)
	reg := w.Registry()
	cz, czCovered := 0, 0
	for _, h := range w.Hosts() {
		if _, active := h.FirstActiveIn(from, to); !active {
			continue
		}
		if h.Kind != simnet.KindInfectedIoT && h.Kind != simnet.KindNonIoTScanner {
			continue
		}
		info, ok := reg.Lookup(h.IP)
		if !ok || info.CountryCode != "CZ" {
			continue
		}
		cz++
		if nerd.Contains(h.IP.String()) {
			czCovered++
		}
	}
	if cz == 0 {
		t.Skip("no Czech scanners this seed")
	}
	frac := float64(czCovered) / float64(cz)
	if frac < 0.6 {
		t.Errorf("NERD Czech coverage = %.3f, want ≈0.85", frac)
	}
}

func TestValidationRateShape(t *testing.T) {
	w, from, to := bigWorld(t)
	iot, _ := truthSets(w, from, to)
	bp := BuildBadPackets(w, from, to, 6)
	nerd := BuildNERD(w, from, to, 6)
	rate := ValidationRate(iot, bp, nerd)
	// Paper: ≈70 % of eX-IoT IoT detections validated across both
	// sources.
	if rate < 0.5 || rate > 0.92 {
		t.Errorf("validation rate = %.3f, want ≈0.7", rate)
	}
	if ValidationRate(feed.IndicatorSet{}, bp) != 0 {
		t.Error("empty reference should validate at 0")
	}
}

func TestAppearancesLagActivity(t *testing.T) {
	w, from, to := bigWorld(t)
	gn := BuildGreyNoise(w, from, to, 7)
	for ip, firstSeen := range gn.Appearances() {
		h, ok := w.HostByIP(mustParse(t, ip))
		if !ok {
			t.Fatalf("unknown host %s", ip)
		}
		activeAt, _ := h.FirstActiveIn(from, to)
		lag := firstSeen.Sub(activeAt)
		if lag < 6*time.Hour || lag > 14*time.Hour {
			t.Errorf("GreyNoise indexing lag = %v, want 6-14 h", lag)
		}
	}
}

func mustParse(t *testing.T, s string) packet.IP {
	t.Helper()
	parsed, err := packet.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}
