// Package thirdparty simulates the external CTI feeds the paper compares
// and validates eX-IoT against: GreyNoise (commercial sensor network with
// Mirai tagging), DShield (crowd-sourced IDS reports, no IoT labels),
// Bad Packets (distributed IoT honeypots), and the Czech CSIRT's NERD
// reputation database. Each observer watches the same simulated world
// through its real-world vantage limits — smaller sensor footprints,
// rate-dependent visibility, port biases, country focus, and indexing
// delays — so the comparison metrics (Tables III and IV) and the
// validation rates (§V-A) take the paper's shape for structural reasons,
// not by construction.
package thirdparty

import (
	"math"
	"math/rand"
	"time"

	"exiot/internal/feed"
	"exiot/internal/simnet"
)

// Observation is one indicator as a third-party feed indexed it.
type Observation struct {
	IP        string
	FirstSeen time.Time
	// MiraiTag marks GreyNoise's "Mirai" / "Mirai variant" tag.
	MiraiTag bool
	// Classification is GreyNoise's malicious / unknown / benign verdict.
	Classification string
	// ActiveDays is how many days of the observation window the source
	// was active — each one yields a daily record update in the feed.
	ActiveDays int
}

// Feed is the materialized view of one third-party source.
type Feed struct {
	Name string
	obs  map[string]Observation
}

// Len returns the number of indexed indicators.
func (f *Feed) Len() int { return len(f.obs) }

// Contains reports whether ip is indexed.
func (f *Feed) Contains(ip string) bool {
	_, ok := f.obs[ip]
	return ok
}

// IndicatorSet returns all indexed indicators.
func (f *Feed) IndicatorSet() feed.IndicatorSet {
	s := make(feed.IndicatorSet, len(f.obs))
	for ip := range f.obs {
		s.Add(ip)
	}
	return s
}

// MiraiSet returns the indicators tagged Mirai / Mirai variant.
func (f *Feed) MiraiSet() feed.IndicatorSet {
	s := make(feed.IndicatorSet)
	for ip, o := range f.obs {
		if o.MiraiTag {
			s.Add(ip)
		}
	}
	return s
}

// DailyRecords returns the feed's average new/updated records per day:
// every observed source contributes one record per active day, matching
// how GreyNoise and DShield refresh entries daily (the paper: "12,282
// have updated in the same time period").
func (f *Feed) DailyRecords(days int) float64 {
	if days <= 0 {
		days = 1
	}
	total := 0
	for _, o := range f.obs {
		d := o.ActiveDays
		if d <= 0 {
			d = 1
		}
		total += d
	}
	return float64(total) / float64(days)
}

// MiraiDailyRecords is DailyRecords restricted to Mirai-tagged sources.
func (f *Feed) MiraiDailyRecords(days int) float64 {
	if days <= 0 {
		days = 1
	}
	total := 0
	for _, o := range f.obs {
		if !o.MiraiTag {
			continue
		}
		d := o.ActiveDays
		if d <= 0 {
			d = 1
		}
		total += d
	}
	return float64(total) / float64(days)
}

// activeDays counts the days in [from, to) during which h scans.
func activeDays(h *simnet.Host, from, to time.Time) int {
	n := 0
	for day := from; day.Before(to); day = day.Add(24 * time.Hour) {
		end := day.Add(24 * time.Hour)
		if end.After(to) {
			end = to
		}
		if h.ActiveDuring(day, end) {
			n++
		}
	}
	return n
}

// Appearances returns indicator → first-seen for latency analysis.
func (f *Feed) Appearances() map[string]time.Time {
	out := make(map[string]time.Time, len(f.obs))
	for ip, o := range f.obs {
		out[ip] = o.FirstSeen
	}
	return out
}

// Classifications tallies GreyNoise-style verdicts.
func (f *Feed) Classifications() map[string]int {
	out := map[string]int{}
	for _, o := range f.obs {
		if o.Classification != "" {
			out[o.Classification]++
		}
	}
	return out
}

// rateVisibility is the probability a sensor network of limited footprint
// indexes a scanner: a logistic in the scanner's rate. r50 is the rate at
// which visibility reaches 50 %.
func rateVisibility(rate, r50, steep float64) float64 {
	if rate <= 0 {
		return 0
	}
	return 1 / (1 + math.Pow(r50/rate, steep))
}

// BuildGreyNoise materializes GreyNoise's view of the world over
// [from, to): a sensor net far smaller than a /8, so slow IoT scanners
// are frequently missed; Mirai-fingerprint sources get tagged; indexing
// lags hours behind first activity (the paper measured ≈10 h and a
// misattributed tool).
func BuildGreyNoise(w *simnet.World, from, to time.Time, seed int64) *Feed {
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	f := &Feed{Name: "GreyNoise", obs: make(map[string]Observation)}
	for _, h := range w.Hosts() {
		first, active := h.FirstActiveIn(from, to)
		if !active {
			continue
		}
		var p float64
		switch h.Kind {
		case simnet.KindInfectedIoT:
			p = rateVisibility(h.Rate(), 140, 1.2)
		case simnet.KindNonIoTScanner, simnet.KindResearchScanner:
			p = rateVisibility(h.Rate(), 60, 1.5)
		default:
			continue // honeypot-style sensors ignore bursts/backscatter
		}
		if rng.Float64() >= p {
			continue
		}
		o := Observation{
			IP:         h.IP.String(),
			FirstSeen:  first.Add(time.Duration(6+rng.Float64()*8) * time.Hour),
			ActiveDays: activeDays(h, from, to),
		}
		if h.SeqEqualsDst() && rng.Float64() < 0.9 {
			o.MiraiTag = true
		}
		switch {
		case h.Kind == simnet.KindResearchScanner:
			o.Classification = "benign"
		case rng.Float64() < 0.4:
			o.Classification = "malicious"
		default:
			o.Classification = "unknown"
		}
		f.obs[o.IP] = o
	}
	return f
}

// dshieldPorts are the ports volunteer IDS sensors most often report.
var dshieldPorts = map[uint16]bool{
	22: true, 23: true, 80: true, 443: true, 445: true,
	3389: true, 1433: true, 5900: true, 8080: true,
}

// BuildDShield materializes DShield's crowd-sourced view: rate-driven,
// biased toward classic IDS-monitored ports, and with no IoT awareness
// at all.
func BuildDShield(w *simnet.World, from, to time.Time, seed int64) *Feed {
	rng := rand.New(rand.NewSource(seed ^ 0x51ed2701))
	f := &Feed{Name: "DShield", obs: make(map[string]Observation)}
	for _, h := range w.Hosts() {
		first, active := h.FirstActiveIn(from, to)
		if !active {
			continue
		}
		var p float64
		switch h.Kind {
		case simnet.KindInfectedIoT:
			p = rateVisibility(h.Rate(), 900, 1.1)
		case simnet.KindNonIoTScanner, simnet.KindResearchScanner:
			p = rateVisibility(h.Rate(), 350, 1.4)
		default:
			continue
		}
		if !h.TargetsAnyPort(dshieldPorts) {
			p *= 0.25
		}
		// Crowd-sourced reports aggregate slowly: short one-off scans
		// rarely accumulate enough sensor hits to be indexed (the paper's
		// 3-hour test scan never appeared in DShield).
		if h.ActiveDurationIn(from, to) < 5*time.Hour {
			p *= 0.15
		}
		if rng.Float64() >= p {
			continue
		}
		f.obs[h.IP.String()] = Observation{
			IP:         h.IP.String(),
			FirstSeen:  first.Add(time.Duration(12+rng.Float64()*24) * time.Hour),
			ActiveDays: activeDays(h, from, to),
		}
	}
	return f
}

// honeypotPorts are the services IoT honeypots mimic.
var honeypotPorts = map[uint16]bool{
	23: true, 2323: true, 80: true, 81: true, 8080: true,
	5555: true, 7547: true, 37215: true,
}

// BuildBadPackets materializes Bad Packets' honeypot view: large-scale
// IoT-specific honeypots catch a majority of IoT scanners that target the
// mimicked services, and some malware actively avoids honeypots.
func BuildBadPackets(w *simnet.World, from, to time.Time, seed int64) *Feed {
	rng := rand.New(rand.NewSource(seed ^ 0x0bad9ac8))
	f := &Feed{Name: "BadPackets", obs: make(map[string]Observation)}
	for _, h := range w.Hosts() {
		first, active := h.FirstActiveIn(from, to)
		if !active {
			continue
		}
		if h.Kind != simnet.KindInfectedIoT {
			continue // IoT-focused CTI
		}
		p := 0.15
		if h.TargetsAnyPort(honeypotPorts) {
			p = 0.72
		}
		if rng.Float64() >= p {
			continue
		}
		f.obs[h.IP.String()] = Observation{
			IP:        h.IP.String(),
			FirstSeen: first.Add(time.Duration(1+rng.Float64()*6) * time.Hour),
		}
	}
	return f
}

// BuildNERD materializes the Czech CSIRT's NERD reputation database:
// near-complete coverage of scanners hosted in the Czech Republic, thin
// coverage elsewhere (aggregated foreign alerts).
func BuildNERD(w *simnet.World, from, to time.Time, seed int64) *Feed {
	rng := rand.New(rand.NewSource(seed ^ 0x00c21e8d))
	reg := w.Registry()
	f := &Feed{Name: "NERD", obs: make(map[string]Observation)}
	for _, h := range w.Hosts() {
		first, active := h.FirstActiveIn(from, to)
		if !active {
			continue
		}
		switch h.Kind {
		case simnet.KindInfectedIoT, simnet.KindNonIoTScanner, simnet.KindResearchScanner:
		default:
			continue
		}
		p := 0.10
		if info, ok := reg.Lookup(h.IP); ok && info.CountryCode == "CZ" {
			p = 0.85
		}
		if rng.Float64() >= p {
			continue
		}
		f.obs[h.IP.String()] = Observation{
			IP:        h.IP.String(),
			FirstSeen: first.Add(time.Duration(2+rng.Float64()*10) * time.Hour),
		}
	}
	return f
}

// ValidationRate computes the fraction of reference indicators confirmed
// by at least one validating feed — the paper's §V-A cross-validation.
func ValidationRate(ref feed.IndicatorSet, validators ...*Feed) float64 {
	if ref.Len() == 0 {
		return 0
	}
	confirmed := 0
	for ip := range ref {
		for _, v := range validators {
			if v.Contains(ip) {
				confirmed++
				break
			}
		}
	}
	return float64(confirmed) / float64(ref.Len())
}
