// Package annotate implements eX-IoT's Annotate Module: it pre-processes
// each organized flow into the 120-dimensional Table II feature vector,
// applies the latest classifier to label the source IoT / non-IoT with a
// prediction score, and enriches the resulting CTI record with
// geolocation, WHOIS, rDNS, scan-tool fingerprints, per-flow traffic
// statistics, and the Benign flag for known research scanners.
package annotate

import (
	"fmt"
	"math"
	"sync"
	"time"

	"exiot/internal/device"
	"exiot/internal/enrich"
	"exiot/internal/features"
	"exiot/internal/feed"
	"exiot/internal/ml"
	"exiot/internal/organizer"
	"exiot/internal/recog"
	"exiot/internal/telemetry"
	"exiot/internal/trace"
	"exiot/internal/zmap"
)

// Telemetry handles for the classification stage (see
// docs/OPERATIONS.md): one count per labeled record, split by which
// authority produced the label — a banner fingerprint rule, the
// retrained random forest, or neither (bootstrap).
var metClassified = telemetry.Default().CounterVec("exiot_classify_records_total",
	"Flows labeled IoT/non-IoT, by label source (banner|model|none).", "source")

// Label sources beyond those in the feed package.
const (
	// SourceNone marks records emitted before any model has trained
	// (bootstrap period).
	SourceNone = "none"
)

// Model is the classifier bundle the annotate module applies: the
// trained forest plus the training-anchored normalizer.
type Model struct {
	Classifier ml.Classifier
	Normalizer *features.Normalizer
}

// Annotator labels and enriches organized flows.
type Annotator struct {
	enricher *enrich.Enricher

	mu    sync.RWMutex
	model *Model
}

// New creates an annotator; the model is installed later by the
// update-classifier module.
func New(enricher *enrich.Enricher) *Annotator {
	return &Annotator{enricher: enricher}
}

// SetModel atomically installs a new classifier (the daily retrain).
func (a *Annotator) SetModel(m *Model) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.model = m
}

// HasModel reports whether a classifier is installed.
func (a *Annotator) HasModel() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.model != nil
}

// Annotate turns one organized batch (plus its active-measurement
// results and optional banner fingerprint) into a CTI record. The banner
// label, when present, takes precedence over the model prediction — it is
// the ground truth the model itself trains on.
func (a *Annotator) Annotate(b *organizer.Batch, scan *zmap.HostResult, match *recog.Match) (feed.Record, error) {
	jobs := []Job{{Batch: b, Scan: scan, Match: match}}
	recs, errs := a.AnnotateBatch(jobs, 1)
	return recs[0], errs[0]
}

// Job is one flow awaiting annotation.
type Job struct {
	Batch *organizer.Batch
	Scan  *zmap.HostResult
	Match *recog.Match
	// Raw is the precomputed 120-dim feature vector; when nil,
	// AnnotateBatch computes it and fills it in, so callers can reuse it
	// (the trainer retains it for banner-labeled flows).
	Raw []float64
	// RawErr carries a failed precomputation; the job is rejected with
	// it, exactly as if the computation had failed here.
	RawErr error
	// PortsProbed is the active-measurement port count per host
	// (provenance; 0 when the caller has no scanner).
	PortsProbed int
	// Trace is the flow's live trace (nil when untraced). Annotation
	// records "annotate" and "enrich" spans on it; the record's
	// provenance is built either way.
	Trace *trace.Flow
}

// AnnotateBatch annotates many flows at once: feature extraction,
// banner labeling, and enrichment fan out across up to workers
// goroutines, and flows without a banner label are scored through the
// classifier's batch path in one call. Record i is exactly what
// Annotate(jobs[i]) would produce — the model is read once for the whole
// batch (retrains never happen mid-flush), every per-record computation
// is pure, and results land by index — so the parallel feed path stays
// byte-identical to the serial one.
func (a *Annotator) AnnotateBatch(jobs []Job, workers int) ([]feed.Record, []error) {
	recs := make([]feed.Record, len(jobs))
	errs := make([]error, len(jobs))
	needModel := make([]bool, len(jobs))
	a.mu.RLock()
	m := a.model
	a.mu.RUnlock()

	prepare := func(i int) {
		j := &jobs[i]
		var annStart time.Time
		if j.Trace != nil {
			annStart = time.Now()
		}
		if j.RawErr != nil {
			errs[i] = fmt.Errorf("annotate %s: %w", j.Batch.IPString, j.RawErr)
			return
		}
		if j.Raw == nil {
			raw, err := features.RawVector(j.Batch.Sample)
			if err != nil {
				errs[i] = fmt.Errorf("annotate %s: %w", j.Batch.IPString, err)
				return
			}
			j.Raw = raw
		}
		rec := feed.Record{
			IP:         j.Batch.IPString,
			FirstSeen:  j.Batch.FirstSeen,
			DetectedAt: j.Batch.DetectedAt,
			LastSeen:   lastSeen(j.Batch),
			Active:     true,
		}
		if j.Scan != nil {
			rec.OpenPorts = j.Scan.OpenPorts
			rec.Banners = j.Scan.Banners
		}
		switch {
		case j.Match != nil:
			metClassified.With("banner").Inc()
			rec.LabelSource = feed.SourceBanner
			if j.Match.IoT {
				rec.Label = feed.LabelIoT
				rec.Score = 1
			} else {
				rec.Label = feed.LabelNonIoT
				rec.Score = 0
			}
			rec.Vendor = j.Match.Vendor
			rec.DeviceType = j.Match.Type
			rec.Model = j.Match.Model
			rec.Firmware = j.Match.Firmware
		case m != nil:
			needModel[i] = true
		default:
			// Bootstrap: no model yet; stay conservative.
			metClassified.With("none").Inc()
			rec.Label = feed.LabelNonIoT
			rec.Score = 0.5
			rec.LabelSource = SourceNone
		}
		var enrichStart time.Time
		if j.Trace != nil {
			enrichStart = time.Now()
		}
		a.enricher.Annotate(&rec, j.Batch.IP, j.Batch.Sample)
		sources := enrichSources(&rec)
		rec.Provenance = &feed.Provenance{
			TraceID:       provenanceID(j.Batch.TraceID),
			TriggerHour:   j.Batch.DetectedAt.Truncate(time.Hour),
			SampleSize:    len(j.Batch.Sample),
			PortsProbed:   j.PortsProbed,
			EnrichSources: sources,
		}
		if j.Scan != nil {
			rec.Provenance.OpenPorts = len(j.Scan.OpenPorts)
			rec.Provenance.BannersGrabbed = len(j.Scan.Banners)
		}
		if j.Match != nil {
			rec.Provenance.BannerRule = j.Match.Rule
		}
		if j.Trace != nil {
			j.Trace.Span("enrich", enrichStart, enrichStart,
				trace.Str("sources", joinSources(sources)))
			j.Trace.SpanAt("annotate", annStart, annStart, enrichStart,
				trace.Str("label_source", rec.LabelSource))
		}
		recs[i] = rec
	}
	runIndexed(len(jobs), workers, prepare)

	// Model inference for the unlabeled flows, batched through the
	// flattened forest when available.
	if m != nil {
		var idx []int
		for i := range jobs {
			if needModel[i] {
				idx = append(idx, i)
			}
		}
		if len(idx) > 0 {
			X := make([][]float64, len(idx))
			backing := make([]float64, len(idx)*features.Dim)
			for k, i := range idx {
				dst := backing[k*features.Dim : k*features.Dim : (k+1)*features.Dim]
				X[k] = m.Normalizer.ApplyInto(dst, jobs[i].Raw)
			}
			scores := make([]float64, len(idx))
			if bc, ok := m.Classifier.(ml.BatchClassifier); ok {
				scores = bc.PredictProbaBatch(X, scores)
			} else {
				for k, x := range X {
					scores[k] = m.Classifier.PredictProba(x)
				}
			}
			for k, i := range idx {
				metClassified.With("model").Inc()
				rec := &recs[i]
				rec.Score = scores[k]
				rec.LabelSource = feed.SourceModel
				if scores[k] >= 0.5 {
					rec.Label = feed.LabelIoT
				} else {
					rec.Label = feed.LabelNonIoT
				}
			}
		}
	}

	for i := range recs {
		if errs[i] != nil {
			continue
		}
		if recs[i].Label == feed.LabelNonIoT && recs[i].DeviceType == "" {
			// The paper's latency experiment shows non-IoT sources
			// surfacing as "Desktop (non-IoT)" with the detected tool.
			recs[i].DeviceType = string(device.TypeDesktop)
		}
		// The vote margin is only final after batched inference, hence
		// here rather than in prepare. |2·0.5−1| = 0 for bootstrap
		// records, 1 for banner ground truth.
		recs[i].Provenance.VoteMargin = math.Abs(2*recs[i].Score - 1)
	}
	return recs, errs
}

// provenanceID renders a trace ID for provenance ("" when unset, so the
// field is omitted from pre-tracing records).
func provenanceID(id trace.ID) string {
	if id == 0 {
		return ""
	}
	return id.String()
}

// enrichSources lists the enrichment lookups that contributed fields to
// a record, in a fixed order (the list is part of the deterministic
// feed output).
func enrichSources(rec *feed.Record) []string {
	var out []string
	if rec.CountryCode != "" || rec.Country != "" {
		out = append(out, "geo")
	}
	if rec.ASN != 0 || rec.ISP != "" {
		out = append(out, "whois")
	}
	if rec.RDNS != "" {
		out = append(out, "rdns")
	}
	if rec.Tool != "" {
		out = append(out, "tool-fingerprint")
	}
	if rec.Benign {
		out = append(out, "benign-list")
	}
	return out
}

// joinSources renders the source list for a span attribute.
func joinSources(sources []string) string {
	if len(sources) == 0 {
		return "none"
	}
	s := sources[0]
	for _, x := range sources[1:] {
		s += "," + x
	}
	return s
}

// runIndexed runs fn(0..n-1) across up to workers goroutines (serially
// on the caller's goroutine when workers <= 1).
func runIndexed(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

func lastSeen(b *organizer.Batch) time.Time {
	if len(b.Sample) == 0 {
		return b.DetectedAt
	}
	return b.Sample[len(b.Sample)-1].Timestamp
}
