// Package annotate implements eX-IoT's Annotate Module: it pre-processes
// each organized flow into the 120-dimensional Table II feature vector,
// applies the latest classifier to label the source IoT / non-IoT with a
// prediction score, and enriches the resulting CTI record with
// geolocation, WHOIS, rDNS, scan-tool fingerprints, per-flow traffic
// statistics, and the Benign flag for known research scanners.
package annotate

import (
	"fmt"
	"sync"
	"time"

	"exiot/internal/device"
	"exiot/internal/enrich"
	"exiot/internal/features"
	"exiot/internal/feed"
	"exiot/internal/ml"
	"exiot/internal/organizer"
	"exiot/internal/recog"
	"exiot/internal/telemetry"
	"exiot/internal/zmap"
)

// Telemetry handles for the classification stage (see
// docs/OPERATIONS.md): one count per labeled record, split by which
// authority produced the label — a banner fingerprint rule, the
// retrained random forest, or neither (bootstrap).
var metClassified = telemetry.Default().CounterVec("exiot_classify_records_total",
	"Flows labeled IoT/non-IoT, by label source (banner|model|none).", "source")

// Label sources beyond those in the feed package.
const (
	// SourceNone marks records emitted before any model has trained
	// (bootstrap period).
	SourceNone = "none"
)

// Model is the classifier bundle the annotate module applies: the
// trained forest plus the training-anchored normalizer.
type Model struct {
	Classifier ml.Classifier
	Normalizer *features.Normalizer
}

// Annotator labels and enriches organized flows.
type Annotator struct {
	enricher *enrich.Enricher

	mu    sync.RWMutex
	model *Model
}

// New creates an annotator; the model is installed later by the
// update-classifier module.
func New(enricher *enrich.Enricher) *Annotator {
	return &Annotator{enricher: enricher}
}

// SetModel atomically installs a new classifier (the daily retrain).
func (a *Annotator) SetModel(m *Model) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.model = m
}

// HasModel reports whether a classifier is installed.
func (a *Annotator) HasModel() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.model != nil
}

// Annotate turns one organized batch (plus its active-measurement
// results and optional banner fingerprint) into a CTI record. The banner
// label, when present, takes precedence over the model prediction — it is
// the ground truth the model itself trains on.
func (a *Annotator) Annotate(b *organizer.Batch, scan *zmap.HostResult, match *recog.Match) (feed.Record, error) {
	rec := feed.Record{
		IP:         b.IPString,
		FirstSeen:  b.FirstSeen,
		DetectedAt: b.DetectedAt,
		LastSeen:   lastSeen(b),
		Active:     true,
	}
	if scan != nil {
		rec.OpenPorts = scan.OpenPorts
		rec.Banners = scan.Banners
	}

	raw, err := features.RawVector(b.Sample)
	if err != nil {
		return feed.Record{}, fmt.Errorf("annotate %s: %w", b.IPString, err)
	}

	switch {
	case match != nil:
		metClassified.With("banner").Inc()
		rec.LabelSource = feed.SourceBanner
		if match.IoT {
			rec.Label = feed.LabelIoT
			rec.Score = 1
		} else {
			rec.Label = feed.LabelNonIoT
			rec.Score = 0
		}
		rec.Vendor = match.Vendor
		rec.DeviceType = match.Type
		rec.Model = match.Model
		rec.Firmware = match.Firmware
	default:
		a.mu.RLock()
		m := a.model
		a.mu.RUnlock()
		if m != nil {
			metClassified.With("model").Inc()
			score := m.Classifier.PredictProba(m.Normalizer.Apply(raw))
			rec.Score = score
			rec.LabelSource = feed.SourceModel
			if score >= 0.5 {
				rec.Label = feed.LabelIoT
			} else {
				rec.Label = feed.LabelNonIoT
			}
		} else {
			// Bootstrap: no model yet; stay conservative.
			metClassified.With("none").Inc()
			rec.Label = feed.LabelNonIoT
			rec.Score = 0.5
			rec.LabelSource = SourceNone
		}
	}

	if rec.Label == feed.LabelNonIoT && rec.DeviceType == "" {
		// The paper's latency experiment shows non-IoT sources surfacing
		// as "Desktop (non-IoT)" with the detected tool.
		rec.DeviceType = string(device.TypeDesktop)
	}

	a.enricher.Annotate(&rec, b.IP, b.Sample)
	return rec, nil
}

func lastSeen(b *organizer.Batch) time.Time {
	if len(b.Sample) == 0 {
		return b.DetectedAt
	}
	return b.Sample[len(b.Sample)-1].Timestamp
}
