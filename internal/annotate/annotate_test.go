package annotate

import (
	"math/rand"
	"testing"
	"time"

	"exiot/internal/device"
	"exiot/internal/enrich"
	"exiot/internal/features"
	"exiot/internal/feed"
	"exiot/internal/organizer"
	"exiot/internal/packet"
	"exiot/internal/recog"
	"exiot/internal/registry"
	"exiot/internal/zmap"
)

var t0 = time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC)

// constScore is a stub classifier with a fixed probability.
type constScore float64

func (c constScore) PredictProba([]float64) float64 { return float64(c) }

func testBatch(t *testing.T, ip packet.IP, n int) organizer.Batch {
	t.Helper()
	sample := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		p := packet.Packet{
			Timestamp: t0.Add(time.Duration(i) * time.Second),
			Proto:     packet.TCP,
			SrcIP:     ip,
			DstIP:     packet.IP(0x0A000000 + uint32(i)*131),
			DstPort:   23,
			Flags:     packet.FlagSYN,
			TTL:       48,
			Window:    5840,
		}
		p.Normalize()
		sample = append(sample, p)
	}
	return organizer.Batch{
		IP:         ip,
		IPString:   ip.String(),
		FirstSeen:  t0.Add(-2 * time.Minute),
		DetectedAt: t0,
		Sample:     sample,
		SampleSize: n,
	}
}

func testAnnotator(t *testing.T) (*Annotator, *registry.Registry) {
	t.Helper()
	reg := registry.Build(registry.Config{Seed: 5, Blocks: 256})
	return New(enrich.New(reg)), reg
}

func trainedModel(t *testing.T, score float64) *Model {
	t.Helper()
	norm, err := features.FitNormalizer([][]float64{make([]float64, features.Dim)})
	if err != nil {
		t.Fatal(err)
	}
	return &Model{Classifier: constScore(score), Normalizer: norm}
}

func TestBannerLabelTakesPrecedence(t *testing.T) {
	a, reg := testAnnotator(t)
	a.SetModel(trainedModel(t, 0.01)) // model says non-IoT
	rng := newRand(1)
	ip := reg.PickInfectedHost(rng)
	b := testBatch(t, ip, 100)
	match := &recog.Match{IoT: true, Vendor: "Foscam", Type: "IP Camera", Model: "FI9821P", Firmware: "1.11.1.8"}
	rec, err := a.Annotate(&b, &zmap.HostResult{}, match)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.IsIoT() || rec.LabelSource != feed.SourceBanner {
		t.Errorf("banner label lost: %+v", rec)
	}
	if rec.Vendor != "Foscam" || rec.Model != "FI9821P" || rec.Firmware != "1.11.1.8" {
		t.Errorf("device details lost: %+v", rec)
	}
	if rec.Score != 1 {
		t.Errorf("banner-labeled IoT score = %v, want 1", rec.Score)
	}
}

func TestModelPrediction(t *testing.T) {
	a, reg := testAnnotator(t)
	rng := newRand(2)
	ip := reg.PickInfectedHost(rng)
	b := testBatch(t, ip, 100)

	a.SetModel(trainedModel(t, 0.9))
	rec, err := a.Annotate(&b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.IsIoT() || rec.LabelSource != feed.SourceModel || rec.Score != 0.9 {
		t.Errorf("model prediction wrong: %+v", rec)
	}

	a.SetModel(trainedModel(t, 0.2))
	rec, err = a.Annotate(&b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.IsIoT() || rec.Score != 0.2 {
		t.Errorf("low-score prediction wrong: %+v", rec)
	}
	if rec.DeviceType != string(device.TypeDesktop) {
		t.Errorf("non-IoT device type = %q, want Desktop (non-IoT)", rec.DeviceType)
	}
}

func TestBootstrapWithoutModel(t *testing.T) {
	a, reg := testAnnotator(t)
	if a.HasModel() {
		t.Fatal("fresh annotator claims a model")
	}
	rng := newRand(3)
	ip := reg.PickInfectedHost(rng)
	b := testBatch(t, ip, 60)
	rec, err := a.Annotate(&b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LabelSource != SourceNone || rec.Score != 0.5 {
		t.Errorf("bootstrap record = %+v", rec)
	}
}

func TestAnnotateEnriches(t *testing.T) {
	a, reg := testAnnotator(t)
	a.SetModel(trainedModel(t, 0.8))
	rng := newRand(4)
	ip := reg.PickInfectedHost(rng)
	b := testBatch(t, ip, 100)
	rec, err := a.Annotate(&b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Country == "" || rec.ASN == 0 || rec.RDNS == "" {
		t.Errorf("enrichment missing: %+v", rec)
	}
	if len(rec.TargetPorts) == 0 || rec.TargetPorts[23] != 100 {
		t.Errorf("port stats = %v", rec.TargetPorts)
	}
	if rec.LastSeen.Before(rec.DetectedAt) {
		t.Errorf("LastSeen %v before DetectedAt %v", rec.LastSeen, rec.DetectedAt)
	}
	if !rec.Active {
		t.Error("fresh record must be active")
	}
}

func TestAnnotateEmptySample(t *testing.T) {
	a, _ := testAnnotator(t)
	b := organizer.Batch{IPString: "1.2.3.4"}
	if _, err := a.Annotate(&b, nil, nil); err == nil {
		t.Error("empty sample should error")
	}
}

func TestScanResultsAttached(t *testing.T) {
	a, reg := testAnnotator(t)
	a.SetModel(trainedModel(t, 0.9))
	rng := newRand(5)
	ip := reg.PickInfectedHost(rng)
	b := testBatch(t, ip, 80)
	scan := &zmap.HostResult{
		OpenPorts: []uint16{80, 23},
		Banners:   []zmap.Banner{{Port: 80, Protocol: "http", Banner: "Server: Boa/0.94.13"}},
	}
	rec, err := a.Annotate(&b, scan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.OpenPorts) != 2 || len(rec.Banners) != 1 {
		t.Errorf("scan results lost: %+v", rec)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
