// Package store provides eX-IoT's three storage backends as in-memory,
// concurrency-safe substitutes: a document store with Mongo-style
// ObjectIDs (the "latest threat information" database), a historical
// variant with a lapsing retention window (the two-week database), and a
// Redis-like key-value store with optional TTL (the ObjectID cache used
// for fast END_FLOW status updates).
package store

import (
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"exiot/internal/telemetry"
)

// Telemetry handles for the database stage (see docs/OPERATIONS.md).
// Counts aggregate across collections — the latest and historical feed
// databases both funnel through here.
var (
	metStoreInserts = telemetry.Default().CounterVec("exiot_store_ops_total",
		"Document-store operations, by op (insert|update|delete|expire).", "op")
	opInsert = metStoreInserts.With("insert")
	opUpdate = metStoreInserts.With("update")
	opDelete = metStoreInserts.With("delete")
	opExpire = metStoreInserts.With("expire")
)

// ObjectID is a Mongo-shaped document identifier: 4 bytes of unix time,
// 8 bytes of process-local counter, hex-encoded.
type ObjectID string

var objectIDCounter atomic.Uint64

// NewObjectID mints an ObjectID stamped with ts.
func NewObjectID(ts time.Time) ObjectID {
	var raw [12]byte
	binary.BigEndian.PutUint32(raw[0:], uint32(ts.Unix()))
	binary.BigEndian.PutUint64(raw[4:], objectIDCounter.Add(1))
	return ObjectID(hex.EncodeToString(raw[:]))
}

// Time extracts the timestamp an ObjectID was minted with.
func (id ObjectID) Time() time.Time {
	raw, err := hex.DecodeString(string(id))
	if err != nil || len(raw) != 12 {
		return time.Time{}
	}
	return time.Unix(int64(binary.BigEndian.Uint32(raw[0:4])), 0).UTC()
}

// Collection is a typed in-memory document store keyed by ObjectID.
type Collection[T any] struct {
	mu   sync.RWMutex
	docs map[ObjectID]T
	// order preserves insertion sequence for deterministic scans.
	order []ObjectID
	// hook observes mutations (see SetHook in state.go); extra holds
	// additional observers appended with AddHook.
	hook  func(Mutation)
	extra []func(Mutation)
}

// notify fires every installed mutation hook. Caller holds c.mu.
func (c *Collection[T]) notify(m Mutation) {
	if c.hook != nil {
		c.hook(m)
	}
	for _, fn := range c.extra {
		fn(m)
	}
}

// NewCollection creates an empty collection.
func NewCollection[T any]() *Collection[T] {
	return &Collection[T]{docs: make(map[ObjectID]T)}
}

// Insert stores doc under a fresh ObjectID stamped with ts.
func (c *Collection[T]) Insert(ts time.Time, doc T) ObjectID {
	id := NewObjectID(ts)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs[id] = doc
	c.order = append(c.order, id)
	opInsert.Inc()
	c.notify(Mutation{Op: "insert", ID: id})
	return id
}

// Get fetches a document by id.
func (c *Collection[T]) Get(id ObjectID) (T, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	doc, ok := c.docs[id]
	return doc, ok
}

// Update applies fn to the document under id; it reports whether the
// document existed. Searching by ObjectID is O(1), which is exactly why
// the pipeline caches ObjectIDs in the KV store instead of scanning for
// the latest record of an IP.
func (c *Collection[T]) Update(id ObjectID, fn func(*T)) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	doc, ok := c.docs[id]
	if !ok {
		return false
	}
	fn(&doc)
	c.docs[id] = doc
	opUpdate.Inc()
	c.notify(Mutation{Op: "update", ID: id})
	return true
}

// Len returns the document count.
func (c *Collection[T]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Find returns every document matching the filter, in insertion order.
// A nil filter returns everything.
func (c *Collection[T]) Find(filter func(T) bool) []T {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []T
	for _, id := range c.order {
		doc, ok := c.docs[id]
		if !ok {
			continue
		}
		if filter == nil || filter(doc) {
			out = append(out, doc)
		}
	}
	return out
}

// FindIDs returns matching (id, document) pairs in insertion order.
func (c *Collection[T]) FindIDs(filter func(T) bool) ([]ObjectID, []T) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var ids []ObjectID
	var docs []T
	for _, id := range c.order {
		doc, ok := c.docs[id]
		if !ok {
			continue
		}
		if filter == nil || filter(doc) {
			ids = append(ids, id)
			docs = append(docs, doc)
		}
	}
	return ids, docs
}

// Delete removes a document.
func (c *Collection[T]) Delete(id ObjectID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.docs[id]; !ok {
		return false
	}
	delete(c.docs, id)
	opDelete.Inc()
	c.notify(Mutation{Op: "delete", ID: id})
	return true
}

// Expire deletes documents whose ObjectID timestamp is older than cutoff
// and returns how many were removed — the historical database's lapsing
// two-week retention.
func (c *Collection[T]) Expire(cutoff time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	keep := c.order[:0]
	for _, id := range c.order {
		if _, live := c.docs[id]; !live {
			continue
		}
		if id.Time().Before(cutoff) {
			delete(c.docs, id)
			removed++
			c.notify(Mutation{Op: "expire", ID: id})
			continue
		}
		keep = append(keep, id)
	}
	c.order = keep
	opExpire.Add(int64(removed))
	return removed
}

// KV is a Redis-like string store with optional per-key expiry.
type KV struct {
	mu    sync.RWMutex
	data  map[string]kvEntry
	clock func() time.Time
	// hook observes mutations (see SetHook in state.go); extra holds
	// additional observers appended with AddHook.
	hook  func(Mutation)
	extra []func(Mutation)
}

// notify fires every installed mutation hook. Caller holds kv.mu.
func (kv *KV) notify(m Mutation) {
	if kv.hook != nil {
		kv.hook(m)
	}
	for _, fn := range kv.extra {
		fn(m)
	}
}

type kvEntry struct {
	value     string
	expiresAt time.Time // zero = no expiry
}

// NewKV creates an empty KV store using the real clock.
func NewKV() *KV { return NewKVWithClock(time.Now) }

// NewKVWithClock creates a KV store with an injected clock (tests, and
// the pipeline's simulated time).
func NewKVWithClock(clock func() time.Time) *KV {
	return &KV{data: make(map[string]kvEntry), clock: clock}
}

// Set stores value under key with no expiry.
func (kv *KV) Set(key, value string) {
	kv.SetTTL(key, value, 0)
}

// SetTTL stores value under key, expiring after ttl (0 = never).
func (kv *KV) SetTTL(key, value string, ttl time.Duration) {
	e := kvEntry{value: value}
	if ttl > 0 {
		e.expiresAt = kv.clock().Add(ttl)
	}
	kv.mu.Lock()
	kv.data[key] = e
	kv.notify(Mutation{Op: "set", Key: key})
	kv.mu.Unlock()
}

// Get fetches key's value if present and unexpired.
func (kv *KV) Get(key string) (string, bool) {
	kv.mu.RLock()
	e, ok := kv.data[key]
	kv.mu.RUnlock()
	if !ok {
		return "", false
	}
	if !e.expiresAt.IsZero() && kv.clock().After(e.expiresAt) {
		kv.Del(key)
		return "", false
	}
	return e.value, true
}

// Del removes key; it reports whether the key existed.
func (kv *KV) Del(key string) bool {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if _, ok := kv.data[key]; !ok {
		return false
	}
	delete(kv.data, key)
	kv.notify(Mutation{Op: "del", Key: key})
	return true
}

// Len returns the number of live keys (expired keys are swept lazily).
func (kv *KV) Len() int {
	now := kv.clock()
	kv.mu.Lock()
	defer kv.mu.Unlock()
	n := 0
	for k, e := range kv.data {
		if !e.expiresAt.IsZero() && now.After(e.expiresAt) {
			delete(kv.data, k)
			continue
		}
		n++
	}
	return n
}

// Keys returns the live keys, sorted (deterministic iteration for tests
// and dashboards).
func (kv *KV) Keys() []string {
	now := kv.clock()
	kv.mu.Lock()
	defer kv.mu.Unlock()
	out := make([]string, 0, len(kv.data))
	for k, e := range kv.data {
		if !e.expiresAt.IsZero() && now.After(e.expiresAt) {
			delete(kv.data, k)
			continue
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
