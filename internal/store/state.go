package store

import (
	"sort"
	"time"
)

// This file is the durability surface of the store package: full-state
// export/restore used by snapshots, plus mutation hooks that let the
// durability layer observe write traffic (for snapshot cadence) without
// the stores knowing anything about WALs.

// Doc pairs a document with its ObjectID for export.
type Doc[T any] struct {
	ID    ObjectID `json:"id"`
	Value T        `json:"value"`
}

// Export returns every live document with its ID, in insertion order —
// the exact shape Restore accepts.
func (c *Collection[T]) Export() []Doc[T] {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Doc[T], 0, len(c.docs))
	for _, id := range c.order {
		doc, ok := c.docs[id]
		if !ok {
			continue
		}
		out = append(out, Doc[T]{ID: id, Value: doc})
	}
	return out
}

// Restore replaces the collection's contents with an exported state.
// Insertion order follows the slice order. Neither telemetry counters
// nor the mutation hook fire: a restore reconstructs state, it does not
// re-perform operations.
func (c *Collection[T]) Restore(docs []Doc[T]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs = make(map[ObjectID]T, len(docs))
	c.order = make([]ObjectID, 0, len(docs))
	for _, d := range docs {
		c.docs[d.ID] = d.Value
		c.order = append(c.order, d.ID)
	}
}

// KVItem is one exported key-value entry.
type KVItem struct {
	Key   string `json:"key"`
	Value string `json:"value"`
	// ExpiresAt is the absolute expiry instant (zero = no expiry);
	// exporting the absolute time keeps TTLs exact across a restart.
	ExpiresAt time.Time `json:"expires_at,omitempty"`
}

// Export returns the live (unexpired) entries sorted by key.
func (kv *KV) Export() []KVItem {
	now := kv.clock()
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	out := make([]KVItem, 0, len(kv.data))
	for k, e := range kv.data {
		if !e.expiresAt.IsZero() && now.After(e.expiresAt) {
			continue
		}
		out = append(out, KVItem{Key: k, Value: e.value, ExpiresAt: e.expiresAt})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Restore replaces the store's contents with an exported state. The
// mutation hook does not fire.
func (kv *KV) Restore(items []KVItem) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.data = make(map[string]kvEntry, len(items))
	for _, it := range items {
		kv.data[it.Key] = kvEntry{value: it.Value, expiresAt: it.ExpiresAt}
	}
}

// Mutation describes one store write for observers.
type Mutation struct {
	// Op is the operation name: insert|update|delete|expire for
	// collections, set|del for KV.
	Op string
	// ID is the affected document (collection mutations).
	ID ObjectID
	// Key is the affected key (KV mutations).
	Key string
}

// SetHook installs fn to observe every mutation. The hook runs with the
// store's lock held, so it must be fast and must not call back into the
// store. Restore never fires it. Pass nil to remove. SetHook owns a
// single slot; observers registered with AddHook are unaffected.
func (c *Collection[T]) SetHook(fn func(Mutation)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hook = fn
}

// AddHook appends an additional mutation observer alongside whatever
// SetHook installed — the durability layer and the feed-serving cache
// can both watch the same collection. Same contract as SetHook hooks:
// runs under the store's lock, must be fast, must not call back in.
// Added hooks cannot be removed.
func (c *Collection[T]) AddHook(fn func(Mutation)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.extra = append(c.extra, fn)
}

// SetHook installs fn to observe every KV mutation; same contract as
// Collection.SetHook.
func (kv *KV) SetHook(fn func(Mutation)) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.hook = fn
}

// AddHook appends an additional KV mutation observer; same contract as
// Collection.AddHook.
func (kv *KV) AddHook(fn func(Mutation)) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.extra = append(kv.extra, fn)
}

// ObjectIDCounterValue reports the process-global ObjectID counter, for
// inclusion in snapshots.
func ObjectIDCounterValue() uint64 {
	return objectIDCounter.Load()
}

// BumpObjectIDCounter raises the process-global ObjectID counter to at
// least v (never lowers it), so IDs minted after a restore cannot
// collide with IDs already present in the restored state.
func BumpObjectIDCounter(v uint64) {
	for {
		cur := objectIDCounter.Load()
		if cur >= v || objectIDCounter.CompareAndSwap(cur, v) {
			return
		}
	}
}
