package store

import (
	"testing"
	"time"
)

func TestCollectionExportRestore(t *testing.T) {
	src := NewCollection[string]()
	ts := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	var ids []ObjectID
	for _, v := range []string{"a", "b", "c"} {
		ids = append(ids, src.Insert(ts, v))
	}
	src.Delete(ids[1])

	exported := src.Export()
	if len(exported) != 2 {
		t.Fatalf("exported %d docs, want 2", len(exported))
	}

	dst := NewCollection[string]()
	dst.Restore(exported)
	if dst.Len() != 2 {
		t.Fatalf("restored %d docs, want 2", dst.Len())
	}
	gotIDs, gotDocs := dst.FindIDs(nil)
	if gotIDs[0] != ids[0] || gotIDs[1] != ids[2] {
		t.Fatalf("restored IDs %v, want [%s %s]", gotIDs, ids[0], ids[2])
	}
	if gotDocs[0] != "a" || gotDocs[1] != "c" {
		t.Fatalf("restored docs %v in wrong order", gotDocs)
	}
}

func TestKVExportRestorePreservesTTL(t *testing.T) {
	now := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	src := NewKVWithClock(clock)
	src.Set("plain", "1")
	src.SetTTL("ttl", "2", time.Hour)
	src.SetTTL("expired", "3", time.Minute)
	now = now.Add(30 * time.Minute)

	exported := src.Export()
	if len(exported) != 2 {
		t.Fatalf("exported %d items, want 2 (expired key skipped)", len(exported))
	}

	dst := NewKVWithClock(clock)
	dst.Restore(exported)
	if v, ok := dst.Get("plain"); !ok || v != "1" {
		t.Fatalf("plain = (%q, %v), want (1, true)", v, ok)
	}
	if v, ok := dst.Get("ttl"); !ok || v != "2" {
		t.Fatalf("ttl = (%q, %v), want (2, true)", v, ok)
	}
	// The absolute expiry must carry over: 31 more minutes crosses it.
	now = now.Add(31 * time.Minute)
	if _, ok := dst.Get("ttl"); ok {
		t.Fatal("ttl key survived past its restored absolute expiry")
	}
}

func TestMutationHooks(t *testing.T) {
	var muts []Mutation
	c := NewCollection[int]()
	c.SetHook(func(m Mutation) { muts = append(muts, m) })
	ts := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	id := c.Insert(ts, 1)
	c.Update(id, func(v *int) { *v = 2 })
	c.Delete(id)
	c.Restore(nil) // must not fire
	want := []string{"insert", "update", "delete"}
	if len(muts) != len(want) {
		t.Fatalf("got %d collection mutations, want %d", len(muts), len(want))
	}
	for i, m := range muts {
		if m.Op != want[i] || m.ID != id {
			t.Fatalf("mutation %d = %+v, want op %s on %s", i, m, want[i], id)
		}
	}

	muts = nil
	kv := NewKV()
	kv.SetHook(func(m Mutation) { muts = append(muts, m) })
	kv.Set("k", "v")
	kv.Del("k")
	kv.Restore(nil) // must not fire
	if len(muts) != 2 || muts[0].Op != "set" || muts[1].Op != "del" || muts[0].Key != "k" {
		t.Fatalf("KV mutations = %+v, want set+del on k", muts)
	}
}

func TestBumpObjectIDCounter(t *testing.T) {
	base := ObjectIDCounterValue()
	BumpObjectIDCounter(base + 100)
	if got := ObjectIDCounterValue(); got != base+100 {
		t.Fatalf("counter = %d, want %d", got, base+100)
	}
	BumpObjectIDCounter(base + 50) // must never lower
	if got := ObjectIDCounterValue(); got != base+100 {
		t.Fatalf("counter lowered to %d, want %d", got, base+100)
	}
	id := NewObjectID(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC))
	if len(id) != 24 {
		t.Fatalf("minted ID %q has wrong length", id)
	}
}
