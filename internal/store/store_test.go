package store

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

type doc struct {
	IP     string
	Active bool
}

var base = time.Date(2020, 12, 9, 0, 0, 0, 0, time.UTC)

func TestObjectIDUniqueAndTimestamped(t *testing.T) {
	seen := map[ObjectID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewObjectID(base)
		if seen[id] {
			t.Fatalf("duplicate ObjectID %s", id)
		}
		seen[id] = true
		if !id.Time().Equal(base) {
			t.Fatalf("ObjectID time = %v, want %v", id.Time(), base)
		}
	}
	if ts := ObjectID("nothex").Time(); !ts.IsZero() {
		t.Errorf("malformed id time = %v, want zero", ts)
	}
}

func TestCollectionCRUD(t *testing.T) {
	c := NewCollection[doc]()
	id := c.Insert(base, doc{IP: "1.2.3.4", Active: true})
	got, ok := c.Get(id)
	if !ok || got.IP != "1.2.3.4" {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if !c.Update(id, func(d *doc) { d.Active = false }) {
		t.Fatal("Update reported missing doc")
	}
	got, _ = c.Get(id)
	if got.Active {
		t.Error("update lost")
	}
	if c.Update(ObjectID("missing"), func(d *doc) {}) {
		t.Error("Update on missing id reported success")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	if !c.Delete(id) || c.Delete(id) {
		t.Error("Delete semantics wrong")
	}
	if _, ok := c.Get(id); ok {
		t.Error("deleted doc still readable")
	}
}

func TestCollectionFindInsertionOrder(t *testing.T) {
	c := NewCollection[doc]()
	for i := 0; i < 10; i++ {
		c.Insert(base.Add(time.Duration(i)*time.Second), doc{IP: string(rune('a' + i)), Active: i%2 == 0})
	}
	all := c.Find(nil)
	if len(all) != 10 {
		t.Fatalf("Find(nil) = %d docs", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].IP < all[i-1].IP {
			t.Fatal("insertion order not preserved")
		}
	}
	active := c.Find(func(d doc) bool { return d.Active })
	if len(active) != 5 {
		t.Errorf("filtered Find = %d docs, want 5", len(active))
	}
	ids, docs := c.FindIDs(func(d doc) bool { return d.Active })
	if len(ids) != 5 || len(docs) != 5 {
		t.Errorf("FindIDs = %d/%d", len(ids), len(docs))
	}
}

func TestCollectionExpire(t *testing.T) {
	c := NewCollection[doc]()
	for day := 0; day < 20; day++ {
		c.Insert(base.Add(time.Duration(day)*24*time.Hour), doc{IP: "x"})
	}
	// Two-week lapse: drop everything older than day 6.
	removed := c.Expire(base.Add(6 * 24 * time.Hour))
	if removed != 6 {
		t.Errorf("Expire removed %d, want 6", removed)
	}
	if c.Len() != 14 {
		t.Errorf("Len after expire = %d, want 14", c.Len())
	}
	// Expire is idempotent at the same cutoff.
	if n := c.Expire(base.Add(6 * 24 * time.Hour)); n != 0 {
		t.Errorf("second Expire removed %d", n)
	}
}

func TestCollectionConcurrency(t *testing.T) {
	c := NewCollection[int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := c.Insert(base, w*1000+i)
				c.Update(id, func(v *int) { *v++ })
				c.Get(id)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 1600 {
		t.Errorf("Len = %d, want 1600", c.Len())
	}
}

func TestKVBasics(t *testing.T) {
	kv := NewKV()
	kv.Set("ip:1.2.3.4", "objid1")
	v, ok := kv.Get("ip:1.2.3.4")
	if !ok || v != "objid1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := kv.Get("missing"); ok {
		t.Error("missing key found")
	}
	if !kv.Del("ip:1.2.3.4") || kv.Del("ip:1.2.3.4") {
		t.Error("Del semantics wrong")
	}
}

func TestKVTTL(t *testing.T) {
	now := base
	kv := NewKVWithClock(func() time.Time { return now })
	kv.SetTTL("active", "objid", time.Hour)
	kv.Set("forever", "x")
	if _, ok := kv.Get("active"); !ok {
		t.Fatal("fresh TTL key missing")
	}
	now = now.Add(2 * time.Hour)
	if _, ok := kv.Get("active"); ok {
		t.Error("expired key still readable")
	}
	if _, ok := kv.Get("forever"); !ok {
		t.Error("non-TTL key expired")
	}
	if kv.Len() != 1 {
		t.Errorf("Len = %d, want 1", kv.Len())
	}
}

func TestKVKeysSorted(t *testing.T) {
	kv := NewKV()
	for _, k := range []string{"c", "a", "b"} {
		kv.Set(k, "v")
	}
	keys := kv.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestKVConcurrency(t *testing.T) {
	kv := NewKV()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := string(rune('a' + w))
				kv.SetTTL(k, "v", time.Minute)
				kv.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if kv.Len() != 8 {
		t.Errorf("Len = %d, want 8", kv.Len())
	}
}

func TestAddHookCoexistsWithSetHook(t *testing.T) {
	c := NewCollection[int]()
	var set, extra1, extra2 []string
	c.SetHook(func(m Mutation) { set = append(set, m.Op) })
	c.AddHook(func(m Mutation) { extra1 = append(extra1, m.Op) })
	c.AddHook(func(m Mutation) { extra2 = append(extra2, m.Op) })

	id := c.Insert(time.Unix(100, 0), 1)
	c.Update(id, func(v *int) { *v = 2 })
	// Replacing the SetHook slot must not disturb added observers.
	c.SetHook(nil)
	c.Delete(id)

	if want := []string{"insert", "update"}; !reflect.DeepEqual(set, want) {
		t.Errorf("SetHook saw %v, want %v", set, want)
	}
	want := []string{"insert", "update", "delete"}
	if !reflect.DeepEqual(extra1, want) || !reflect.DeepEqual(extra2, want) {
		t.Errorf("AddHook observers saw %v / %v, want %v", extra1, extra2, want)
	}

	kv := NewKV()
	var kvOps []string
	kv.AddHook(func(m Mutation) { kvOps = append(kvOps, m.Op+":"+m.Key) })
	kv.Set("a", "1")
	kv.Del("a")
	if want := []string{"set:a", "del:a"}; !reflect.DeepEqual(kvOps, want) {
		t.Errorf("KV AddHook saw %v, want %v", kvOps, want)
	}
}
