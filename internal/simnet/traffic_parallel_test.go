package simnet

import (
	"reflect"
	"testing"
	"time"
)

// TestGenerateHourWorkersEquivalence locks in the determinism contract:
// the parallel k-way merge produces a byte-identical packet stream to the
// serial generate-and-sort path, for every hour of a simulated day.
func TestGenerateHourWorkersEquivalence(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.NumInfected = 60
	cfg.NumNonIoT = 15
	cfg.NumResearch = 3
	cfg.NumMisconfig = 10
	cfg.NumBackscat = 5
	cfg.MaxPacketsPerHostHour = 500
	w := NewWorld(cfg)

	sawPackets := false
	for hi := 0; hi < 24; hi++ {
		hour := cfg.Start.Add(time.Duration(hi) * time.Hour)
		serial := w.GenerateHourWorkers(hour, 1)
		if len(serial) > 0 {
			sawPackets = true
		}
		for _, workers := range []int{2, 8} {
			parallel := w.GenerateHourWorkers(hour, workers)
			if len(parallel) != len(serial) {
				t.Fatalf("hour %d workers %d: %d packets, serial %d",
					hi, workers, len(parallel), len(serial))
			}
			if !reflect.DeepEqual(parallel, serial) {
				for i := range serial {
					if !reflect.DeepEqual(parallel[i], serial[i]) {
						t.Fatalf("hour %d workers %d: packet %d differs:\n got  %+v\n want %+v",
							hi, workers, i, parallel[i], serial[i])
					}
				}
			}
		}
	}
	if !sawPackets {
		t.Fatal("no packets generated over the whole day")
	}
}

// TestGenerateHourDefaultsParallel checks GenerateHour respects
// Config.Workers and is reproducible across repeated calls.
func TestGenerateHourDefaultsParallel(t *testing.T) {
	cfg := DefaultConfig(9)
	cfg.NumInfected = 30
	cfg.NumNonIoT = 8
	cfg.NumMisconfig = 5
	cfg.NumBackscat = 3
	cfg.Workers = 4
	w := NewWorld(cfg)

	a := w.GenerateHour(cfg.Start)
	b := w.GenerateHour(cfg.Start)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated GenerateHour calls differ")
	}
	serial := w.GenerateHourWorkers(cfg.Start, 1)
	if !reflect.DeepEqual(a, serial) {
		t.Fatal("GenerateHour with Workers=4 differs from serial")
	}
}

// TestMergeRunsOrdering exercises the heap merge directly, including
// cross-run timestamp ties (resolved by run index) and empty runs.
func TestMergeRunsOrdering(t *testing.T) {
	if got := mergeRuns(nil); got != nil {
		t.Fatalf("mergeRuns(nil) = %v, want nil", got)
	}
	cfg := DefaultConfig(3)
	cfg.NumInfected = 20
	cfg.NumNonIoT = 5
	cfg.NumMisconfig = 4
	cfg.NumBackscat = 2
	w := NewWorld(cfg)
	out := w.GenerateHourWorkers(cfg.Start, 8)
	for i := 1; i < len(out); i++ {
		if out[i].Timestamp.Before(out[i-1].Timestamp) {
			t.Fatalf("packet %d out of order: %v before %v",
				i, out[i].Timestamp, out[i-1].Timestamp)
		}
	}
}
