package simnet

import (
	"testing"
	"time"

	"exiot/internal/device"
	"exiot/internal/packet"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.NumInfected = 60
	cfg.NumNonIoT = 15
	cfg.NumResearch = 3
	cfg.NumMisconfig = 10
	cfg.NumBackscat = 4
	cfg.MaxPacketsPerHostHour = 1500
	return cfg
}

func TestWorldDeterministic(t *testing.T) {
	w1 := NewWorld(smallConfig(5))
	w2 := NewWorld(smallConfig(5))
	if len(w1.Hosts()) != len(w2.Hosts()) {
		t.Fatalf("host counts differ: %d vs %d", len(w1.Hosts()), len(w2.Hosts()))
	}
	hour := w1.Start()
	p1 := w1.GenerateHour(hour)
	p2 := w2.GenerateHour(hour)
	if len(p1) != len(p2) {
		t.Fatalf("packet counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
}

func TestPopulationCounts(t *testing.T) {
	cfg := smallConfig(6)
	w := NewWorld(cfg)
	if got := w.CountKind(KindInfectedIoT); got != cfg.NumInfected {
		t.Errorf("infected = %d, want %d", got, cfg.NumInfected)
	}
	if got := w.CountKind(KindNonIoTScanner); got != cfg.NumNonIoT {
		t.Errorf("non-iot = %d, want %d", got, cfg.NumNonIoT)
	}
	if got := w.CountKind(KindResearchScanner); got != cfg.NumResearch {
		t.Errorf("research = %d, want %d", got, cfg.NumResearch)
	}
}

func TestGeneratedPacketsSane(t *testing.T) {
	w := NewWorld(smallConfig(7))
	hour := w.Start().Add(6 * time.Hour)
	pkts := w.GenerateHour(hour)
	if len(pkts) == 0 {
		t.Fatal("no packets generated")
	}
	telescope := w.Telescope()
	prev := time.Time{}
	for i := range pkts {
		p := &pkts[i]
		if !telescope.Contains(p.DstIP) {
			t.Fatalf("packet %d dst %v outside telescope", i, p.DstIP)
		}
		if telescope.Contains(p.SrcIP) {
			t.Fatalf("packet %d src %v inside telescope", i, p.SrcIP)
		}
		if p.Timestamp.Before(hour) || !p.Timestamp.Before(hour.Add(time.Hour)) {
			t.Fatalf("packet %d timestamp %v outside hour", i, p.Timestamp)
		}
		if p.Timestamp.Before(prev) {
			t.Fatalf("packet %d out of order", i)
		}
		prev = p.Timestamp
		if p.TTL == 0 {
			t.Fatalf("packet %d zero TTL", i)
		}
	}
}

func TestMiraiFingerprintOnWire(t *testing.T) {
	w := NewWorld(smallConfig(8))
	var mirai *Host
	for _, h := range w.Hosts() {
		if h.Kind == KindInfectedIoT && h.Family.SeqEqualsDst {
			mirai = h
			break
		}
	}
	if mirai == nil {
		t.Skip("no Mirai-lineage host in this seed")
	}
	found := false
	for hr := 0; hr < 24 && !found; hr++ {
		for _, p := range w.GenerateHour(w.Start().Add(time.Duration(hr) * time.Hour)) {
			if p.SrcIP != mirai.IP {
				continue
			}
			found = true
			if p.Seq != uint32(p.DstIP) {
				t.Fatalf("Mirai packet seq=%d, want %d (dst %v)", p.Seq, uint32(p.DstIP), p.DstIP)
			}
			if p.Options != (packet.TCPOptions{}) {
				t.Fatal("Mirai raw scanner must not set TCP options")
			}
		}
	}
	if !found {
		t.Skip("Mirai host inactive during simulated span")
	}
}

func TestZMapFingerprintOnWire(t *testing.T) {
	w := NewWorld(smallConfig(9))
	var zmapHost *Host
	for _, h := range w.Hosts() {
		if h.Kind == KindResearchScanner {
			zmapHost = h
			break
		}
	}
	if zmapHost == nil {
		t.Fatal("no research scanner")
	}
	pkts := w.GenerateHour(w.Start())
	n := 0
	ports := map[uint16]bool{}
	for _, p := range pkts {
		if p.SrcIP != zmapHost.IP {
			continue
		}
		n++
		if p.ID != 54321 {
			t.Fatalf("ZMap ip.id = %d, want 54321", p.ID)
		}
		if p.Window != 65535 {
			t.Fatalf("ZMap window = %d, want 65535", p.Window)
		}
		if p.Options != (packet.TCPOptions{}) {
			t.Fatal("ZMap must not set TCP options")
		}
		ports[p.DstPort] = true
	}
	if n == 0 {
		t.Fatal("research scanner generated no packets (should run around the clock)")
	}
	if len(ports) != 1 {
		t.Errorf("ZMap sweep targeted %d ports in one hour, want 1", len(ports))
	}
}

func TestBackscatterIsFilterable(t *testing.T) {
	w := NewWorld(smallConfig(10))
	start := w.Start()
	seen := 0
	for hr := 0; hr < 24 && seen == 0; hr++ {
		for _, p := range w.GenerateHour(start.Add(time.Duration(hr) * time.Hour)) {
			h, ok := w.HostByIP(p.SrcIP)
			if !ok || h.Kind != KindBackscatter {
				continue
			}
			seen++
			if !p.IsBackscatter() {
				t.Fatalf("backscatter packet not classified as backscatter: %+v", p)
			}
		}
	}
	if seen == 0 {
		t.Skip("no backscatter activity in span")
	}
}

func TestIoTScansSlowerThanTools(t *testing.T) {
	w := NewWorld(smallConfig(11))
	counts := map[HostKind]int{}
	hosts := map[HostKind]map[packet.IP]bool{
		KindInfectedIoT:   {},
		KindNonIoTScanner: {},
	}
	for hr := 0; hr < 6; hr++ {
		for _, p := range w.GenerateHour(w.Start().Add(time.Duration(hr) * time.Hour)) {
			h, ok := w.HostByIP(p.SrcIP)
			if !ok {
				continue
			}
			if m, tracked := hosts[h.Kind]; tracked {
				counts[h.Kind]++
				m[p.SrcIP] = true
			}
		}
	}
	if counts[KindInfectedIoT] == 0 || counts[KindNonIoTScanner] == 0 {
		t.Skip("not enough activity in 6h window")
	}
	iotPer := float64(counts[KindInfectedIoT]) / float64(len(hosts[KindInfectedIoT]))
	toolPer := float64(counts[KindNonIoTScanner]) / float64(len(hosts[KindNonIoTScanner]))
	if iotPer >= toolPer {
		t.Errorf("IoT per-host volume (%.0f) should be below tool volume (%.0f)", iotPer, toolPer)
	}
}

func TestProbeSurface(t *testing.T) {
	w := NewWorld(smallConfig(12))
	reachable := 0
	for _, h := range w.Hosts() {
		if h.Kind != KindInfectedIoT {
			continue
		}
		ports := w.OpenPorts(h.IP)
		if len(ports) == 0 {
			continue
		}
		reachable++
		banner, proto, ok := w.GrabBanner(h.IP, ports[0])
		if !ok {
			t.Fatalf("open port %d on %v refused banner grab", ports[0], h.IP)
		}
		if proto == "" {
			t.Fatalf("empty protocol for %v:%d (banner %q)", h.IP, ports[0], banner)
		}
	}
	if reachable == 0 {
		t.Error("no infected host is probe-reachable; banner training would starve")
	}
	// Unknown address never answers.
	if w.ProbePort(packet.MustParseIP("8.8.8.8"), 80) {
		t.Error("unallocated host answered probe")
	}
	if _, _, ok := w.GrabBanner(packet.MustParseIP("8.8.8.8"), 80); ok {
		t.Error("unallocated host returned banner")
	}
}

func TestBannerAvailabilityShape(t *testing.T) {
	cfg := DefaultConfig(13)
	cfg.NumInfected = 3000
	cfg.NumNonIoT = 0
	cfg.NumResearch = 0
	cfg.NumMisconfig = 0
	cfg.NumBackscat = 0
	w := NewWorld(cfg)
	st := w.InfectedBannerStats()
	if st.Infected != 3000 {
		t.Fatalf("infected = %d", st.Infected)
	}
	reach := float64(st.Reachable) / float64(st.Infected)
	if reach < 0.05 || reach > 0.16 {
		t.Errorf("reachable fraction = %.3f, want ≈0.10 (paper: <10%% return banners)", reach)
	}
	// InfectedBannerStats counts device-like tokens per the paper's
	// generic dump regex (a superset of extractable device details; the
	// recog-based ~3 %% measurement lives in internal/experiments).
	textual := float64(st.TextualBanner) / float64(st.Infected)
	if textual < 0.01 || textual > 0.12 {
		t.Errorf("textual fraction = %.3f, want small", textual)
	}
	if st.TextualBanner > st.Reachable {
		t.Error("textual hosts cannot exceed reachable hosts")
	}
}

func TestMisconfigBurstsAreShort(t *testing.T) {
	w := NewWorld(smallConfig(14))
	for _, h := range w.Hosts() {
		if h.Kind != KindMisconfigured {
			continue
		}
		if len(h.sessions) != 1 {
			t.Fatalf("misconfig host has %d sessions, want 1", len(h.sessions))
		}
		d := h.sessions[0].end.Sub(h.sessions[0].start)
		if d >= time.Minute {
			t.Errorf("misconfig burst %v too long (TRW duration rule would admit it)", d)
		}
	}
}

func TestVendorBreakdownShape(t *testing.T) {
	cfg := DefaultConfig(15)
	cfg.NumInfected = 2000
	w := NewWorld(cfg)
	vb := w.VendorBreakdown()
	if vb["MikroTik"] == 0 {
		t.Fatal("no MikroTik devices")
	}
	for vendor, n := range vb {
		if vendor != "MikroTik" && n > vb["MikroTik"] {
			t.Errorf("vendor %s (%d) outnumbers MikroTik (%d)", vendor, n, vb["MikroTik"])
		}
	}
}

func TestResearchScannerIdentity(t *testing.T) {
	w := NewWorld(smallConfig(16))
	for _, h := range w.Hosts() {
		if h.Kind != KindResearchScanner {
			continue
		}
		info, ok := w.Registry().Lookup(h.IP)
		if !ok || !info.Research {
			t.Errorf("research scanner %v not resolvable as research org", h.IP)
		}
		if h.Profile.Tool != device.ToolZMap {
			t.Errorf("research scanner should run ZMap, got %s", h.Profile.Tool)
		}
	}
}
