package simnet

import "exiot/internal/packet"

// This file is the world's active-measurement surface: the interface the
// ZMap/ZGrab simulators call instead of scanning the real Internet.

// ProbePort reports whether a TCP connection to ip:port would succeed.
// Hosts behind NAT, hosts whose malware closed their services, and ports
// without a listening service are unreachable — the three banner-grabbing
// obstacles the paper calls out.
func (w *World) ProbePort(ip packet.IP, port uint16) bool {
	h, ok := w.byIP[ip]
	if !ok {
		return false
	}
	if h.behindNAT || h.portsClosed {
		return false
	}
	_, open := h.services[port]
	return open
}

// GrabBanner attempts an application-layer banner grab against ip:port.
// It returns the banner text and protocol name on success.
func (w *World) GrabBanner(ip packet.IP, port uint16) (banner, protocol string, ok bool) {
	h, found := w.byIP[ip]
	if !found || h.behindNAT || h.portsClosed {
		return "", "", false
	}
	svc, open := h.services[port]
	if !open {
		return "", "", false
	}
	return svc.banner, svc.protocol, true
}

// OpenPorts lists the probe-reachable ports of ip (used by tests).
func (w *World) OpenPorts(ip packet.IP) []uint16 {
	h, ok := w.byIP[ip]
	if !ok || h.behindNAT || h.portsClosed {
		return nil
	}
	ports := make([]uint16, 0, len(h.services))
	for p := range h.services {
		ports = append(ports, p)
	}
	return ports
}

// BannerStats summarizes active-probe reachability of the infected
// population (evaluation of the paper's §VI limitation: <10 % of infected
// hosts return banners; ~3 % return textual device information).
type BannerStats struct {
	Infected      int
	Reachable     int // at least one service answers a probe
	TextualBanner int // at least one banner carries device-identifying text
}

// InfectedBannerStats computes BannerStats over the infected population.
func (w *World) InfectedBannerStats() BannerStats {
	var st BannerStats
	for _, h := range w.hosts {
		if h.Kind != KindInfectedIoT {
			continue
		}
		st.Infected++
		if h.behindNAT || h.portsClosed || len(h.services) == 0 {
			continue
		}
		st.Reachable++
		for _, svc := range h.services {
			if bannerIsTextual(svc.banner) {
				st.TextualBanner++
				break
			}
		}
	}
	return st
}
