package simnet

import (
	"math/rand"

	"exiot/internal/device"
	"exiot/internal/packet"
	"time"
)

// Window is an exported scan-session interval for injected hosts.
type Window struct {
	Start, End time.Time
}

// InjectSpec describes one adversarial host added to a built world by
// InjectHost. The host is constructed by the same builder the world's
// population uses (so its on-wire fingerprint, probe surface, and banner
// truth are realistic), then the spec's overrides are applied — the
// pattern buildEmergingInfected set.
type InjectSpec struct {
	// Kind selects the builder: KindInfectedIoT, KindNonIoTScanner,
	// KindMisconfigured, or KindBackscatter.
	Kind HostKind
	// Family overrides the malware family (KindInfectedIoT only). When
	// set with Rate == 0, the rate is re-drawn from the family's range.
	Family *device.MalwareFamily
	// Rate, when > 0, pins the Internet-wide scan rate in pps (the
	// telescope observes Rate/256 of it).
	Rate float64
	// Jitter, when > 0, pins the inter-arrival jitter.
	Jitter float64
	// Sessions, when non-empty, replaces the builder's scan sessions.
	Sessions []Window
	// Salt decorrelates the rng streams of hosts injected from the same
	// world seed; give every injected host a distinct value.
	Salt int64
}

// InjectHost adds one adversarial host to the world and returns its
// address. Construction is deterministic in (world seed, spec): scenario
// harnesses rebuild identical worlds from identical specs. The detection
// pipeline never sees the spec — only the packets.
func (w *World) InjectHost(spec InjectSpec) packet.IP {
	var h *Host
	for tries := int64(0); ; tries++ {
		// Re-derive the host on the rare address collision with an
		// existing host (addHost would silently drop the duplicate).
		rng := rand.New(rand.NewSource(w.cfg.Seed ^ spec.Salt ^ tries<<32))
		switch spec.Kind {
		case KindInfectedIoT:
			h = w.buildInfected(rng)
			if spec.Family != nil {
				h.Family = spec.Family
				h.jitter = spec.Family.Jitter
				if spec.Rate == 0 {
					h.rate = spec.Family.RateMin +
						rng.Float64()*(spec.Family.RateMax-spec.Family.RateMin)
				}
			}
		case KindMisconfigured:
			h = w.buildMisconfig(rng)
		case KindBackscatter:
			h = w.buildBackscatter(rng)
		default:
			h = w.buildNonIoT(rng, spec.Kind == KindResearchScanner)
		}
		if _, dup := w.byIP[h.IP]; !dup {
			break
		}
	}
	if spec.Rate > 0 {
		h.rate = spec.Rate
	}
	if spec.Jitter > 0 {
		h.jitter = spec.Jitter
	}
	if len(spec.Sessions) > 0 {
		h.sessions = h.sessions[:0]
		for _, win := range spec.Sessions {
			h.sessions = append(h.sessions, session{start: win.Start, end: win.End})
		}
	}
	w.addHost(h)
	return h.IP
}
