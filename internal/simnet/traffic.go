package simnet

import (
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"exiot/internal/device"
	"exiot/internal/packet"
	"exiot/internal/telemetry"
)

// Telemetry handles for the generation stage (see docs/OPERATIONS.md).
var (
	metPacketsGenerated = telemetry.Default().Counter("exiot_simnet_packets_generated_total",
		"Telescope packets synthesized by the world simulator.")
	metHoursGenerated = telemetry.Default().Counter("exiot_simnet_hours_generated_total",
		"Simulated capture hours generated.")
)

// GenerateHour produces every telescope-observed packet with a timestamp
// in [hour, hour+1h), sorted by time. Generation is deterministic per
// (world, hour) and independent of the worker count: the canonical order
// is (timestamp, host index), so the serial sort and the parallel merge
// produce byte-identical streams. Uses Config.Workers workers
// (0 = GOMAXPROCS).
func (w *World) GenerateHour(hour time.Time) []packet.Packet {
	return w.GenerateHourWorkers(hour, w.cfg.Workers)
}

// GenerateHourWorkers is GenerateHour with an explicit worker count.
// workers <= 0 selects GOMAXPROCS; workers == 1 runs the legacy serial
// path. Each host's rng is seeded from (host seed, hour) alone, so the
// per-host streams are identical no matter which worker generates them.
func (w *World) GenerateHourWorkers(hour time.Time, workers int) []packet.Packet {
	span := telemetry.Default().StartSpan("generate")
	defer span.End()
	hourEnd := hour.Add(time.Hour)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(w.hosts) {
		workers = len(w.hosts)
	}
	if workers <= 1 {
		// Serial path: generate per-host time-ordered runs, then k-way
		// merge them keyed by (timestamp, host index) — the canonical
		// order, identical to a stable sort of the runs' concatenation
		// but without moving every ~150-byte packet O(n log n) times
		// through the reflect-based sorter (which dominated the ingest
		// profile before the merge).
		runs := make([][]packet.Packet, len(w.hosts))
		for hi, h := range w.hosts {
			runs[hi] = w.generateHost(nil, h, hour, hourEnd)
		}
		merged := mergeRuns(runs)
		metPacketsGenerated.Add(int64(len(merged)))
		metHoursGenerated.Inc()
		return merged
	}

	// Parallel path: generate per-host sorted runs on a worker pool, then
	// k-way merge them keyed by (timestamp, host index).
	runs := make([][]packet.Packet, len(w.hosts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				hi := int(next.Add(1)) - 1
				if hi >= len(w.hosts) {
					return
				}
				runs[hi] = w.generateHost(nil, w.hosts[hi], hour, hourEnd)
			}
		}()
	}
	wg.Wait()
	merged := mergeRuns(runs)
	metPacketsGenerated.Add(int64(len(merged)))
	metHoursGenerated.Inc()
	return merged
}

// mergeRuns k-way merges per-host time-sorted runs into one stream
// ordered by (timestamp, run index) — identical to a stable sort of the
// runs' concatenation.
func mergeRuns(runs [][]packet.Packet) []packet.Packet {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	if total == 0 {
		return nil
	}

	// Min-heap of run heads, keyed (timestamp, run index).
	type head struct {
		ts  int64
		run int
	}
	less := func(a, b head) bool {
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		return a.run < b.run
	}
	heap := make([]head, 0, len(runs))
	push := func(h head) {
		heap = append(heap, h)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	fixDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}

	pos := make([]int, len(runs))
	for ri, r := range runs {
		if len(r) > 0 {
			push(head{ts: r[0].Timestamp.UnixNano(), run: ri})
		}
	}
	out := make([]packet.Packet, 0, total)
	for len(heap) > 0 {
		h := heap[0]
		r := runs[h.run]
		out = append(out, r[pos[h.run]])
		pos[h.run]++
		if pos[h.run] < len(r) {
			heap[0] = head{ts: r[pos[h.run]].Timestamp.UnixNano(), run: h.run}
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		fixDown()
	}
	return out
}

// telescopeShare is the fraction of Internet-wide random-target traffic
// the telescope observes.
func (w *World) telescopeShare() float64 {
	return float64(w.cfg.Telescope.Size()) / math.Pow(2, 32)
}

func (w *World) generateHost(out []packet.Packet, h *Host, from, to time.Time) []packet.Packet {
	rng := rand.New(rand.NewSource(h.seed ^ from.Unix()))
	for _, s := range h.sessions {
		start, end := s.start, s.end
		if start.Before(from) {
			start = from
		}
		if end.After(to) {
			end = to
		}
		if !start.Before(end) {
			continue
		}
		out = w.generateSession(out, h, rng, start, end)
	}
	return out
}

func (w *World) generateSession(out []packet.Packet, h *Host, rng *rand.Rand, start, end time.Time) []packet.Packet {
	// Misconfigured nodes aim at one mistyped telescope address, so the
	// telescope sees their full rate; scanners and backscatter sources
	// spray IPv4 at random, so it sees rate/256.
	observedRate := h.rate * w.telescopeShare()
	if h.Kind == KindMisconfigured {
		observedRate = h.rate
	}
	if observedRate <= 0 {
		return out
	}
	meanGap := 1.0 / observedRate

	// Preallocate for the expected packet count (rate × duration, capped
	// by the per-host-hour budget) instead of growing through repeated
	// append doublings.
	expected := int(observedRate*end.Sub(start).Seconds()) + 1
	if expected > w.cfg.MaxPacketsPerHostHour {
		expected = w.cfg.MaxPacketsPerHostHour
	}
	out = slices.Grow(out, expected)

	gen := newPacketGen(w, h, rng)
	t := start
	count := 0
	for t.Before(end) && count < w.cfg.MaxPacketsPerHostHour {
		out = append(out, gen.next(t))
		count++
		gap := meanGap * (1 + h.jitter*rng.NormFloat64())
		if gap < meanGap*0.05 {
			gap = meanGap * 0.05
		}
		t = t.Add(time.Duration(gap * float64(time.Second)))
	}
	return out
}

// packetGen builds consecutive packets for one host session.
type packetGen struct {
	w   *World
	h   *Host
	rng *rand.Rand

	srcPortBase  uint16
	srcPortSeq   uint16
	ipidSeq      uint16
	zmapPort     uint16 // fixed target port for the current ZMap sweep
	windowIdx    int
	misconfigDst packet.IP
}

func newPacketGen(w *World, h *Host, rng *rand.Rand) *packetGen {
	g := &packetGen{
		w:           w,
		h:           h,
		rng:         rng,
		srcPortBase: uint16(32768 + rng.Intn(16384)),
		ipidSeq:     uint16(rng.Intn(65536)),
		windowIdx:   rng.Intn(len(h.stack.Windows)),
	}
	if h.Profile != nil && h.Profile.Tool == device.ToolZMap {
		g.zmapPort = h.Profile.PickPort(rng)
	}
	if h.Kind == KindMisconfigured {
		g.misconfigDst = randomTelescopeIP(w, rng)
	}
	return g
}

func randomTelescopeIP(w *World, rng *rand.Rand) packet.IP {
	return w.cfg.Telescope.Nth(uint64(rng.Int63n(int64(w.cfg.Telescope.Size()))))
}

func (g *packetGen) next(ts time.Time) packet.Packet {
	switch g.h.Kind {
	case KindInfectedIoT:
		return g.iotScan(ts)
	case KindNonIoTScanner, KindResearchScanner:
		return g.toolScan(ts)
	case KindMisconfigured:
		return g.misconfig(ts)
	case KindBackscatter:
		return g.backscatter(ts)
	default:
		return g.misconfig(ts)
	}
}

// iotScan emits one SYN probe from an infected IoT device.
func (g *packetGen) iotScan(ts time.Time) packet.Packet {
	h, rng := g.h, g.rng
	dst := randomTelescopeIP(g.w, rng)
	p := packet.Packet{
		Timestamp: ts,
		TOS:       h.stack.TOS,
		TTL:       h.stack.TTL - h.hops,
		Proto:     packet.TCP,
		SrcIP:     h.IP,
		DstIP:     dst,
		DstPort:   h.Family.PickPort(rng),
		Flags:     packet.FlagSYN,
	}
	if h.Family.SeqEqualsDst {
		// Mirai's raw-socket scanner: seq = destination address, random
		// high source port, random window, no TCP options.
		p.Seq = uint32(dst)
		p.SrcPort = uint16(1024 + rng.Intn(64511))
		p.Window = uint16(1024 + rng.Intn(64511))
		g.ipidSeq = uint16(rng.Intn(65536))
		p.ID = g.ipidSeq
	} else {
		// connect()-based scanners inherit the embedded stack.
		p.Seq = rng.Uint32()
		g.srcPortSeq++
		p.SrcPort = g.srcPortBase + g.srcPortSeq%8192
		p.Window = h.stack.Windows[g.windowIdx]
		g.ipidSeq++
		p.ID = g.ipidSeq
		p.Options = stackOptions(h.stack)
	}
	p.Normalize()
	return p
}

// toolScan emits one probe from a scanning toolchain (ZMap, Masscan,
// Nmap, ...), reproducing each tool's published on-wire fingerprint.
func (g *packetGen) toolScan(ts time.Time) packet.Packet {
	h, rng := g.h, g.rng
	dst := randomTelescopeIP(g.w, rng)
	p := packet.Packet{
		Timestamp: ts,
		TTL:       h.stack.TTL - h.hops,
		Proto:     packet.TCP,
		SrcIP:     h.IP,
		DstIP:     dst,
		Flags:     packet.FlagSYN,
	}
	switch h.Profile.Tool {
	case device.ToolZMap:
		// ZMap: constant IP ID 54321, no TCP options, window 65535,
		// one port per sweep, validation-encoded sequence number.
		p.ID = 54321
		p.DstPort = g.zmapPort
		p.SrcPort = g.srcPortBase
		p.Seq = uint32(dst)*2654435761 + 12345
		p.Window = 65535
	case device.ToolMasscan:
		// Masscan: ip.id = dstIP ^ dstPort ^ seq (low 16 bits).
		p.DstPort = h.Profile.PickPort(rng)
		p.SrcPort = g.srcPortBase
		p.Seq = rng.Uint32()
		p.ID = uint16(uint32(dst)) ^ p.DstPort ^ uint16(p.Seq)
		p.Window = 1024
	case device.ToolNmap:
		// Nmap SYN scan: window 1024, MSS 1460 option only.
		p.DstPort = h.Profile.PickPort(rng)
		g.srcPortSeq++
		p.SrcPort = g.srcPortBase + g.srcPortSeq%4096
		p.Seq = rng.Uint32()
		p.Window = 1024
		p.Options = packet.TCPOptions{HasMSS: true, MSS: 1460}
		g.ipidSeq++
		p.ID = g.ipidSeq
	default:
		// Unicornscan / custom tools: full OS stack.
		p.DstPort = h.Profile.PickPort(rng)
		g.srcPortSeq++
		p.SrcPort = g.srcPortBase + g.srcPortSeq%8192
		p.Seq = rng.Uint32()
		p.Window = h.stack.Windows[g.windowIdx]
		p.Options = stackOptions(h.stack)
		g.ipidSeq++
		p.ID = g.ipidSeq
	}
	p.Normalize()
	return p
}

// misconfig emits traffic from a malfunctioning node: repeated UDP
// datagrams (e.g. DNS retries) to one mistyped address.
func (g *packetGen) misconfig(ts time.Time) packet.Packet {
	h, rng := g.h, g.rng
	p := packet.Packet{
		Timestamp:  ts,
		TTL:        h.stack.TTL - h.hops,
		Proto:      packet.UDP,
		SrcIP:      h.IP,
		DstIP:      g.misconfigDst,
		SrcPort:    g.srcPortBase,
		DstPort:    53,
		PayloadLen: uint16(30 + rng.Intn(40)),
	}
	p.Normalize()
	return p
}

// backscatter emits one response a DDoS victim sends to a spoofed source
// that happens to be a telescope address.
func (g *packetGen) backscatter(ts time.Time) packet.Packet {
	h, rng := g.h, g.rng
	dst := randomTelescopeIP(g.w, rng)
	p := packet.Packet{
		Timestamp: ts,
		TTL:       h.stack.TTL - h.hops,
		SrcIP:     h.IP,
		DstIP:     dst,
	}
	switch rng.Intn(10) {
	case 0: // ICMP port unreachable
		p.Proto = packet.ICMP
		p.ICMPType = packet.ICMPDestUnreach
		p.ICMPCode = packet.ICMPCodePortUnreach
	case 1, 2, 3: // RST(+ACK)
		p.Proto = packet.TCP
		p.SrcPort = 80
		p.DstPort = uint16(1024 + rng.Intn(64511))
		p.Flags = packet.FlagRST | packet.FlagACK
		p.Seq = rng.Uint32()
	default: // SYN-ACK
		p.Proto = packet.TCP
		if rng.Intn(2) == 0 {
			p.SrcPort = 443
		} else {
			p.SrcPort = 80
		}
		p.DstPort = uint16(1024 + rng.Intn(64511))
		p.Flags = packet.FlagSYN | packet.FlagACK
		p.Seq = rng.Uint32()
		p.Ack = rng.Uint32()
		p.Window = h.stack.Windows[g.windowIdx]
		p.Options = stackOptions(h.stack)
	}
	p.Normalize()
	return p
}

func stackOptions(s device.StackProfile) packet.TCPOptions {
	o := packet.TCPOptions{}
	if s.MSS != 0 {
		o.HasMSS = true
		o.MSS = s.MSS
	}
	if s.UseWScale {
		o.HasWScale = true
		o.WScale = s.WScale
	}
	o.SACKPermitted = s.UseSACKOK
	o.Timestamp = s.UseTS
	o.NOP = s.UseNOP
	return o
}
