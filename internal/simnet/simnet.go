// Package simnet simulates the Internet as seen by a /8 network telescope.
// It is the substitute for the CAIDA UCSD telescope feed the paper
// consumes: a deterministic world of infected IoT devices (scanning with
// malware-family-specific behaviour), non-IoT scanning hosts (research
// scanners and compromised servers), misconfigured nodes, and DDoS
// backscatter sources. The world answers active probes too, standing in
// for the real Internet that ZMap/ZGrab would scan.
//
// The detection pipeline must never read the world's ground truth — it
// only consumes generated packets and probe responses. Ground truth
// accessors exist solely for evaluation harnesses.
package simnet

import (
	"math/rand"
	"sort"
	"strings"
	"time"

	"exiot/internal/device"
	"exiot/internal/packet"
	"exiot/internal/registry"
)

// HostKind classifies simulated hosts.
type HostKind int

// Host kinds present in telescope traffic.
const (
	KindInfectedIoT HostKind = iota + 1
	KindNonIoTScanner
	KindResearchScanner
	KindMisconfigured
	KindBackscatter
)

// String returns a human-readable kind name.
func (k HostKind) String() string {
	switch k {
	case KindInfectedIoT:
		return "infected-iot"
	case KindNonIoTScanner:
		return "non-iot-scanner"
	case KindResearchScanner:
		return "research-scanner"
	case KindMisconfigured:
		return "misconfigured"
	case KindBackscatter:
		return "backscatter"
	default:
		return "unknown"
	}
}

// session is one contiguous scanning window of a host.
type session struct {
	start, end time.Time
}

// service is one instantiated network service on a host.
type service struct {
	protocol string
	banner   string
}

// Host is one simulated Internet host.
type Host struct {
	IP   packet.IP
	Kind HostKind

	// Ground truth for infected IoT devices.
	Model    *device.Model
	Firmware string
	Family   *device.MalwareFamily

	// Ground truth for non-IoT scanners.
	Profile     *device.NonIoTProfile
	ResearchOrg string

	// rate is the host's Internet-wide scan rate in pps; the telescope
	// observes rate/256 of it (a /8 covers 1/256 of IPv4).
	rate   float64
	jitter float64
	stack  device.StackProfile

	// Probe reachability.
	behindNAT   bool
	portsClosed bool
	services    map[uint16]service

	sessions []session
	seed     int64
	hops     uint8 // path length to the telescope, fixed per host
}

// ActiveDuring reports whether any scan session overlaps [from, to).
func (h *Host) ActiveDuring(from, to time.Time) bool {
	for _, s := range h.sessions {
		if s.start.Before(to) && s.end.After(from) {
			return true
		}
	}
	return false
}

// FirstActive returns the start of the host's first scan session.
func (h *Host) FirstActive() time.Time {
	if len(h.sessions) == 0 {
		return time.Time{}
	}
	return h.sessions[0].start
}

// FirstActiveIn returns the start of the host's first scan session
// overlapping [from, to).
func (h *Host) FirstActiveIn(from, to time.Time) (time.Time, bool) {
	for _, s := range h.sessions {
		if s.start.Before(to) && s.end.After(from) {
			if s.start.Before(from) {
				return from, true
			}
			return s.start, true
		}
	}
	return time.Time{}, false
}

// Rate returns the host's Internet-wide scan rate in packets per second
// (ground truth; evaluation only).
func (h *Host) Rate() float64 { return h.rate }

// ActiveDurationIn returns the total time the host spends scanning inside
// [from, to).
func (h *Host) ActiveDurationIn(from, to time.Time) time.Duration {
	var total time.Duration
	for _, s := range h.sessions {
		start, end := s.start, s.end
		if start.Before(from) {
			start = from
		}
		if end.After(to) {
			end = to
		}
		if start.Before(end) {
			total += end.Sub(start)
		}
	}
	return total
}

// IsIoT reports the ground-truth IoT label of the host.
func (h *Host) IsIoT() bool { return h.Kind == KindInfectedIoT }

// SeqEqualsDst reports whether the host's scanner carries the Mirai
// seq==dstIP fingerprint third parties key on.
func (h *Host) SeqEqualsDst() bool {
	return h.Family != nil && h.Family.SeqEqualsDst
}

// TargetsAnyPort reports whether the host's scanning behaviour covers at
// least one of the given ports.
func (h *Host) TargetsAnyPort(ports map[uint16]bool) bool {
	switch {
	case h.Family != nil:
		for _, pw := range h.Family.Ports {
			if ports[pw.Port] {
				return true
			}
		}
	case h.Profile != nil:
		for _, pw := range h.Profile.Ports {
			if ports[pw.Port] {
				return true
			}
		}
	}
	return false
}

// MiraiLineage reports whether the host is infected with Mirai or one of
// its descendants.
func (h *Host) MiraiLineage() bool {
	return h.Family != nil && h.Family.MiraiLineage
}

// Config parameterizes world construction. The zero value is unusable;
// use DefaultConfig as a baseline.
type Config struct {
	Seed     int64
	Registry *registry.Registry
	// Telescope is the monitored dark address space.
	Telescope packet.Prefix
	// Start and Days bound the simulated period.
	Start time.Time
	Days  int

	// Workers is the generation worker-pool size for GenerateHour:
	// 0 = GOMAXPROCS, 1 = serial. The output is identical either way.
	Workers int

	// Population sizes.
	NumInfected  int
	NumNonIoT    int
	NumResearch  int
	NumMisconfig int
	NumBackscat  int

	// MaxPacketsPerHostHour caps per-host hourly volume to bound memory;
	// the cap truncates a session early rather than thinning it, so
	// inter-arrival statistics (a classifier feature) stay intact.
	MaxPacketsPerHostHour int

	// NATFraction and ClosedFraction control active-probe reachability of
	// infected devices. Defaults reproduce the paper's §VI observation
	// that <10 % of infected hosts return banners.
	NATFraction    float64
	ClosedFraction float64
	// GenericBannerFraction is the share of banner-returning IoT devices
	// whose banners carry no device-identifying text (paper: only ~3 % of
	// infected hosts yield textual details, i.e. ~30 % of the ~10 %).
	GenericBannerFraction float64
	// ServerBannerFraction is the share of infected IoT devices that run
	// stock server software (OpenSSH/nginx from a full distro image —
	// common on gateways and NAS boxes). Their banners read non-IoT, so
	// banner-derived training labels carry realistic noise: this is a
	// driver of the paper's coverage gap (recall 77 %).
	ServerBannerFraction float64
	// ToolEmbeddedBannerFraction is the converse: non-IoT scan boxes
	// (cheap VPSes) exposing embedded-flavored software (dropbear, Boa),
	// which banner rules mislabel IoT — a driver of the precision gap.
	ToolEmbeddedBannerFraction float64

	// Emerging, when set, injects a previously unseen botnet
	// (device.EmergingFamily) partway through the span — the drift the
	// daily retrain must adapt to.
	Emerging *EmergingConfig
}

// EmergingConfig parameterizes a mid-deployment botnet emergence.
type EmergingConfig struct {
	// StartDay is the zero-based day the new family activates.
	StartDay int
	// Count is how many devices it infects.
	Count int
}

// DefaultConfig returns a laptop-scale world configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                       seed,
		Telescope:                  packet.MustParsePrefix("10.0.0.0/8"),
		Start:                      time.Date(2020, 12, 7, 0, 0, 0, 0, time.UTC),
		Days:                       1,
		NumInfected:                300,
		NumNonIoT:                  60,
		NumResearch:                6,
		NumMisconfig:               40,
		NumBackscat:                10,
		MaxPacketsPerHostHour:      4000,
		NATFraction:                0.50,
		ClosedFraction:             0.80,
		GenericBannerFraction:      0.70,
		ServerBannerFraction:       0.10,
		ToolEmbeddedBannerFraction: 0.25,
	}
}

// World is the simulated Internet.
type World struct {
	cfg   Config
	reg   *registry.Registry
	hosts []*Host
	byIP  map[packet.IP]*Host
}

// NewWorld deterministically builds a world from cfg.
func NewWorld(cfg Config) *World {
	if cfg.Telescope.Bits == 0 {
		cfg.Telescope = packet.MustParsePrefix("10.0.0.0/8")
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	if cfg.MaxPacketsPerHostHour <= 0 {
		cfg.MaxPacketsPerHostHour = 4000
	}
	if cfg.NATFraction == 0 && cfg.ClosedFraction == 0 {
		cfg.NATFraction, cfg.ClosedFraction = 0.50, 0.80
	}
	if cfg.GenericBannerFraction == 0 {
		cfg.GenericBannerFraction = 0.70
	}
	if cfg.ServerBannerFraction == 0 {
		cfg.ServerBannerFraction = 0.10
	}
	if cfg.ToolEmbeddedBannerFraction == 0 {
		cfg.ToolEmbeddedBannerFraction = 0.25
	}
	reg := cfg.Registry
	if reg == nil {
		reg = registry.Build(registry.Config{Seed: cfg.Seed, Blocks: 1024})
	}
	w := &World{cfg: cfg, reg: reg, byIP: make(map[packet.IP]*Host)}
	rng := rand.New(rand.NewSource(cfg.Seed))

	for i := 0; i < cfg.NumInfected; i++ {
		w.addHost(w.buildInfected(rng))
	}
	for i := 0; i < cfg.NumNonIoT; i++ {
		w.addHost(w.buildNonIoT(rng, false))
	}
	for i := 0; i < cfg.NumResearch; i++ {
		w.addHost(w.buildNonIoT(rng, true))
	}
	if cfg.Emerging != nil {
		for i := 0; i < cfg.Emerging.Count; i++ {
			w.addHost(w.buildEmergingInfected(rng, cfg.Emerging.StartDay))
		}
	}
	for i := 0; i < cfg.NumMisconfig; i++ {
		w.addHost(w.buildMisconfig(rng))
	}
	for i := 0; i < cfg.NumBackscat; i++ {
		w.addHost(w.buildBackscatter(rng))
	}
	return w
}

func (w *World) addHost(h *Host) {
	if _, dup := w.byIP[h.IP]; dup {
		return // vanishingly rare collision; drop rather than overwrite
	}
	w.byIP[h.IP] = h
	w.hosts = append(w.hosts, h)
}

// span returns the simulated period bounds.
func (w *World) span() (time.Time, time.Time) {
	return w.cfg.Start, w.cfg.Start.Add(time.Duration(w.cfg.Days) * 24 * time.Hour)
}

// makeSessions builds scan sessions inside the simulated span. meanDur and
// meanGap shape session length and inter-session silence.
func makeSessions(rng *rand.Rand, from, to time.Time, meanDur, meanGap time.Duration) []session {
	var out []session
	// Hosts come online at a random instant in the first 80 % of the span
	// so each day surfaces new sources.
	span := to.Sub(from)
	t := from.Add(time.Duration(rng.Float64() * 0.8 * float64(span)))
	for t.Before(to) {
		d := time.Duration((0.5 + rng.Float64()) * float64(meanDur))
		end := t.Add(d)
		if end.After(to) {
			end = to
		}
		out = append(out, session{start: t, end: end})
		gap := time.Duration((0.5 + rng.Float64()*1.5) * float64(meanGap))
		t = end.Add(gap)
	}
	return out
}

func (w *World) buildInfected(rng *rand.Rand) *Host {
	from, to := w.span()
	m := device.PickModel(rng)
	fam := device.PickFamily(rng)
	h := &Host{
		IP:          w.reg.PickInfectedHost(rng),
		Kind:        KindInfectedIoT,
		Model:       m,
		Firmware:    m.Firmwares[rng.Intn(len(m.Firmwares))],
		Family:      fam,
		rate:        fam.RateMin + rng.Float64()*(fam.RateMax-fam.RateMin),
		jitter:      fam.Jitter,
		stack:       m.Stack,
		behindNAT:   rng.Float64() < w.cfg.NATFraction,
		portsClosed: rng.Float64() < w.cfg.ClosedFraction,
		// Long scan sessions with long silences: an infected device is
		// typically one flow instance per day-ish, so the instance/unique
		// ratio of a multi-day snapshot stays modest (Table V reports
		// ~16 % redundancy).
		sessions: makeSessions(rng, from, to, 9*time.Hour, 9*time.Hour),
		seed:     rng.Int63(),
		hops:     uint8(5 + rng.Intn(21)),
	}
	if rng.Float64() < w.cfg.ServerBannerFraction {
		// Stock distro image: the device answers with server software
		// and its banner truth reads non-IoT.
		h.services = map[uint16]service{
			22: {protocol: "ssh", banner: "SSH-2.0-OpenSSH_7.4"},
			80: {protocol: "http", banner: "HTTP/1.1 200 OK\r\nServer: nginx/1.10.3\r\n\r\n<title>Welcome</title>"},
		}
		return h
	}
	h.services = make(map[uint16]service, len(m.Services))
	// Generic devices hide identifying text on every service (vendors
	// that strip banners, including identifying SSH strings), leaving
	// only embedded-software hints.
	generic := rng.Float64() < w.cfg.GenericBannerFraction
	for _, st := range m.Services {
		banner := st.Render(m, h.Firmware)
		if generic {
			banner = genericEmbeddedBanner(st.Protocol)
		}
		h.services[st.Port] = service{protocol: st.Protocol, banner: banner}
	}
	return h
}

// buildEmergingInfected builds a device infected by the emerging family:
// identical catalog hardware, but scanning with the new botnet's
// behaviour and only from startDay onward.
func (w *World) buildEmergingInfected(rng *rand.Rand, startDay int) *Host {
	h := w.buildInfected(rng)
	h.Family = &device.EmergingFamily
	h.rate = device.EmergingFamily.RateMin +
		rng.Float64()*(device.EmergingFamily.RateMax-device.EmergingFamily.RateMin)
	h.jitter = device.EmergingFamily.Jitter
	from, to := w.span()
	emerge := from.Add(time.Duration(startDay) * 24 * time.Hour)
	if emerge.After(to) {
		emerge = to
	}
	h.sessions = makeSessions(rng, emerge, to, 4*time.Hour, 2*time.Hour)
	return h
}

// genericEmbeddedBanner returns a banner that reveals an embedded device
// without identifying vendor or model — the common case in the wild.
func genericEmbeddedBanner(protocol string) string {
	switch protocol {
	case "http", "https":
		return "HTTP/1.1 200 OK\r\nServer: Boa/0.94.13\r\n\r\n<title>login</title>"
	case "ssh":
		return "SSH-2.0-dropbear_2014.63"
	case "ftp":
		return "220 FTP server ready."
	case "telnet":
		return "\r\nlogin: "
	case "rtsp":
		return "RTSP/1.0 200 OK\r\nServer: Rtsp Server"
	default:
		return ""
	}
}

func (w *World) buildNonIoT(rng *rand.Rand, research bool) *Host {
	from, to := w.span()
	p := device.PickNonIoTProfile(rng)
	h := &Host{
		Kind:     KindNonIoTScanner,
		Profile:  p,
		rate:     p.RateMin + rng.Float64()*(p.RateMax-p.RateMin),
		jitter:   p.Jitter,
		stack:    p.Stack,
		sessions: makeSessions(rng, from, to, 90*time.Minute, 4*time.Hour),
		seed:     rng.Int63(),
		hops:     uint8(5 + rng.Intn(21)),
	}
	if research {
		ip, org := w.reg.PickResearchScanner(rng)
		h.IP = ip
		h.Kind = KindResearchScanner
		h.ResearchOrg = org.Name
		// Research scanners run ZMap-style tooling around the clock.
		zp := &device.NonIoTProfiles[0]
		h.Profile = zp
		h.rate = zp.RateMin + rng.Float64()*(zp.RateMax-zp.RateMin)
		h.jitter = zp.Jitter
		h.stack = zp.Stack
		h.sessions = []session{{start: from, end: to}}
	} else {
		h.IP = w.reg.PickNonIoTHost(rng)
	}
	h.services = make(map[uint16]service, len(p.Services))
	for _, st := range p.Services {
		h.services[st.Port] = service{protocol: st.Protocol, banner: st.Template}
	}
	if !research && rng.Float64() < w.cfg.ToolEmbeddedBannerFraction {
		// Cheap VPS running embedded-flavored software: its banner truth
		// reads IoT even though the host is a scan box.
		h.services[22] = service{protocol: "ssh", banner: "SSH-2.0-dropbear_2017.75"}
		h.services[80] = service{protocol: "http", banner: "HTTP/1.1 200 OK\r\nServer: Boa/0.94.14rc21\r\n\r\n<title>panel</title>"}
	}
	// Servers are mostly probe-reachable.
	h.behindNAT = rng.Float64() < 0.10
	h.portsClosed = rng.Float64() < 0.30
	return h
}

func (w *World) buildMisconfig(rng *rand.Rand) *Host {
	from, to := w.span()
	// One short burst somewhere in the span: the node-malfunction traffic
	// the paper's duration/volume thresholds are designed to exclude.
	start := from.Add(time.Duration(rng.Float64() * float64(to.Sub(from))))
	burst := time.Duration(5+rng.Intn(50)) * time.Second
	return &Host{
		IP:       w.reg.PickNonIoTHost(rng),
		Kind:     KindMisconfigured,
		rate:     float64(200 + rng.Intn(800)), // burst rate, Internet-wide
		jitter:   0.8,
		stack:    device.NonIoTProfiles[0].Stack,
		sessions: []session{{start: start, end: start.Add(burst)}},
		seed:     rng.Int63(),
		hops:     uint8(5 + rng.Intn(21)),
	}
}

func (w *World) buildBackscatter(rng *rand.Rand) *Host {
	from, to := w.span()
	return &Host{
		IP:       w.reg.PickNonIoTHost(rng),
		Kind:     KindBackscatter,
		rate:     float64(2000 + rng.Intn(20000)),
		jitter:   0.2,
		stack:    device.NonIoTProfiles[0].Stack,
		sessions: makeSessions(rng, from, to, 30*time.Minute, 8*time.Hour),
		seed:     rng.Int63(),
		hops:     uint8(5 + rng.Intn(21)),
	}
}

// InjectZMapScan adds a controlled ZMap scanner to the world: one host
// running a single sweep of port at rate pps over [start, start+dur).
// This reproduces the paper's latency experiment ("we execute a 3-hour
// Internet-wide scanning for port 80 with a rate of 1000 pps"). The
// returned address identifies the injected scanner in the feed.
func (w *World) InjectZMapScan(start time.Time, dur time.Duration, port uint16, rate float64) packet.IP {
	rng := rand.New(rand.NewSource(w.cfg.Seed ^ int64(port)<<16 ^ start.Unix()))
	profile := &device.NonIoTProfile{
		Tool:    device.ToolZMap,
		Type:    device.TypeServer,
		Ports:   []device.PortWeight{{Port: port, Weight: 1}},
		RateMin: rate, RateMax: rate,
		Jitter: 0.02,
		Stack:  device.NonIoTProfiles[0].Stack,
	}
	h := &Host{
		IP:       w.reg.PickNonIoTHost(rng),
		Kind:     KindNonIoTScanner,
		Profile:  profile,
		rate:     rate,
		jitter:   profile.Jitter,
		stack:    profile.Stack,
		sessions: []session{{start: start, end: start.Add(dur)}},
		seed:     rng.Int63(),
		hops:     12,
	}
	w.addHost(h)
	return h.IP
}

// Hosts returns all simulated hosts (ground truth; evaluation only).
func (w *World) Hosts() []*Host { return w.hosts }

// HostByIP returns the host owning ip (ground truth; evaluation only).
func (w *World) HostByIP(ip packet.IP) (*Host, bool) {
	h, ok := w.byIP[ip]
	return h, ok
}

// Registry exposes the registry the world was placed into.
func (w *World) Registry() *registry.Registry { return w.reg }

// Telescope returns the monitored prefix.
func (w *World) Telescope() packet.Prefix { return w.cfg.Telescope }

// Start returns the beginning of the simulated span.
func (w *World) Start() time.Time { return w.cfg.Start }

// Days returns the simulated span length in days.
func (w *World) Days() int { return w.cfg.Days }

// CountKind returns the number of hosts of kind k.
func (w *World) CountKind(k HostKind) int {
	n := 0
	for _, h := range w.hosts {
		if h.Kind == k {
			n++
		}
	}
	return n
}

// VendorBreakdown tallies ground-truth vendors of infected hosts
// (evaluation only).
func (w *World) VendorBreakdown() map[string]int {
	out := map[string]int{}
	for _, h := range w.hosts {
		if h.Kind == KindInfectedIoT {
			out[h.Model.Vendor]++
		}
	}
	return out
}

// sortHostsByIP gives tests a stable host ordering.
func sortHostsByIP(hs []*Host) {
	sort.Slice(hs, func(i, j int) bool { return hs[i].IP < hs[j].IP })
}

// bannerIsTextual reports whether a banner carries device-identifying text
// per the paper's generic extraction regex (letters+digits tokens such as
// model numbers). Used by evaluation to measure the ~3 % textual share.
func bannerIsTextual(banner string) bool {
	return strings.Contains(banner, "AXIS") || textualToken(banner)
}

func textualToken(s string) bool {
	// Simplified shape of the paper's rule "[a-z]+[-]?[a-z!]*[0-9]+...":
	// a letter run immediately followed by digits (e.g. "FI9821P",
	// "DIR-615", "RouterOS 6.45").
	lower := strings.ToLower(s)
	runLetters := 0
	for i := 0; i < len(lower); i++ {
		c := lower[i]
		switch {
		case c >= 'a' && c <= 'z':
			runLetters++
		case c == '-' && runLetters > 0:
			// allow a single hyphen inside the token
		case c >= '0' && c <= '9':
			if runLetters >= 2 {
				return true
			}
			runLetters = 0
		default:
			runLetters = 0
		}
	}
	return false
}
