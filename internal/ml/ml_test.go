package ml

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

// blobs builds a linearly separable two-Gaussian dataset.
func blobs(n int, sep float64, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	var ds Dataset
	for i := 0; i < n; i++ {
		y := i % 2
		center := -sep / 2
		if y == 1 {
			center = sep / 2
		}
		x := []float64{center + rng.NormFloat64(), center + rng.NormFloat64(), rng.NormFloat64()}
		ds.Append(x, y)
	}
	return ds
}

// xor builds a dataset only non-linear models can fit.
func xor(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	var ds Dataset
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		y := 0
		if (a > 0) != (b > 0) {
			y = 1
		}
		ds.Append([]float64{a, b}, y)
	}
	return ds
}

func TestDatasetValidate(t *testing.T) {
	var empty Dataset
	if err := empty.Validate(); err == nil {
		t.Error("empty dataset should not validate")
	}
	ds := Dataset{X: [][]float64{{1, 2}}, Y: []int{0, 1}}
	if err := ds.Validate(); err == nil {
		t.Error("mismatched lengths should not validate")
	}
	ds = Dataset{X: [][]float64{{1, 2}, {1}}, Y: []int{0, 1}}
	if err := ds.Validate(); err == nil {
		t.Error("ragged features should not validate")
	}
	ds = Dataset{X: [][]float64{{1, 2}}, Y: []int{3}}
	if err := ds.Validate(); err == nil {
		t.Error("non-binary label should not validate")
	}
	ds = blobs(10, 2, 1)
	if err := ds.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
}

func TestSplitProportions(t *testing.T) {
	ds := blobs(1000, 2, 2)
	train, test := ds.Split(0.2, 7)
	if train.Len() != 200 || test.Len() != 800 {
		t.Errorf("split = %d/%d, want 200/800", train.Len(), test.Len())
	}
	// Deterministic per seed.
	train2, _ := ds.Split(0.2, 7)
	for i := range train.Y {
		if train.Y[i] != train2.Y[i] {
			t.Fatal("split not deterministic")
		}
	}
	// No sample lost.
	if train.Len()+test.Len() != ds.Len() {
		t.Error("samples lost in split")
	}
}

func TestTreeFitsTrainingData(t *testing.T) {
	ds := xor(400, 3)
	tree := TrainTree(&ds, TreeConfig{}, nil, nil)
	pred := Predictions(tree, &ds)
	c := ConfusionMatrix(pred, ds.Y)
	if acc := c.Accuracy(); acc < 0.99 {
		t.Errorf("unbounded tree training accuracy = %.3f, want ≈1", acc)
	}
}

func TestTreeDepthBound(t *testing.T) {
	ds := xor(400, 4)
	tree := TrainTree(&ds, TreeConfig{MaxDepth: 3}, nil, nil)
	if d := tree.Depth(); d > 3 {
		t.Errorf("depth = %d, exceeds bound 3", d)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	var ds Dataset
	for i := 0; i < 50; i++ {
		ds.Append([]float64{float64(i)}, 1)
	}
	tree := TrainTree(&ds, TreeConfig{}, nil, nil)
	if len(tree.Nodes) != 1 || tree.Nodes[0].Feature != -1 {
		t.Errorf("single-class data should produce a lone leaf, got %d nodes", len(tree.Nodes))
	}
	if p := tree.PredictProba([]float64{3}); p != 1 {
		t.Errorf("prob = %v, want 1", p)
	}
}

func TestForestGeneralizes(t *testing.T) {
	train := xor(600, 5)
	test := xor(300, 6)
	f := TrainForest(&train, ForestConfig{NumTrees: 40, Seed: 1})
	pred := Predictions(f, &test)
	c := ConfusionMatrix(pred, test.Y)
	if acc := c.Accuracy(); acc < 0.9 {
		t.Errorf("forest XOR test accuracy = %.3f, want ≥0.9", acc)
	}
	auc := ROCAUC(Scores(f, &test), test.Y)
	if auc < 0.95 {
		t.Errorf("forest XOR AUC = %.3f, want ≥0.95", auc)
	}
}

func TestForestDeterministicPerSeed(t *testing.T) {
	ds := blobs(300, 2, 8)
	f1 := TrainForest(&ds, ForestConfig{NumTrees: 10, Seed: 42})
	f2 := TrainForest(&ds, ForestConfig{NumTrees: 10, Seed: 42})
	for i := 0; i < 50; i++ {
		x := []float64{float64(i)/10 - 2, float64(i)/7 - 2, 0}
		if f1.PredictProba(x) != f2.PredictProba(x) {
			t.Fatal("forest training not deterministic per seed")
		}
	}
}

func TestSVMOnLinearlySeparable(t *testing.T) {
	train := blobs(600, 4, 9)
	test := blobs(300, 4, 10)
	svm := TrainSVM(&train, SVMConfig{Seed: 1})
	c := ConfusionMatrix(Predictions(svm, &test), test.Y)
	if acc := c.Accuracy(); acc < 0.9 {
		t.Errorf("SVM accuracy = %.3f on separable blobs, want ≥0.9", acc)
	}
}

func TestSVMFailsOnXOR(t *testing.T) {
	// A linear model cannot fit XOR — this is why the paper's random
	// forest beats the SVM baseline on heterogeneous IoT traffic.
	train := xor(600, 11)
	test := xor(300, 12)
	svm := TrainSVM(&train, SVMConfig{Seed: 1})
	auc := ROCAUC(Scores(svm, &test), test.Y)
	if auc > 0.7 {
		t.Errorf("linear SVM XOR AUC = %.3f; suspiciously high for a linear model", auc)
	}
}

func TestGNBOnBlobs(t *testing.T) {
	train := blobs(600, 4, 13)
	test := blobs(300, 4, 14)
	g := TrainGNB(&train)
	c := ConfusionMatrix(Predictions(g, &test), test.Y)
	if acc := c.Accuracy(); acc < 0.9 {
		t.Errorf("GNB accuracy = %.3f on separable blobs, want ≥0.9", acc)
	}
}

func TestGNBProbabilitiesInRange(t *testing.T) {
	train := blobs(200, 2, 15)
	g := TrainGNB(&train)
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true
		}
		p := g.PredictProba([]float64{a, b, c})
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestROCAUCProperties(t *testing.T) {
	// Perfect ranking → 1.0.
	if auc := ROCAUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1}); auc != 1.0 {
		t.Errorf("perfect AUC = %v", auc)
	}
	// Inverted ranking → 0.0.
	if auc := ROCAUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1}); auc != 0.0 {
		t.Errorf("inverted AUC = %v", auc)
	}
	// All-tied scores → 0.5.
	if auc := ROCAUC([]float64{0.5, 0.5, 0.5, 0.5}, []int{0, 0, 1, 1}); auc != 0.5 {
		t.Errorf("tied AUC = %v", auc)
	}
	// Single class → 0.5 by convention.
	if auc := ROCAUC([]float64{0.1, 0.9}, []int{1, 1}); auc != 0.5 {
		t.Errorf("single-class AUC = %v", auc)
	}
}

func TestROCAUCInvariantToMonotoneTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	scores := make([]float64, 200)
	labels := make([]int, 200)
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Float64() < scores[i] {
			labels[i] = 1
		}
	}
	a := ROCAUC(scores, labels)
	squashed := make([]float64, len(scores))
	for i, s := range scores {
		squashed[i] = math.Tanh(3 * s) // strictly increasing
	}
	b := ROCAUC(squashed, labels)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("AUC not rank-invariant: %v vs %v", a, b)
	}
}

func TestConfusionMetrics(t *testing.T) {
	pred := []int{1, 1, 0, 0, 1, 0}
	lab := []int{1, 0, 0, 1, 1, 0}
	c := ConfusionMatrix(pred, lab)
	if c.TP != 2 || c.FP != 1 || c.TN != 2 || c.FN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if p := c.Precision(); math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if r := c.Recall(); math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	if f := c.F1(); math.Abs(f-2.0/3) > 1e-12 {
		t.Errorf("f1 = %v", f)
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Error("zero confusion should yield zero metrics")
	}
}

func TestSearchForestPicksReasonableModel(t *testing.T) {
	ds := xor(500, 17)
	train, test := ds.Split(0.5, 1)
	best, results := SearchForest(&train, &test, 6, 99)
	if best == nil || len(results) != 6 {
		t.Fatalf("search returned %d results", len(results))
	}
	auc := ROCAUC(Scores(best, &test), test.Y)
	for _, r := range results {
		if r.AUC > auc+1e-9 {
			t.Errorf("search did not return the best model: %.4f available, %.4f chosen", r.AUC, auc)
		}
	}
}

func TestModelPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds := blobs(200, 3, 18)
	f := TrainForest(&ds, ForestConfig{NumTrees: 5, Seed: 3})
	m := &SavedModel{
		TrainedAt:    timeFixed(),
		WindowDays:   14,
		TrainSamples: 40,
		TestSamples:  160,
		AUC:          0.99,
		Forest:       f,
	}
	path, err := SaveModel(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.AUC != m.AUC || back.WindowDays != 14 {
		t.Errorf("metadata lost: %+v", back)
	}
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) - 10, float64(i)/2 - 5, 0}
		if got, want := back.Forest.PredictProba(x), f.PredictProba(x); got != want {
			t.Fatalf("loaded model differs at %v: %v vs %v", x, got, want)
		}
	}

	latest, err := LatestModel(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest == nil || !latest.TrainedAt.Equal(m.TrainedAt) {
		t.Error("LatestModel did not find the archived model")
	}
}

func TestLatestModelEmptyDir(t *testing.T) {
	m, err := LatestModel(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Error("empty archive should return nil")
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel("/nonexistent/model.json"); err == nil {
		t.Error("want error for missing file")
	}
}

func TestSaveModelCrashSafety(t *testing.T) {
	// A crash mid-archive leaves either a .tmp file (never picked up) or
	// a truncated .json (a LoadModel error, but never a silently wrong
	// model). LatestModel must keep returning the newest intact archive.
	dir := t.TempDir()
	ds := blobs(120, 3, 18)
	f := TrainForest(&ds, ForestConfig{NumTrees: 3, Seed: 3})
	good := &SavedModel{TrainedAt: timeFixed(), WindowDays: 14, Forest: f}
	if _, err := SaveModel(dir, good); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash before the rename: a half-written temp file.
	data, _ := json.Marshal(good)
	partialTmp := filepath.Join(dir, modelFileName(timeFixed().Add(24*time.Hour))+".12345.tmp")
	if err := os.WriteFile(partialTmp, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	latest, err := LatestModel(dir)
	if err != nil {
		t.Fatalf("leftover temp file broke the archive: %v", err)
	}
	if latest == nil || !latest.TrainedAt.Equal(good.TrainedAt) {
		t.Fatal("LatestModel did not return the intact archive")
	}

	// A torn canonical file (e.g. copied off a dying disk) must be a
	// loud decode error, not a silent partial model.
	torn := filepath.Join(dir, modelFileName(timeFixed().Add(-24*time.Hour)))
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(torn); err == nil {
		t.Error("want decode error for truncated model file")
	}

	// SaveModel leaves no temp droppings behind on success.
	if _, err := SaveModel(dir, &SavedModel{TrainedAt: timeFixed().Add(48 * time.Hour), Forest: f}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tmps := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			tmps++
		}
	}
	if tmps != 1 { // only the crash-simulated one we planted
		t.Errorf("SaveModel left temp files behind: %d .tmp entries, want 1", tmps)
	}
}

func timeFixed() time.Time {
	return time.Date(2020, 12, 9, 0, 0, 0, 0, time.UTC)
}

func TestFeatureImportances(t *testing.T) {
	// Only dims 0 and 1 carry signal (XOR); they must dominate the
	// importances of a trained forest.
	rng := rand.New(rand.NewSource(20))
	var ds Dataset
	for i := 0; i < 500; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x := []float64{a, b, rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y := 0
		if (a > 0) != (b > 0) {
			y = 1
		}
		ds.Append(x, y)
	}
	f := TrainForest(&ds, ForestConfig{NumTrees: 30, Seed: 2})
	imp := f.FeatureImportances(5)
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance: %v", imp)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v, want 1", sum)
	}
	if imp[0]+imp[1] < 0.6 {
		t.Errorf("signal dims hold %.2f of importance, want dominance: %v", imp[0]+imp[1], imp)
	}
	// Empty forest degrades gracefully.
	empty := &Forest{}
	if got := empty.FeatureImportances(3); len(got) != 3 {
		t.Errorf("empty forest importances = %v", got)
	}
}
