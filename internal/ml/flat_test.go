package ml

import (
	"testing"
)

// flatTestForest trains a moderately sized forest over a synthetic
// two-class dataset (same shape the annotate hot path sees).
func flatTestForest(t testing.TB, trees int) (*Forest, *Dataset) {
	t.Helper()
	var ds Dataset
	const dim = 120
	for i := 0; i < 300; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = float64((i*7+j*13)%101) / 101
			if i%2 == 1 {
				x[j] += 1.2
			}
		}
		ds.Append(x, i%2)
	}
	return TrainForest(&ds, ForestConfig{NumTrees: trees, Seed: 42}), &ds
}

// TestFlattenPredictionsIdentical proves the arena layout is a pure
// re-layout: every score is bit-identical to the pointer forest's.
func TestFlattenPredictionsIdentical(t *testing.T) {
	forest, ds := flatTestForest(t, 50)
	flat := forest.Flatten()
	if flat.NumTrees() != len(forest.Trees) {
		t.Fatalf("NumTrees = %d, want %d", flat.NumTrees(), len(forest.Trees))
	}
	wantNodes := 0
	for _, tr := range forest.Trees {
		wantNodes += len(tr.Nodes)
	}
	if len(flat.Nodes) != wantNodes {
		t.Fatalf("arena holds %d nodes, trees hold %d", len(flat.Nodes), wantNodes)
	}
	for i, x := range ds.X {
		want := forest.PredictProba(x)
		got := flat.PredictProba(x)
		if got != want {
			t.Fatalf("sample %d: flat %v != pointer %v (must be bit-identical)", i, got, want)
		}
	}
}

// TestPredictProbaBatchMatchesSingle proves batch inference is exactly
// the per-row scores, and that a preallocated out slice is reused.
func TestPredictProbaBatchMatchesSingle(t *testing.T) {
	forest, ds := flatTestForest(t, 30)
	flat := forest.Flatten()

	out := make([]float64, 0, len(ds.X))
	got := flat.PredictProbaBatch(ds.X, out)
	if len(got) != len(ds.X) {
		t.Fatalf("batch returned %d scores for %d rows", len(got), len(ds.X))
	}
	if &got[0] != &out[:1][0] {
		t.Error("batch did not reuse the preallocated out slice")
	}
	for i, x := range ds.X {
		if want := flat.PredictProba(x); got[i] != want {
			t.Fatalf("row %d: batch %v != single %v", i, got[i], want)
		}
	}

	// A short out slice must be grown, not panic.
	grown := flat.PredictProbaBatch(ds.X[:5], nil)
	if len(grown) != 5 {
		t.Fatalf("grown batch has %d rows, want 5", len(grown))
	}
}

// TestFlatForestPredictZeroAlloc is the allocation-regression guard for
// the classification hot path: scoring must not allocate.
func TestFlatForestPredictZeroAlloc(t *testing.T) {
	forest, ds := flatTestForest(t, 30)
	flat := forest.Flatten()
	x := ds.X[0]
	if allocs := testing.AllocsPerRun(100, func() {
		flat.PredictProba(x)
	}); allocs != 0 {
		t.Errorf("FlatForest.PredictProba allocates %.1f objects/op, want 0", allocs)
	}

	out := make([]float64, len(ds.X))
	if allocs := testing.AllocsPerRun(20, func() {
		flat.PredictProbaBatch(ds.X, out)
	}); allocs != 0 {
		t.Errorf("FlatForest.PredictProbaBatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFlattenEmptyForest covers the degenerate case.
func TestFlattenEmptyForest(t *testing.T) {
	flat := (&Forest{}).Flatten()
	if got := flat.PredictProba([]float64{1, 2}); got != 0 {
		t.Errorf("empty forest scored %v, want 0", got)
	}
}
