package ml

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// SavedModel wraps a forest with its training metadata, matching the
// paper's practice of archiving every daily model with its training
// timestamp "to make the results easily reproducible".
type SavedModel struct {
	TrainedAt    time.Time `json:"trained_at"`
	WindowDays   int       `json:"window_days"`
	TrainSamples int       `json:"train_samples"`
	TestSamples  int       `json:"test_samples"`
	AUC          float64   `json:"auc"`
	F1           float64   `json:"f1"`
	Forest       *Forest   `json:"forest"`
	// Normalizer carries the training-anchored feature scaler (owned by
	// a higher layer; persisted opaquely so a loaded model can actually
	// score raw flows).
	Normalizer json.RawMessage `json:"normalizer,omitempty"`
}

// modelFileName renders the canonical archive name for a training time.
func modelFileName(trainedAt time.Time) string {
	return "model-" + trainedAt.UTC().Format("20060102-150405") + ".json"
}

// SaveModel archives the model into dir. The write is crash-safe: the
// bytes land in a uniquely named temp file (extension ".tmp", so a
// crashed half-write is never picked up by LatestModel), are fsynced,
// and only then renamed to the canonical ".json" name, with the
// directory synced so the rename itself survives power loss.
func SaveModel(dir string, m *SavedModel) (string, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return "", fmt.Errorf("encode model: %w", err)
	}
	path := filepath.Join(dir, modelFileName(m.TrainedAt))
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return "", fmt.Errorf("write model: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("write model: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("sync model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("close model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("publish model: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return path, nil
}

// LoadModel reads one archived model.
func LoadModel(path string) (*SavedModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read model: %w", err)
	}
	var m SavedModel
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("decode model: %w", err)
	}
	if m.Forest == nil {
		return nil, fmt.Errorf("decode model %s: missing forest", path)
	}
	return &m, nil
}

// LatestModel loads the most recently trained model in dir, or nil when
// the archive is empty.
func LatestModel(dir string) (*SavedModel, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("list model dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names) // timestamped names sort chronologically
	return LoadModel(filepath.Join(dir, names[len(names)-1]))
}
