package ml

import (
	"math"
	"math/rand"
)

// SVMConfig parameterizes the linear SVM baseline (hinge loss, SGD with
// L2 regularization — Pegasos-style).
type SVMConfig struct {
	Epochs int     `json:"epochs"`
	Lambda float64 `json:"lambda"`
	Seed   int64   `json:"seed"`
}

func (c SVMConfig) withDefaults() SVMConfig {
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.Lambda <= 0 {
		c.Lambda = 1e-4
	}
	return c
}

// SVM is a trained linear support-vector machine.
type SVM struct {
	W []float64 `json:"w"`
	B float64   `json:"b"`
}

var _ Classifier = (*SVM)(nil)

// PredictProba maps the signed margin through a sigmoid so the SVM can be
// scored with the same ROC machinery as the probabilistic models.
func (s *SVM) PredictProba(x []float64) float64 {
	m := s.B
	for i, w := range s.W {
		m += w * x[i]
	}
	return 1 / (1 + math.Exp(-m))
}

// TrainSVM fits the linear SVM with Pegasos SGD.
func TrainSVM(ds *Dataset, cfg SVMConfig) *SVM {
	cfg = cfg.withDefaults()
	nf := ds.NumFeatures()
	s := &SVM{W: make([]float64, nf)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := 1
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(ds.Len())
		for _, i := range perm {
			eta := 1 / (cfg.Lambda * float64(t))
			t++
			y := float64(2*ds.Y[i] - 1) // {-1,+1}
			m := s.B
			for j, w := range s.W {
				m += w * ds.X[i][j]
			}
			// L2 shrinkage.
			scale := 1 - eta*cfg.Lambda
			if scale < 0 {
				scale = 0
			}
			for j := range s.W {
				s.W[j] *= scale
			}
			if y*m < 1 { // inside margin: hinge subgradient step
				for j := range s.W {
					s.W[j] += eta * y * ds.X[i][j]
				}
				s.B += eta * y
			}
		}
	}
	return s
}

// GNB is a trained Gaussian Naive Bayes classifier.
type GNB struct {
	Mean  [2][]float64 `json:"mean"`
	Var   [2][]float64 `json:"var"`
	Prior [2]float64   `json:"prior"`
}

var _ Classifier = (*GNB)(nil)

// TrainGNB fits per-class feature Gaussians with variance smoothing.
func TrainGNB(ds *Dataset) *GNB {
	nf := ds.NumFeatures()
	g := &GNB{}
	counts := [2]int{}
	for c := 0; c < 2; c++ {
		g.Mean[c] = make([]float64, nf)
		g.Var[c] = make([]float64, nf)
	}
	for i, x := range ds.X {
		c := ds.Y[i]
		counts[c]++
		for j, v := range x {
			g.Mean[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range g.Mean[c] {
			g.Mean[c][j] /= float64(counts[c])
		}
	}
	for i, x := range ds.X {
		c := ds.Y[i]
		for j, v := range x {
			d := v - g.Mean[c][j]
			g.Var[c][j] += d * d
		}
	}
	const epsilon = 1e-9
	for c := 0; c < 2; c++ {
		if counts[c] > 0 {
			for j := range g.Var[c] {
				g.Var[c][j] = g.Var[c][j]/float64(counts[c]) + epsilon
			}
		}
		g.Prior[c] = float64(counts[c]) / float64(ds.Len())
	}
	return g
}

// PredictProba returns P(class=1 | x) from the class-conditional
// Gaussians via Bayes' rule in log space.
func (g *GNB) PredictProba(x []float64) float64 {
	logp := [2]float64{}
	for c := 0; c < 2; c++ {
		if g.Prior[c] == 0 {
			logp[c] = math.Inf(-1)
			continue
		}
		lp := math.Log(g.Prior[c])
		for j, v := range x {
			d := v - g.Mean[c][j]
			lp += -0.5*math.Log(2*math.Pi*g.Var[c][j]) - d*d/(2*g.Var[c][j])
		}
		logp[c] = lp
	}
	// Softmax over two classes, guarding overflow.
	m := math.Max(logp[0], logp[1])
	if math.IsInf(m, -1) {
		return 0.5
	}
	e0 := math.Exp(logp[0] - m)
	e1 := math.Exp(logp[1] - m)
	return e1 / (e0 + e1)
}
