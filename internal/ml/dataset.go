// Package ml implements the learning machinery eX-IoT uses to label
// telescope scanners IoT / non-IoT: CART decision trees, a random forest
// (the production model), a linear SVM and Gaussian Naive Bayes (the
// baselines the paper compared in preliminary tests), evaluation metrics
// (ROC-AUC, F1, precision/recall), train/test splitting, randomized
// hyper-parameter search, and JSON model persistence. It replaces the
// sklearn dependency with stdlib-only Go.
package ml

import (
	"errors"
	"fmt"
	"math/rand"
)

// Dataset is a design matrix with binary labels (1 = IoT).
type Dataset struct {
	X [][]float64
	Y []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature dimensionality (0 when empty).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Append adds one sample.
func (d *Dataset) Append(x []float64, y int) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Validate checks shape consistency and label domain.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d samples but %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return errors.New("ml: empty dataset")
	}
	nf := len(d.X[0])
	for i, x := range d.X {
		if len(x) != nf {
			return fmt.Errorf("ml: sample %d has %d features, want %d", i, len(x), nf)
		}
	}
	for i, y := range d.Y {
		if y != 0 && y != 1 {
			return fmt.Errorf("ml: label %d = %d, want 0/1", i, y)
		}
	}
	return nil
}

// ClassCounts returns (negatives, positives).
func (d *Dataset) ClassCounts() (neg, pos int) {
	for _, y := range d.Y {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	return neg, pos
}

// Split partitions the dataset into train/test with the given train
// fraction after a seeded shuffle. The paper's update-classifier module
// uses a 20 % train / 80 % test split over the 14-day window.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test Dataset) {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(float64(len(idx)) * trainFrac)
	for i, j := range idx {
		if i < cut {
			train.Append(d.X[j], d.Y[j])
		} else {
			test.Append(d.X[j], d.Y[j])
		}
	}
	return train, test
}

// Classifier scores a sample with the probability of the positive (IoT)
// class.
type Classifier interface {
	PredictProba(x []float64) float64
}

// BatchClassifier additionally scores many samples in one call, writing
// into out (grown when too small). Row i of the result must equal
// PredictProba(X[i]) exactly — batch inference is a throughput
// optimization, never a semantic change.
type BatchClassifier interface {
	Classifier
	PredictProbaBatch(X [][]float64, out []float64) []float64
}

// Predict thresholds a classifier's score at 0.5.
func Predict(c Classifier, x []float64) int {
	if c.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// Scores applies a classifier to every sample.
func Scores(c Classifier, ds *Dataset) []float64 {
	out := make([]float64, ds.Len())
	for i, x := range ds.X {
		out[i] = c.PredictProba(x)
	}
	return out
}

// Predictions thresholds Scores at 0.5.
func Predictions(c Classifier, ds *Dataset) []int {
	out := make([]int, ds.Len())
	for i, x := range ds.X {
		out[i] = Predict(c, x)
	}
	return out
}
