package ml

import "sort"

// ROCAUC computes the area under the ROC curve from scores and binary
// labels using the rank statistic (ties share ranks). Returns 0.5 when a
// class is absent.
func ROCAUC(scores []float64, labels []int) float64 {
	n := len(scores)
	pos, neg := 0, 0
	for _, y := range labels {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Assign average ranks over tie groups, accumulate positive ranks.
	var sumPosRanks float64
	i := 0
	for i < n {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avgRank := float64(i+j)/2 + 1 // ranks are 1-based
		for k := i; k <= j; k++ {
			if labels[idx[k]] == 1 {
				sumPosRanks += avgRank
			}
		}
		i = j + 1
	}
	p := float64(pos)
	return (sumPosRanks - p*(p+1)/2) / (p * float64(neg))
}

// Confusion holds a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// ConfusionMatrix tallies predictions against labels.
func ConfusionMatrix(pred, labels []int) Confusion {
	var c Confusion
	for i := range pred {
		switch {
		case pred[i] == 1 && labels[i] == 1:
			c.TP++
		case pred[i] == 1 && labels[i] == 0:
			c.FP++
		case pred[i] == 0 && labels[i] == 0:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// Precision is TP/(TP+FP); the paper calls this the feed's accuracy.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); the paper calls this the feed's coverage.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// PrecisionRecallF1 is a convenience wrapper over ConfusionMatrix.
func PrecisionRecallF1(pred, labels []int) (precision, recall, f1 float64) {
	c := ConfusionMatrix(pred, labels)
	return c.Precision(), c.Recall(), c.F1()
}
