package ml

// FlatNode is one node of a flattened forest arena. Interior nodes carry
// the split (Feature >= 0, Threshold) and the arena index of their left
// child; the right child always sits at Left+1, so no Right field is
// stored. Leaves have Feature == -1 and keep the positive-class
// probability in Threshold. The whole node is 16 bytes — 2.5× denser
// than the 40-byte training node — which is what buys the walk its cache
// hit rate.
type FlatNode struct {
	Threshold float64 `json:"t"`
	Feature   int32   `json:"f"`
	Left      int32   `json:"l"`
}

// FlatForest is a trained Forest re-laid-out for inference: every tree's
// nodes live in one contiguous arena with rebased child indices, so a
// prediction walks a single cache-friendly slice instead of chasing one
// heap allocation per tree. Scores are bit-identical to the pointer
// forest's — same leaves, same tree-order summation — which is what lets
// the parallel feed path swap it in without changing any record.
type FlatForest struct {
	Nodes []FlatNode `json:"nodes"`
	Roots []int32    `json:"roots"`
}

var _ BatchClassifier = (*FlatForest)(nil)

// Flatten packs the forest's trees into a FlatForest arena. Each tree is
// re-laid-out so that every interior node's two children occupy adjacent
// arena slots (left at Left, right at Left+1) — sibling subtrees the walk
// is about to choose between share a cache line.
func (f *Forest) Flatten() *FlatForest {
	total := 0
	for _, t := range f.Trees {
		total += len(t.Nodes)
	}
	ff := &FlatForest{
		Nodes: make([]FlatNode, total),
		Roots: make([]int32, 0, len(f.Trees)),
	}
	next := int32(0)
	for _, t := range f.Trees {
		if len(t.Nodes) == 0 {
			continue
		}
		root := next
		ff.Roots = append(ff.Roots, root)
		next++
		// Pair-allocating DFS: place src node src at arena slot dst,
		// handing each interior node two consecutive child slots.
		type frame struct{ src, dst int32 }
		stack := []frame{{0, root}}
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := &t.Nodes[fr.src]
			fn := &ff.Nodes[fr.dst]
			fn.Feature = int32(n.Feature)
			if n.Feature < 0 {
				fn.Threshold = n.Prob
				continue
			}
			fn.Threshold = n.Threshold
			fn.Left = next
			next += 2
			stack = append(stack, frame{n.Right, fn.Left + 1}, frame{n.Left, fn.Left})
		}
	}
	return ff
}

// NumTrees returns the ensemble size.
func (ff *FlatForest) NumTrees() int { return len(ff.Roots) }

// predictTree walks one tree from its arena root to a leaf.
func (ff *FlatForest) predictTree(root int32, x []float64) float64 {
	nodes := ff.Nodes
	i := root
	for {
		n := &nodes[i]
		if n.Feature < 0 {
			return n.Threshold
		}
		// Branchless child select: right sits at Left+1.
		i = n.Left
		if x[n.Feature] > n.Threshold {
			i++
		}
	}
}

// PredictProba averages the trees' leaf probabilities. Allocation-free.
func (ff *FlatForest) PredictProba(x []float64) float64 {
	if len(ff.Roots) == 0 {
		return 0
	}
	var sum float64
	for _, root := range ff.Roots {
		sum += ff.predictTree(root, x)
	}
	return sum / float64(len(ff.Roots))
}

// PredictProbaBatch scores many vectors, writing into out (grown when too
// small) and returning it. Each row's score is exactly PredictProba(row);
// the batch form exists so the hot path can score a whole scan batch
// without per-flow call overhead or allocations.
func (ff *FlatForest) PredictProbaBatch(X [][]float64, out []float64) []float64 {
	if cap(out) < len(X) {
		out = make([]float64, len(X))
	}
	out = out[:len(X)]
	for i, x := range X {
		out[i] = ff.PredictProba(x)
	}
	return out
}
