package ml

import (
	"math/rand"
	"sort"
)

// TreeConfig parameterizes CART training.
type TreeConfig struct {
	// MaxDepth bounds tree depth (0 = unbounded).
	MaxDepth int
	// MinSamplesLeaf is the minimum samples in a leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures is the number of features examined per split
	// (0 = all; forests pass √d).
	MaxFeatures int
}

// treeNode is one node in the flattened tree representation. Leaves have
// Feature == -1 and carry the positive-class probability.
type treeNode struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int32   `json:"l"`
	Right     int32   `json:"r"`
	Prob      float64 `json:"p"`
	// Gain is the split's total impurity decrease (per-sample decrease ×
	// node size); it feeds impurity-based feature importance.
	Gain float64 `json:"g,omitempty"`
}

// Tree is a trained CART decision tree.
type Tree struct {
	Nodes []treeNode `json:"nodes"`
}

var _ Classifier = (*Tree)(nil)

// PredictProba walks the tree and returns the leaf's positive-class
// probability.
func (t *Tree) PredictProba(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return n.Prob
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Depth returns the maximum depth of the tree.
func (t *Tree) Depth() int {
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.Nodes[i]
		if n.Feature < 0 {
			return 0
		}
		l, r := walk(n.Left), walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return walk(0)
}

// treeBuilder holds the working state of one training run.
type treeBuilder struct {
	cfg  TreeConfig
	x    [][]float64
	y    []int
	rng  *rand.Rand
	out  []treeNode
	nfea int
}

// TrainTree fits a CART tree on (a view of) ds restricted to idx. A nil
// idx uses every sample. rng drives per-split feature subsampling; it may
// be nil when MaxFeatures is 0.
func TrainTree(ds *Dataset, cfg TreeConfig, idx []int, rng *rand.Rand) *Tree {
	if cfg.MinSamplesLeaf <= 0 {
		cfg.MinSamplesLeaf = 1
	}
	if idx == nil {
		idx = make([]int, ds.Len())
		for i := range idx {
			idx[i] = i
		}
	}
	b := &treeBuilder{cfg: cfg, x: ds.X, y: ds.Y, rng: rng, nfea: ds.NumFeatures()}
	b.build(idx, 0)
	return &Tree{Nodes: b.out}
}

// build grows the subtree over idx and returns its node index.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	pos := 0
	for _, i := range idx {
		pos += b.y[i]
	}
	prob := float64(pos) / float64(len(idx))

	makeLeaf := func() int32 {
		b.out = append(b.out, treeNode{Feature: -1, Prob: prob})
		return int32(len(b.out) - 1)
	}

	if pos == 0 || pos == len(idx) ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) ||
		len(idx) < 2*b.cfg.MinSamplesLeaf {
		return makeLeaf()
	}

	feature, threshold, gain, ok := b.bestSplit(idx)
	if !ok {
		return makeLeaf()
	}

	var left, right []int
	for _, i := range idx {
		if b.x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return makeLeaf()
	}

	me := int32(len(b.out))
	b.out = append(b.out, treeNode{Feature: feature, Threshold: threshold, Gain: gain})
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.out[me].Left = l
	b.out[me].Right = r
	return me
}

// bestSplit scans candidate features for the split minimizing weighted
// Gini impurity. gain is the total impurity decrease of the winner.
func (b *treeBuilder) bestSplit(idx []int) (feature int, threshold float64, gain float64, ok bool) {
	features := b.candidateFeatures()
	bestGini := 2.0 // any real split scores < 1

	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	for _, f := range features {
		for k, i := range idx {
			vals[k] = b.x[i][f]
			order[k] = k
		}
		sort.Slice(order, func(a, c int) bool { return vals[order[a]] < vals[order[c]] })

		totalPos := 0
		for _, i := range idx {
			totalPos += b.y[i]
		}
		n := len(idx)
		leftPos, leftN := 0, 0
		for k := 0; k < n-1; k++ {
			i := idx[order[k]]
			leftN++
			leftPos += b.y[i]
			v, next := vals[order[k]], vals[order[k+1]]
			if v == next {
				continue // can't split between equal values
			}
			rightN := n - leftN
			rightPos := totalPos - leftPos
			gini := weightedGini(leftPos, leftN, rightPos, rightN)
			if gini < bestGini {
				bestGini = gini
				feature = f
				threshold = (v + next) / 2
				ok = true
			}
		}
	}
	if ok {
		totalPos := 0
		for _, i := range idx {
			totalPos += b.y[i]
		}
		p := float64(totalPos) / float64(len(idx))
		parentGini := 2 * p * (1 - p)
		gain = (parentGini - bestGini) * float64(len(idx))
	}
	return feature, threshold, gain, ok
}

func weightedGini(leftPos, leftN, rightPos, rightN int) float64 {
	gini := func(pos, n int) float64 {
		if n == 0 {
			return 0
		}
		p := float64(pos) / float64(n)
		return 2 * p * (1 - p)
	}
	n := float64(leftN + rightN)
	return float64(leftN)/n*gini(leftPos, leftN) + float64(rightN)/n*gini(rightPos, rightN)
}

// candidateFeatures returns the features to examine for one split.
func (b *treeBuilder) candidateFeatures() []int {
	if b.cfg.MaxFeatures <= 0 || b.cfg.MaxFeatures >= b.nfea || b.rng == nil {
		all := make([]int, b.nfea)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := b.rng.Perm(b.nfea)
	return perm[:b.cfg.MaxFeatures]
}
