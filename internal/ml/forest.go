package ml

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// ForestConfig parameterizes random-forest training.
type ForestConfig struct {
	NumTrees       int     `json:"num_trees"`
	MaxDepth       int     `json:"max_depth"`
	MinSamplesLeaf int     `json:"min_samples_leaf"`
	MaxFeatures    int     `json:"max_features"` // 0 = √d
	Subsample      float64 `json:"subsample"`    // bootstrap fraction, default 1.0
	Seed           int64   `json:"seed"`
}

func (c ForestConfig) withDefaults(numFeatures int) ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 100
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	if c.MaxFeatures <= 0 {
		c.MaxFeatures = int(math.Sqrt(float64(numFeatures)))
		if c.MaxFeatures < 1 {
			c.MaxFeatures = 1
		}
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 1.0
	}
	return c
}

// Forest is a trained random forest.
type Forest struct {
	Config ForestConfig `json:"config"`
	Trees  []*Tree      `json:"trees"`
}

var _ Classifier = (*Forest)(nil)

// PredictProba averages the trees' leaf probabilities.
func (f *Forest) PredictProba(x []float64) float64 {
	if len(f.Trees) == 0 {
		return 0
	}
	var sum float64
	for _, t := range f.Trees {
		sum += t.PredictProba(x)
	}
	return sum / float64(len(f.Trees))
}

// TrainForest fits a random forest with bootstrap sampling and per-split
// feature subsampling, training trees in parallel.
func TrainForest(ds *Dataset, cfg ForestConfig) *Forest {
	cfg = cfg.withDefaults(ds.NumFeatures())
	forest := &Forest{Config: cfg, Trees: make([]*Tree, cfg.NumTrees)}

	// Pre-derive independent seeds so tree training order cannot change
	// results.
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	seeds := make([]int64, cfg.NumTrees)
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.NumTrees {
		workers = cfg.NumTrees
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range next {
				rng := rand.New(rand.NewSource(seeds[ti]))
				n := int(float64(ds.Len()) * cfg.Subsample)
				if n < 1 {
					n = 1
				}
				idx := make([]int, n)
				for i := range idx {
					idx[i] = rng.Intn(ds.Len())
				}
				treeCfg := TreeConfig{
					MaxDepth:       cfg.MaxDepth,
					MinSamplesLeaf: cfg.MinSamplesLeaf,
					MaxFeatures:    cfg.MaxFeatures,
				}
				forest.Trees[ti] = TrainTree(ds, treeCfg, idx, rng)
			}
		}()
	}
	for ti := 0; ti < cfg.NumTrees; ti++ {
		next <- ti
	}
	close(next)
	wg.Wait()
	return forest
}

// SearchResult records one hyper-parameter search trial.
type SearchResult struct {
	Config ForestConfig
	AUC    float64
	F1     float64
}

// SearchForest performs the paper's model selection: it trains candidate
// random forests over a tuned hyper-parameter grid for up to iterations
// trials and returns the model maximizing ROC-AUC on the test split,
// together with every trial's result.
func SearchForest(train, test *Dataset, iterations int, seed int64) (*Forest, []SearchResult) {
	if iterations <= 0 {
		iterations = 10
	}
	grid := candidateConfigs(seed)
	if iterations < len(grid) {
		grid = grid[:iterations]
	}

	var (
		best    *Forest
		bestAUC = -1.0
		results []SearchResult
	)
	for _, cfg := range grid {
		f := TrainForest(train, cfg)
		scores := Scores(f, test)
		auc := ROCAUC(scores, test.Y)
		_, _, f1 := PrecisionRecallF1(Predictions(f, test), test.Y)
		results = append(results, SearchResult{Config: cfg, AUC: auc, F1: f1})
		if auc > bestAUC {
			bestAUC = auc
			best = f
		}
	}
	return best, results
}

// candidateConfigs enumerates the tuned hyper-parameter set, seeded so
// repeated searches explore identical candidates.
func candidateConfigs(seed int64) []ForestConfig {
	var out []ForestConfig
	i := int64(0)
	for _, trees := range []int{25, 50, 100} {
		for _, depth := range []int{0, 8, 16} {
			for _, leaf := range []int{1, 3, 5} {
				out = append(out, ForestConfig{
					NumTrees:       trees,
					MaxDepth:       depth,
					MinSamplesLeaf: leaf,
					Seed:           seed + i,
				})
				i++
			}
		}
	}
	return out
}

// FeatureImportances returns impurity-based importances: each split's
// total Gini decrease is credited to its feature, summed over all trees,
// and normalized to sum to 1. dim is the feature-space dimensionality.
func (f *Forest) FeatureImportances(dim int) []float64 {
	imp := make([]float64, dim)
	for _, t := range f.Trees {
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.Feature >= 0 && n.Feature < dim {
				imp[n.Feature] += n.Gain
			}
		}
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}
