// Package core assembles a complete eX-IoT deployment: the simulated
// Internet (standing in for the CAIDA telescope's view and the probeable
// Internet), the two pipeline halves, the e-mail notifier, and the
// authenticated REST API. It is the engine behind the public exiot
// package, the example programs, and the experiment harness.
package core

import (
	"fmt"
	"net/http"
	"time"

	"exiot/internal/api"
	"exiot/internal/notify"
	"exiot/internal/pipeline"
	"exiot/internal/simnet"
)

// Config parameterizes a deployment.
type Config struct {
	// World configures the simulated Internet.
	World simnet.Config
	// Pipeline configures both pipeline halves.
	Pipeline pipeline.LocalConfig
	// APIKeys maps token → client name for the REST API.
	APIKeys map[string]string
	// Workers, when non-zero, overrides the worker count for traffic
	// generation (World.Workers), TRW detection (Pipeline.Workers), and —
	// via the pipeline — the feed back half's classify/probe/annotate
	// pool (Pipeline.Server.Workers). 1 = exact legacy serial path;
	// results are identical at any setting.
	Workers int
}

// DefaultConfig returns a laptop-scale deployment seeded with seed.
func DefaultConfig(seed int64) Config {
	return Config{
		World:    simnet.DefaultConfig(seed),
		Pipeline: pipeline.DefaultLocalConfig(),
		APIKeys:  map[string]string{"dev-key": "local-development"},
	}
}

// System is one running eX-IoT deployment.
type System struct {
	cfg      Config
	world    *simnet.World
	pipe     *pipeline.Local
	mailer   *notify.MemoryMailer
	apiSrv   *api.Server
	hoursRun int
}

// NewSystem builds a deployment from cfg.
func NewSystem(cfg Config) *System {
	if cfg.World.NumInfected == 0 && cfg.World.NumNonIoT == 0 {
		cfg.World = simnet.DefaultConfig(cfg.World.Seed)
	}
	if cfg.Workers != 0 {
		cfg.World.Workers = cfg.Workers
		cfg.Pipeline.Workers = cfg.Workers
	}
	s := &System{cfg: cfg}
	s.world = simnet.NewWorld(cfg.World)
	s.mailer = &notify.MemoryMailer{}
	s.pipe = pipeline.NewLocal(cfg.Pipeline, s.world, s.world.Registry(), s.mailer)
	s.apiSrv = api.NewServer(s.pipe.Server(), s.pipe.Server().Notifier())
	for token, client := range cfg.APIKeys {
		s.apiSrv.AddKey(token, client)
	}
	return s
}

// World exposes the simulated Internet (ground truth; evaluation only).
func (s *System) World() *simnet.World { return s.world }

// Pipeline exposes the running pipeline.
func (s *System) Pipeline() *pipeline.Local { return s.pipe }

// Feed exposes the feed-server half (records, counters, stores).
func (s *System) Feed() *pipeline.Server { return s.pipe.Server() }

// Mailer exposes the captured notification mailbox.
func (s *System) Mailer() *notify.MemoryMailer { return s.mailer }

// Handler returns the REST API as an http.Handler, ready for
// httptest.NewServer or http.ListenAndServe.
func (s *System) Handler() http.Handler { return s.apiSrv }

// API exposes the API server (key management).
func (s *System) API() *api.Server { return s.apiSrv }

// RunHours generates and processes the next n simulated hours.
func (s *System) RunHours(n int) error {
	limit := s.cfg.World.Days * 24
	if s.cfg.World.Days == 0 {
		limit = 24
	}
	for i := 0; i < n; i++ {
		if s.hoursRun >= limit {
			return fmt.Errorf("core: simulated span exhausted after %d hours", s.hoursRun)
		}
		hour := s.world.Start().Add(time.Duration(s.hoursRun) * time.Hour)
		s.pipe.ProcessHour(s.world.GenerateHour(hour), hour)
		s.hoursRun++
	}
	return nil
}

// RunAll processes the entire configured span and finishes the run.
func (s *System) RunAll() error {
	days := s.cfg.World.Days
	if days <= 0 {
		days = 1
	}
	if err := s.RunHours(days*24 - s.hoursRun); err != nil {
		return err
	}
	s.Finish()
	return nil
}

// Finish ends all live flows and flushes pending work.
func (s *System) Finish() {
	s.pipe.Finish(s.world.Start().Add(time.Duration(s.hoursRun) * time.Hour))
}

// HoursRun returns the number of processed simulated hours.
func (s *System) HoursRun() int { return s.hoursRun }

// Clock returns the current simulated instant (end of last processed
// hour).
func (s *System) Clock() time.Time {
	return s.world.Start().Add(time.Duration(s.hoursRun) * time.Hour)
}
