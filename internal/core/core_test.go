package core

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"exiot/internal/scanmod"
	"exiot/internal/simnet"
	"exiot/internal/trainer"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.World.NumInfected = 80
	cfg.World.NumNonIoT = 15
	cfg.World.NumResearch = 2
	cfg.World.NumMisconfig = 10
	cfg.World.NumBackscat = 3
	cfg.World.MaxPacketsPerHostHour = 1000
	cfg.Pipeline.Server.ScanMod = scanmod.Config{BatchSize: 20, BatchWait: 30 * time.Minute}
	cfg.Pipeline.Server.Trainer = trainer.Config{SearchIterations: 2, Seed: seed}
	return cfg
}

func TestSystemRunAll(t *testing.T) {
	sys := NewSystem(smallConfig(200))
	if err := sys.RunAll(); err != nil {
		t.Fatal(err)
	}
	if sys.HoursRun() != 24 {
		t.Errorf("HoursRun = %d, want 24", sys.HoursRun())
	}
	if sys.Feed().Counters().RecordsCreated == 0 {
		t.Error("no records after a full day")
	}
	if !sys.Clock().Equal(sys.World().Start().Add(24 * time.Hour)) {
		t.Errorf("Clock = %v", sys.Clock())
	}
}

func TestSystemSpanExhaustion(t *testing.T) {
	sys := NewSystem(smallConfig(201))
	if err := sys.RunHours(24); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunHours(1); err == nil {
		t.Error("running past the span should error")
	}
}

func TestSystemAPIIntegration(t *testing.T) {
	sys := NewSystem(smallConfig(202))
	if err := sys.RunHours(8); err != nil {
		t.Fatal(err)
	}
	sys.Finish()

	ts := httptest.NewServer(sys.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/snapshot", nil)
	req.Header.Set("X-API-Key", "dev-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		TotalRecords int `json:"total_records"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.TotalRecords == 0 {
		t.Error("API snapshot shows no records")
	}
}

func TestDefaultConfigFallback(t *testing.T) {
	// An empty world config falls back to the default population.
	sys := NewSystem(Config{APIKeys: map[string]string{"k": "c"}})
	if sys.World().CountKind(simnet.KindInfectedIoT) == 0 {
		t.Error("zero-config system has no infected hosts")
	}
}
