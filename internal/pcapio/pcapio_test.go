package pcapio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"
	"time"

	"exiot/internal/packet"
)

func randomPacket(r *rand.Rand, ts time.Time) packet.Packet {
	p := packet.Packet{
		Timestamp: ts,
		TTL:       uint8(1 + r.Intn(255)),
		ID:        uint16(r.Intn(65536)),
		Proto:     packet.TCP,
		SrcIP:     packet.IP(r.Uint32()),
		DstIP:     packet.IP(r.Uint32()),
		SrcPort:   uint16(r.Intn(65536)),
		DstPort:   23,
		Seq:       r.Uint32(),
		Flags:     packet.FlagSYN,
		Window:    uint16(r.Intn(65536)),
	}
	p.Normalize()
	return p
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	base := time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC)
	var want []packet.Packet
	for i := 0; i < 500; i++ {
		p := randomPacket(r, base.Add(time.Duration(i)*time.Millisecond*7))
		want = append(want, p)
		if err := w.WritePacket(&p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 500 {
		t.Errorf("Count() = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got packet.Packet
	for i := range want {
		if err := rd.Next(&got); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !got.Timestamp.Equal(want[i].Timestamp) {
			t.Fatalf("packet %d: timestamp %v want %v", i, got.Timestamp, want[i].Timestamp)
		}
		if got.SrcIP != want[i].SrcIP || got.Seq != want[i].Seq || got.Window != want[i].Window {
			t.Fatalf("packet %d: fields lost", i)
		}
	}
	if err := rd.Next(&got); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestNotPcap(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); !errors.Is(err, ErrNotPcap) {
		t.Errorf("want ErrNotPcap, got %v", err)
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("want error for empty stream")
	}
}

func TestHourFileNameRoundTrip(t *testing.T) {
	hour := time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC)
	name := HourFileName(hour)
	if name != "telescope-20201209-07.pcap.gz" {
		t.Errorf("HourFileName = %q", name)
	}
	back, err := ParseHourFileName(name)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(hour) {
		t.Errorf("ParseHourFileName = %v, want %v", back, hour)
	}
	if _, err := ParseHourFileName("random.txt"); err == nil {
		t.Error("want error for non-capture name")
	}
	if _, err := ParseHourFileName("telescope-notadate.pcap.gz"); err == nil {
		t.Error("want error for bad date")
	}
}

func TestHourlyStore(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(9))
	hours := []time.Time{
		time.Date(2020, 12, 9, 7, 0, 0, 0, time.UTC),
		time.Date(2020, 12, 9, 8, 0, 0, 0, time.UTC),
		time.Date(2020, 12, 9, 9, 0, 0, 0, time.UTC),
	}
	perHour := 200
	for _, h := range hours {
		hw, err := CreateHour(dir, h)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perHour; i++ {
			p := randomPacket(r, h.Add(time.Duration(i)*time.Second*10))
			if err := hw.WritePacket(&p); err != nil {
				t.Fatal(err)
			}
		}
		if err := hw.Close(); err != nil {
			t.Fatal(err)
		}
	}

	listed, err := ListHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != len(hours) {
		t.Fatalf("ListHours = %d entries, want %d", len(listed), len(hours))
	}
	for i := range hours {
		if !listed[i].Equal(hours[i]) {
			t.Errorf("hour %d = %v, want %v", i, listed[i], hours[i])
		}
	}

	hr, err := OpenHour(dir, hours[1])
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Close()
	n := 0
	var p packet.Packet
	for {
		err := hr.Next(&p)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !p.Timestamp.Truncate(time.Hour).Equal(hours[1]) {
			t.Fatalf("packet timestamp %v outside hour %v", p.Timestamp, hours[1])
		}
		n++
	}
	if n != perHour {
		t.Errorf("read %d packets, want %d", n, perHour)
	}
}

func TestInProgressHourInvisible(t *testing.T) {
	dir := t.TempDir()
	hour := time.Date(2021, 3, 14, 0, 0, 0, 0, time.UTC)
	hw, err := CreateHour(dir, hour)
	if err != nil {
		t.Fatal(err)
	}
	// Before Close, ListHours must not see the file.
	listed, err := ListHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 0 {
		t.Errorf("in-progress hour visible: %v", listed)
	}
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}
	listed, err = ListHours(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 {
		t.Errorf("published hour not visible")
	}
}

func TestListHoursMissingDir(t *testing.T) {
	if _, err := ListHours("/nonexistent/dir/for/test"); err == nil {
		t.Error("want error for missing dir")
	}
}

func TestOpenFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(dir + "/missing.pcap.gz"); err == nil {
		t.Error("want error for missing file")
	}
	// Non-gzip content.
	path := dir + "/telescope-20210101-00.pcap.gz"
	if err := os.WriteFile(path, []byte("plain text"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("want error for non-gzip file")
	}
}

// TestPooledHourRoundTrip exercises the pooled gzip/bufio buffers: many
// sequential open/write/close cycles through the same pool objects must
// reproduce every packet exactly — a stale buffer or leaked coder state
// would corrupt a later hour.
func TestPooledHourRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(31))
	base := time.Date(2020, 12, 9, 0, 0, 0, 0, time.UTC)
	for round := 0; round < 5; round++ {
		hour := base.Add(time.Duration(round) * time.Hour)
		want := make([]packet.Packet, 50+round*37)
		hw, err := CreateHour(dir, hour)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			want[i] = randomPacket(r, hour.Add(time.Duration(i)*time.Second))
			if err := hw.WritePacket(&want[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := hw.Close(); err != nil {
			t.Fatal(err)
		}

		hr, err := OpenHour(dir, hour)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			var got packet.Packet
			if err := hr.Next(&got); err != nil {
				t.Fatalf("round %d packet %d: %v", round, i, err)
			}
			if got != want[i] {
				t.Fatalf("round %d packet %d mismatch:\n got  %+v\n want %+v", round, i, got, want[i])
			}
		}
		var extra packet.Packet
		if err := hr.Next(&extra); !errors.Is(err, io.EOF) {
			t.Fatalf("round %d: want EOF after %d packets, got %v", round, len(want), err)
		}
		if err := hr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPooledHourConcurrent proves the pools are goroutine-safe: parallel
// writers and readers in separate directories must never observe each
// other's buffers.
func TestPooledHourConcurrent(t *testing.T) {
	base := time.Date(2020, 12, 10, 0, 0, 0, 0, time.UTC)
	const goroutines = 4
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			dir := t.TempDir()
			r := rand.New(rand.NewSource(int64(100 + g)))
			for round := 0; round < 3; round++ {
				hour := base.Add(time.Duration(round) * time.Hour)
				want := make([]packet.Packet, 80)
				hw, err := CreateHour(dir, hour)
				if err != nil {
					errs <- err
					return
				}
				for i := range want {
					want[i] = randomPacket(r, hour.Add(time.Duration(i)*time.Second))
					if err := hw.WritePacket(&want[i]); err != nil {
						errs <- err
						return
					}
				}
				if err := hw.Close(); err != nil {
					errs <- err
					return
				}
				hr, err := OpenHour(dir, hour)
				if err != nil {
					errs <- err
					return
				}
				for i := range want {
					var got packet.Packet
					if err := hr.Next(&got); err != nil {
						errs <- fmt.Errorf("worker %d round %d packet %d: %w", g, round, i, err)
						return
					}
					if got != want[i] {
						errs <- fmt.Errorf("worker %d round %d packet %d mismatch", g, round, i)
						return
					}
				}
				if err := hr.Close(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
