package pcapio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"exiot/internal/packet"
)

// buildStream writes n packets into a plain (uncompressed) pcap stream
// and returns the raw bytes plus the offset where the last record begins.
func buildStream(t *testing.T, n int) (raw []byte, lastRecStart int) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	base := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		if i == n-1 {
			// Flush so buf.Len() marks the exact start of the tail record.
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			lastRecStart = buf.Len()
		}
		p := randomPacket(r, base.Add(time.Duration(i)*time.Millisecond))
		if err := w.WritePacket(&p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), lastRecStart
}

// TestTruncatedTailEveryOffset is the fuzz-style torn-record sweep: a
// capture cut at every byte offset inside its final record must yield
// exactly n-1 good packets and then a clean io.ErrUnexpectedEOF-wrapped
// error naming the torn record's index — never a garbage packet, a
// panic, or a silent io.EOF that hides the damage.
func TestTruncatedTailEveryOffset(t *testing.T) {
	const n = 5
	raw, lastRecStart := buildStream(t, n)
	if lastRecStart >= len(raw) {
		t.Fatalf("tail record start %d not inside stream of %d bytes", lastRecStart, len(raw))
	}
	// A cut at exactly lastRecStart is a clean boundary (the tail record
	// is wholly absent), so the torn sweep starts one byte inside it.
	for cut := lastRecStart + 1; cut < len(raw); cut++ {
		rd, err := NewReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		var p packet.Packet
		for i := 0; i < n-1; i++ {
			if err := rd.Next(&p); err != nil {
				t.Fatalf("cut %d: intact packet %d: %v", cut, i, err)
			}
		}
		err = rd.Next(&p)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: want io.ErrUnexpectedEOF-wrapped error, got %v", cut, err)
		}
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d: torn tail reported as clean EOF", cut)
		}
		if want := fmt.Sprintf("record %d", n-1); !strings.Contains(err.Error(), want) {
			t.Fatalf("cut %d: error %q does not name torn record index %d", cut, err, n-1)
		}
		if rd.Index() != n-1 {
			t.Fatalf("cut %d: Index() = %d, want %d", cut, rd.Index(), n-1)
		}
	}
	// Sanity: the untruncated stream still ends in clean io.EOF.
	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Packet
	for i := 0; i < n; i++ {
		if err := rd.Next(&p); err != nil {
			t.Fatalf("intact packet %d: %v", i, err)
		}
	}
	if err := rd.Next(&p); !errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("intact stream: want bare io.EOF, got %v", err)
	}
}

// TestTruncatedHeaderStream covers tears inside the 24-byte global
// header: every prefix shorter than the header must fail to open, never
// yield a Reader.
func TestTruncatedHeaderStream(t *testing.T) {
	raw, _ := buildStream(t, 1)
	for cut := 0; cut < 24; cut++ {
		if _, err := NewReader(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("cut %d: header-torn stream opened without error", cut)
		}
	}
}

// TestMicrosecondCaptureAccepted proves the Reader still speaks the
// classic microsecond pcap dialect external collectors produce: a
// hand-built µs-magic stream decodes with fractions scaled to ns.
func TestMicrosecondCaptureAccepted(t *testing.T) {
	raw, lastRecStart := buildStream(t, 1)
	// Rewrite the magic to the classic µs value. The single record's
	// fraction field (offset lastRecStart+4) currently holds nanoseconds;
	// scale it down so the µs interpretation matches.
	le := raw[:24]
	le[0], le[1], le[2], le[3] = 0xd4, 0xc3, 0xb2, 0xa1
	frac := uint32(raw[lastRecStart+4]) | uint32(raw[lastRecStart+5])<<8 |
		uint32(raw[lastRecStart+6])<<16 | uint32(raw[lastRecStart+7])<<24
	us := frac / 1000
	raw[lastRecStart+4] = byte(us)
	raw[lastRecStart+5] = byte(us >> 8)
	raw[lastRecStart+6] = byte(us >> 16)
	raw[lastRecStart+7] = byte(us >> 24)

	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("µs-magic stream rejected: %v", err)
	}
	var p packet.Packet
	if err := rd.Next(&p); err != nil {
		t.Fatal(err)
	}
	if got := p.Timestamp.Nanosecond(); got != int(us)*1000 {
		t.Fatalf("µs fraction decoded to %d ns, want %d", got, us*1000)
	}
}

// TestOpenCaptureSniffsCompression proves OpenCapture accepts both a
// plain .pcap and a gzip-compressed capture of the same packets, by
// content sniffing rather than file extension.
func TestOpenCaptureSniffsCompression(t *testing.T) {
	dir := t.TempDir()
	raw, _ := buildStream(t, 10)

	plain := filepath.Join(dir, "capture.pcap")
	if err := os.WriteFile(plain, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Write the same packets through the gzip hourly writer, then rename
	// to a non-canonical name to prove sniffing ignores the extension.
	hour := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	hw, err := CreateHour(dir, hour)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Packet
	for {
		if err := rd.Next(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if err := hw.WritePacket(&p); err != nil {
			t.Fatal(err)
		}
	}
	if err := hw.Close(); err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(dir, "capture.bin")
	if err := os.Rename(filepath.Join(dir, HourFileName(hour)), gzPath); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{plain, gzPath} {
		hr, err := OpenCapture(path)
		if err != nil {
			t.Fatalf("OpenCapture(%s): %v", path, err)
		}
		n := 0
		for {
			if err := hr.Next(&p); errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				t.Fatalf("%s packet %d: %v", path, n, err)
			}
			n++
		}
		if n != 10 {
			t.Fatalf("%s: read %d packets, want 10", path, n)
		}
		if err := hr.Close(); err != nil {
			t.Fatalf("close %s: %v", path, err)
		}
	}

	if _, err := OpenCapture(filepath.Join(dir, "missing.pcap")); err == nil {
		t.Error("want error for missing file")
	}
}
