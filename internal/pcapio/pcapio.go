// Package pcapio reads and writes packet captures in the classic libpcap
// file format (LINKTYPE_RAW), optionally gzip-compressed, and organizes
// them into hourly files the way CAIDA's telescope collection does: one
// compressed capture per hour, named by its UTC hour. It replaces the
// OpenStack-Swift hourly object store the paper's pipeline polls.
package pcapio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"exiot/internal/packet"
	"exiot/internal/telemetry"
)

// Telemetry handles for the capture-store stage (see docs/OPERATIONS.md).
var (
	metPacketsWritten = telemetry.Default().Counter("exiot_pcap_packets_written_total",
		"Packets written to pcap capture streams.")
	metPacketsRead = telemetry.Default().Counter("exiot_pcap_packets_read_total",
		"Packets read from pcap capture streams.")
	metHoursWritten = telemetry.Default().Counter("exiot_pcap_hours_written_total",
		"Hourly capture files published (atomic rename completed).")
	metHoursOpened = telemetry.Default().Counter("exiot_pcap_hours_read_total",
		"Hourly capture files opened for reading.")
)

// bufSize is the buffered-I/O window for capture streams.
const bufSize = 1 << 16

// Hourly capture churn is one open/close per simulated hour per stream,
// and each open used to allocate a fresh 64 KiB bufio buffer plus a gzip
// coder (the gzip.Writer alone carries ~800 KiB of deflate state). The
// pools below recycle them across hours; Reset on the way out of the
// pool makes reuse indistinguishable from a fresh allocation.
var (
	bufWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(io.Discard, bufSize) }}
	bufReaderPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, bufSize) }}
	gzWriterPool  = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}
	gzReaderPool  = sync.Pool{New: func() any { return new(gzip.Reader) }}
)

const (
	// magicMicros is the classic libpcap magic: record timestamps carry
	// microsecond fractions. Captures from external collectors use it.
	magicMicros = 0xa1b2c3d4
	// magicNanos is the nanosecond-resolution pcap magic (as written by
	// tcpdump --time-stamp-precision=nano). The Writer emits it so a
	// capture→replay round trip preserves timestamps exactly: simulated
	// packets carry nanosecond stamps, and truncating them to
	// microseconds would shift the detector's canonical event order,
	// breaking replay/live feed byte-identity.
	magicNanos   = 0xa1b23c4d
	versionMajor = 2
	versionMinor = 4
	snapLen      = 65535
	linkTypeRaw  = 101 // raw IPv4
)

// ErrNotPcap is returned when a stream does not begin with the pcap magic.
var ErrNotPcap = errors.New("pcapio: not a pcap stream")

// Writer writes packets to a pcap stream.
type Writer struct {
	w       *bufio.Writer
	scratch []byte
	count   int
}

// NewWriter writes the pcap global header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	return newWriterBuf(bufio.NewWriterSize(w, bufSize))
}

func newWriterBuf(bw *bufio.Writer) (*Writer, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicNanos)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkTypeRaw)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// WritePacket appends one packet record. Only headers are captured
// (telescope style): incl_len is the header length, orig_len the claimed
// on-wire length.
func (w *Writer) WritePacket(p *packet.Packet) error {
	w.scratch = p.Marshal(w.scratch[:0])
	var rec [16]byte
	ts := p.Timestamp
	binary.LittleEndian.PutUint32(rec[0:], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:], uint32(ts.Nanosecond()))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(w.scratch)))
	origLen := uint32(p.TotalLength)
	if origLen < uint32(len(w.scratch)) {
		origLen = uint32(len(w.scratch))
	}
	binary.LittleEndian.PutUint32(rec[12:], origLen)
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcap record header: %w", err)
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		return fmt.Errorf("pcap record body: %w", err)
	}
	w.count++
	metPacketsWritten.Inc()
	return nil
}

// Count returns the number of packets written so far.
func (w *Writer) Count() int { return w.count }

// Flush flushes buffered data to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader reads packets from a pcap stream.
type Reader struct {
	r       *bufio.Reader
	scratch []byte
	// fracMul scales the record timestamp fraction field to nanoseconds:
	// 1000 for classic microsecond captures, 1 for nanosecond captures.
	fracMul int64
	// index counts records already returned; torn-record errors carry it
	// so an operator knows how much of a damaged capture is usable.
	index int
}

// NewReader validates the pcap global header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	return newReaderBuf(bufio.NewReaderSize(r, bufSize))
}

func newReaderBuf(br *bufio.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap header: %w", err)
	}
	var fracMul int64
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case magicMicros:
		fracMul = 1000
	case magicNanos:
		fracMul = 1
	default:
		return nil, ErrNotPcap
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linkTypeRaw {
		return nil, fmt.Errorf("pcapio: unsupported link type %d", lt)
	}
	return &Reader{r: br, scratch: make([]byte, 0, 128), fracMul: fracMul}, nil
}

// Index returns the number of packets successfully read so far.
func (r *Reader) Index() int { return r.index }

// torn maps an EOF hit mid-record onto a clean io.ErrUnexpectedEOF-wrapped
// error carrying the packet index, so callers can both detect truncation
// (errors.Is) and report how many whole packets preceded the tear. Real
// I/O errors pass through wrapped but without the truncation veneer.
func (r *Reader) torn(what string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("pcapio: truncated capture: packet record %d torn (%s): %w",
			r.index, what, io.ErrUnexpectedEOF)
	}
	return fmt.Errorf("pcapio: packet record %d %s: %w", r.index, what, err)
}

// Next reads the next packet. It returns io.EOF at a clean end of stream;
// a capture cut mid-record (a torn tail) returns an error wrapping
// io.ErrUnexpectedEOF that names the torn record's index — never a
// garbage packet.
func (r *Reader) Next(p *packet.Packet) error {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return io.EOF // clean end: no bytes of a next record
		}
		return r.torn("header", err)
	}
	sec := binary.LittleEndian.Uint32(rec[0:])
	frac := binary.LittleEndian.Uint32(rec[4:])
	inclLen := binary.LittleEndian.Uint32(rec[8:])
	if inclLen > snapLen {
		return fmt.Errorf("pcapio: packet record %d: length %d exceeds snaplen", r.index, inclLen)
	}
	if cap(r.scratch) < int(inclLen) {
		r.scratch = make([]byte, inclLen)
	}
	buf := r.scratch[:inclLen]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return r.torn("body", err)
	}
	if _, err := p.Unmarshal(buf); err != nil {
		return fmt.Errorf("pcapio: packet record %d: %w", r.index, err)
	}
	p.Timestamp = time.Unix(int64(sec), int64(frac)*r.fracMul).UTC()
	r.index++
	metPacketsRead.Inc()
	return nil
}

// HourFileName returns the canonical file name for the capture hour
// containing t, e.g. "telescope-20201209-07.pcap.gz".
func HourFileName(t time.Time) string {
	return "telescope-" + t.UTC().Format("20060102-15") + ".pcap.gz"
}

// ParseHourFileName extracts the UTC hour from a canonical file name.
func ParseHourFileName(name string) (time.Time, error) {
	base := filepath.Base(name)
	if !strings.HasPrefix(base, "telescope-") || !strings.HasSuffix(base, ".pcap.gz") {
		return time.Time{}, fmt.Errorf("pcapio: %q is not an hourly capture name", name)
	}
	stamp := strings.TrimSuffix(strings.TrimPrefix(base, "telescope-"), ".pcap.gz")
	t, err := time.ParseInLocation("20060102-15", stamp, time.UTC)
	if err != nil {
		return time.Time{}, fmt.Errorf("pcapio: parse %q: %w", name, err)
	}
	return t, nil
}

// HourWriter writes one gzip-compressed hourly capture file.
type HourWriter struct {
	f  *os.File
	gz *gzip.Writer
	*Writer
	path string
}

// CreateHour creates (atomically via a temp name) the hourly capture file
// for hour inside dir.
func CreateHour(dir string, hour time.Time) (*HourWriter, error) {
	path := filepath.Join(dir, HourFileName(hour))
	f, err := os.Create(path + ".tmp")
	if err != nil {
		return nil, fmt.Errorf("create hour capture: %w", err)
	}
	gz := gzWriterPool.Get().(*gzip.Writer)
	gz.Reset(f)
	bw := bufWriterPool.Get().(*bufio.Writer)
	bw.Reset(gz)
	w, err := newWriterBuf(bw)
	if err != nil {
		gzWriterPool.Put(gz)
		bufWriterPool.Put(bw)
		f.Close()
		return nil, err
	}
	return &HourWriter{f: f, gz: gz, Writer: w, path: path}, nil
}

// Close flushes, closes, and renames the capture into place. Only after
// Close returns does the hour become visible to pollers — matching the
// paper's "constantly checks for newly added data sources (hourly)" model.
func (hw *HourWriter) Close() error {
	if err := hw.Flush(); err != nil {
		return err
	}
	if err := hw.gz.Close(); err != nil {
		return fmt.Errorf("close gzip: %w", err)
	}
	// Recycle the coder and buffer; drop references to the closed file
	// first so pooled objects never pin it. Error paths above skip the
	// Put — a writer in a failed state must not be reused.
	hw.Writer.w.Reset(io.Discard)
	bufWriterPool.Put(hw.Writer.w)
	hw.gz.Reset(io.Discard)
	gzWriterPool.Put(hw.gz)
	if err := hw.f.Close(); err != nil {
		return fmt.Errorf("close capture: %w", err)
	}
	if err := os.Rename(hw.path+".tmp", hw.path); err != nil {
		return fmt.Errorf("publish capture: %w", err)
	}
	metHoursWritten.Inc()
	return nil
}

// OpenHour opens the hourly capture file for hour inside dir.
func OpenHour(dir string, hour time.Time) (*HourReader, error) {
	return OpenFile(filepath.Join(dir, HourFileName(hour)))
}

// HourReader reads one capture file, gzip-compressed or plain
// (gz is nil for uncompressed captures opened via OpenCapture).
type HourReader struct {
	f  *os.File
	gz *gzip.Reader
	*Reader
}

// OpenFile opens a capture file by path.
func OpenFile(path string) (*HourReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open capture: %w", err)
	}
	gz := gzReaderPool.Get().(*gzip.Reader)
	if err := gz.Reset(f); err != nil {
		gzReaderPool.Put(gz)
		f.Close()
		return nil, fmt.Errorf("open gzip: %w", err)
	}
	br := bufReaderPool.Get().(*bufio.Reader)
	br.Reset(gz)
	r, err := newReaderBuf(br)
	if err != nil {
		bufReaderPool.Put(br)
		gz.Close()
		gzReaderPool.Put(gz)
		f.Close()
		return nil, err
	}
	metHoursOpened.Inc()
	return &HourReader{f: f, gz: gz, Reader: r}, nil
}

// OpenCapture opens a capture file by path, accepting both plain .pcap
// and gzip-compressed .pcap.gz files — the compression is sniffed from
// the leading magic bytes, not the file name, so renamed or externally
// produced captures work too.
func OpenCapture(path string) (*HourReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open capture: %w", err)
	}
	br := bufReaderPool.Get().(*bufio.Reader)
	br.Reset(f)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		// Gzip container: insert the decompressor between file and buffer.
		gz := gzReaderPool.Get().(*gzip.Reader)
		if err := gz.Reset(br); err != nil {
			gzReaderPool.Put(gz)
			br.Reset(nil)
			bufReaderPool.Put(br)
			f.Close()
			return nil, fmt.Errorf("open gzip: %w", err)
		}
		r, err := NewReader(gz)
		if err != nil {
			gz.Close()
			gzReaderPool.Put(gz)
			br.Reset(nil)
			bufReaderPool.Put(br)
			f.Close()
			return nil, err
		}
		metHoursOpened.Inc()
		return &HourReader{f: f, gz: gz, Reader: r}, nil
	}
	r, err := newReaderBuf(br)
	if err != nil {
		br.Reset(nil)
		bufReaderPool.Put(br)
		f.Close()
		return nil, err
	}
	metHoursOpened.Inc()
	return &HourReader{f: f, Reader: r}, nil
}

// Close closes the capture file and recycles the stream buffers.
func (hr *HourReader) Close() error {
	var gzErr error
	if hr.gz != nil {
		gzErr = hr.gz.Close()
		if gzErr == nil {
			gzReaderPool.Put(hr.gz)
		}
	}
	hr.Reader.r.Reset(nil)
	bufReaderPool.Put(hr.Reader.r)
	if err := hr.f.Close(); err != nil {
		return err
	}
	return gzErr
}

// ListHours returns the capture hours available in dir, sorted ascending.
// In-progress (.tmp) files are invisible.
func ListHours(dir string) ([]time.Time, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("list capture dir: %w", err)
	}
	var hours []time.Time
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		t, err := ParseHourFileName(e.Name())
		if err != nil {
			continue // not a capture file
		}
		hours = append(hours, t)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i].Before(hours[j]) })
	return hours, nil
}
