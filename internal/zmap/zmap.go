// Package zmap simulates the active-measurement half of eX-IoT's Scan
// Module: a ZMap-style TCP port scanner over the Table I port set and a
// ZGrab-style application banner grabber over the Table I protocol set.
// Instead of the real Internet, probes are answered by any Prober
// (in practice the simnet world), preserving the code path — batch in,
// open ports and banners out — while replacing the irreproducible
// network side.
package zmap

import (
	"runtime"
	"sync"

	"exiot/internal/packet"
	"exiot/internal/telemetry"
)

// Telemetry handles for the active-measurement stage (see
// docs/OPERATIONS.md). On a real deployment "closed" covers refused and
// timed-out probes alike — the simulator's prober answers instantly, so
// the two are indistinguishable here.
var (
	metProbes = telemetry.Default().CounterVec("exiot_zmap_probes_total",
		"TCP port probes attempted, by application protocol and outcome (open|closed).",
		"protocol", "result")
	metBanners = telemetry.Default().CounterVec("exiot_zmap_banners_total",
		"Application banner grabs on open ports, by protocol and outcome (grabbed|empty).",
		"protocol", "result")
	metHostsScanned = telemetry.Default().Counter("exiot_zmap_hosts_scanned_total",
		"Scanner hosts actively measured (all target ports probed).")
)

// Prober answers active probes. *simnet.World implements it.
type Prober interface {
	// ProbePort reports whether a TCP connection to ip:port succeeds.
	ProbePort(ip packet.IP, port uint16) bool
	// GrabBanner attempts an application-layer banner grab.
	GrabBanner(ip packet.IP, port uint16) (banner, protocol string, ok bool)
}

// Ports is the scan-module target port list. The first 45 are Table I of
// the paper verbatim (the table repeats 8888; we list it once); the last
// five round the set up to the paper's stated 50 ports with services the
// deployment's device population exposes (Hikvision SDK, JetDirect,
// Huawei UPnP, Realtek UPnP-SOAP, WSD).
var Ports = []uint16{
	80, 22, 443, 21, 23, 8291, 554, 8080, 7547, 8888, 5555,
	81, 631, 8081, 8443, 9000, 2323, 85, 88, 8082, 445,
	8088, 4567, 82, 7000, 83, 84, 8181, 5357, 1900, 8083,
	8089, 8090, 110, 143, 993, 995, 20000, 502, 102, 47808,
	1911, 5060, 5000, 60001,
	8000, 9100, 37215, 52869, 5358,
}

// Protocols is the Table I protocol list the banner grabber speaks.
var Protocols = []string{
	"http", "https", "telnet", "smtp", "imap", "pop3", "ssh", "ftp",
	"cwmp", "smb", "modbus", "bacnet", "fox", "sip", "rtsp", "dnp3",
}

// DefaultRate is the paper's ZMap probe budget (5k pps).
const DefaultRate = 5000.0

// Banner is one grabbed application banner.
type Banner struct {
	Port     uint16 `json:"port"`
	Protocol string `json:"protocol"`
	Banner   string `json:"banner"`
}

// HostResult is the active-measurement outcome for one scanner IP.
type HostResult struct {
	IP        packet.IP `json:"-"`
	OpenPorts []uint16  `json:"open_ports,omitempty"`
	Banners   []Banner  `json:"banners,omitempty"`
}

// HasBanner reports whether any banner was grabbed.
func (r *HostResult) HasBanner() bool { return len(r.Banners) > 0 }

// BannerTexts returns the banner strings (for fingerprint matching).
func (r *HostResult) BannerTexts() []string {
	out := make([]string, len(r.Banners))
	for i, b := range r.Banners {
		out[i] = b.Banner
	}
	return out
}

// Scanner drives port scans and banner grabs against a Prober.
type Scanner struct {
	prober Prober
	ports  []uint16
	// Rate is the simulated probe budget in probes/second, used to
	// account scan latency (the paper runs ZMap at 5k pps).
	Rate float64
	// Workers caps ScanBatch's probe concurrency (0 = GOMAXPROCS). The
	// pipeline wires its classification worker count here so one knob
	// governs the whole back half.
	Workers int

	mu         sync.Mutex
	probesSent int64
}

// NewScanner builds a scanner over the default Table I port set.
func NewScanner(p Prober) *Scanner {
	return &Scanner{prober: p, ports: Ports, Rate: DefaultRate}
}

// NewScannerWithPorts builds a scanner over a custom port set.
func NewScannerWithPorts(p Prober, ports []uint16) *Scanner {
	return &Scanner{prober: p, ports: ports, Rate: DefaultRate}
}

// NumPorts returns the number of ports probed per host (trace
// provenance records it alongside each scan's results).
func (s *Scanner) NumPorts() int { return len(s.ports) }

// ScanHost probes every target port on one host and grabs banners from
// the open ones.
func (s *Scanner) ScanHost(ip packet.IP) HostResult {
	res := HostResult{IP: ip}
	for _, port := range s.ports {
		proto := PortProtocol(port)
		if !s.prober.ProbePort(ip, port) {
			metProbes.With(proto, "closed").Inc()
			continue
		}
		metProbes.With(proto, "open").Inc()
		res.OpenPorts = append(res.OpenPorts, port)
		if banner, bproto, ok := s.prober.GrabBanner(ip, port); ok && banner != "" {
			metBanners.With(proto, "grabbed").Inc()
			res.Banners = append(res.Banners, Banner{Port: port, Protocol: bproto, Banner: banner})
		} else {
			metBanners.With(proto, "empty").Inc()
		}
	}
	metHostsScanned.Inc()
	s.mu.Lock()
	s.probesSent += int64(len(s.ports))
	s.mu.Unlock()
	return res
}

// ScanBatch probes a batch of hosts in parallel, preserving input order
// in the result slice. The scan module buffers up to 100k scanners (or
// 60 minutes) before invoking this.
func (s *Scanner) ScanBatch(ips []packet.IP) []HostResult {
	out := make([]HostResult, len(ips))
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ips) {
		workers = len(ips)
	}
	if workers <= 1 {
		for i, ip := range ips {
			out[i] = s.ScanHost(ip)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = s.ScanHost(ips[i])
			}
		}()
	}
	for i := range ips {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// ProbesSent returns the lifetime probe count.
func (s *Scanner) ProbesSent() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.probesSent
}

// SimulatedScanSeconds returns how long the batch would have taken on the
// wire at the configured probe rate.
func (s *Scanner) SimulatedScanSeconds(hosts int) float64 {
	if s.Rate <= 0 {
		return 0
	}
	return float64(hosts) * float64(len(s.ports)) / s.Rate
}

// PortProtocol guesses the ZGrab protocol for a port (used to decide
// which protocol handler speaks first on connect).
func PortProtocol(port uint16) string {
	switch port {
	case 80, 81, 82, 83, 84, 85, 88, 8000, 8080, 8081, 8082, 8083, 8088,
		8089, 8090, 8181, 9000, 4567, 7000, 5000, 60001, 631, 5357, 49152:
		return "http"
	case 443, 8443:
		return "https"
	case 23, 2323:
		return "telnet"
	case 22:
		return "ssh"
	case 21:
		return "ftp"
	case 554:
		return "rtsp"
	case 7547:
		return "cwmp"
	case 445:
		return "smb"
	case 110, 995:
		return "pop3"
	case 143, 993:
		return "imap"
	case 25, 465, 587:
		return "smtp"
	case 502:
		return "modbus"
	case 47808:
		return "bacnet"
	case 1911:
		return "fox"
	case 5060:
		return "sip"
	case 20000:
		return "dnp3"
	case 102:
		return "s7"
	default:
		return "tcp"
	}
}
