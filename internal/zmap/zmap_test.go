package zmap

import (
	"sync/atomic"
	"testing"

	"exiot/internal/packet"
	"exiot/internal/simnet"
)

// fakeProber is a deterministic in-test Internet. ScanBatch probes from
// multiple workers, so the query counter is atomic.
type fakeProber struct {
	open    map[packet.IP]map[uint16]string // ip -> port -> banner
	proto   string
	queries atomic.Int64
}

func (f *fakeProber) ProbePort(ip packet.IP, port uint16) bool {
	f.queries.Add(1)
	_, ok := f.open[ip][port]
	return ok
}

func (f *fakeProber) GrabBanner(ip packet.IP, port uint16) (string, string, bool) {
	b, ok := f.open[ip][port]
	if !ok {
		return "", "", false
	}
	return b, f.proto, true
}

func TestTableIPorts(t *testing.T) {
	// E1: the scan module must target 50 ports and speak 16 protocols.
	if len(Ports) != 50 {
		t.Errorf("port list has %d entries, want 50 (Table I)", len(Ports))
	}
	seen := map[uint16]bool{}
	for _, p := range Ports {
		if seen[p] {
			t.Errorf("duplicate port %d", p)
		}
		seen[p] = true
	}
	// Spot-check the Table I ports that matter most downstream.
	for _, p := range []uint16{80, 23, 2323, 8080, 7547, 5555, 554, 8291, 81, 47808, 502, 1911, 20000, 102, 5060} {
		if !seen[p] {
			t.Errorf("Table I port %d missing", p)
		}
	}
	if len(Protocols) != 16 {
		t.Errorf("protocol list has %d entries, want 16 (Table I)", len(Protocols))
	}
}

func TestScanHost(t *testing.T) {
	ip := packet.MustParseIP("203.0.113.50")
	f := &fakeProber{
		proto: "http",
		open: map[packet.IP]map[uint16]string{
			ip: {80: "HTTP/1.1 200 OK\r\nServer: Boa/0.94.13", 23: ""},
		},
	}
	s := NewScanner(f)
	res := s.ScanHost(ip)
	if len(res.OpenPorts) != 2 {
		t.Fatalf("open ports = %v, want [80 23] in some order", res.OpenPorts)
	}
	// Port 23's banner is empty, so only one banner is captured.
	if len(res.Banners) != 1 || res.Banners[0].Port != 80 {
		t.Fatalf("banners = %+v", res.Banners)
	}
	if !res.HasBanner() {
		t.Error("HasBanner() = false")
	}
	if got := res.BannerTexts(); len(got) != 1 || got[0] == "" {
		t.Errorf("BannerTexts() = %v", got)
	}
	if s.ProbesSent() != int64(len(Ports)) {
		t.Errorf("ProbesSent() = %d, want %d", s.ProbesSent(), len(Ports))
	}
}

func TestScanHostClosed(t *testing.T) {
	f := &fakeProber{open: map[packet.IP]map[uint16]string{}}
	s := NewScanner(f)
	res := s.ScanHost(packet.MustParseIP("203.0.113.51"))
	if len(res.OpenPorts) != 0 || res.HasBanner() {
		t.Errorf("closed host produced %+v", res)
	}
}

func TestScanBatchOrderAndParallelism(t *testing.T) {
	ips := make([]packet.IP, 100)
	open := map[packet.IP]map[uint16]string{}
	for i := range ips {
		ips[i] = packet.IP(0xC0000200 + uint32(i)) // 192.0.2.x
		if i%3 == 0 {
			open[ips[i]] = map[uint16]string{80: "banner"}
		}
	}
	f := &fakeProber{open: open, proto: "http"}
	s := NewScanner(f)
	out := s.ScanBatch(ips)
	if len(out) != len(ips) {
		t.Fatalf("batch returned %d results", len(out))
	}
	for i := range out {
		if out[i].IP != ips[i] {
			t.Fatalf("result %d out of order: %v", i, out[i].IP)
		}
		wantOpen := i%3 == 0
		if (len(out[i].OpenPorts) > 0) != wantOpen {
			t.Errorf("host %d: open=%v want %v", i, out[i].OpenPorts, wantOpen)
		}
	}
}

func TestScanBatchEmpty(t *testing.T) {
	s := NewScanner(&fakeProber{})
	if out := s.ScanBatch(nil); len(out) != 0 {
		t.Errorf("empty batch returned %d results", len(out))
	}
}

// TestScanBatchMoreWorkersThanIPs checks the pool clamps workers to the
// batch size: batches smaller than GOMAXPROCS still scan every host
// exactly once, in order.
func TestScanBatchMoreWorkersThanIPs(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		ips := make([]packet.IP, n)
		open := map[packet.IP]map[uint16]string{}
		for i := range ips {
			ips[i] = packet.IP(0xC0000210 + uint32(i))
			open[ips[i]] = map[uint16]string{80: "banner"}
		}
		f := &fakeProber{open: open, proto: "http"}
		out := NewScanner(f).ScanBatch(ips)
		if len(out) != n {
			t.Fatalf("n=%d: got %d results", n, len(out))
		}
		for i := range out {
			if out[i].IP != ips[i] {
				t.Errorf("n=%d: result %d is %v, want %v", n, i, out[i].IP, ips[i])
			}
			if len(out[i].OpenPorts) == 0 {
				t.Errorf("n=%d: host %d found no open ports", n, i)
			}
		}
	}
}

func TestCustomPorts(t *testing.T) {
	ip := packet.MustParseIP("203.0.113.52")
	f := &fakeProber{
		proto: "telnet",
		open:  map[packet.IP]map[uint16]string{ip: {23: "login: "}},
	}
	s := NewScannerWithPorts(f, []uint16{23})
	res := s.ScanHost(ip)
	if len(res.OpenPorts) != 1 || res.OpenPorts[0] != 23 {
		t.Errorf("custom-port scan = %+v", res)
	}
	if n := f.queries.Load(); n != 1 {
		t.Errorf("probed %d ports, want 1", n)
	}
}

func TestSimulatedScanSeconds(t *testing.T) {
	s := NewScanner(&fakeProber{})
	// 100 hosts × 50 ports at 5000 pps = 1 s.
	if got := s.SimulatedScanSeconds(100); got != 1.0 {
		t.Errorf("SimulatedScanSeconds(100) = %v, want 1.0", got)
	}
	s.Rate = 0
	if got := s.SimulatedScanSeconds(100); got != 0 {
		t.Errorf("zero rate should yield 0, got %v", got)
	}
}

func TestPortProtocolMapping(t *testing.T) {
	cases := map[uint16]string{
		80: "http", 8080: "http", 443: "https", 23: "telnet", 2323: "telnet",
		22: "ssh", 21: "ftp", 554: "rtsp", 7547: "cwmp", 445: "smb",
		502: "modbus", 47808: "bacnet", 1911: "fox", 5060: "sip",
		20000: "dnp3", 12345: "tcp",
	}
	for port, want := range cases {
		if got := PortProtocol(port); got != want {
			t.Errorf("PortProtocol(%d) = %q, want %q", port, got, want)
		}
	}
}

// TestAgainstWorld exercises the scanner against the real simulated
// Internet: every banner it brings back must have come from a live,
// reachable host.
func TestAgainstWorld(t *testing.T) {
	cfg := simnet.DefaultConfig(30)
	cfg.NumInfected = 200
	cfg.NumNonIoT = 20
	w := simnet.NewWorld(cfg)
	s := NewScanner(w)

	var ips []packet.IP
	for _, h := range w.Hosts() {
		ips = append(ips, h.IP)
	}
	results := s.ScanBatch(ips)
	withBanner := 0
	for i, res := range results {
		if res.HasBanner() {
			withBanner++
			for _, b := range res.Banners {
				if b.Protocol == "" {
					t.Errorf("host %d: banner without protocol", i)
				}
			}
		}
	}
	if withBanner == 0 {
		t.Error("no banners grabbed from an entire world; training would starve")
	}
	// The paper's limitation: banner-returning hosts are a small minority.
	if frac := float64(withBanner) / float64(len(ips)); frac > 0.5 {
		t.Errorf("banner fraction = %.2f; too reachable to be realistic", frac)
	}
}
