package scenario

import (
	"hash/fnv"
	"time"

	"exiot/internal/feed"
	"exiot/internal/packet"
	"exiot/internal/pipeline"
	"exiot/internal/simnet"
	"exiot/internal/trw"
)

// Result is one scenario's scored pipeline run.
type Result struct {
	Name    string `json:"name"`
	Hours   int    `json:"hours"`
	Workers int    `json:"workers"`

	// Volume and speed (speed excludes world generation).
	Packets   int64 `json:"packets"`
	ElapsedNs int64 `json:"elapsed_ns"`
	Records   int   `json:"records"`

	// Scan detection accuracy over every ground-truth scanner in the
	// world (background population included): did the TRW path feed the
	// hosts that really scan, and only them?
	ScanPrecision float64 `json:"scan_precision"`
	ScanRecall    float64 `json:"scan_recall"`

	// Injected-cohort accuracy: recall over the scenario's Scanner=true
	// hosts (the adversarial behaviour under test) and the count of
	// Scanner=false injected hosts that leaked into the feed.
	InjectedRecall   float64 `json:"injected_recall"`
	InjectedFalseFed int     `json:"injected_false_fed"`

	// IoT-vs-non-IoT label accuracy among fed records with ground truth
	// (the per-scenario Tables III/IV view).
	IoTPrecision float64 `json:"iot_precision"`
	IoTRecall    float64 `json:"iot_recall"`
}

// Run builds the scenario's world from seed, drives the full
// TRW→probe→classify pipeline over its hours with the given detection
// worker count, and scores the feed against ground truth. hours <= 0
// uses the scenario's canonical span.
func Run(sc Scenario, seed int64, hours, workers int) Result {
	res, _, _ := RunTap(sc, seed, hours, workers)
	return res
}

// RunTap is Run, additionally returning an FNV-1a digest of the
// canonical sampler event stream (for determinism proofs: identical
// digests mean identical detector behaviour, byte for byte) and the
// scenario's ground truth.
func RunTap(sc Scenario, seed int64, hours, workers int) (Result, uint64, Truth) {
	if hours <= 0 {
		hours = sc.Hours
	}
	w, truth := sc.Setup(seed, hours)

	// Generate every hour up front so the scored elapsed time covers
	// only detection and the feed back half.
	pergen := make([][]packet.Packet, hours)
	var packets int64
	for h := range pergen {
		pergen[h] = w.GenerateHourWorkers(w.Start().Add(time.Duration(h)*time.Hour), workers)
		packets += int64(len(pergen[h]))
	}

	lcfg := pipeline.DefaultLocalConfig()
	delay := lcfg.CollectionDelay + lcfg.ProcessingDelay
	srv := pipeline.NewServer(pipeline.DefaultServerConfig(), w, w.Registry(), nil)
	var at time.Time
	digest := fnv.New64a()
	var encBuf []byte
	sampler := pipeline.NewSamplerWorkers(trw.Default(), 0, workers, func(e pipeline.SamplerEvent) {
		if kind, data, err := pipeline.AppendEncodeEvent(encBuf[:0], e); err == nil {
			digest.Write([]byte{byte(kind)})
			digest.Write(data)
			encBuf = data[:0]
		}
		srv.HandleEvent(e, at)
	})

	started := time.Now()
	for h, pkts := range pergen {
		hourEnd := w.Start().Add(time.Duration(h+1) * time.Hour)
		at = hourEnd.Add(delay)
		sampler.ProcessHour(pkts, hourEnd)
		srv.Tick(at)
	}
	flushAt := w.Start().Add(time.Duration(hours) * time.Hour)
	at = flushAt.Add(time.Hour).Add(delay)
	sampler.Flush(flushAt)
	srv.FlushScans(at)
	srv.Tick(at)
	elapsed := time.Since(started)

	res := score(w, truth, srv)
	res.Name = sc.Name
	res.Hours = hours
	res.Workers = workers
	res.Packets = packets
	res.ElapsedNs = elapsed.Nanoseconds()
	return res, digest.Sum64(), truth
}

// score compares the feed against the world's ground truth.
func score(w *simnet.World, truth Truth, srv *pipeline.Server) Result {
	var res Result
	recs := srv.Historical().Find(nil)
	res.Records = len(recs)

	// Collapse record instances to distinct fed sources, keeping one
	// record per IP for the label check (instances of one source carry
	// the same ground truth).
	fed := make(map[packet.IP]feed.Record, len(recs))
	for _, rec := range recs {
		ip, err := packet.ParseIP(rec.IP)
		if err != nil {
			continue
		}
		fed[ip] = rec
	}

	// Scan detection over the whole world.
	var trueScanners, fedTrue int
	for _, h := range w.Hosts() {
		scanner := isScannerKind(h.Kind)
		if scanner {
			trueScanners++
		}
		if _, ok := fed[h.IP]; ok && scanner {
			fedTrue++
		}
	}
	if len(fed) > 0 {
		res.ScanPrecision = float64(fedTrue) / float64(len(fed))
	}
	if trueScanners > 0 {
		res.ScanRecall = float64(fedTrue) / float64(trueScanners)
	}

	// Injected cohort.
	var injScanners, injFed int
	for ip, inj := range truth {
		_, isFed := fed[ip]
		if inj.Scanner {
			injScanners++
			if isFed {
				injFed++
			}
		} else if isFed {
			res.InjectedFalseFed++
		}
	}
	if injScanners > 0 {
		res.InjectedRecall = float64(injFed) / float64(injScanners)
	}

	// IoT labels among fed records with ground truth.
	var tp, fp, fn int
	for ip, rec := range fed {
		h, ok := w.HostByIP(ip)
		if !ok {
			continue
		}
		predIoT := rec.Label == feed.LabelIoT
		switch {
		case predIoT && h.IsIoT():
			tp++
		case predIoT && !h.IsIoT():
			fp++
		case !predIoT && h.IsIoT():
			fn++
		}
	}
	if tp+fp > 0 {
		res.IoTPrecision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		res.IoTRecall = float64(tp) / float64(tp+fn)
	}
	return res
}

// isScannerKind reports whether hosts of kind k genuinely scan — the
// ground-truth positive class for scan detection. Misconfigured nodes
// and backscatter sources emit telescope traffic without scanning.
func isScannerKind(k simnet.HostKind) bool {
	switch k {
	case simnet.KindInfectedIoT, simnet.KindNonIoTScanner, simnet.KindResearchScanner:
		return true
	default:
		return false
	}
}
