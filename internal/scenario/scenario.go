// Package scenario is the adversarial scenario library: seeded,
// deterministic traffic mixes layered on simnet that stress the
// detector's known blind spots — sub-threshold stealth scanners,
// Mirai-style botnet growth waves, spoofed backscatter storms, and
// diurnal load cycles (the behaviours IoT-BDA and GothX catalogue for
// real IoT malware). Each scenario builds a world plus ground-truth
// labels for every injected host; the scorer in score.go runs the full
// TRW→probe→classify pipeline over it and reports per-scenario
// precision/recall, turning detection accuracy under adversarial
// traffic into a regression-tracked metric (BENCH_scenarios.json).
package scenario

import (
	"fmt"
	"time"

	"exiot/internal/device"
	"exiot/internal/packet"
	"exiot/internal/simnet"
)

// Injected is the ground truth for one adversarial host.
type Injected struct {
	// Role names the adversarial behaviour ("stealth", "wave-2", ...).
	Role string
	// Scanner reports whether the host genuinely scans — i.e. whether
	// an ideal detector would feed it. Sub-threshold stealth scanners
	// are Scanner=true even though the TRW θ can't see them: the gap
	// between this label and the detector's output IS the blind spot
	// the suite measures.
	Scanner bool
	// IoT is the ground-truth device-class label.
	IoT bool
}

// Truth maps every injected host to its ground truth.
type Truth map[packet.IP]Injected

// Scenario is one adversarial traffic mix.
type Scenario struct {
	Name        string
	Description string
	// Hours is the scenario's canonical span; Setup receives it (or a
	// test-shortened value) as its hours argument.
	Hours int
	// BlindSpot is the expected detector weakness, for EXPERIMENTS.md.
	BlindSpot string
	// Setup deterministically builds the world and ground truth for
	// (seed, hours). The pipeline under test sees only the packets.
	Setup func(seed int64, hours int) (*simnet.World, Truth)
}

// baseWorld builds the small shared background population every
// scenario runs against: enough benign and malicious variety that
// precision is meaningful, small enough that a 48 h scenario stays
// test-sized.
func baseWorld(seed int64, hours int) *simnet.World {
	cfg := simnet.DefaultConfig(seed)
	cfg.NumInfected = 30
	cfg.NumNonIoT = 8
	cfg.NumResearch = 2
	cfg.NumMisconfig = 6
	cfg.NumBackscat = 3
	cfg.MaxPacketsPerHostHour = 600
	cfg.Days = (hours + 23) / 24
	if cfg.Days < 1 {
		cfg.Days = 1
	}
	return simnet.NewWorld(cfg)
}

// familyByName finds a malware family in the device catalog.
func familyByName(name string) *device.MalwareFamily {
	for i := range device.Families {
		if device.Families[i].Name == name {
			return &device.Families[i]
		}
	}
	panic(fmt.Sprintf("scenario: unknown malware family %q", name))
}

// Suite returns the adversarial scenario library.
func Suite() []Scenario {
	return []Scenario{
		stealthSubThreshold(),
		botnetGrowthWave(),
		backscatterStorm(),
		diurnalCycle(),
	}
}

// ByName returns the named scenario from the suite.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Suite() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// stealthSubThreshold injects low-and-slow scanners whose per-session
// telescope footprint stays just below the TRW detection threshold:
// ~30-minute sessions at 10 pps Internet-wide (≈0.04 pps observed,
// ≈70 packets) separated by silences longer than the counting-expiry
// gap, so the detector's count never reaches θ=100.
func stealthSubThreshold() Scenario {
	return Scenario{
		Name: "stealth-subthreshold",
		Description: "24 low-and-slow Mirai hosts scanning in ~70-packet sessions " +
			"below the TRW θ=100, silences past the expiry gap between them",
		Hours: 6,
		BlindSpot: "fan-out counting resets on every expiry gap, so a scanner that " +
			"paces sessions under θ packets is invisible at any campaign length",
		Setup: func(seed int64, hours int) (*simnet.World, Truth) {
			w := baseWorld(seed, hours)
			truth := Truth{}
			mirai := familyByName("Mirai")
			start := w.Start()
			for i := 0; i < 24; i++ {
				// One 30-minute session per hour, phase-staggered so the
				// cohort is always partially active.
				var wins []simnet.Window
				offset := time.Duration(i%4) * 15 * time.Minute
				for h := 0; h < hours; h++ {
					s := start.Add(time.Duration(h)*time.Hour + offset)
					wins = append(wins, simnet.Window{Start: s, End: s.Add(30 * time.Minute)})
				}
				ip := w.InjectHost(simnet.InjectSpec{
					Kind:     simnet.KindInfectedIoT,
					Family:   mirai,
					Rate:     10, // observed ≈0.04 pps → ≈70 pkts/session < θ
					Jitter:   0.10,
					Sessions: wins,
					Salt:     0x57EA17<<20 | int64(i),
				})
				truth[ip] = Injected{Role: "stealth", Scanner: true, IoT: true}
			}
			return w, truth
		},
	}
}

// botnetGrowthWave injects a Mirai-style campaign recruiting in
// exponential waves — 4, 8, 16, then 32 devices at three-hour
// intervals, each scanning continuously from its recruitment on.
func botnetGrowthWave() Scenario {
	return Scenario{
		Name: "botnet-growth-wave",
		Description: "Mirai campaign recruiting 4/8/16/32 devices in waves three " +
			"hours apart, each scanning continuously from recruitment",
		Hours: 12,
		BlindSpot: "nothing hides the wave itself, but detection lags recruitment " +
			"by the time-to-θ at each device's draw from the family rate range — " +
			"the feed understates a growing botnet's newest wave",
		Setup: func(seed int64, hours int) (*simnet.World, Truth) {
			w := baseWorld(seed, hours)
			truth := Truth{}
			mirai := familyByName("Mirai")
			start, end := w.Start(), w.Start().Add(time.Duration(hours)*time.Hour)
			salt := int64(0)
			for wave, count := range []int{4, 8, 16, 32} {
				recruited := start.Add(time.Duration(wave) * 3 * time.Hour)
				if !recruited.Before(end) {
					break
				}
				for i := 0; i < count; i++ {
					salt++
					ip := w.InjectHost(simnet.InjectSpec{
						Kind:     simnet.KindInfectedIoT,
						Family:   mirai, // rate re-drawn from the family range
						Sessions: []simnet.Window{{Start: recruited, End: end}},
						Salt:     0xB07<<32 | salt,
					})
					truth[ip] = Injected{
						Role:    fmt.Sprintf("wave-%d", wave+1),
						Scanner: true,
						IoT:     true,
					}
				}
			}
			return w, truth
		},
	}
}

// backscatterStorm injects a concentrated DDoS backscatter storm:
// high-rate spoofed-victim responders active in a two-hour window. None
// of them scan; a perfect pipeline feeds none of them.
func backscatterStorm() Scenario {
	return Scenario{
		Name: "backscatter-storm",
		Description: "30 DDoS victims blasting SYN-ACK/RST/ICMP backscatter at " +
			"20-60k pps for a two-hour storm window",
		Hours: 6,
		BlindSpot: "a backscatter source that leaks past the response-packet filter " +
			"would flood the feed with false records at storm volume; precision " +
			"under the storm is the regression metric",
		Setup: func(seed int64, hours int) (*simnet.World, Truth) {
			w := baseWorld(seed, hours)
			truth := Truth{}
			stormStart := w.Start().Add(2 * time.Hour)
			stormEnd := stormStart.Add(2 * time.Hour)
			for i := 0; i < 30; i++ {
				ip := w.InjectHost(simnet.InjectSpec{
					Kind:     simnet.KindBackscatter,
					Rate:     20000 + float64(i)*1300,
					Jitter:   0.2,
					Sessions: []simnet.Window{{Start: stormStart, End: stormEnd}},
					Salt:     0x5708<<32 | int64(i),
				})
				truth[ip] = Injected{Role: "storm", Scanner: false, IoT: false}
			}
			return w, truth
		},
	}
}

// diurnalCycle injects devices that scan only half of every day —
// powered or connected diurnally — over a two-day span, exercising the
// flow-end sweep and re-detection across the silent half-cycles.
func diurnalCycle() Scenario {
	return Scenario{
		Name: "diurnal-cycle",
		Description: "16 infected devices scanning 12h-on/12h-off across 48h, " +
			"phase-split between day-active and night-active cohorts",
		Hours: 48,
		BlindSpot: "every silent half-cycle ends the flow and the next one " +
			"re-detects it, so record counts inflate with addr repetition " +
			"and each cycle re-pays the time-to-θ detection lag",
		Setup: func(seed int64, hours int) (*simnet.World, Truth) {
			w := baseWorld(seed, hours)
			truth := Truth{}
			mirai := familyByName("Mirai")
			start, end := w.Start(), w.Start().Add(time.Duration(hours)*time.Hour)
			for i := 0; i < 16; i++ {
				// Half the cohort is on for the first 12 h of each day,
				// half for the second.
				phase := time.Duration(i%2) * 12 * time.Hour
				var wins []simnet.Window
				for day := 0; ; day++ {
					s := start.Add(time.Duration(day)*24*time.Hour + phase)
					if !s.Before(end) {
						break
					}
					e := s.Add(12 * time.Hour)
					if e.After(end) {
						e = end
					}
					wins = append(wins, simnet.Window{Start: s, End: e})
				}
				ip := w.InjectHost(simnet.InjectSpec{
					Kind:     simnet.KindInfectedIoT,
					Family:   mirai,
					Rate:     50, // observed ≈0.2 pps: θ in ~8 min of each on-cycle
					Jitter:   0.15,
					Sessions: wins,
					Salt:     0xD1<<40 | int64(i),
				})
				truth[ip] = Injected{Role: "diurnal", Scanner: true, IoT: true}
			}
			return w, truth
		},
	}
}
