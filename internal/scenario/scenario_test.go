package scenario

import (
	"reflect"
	"testing"
)

// testHours shortens each scenario's span so the determinism matrix
// (every scenario × two runs × two worker counts) stays test-sized
// while still crossing hour boundaries, gap expiries, and (for the
// diurnal cycle) a full on/off/on transition.
func testHours(sc Scenario) int {
	if sc.Hours > 26 {
		return 26
	}
	if sc.Hours > 7 {
		return 7
	}
	return sc.Hours
}

// stripTiming zeroes the wall-clock field so Results compare by content.
func stripTiming(r Result) Result {
	r.ElapsedNs = 0
	return r
}

// TestScenarioDeterminism replays every scenario twice from the same
// seed: ground-truth labels, the canonical detector event stream
// (compared by digest), and the scored result must be identical.
func TestScenarioDeterminism(t *testing.T) {
	for _, sc := range Suite() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			hours := testHours(sc)
			r1, d1, truth1 := RunTap(sc, 1234, hours, 1)
			r2, d2, truth2 := RunTap(sc, 1234, hours, 1)
			if !reflect.DeepEqual(truth1, truth2) {
				t.Error("ground-truth labels differ between identical-seed runs")
			}
			if d1 != d2 {
				t.Errorf("detector event streams differ: digest %x vs %x", d1, d2)
			}
			if stripTiming(r1) != stripTiming(r2) {
				t.Errorf("scored results differ:\n run1: %+v\n run2: %+v", r1, r2)
			}
			if len(truth1) == 0 {
				t.Error("scenario injected no hosts")
			}
			if r1.Packets == 0 {
				t.Error("scenario generated no packets")
			}
		})
	}
}

// TestScenarioWorkerInvariance replays every scenario at 1 vs 4
// detection workers: the sharded detector must produce the byte-for-
// byte identical canonical event stream, so the scored accuracy cannot
// depend on parallelism.
func TestScenarioWorkerInvariance(t *testing.T) {
	for _, sc := range Suite() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			hours := testHours(sc)
			r1, d1, truth1 := RunTap(sc, 99, hours, 1)
			r4, d4, truth4 := RunTap(sc, 99, hours, 4)
			if !reflect.DeepEqual(truth1, truth4) {
				t.Error("ground truth differs across worker counts")
			}
			if d1 != d4 {
				t.Errorf("event stream differs across worker counts: digest %x vs %x", d1, d4)
			}
			r4.Workers = r1.Workers
			if stripTiming(r1) != stripTiming(r4) {
				t.Errorf("scores differ across worker counts:\n w1: %+v\n w4: %+v", r1, r4)
			}
		})
	}
}

// TestScenarioSeedSensitivity guards against an accidentally ignored
// seed: different seeds must build different worlds.
func TestScenarioSeedSensitivity(t *testing.T) {
	sc, ok := ByName("stealth-subthreshold")
	if !ok {
		t.Fatal("suite is missing stealth-subthreshold")
	}
	_, d1, truth1 := RunTap(sc, 1, 3, 1)
	_, d2, truth2 := RunTap(sc, 2, 3, 1)
	if reflect.DeepEqual(truth1, truth2) {
		t.Error("different seeds produced identical ground truth")
	}
	if d1 == d2 {
		t.Error("different seeds produced identical event streams")
	}
}

// TestScenarioSemantics pins each scenario's designed outcome: the
// stealth cohort stays invisible to the TRW θ, the botnet waves and
// diurnal cohorts are caught, and the backscatter storm feeds nothing.
func TestScenarioSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("full-span scenario runs")
	}
	for _, sc := range Suite() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r := Run(sc, 42, 0, 1)
			switch sc.Name {
			case "stealth-subthreshold":
				if r.InjectedRecall != 0 {
					t.Errorf("stealth cohort detected (recall %.3f): sessions are not sub-threshold", r.InjectedRecall)
				}
			case "botnet-growth-wave", "diurnal-cycle":
				if r.InjectedRecall < 0.9 {
					t.Errorf("injected recall %.3f, want ≥0.9", r.InjectedRecall)
				}
			case "backscatter-storm":
				if r.InjectedFalseFed != 0 {
					t.Errorf("%d backscatter sources leaked into the feed", r.InjectedFalseFed)
				}
			}
			if r.InjectedFalseFed == 0 && r.ScanPrecision < 0.999 && r.Records > 0 {
				t.Errorf("scan precision %.3f: background false positives", r.ScanPrecision)
			}
		})
	}
}
