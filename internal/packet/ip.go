// Package packet models IPv4 packets as observed by a network telescope and
// provides a binary wire codec for them. It is the substrate that replaces
// the Libtrace packet-handling library used by the paper's C++ flow
// detector: every header field consumed downstream (Table II of the paper)
// is representable, serializable, and parseable.
package packet

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order. The zero value is 0.0.0.0.
type IP uint32

// MakeIP assembles an IP from its four dotted-quad octets.
func MakeIP(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Octets returns the four dotted-quad octets of the address.
func (ip IP) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// String renders the address in dotted-quad notation.
func (ip IP) String() string {
	a, b, c, d := ip.Octets()
	var sb strings.Builder
	sb.Grow(15)
	sb.WriteString(strconv.Itoa(int(a)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(b)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(c)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(d)))
	return sb.String()
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("parse ip %q: want 4 octets, got %d", s, len(parts))
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("parse ip %q: %w", s, err)
		}
		ip = ip<<8 | uint32(v)
	}
	return IP(ip), nil
}

// MustParseIP is ParseIP that panics on malformed input. It is intended for
// constant-like addresses in tests and catalogs.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	Base IP
	Bits int
}

// MakePrefix builds a prefix, normalizing the base address by masking off
// host bits.
func MakePrefix(base IP, bits int) Prefix {
	p := Prefix{Base: base, Bits: bits}
	return Prefix{Base: base & p.Mask(), Bits: bits}
}

// ParsePrefix parses CIDR notation such as "10.0.0.0/8".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("parse prefix %q: missing /", s)
	}
	base, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("parse prefix %q: %w", s, err)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("parse prefix %q: bad bit count", s)
	}
	return MakePrefix(base, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the network mask of the prefix as an IP-shaped bit pattern.
func (p Prefix) Mask() IP {
	if p.Bits <= 0 {
		return 0
	}
	if p.Bits >= 32 {
		return ^IP(0)
	}
	return ^IP(0) << (32 - p.Bits)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	return ip&p.Mask() == p.Base&p.Mask()
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 {
	return uint64(1) << (32 - p.Bits)
}

// Nth returns the i-th address inside the prefix (i modulo Size).
func (p Prefix) Nth(i uint64) IP {
	return p.Base + IP(i%p.Size())
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(p.Bits)
}
