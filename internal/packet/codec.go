package packet

import (
	"encoding/binary"
	"fmt"
)

// TCP option kinds, per RFC 793 / RFC 7323 / RFC 2018.
const (
	optEnd           = 0
	optNOP           = 1
	optMSS           = 2
	optWScale        = 3
	optSACKPermitted = 4
	optSACK          = 5
	optTimestamp     = 8
)

// wireLength returns the encoded byte length of the option set before
// padding to a 32-bit boundary.
func (o *TCPOptions) wireLength() int {
	n := 0
	if o.HasMSS {
		n += 4
	}
	if o.HasWScale {
		n += 3
	}
	if o.SACKPermitted {
		n += 2
	}
	if o.Timestamp {
		n += 10
	}
	if o.SACK {
		n += 10 // one SACK block
	}
	if o.NOP {
		n++
	}
	return n
}

func (o *TCPOptions) marshal(buf []byte) int {
	i := 0
	if o.HasMSS {
		buf[i] = optMSS
		buf[i+1] = 4
		binary.BigEndian.PutUint16(buf[i+2:], o.MSS)
		i += 4
	}
	if o.HasWScale {
		buf[i] = optWScale
		buf[i+1] = 3
		buf[i+2] = o.WScale
		i += 3
	}
	if o.SACKPermitted {
		buf[i] = optSACKPermitted
		buf[i+1] = 2
		i += 2
	}
	if o.Timestamp {
		buf[i] = optTimestamp
		buf[i+1] = 10
		// Timestamp value/echo are not features; zeros suffice.
		i += 10
	}
	if o.SACK {
		buf[i] = optSACK
		buf[i+1] = 10
		i += 10
	}
	if o.NOP {
		buf[i] = optNOP
		i++
	}
	// Pad with end-of-options to the 32-bit boundary.
	for i%4 != 0 {
		buf[i] = optEnd
		i++
	}
	return i
}

func (o *TCPOptions) unmarshal(buf []byte) error {
	*o = TCPOptions{}
	i := 0
	for i < len(buf) {
		kind := buf[i]
		switch kind {
		case optEnd:
			return nil
		case optNOP:
			o.NOP = true
			i++
			continue
		}
		if i+1 >= len(buf) {
			return fmt.Errorf("tcp option %d: truncated length", kind)
		}
		l := int(buf[i+1])
		if l < 2 || i+l > len(buf) {
			return fmt.Errorf("tcp option %d: bad length %d", kind, l)
		}
		switch kind {
		case optMSS:
			if l != 4 {
				return fmt.Errorf("mss option: bad length %d", l)
			}
			o.HasMSS = true
			o.MSS = binary.BigEndian.Uint16(buf[i+2:])
		case optWScale:
			if l != 3 {
				return fmt.Errorf("wscale option: bad length %d", l)
			}
			o.HasWScale = true
			o.WScale = buf[i+2]
		case optSACKPermitted:
			o.SACKPermitted = true
		case optSACK:
			o.SACK = true
		case optTimestamp:
			o.Timestamp = true
		}
		i += l
	}
	return nil
}

// ipChecksum computes the RFC 1071 ones-complement header checksum over
// hdr with its checksum field (bytes 10–11) treated as zero.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // the checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Marshal encodes the packet's IPv4 and transport headers into wire format
// and appends them to dst, returning the extended slice. Payload bytes are
// not written: a telescope capture keeps headers only, with the claimed
// on-wire size preserved in TotalLength.
func (p *Packet) Marshal(dst []byte) []byte {
	hdrLen := p.HeaderLength()
	start := len(dst)
	dst = append(dst, make([]byte, hdrLen)...)
	b := dst[start:]

	// IPv4 header.
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:], p.TotalLength)
	binary.BigEndian.PutUint16(b[4:], p.ID)
	// Flags+fragment offset zero: telescope scan packets are unfragmented.
	b[8] = p.TTL
	b[9] = uint8(p.Proto)
	binary.BigEndian.PutUint32(b[12:], uint32(p.SrcIP))
	binary.BigEndian.PutUint32(b[16:], uint32(p.DstIP))
	binary.BigEndian.PutUint16(b[10:], ipChecksum(b[:20]))

	t := b[20:]
	switch p.Proto {
	case TCP:
		binary.BigEndian.PutUint16(t[0:], p.SrcPort)
		binary.BigEndian.PutUint16(t[2:], p.DstPort)
		binary.BigEndian.PutUint32(t[4:], p.Seq)
		binary.BigEndian.PutUint32(t[8:], p.Ack)
		t[12] = p.DataOffset<<4 | p.Reserved&0x0f
		t[13] = uint8(p.Flags)
		binary.BigEndian.PutUint16(t[14:], p.Window)
		// TCP checksum left zero.
		binary.BigEndian.PutUint16(t[18:], p.Urgent)
		p.Options.marshal(t[20:])
	case UDP:
		binary.BigEndian.PutUint16(t[0:], p.SrcPort)
		binary.BigEndian.PutUint16(t[2:], p.DstPort)
		binary.BigEndian.PutUint16(t[4:], 8+p.PayloadLen)
	case ICMP:
		t[0] = p.ICMPType
		t[1] = p.ICMPCode
	}
	return dst
}

// Unmarshal decodes one packet's headers from buf. The caller supplies the
// capture timestamp (carried by the pcap record, not the packet itself).
// It returns the number of header bytes consumed.
func (p *Packet) Unmarshal(buf []byte) (int, error) {
	if len(buf) < 20 {
		return 0, fmt.Errorf("unmarshal packet: short ip header (%d bytes)", len(buf))
	}
	if v := buf[0] >> 4; v != 4 {
		return 0, fmt.Errorf("unmarshal packet: ip version %d", v)
	}
	ihl := int(buf[0]&0x0f) * 4
	if ihl < 20 || len(buf) < ihl {
		return 0, fmt.Errorf("unmarshal packet: bad ihl %d", ihl)
	}
	// Captures from cooperating collectors may zero the checksum; verify
	// it only when present.
	if got := binary.BigEndian.Uint16(buf[10:]); got != 0 && ihl == 20 {
		if want := ipChecksum(buf[:20]); got != want {
			return 0, fmt.Errorf("unmarshal packet: ip checksum %#04x, want %#04x", got, want)
		}
	}
	*p = Packet{
		TOS:         buf[1],
		TotalLength: binary.BigEndian.Uint16(buf[2:]),
		ID:          binary.BigEndian.Uint16(buf[4:]),
		TTL:         buf[8],
		Proto:       Protocol(buf[9]),
		SrcIP:       IP(binary.BigEndian.Uint32(buf[12:])),
		DstIP:       IP(binary.BigEndian.Uint32(buf[16:])),
	}
	t := buf[ihl:]
	consumed := ihl
	switch p.Proto {
	case TCP:
		if len(t) < 20 {
			return 0, fmt.Errorf("unmarshal packet: short tcp header (%d bytes)", len(t))
		}
		p.SrcPort = binary.BigEndian.Uint16(t[0:])
		p.DstPort = binary.BigEndian.Uint16(t[2:])
		p.Seq = binary.BigEndian.Uint32(t[4:])
		p.Ack = binary.BigEndian.Uint32(t[8:])
		p.DataOffset = t[12] >> 4
		p.Reserved = t[12] & 0x0f
		p.Flags = TCPFlags(t[13])
		p.Window = binary.BigEndian.Uint16(t[14:])
		p.Urgent = binary.BigEndian.Uint16(t[18:])
		optLen := int(p.DataOffset)*4 - 20
		if optLen < 0 || len(t) < 20+optLen {
			return 0, fmt.Errorf("unmarshal packet: bad tcp offset %d", p.DataOffset)
		}
		if err := p.Options.unmarshal(t[20 : 20+optLen]); err != nil {
			return 0, fmt.Errorf("unmarshal packet: %w", err)
		}
		consumed += 20 + optLen
	case UDP:
		if len(t) < 8 {
			return 0, fmt.Errorf("unmarshal packet: short udp header (%d bytes)", len(t))
		}
		p.SrcPort = binary.BigEndian.Uint16(t[0:])
		p.DstPort = binary.BigEndian.Uint16(t[2:])
		consumed += 8
	case ICMP:
		if len(t) < 8 {
			return 0, fmt.Errorf("unmarshal packet: short icmp header (%d bytes)", len(t))
		}
		p.ICMPType = t[0]
		p.ICMPCode = t[1]
		consumed += 8
	default:
		return 0, fmt.Errorf("unmarshal packet: unsupported protocol %d", p.Proto)
	}
	if n := int(p.TotalLength) - consumed; n > 0 {
		p.PayloadLen = uint16(n)
	}
	return consumed, nil
}
