package packet

import (
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func samplePacketTCP() Packet {
	p := Packet{
		Timestamp: time.Unix(1607500800, 123000),
		TOS:       0,
		ID:        54321,
		TTL:       64,
		Proto:     TCP,
		SrcIP:     MustParseIP("203.0.113.7"),
		DstIP:     MustParseIP("10.12.34.56"),
		SrcPort:   44123,
		DstPort:   23,
		Seq:       0x0a0c2238,
		Flags:     FlagSYN,
		Window:    5840,
		Options: TCPOptions{
			HasMSS: true, MSS: 1460,
			HasWScale: true, WScale: 7,
			SACKPermitted: true,
			Timestamp:     true,
			NOP:           true,
		},
	}
	p.Normalize()
	return p
}

func TestMarshalUnmarshalTCP(t *testing.T) {
	p := samplePacketTCP()
	buf := p.Marshal(nil)
	var q Packet
	n, err := q.Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	q.Timestamp = p.Timestamp // timestamps travel out of band
	if !reflect.DeepEqual(p, q) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestMarshalUnmarshalUDP(t *testing.T) {
	p := Packet{
		Proto:      UDP,
		SrcIP:      MustParseIP("198.51.100.9"),
		DstIP:      MustParseIP("10.1.2.3"),
		SrcPort:    5353,
		DstPort:    1900,
		TTL:        255,
		PayloadLen: 90,
	}
	p.Normalize()
	buf := p.Marshal(nil)
	var q Packet
	if _, err := q.Unmarshal(buf); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.SrcPort != 5353 || q.DstPort != 1900 || q.PayloadLen != 90 {
		t.Errorf("udp fields lost: %+v", q)
	}
	if q.TotalLength != 20+8+90 {
		t.Errorf("TotalLength = %d, want 118", q.TotalLength)
	}
}

func TestMarshalUnmarshalICMP(t *testing.T) {
	p := Packet{
		Proto:    ICMP,
		SrcIP:    MustParseIP("192.0.2.1"),
		DstIP:    MustParseIP("10.9.8.7"),
		TTL:      48,
		ICMPType: ICMPDestUnreach,
		ICMPCode: ICMPCodePortUnreach,
	}
	p.Normalize()
	buf := p.Marshal(nil)
	var q Packet
	if _, err := q.Unmarshal(buf); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if q.ICMPType != ICMPDestUnreach || q.ICMPCode != ICMPCodePortUnreach {
		t.Errorf("icmp fields lost: %+v", q)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":        nil,
		"short ip":     make([]byte, 10),
		"bad version":  append([]byte{0x65}, make([]byte, 19)...),
		"bad ihl":      append([]byte{0x41}, make([]byte, 19)...),
		"unknown prot": func() []byte { b := make([]byte, 28); b[0] = 0x45; b[9] = 99; return b }(),
		"short tcp":    func() []byte { b := make([]byte, 24); b[0] = 0x45; b[9] = 6; return b }(),
		"short udp":    func() []byte { b := make([]byte, 22); b[0] = 0x45; b[9] = 17; return b }(),
		"short icmp":   func() []byte { b := make([]byte, 22); b[0] = 0x45; b[9] = 1; return b }(),
	}
	for name, buf := range cases {
		var p Packet
		if _, err := p.Unmarshal(buf); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

// genPacket builds a random but self-consistent packet for property tests.
func genPacket(r *rand.Rand) Packet {
	p := Packet{
		TOS:     uint8(r.Intn(256)),
		ID:      uint16(r.Intn(65536)),
		TTL:     uint8(1 + r.Intn(255)),
		SrcIP:   IP(r.Uint32()),
		DstIP:   IP(r.Uint32()),
		SrcPort: uint16(r.Intn(65536)),
		DstPort: uint16(r.Intn(65536)),
	}
	switch r.Intn(3) {
	case 0:
		p.Proto = TCP
		p.Seq = r.Uint32()
		p.Ack = r.Uint32()
		p.Flags = TCPFlags(r.Intn(256))
		p.Window = uint16(r.Intn(65536))
		p.Urgent = uint16(r.Intn(65536))
		p.Reserved = uint8(r.Intn(16))
		p.Options = TCPOptions{
			HasMSS:        r.Intn(2) == 0,
			MSS:           uint16(r.Intn(65536)),
			HasWScale:     r.Intn(2) == 0,
			WScale:        uint8(r.Intn(15)),
			SACKPermitted: r.Intn(2) == 0,
			Timestamp:     r.Intn(2) == 0,
			SACK:          r.Intn(2) == 0,
			NOP:           r.Intn(2) == 0,
		}
		if !p.Options.HasMSS {
			p.Options.MSS = 0
		}
		if !p.Options.HasWScale {
			p.Options.WScale = 0
		}
	case 1:
		p.Proto = UDP
		p.PayloadLen = uint16(r.Intn(1400))
	default:
		p.Proto = ICMP
		p.SrcPort, p.DstPort = 0, 0
		p.ICMPType = uint8(r.Intn(20))
		p.ICMPCode = uint8(r.Intn(16))
	}
	p.Normalize()
	return p
}

func TestCodecRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		p := genPacket(r)
		buf := p.Marshal(nil)
		var q Packet
		n, err := q.Unmarshal(buf)
		if err != nil {
			t.Fatalf("iter %d: Unmarshal: %v (packet %+v)", i, err, p)
		}
		if n != len(buf) {
			t.Fatalf("iter %d: consumed %d of %d", i, n, len(buf))
		}
		q.Timestamp = p.Timestamp
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("iter %d mismatch:\n got %+v\nwant %+v", i, q, p)
		}
	}
}

func TestTCPDataLength(t *testing.T) {
	p := samplePacketTCP()
	p.PayloadLen = 100
	p.Normalize()
	if got := p.TCPDataLength(); got != 100 {
		t.Errorf("TCPDataLength() = %d, want 100", got)
	}
	u := Packet{Proto: UDP, PayloadLen: 50}
	u.Normalize()
	if u.TCPDataLength() != 0 {
		t.Error("UDP TCPDataLength should be 0")
	}
}

func TestBackscatterClassification(t *testing.T) {
	cases := []struct {
		name string
		p    Packet
		want bool
	}{
		{"syn", Packet{Proto: TCP, Flags: FlagSYN}, false},
		{"synack", Packet{Proto: TCP, Flags: FlagSYN | FlagACK}, true},
		{"rst", Packet{Proto: TCP, Flags: FlagRST}, true},
		{"rstack", Packet{Proto: TCP, Flags: FlagRST | FlagACK}, true},
		{"pure ack", Packet{Proto: TCP, Flags: FlagACK}, true},
		{"finack", Packet{Proto: TCP, Flags: FlagFIN | FlagACK}, true},
		{"psh syn", Packet{Proto: TCP, Flags: FlagSYN | FlagPSH}, false},
		{"udp", Packet{Proto: UDP}, false},
		{"icmp echo req", Packet{Proto: ICMP, ICMPType: ICMPEchoRequest}, false},
		{"icmp echo reply", Packet{Proto: ICMP, ICMPType: ICMPEchoReply}, true},
		{"icmp unreach", Packet{Proto: ICMP, ICMPType: ICMPDestUnreach, ICMPCode: ICMPCodePortUnreach}, true},
		{"icmp ttl", Packet{Proto: ICMP, ICMPType: ICMPTimeExceeded}, true},
	}
	for _, tc := range cases {
		if got := tc.p.IsBackscatter(); got != tc.want {
			t.Errorf("%s: IsBackscatter() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Errorf("String() = %q", s)
	}
	if s := TCPFlags(0).String(); s != "none" {
		t.Errorf("String() = %q", s)
	}
}

func TestProtocolString(t *testing.T) {
	if TCP.String() != "TCP" || UDP.String() != "UDP" || ICMP.String() != "ICMP" {
		t.Error("protocol names wrong")
	}
	if Protocol(99).String() != "proto(99)" {
		t.Error("unknown protocol name wrong")
	}
}

func TestOptionsQuickRoundTrip(t *testing.T) {
	f := func(hasMSS, hasWS, sackP, ts, sack, nop bool, mss uint16, ws uint8) bool {
		o := TCPOptions{
			HasMSS: hasMSS, MSS: 0,
			HasWScale: hasWS, WScale: 0,
			SACKPermitted: sackP, Timestamp: ts, SACK: sack, NOP: nop,
		}
		if hasMSS {
			o.MSS = mss
		}
		if hasWS {
			o.WScale = ws % 15
		}
		buf := make([]byte, 40)
		n := o.marshal(buf)
		var back TCPOptions
		if err := back.unmarshal(buf[:n]); err != nil {
			return false
		}
		return back == o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIPChecksumRoundTrip(t *testing.T) {
	p := samplePacketTCP()
	buf := p.Marshal(nil)
	// The marshaled header carries a valid RFC 1071 checksum.
	if got := ipChecksum(buf[:20]); binary.BigEndian.Uint16(buf[10:]) != got {
		t.Fatalf("stored checksum %#04x, recomputed %#04x",
			binary.BigEndian.Uint16(buf[10:]), got)
	}
	// Corrupting any header byte must be caught on decode.
	for _, i := range []int{1, 8, 12, 16, 19} {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0xFF
		var q Packet
		if _, err := q.Unmarshal(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
	// A zeroed checksum (header-only captures) is accepted.
	relaxed := append([]byte(nil), buf...)
	relaxed[10], relaxed[11] = 0, 0
	var q Packet
	if _, err := q.Unmarshal(relaxed); err != nil {
		t.Errorf("zero checksum rejected: %v", err)
	}
}

func TestIPChecksumKnownVector(t *testing.T) {
	// RFC 1071 example header (from the classic IP checksum worked
	// example): 45 00 00 73 00 00 40 00 40 11 [b861] c0 a8 00 01 c0 a8 00 c7.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	if got := ipChecksum(hdr); got != 0xb861 {
		t.Errorf("checksum = %#04x, want 0xb861", got)
	}
}
