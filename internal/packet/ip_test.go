package packet

import (
	"testing"
	"testing/quick"
)

func TestIPStringRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.0.0.1", "192.168.255.254", "255.255.255.255", "1.2.3.4"}
	for _, s := range cases {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if got := ip.String(); got != s {
			t.Errorf("ParseIP(%q).String() = %q", s, got)
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "-1.2.3.4"}
	for _, s := range bad {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q): want error", s)
		}
	}
}

func TestMakeIPOctets(t *testing.T) {
	ip := MakeIP(10, 20, 30, 40)
	a, b, c, d := ip.Octets()
	if a != 10 || b != 20 || c != 30 || d != 40 {
		t.Errorf("Octets() = %d.%d.%d.%d, want 10.20.30.40", a, b, c, d)
	}
}

func TestIPStringParseProperty(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseIP("10.255.1.2")) {
		t.Error("10.0.0.0/8 should contain 10.255.1.2")
	}
	if p.Contains(MustParseIP("11.0.0.0")) {
		t.Error("10.0.0.0/8 should not contain 11.0.0.0")
	}
	host := MustParsePrefix("1.2.3.4/32")
	if !host.Contains(MustParseIP("1.2.3.4")) || host.Contains(MustParseIP("1.2.3.5")) {
		t.Error("/32 containment wrong")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseIP("255.255.255.255")) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixNormalization(t *testing.T) {
	p := MakePrefix(MustParseIP("10.1.2.3"), 8)
	if p.Base != MustParseIP("10.0.0.0") {
		t.Errorf("MakePrefix should mask host bits, base = %v", p.Base)
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestPrefixSizeNth(t *testing.T) {
	p := MustParsePrefix("192.168.1.0/24")
	if p.Size() != 256 {
		t.Errorf("Size() = %d, want 256", p.Size())
	}
	if p.Nth(0) != MustParseIP("192.168.1.0") {
		t.Errorf("Nth(0) = %v", p.Nth(0))
	}
	if p.Nth(255) != MustParseIP("192.168.1.255") {
		t.Errorf("Nth(255) = %v", p.Nth(255))
	}
	if p.Nth(256) != p.Nth(0) {
		t.Error("Nth should wrap modulo Size")
	}
}

func TestPrefixNthAlwaysContained(t *testing.T) {
	f := func(base uint32, bits uint8, i uint64) bool {
		p := MakePrefix(IP(base), int(bits%33))
		return p.Contains(p.Nth(i))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsePrefixErrors(t *testing.T) {
	bad := []string{"", "10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8", "10.0.0.0/x"}
	for _, s := range bad {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q): want error", s)
		}
	}
}
