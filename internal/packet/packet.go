package packet

import (
	"fmt"
	"strings"
	"time"
)

// Protocol identifies the transport protocol of a packet. The values match
// the IPv4 protocol numbers so they can be written to the wire directly.
type Protocol uint8

// Supported transport protocols. The telescope pipeline only needs the
// three protocols that carry scan traffic and backscatter.
const (
	ICMP Protocol = 1
	TCP  Protocol = 6
	UDP  Protocol = 17
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ICMP:
		return "ICMP"
	case TCP:
		return "TCP"
	case UDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCPFlags is the 8-bit TCP flag field.
type TCPFlags uint8

// Individual TCP flags.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// String renders the set flags in the usual capital-letter shorthand.
func (f TCPFlags) String() string {
	if f == 0 {
		return "none"
	}
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"},
		{FlagACK, "ACK"}, {FlagURG, "URG"}, {FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	var parts []string
	for _, n := range names {
		if f.Has(n.bit) {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "|")
}

// ICMP types and codes used by the backscatter filter.
const (
	ICMPEchoReply       uint8 = 0
	ICMPDestUnreach     uint8 = 3
	ICMPEchoRequest     uint8 = 8
	ICMPTimeExceeded    uint8 = 11
	ICMPCodePortUnreach uint8 = 3
	ICMPCodeHostUnreach uint8 = 1
)

// TCPOptions carries the subset of TCP options the classifier consumes
// (Table II of the paper): window scale, MSS, and the binary presence of
// timestamp, NOP, SACK-permitted and SACK options.
type TCPOptions struct {
	HasWScale     bool
	WScale        uint8
	HasMSS        bool
	MSS           uint16
	Timestamp     bool
	NOP           bool
	SACKPermitted bool
	SACK          bool
}

// Packet is one telescope-observed IPv4 packet with every header field the
// downstream modules consume. Payloads are never carried: a telescope
// observes unsolicited traffic whose payload (if any) is irrelevant to the
// feature set.
type Packet struct {
	Timestamp time.Time

	// IPv4 header.
	TOS         uint8
	TotalLength uint16
	ID          uint16
	TTL         uint8
	Proto       Protocol
	SrcIP       IP
	DstIP       IP

	// TCP / UDP header (ports are zero for ICMP).
	SrcPort uint16
	DstPort uint16

	// TCP-only header fields.
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words
	Reserved   uint8
	Flags      TCPFlags
	Window     uint16
	Urgent     uint16
	Options    TCPOptions

	// ICMP-only header fields.
	ICMPType uint8
	ICMPCode uint8

	// PayloadLen is the number of payload bytes the packet claimed to carry.
	PayloadLen uint16
}

// HeaderLength returns the combined IP+transport header length in bytes.
func (p *Packet) HeaderLength() int {
	const ipHeader = 20
	switch p.Proto {
	case TCP:
		off := int(p.DataOffset)
		if off < 5 {
			off = 5
		}
		return ipHeader + off*4
	case UDP:
		return ipHeader + 8
	case ICMP:
		return ipHeader + 8
	default:
		return ipHeader
	}
}

// TCPDataLength returns the TCP payload length implied by the headers, or 0
// for non-TCP packets.
func (p *Packet) TCPDataLength() int {
	if p.Proto != TCP {
		return 0
	}
	n := int(p.TotalLength) - p.HeaderLength()
	if n < 0 {
		return 0
	}
	return n
}

// IsBackscatter reports whether the packet is a response to spoofed traffic
// rather than a scan aimed at the telescope. The paper filters packets
// "with only TCP ACK flag set, ICMP packets with unreachable code set,
// etc."; we implement the standard telescope backscatter taxonomy:
// SYN-ACK, RST(+ACK), pure-ACK and FIN-ACK TCP segments, ICMP echo replies,
// destination-unreachable and time-exceeded messages.
func (p *Packet) IsBackscatter() bool {
	switch p.Proto {
	case TCP:
		f := p.Flags
		switch {
		case f.Has(FlagSYN | FlagACK):
			return true
		case f.Has(FlagRST):
			return true
		case f == FlagACK:
			return true
		case f.Has(FlagFIN|FlagACK) && !f.Has(FlagSYN):
			return true
		}
		return false
	case ICMP:
		switch p.ICMPType {
		case ICMPEchoReply, ICMPDestUnreach, ICMPTimeExceeded:
			return true
		}
		return false
	default:
		return false
	}
}

// Normalize fills derived header fields (total length, data offset) so a
// hand-built packet is self-consistent before marshaling. Generators call
// this once per packet.
func (p *Packet) Normalize() {
	if p.Proto == TCP {
		optLen := p.Options.wireLength()
		p.DataOffset = uint8(5 + (optLen+3)/4)
	}
	p.TotalLength = uint16(p.HeaderLength() + int(p.PayloadLen))
}
