package feedserve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"testing"
	"time"

	"exiot/internal/feed"
	"exiot/internal/store"
)

var t0 = time.Date(2020, 12, 9, 0, 0, 0, 0, time.UTC)

func rec(ip string, active bool) feed.Record {
	return feed.Record{
		IP:          ip,
		Label:       feed.LabelIoT,
		Active:      active,
		CountryCode: "CN",
		DetectedAt:  t0,
		TargetPorts: map[uint16]int{23: 100},
	}
}

func newCache(t *testing.T, n int) (*store.Collection[feed.Record], *Cache, []store.ObjectID) {
	t.Helper()
	coll := store.NewCollection[feed.Record]()
	ids := make([]store.ObjectID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, coll.Insert(t0.Add(time.Duration(i)*time.Minute), rec(ipFor(i), true)))
	}
	c := New(coll, Config{Clock: func() time.Time { return t0 }})
	t.Cleanup(c.Close)
	return coll, c, ids
}

func ipFor(i int) string {
	return string(rune('a'+i%26)) + ".example" // not a real IP; records don't require one
}

func TestSnapshotExportMatchesStoreWalk(t *testing.T) {
	coll, c, _ := newCache(t, 5)

	// The reference bytes: walk the store and encode with the legacy
	// export settings (json.Encoder, HTML escaping off).
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	enc.SetEscapeHTML(false)
	for _, r := range coll.Find(nil) {
		if err := enc.Encode(&r); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Current()
	if !bytes.Equal(snap.ExportNDJSON(), want.Bytes()) {
		t.Fatalf("snapshot export differs from store-walked encoding:\n%s\nvs\n%s",
			snap.ExportNDJSON(), want.Bytes())
	}

	// The gzip variant decompresses to the same bytes.
	zr, err := gzip.NewReader(bytes.NewReader(snap.ExportGzip()))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want.Bytes()) {
		t.Fatal("gzip export does not round-trip to the raw export")
	}

	// Item lines alias the export buffer and concatenate back to it.
	var cat bytes.Buffer
	for _, it := range snap.Items() {
		cat.Write(it.Line)
	}
	if !bytes.Equal(cat.Bytes(), snap.ExportNDJSON()) {
		t.Fatal("item lines do not concatenate to the export buffer")
	}
}

func TestSequenceAssignment(t *testing.T) {
	coll, c, ids := newCache(t, 3)
	snap := c.Current()
	if snap.Len() != 3 || snap.LastSeq() != 3 {
		t.Fatalf("initial snapshot: len=%d lastSeq=%d, want 3/3", snap.Len(), snap.LastSeq())
	}
	for i, it := range snap.Items() {
		if it.Seq != uint64(i+1) {
			t.Fatalf("item %d has seq %d, want %d (insertion order)", i, it.Seq, i+1)
		}
	}

	// A no-op rebuild keeps every sequence and the fingerprint.
	fp := snap.Fingerprint()
	snap2 := c.Rebuild()
	if snap2.LastSeq() != 3 || snap2.Fingerprint() != fp {
		t.Fatalf("no-op rebuild changed state: lastSeq=%d fp=%x vs %x", snap2.LastSeq(), snap2.Fingerprint(), fp)
	}

	// An update re-sequences only the touched record; an insert extends.
	coll.Update(ids[1], func(r *feed.Record) { r.Active = false })
	coll.Insert(t0.Add(time.Hour), rec("new.example", true))
	snap3 := c.Rebuild()
	if snap3.Len() != 4 || snap3.LastSeq() != 5 {
		t.Fatalf("after update+insert: len=%d lastSeq=%d, want 4/5", snap3.Len(), snap3.LastSeq())
	}
	seqs := []uint64{}
	for _, it := range snap3.Items() {
		seqs = append(seqs, it.Seq)
	}
	// Insertion order: [kept(1), updated(4), kept(3), new(5)].
	want := []uint64{1, 4, 3, 5}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("seqs = %v, want %v", seqs, want)
		}
	}
	if snap3.Fingerprint() == fp {
		t.Fatal("fingerprint did not change after mutations")
	}

	// Delta query: everything after the original lastSeq, in seq order.
	delta := snap3.ItemsSince(3)
	if len(delta) != 2 || delta[0].Seq != 4 || delta[1].Seq != 5 {
		t.Fatalf("ItemsSince(3) = %v items", len(delta))
	}
	if delta[0].Rec.Active || delta[0].Rec.IP == "" {
		t.Fatalf("delta[0] should be the flow-ended record, got %+v", delta[0].Rec)
	}
	if len(snap3.ItemsSince(5)) != 0 {
		t.Fatal("ItemsSince(lastSeq) should be empty")
	}

	// A delete changes the fingerprint even with no new sequences.
	fp3 := snap3.Fingerprint()
	coll.Delete(ids[0])
	snap4 := c.Rebuild()
	if snap4.Len() != 3 || snap4.Fingerprint() == fp3 {
		t.Fatalf("delete: len=%d, fingerprint changed=%v", snap4.Len(), snap4.Fingerprint() != fp3)
	}
	if snap4.LastSeq() != 5 {
		t.Fatalf("delete minted a sequence: lastSeq=%d", snap4.LastSeq())
	}
}

func TestInvalidateDrivesBackgroundRebuild(t *testing.T) {
	coll := store.NewCollection[feed.Record]()
	c := New(coll, Config{RebuildEvery: time.Millisecond})
	defer c.Close()
	c.Start()

	coll.Insert(t0, rec("x.example", true)) // hook marks dirty + wakes loop
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Current().Len() == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background loop never rebuilt the snapshot after a store mutation")
}

func TestSubscribeReplayAndBroadcast(t *testing.T) {
	coll, c, _ := newCache(t, 2)

	// Replay: everything after seq 1.
	replay, sub := c.Subscribe(1)
	defer c.Unsubscribe(sub)
	if len(replay) != 1 || replay[0].Seq != 2 {
		t.Fatalf("replay = %+v, want one event with seq 2", replay)
	}
	if !bytes.Contains(replay[0].Frame, []byte("id: 2\nevent: record\ndata: {")) {
		t.Fatalf("frame = %q", replay[0].Frame)
	}
	if bytes.Contains(replay[0].Frame, []byte("data: {\n")) {
		t.Fatal("frame data must be a single line")
	}

	// A write broadcast after subscribing lands on the queue.
	coll.Insert(t0.Add(time.Hour), rec("z.example", true))
	c.Rebuild()
	select {
	case ev := <-sub.C:
		if ev.Seq != 3 {
			t.Fatalf("broadcast seq = %d, want 3", ev.Seq)
		}
	case <-time.After(time.Second):
		t.Fatal("no broadcast after rebuild")
	}
}

func TestLaggingSubscriberIsDropped(t *testing.T) {
	coll, c, _ := newCache(t, 1)
	_, sub := c.Subscribe(0)
	// Never drain: overflow the queue.
	for i := 0; i < subscriberBuffer+8; i++ {
		coll.Insert(t0.Add(time.Duration(i)*time.Second), rec(ipFor(i), true))
		c.Rebuild()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		drained := 0
		closed := false
		for {
			if _, ok := <-sub.C; !ok {
				closed = true
				break
			}
			drained++
			if drained > subscriberBuffer+16 {
				break
			}
		}
		if closed {
			return // dropped, as designed
		}
	}
	t.Fatal("lagging subscriber was never dropped")
}

func TestCloseDisconnectsSubscribers(t *testing.T) {
	_, c, _ := newCache(t, 1)
	_, sub := c.Subscribe(0)
	c.Close()
	select {
	case _, ok := <-sub.C:
		if ok {
			return // drained the replayed broadcast? No broadcasts occurred; must be closed
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber channel not closed on Close")
	}
}

func TestOnRebuildHook(t *testing.T) {
	coll, c, ids := newCache(t, 2)

	var calls []int
	c.OnRebuild(func(s *Snapshot) { calls = append(calls, s.Len()) })

	// Hook sees each successful rebuild's snapshot.
	c.Rebuild()
	coll.Insert(t0, rec("z.example", true))
	c.Rebuild()
	if len(calls) != 2 || calls[0] != 2 || calls[1] != 3 {
		t.Fatalf("hook calls = %v, want [2 3]", calls)
	}

	// Records() mirrors the snapshot's decoded items in export order.
	recs := c.Current().Records()
	if len(recs) != 3 || recs[2].IP != "z.example" {
		t.Fatalf("Records() = %d entries, last %q", len(recs), recs[len(recs)-1].IP)
	}

	// A hook may call back into the cache without deadlocking.
	c.OnRebuild(func(s *Snapshot) { _ = c.Current() })
	coll.Delete(ids[0])
	c.Rebuild()
	if got := calls[len(calls)-1]; got != 2 {
		t.Fatalf("hook after removal saw %d records, want 2", got)
	}
}
