package feedserve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"hash/fnv"
	"sort"
	"time"

	"exiot/internal/feed"
	"exiot/internal/store"
)

// Item is one feed record inside a snapshot: the record itself (for
// filtering), its stable change-sequence number, and its pre-marshaled
// NDJSON line (terminated by '\n') — the exact bytes the store-walked
// export path would produce, so snapshot-served responses are
// byte-identical to walking the document store.
type Item struct {
	// ID is the record's historical-database ObjectID.
	ID store.ObjectID
	// Seq is the record's change sequence: assigned when the record
	// first appears in a snapshot and re-assigned whenever its marshaled
	// bytes change (a flow end, say). Sequences only grow, so "every
	// record with Seq > N" is exactly "everything that changed since a
	// consumer's cursor N".
	Seq uint64
	// Line is the record's NDJSON line, a subslice of the snapshot's
	// export buffer (JSON + trailing '\n').
	Line []byte
	// Rec is the decoded record, for query filtering.
	Rec feed.Record
}

// Snapshot is an immutable point-in-time view of the feed. It is built
// once and never mutated; readers obtain it through an atomic pointer
// load (Cache.Current) and use it lock-free for as long as they like —
// the RCU discipline that keeps the read path zero-lock.
type Snapshot struct {
	// items in document-store insertion order (the bulk-export order).
	items []Item
	// index maps ObjectID → items position (change detection on rebuild).
	index map[store.ObjectID]int
	// bySeq holds items positions ordered by ascending Seq (cursor
	// pagination and delta queries).
	bySeq []int
	// lastSeq is the highest sequence ever assigned up to this snapshot.
	lastSeq uint64
	// fp fingerprints the export bytes (FNV-1a 64); it changes whenever
	// any record is added, updated, or removed, and backs strong ETags.
	fp      uint64
	builtAt time.Time
	// export is the full NDJSON bulk export (items' lines concatenated);
	// exportGzip is the same bytes gzip-compressed, built once per
	// snapshot rather than per request.
	export     []byte
	exportGzip []byte
}

// Len returns the number of records in the snapshot.
func (s *Snapshot) Len() int { return len(s.items) }

// Records copies the snapshot's decoded records, in export order — the
// input shape analysis passes (campaign tracking, say) want.
func (s *Snapshot) Records() []feed.Record {
	out := make([]feed.Record, len(s.items))
	for i := range s.items {
		out[i] = s.items[i].Rec
	}
	return out
}

// Items returns the records in insertion order. The slice is shared and
// must not be mutated.
func (s *Snapshot) Items() []Item { return s.items }

// LastSeq returns the highest change-sequence number assigned so far;
// a consumer holding cursor LastSeq has seen every change in this
// snapshot.
func (s *Snapshot) LastSeq() uint64 { return s.lastSeq }

// Fingerprint identifies the snapshot's content (strong-ETag base).
func (s *Snapshot) Fingerprint() uint64 { return s.fp }

// BuiltAt reports when the snapshot was assembled.
func (s *Snapshot) BuiltAt() time.Time { return s.builtAt }

// ExportNDJSON returns the precomputed bulk export. Shared; read-only.
func (s *Snapshot) ExportNDJSON() []byte { return s.export }

// ExportGzip returns the precomputed gzip'd bulk export. Shared;
// read-only.
func (s *Snapshot) ExportGzip() []byte { return s.exportGzip }

// ItemsSince returns pointers to every item with Seq > since, in
// ascending Seq order — the delta a consumer at cursor `since` has not
// seen yet.
func (s *Snapshot) ItemsSince(since uint64) []*Item {
	start := sort.Search(len(s.bySeq), func(i int) bool {
		return s.items[s.bySeq[i]].Seq > since
	})
	out := make([]*Item, 0, len(s.bySeq)-start)
	for _, idx := range s.bySeq[start:] {
		out = append(out, &s.items[idx])
	}
	return out
}

// buildSnapshot assembles a fresh snapshot from an exported collection
// state. prev (nil on the first build) supplies change detection:
// records whose marshaled bytes are unchanged keep their sequence
// number, everything new or different draws the next one from lastSeq.
func buildSnapshot(docs []store.Doc[feed.Record], prev *Snapshot, lastSeq *uint64, now time.Time) (*Snapshot, error) {
	snap := &Snapshot{
		items:   make([]Item, 0, len(docs)),
		index:   make(map[store.ObjectID]int, len(docs)),
		builtAt: now,
	}

	// Marshal every record into one buffer with the exact settings of
	// the store-walked export path (json.Encoder, HTML escaping off),
	// then alias each line as a subslice — no per-record copies.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	offsets := make([]int, len(docs)+1)
	for i := range docs {
		offsets[i] = buf.Len()
		if err := enc.Encode(&docs[i].Value); err != nil {
			return nil, err
		}
	}
	offsets[len(docs)] = buf.Len()
	snap.export = buf.Bytes()

	for i := range docs {
		line := snap.export[offsets[i]:offsets[i+1]]
		seq := uint64(0)
		if prev != nil {
			if pi, ok := prev.index[docs[i].ID]; ok && bytes.Equal(prev.items[pi].Line, line) {
				seq = prev.items[pi].Seq
			}
		}
		if seq == 0 {
			*lastSeq++
			seq = *lastSeq
		}
		snap.index[docs[i].ID] = len(snap.items)
		snap.items = append(snap.items, Item{ID: docs[i].ID, Seq: seq, Line: line, Rec: docs[i].Value})
	}
	snap.lastSeq = *lastSeq

	snap.bySeq = make([]int, len(snap.items))
	for i := range snap.bySeq {
		snap.bySeq[i] = i
	}
	sort.Slice(snap.bySeq, func(a, b int) bool {
		return snap.items[snap.bySeq[a]].Seq < snap.items[snap.bySeq[b]].Seq
	})

	h := fnv.New64a()
	_, _ = h.Write(snap.export)
	snap.fp = h.Sum64()

	var gz bytes.Buffer
	zw, err := gzip.NewWriterLevel(&gz, gzip.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(snap.export); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	snap.exportGzip = gz.Bytes()
	return snap, nil
}
