// Package feedserve is the CTI feed's distribution read path: an
// immutable, atomically-swapped in-memory snapshot of the feed rebuilt
// from the document store's Export hooks on change. Reads never take a
// lock — they load the current snapshot pointer and serve pre-marshaled
// bytes — while a single background rebuilder turns store mutations
// into fresh snapshots, precomputed gzip'd bulk exports, and SSE record
// deltas for subscribers. This is how operational telescope feeds
// (GreyNoise/DShield-style) serve millions of consumers: snapshots for
// bulk, sequence-numbered deltas for freshness.
package feedserve

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"exiot/internal/feed"
	"exiot/internal/store"
	"exiot/internal/telemetry"
)

// Telemetry handles for the feed-serving layer (see docs/OPERATIONS.md).
var (
	metRebuilds = telemetry.Default().Counter("exiot_feedserve_rebuilds_total",
		"Feed snapshot rebuilds (atomic pointer swaps) completed.")
	metSnapRecords = telemetry.Default().Gauge("exiot_feedserve_snapshot_records",
		"Records in the current feed snapshot.")
	metSnapSeq = telemetry.Default().Gauge("exiot_feedserve_snapshot_seq",
		"Highest change-sequence number assigned by the snapshot builder.")
	metSnapBuilt = telemetry.Default().Gauge("exiot_feedserve_snapshot_built_unix",
		"Wall-clock unix time the current snapshot was built (age = now - this).")
	metExportBytes = telemetry.Default().GaugeVec("exiot_feedserve_export_bytes",
		"Size of the precomputed bulk export, by encoding (raw|gzip).", "encoding")
	metSSEClients = telemetry.Default().Gauge("exiot_feedserve_sse_clients",
		"Currently connected SSE delta subscribers.")
	metSSEEvents = telemetry.Default().Counter("exiot_feedserve_sse_events_total",
		"Record-delta events delivered to SSE subscriber queues.")
	metSSEDropped = telemetry.Default().Counter("exiot_feedserve_sse_dropped_total",
		"SSE subscribers disconnected for not draining their event queue.")
)

// Config parameterizes the cache.
type Config struct {
	// RebuildEvery is the minimum interval between background snapshot
	// rebuilds — the export precompute cadence. Writes landing inside
	// the interval are coalesced into the next rebuild. 0 means the
	// 2-second default.
	RebuildEvery time.Duration
	// Clock stamps snapshots (tests inject a fixed one; nil = time.Now).
	Clock func() time.Time
}

// subscriberBuffer bounds each SSE subscriber's undelivered-event queue;
// a consumer that falls further behind is disconnected and expected to
// reconnect with Last-Event-ID.
const subscriberBuffer = 256

// Event is one record delta for SSE push: the record's change sequence
// plus the fully rendered text/event-stream frame.
type Event struct {
	Seq   uint64
	Frame []byte
}

// Subscriber is one SSE consumer's delivery queue. Read events from C;
// the channel closes when the cache shuts down or the subscriber is
// dropped for lagging.
type Subscriber struct {
	C  <-chan Event
	ch chan Event
}

// Cache maintains the feed's read snapshot over a historical-database
// collection. The read path (Current) is one atomic pointer load; the
// write path marks the cache dirty from the store's mutation hook and a
// background goroutine (Start) rebuilds at most once per RebuildEvery.
type Cache struct {
	coll *store.Collection[feed.Record]
	cfg  Config

	snap  atomic.Pointer[Snapshot]
	dirty atomic.Bool
	wake  chan struct{}
	done  chan struct{}
	once  sync.Once

	// mu serializes rebuilds (single-flight) and guards the subscriber
	// set; it is never taken on the snapshot read path.
	mu          sync.Mutex
	lastSeq     uint64
	lastRebuild time.Time
	subs        map[*Subscriber]struct{}
	onRebuild   []func(*Snapshot)
}

// New builds a cache over the feed collection, attaches its
// invalidation hook to the collection's mutation stream, and performs
// the initial snapshot build. Call Start to enable background rebuilds
// (tests may drive Rebuild directly instead).
func New(coll *store.Collection[feed.Record], cfg Config) *Cache {
	if cfg.RebuildEvery <= 0 {
		cfg.RebuildEvery = 2 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	c := &Cache{
		coll: coll,
		cfg:  cfg,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
		subs: make(map[*Subscriber]struct{}),
	}
	// The hook runs under the store's lock: just flip the flag and nudge
	// the rebuilder — never call back into the store from here.
	coll.AddHook(func(store.Mutation) { c.Invalidate() })
	c.Rebuild()
	return c
}

// Current returns the live snapshot. Zero locks: one atomic load. The
// snapshot is immutable and stays valid indefinitely; it may lag the
// store by up to RebuildEvery.
func (c *Cache) Current() *Snapshot { return c.snap.Load() }

// Invalidate marks the snapshot stale and wakes the rebuilder. Safe to
// call from anywhere, including under the store's lock.
func (c *Cache) Invalidate() {
	c.dirty.Store(true)
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Start launches the background rebuild loop: woken by Invalidate,
// rate-limited to one rebuild per RebuildEvery, stopped by Close.
func (c *Cache) Start() {
	go func() {
		for {
			select {
			case <-c.done:
				return
			case <-c.wake:
			}
			c.mu.Lock()
			last := c.lastRebuild
			c.mu.Unlock()
			if wait := c.cfg.RebuildEvery - time.Since(last); wait > 0 {
				select {
				case <-c.done:
					return
				case <-time.After(wait):
				}
			}
			if c.dirty.Load() {
				c.Rebuild()
			}
		}
	}()
}

// Close stops the rebuild loop and disconnects every subscriber.
func (c *Cache) Close() {
	c.once.Do(func() {
		close(c.done)
		c.mu.Lock()
		defer c.mu.Unlock()
		for sub := range c.subs {
			close(sub.ch)
			delete(c.subs, sub)
		}
		metSSEClients.Set(0)
	})
}

// OnRebuild registers fn to run after every successful snapshot swap
// with the new snapshot. Hooks run outside the cache's rebuild lock (a
// hook may subscribe or trigger another rebuild without deadlocking) on
// the rebuilding goroutine, so a slow hook delays subsequent rebuilds
// but never the snapshot read path. Register hooks before Start.
func (c *Cache) OnRebuild(fn func(*Snapshot)) {
	c.mu.Lock()
	c.onRebuild = append(c.onRebuild, fn)
	c.mu.Unlock()
}

// Rebuild synchronously exports the collection, builds a fresh
// snapshot, swaps it in, broadcasts the delta to SSE subscribers, and
// fires the OnRebuild hooks. Returns the new snapshot. Concurrent
// callers are serialized.
func (c *Cache) Rebuild() *Snapshot {
	snap, hooks := c.rebuild()
	if snap != nil {
		for _, fn := range hooks {
			fn(snap)
		}
	}
	return snap
}

func (c *Cache) rebuild() (*Snapshot, []func(*Snapshot)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Clear before exporting: a mutation racing the export re-marks the
	// cache dirty and re-wakes the loop, so nothing is lost — the next
	// pass picks it up.
	c.dirty.Store(false)
	prev := c.snap.Load()
	prevLast := uint64(0)
	if prev != nil {
		prevLast = prev.LastSeq()
	}
	snap, err := buildSnapshot(c.coll.Export(), prev, &c.lastSeq, c.cfg.Clock())
	if err != nil {
		// feed.Record always marshals; treat failure as "keep serving
		// the previous snapshot" rather than poisoning the read path.
		c.dirty.Store(true)
		return prev, nil
	}
	c.snap.Store(snap)
	c.lastRebuild = time.Now()

	metRebuilds.Inc()
	metSnapRecords.Set(float64(snap.Len()))
	metSnapSeq.Set(float64(snap.LastSeq()))
	metSnapBuilt.Set(float64(snap.BuiltAt().Unix()))
	metExportBytes.With("raw").Set(float64(len(snap.ExportNDJSON())))
	metExportBytes.With("gzip").Set(float64(len(snap.ExportGzip())))

	if len(c.subs) > 0 {
		c.broadcastLocked(snap, prevLast)
	}
	return snap, c.onRebuild
}

// broadcastLocked pushes every item newer than prevLast to each
// subscriber. Caller holds c.mu. A subscriber whose queue is full is
// dropped (channel closed) — SSE consumers reconnect with Last-Event-ID
// and replay what they missed from the then-current snapshot.
func (c *Cache) broadcastLocked(snap *Snapshot, prevLast uint64) {
	fresh := snap.ItemsSince(prevLast)
	if len(fresh) == 0 {
		return
	}
	events := make([]Event, len(fresh))
	for i, it := range fresh {
		events[i] = Event{Seq: it.Seq, Frame: frame(it.Seq, it.Line)}
	}
	for sub := range c.subs {
		if !trySend(sub.ch, events) {
			close(sub.ch)
			delete(c.subs, sub)
			metSSEClients.Add(-1)
			metSSEDropped.Inc()
		}
	}
}

// trySend queues events without blocking; false means the queue filled.
func trySend(ch chan Event, events []Event) bool {
	for _, ev := range events {
		select {
		case ch <- ev:
			metSSEEvents.Inc()
		default:
			return false
		}
	}
	return true
}

// Subscribe registers an SSE consumer resuming after change-sequence
// `since` (0 = everything). It returns the replay — every record the
// current snapshot holds beyond the cursor, already framed — plus the
// live queue for deltas broadcast after this call. Registration and
// replay capture happen under one lock acquisition, so no rebuild can
// slip between them: an event is either in the replay or on the queue.
func (c *Cache) Subscribe(since uint64) ([]Event, *Subscriber) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var replay []Event
	if snap := c.snap.Load(); snap != nil {
		for _, it := range snap.ItemsSince(since) {
			replay = append(replay, Event{Seq: it.Seq, Frame: frame(it.Seq, it.Line)})
		}
	}
	ch := make(chan Event, subscriberBuffer)
	sub := &Subscriber{C: ch, ch: ch}
	select {
	case <-c.done:
		// Cache already closed: hand back a closed queue so the consumer
		// terminates immediately after the replay.
		close(ch)
	default:
		c.subs[sub] = struct{}{}
		metSSEClients.Add(1)
	}
	return replay, sub
}

// Unsubscribe removes a subscriber registered with Subscribe. Safe to
// call after the subscriber was already dropped or the cache closed.
func (c *Cache) Unsubscribe(sub *Subscriber) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.subs[sub]; ok {
		delete(c.subs, sub)
		metSSEClients.Add(-1)
	}
}

// frame renders one record delta as a text/event-stream frame. The id
// field carries the change sequence so reconnecting consumers resume
// with Last-Event-ID.
func frame(seq uint64, line []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "id: %d\nevent: record\ndata: ", seq)
	b.Write(bytes.TrimRight(line, "\n"))
	b.WriteString("\n\n")
	return b.Bytes()
}
