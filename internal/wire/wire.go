// Package wire is the transport between the CAIDA-side flow sampler and
// the eX-IoT feed server: length-prefixed frames over TCP with
// acknowledgements and transparent reconnection, standing in for the
// paper's socat-to-local-port plus SSH-tunnel arrangement. The design
// goal is the same one the paper states: "if any network communication
// is disrupted, the flow detection and sampling module will go idle
// until the next stage can reconnect ... no data will be lost due to
// network failures."
//
// Two protocol versions share one listener:
//
//   - v1 (legacy): 13-byte headers, one stop-and-wait ack per frame,
//     JSON payloads, receiver-side duplicate suppression by a global
//     sequence. Still fully supported for old senders.
//   - v2: a connection opens with the "EXW2" magic, then 26-byte headers
//     carrying (shard ID, shard count, per-shard monotone sequence, hour
//     epoch). Frames are batched into one coalesced write with a single
//     cumulative ack per batch, payloads are binary (see
//     pipeline.AppendEncodeEvent), and read/write scratch is pooled so
//     steady-state frame I/O does not allocate. Delivery is
//     at-least-once: the receiver performs no de-duplication — the
//     (shard, sequence) tags give the downstream aggregator everything
//     it needs to drop replayed frames and reorder across reconnects.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"exiot/internal/telemetry"
)

// Telemetry handles for the transport stage (see docs/OPERATIONS.md). A
// rising retry counter with a flat sent counter is the classic signature
// of an unreachable feed server.
var (
	metFramesSent = telemetry.Default().Counter("exiot_wire_frames_sent_total",
		"Frames acknowledged end-to-end by the feed-server receiver.")
	metSendRetries = telemetry.Default().Counter("exiot_wire_send_retries_total",
		"Reconnect-and-resend attempts after a failed frame delivery.")
	metFramesReceived = telemetry.Default().Counter("exiot_wire_frames_received_total",
		"Fresh frames delivered to the receiver's handler.")
	metFramesDuplicate = telemetry.Default().Counter("exiot_wire_frames_duplicate_total",
		"Duplicate frames discarded by sequence-number de-duplication.")
)

// Kind tags a frame's payload type.
type Kind uint8

// Frame kinds carried between the sampler and the feed server.
const (
	// KindSample carries a sampled scanner flow.
	KindSample Kind = iota + 1
	// KindFlowEnd signals that a scan flow ended.
	KindFlowEnd
	// KindReport carries a per-second packet-level report.
	KindReport
	// KindControl carries control-plane messages.
	KindControl
	// KindHourEnd is a v2 barrier: the sending shard has emitted every
	// event for the frame's HourEpoch. Its payload is empty.
	KindHourEnd
)

// Version2 marks frames read from a v2 connection. Version 0 (the zero
// value of Frame, and everything read from a legacy connection) means v1
// JSON payloads.
const Version2 = 2

// v2 frame flags.
const (
	// FlagAckRequest asks the receiver to echo this frame's sequence
	// number once it (and therefore every frame before it on the
	// connection) has been handed to the application. One cumulative ack
	// per coalesced batch replaces v1's per-frame stop-and-wait.
	FlagAckRequest uint8 = 1 << 0
	// FlagFinal marks the last hour barrier of a shard's run (end of
	// input, the sampler flushed).
	FlagFinal uint8 = 1 << 1
)

// Frame is one transport unit.
type Frame struct {
	Seq     uint64
	Kind    Kind
	Payload []byte

	// v2 header fields. Version is 0 for frames from legacy connections
	// and Version2 for frames carrying shard/epoch tags.
	Version    uint8
	Flags      uint8
	ShardID    uint16
	ShardCount uint16
	// HourEpoch is the Unix second of the end of the hour the frame's
	// event belongs to.
	HourEpoch int64
}

// maxFrameSize bounds a frame payload (a 200-packet sample serializes to
// well under this).
const maxFrameSize = 8 << 20

// magicV2 opens every v2 connection. The first byte of a legacy v1 frame
// is the top byte of a 64-bit sequence number — zero in any realistic
// stream — so the magic cannot be confused with v1 traffic.
var magicV2 = [4]byte{'E', 'X', 'W', '2'}

// v2HeaderSize is the fixed v2 frame header:
// [8 Seq][1 Kind][1 Flags][2 ShardID][2 ShardCount][8 HourEpoch][4 len].
const v2HeaderSize = 26

// payloadPool recycles frame payload buffers. readFrame/readFrameV2 draw
// from it; the receiver returns the buffer after the handler runs, so
// handlers must copy anything they retain (every decoder in this
// codebase does).
var payloadPool sync.Pool // holds *[]byte

func getPayload(n int) []byte {
	if v := payloadPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n, max(n, 4096))
}

func putPayload(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

func writeFrame(w io.Writer, f *Frame) error {
	var hdr [13]byte
	binary.BigEndian.PutUint64(hdr[0:], f.Seq)
	hdr[8] = byte(f.Kind)
	binary.BigEndian.PutUint32(hdr[9:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

func readFrame(r io.Reader) (*Frame, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[9:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	f := &Frame{
		Seq:     binary.BigEndian.Uint64(hdr[0:]),
		Kind:    Kind(hdr[8]),
		Payload: getPayload(int(n)),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return nil, err
	}
	return f, nil
}

// appendFrameV2 serializes f (which must carry its v2 fields) onto dst.
func appendFrameV2(dst []byte, f *Frame) []byte {
	var hdr [v2HeaderSize]byte
	binary.BigEndian.PutUint64(hdr[0:], f.Seq)
	hdr[8] = byte(f.Kind)
	hdr[9] = f.Flags
	binary.BigEndian.PutUint16(hdr[10:], f.ShardID)
	binary.BigEndian.PutUint16(hdr[12:], f.ShardCount)
	binary.BigEndian.PutUint64(hdr[14:], uint64(f.HourEpoch))
	binary.BigEndian.PutUint32(hdr[22:], uint32(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// readFrameV2 fills f from r; f.Payload comes from the payload pool.
func readFrameV2(r io.Reader, f *Frame) error {
	var hdr [v2HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[22:])
	if n > maxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	f.Seq = binary.BigEndian.Uint64(hdr[0:])
	f.Kind = Kind(hdr[8])
	f.Flags = hdr[9]
	f.ShardID = binary.BigEndian.Uint16(hdr[10:])
	f.ShardCount = binary.BigEndian.Uint16(hdr[12:])
	f.HourEpoch = int64(binary.BigEndian.Uint64(hdr[14:]))
	f.Version = Version2
	f.Payload = getPayload(int(n))
	_, err := io.ReadFull(r, f.Payload)
	return err
}

// senderFlushSize is the coalesced-write threshold: Queue auto-flushes
// once this much encoded frame data is pending.
const senderFlushSize = 128 << 10

// Sender ships frames to a receiver with at-least-once delivery: frames
// are retried across reconnects until acknowledged. On the v1 path each
// Send is stop-and-wait and the receiver de-duplicates by sequence
// number, so the stream is effectively exactly-once in order. On the v2
// path (NewSenderV2) frames accumulate via Queue into one pooled write
// buffer, go out as a single coalesced write with one cumulative ack,
// and an unacknowledged batch replays wholesale on reconnect — the
// receiver delivers everything and the downstream aggregator drops
// replayed (shard, sequence) pairs.
type Sender struct {
	addr string
	// RetryInterval is the idle wait between reconnect attempts.
	RetryInterval time.Duration
	// MaxRetries bounds reconnect attempts per Send/Flush (0 = unbounded).
	MaxRetries int

	mu     sync.Mutex
	conn   net.Conn
	seq    uint64
	closed bool

	// v2 state.
	v2         bool
	shardID    uint16
	shardCount uint16
	wbuf       []byte // encoded, unflushed frames
	nQueued    int64  // frames in wbuf
	flagsOff   int    // offset of the last queued frame's Flags byte
}

// NewSender creates a v1 sender targeting addr. No connection is made
// until the first Send.
func NewSender(addr string) *Sender {
	return &Sender{addr: addr, RetryInterval: 50 * time.Millisecond, MaxRetries: 200}
}

// NewSenderV2 creates a v2 sender for shard shardID of shardCount. Use
// Queue/Barrier/Flush instead of Send; no connection is made until the
// first Flush.
func NewSenderV2(addr string, shardID, shardCount int) *Sender {
	s := NewSender(addr)
	s.v2 = true
	s.shardID = uint16(shardID)
	s.shardCount = uint16(shardCount)
	return s
}

// Send delivers one payload, blocking until the receiver acknowledges it.
// v1 senders only.
func (s *Sender) Send(kind Kind, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wire: sender closed")
	}
	if s.v2 {
		return errors.New("wire: Send on a v2 sender (use Queue/Flush)")
	}
	s.seq++
	f := &Frame{Seq: s.seq, Kind: kind, Payload: payload}

	attempts := 0
	for {
		if err := s.trySend(f); err == nil {
			metFramesSent.Inc()
			return nil
		}
		// Connection failed mid-frame: drop it and go idle until the
		// other side is reachable again.
		s.dropConn()
		metSendRetries.Inc()
		attempts++
		if s.MaxRetries > 0 && attempts >= s.MaxRetries {
			return fmt.Errorf("wire: send seq %d: receiver unreachable after %d attempts", f.Seq, attempts)
		}
		time.Sleep(s.RetryInterval)
	}
}

// Queue appends one event frame to the pending batch, copying payload
// into the sender's write buffer (the caller may reuse payload
// immediately). The batch flushes automatically once it reaches the
// coalescing threshold, or explicitly via Flush/Barrier. v2 senders only.
func (s *Sender) Queue(kind Kind, hourEpoch int64, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queueLocked(kind, hourEpoch, 0, payload)
}

// Barrier queues a KindHourEnd marker for hourEpoch — "this shard has
// emitted every event of this hour" — and flushes the pending batch so
// the aggregator can close the hour. final marks the shard's last
// barrier (end of input). v2 senders only.
func (s *Sender) Barrier(hourEpoch int64, final bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var flags uint8
	if final {
		flags = FlagFinal
	}
	if err := s.queueLocked(KindHourEnd, hourEpoch, flags, nil); err != nil {
		return err
	}
	return s.flushLocked()
}

func (s *Sender) queueLocked(kind Kind, hourEpoch int64, flags uint8, payload []byte) error {
	if s.closed {
		return errors.New("wire: sender closed")
	}
	if !s.v2 {
		return errors.New("wire: Queue on a v1 sender (use Send)")
	}
	s.seq++
	f := Frame{
		Seq:        s.seq,
		Kind:       kind,
		Flags:      flags,
		ShardID:    s.shardID,
		ShardCount: s.shardCount,
		HourEpoch:  hourEpoch,
		Payload:    payload,
	}
	s.flagsOff = len(s.wbuf) + 9
	s.wbuf = appendFrameV2(s.wbuf, &f)
	s.nQueued++
	if len(s.wbuf) >= senderFlushSize {
		return s.flushLocked()
	}
	return nil
}

// Flush sends the pending batch as one coalesced write and blocks until
// the receiver's cumulative ack covers it, reconnecting and replaying
// the whole batch as needed. A no-op when nothing is queued.
func (s *Sender) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wire: sender closed")
	}
	return s.flushLocked()
}

func (s *Sender) flushLocked() error {
	if len(s.wbuf) == 0 {
		return nil
	}
	// The last frame of the batch carries the ack request; its echoed
	// sequence acknowledges the entire batch.
	s.wbuf[s.flagsOff] |= FlagAckRequest
	attempts := 0
	for {
		if err := s.tryFlush(); err == nil {
			metFramesSent.Add(s.nQueued)
			s.wbuf = s.wbuf[:0]
			s.nQueued = 0
			return nil
		}
		// Replay wholesale: the connection dies with an unknown amount
		// delivered; the batch stays intact until acknowledged and the
		// downstream aggregator discards the replayed prefix.
		s.dropConn()
		metSendRetries.Inc()
		attempts++
		if s.MaxRetries > 0 && attempts >= s.MaxRetries {
			return fmt.Errorf("wire: flush through seq %d: receiver unreachable after %d attempts", s.seq, attempts)
		}
		time.Sleep(s.RetryInterval)
	}
}

func (s *Sender) tryFlush() error {
	if s.conn == nil {
		conn, err := net.Dial("tcp", s.addr)
		if err != nil {
			return err
		}
		if _, err := conn.Write(magicV2[:]); err != nil {
			conn.Close()
			return err
		}
		s.conn = conn
	}
	if _, err := s.conn.Write(s.wbuf); err != nil {
		return err
	}
	var ack [8]byte
	if err := s.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	if _, err := io.ReadFull(s.conn, ack[:]); err != nil {
		return err
	}
	if got := binary.BigEndian.Uint64(ack[:]); got != s.seq {
		return fmt.Errorf("wire: cumulative ack %d, want %d", got, s.seq)
	}
	return nil
}

func (s *Sender) trySend(f *Frame) error {
	if s.conn == nil {
		conn, err := net.Dial("tcp", s.addr)
		if err != nil {
			return err
		}
		s.conn = conn
	}
	if err := writeFrame(s.conn, f); err != nil {
		return err
	}
	// Stop-and-wait: the receiver echoes the sequence number after the
	// frame is handed to the application.
	var ack [8]byte
	if err := s.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	if _, err := io.ReadFull(s.conn, ack[:]); err != nil {
		return err
	}
	if got := binary.BigEndian.Uint64(ack[:]); got != f.Seq {
		return fmt.Errorf("wire: ack %d for frame %d", got, f.Seq)
	}
	return nil
}

func (s *Sender) dropConn() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// ResetConn drops the current connection without sending anything, as if
// the network had failed. The next Send/Flush transparently reconnects
// (and, on v2, replays the unacknowledged batch). Test hook.
func (s *Sender) ResetConn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropConn()
}

// Close flushes any pending v2 batch and releases the connection.
func (s *Sender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.v2 && !s.closed {
		err = s.flushLocked()
	}
	s.closed = true
	s.dropConn()
	return err
}

// Receiver accepts sender connections — v1 and v2 on the same listener,
// told apart by the "EXW2" connection preamble — and delivers frames to
// a handler. v1 connections keep the legacy contract: global
// sequence-number de-duplication, one ack per frame after the handler
// returns. v2 connections deliver every frame (replays included; the
// shard/sequence tags let the aggregator de-duplicate) and ack only on
// FlagAckRequest. Frame payloads are pooled: they are valid only for the
// duration of the handler call, which must copy anything it retains.
type Receiver struct {
	ln      net.Listener
	handler func(Frame)

	mu      sync.Mutex
	lastSeq uint64
	wg      sync.WaitGroup
	closed  bool
	conns   map[net.Conn]struct{}
}

// NewReceiver listens on addr ("host:0" picks a free port) and invokes
// handler for every new frame, in sequence order per sender.
func NewReceiver(addr string, handler func(Frame)) (*Receiver, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	r := &Receiver{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the receiver's listen address.
func (r *Receiver) Addr() string { return r.ln.Addr().String() }

func (r *Receiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.mu.Lock()
				delete(r.conns, conn)
				r.mu.Unlock()
			}()
			r.serve(conn)
		}()
	}
}

func (r *Receiver) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	// Version negotiation: a v2 connection announces itself with a
	// 4-byte magic before the first frame; anything else is a legacy v1
	// stream (whose first header byte is the top of a small uint64
	// sequence, never 'E').
	head, err := br.Peek(len(magicV2))
	if err != nil {
		return
	}
	if bytes.Equal(head, magicV2[:]) {
		br.Discard(len(magicV2))
		r.serveV2(br, conn)
		return
	}
	r.serveV1(br, conn)
}

func (r *Receiver) serveV1(br *bufio.Reader, conn net.Conn) {
	for {
		f, err := readFrame(br)
		if err != nil {
			return
		}
		r.mu.Lock()
		fresh := f.Seq > r.lastSeq
		if fresh {
			r.lastSeq = f.Seq
		}
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return
		}
		if fresh {
			// Deliver before acking so an acked frame is never lost.
			metFramesReceived.Inc()
			r.handler(*f)
		} else {
			metFramesDuplicate.Inc()
		}
		putPayload(f.Payload)
		var ack [8]byte
		binary.BigEndian.PutUint64(ack[:], f.Seq)
		if _, err := conn.Write(ack[:]); err != nil {
			return
		}
	}
}

func (r *Receiver) serveV2(br *bufio.Reader, conn net.Conn) {
	var f Frame
	for {
		if err := readFrameV2(br, &f); err != nil {
			return
		}
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return
		}
		// Deliver everything, replays included: de-duplication belongs
		// to the aggregator, which tracks a sequence per (shard, count)
		// — a single receiver-global watermark would wrongly drop frames
		// when several shards share the listener.
		metFramesReceived.Inc()
		r.handler(f)
		putPayload(f.Payload)
		f.Payload = nil
		if f.Flags&FlagAckRequest != 0 {
			var ack [8]byte
			binary.BigEndian.PutUint64(ack[:], f.Seq)
			if _, err := conn.Write(ack[:]); err != nil {
				return
			}
		}
	}
}

// Close stops accepting, tears down open connections, and waits for
// in-flight handlers.
func (r *Receiver) Close() error {
	r.mu.Lock()
	r.closed = true
	for conn := range r.conns {
		conn.Close()
	}
	r.mu.Unlock()
	err := r.ln.Close()
	r.wg.Wait()
	return err
}
