// Package wire is the transport between the CAIDA-side flow sampler and
// the eX-IoT feed server: length-prefixed frames over TCP with
// stop-and-wait acknowledgements and transparent reconnection, standing
// in for the paper's socat-to-local-port plus SSH-tunnel arrangement. The
// design goal is the same one the paper states: "if any network
// communication is disrupted, the flow detection and sampling module will
// go idle until the next stage can reconnect ... no data will be lost due
// to network failures."
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"exiot/internal/telemetry"
)

// Telemetry handles for the transport stage (see docs/OPERATIONS.md). A
// rising retry counter with a flat sent counter is the classic signature
// of an unreachable feed server.
var (
	metFramesSent = telemetry.Default().Counter("exiot_wire_frames_sent_total",
		"Frames acknowledged end-to-end by the feed-server receiver.")
	metSendRetries = telemetry.Default().Counter("exiot_wire_send_retries_total",
		"Reconnect-and-resend attempts after a failed frame delivery.")
	metFramesReceived = telemetry.Default().Counter("exiot_wire_frames_received_total",
		"Fresh frames delivered to the receiver's handler.")
	metFramesDuplicate = telemetry.Default().Counter("exiot_wire_frames_duplicate_total",
		"Duplicate frames discarded by sequence-number de-duplication.")
)

// Kind tags a frame's payload type.
type Kind uint8

// Frame kinds carried between the sampler and the feed server.
const (
	// KindSample carries a sampled scanner flow.
	KindSample Kind = iota + 1
	// KindFlowEnd signals that a scan flow ended.
	KindFlowEnd
	// KindReport carries a per-second packet-level report.
	KindReport
	// KindControl carries control-plane messages.
	KindControl
)

// Frame is one transport unit.
type Frame struct {
	Seq     uint64
	Kind    Kind
	Payload []byte
}

// maxFrameSize bounds a frame payload (a 200-packet sample serializes to
// well under this).
const maxFrameSize = 8 << 20

func writeFrame(w io.Writer, f *Frame) error {
	var hdr [13]byte
	binary.BigEndian.PutUint64(hdr[0:], f.Seq)
	hdr[8] = byte(f.Kind)
	binary.BigEndian.PutUint32(hdr[9:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

func readFrame(r io.Reader) (*Frame, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[9:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	f := &Frame{
		Seq:     binary.BigEndian.Uint64(hdr[0:]),
		Kind:    Kind(hdr[8]),
		Payload: make([]byte, n),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return nil, err
	}
	return f, nil
}

// Sender ships frames to a receiver with at-least-once delivery: each
// frame is retried across reconnects until acknowledged. Receivers
// de-duplicate by sequence number, so the stream is effectively
// exactly-once in order.
type Sender struct {
	addr string
	// RetryInterval is the idle wait between reconnect attempts.
	RetryInterval time.Duration
	// MaxRetries bounds reconnect attempts per Send (0 = unbounded).
	MaxRetries int

	mu     sync.Mutex
	conn   net.Conn
	seq    uint64
	closed bool
}

// NewSender creates a sender targeting addr. No connection is made until
// the first Send.
func NewSender(addr string) *Sender {
	return &Sender{addr: addr, RetryInterval: 50 * time.Millisecond, MaxRetries: 200}
}

// Send delivers one payload, blocking until the receiver acknowledges it.
func (s *Sender) Send(kind Kind, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wire: sender closed")
	}
	s.seq++
	f := &Frame{Seq: s.seq, Kind: kind, Payload: payload}

	attempts := 0
	for {
		if err := s.trySend(f); err == nil {
			metFramesSent.Inc()
			return nil
		}
		// Connection failed mid-frame: drop it and go idle until the
		// other side is reachable again.
		s.dropConn()
		metSendRetries.Inc()
		attempts++
		if s.MaxRetries > 0 && attempts >= s.MaxRetries {
			return fmt.Errorf("wire: send seq %d: receiver unreachable after %d attempts", f.Seq, attempts)
		}
		time.Sleep(s.RetryInterval)
	}
}

func (s *Sender) trySend(f *Frame) error {
	if s.conn == nil {
		conn, err := net.Dial("tcp", s.addr)
		if err != nil {
			return err
		}
		s.conn = conn
	}
	if err := writeFrame(s.conn, f); err != nil {
		return err
	}
	// Stop-and-wait: the receiver echoes the sequence number after the
	// frame is handed to the application.
	var ack [8]byte
	if err := s.conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	if _, err := io.ReadFull(s.conn, ack[:]); err != nil {
		return err
	}
	if got := binary.BigEndian.Uint64(ack[:]); got != f.Seq {
		return fmt.Errorf("wire: ack %d for frame %d", got, f.Seq)
	}
	return nil
}

func (s *Sender) dropConn() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// Close releases the connection.
func (s *Sender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.dropConn()
	return nil
}

// Receiver accepts sender connections and delivers de-duplicated frames
// to a handler, acknowledging each one after the handler returns.
type Receiver struct {
	ln      net.Listener
	handler func(Frame)

	mu      sync.Mutex
	lastSeq uint64
	wg      sync.WaitGroup
	closed  bool
	conns   map[net.Conn]struct{}
}

// NewReceiver listens on addr ("host:0" picks a free port) and invokes
// handler for every new frame, in sequence order per sender.
func NewReceiver(addr string, handler func(Frame)) (*Receiver, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen: %w", err)
	}
	r := &Receiver{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the receiver's listen address.
func (r *Receiver) Addr() string { return r.ln.Addr().String() }

func (r *Receiver) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.mu.Lock()
				delete(r.conns, conn)
				r.mu.Unlock()
			}()
			r.serve(conn)
		}()
	}
}

func (r *Receiver) serve(conn net.Conn) {
	defer conn.Close()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		r.mu.Lock()
		fresh := f.Seq > r.lastSeq
		if fresh {
			r.lastSeq = f.Seq
		}
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return
		}
		if fresh {
			// Deliver before acking so an acked frame is never lost.
			metFramesReceived.Inc()
			r.handler(*f)
		} else {
			metFramesDuplicate.Inc()
		}
		var ack [8]byte
		binary.BigEndian.PutUint64(ack[:], f.Seq)
		if _, err := conn.Write(ack[:]); err != nil {
			return
		}
	}
}

// Close stops accepting, tears down open connections, and waits for
// in-flight handlers.
func (r *Receiver) Close() error {
	r.mu.Lock()
	r.closed = true
	for conn := range r.conns {
		conn.Close()
	}
	r.mu.Unlock()
	err := r.ln.Close()
	r.wg.Wait()
	return err
}
